#!/usr/bin/env python3
"""Pacing-stride tuning: find the sweet spot for a device (§6, §7.1.2).

Sweeps the paper's six strides on a chosen device configuration, prints
the goodput/RTT trade-off curve, and then runs the adaptive-stride
controller (the paper's future-work §7.1.2, implemented in
``repro.core.stride``) to show an online tuner landing near the best
fixed stride without being told the device class.

    python examples/stride_tuning.py [low-end|mid-end|default]
"""

import sys

from repro import CpuConfig, ExperimentSpec, PAPER_STRIDES, run_experiment
from repro.apps.iperf import IperfClientApp, IperfServerApp
from repro.cc import Bbr
from repro.core.stride import AdaptiveStrideController
from repro.cpu import NetStackExecutor
from repro.devices import PIXEL_4, build_device
from repro.netsim import ETHERNET_LAN, Testbed
from repro.sim import EventLoop, RngStreams
from repro.tcp.stack import MobileTcpStack
from repro.units import seconds

CONNECTIONS = 20


def fixed_stride_curve(config: str):
    print(f"{'stride':>8s} {'goodput':>12s} {'mean RTT':>10s}")
    results = {}
    for stride in PAPER_STRIDES:
        r = run_experiment(ExperimentSpec(
            cc="bbr", connections=CONNECTIONS, cpu_config=config,
            pacing_stride=stride, duration_s=5.0, warmup_s=2.0,
        ))
        results[stride] = r
        print(f"{stride:>7.0f}x {r.goodput_mbps:8.1f} Mbps {r.rtt_mean_ms:7.2f} ms")
    best = max(results, key=lambda s: results[s].goodput_mbps)
    print(f"\nBest fixed stride: {best:g}x "
          f"({results[best].goodput_mbps:.1f} Mbps)\n")
    return results[best]


def adaptive(config: str):
    loop = EventLoop()
    device = build_device(loop, PIXEL_4, config)
    testbed = Testbed(loop, ETHERNET_LAN, rng=RngStreams(3))
    stack = MobileTcpStack(loop, NetStackExecutor(device.cpu),
                           device.cost_model, testbed)
    server = IperfServerApp(loop, testbed)
    client = IperfClientApp(loop, stack, Bbr, parallel=CONNECTIONS)
    controller = AdaptiveStrideController(loop, client.connections, device)
    device.start()
    client.start()
    controller.start()
    warmup, duration = seconds(2.0), seconds(8.0)
    loop.run(until=duration)
    goodput = server.goodput_bps_between(warmup, duration) / 1e6
    print(f"Adaptive controller: {goodput:.1f} Mbps "
          f"(settled at stride {controller.stride:g}x)")
    controller.stop()
    client.stop()
    device.stop()
    testbed.stop_processes()
    return goodput


def main() -> None:
    config = sys.argv[1] if len(sys.argv) > 1 else CpuConfig.LOW_END
    if config not in CpuConfig.ALL:
        raise SystemExit(f"unknown config {config!r}; pick one of {CpuConfig.ALL}")
    print(f"Stride sweep on {config} (BBR, {CONNECTIONS} connections)\n")
    best = fixed_stride_curve(config)
    goodput = adaptive(config)
    print(f"\nAdaptive vs best fixed: {goodput / best.goodput_mbps:.0%}")


if __name__ == "__main__":
    main()
