#!/usr/bin/env python3
"""Cellular vs LAN (Figure 9 / Appendix A.1): when does the CPU matter?

The paper's LTE experiments show *no* BBR/Cubic gap — the uplink is
bandwidth-limited (<20 Mbps), orders of magnitude below where pacing
overhead binds. This example runs the same Low-End phone across LTE,
WiFi, and Ethernet to locate the crossover, then emulates a future 5G
mmWave-class uplink (~200 Mbps, per the paper's discussion of [28]) with
a tc rate limit to show the problem arriving on cellular too.

    python examples/cellular_vs_lan.py
"""

from repro import (
    CpuConfig,
    ETHERNET_LAN,
    ExperimentSpec,
    LTE_CELLULAR,
    NetemConfig,
    WIFI_LAN,
    run_experiment,
)
from repro.units import mbps

CONNECTIONS = 20


def run(cc: str, medium, netem=None, label=""):
    r = run_experiment(ExperimentSpec(
        cc=cc,
        connections=CONNECTIONS,
        cpu_config=CpuConfig.LOW_END,
        medium=medium,
        netem=netem,
        duration_s=6.0,
        warmup_s=2.0,
    ))
    print(f"  {cc:6s} {r.goodput_mbps:8.2f} Mbps  (CPU {r.cpu_busy_fraction:4.0%})")
    return r


def section(title: str):
    print(f"\n{title}")
    print("-" * len(title))


def main() -> None:
    print(f"Low-End phone, {CONNECTIONS} uplink connections")

    section("LTE today (~18 Mbps uplink): bandwidth-limited")
    lte_bbr = run("bbr", LTE_CELLULAR)
    lte_cubic = run("cubic", LTE_CELLULAR)
    gap = abs(lte_bbr.goodput_mbps - lte_cubic.goodput_mbps)
    print(f"  -> gap {gap:.2f} Mbps: negligible, as in the paper's Figure 9")

    section("Future 5G-class uplink (~200 Mbps, emulated via tc)")
    g5_bbr = run("bbr", ETHERNET_LAN, netem=NetemConfig(rate_bps=mbps(200)))
    g5_cubic = run("cubic", ETHERNET_LAN, netem=NetemConfig(rate_bps=mbps(200)))
    print(f"  -> BBR at {100 * g5_bbr.goodput_mbps / g5_cubic.goodput_mbps:.0f}% "
          f"of Cubic: the pacing bottleneck starts to bite")

    section("WiFi LAN (~620 Mbps)")
    wifi_bbr = run("bbr", WIFI_LAN)
    wifi_cubic = run("cubic", WIFI_LAN)
    print(f"  -> BBR at {100 * wifi_bbr.goodput_mbps / wifi_cubic.goodput_mbps:.0f}% of Cubic")

    section("Ethernet LAN (1 Gbps)")
    eth_bbr = run("bbr", ETHERNET_LAN)
    eth_cubic = run("cubic", ETHERNET_LAN)
    print(f"  -> BBR at {100 * eth_bbr.goodput_mbps / eth_cubic.goodput_mbps:.0f}% of Cubic")

    print(
        "\nThe gap appears exactly when network capacity outruns what the\n"
        "CPU can pace — the paper's argument for fixing pacing *before*\n"
        "high-rate cellular uplinks become common."
    )


if __name__ == "__main__":
    main()
