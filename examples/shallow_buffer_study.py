#!/usr/bin/env python3
"""Why not just disable pacing? A shallow-buffer congestion study (§5.2.3).

Disabling pacing makes BBR fast on slow phones — but pacing exists for a
reason. This example reproduces the paper's 10-packet shallow-buffer
experiment: with pacing off, bursts hammer the small router buffer and
retransmissions explode by two to three orders of magnitude, while RTT
climbs. The pacing stride keeps the goodput win *and* the network calm.

    python examples/shallow_buffer_study.py
"""

from repro import (
    CpuConfig,
    ExperimentSpec,
    NetemConfig,
    PacingMode,
    run_experiment,
)
from repro.units import mbps

#: tc settings on the router's server-facing port: a near-line-rate port
#: with a 10-packet droptail buffer (the paper's shallow-buffer setup) —
#: only bursty arrivals overflow it.
SHALLOW = NetemConfig(rate_bps=mbps(800), buffer_segments=10)


def run(label: str, **overrides):
    spec = ExperimentSpec(
        cc="bbr",
        connections=20,
        cpu_config=CpuConfig.LOW_END,
        netem=SHALLOW,
        duration_s=5.0,
        warmup_s=2.0,
        **overrides,
    )
    r = run_experiment(spec)
    print(
        f"{label:26s} {r.goodput_mbps:8.1f} Mbps"
        f" {int(r.retransmitted_segments):>9d} retx"
        f" {r.rtt_mean_ms:7.2f} ms RTT"
        f" {int(r.router_dropped_segments):>8d} drops"
    )
    return r


def main() -> None:
    print("BBR through an 800 Mbps router port with a 10-packet buffer")
    print("(Low-End phone, 20 connections)\n")
    paced = run("pacing on (stock)")
    unpaced = run("pacing off", pacing_mode=PacingMode.OFF)
    strided = run("pacing stride 10x", pacing_stride=10.0)

    print(
        f"\nWithout pacing, retransmissions rise "
        f"{unpaced.retransmitted_segments / max(1, paced.retransmitted_segments):.0f}x"
        f" — the paper saw 37 -> ~13,500 on hardware."
        f"\nThe stride trades some of that back: goodput "
        f"{strided.goodput_mbps / paced.goodput_mbps:.2f}x the paced level with "
        f"{strided.retransmitted_segments / max(1, unpaced.retransmitted_segments):.2f}x "
        f"the unpaced losses — §7.1.3's caveat that strides can cause\n"
        f"transient congestion in shallow buffers is visible here."
    )


if __name__ == "__main__":
    main()
