#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline result in ~30 lines.

Runs BBR and Cubic with 20 parallel uplink connections on a simulated
Low-End Pixel 4 (576 MHz, LITTLE cores only) over the Ethernet LAN
testbed, then shows how the paper's pacing-stride fix (§6) closes most
of the gap while keeping pacing.

    python examples/quickstart.py
"""

from repro import CpuConfig, ExperimentSpec, run_experiment


def main() -> None:
    common = dict(
        connections=20,
        cpu_config=CpuConfig.LOW_END,
        duration_s=5.0,
        warmup_s=2.0,
    )

    print("Simulating a Low-End phone uploading over Ethernet (20 conns)...\n")

    cubic = run_experiment(ExperimentSpec(cc="cubic", **common))
    bbr = run_experiment(ExperimentSpec(cc="bbr", **common))
    strided = run_experiment(
        ExperimentSpec(cc="bbr", pacing_stride=10.0, **common)
    )

    rows = [
        ("Cubic (Android default)", cubic),
        ("BBR (stock pacing)", bbr),
        ("BBR + pacing stride 10x", strided),
    ]
    print(f"{'variant':28s} {'goodput':>10s} {'mean RTT':>10s} {'CPU busy':>9s}")
    for name, r in rows:
        print(
            f"{name:28s} {r.goodput_mbps:7.1f} Mbps {r.rtt_mean_ms:7.2f} ms"
            f" {r.cpu_busy_fraction:8.0%}"
        )

    gap = 100 * (1 - bbr.goodput_mbps / cubic.goodput_mbps)
    recovered = 100 * (strided.goodput_mbps - bbr.goodput_mbps) / bbr.goodput_mbps
    print(
        f"\nBBR loses {gap:.0f}% of Cubic's goodput to pacing overhead;"
        f"\nthe 10x pacing stride recovers +{recovered:.0f}% while still pacing."
    )


if __name__ == "__main__":
    main()
