#!/usr/bin/env python3
"""AR/VR uplink scenario: the future workload that motivates the paper.

The paper's introduction argues that upcoming AR/VR applications will
push large sustained *uplink* volumes from phones (§3.2, §4). This
example models such an application — a headset-tethered phone streaming
captured video upstream over WiFi — and asks: which congestion control
keeps the stream healthy on each class of device?

We sweep device configurations and report goodput and the delay the
stream would experience (AR/VR is latency-sensitive: RTT matters as much
as throughput).

    python examples/ar_vr_uplink.py
"""

from repro import CpuConfig, ExperimentSpec, WIFI_LAN, run_experiment

#: a realistic multi-stream capture app: a few parallel uplink streams
STREAMS = 8


def run(cc: str, config: str, stride: float = 1.0):
    spec = ExperimentSpec(
        cc=cc,
        connections=STREAMS,
        cpu_config=config,
        medium=WIFI_LAN,
        pacing_stride=stride,
        duration_s=5.0,
        warmup_s=2.0,
    )
    return run_experiment(spec)


def main() -> None:
    print(f"AR/VR-style uplink: {STREAMS} parallel streams over WiFi\n")
    header = f"{'device':10s} {'algorithm':22s} {'goodput':>12s} {'p95 RTT':>10s}"
    print(header)
    print("-" * len(header))
    for config in (CpuConfig.LOW_END, CpuConfig.MID_END, CpuConfig.DEFAULT):
        for label, cc, stride in (
            ("cubic", "cubic", 1.0),
            ("bbr", "bbr", 1.0),
            ("bbr +stride 5x", "bbr", 5.0),
        ):
            r = run(cc, config, stride)
            print(
                f"{config:10s} {label:22s} {r.goodput_mbps:8.1f} Mbps"
                f" {r.rtt_p95_ms:7.2f} ms"
            )
        print()

    print(
        "Takeaway: on CPU-constrained devices stock BBR cannot feed a\n"
        "high-rate uplink, while the pacing stride restores throughput\n"
        "without the RTT blow-up that disabling pacing would cause —\n"
        "exactly the trade-off an AR/VR stream needs."
    )


if __name__ == "__main__":
    main()
