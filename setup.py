"""Setup shim for legacy editable installs.

The offline environment this project targets has no ``wheel`` package, so
PEP 660 editable builds (which require building a wheel) are unavailable;
``pip install -e .`` falls back to ``setup.py develop`` through this
shim. All metadata lives in pyproject.toml.

The compiled simulation kernel (``repro._ckernel``) is an *optional* C
extension: if no C toolchain (or no CPython headers) is available the
build quietly degrades to the pure-python kernel, which is the behavioral
reference. Control via the ``REPRO_BUILD_CKERNEL`` environment variable:

    REPRO_BUILD_CKERNEL=0        never attempt the C build
    REPRO_BUILD_CKERNEL=require  fail the install if the C build fails
    (unset / anything else)      try to build, fall back to pure on error

Build in place for a source checkout with::

    python setup.py build_ext --inplace
"""

import os

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """Build the C kernel if possible; otherwise install pure-python.

    ``repro.kernel`` copes with the extension being absent at import
    time, so swallowing the compile failure here leaves a fully working
    (just slower) installation.
    """

    def run(self):
        try:
            super().run()
        except Exception as exc:  # compiler missing, headers missing, ...
            self._fall_back(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:
            self._fall_back(exc)

    @staticmethod
    def _fall_back(exc):
        if os.environ.get("REPRO_BUILD_CKERNEL") == "require":
            raise
        print(
            "repro: could not build the compiled simulation kernel "
            f"({exc!r}); falling back to the pure-python kernel"
        )


if os.environ.get("REPRO_BUILD_CKERNEL") == "0":
    ext_modules = []
    cmdclass = {}
else:
    ext_modules = [
        Extension(
            "repro._ckernel",
            sources=["src/repro/_ckernel.c"],
            extra_compile_args=["-O2"],
        )
    ]
    cmdclass = {"build_ext": OptionalBuildExt}

setup(ext_modules=ext_modules, cmdclass=cmdclass)
