"""Setup shim for legacy editable installs.

The offline environment this project targets has no ``wheel`` package, so
PEP 660 editable builds (which require building a wheel) are unavailable;
``pip install -e .`` falls back to ``setup.py develop`` through this
shim. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
