"""Unit tests for media profiles, variable-rate links, and netem."""

import pytest

from repro.netsim import (
    ETHERNET_LAN,
    LTE_CELLULAR,
    WIFI_LAN,
    NetemConfig,
    NetemImpairment,
    Packet,
    VariableRateLink,
    make_access_link,
)
from repro.netsim.link import Link
from repro.sim import RngStreams
from repro.units import MSEC, SEC, mbps


def test_profiles_have_sane_shape():
    assert ETHERNET_LAN.uplink_bps > WIFI_LAN.uplink_bps > LTE_CELLULAR.uplink_bps
    assert LTE_CELLULAR.one_way_delay_ns > ETHERNET_LAN.one_way_delay_ns
    assert ETHERNET_LAN.rate_sigma == 0.0
    assert WIFI_LAN.rate_sigma > 0.0


def test_make_access_link_fixed_for_ethernet(loop):
    link = make_access_link(loop, ETHERNET_LAN, "up", RngStreams(1).stream("x"))
    assert type(link) is Link
    assert link.rate_bps == ETHERNET_LAN.uplink_bps


def test_make_access_link_variable_for_wifi(loop):
    link = make_access_link(loop, WIFI_LAN, "up", RngStreams(1).stream("x"))
    assert isinstance(link, VariableRateLink)


def test_make_access_link_direction_validation(loop):
    with pytest.raises(ValueError):
        make_access_link(loop, ETHERNET_LAN, "sideways", RngStreams(1).stream("x"))


def test_variable_rate_stays_in_clamp_band(loop):
    rng = RngStreams(3).stream("wifi")
    link = VariableRateLink(
        loop, mbps(600), sigma=0.2, phi=0.9, update_ns=10 * MSEC,
        prop_delay_ns=0, rng=rng,
    )
    rates = []
    for _ in range(200):
        loop.run(until=loop.now + 10 * MSEC)
        rates.append(link.rate_bps)
    link.stop()
    assert all(0.3 * mbps(600) <= r <= 1.5 * mbps(600) for r in rates)
    assert len(set(rates)) > 10  # it actually varies


def test_variable_rate_mean_near_profile_mean(loop):
    rng = RngStreams(5).stream("wifi")
    link = VariableRateLink(
        loop, mbps(600), sigma=0.12, phi=0.9, update_ns=10 * MSEC,
        prop_delay_ns=0, rng=rng,
    )
    rates = []
    for _ in range(2000):
        loop.run(until=loop.now + 10 * MSEC)
        rates.append(link.rate_bps)
    link.stop()
    mean = sum(rates) / len(rates)
    assert abs(mean - mbps(600)) / mbps(600) < 0.1


def test_netem_config_validation():
    with pytest.raises(ValueError):
        NetemConfig(loss_probability=1.5)
    with pytest.raises(ValueError):
        NetemConfig(extra_delay_ns=-1)


def test_netem_no_impairment_forwards_immediately(loop):
    got = []
    imp = NetemImpairment(loop, NetemConfig(), got.append)
    imp(Packet(flow_id=1, length=100))
    assert len(got) == 1
    assert imp.forwarded_packets == 1


def test_netem_delay(loop):
    got = []
    imp = NetemImpairment(
        loop, NetemConfig(extra_delay_ns=5 * MSEC), lambda p: got.append(loop.now)
    )
    imp(Packet(flow_id=1, length=100))
    loop.run()
    assert got == [5 * MSEC]


def test_netem_loss_rate_roughly_honoured(loop):
    rng = RngStreams(11).stream("netem")
    got = []
    imp = NetemImpairment(loop, NetemConfig(loss_probability=0.3), got.append, rng)
    for i in range(2000):
        imp(Packet(flow_id=1, seq=i, length=100))
    loss = imp.dropped_packets / 2000
    assert 0.25 < loss < 0.35
