"""Unit tests for unit helpers and the cost model."""

import pytest

from repro.cpu import CostModel, DEFAULT_COSTS, ZERO_COSTS
from repro.units import (
    MSEC,
    SEC,
    USEC,
    gbps,
    ghz,
    kib,
    kilobits,
    mbps,
    mhz,
    microseconds,
    milliseconds,
    rate_from_bytes,
    seconds,
    to_kilobits,
    to_mbps,
    to_milliseconds,
    to_seconds,
    transmit_time,
)


def test_time_constructors_are_integral():
    assert seconds(1.5) == 1_500_000_000
    assert milliseconds(2.5) == 2_500_000
    assert microseconds(3) == 3_000
    assert isinstance(seconds(0.1), int)


def test_time_round_trips():
    assert to_seconds(seconds(2.5)) == 2.5
    assert to_milliseconds(milliseconds(7)) == 7.0


def test_rate_constructors():
    assert mbps(100) == 100e6
    assert gbps(1) == 1e9
    assert to_mbps(250e6) == 250.0
    assert mhz(576) == 576e6
    assert ghz(2.8) == 2.8e9


def test_size_helpers():
    assert kib(2) == 2048
    assert kilobits(8) == 1000
    assert to_kilobits(4012.5) == pytest.approx(32.1)


def test_transmit_time():
    # 1250 bytes at 10 Mbps = 1 ms
    assert transmit_time(1250, mbps(10)) == MSEC
    assert transmit_time(1250, 0) == 0


def test_rate_from_bytes():
    assert rate_from_bytes(1_250_000, SEC) == mbps(10)
    assert rate_from_bytes(100, 0) == 0.0


def test_cost_model_xmit_and_copy_split():
    costs = CostModel()
    nbytes = 10_000
    assert costs.xmit_cycles(nbytes) == costs.skb_xmit_fixed + costs.copy_cycles(nbytes)
    assert costs.copy_cycles(nbytes) == int(costs.cycles_per_byte_xmit * nbytes)


def test_cost_model_ack_cycles():
    costs = CostModel()
    base = costs.ack_cycles()
    with_sack = costs.ack_cycles(sack_blocks=2)
    with_cc = costs.ack_cycles(cc_cycles=2400)
    assert with_sack == base + 2 * costs.cycles_per_sack_block
    assert with_cc == base + 2400


def test_cost_model_scaling():
    half = DEFAULT_COSTS.scaled(0.5)
    assert half.skb_xmit_fixed == DEFAULT_COSTS.skb_xmit_fixed // 2
    assert half.pacing_timer_fire == DEFAULT_COSTS.pacing_timer_fire // 2
    assert half.cycles_per_byte_xmit == DEFAULT_COSTS.cycles_per_byte_xmit / 2


def test_cost_model_without_pacing_overhead():
    free = DEFAULT_COSTS.without_pacing_overhead()
    assert free.pacing_timer_fire == 0
    assert free.timer_program == 0
    assert free.skb_xmit_fixed == DEFAULT_COSTS.skb_xmit_fixed


def test_zero_costs_all_zero():
    assert ZERO_COSTS.xmit_cycles(10_000) == 0
    assert ZERO_COSTS.ack_cycles(3, 0) == 0
    assert ZERO_COSTS.copy_cycles(10_000) == 0


def test_pacing_timer_dominates_skb_fixed_cost():
    """The calibration premise: a pacing-timer fire costs more than a
    plain transmit's fixed path (that ratio is what strides amortize)."""
    assert DEFAULT_COSTS.pacing_timer_fire > DEFAULT_COSTS.skb_xmit_fixed
