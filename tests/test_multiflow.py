"""End-to-end tests for heterogeneous multi-flow experiments: legacy
equivalence, fairness metrics, byte-limited transfers, flow churn, and
serial/parallel/cached determinism."""

import pytest

from repro import (
    ExperimentSpec,
    FlowSpec,
    NetemConfig,
    ResultCache,
    goodput_shares,
    jain_fairness_index,
    run_experiment,
    run_grid_report,
)


def quick(**kw):
    defaults = dict(duration_s=1.0, warmup_s=0.2)
    defaults.update(kw)
    return ExperimentSpec(**defaults)


# ---------------------------------------------------------------------------
# Fairness helpers


def test_jain_equal_flows_is_one():
    assert jain_fairness_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)


def test_jain_single_active_flow_is_one():
    assert jain_fairness_index([7.5]) == 1.0
    assert jain_fairness_index([7.5, 0.0, 0.0]) == 1.0


def test_jain_skewed_flows_below_one():
    idx = jain_fairness_index([9.0, 1.0])
    assert 0.5 < idx < 1.0
    assert idx == pytest.approx(100 / (2 * 82))


def test_goodput_shares_sum_to_one():
    shares = goodput_shares([3.0, 1.0])
    assert shares == pytest.approx([0.75, 0.25])
    assert goodput_shares([]) == []
    assert goodput_shares([0.0, 0.0]) == []


# ---------------------------------------------------------------------------
# Legacy equivalence: connections=N through the flow path


def test_explicit_flows_match_legacy_connections():
    """``flows=(FlowSpec(cc, count=3),)`` is the same experiment as the
    legacy ``connections=3`` — every scalar metric must agree exactly."""
    legacy = run_experiment(quick(cc="bbr", connections=3, seed=7))
    explicit = run_experiment(
        quick(seed=7, flows=(FlowSpec(cc="bbr", count=3),)))
    assert legacy.scalar_metrics() == explicit.scalar_metrics()


def test_single_flow_reports_perfect_fairness():
    result = run_experiment(quick(cc="cubic", connections=1))
    assert result.flow_count == 1
    assert result.jain_fairness == 1.0
    assert result.scalar_metrics()["goodput_share_f1"] == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Heterogeneous flows


def test_bbr_vs_cubic_two_flows():
    result = run_experiment(quick(
        duration_s=1.5, warmup_s=0.3,
        netem=NetemConfig(rate_bps=2e8),
        flows=(FlowSpec(cc="bbr"), FlowSpec(cc="cubic")),
    ))
    assert result.flow_count == 2
    assert len(result.per_flow_goodput_mbps) == 2
    assert all(g > 0 for g in result.per_flow_goodput_mbps)
    metrics = result.scalar_metrics()
    shares = [metrics["goodput_share_f1"], metrics["goodput_share_f2"]]
    assert sum(shares) == pytest.approx(1.0)
    assert 0.0 < metrics["jain_fairness"] <= 1.0
    assert metrics["jain_fairness"] == pytest.approx(
        jain_fairness_index(result.per_flow_goodput_mbps))


def test_per_flow_netem_slows_the_impaired_flow():
    result = run_experiment(quick(
        duration_s=1.5, warmup_s=0.3, netem=NetemConfig(rate_bps=2e8),
        flows=(FlowSpec(cc="cubic"),
               FlowSpec(cc="cubic",
                        netem=NetemConfig(extra_delay_ns=40_000_000))),
    ))
    f1, f2 = result.per_flow_goodput_mbps
    assert f2 < f1, "the 40ms-RTT flow must lose to the short-RTT flow"
    assert result.jain_fairness < 1.0


def test_deterministic_multiflow_same_seed():
    spec = quick(seed=3, flows=(FlowSpec(cc="bbr"), FlowSpec(cc="cubic")))
    a, b = run_experiment(spec), run_experiment(spec)
    assert a.scalar_metrics() == b.scalar_metrics()


# ---------------------------------------------------------------------------
# Flow lifetimes


def test_byte_limited_flow_completes_with_fct():
    result = run_experiment(quick(
        flows=(FlowSpec(cc="cubic", transfer_bytes=200_000),)))
    assert result.flows_completed == 1
    assert result.fct_mean_ms > 0
    assert result.fct_p95_ms >= result.fct_mean_ms


def test_stopped_flow_gets_smaller_share():
    result = run_experiment(quick(
        duration_s=1.5, warmup_s=0.1,
        flows=(FlowSpec(cc="cubic"),
               FlowSpec(cc="cubic", stop_s=0.4)),
    ))
    metrics = result.scalar_metrics()
    assert metrics["goodput_share_f2"] < metrics["goodput_share_f1"]


def test_delayed_start_flow():
    result = run_experiment(quick(
        duration_s=1.5, warmup_s=0.1,
        flows=(FlowSpec(cc="cubic"),
               FlowSpec(cc="cubic", start_s=0.8)),
    ))
    f1, f2 = result.per_flow_goodput_mbps
    assert f2 < f1


# ---------------------------------------------------------------------------
# Churn


CHURN_SPEC = dict(
    duration_s=1.2, warmup_s=0.2, netem=NetemConfig(rate_bps=1e8),
    flows=(FlowSpec(cc="bbr"),
           FlowSpec(cc="cubic", count=0, arrival_rate_hz=5.0,
                    mean_transfer_bytes=300_000, start_s=0.2)),
)


def test_churn_spawns_flows():
    result = run_experiment(quick(**CHURN_SPEC))
    assert result.flow_count > 1
    assert result.flows_completed >= 1
    assert result.fct_mean_ms > 0


def test_churn_identical_serial_parallel_cached(tmp_path):
    """The churn schedule is pre-drawn from a named RNG stream, so the
    same spec must produce bit-identical metrics under serial execution,
    a process pool, and a cache round trip."""
    specs = [quick(seed=s, **CHURN_SPEC) for s in (1, 2)]
    serial = run_grid_report(specs, jobs=1, cache=False)
    parallel = run_grid_report(specs, jobs=2, cache=False)

    cache = ResultCache(root=str(tmp_path))
    cold = run_grid_report(specs, jobs=1, cache=cache)
    warm = run_grid_report(specs, jobs=2, cache=cache)
    assert (warm.cache_hits, warm.cache_misses) == (len(specs), 0)

    baseline = [r.scalar_metrics() for r in serial.results]
    for report in (parallel, cold, warm):
        assert [r.scalar_metrics() for r in report.results] == baseline


def test_max_arrivals_caps_churn():
    capped = run_experiment(quick(
        duration_s=1.2, warmup_s=0.2,
        flows=(FlowSpec(cc="cubic", count=0, arrival_rate_hz=20.0,
                        mean_transfer_bytes=100_000, max_arrivals=3),)))
    assert capped.flow_count == 3


# ---------------------------------------------------------------------------
# Per-flow probes


def test_per_flow_probes_emit_flow_keyed_series():
    result = run_experiment(quick(
        probes=("flow_goodput", "flow_cwnd"),
        flows=(FlowSpec(cc="bbr"), FlowSpec(cc="cubic")),
    ))
    for flow_id in (1, 2):
        goodput = result.timeseries[f"flow_goodput.f{flow_id}"]
        assert goodput.t_ns and len(goodput.values) == len(goodput.t_ns)
        assert f"flow_cwnd.f{flow_id}" in result.timeseries
    per_flow_sum = sum(result.per_flow_goodput_mbps)
    peak = max(v for fid in (1, 2)
               for v in result.timeseries[f"flow_goodput.f{fid}"].values)
    assert peak > 0
    assert per_flow_sum > 0
