"""Tests for the perf-trajectory sentinel (repro.obs.perf_trend)."""

import json

import pytest

from repro.obs import perf_trend


def entry(ev_s, kernel="pure", quick=False, cpus=4, ts=0.0):
    return perf_trend.history_record(
        ev_s, kernel=kernel, quick=quick, timestamp=ts, head="abc1234",
        cpu_count=cpus)


def test_history_round_trip(tmp_path):
    path = str(tmp_path / "hist.jsonl")
    first = entry({"p1": 100.0, "p2": 200.0}, ts=1.0)
    second = entry({"p1": 110.0}, ts=2.0)
    assert perf_trend.append_history(path, first)
    assert perf_trend.append_history(path, second)
    loaded = perf_trend.load_history(path)
    assert loaded == [first, second]


def test_load_history_skips_corrupt_and_foreign_lines(tmp_path):
    path = tmp_path / "hist.jsonl"
    good = entry({"p1": 100.0})
    path.write_text(
        "{broken\n"
        + json.dumps({"unrelated": True}) + "\n"
        + json.dumps(good) + "\n"
        + "[1,2]\n"
    )
    assert perf_trend.load_history(str(path)) == [good]


def test_load_history_missing_file():
    assert perf_trend.load_history("/nonexistent/hist.jsonl") == []


def test_comparable_entries_require_kernel_quick_and_cpus():
    history = [
        entry({"p": 1.0}, kernel="pure", quick=False, cpus=4),
        entry({"p": 2.0}, kernel="compiled", quick=False, cpus=4),
        entry({"p": 3.0}, kernel="pure", quick=True, cpus=4),
        entry({"p": 4.0}, kernel="pure", quick=False, cpus=8),
        entry({"p": 5.0}, kernel="pure", quick=False, cpus=4),
    ]
    got = perf_trend.comparable_entries(history, "pure", False, cpu_count=4)
    assert [e["events_per_sec"]["p"] for e in got] == [1.0, 5.0]


def test_median_baseline_is_per_point_median():
    entries = [
        entry({"a": 100.0, "b": 10.0}),
        entry({"a": 300.0, "b": 30.0}),
        entry({"a": 200.0}),
    ]
    assert perf_trend.median_baseline(entries) == {"a": 200.0, "b": 20.0}
    assert perf_trend.median_baseline([]) == {}


def test_check_trend_flags_only_beyond_budget():
    baseline = {"a": 100.0, "b": 100.0, "c": 100.0}
    current = {"a": 96.0, "b": 89.0, "d": 5.0}  # d absent from baseline
    regressed = perf_trend.check_trend(current, baseline, budget_pct=10.0)
    assert [name for name, _ in regressed] == ["b"]
    ((_, gain),) = regressed
    assert gain == pytest.approx(-0.11)
    # A sustained slide trips the median gate even though each single
    # step stays inside the budget.
    history = [entry({"a": v}, ts=float(i))
               for i, v in enumerate([100.0, 95.0, 90.0, 85.0])]
    median = perf_trend.median_baseline(history[:-1])  # 95
    assert perf_trend.check_trend(
        history[-1]["events_per_sec"], median, budget_pct=8.0)


def test_render_trend_groups_and_sparklines():
    history = [
        entry({"p1": 100.0}, ts=1.0),
        entry({"p1": 150.0}, ts=2.0),
        entry({"p1": 400.0}, kernel="compiled", ts=3.0),
    ]
    text = perf_trend.render_trend(history)
    assert "kernel=pure" in text and "kernel=compiled" in text
    assert "p1" in text
    assert "100" in text and "150" in text
    assert perf_trend.render_trend([]) == "no history entries"


def test_git_head_in_repo_and_outside(tmp_path):
    head = perf_trend.git_head(".")
    assert head is None or (isinstance(head, str) and len(head) >= 7)
    assert perf_trend.git_head(str(tmp_path)) is None
