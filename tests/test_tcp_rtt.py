"""Unit tests for RTT estimation, RTO, and the min-RTT filter."""

from repro.tcp import MinRttFilter, RttEstimator
from repro.units import MSEC, SEC, milliseconds


def test_first_sample_initializes_srtt():
    est = RttEstimator()
    est.update(milliseconds(10))
    assert est.srtt_ns == milliseconds(10)
    assert est.rttvar_ns == milliseconds(5)


def test_smoothing_converges_toward_stable_rtt():
    est = RttEstimator()
    for _ in range(100):
        est.update(milliseconds(20))
    assert abs(est.srtt_ns - milliseconds(20)) < milliseconds(1)
    assert est.rttvar_ns < milliseconds(1)


def test_initial_rto_is_one_second():
    est = RttEstimator()
    assert est.rto_ns == SEC


def test_rto_has_min_floor():
    est = RttEstimator()
    for _ in range(50):
        est.update(milliseconds(1))
    assert est.rto_ns == 200 * MSEC


def test_rto_tracks_variance():
    est = RttEstimator()
    for rtt in (100, 300, 100, 300, 100, 300):
        est.update(milliseconds(rtt))
    assert est.rto_ns > milliseconds(300)


def test_rto_max_ceiling():
    est = RttEstimator(max_rto_ns=2 * SEC)
    est.update(100 * SEC)
    assert est.rto_ns == 2 * SEC


def test_nonpositive_samples_ignored():
    est = RttEstimator()
    est.update(0)
    est.update(-5)
    assert est.samples == 0
    assert est.srtt_ns is None


def test_min_filter_takes_minimum():
    f = MinRttFilter(window_ns=SEC)
    f.update(milliseconds(10), 0)
    f.update(milliseconds(5), 100)
    f.update(milliseconds(8), 200)
    assert f.min_rtt_ns == milliseconds(5)


def test_min_filter_equal_sample_refreshes_stamp():
    f = MinRttFilter(window_ns=SEC)
    f.update(milliseconds(5), 0)
    f.update(milliseconds(5), 500 * MSEC)
    assert f.stamp_ns == 500 * MSEC


def test_min_filter_expires_and_accepts_higher():
    f = MinRttFilter(window_ns=SEC)
    f.update(milliseconds(5), 0)
    assert f.expired(2 * SEC)
    assert f.update(milliseconds(9), 2 * SEC)  # accepted: window expired
    assert f.min_rtt_ns == milliseconds(9)


def test_min_filter_not_expired_inside_window():
    f = MinRttFilter(window_ns=SEC)
    f.update(milliseconds(5), 0)
    assert not f.expired(900 * MSEC)
    assert not f.update(milliseconds(9), 900 * MSEC)
    assert f.min_rtt_ns == milliseconds(5)
