"""Unit tests for clusters, big.LITTLE topology, and governors."""

import pytest

from repro.cpu import (
    BigLittleCpu,
    CpuCluster,
    DynamicCpuPolicy,
    PerformanceGovernor,
    SchedutilGovernor,
    ThermalModel,
    UserspaceGovernor,
)
from repro.units import MSEC, mhz


def make_cpu(loop):
    little = CpuCluster(loop, "little", [mhz(300), mhz(600), mhz(1200)], num_cores=4)
    big = CpuCluster(loop, "big", [mhz(800), mhz(1600), mhz(2800)], num_cores=4)
    return BigLittleCpu(little, big)


def test_cluster_opp_queries(loop):
    cluster = CpuCluster(loop, "c", [mhz(1200), mhz(300), mhz(600)])
    assert cluster.min_freq_hz == mhz(300)
    assert cluster.max_freq_hz == mhz(1200)
    assert cluster.median_freq_hz == mhz(600)
    assert cluster.nearest_opp(mhz(400)) == mhz(600)
    assert cluster.nearest_opp(mhz(5000)) == mhz(1200)
    assert cluster.nearest_opp(0) == mhz(300)


def test_cluster_validation(loop):
    with pytest.raises(ValueError):
        CpuCluster(loop, "c", [])
    with pytest.raises(ValueError):
        CpuCluster(loop, "c", [mhz(100)], num_cores=0)


def test_disable_big_rebinds_to_little(loop):
    cpu = make_cpu(loop)
    cpu.bind_to(cpu.big.cores[1])
    cpu.disable_big()
    assert cpu.active_core in cpu.little.cores
    assert cpu.clusters() == [cpu.little]


def test_disable_little_rebinds_to_big(loop):
    cpu = make_cpu(loop)
    cpu.disable_little()
    assert cpu.active_core in cpu.big.cores
    assert cpu.clusters() == [cpu.big]


def test_disable_little_without_big_rejected(loop):
    cpu = BigLittleCpu(CpuCluster(loop, "little", [mhz(300)]))
    with pytest.raises(ValueError):
        cpu.disable_little()


def test_all_cores_spans_enabled_clusters(loop):
    cpu = make_cpu(loop)
    assert len(cpu.all_cores()) == 8
    cpu.disable_big()
    assert len(cpu.all_cores()) == 4


def test_userspace_governor_pins_nearest_opp(loop):
    cpu = make_cpu(loop)
    governor = UserspaceGovernor(cpu.little, mhz(500))
    governor.start()
    assert all(c.freq_hz == mhz(600) for c in cpu.little.cores)


def test_performance_governor_pins_max(loop):
    cpu = make_cpu(loop)
    governor = PerformanceGovernor(cpu.big)
    governor.start()
    assert all(c.freq_hz == mhz(2800) for c in cpu.big.cores)


def test_schedutil_scales_up_under_load(loop):
    cpu = make_cpu(loop)
    governor = SchedutilGovernor(loop, cpu.little, sample_period_ns=10 * MSEC)
    governor.start()
    core = cpu.little.cores[0]

    # Saturate the core: always keep work queued.
    def refill():
        core.submit_work(int(core.freq_hz * 0.005), refill)  # 5 ms of work

    refill()
    loop.run(until=200 * MSEC)
    governor.stop()
    assert core.freq_hz == cpu.little.max_freq_hz


def test_schedutil_stays_low_when_idle(loop):
    cpu = make_cpu(loop)
    governor = SchedutilGovernor(loop, cpu.little, sample_period_ns=10 * MSEC)
    governor.start()
    loop.run(until=100 * MSEC)
    governor.stop()
    assert cpu.little.cores[0].freq_hz == cpu.little.min_freq_hz


def test_thermal_model_throttles_and_recovers():
    thermal = ThermalModel(
        sustained_hz=mhz(1400), budget=1.0, low_water=0.2,
        heat_rate=1.0, cool_rate=0.5,
    )
    # Run hot: full excess for 1.2 "budget units".
    for _ in range(12):
        thermal.update(mhz(2800), mhz(2800), 0.1)
    assert thermal.throttled
    assert thermal.cap(mhz(2800)) == mhz(1400)
    # Cool down at the sustained clock.
    for _ in range(40):
        thermal.update(mhz(1400), mhz(2800), 0.1)
    assert not thermal.throttled
    assert thermal.cap(mhz(2800)) == mhz(2800)


def test_dynamic_policy_migrates_to_big_under_load(loop):
    cpu = make_cpu(loop)
    policy = DynamicCpuPolicy(loop, cpu, sample_period_ns=10 * MSEC)
    policy.start()
    assert cpu.active_core in cpu.little.cores

    def refill():
        cpu.active_core.submit_work(int(cpu.active_core.freq_hz * 0.005), refill)

    refill()
    loop.run(until=500 * MSEC)
    policy.stop()
    assert cpu.active_core in cpu.big.cores
    assert policy.migrations >= 1


def test_dynamic_policy_stays_on_little_when_idle(loop):
    cpu = make_cpu(loop)
    policy = DynamicCpuPolicy(loop, cpu, sample_period_ns=10 * MSEC)
    policy.start()
    loop.run(until=300 * MSEC)
    policy.stop()
    assert cpu.active_core in cpu.little.cores
    assert policy.migrations == 0


def test_dynamic_policy_thermal_caps_sustained_clock(loop):
    cpu = make_cpu(loop)
    thermal = ThermalModel(sustained_hz=mhz(1600), budget=0.5, heat_rate=5.0)
    policy = DynamicCpuPolicy(loop, cpu, sample_period_ns=10 * MSEC, thermal=thermal)
    policy.start()

    def refill():
        cpu.active_core.submit_work(int(cpu.active_core.freq_hz * 0.005), refill)

    refill()
    loop.run(until=2_000 * MSEC)
    policy.stop()
    assert cpu.active_core in cpu.big.cores
    assert cpu.active_core.freq_hz <= mhz(1600)
