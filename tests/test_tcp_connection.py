"""Protocol-level tests of the TCP sender over a free-CPU testbed."""

import pytest

from repro.cc import Bbr, Cubic, Reno
from repro.netsim import NetemConfig
from repro.tcp import FiniteSource, PacingMode, SocketConfig
from repro.units import MSEC, SEC, mbps, seconds

from conftest import ProtocolHarness


def test_finite_transfer_completes(harness):
    sender = harness.stack.create_connection(
        Reno(), source=FiniteSource(200_000)
    )
    sender.start()
    harness.run(seconds(2))
    endpoint = harness.server.endpoints[sender.flow_id]
    assert endpoint.rcv_nxt >= 200_000 - sender.mss  # sub-MSS tail stays


def test_cubic_bulk_reaches_line_rate(harness):
    sender = harness.stack.create_connection(Cubic())
    sender.start()
    harness.run(seconds(3))
    endpoint = harness.server.endpoints[sender.flow_id]
    goodput = endpoint.bytes_in_order * 8 / 3.0
    assert goodput > 0.8e9  # near the 1 Gbps line


def test_bbr_bulk_reaches_line_rate(harness):
    sender = harness.stack.create_connection(Bbr())
    sender.start()
    harness.run(seconds(3))
    endpoint = harness.server.endpoints[sender.flow_id]
    goodput = endpoint.bytes_in_order * 8 / 3.0
    assert goodput > 0.8e9


def test_bbr_paces_by_default(harness):
    sender = harness.stack.create_connection(Bbr())
    sender.start()
    harness.run(seconds(1))
    assert sender.pacing_active
    assert sender.pacer.periods > 0


def test_cubic_does_not_pace_by_default(harness):
    sender = harness.stack.create_connection(Cubic())
    sender.start()
    harness.run(seconds(1))
    assert not sender.pacing_active
    assert sender.pacer.periods == 0


def test_pacing_mode_forces_cubic_pacing(harness):
    config = SocketConfig(pacing_mode=PacingMode.ON)
    sender = harness.stack.create_connection(Cubic(), config=config)
    sender.start()
    harness.run(seconds(1))
    assert sender.pacing_active
    assert sender.pacer.periods > 0


def test_pacing_mode_off_disables_bbr_pacing(harness):
    config = SocketConfig(pacing_mode=PacingMode.OFF)
    sender = harness.stack.create_connection(Bbr(), config=config)
    sender.start()
    harness.run(seconds(1))
    assert not sender.pacing_active
    assert sender.pacer.periods == 0


def test_rtt_samples_flow(harness):
    samples = []
    sender = harness.stack.create_connection(Reno())
    sender.on_rtt_sample = samples.append
    sender.start()
    harness.run(seconds(1))
    assert len(samples) > 10
    assert all(s > 0 for s in samples)
    assert sender.srtt_ns is not None
    assert sender.min_rtt_ns is not None
    assert sender.min_rtt_ns <= sender.srtt_ns * 2


def test_loss_triggers_fast_retransmit_not_rto():
    harness = ProtocolHarness(netem=NetemConfig(loss_probability=0.02), seed=4)
    sender = harness.stack.create_connection(Cubic())
    sender.start()
    harness.run(seconds(3))
    assert sender.retransmitted_segments > 0
    assert sender.recovery_episodes > 0
    # SACK-based recovery should avoid most RTOs at 2% loss
    assert sender.rto_count <= sender.recovery_episodes


def test_delivery_is_exactly_once_under_loss():
    harness = ProtocolHarness(netem=NetemConfig(loss_probability=0.05), seed=7)
    sender = harness.stack.create_connection(
        Cubic(), source=FiniteSource(500_000)
    )
    sender.start()
    harness.run(seconds(20))
    endpoint = harness.server.endpoints[sender.flow_id]
    assert endpoint.rcv_nxt >= 500_000 - sender.mss
    assert endpoint.bytes_in_order == endpoint.rcv_nxt


def test_heavy_loss_recovers_via_rto():
    harness = ProtocolHarness(netem=NetemConfig(loss_probability=0.35), seed=9)
    sender = harness.stack.create_connection(
        Reno(), source=FiniteSource(50_000)
    )
    sender.start()
    harness.run(seconds(30))
    endpoint = harness.server.endpoints[sender.flow_id]
    assert endpoint.rcv_nxt >= 50_000 - sender.mss


def test_cwnd_respects_max(harness):
    config = SocketConfig(max_cwnd=20)
    sender = harness.stack.create_connection(Cubic(), config=config)
    sender.start()
    harness.run(seconds(1))
    assert sender.cwnd <= 20


def test_receive_window_limits_inflight(harness):
    sender = harness.stack.create_connection(Cubic())
    # Shrink the server's buffer before any data arrives.
    endpoint = harness.server.endpoint_for(sender.flow_id)
    endpoint.rcv_buffer_bytes = 50_000
    sender.start()
    harness.run(seconds(1))
    # With no losses the window never binds below in-order delivery, so
    # just assert the connection respected the advertised window.
    assert sender.snd_wnd <= 50_000 or sender.snd_wnd == 1 << 30


def test_close_stops_transmission(harness):
    sender = harness.stack.create_connection(Cubic())
    sender.start()
    harness.run(500 * MSEC)
    sent_at_close = sender.snd_nxt
    sender.close()
    harness.run(seconds(1))
    assert sender.snd_nxt == sent_at_close


def test_stagger_and_multiple_connections_share(harness):
    senders = [harness.stack.create_connection(Cubic()) for _ in range(4)]
    for s in senders:
        s.start()
    harness.run(seconds(2))
    totals = [
        harness.server.endpoints[s.flow_id].bytes_in_order for s in senders
    ]
    assert all(t > 0 for t in totals)
    aggregate = sum(totals) * 8 / 2.0
    assert aggregate > 0.8e9


def test_app_limited_sender_goes_quiet(harness):
    sender = harness.stack.create_connection(
        Cubic(), source=FiniteSource(10_000)
    )
    sender.start()
    harness.run(seconds(1))
    assert not sender.scoreboard.has_inflight
    assert not sender._rto_timer.pending
