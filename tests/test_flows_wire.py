"""Wire-format tests for first-class flows: FlowSpec round trips,
legacy (pre-``flows``) spec back-compat, and validation."""

import random

import pytest

from repro import (
    ExperimentSpec,
    FlowSpec,
    NetemConfig,
    canonical_spec_json,
    flow_from_dict,
    flow_to_dict,
    resolve_flows,
    spec_digest,
    spec_from_dict,
    spec_to_dict,
)


# ---------------------------------------------------------------------------
# FlowSpec round trips


def _flows_roundtrip(spec: ExperimentSpec) -> ExperimentSpec:
    return spec_from_dict(spec_to_dict(spec))


def test_flow_dict_roundtrip_defaults():
    flow = FlowSpec()
    assert flow_from_dict(flow_to_dict(flow)) == flow


def test_flow_dict_roundtrip_all_fields():
    flow = FlowSpec(
        cc="cubic", count=3, start_s=0.5, stop_s=2.0,
        transfer_bytes=1_000_000,
        netem=NetemConfig(rate_bps=1e8, extra_delay_ns=20_000_000),
    )
    assert flow_from_dict(flow_to_dict(flow)) == flow


def test_flow_dict_roundtrip_churn():
    flow = FlowSpec(cc="bbr", count=0, arrival_rate_hz=4.0,
                    mean_transfer_bytes=250_000, max_arrivals=10)
    assert flow_from_dict(flow_to_dict(flow)) == flow


def test_flow_partial_dict_takes_defaults():
    flow = flow_from_dict({"cc": "cubic"})
    assert flow == FlowSpec(cc="cubic")


def test_flow_unknown_key_rejected_with_choices():
    with pytest.raises(ValueError, match="warp_factor"):
        flow_from_dict({"warp_factor": 9})


def test_spec_with_flows_roundtrips_exactly():
    spec = ExperimentSpec(
        duration_s=1.0, warmup_s=0.2,
        flows=(FlowSpec(cc="bbr"),
               FlowSpec(cc="cubic", netem=NetemConfig(extra_delay_ns=10**7))),
    )
    back = _flows_roundtrip(spec)
    assert back == spec
    assert spec_digest(back) == spec_digest(spec)


def test_spec_flows_property_style_roundtrip():
    """Seeded sampling over the flow field space: every sampled spec
    must survive the wire round trip exactly and keep its digest."""
    rng = random.Random(20260808)
    ccs = ("bbr", "cubic", "bbr2", "reno")
    for _ in range(50):
        flows = []
        for _ in range(rng.randint(1, 4)):
            kwargs = {"cc": rng.choice(ccs)}
            if rng.random() < 0.5:
                kwargs["count"] = rng.randint(1, 5)
            if rng.random() < 0.3:
                kwargs["start_s"] = round(rng.uniform(0.0, 0.5), 3)
                if rng.random() < 0.5:
                    kwargs["stop_s"] = kwargs["start_s"] + 0.5
            if rng.random() < 0.3:
                kwargs["transfer_bytes"] = rng.randint(1, 10) * 100_000
            if rng.random() < 0.3:
                kwargs["netem"] = NetemConfig(
                    extra_delay_ns=rng.randint(0, 50) * 10**6)
            if rng.random() < 0.2:
                kwargs["count"] = 0
                kwargs["arrival_rate_hz"] = round(rng.uniform(0.5, 10.0), 2)
                kwargs["mean_transfer_bytes"] = rng.randint(1, 10) * 50_000
                kwargs.pop("transfer_bytes", None)
            flows.append(FlowSpec(**kwargs))
        spec = ExperimentSpec(duration_s=1.0, warmup_s=0.2,
                              flows=tuple(flows))
        back = _flows_roundtrip(spec)
        assert back == spec
        assert spec_digest(back) == spec_digest(spec)


# ---------------------------------------------------------------------------
# Legacy back-compat


def test_legacy_dict_without_flows_loads():
    """Pre-flows JSON (no ``flows`` key) must keep loading, with the
    empty flows default standing in for the legacy connections count."""
    legacy = {"cc": "cubic", "connections": 4,
              "duration_s": 1.0, "warmup_s": 0.2}
    spec = spec_from_dict(legacy)
    assert spec.flows == ()
    assert spec.connections == 4
    plan = resolve_flows(spec)
    assert len(plan) == 1
    assert plan[0].cc == "cubic" and plan[0].count == 4


def test_legacy_spec_digest_unchanged_by_roundtrip():
    spec = ExperimentSpec(cc="bbr", connections=2,
                          duration_s=1.0, warmup_s=0.2)
    assert _flows_roundtrip(spec) == spec
    assert spec_digest(_flows_roundtrip(spec)) == spec_digest(spec)


def test_legacy_and_explicit_flows_have_distinct_digests():
    """``connections=2`` and the equivalent explicit flow list are the
    same experiment but different wire documents — distinct cache keys,
    so archived legacy results are never served for flow specs."""
    legacy = ExperimentSpec(cc="bbr", connections=2,
                            duration_s=1.0, warmup_s=0.2)
    explicit = ExperimentSpec(duration_s=1.0, warmup_s=0.2,
                              flows=(FlowSpec(cc="bbr", count=2),))
    assert resolve_flows(legacy) == resolve_flows(explicit)
    assert spec_digest(legacy) != spec_digest(explicit)


def test_flows_serialize_into_canonical_json():
    spec = ExperimentSpec(duration_s=1.0, warmup_s=0.2,
                          flows=(FlowSpec(cc="cubic"),))
    assert '"flows":[{' in canonical_spec_json(spec)


# ---------------------------------------------------------------------------
# Validation


def test_flows_must_be_flowspecs():
    with pytest.raises(ValueError):
        ExperimentSpec(flows=({"cc": "bbr"},))


def test_flows_conflict_with_connections():
    with pytest.raises(ValueError):
        ExperimentSpec(connections=3, flows=(FlowSpec(cc="bbr"),))


def test_zero_count_requires_churn():
    with pytest.raises(ValueError):
        FlowSpec(cc="bbr", count=0)


def test_stop_must_follow_start():
    with pytest.raises(ValueError):
        FlowSpec(cc="bbr", start_s=1.0, stop_s=0.5)


def test_transfer_bytes_must_be_positive():
    with pytest.raises(ValueError):
        FlowSpec(cc="bbr", transfer_bytes=0)


def test_churn_requires_mean_transfer_bytes():
    with pytest.raises(ValueError):
        FlowSpec(cc="bbr", count=0, arrival_rate_hz=2.0)


def test_flow_list_in_spec_dict_must_be_list():
    with pytest.raises(ValueError, match="flows"):
        spec_from_dict({"flows": "bbr"})
