"""Behavioural tests for BBR v1 over the protocol harness."""

from repro.cc import Bbr, Cubic
from repro.cc.bbr import DRAIN, PROBE_BW, PROBE_RTT, STARTUP
from repro.netsim import ETHERNET_LAN, LTE_CELLULAR, NetemConfig
from repro.units import MSEC, mbps, seconds

from conftest import ProtocolHarness


def run_bbr(medium=ETHERNET_LAN, netem=None, duration=seconds(3), seed=1):
    harness = ProtocolHarness(medium=medium, netem=netem, seed=seed)
    sender = harness.stack.create_connection(Bbr())
    sender.start()
    harness.run(duration)
    return harness, sender


def test_startup_exits_to_probe_bw():
    _, sender = run_bbr()
    bbr = sender.cc
    assert bbr.full_bw_reached
    assert bbr.mode in (PROBE_BW, PROBE_RTT)


def test_bandwidth_estimate_near_bottleneck():
    _, sender = run_bbr()
    bbr = sender.cc
    # 1 Gbps line; payload share ~0.94 Gbps. Allow generous tolerance.
    assert 0.7e9 < bbr.bw_bps() < 1.3e9


def test_pacing_rate_tracks_gain_times_bw():
    _, sender = run_bbr()
    bbr = sender.cc
    rate = bbr.pacing_rate_bps(sender)
    assert rate > 0
    assert rate <= 1.3 * bbr.bw_bps()


def test_min_rtt_estimate_close_to_base_rtt():
    harness, sender = run_bbr()
    # Base path RTT is ~0.6-1 ms on the Ethernet testbed.
    assert sender.min_rtt_ns < 3 * MSEC


def _queued_path():
    """A 100 Mbps bottleneck with a deep buffer: BBR's 2xBDP inflight
    keeps a standing queue, so measured RTT stays above the minimum and
    the 10 s min-RTT filter can actually expire (on a queue-free path the
    minimum refreshes continuously and PROBE_RTT never triggers — the
    kernel behaves the same way)."""
    return ProtocolHarness(
        netem=NetemConfig(rate_bps=mbps(100), buffer_segments=2000), seed=6
    )


def test_probe_rtt_entered_after_ten_seconds():
    harness = _queued_path()
    sender = harness.stack.create_connection(Bbr())
    sender.start()
    modes = set()

    def sample():
        modes.add(sender.cc.mode)
        if harness.loop.now < seconds(22):
            harness.loop.call_after(10 * MSEC, sample)

    harness.loop.call_after(10 * MSEC, sample)
    harness.run(seconds(22))
    assert PROBE_RTT in modes


def test_probe_rtt_shrinks_cwnd_to_floor():
    harness = _queued_path()
    sender = harness.stack.create_connection(Bbr())
    sender.start()
    floor_seen = []

    def sample():
        if sender.cc.mode == PROBE_RTT:
            floor_seen.append(sender.cwnd)
        if harness.loop.now < seconds(22):
            harness.loop.call_after(5 * MSEC, sample)

    harness.loop.call_after(5 * MSEC, sample)
    harness.run(seconds(22))
    assert floor_seen and min(floor_seen) <= 4


def test_gain_cycling_in_probe_bw():
    harness = ProtocolHarness()
    sender = harness.stack.create_connection(Bbr())
    sender.start()
    gains = set()

    def sample():
        if sender.cc.mode == PROBE_BW:
            gains.add(round(sender.cc.pacing_gain, 2))
        if harness.loop.now < seconds(4):
            harness.loop.call_after(MSEC, sample)

    harness.loop.call_after(MSEC, sample)
    harness.run(seconds(4))
    assert 1.25 in gains
    assert 0.75 in gains
    assert 1.0 in gains


def test_bbr_ignores_loss_for_cwnd():
    """ssthresh is 'infinite': recovery must not halve BBR's cwnd."""
    harness = ProtocolHarness(netem=NetemConfig(loss_probability=0.01), seed=3)
    sender = harness.stack.create_connection(Bbr())
    sender.start()
    harness.run(seconds(3))
    assert sender.retransmitted_segments > 0
    assert sender.ssthresh == 1 << 30
    # goodput stays near line rate despite 1% loss (loss-blind design)
    endpoint = harness.server.endpoints[sender.flow_id]
    assert endpoint.bytes_in_order * 8 / 3.0 > 0.6e9


def test_bbr_keeps_low_rtt_versus_cubic_on_constrained_link():
    """BBR's raison d'être: same throughput region, much lower delay."""
    results = {}
    for name, cc_factory in (("bbr", Bbr), ("cubic", Cubic)):
        harness = ProtocolHarness(
            netem=NetemConfig(rate_bps=mbps(100), buffer_segments=500), seed=5
        )
        sender = harness.stack.create_connection(cc_factory())
        rtts = []
        sender.on_rtt_sample = rtts.append
        sender.start()
        harness.run(seconds(4))
        endpoint = harness.server.endpoints[sender.flow_id]
        results[name] = (endpoint.bytes_in_order, sum(rtts) / len(rtts))
    bbr_bytes, bbr_rtt = results["bbr"]
    cubic_bytes, cubic_rtt = results["cubic"]
    assert bbr_bytes > 0.7 * cubic_bytes  # comparable throughput
    assert bbr_rtt < 0.7 * cubic_rtt      # and clearly lower delay


def test_bbr_on_lte_is_bandwidth_limited():
    harness = ProtocolHarness(medium=LTE_CELLULAR, seed=2)
    sender = harness.stack.create_connection(Bbr())
    sender.start()
    harness.run(seconds(6))
    endpoint = harness.server.endpoints[sender.flow_id]
    goodput = endpoint.bytes_in_order * 8 / 6.0
    assert goodput < mbps(20)
    assert goodput > mbps(8)


def test_cwnd_floor_is_four():
    harness = ProtocolHarness()
    sender = harness.stack.create_connection(Bbr())
    sender.start()
    harness.run(seconds(1))
    assert sender.cwnd >= 4
