"""Unit tests for the SACK scoreboard."""

import pytest

from repro.tcp import Scoreboard, TxRecord

MSS = 1000


def record(seq, segs, sent=0, **kw):
    return TxRecord(
        seq=seq,
        end_seq=seq + segs * MSS,
        segments=segs,
        sent_ns=sent,
        delivered_at_send=0,
        delivered_time_at_send=0,
        first_sent_at_send=0,
        **kw,
    )


def make_board(*recs):
    sb = Scoreboard(MSS)
    for r in recs:
        sb.on_transmit(r)
    return sb


def test_transmit_accumulates_packets_out():
    sb = make_board(record(0, 4), record(4000, 2))
    assert sb.packets_out == 6
    assert sb.inflight_segments == 6


def test_out_of_order_transmit_rejected():
    sb = make_board(record(0, 4))
    with pytest.raises(ValueError):
        sb.on_transmit(record(2000, 1))


def test_cumulative_ack_retires_records():
    sb = make_board(record(0, 4), record(4000, 4))
    outcome = sb.on_ack(4000, [])
    assert outcome.newly_acked_segments == 4
    assert outcome.newly_acked_bytes == 4000
    assert sb.packets_out == 4
    assert sb.snd_una == 4000


def test_partial_ack_shrinks_head_record():
    sb = make_board(record(0, 4))
    outcome = sb.on_ack(2000, [])
    assert outcome.newly_acked_segments == 2
    assert sb.packets_out == 2
    head = sb.oldest_unacked_record()
    assert head.seq == 2000


def test_duplicate_ack_changes_nothing():
    sb = make_board(record(0, 4))
    sb.on_ack(4000, [])
    outcome = sb.on_ack(4000, [])
    assert outcome.newly_acked_segments == 0


def test_sack_marks_segments():
    sb = make_board(record(0, 4), record(4000, 4))
    outcome = sb.on_ack(0, [(4000, 8000)])
    assert outcome.newly_sacked_segments == 4
    assert sb.sacked_out == 4
    # FACK also marks the un-SACKed head lost (3+ segments below the
    # highest SACK), so nothing is considered in flight any more.
    assert sb.lost_out == 4
    assert sb.inflight_segments == 0


def test_sack_is_idempotent():
    sb = make_board(record(0, 4), record(4000, 4))
    sb.on_ack(0, [(4000, 8000)])
    outcome = sb.on_ack(0, [(4000, 8000)])
    assert outcome.newly_sacked_segments == 0
    assert sb.sacked_out == 4


def test_partial_sack_coverage():
    sb = make_board(record(0, 4))
    outcome = sb.on_ack(0, [(2000, 3000)])
    assert outcome.newly_sacked_segments == 1
    assert not sb.oldest_unacked_record().sacked


def test_fack_loss_detection():
    # Records: [0,2000), [2000,4000), [4000,8000). SACKing the last block
    # puts both earlier records >= 3 segments below the highest SACK, so
    # FACK marks both lost.
    sb = make_board(record(0, 2), record(2000, 2), record(4000, 4))
    outcome = sb.on_ack(0, [(4000, 8000)])
    assert outcome.newly_lost_segments == 4
    assert sb.lost_out == 4
    assert sb.next_lost_record().seq == 0


def test_loss_requires_reorder_degree_distance():
    sb = make_board(record(0, 2), record(2000, 2))
    outcome = sb.on_ack(0, [(2000, 4000)])
    # Highest sacked is only 2 segments past the hole: below threshold 3.
    assert outcome.newly_lost_segments == 0


def test_retransmit_accounting():
    sb = make_board(record(0, 2), record(2000, 2), record(4000, 4))
    sb.on_ack(0, [(4000, 8000)])  # marks records 1 and 2 lost (4 segs)
    lost = sb.next_lost_record()
    sb.on_retransmit(lost)
    assert sb.retrans_out == 2
    assert sb.total_retransmitted_segments == 2
    # The second lost record is still awaiting retransmission.
    assert sb.next_lost_record().seq == 2000
    # inflight = packets(8) - sacked(4) - lost(4) + retrans(2)
    assert sb.inflight_segments == 2


def test_cumack_of_retransmitted_record_clears_counts():
    sb = make_board(record(0, 2), record(2000, 2), record(4000, 4))
    sb.on_ack(0, [(4000, 8000)])
    sb.on_retransmit(sb.next_lost_record())
    sb.on_ack(8000, [])
    assert sb.packets_out == 0
    assert sb.retrans_out == 0
    assert sb.lost_out == 0
    assert sb.inflight_segments == 0


def test_fully_sacked_record_clears_lost_mark():
    sb = make_board(record(0, 2), record(2000, 2), record(4000, 4))
    sb.on_ack(0, [(4000, 8000)])
    assert sb.lost_out == 4
    sb.on_ack(0, [(0, 2000)])  # the "lost" head arrives after all
    assert sb.lost_out == 2


def test_mark_all_lost_on_rto():
    sb = make_board(record(0, 2), record(2000, 2), record(4000, 4))
    sb.on_ack(0, [(4000, 8000)])  # both un-SACKed records already lost
    sb.on_retransmit(sb.next_lost_record())
    newly = sb.mark_all_lost()
    assert newly == 0  # nothing new: they were lost before the RTO
    assert sb.retrans_out == 0  # retransmission marks cleared
    assert sb.lost_out == 4
    assert sb.next_lost_record() is not None


def test_clear_loss_marks():
    sb = make_board(record(0, 2), record(2000, 2), record(4000, 4))
    sb.on_ack(0, [(4000, 8000)])
    sb.clear_loss_marks()
    assert sb.lost_out == 0
    assert sb.next_lost_record() is None


def test_newest_delivered_record_selection():
    sb = make_board(record(0, 2, sent=100), record(2000, 2, sent=200))
    outcome = sb.on_ack(4000, [])
    assert outcome.newest_delivered_record.sent_ns == 200


def test_delivered_bytes_combines_ack_and_sack():
    sb = make_board(record(0, 2), record(2000, 2))
    outcome = sb.on_ack(2000, [(3000, 4000)])
    assert outcome.delivered_bytes == 2000 + 1000


def test_counters_consistent_after_mixed_operations():
    sb = make_board(record(0, 4), record(4000, 4), record(8000, 4))
    sb.on_ack(2000, [(8000, 12000)])
    packets = sum(r.segments for r in sb.records)
    assert sb.packets_out == packets
    assert sb.sacked_out == sum(r.sacked_segments for r in sb.records)
