"""Tests for the iperf-like applications."""

import pytest

from repro.apps import IperfClientApp, IperfServerApp
from repro.cc import Cubic
from repro.cpu import FreeExecutor, ZERO_COSTS
from repro.netsim import ETHERNET_LAN, Testbed as _Testbed
from repro.sim import EventLoop, RngStreams
from repro.tcp.stack import MobileTcpStack
from repro.units import MSEC, SEC, seconds


def build_session(parallel=2):
    loop = EventLoop()
    testbed = _Testbed(loop, ETHERNET_LAN, rng=RngStreams(1))
    stack = MobileTcpStack(loop, FreeExecutor(), ZERO_COSTS, testbed)
    server = IperfServerApp(loop, testbed)
    client = IperfClientApp(loop, stack, Cubic, parallel=parallel)
    return loop, server, client


def test_parallel_connections_created():
    loop, server, client = build_session(parallel=5)
    assert len(client.connections) == 5
    flow_ids = {c.flow_id for c in client.connections}
    assert len(flow_ids) == 5


def test_requires_at_least_one_connection():
    loop = EventLoop()
    testbed = _Testbed(loop, ETHERNET_LAN, rng=RngStreams(1))
    stack = MobileTcpStack(loop, FreeExecutor(), ZERO_COSTS, testbed)
    IperfServerApp(loop, testbed)
    with pytest.raises(ValueError):
        IperfClientApp(loop, stack, Cubic, parallel=0)


def test_server_measures_aggregate_and_per_flow_goodput():
    loop, server, client = build_session(parallel=2)
    client.start()
    loop.run(until=seconds(1))
    start, end = 200 * MSEC, 1000 * MSEC
    aggregate = server.goodput_bps_between(start, end)
    per_flow = sum(
        server.flow_goodput_bps_between(c.flow_id, start, end)
        for c in client.connections
    )
    assert aggregate > 0
    assert per_flow == pytest.approx(aggregate, rel=0.001)


def test_staggered_start():
    loop, server, client = build_session(parallel=3)
    client.start()
    loop.run(until=2 * MSEC)
    starts = [c.snd_nxt > 0 or c.scoreboard.has_inflight for c in client.connections]
    assert starts[0]  # first connection started immediately


def test_rtt_window_gating():
    loop, server, client = build_session(parallel=1)
    client.rtt_window_start_ns = 500 * MSEC
    client.start()
    loop.run(until=seconds(1))
    assert client.rtt_stats.count > 0
    # No sample can predate the window by construction; verify the stats
    # object only holds post-warmup values by checking count is far lower
    # than total acks processed.
    total_acks = sum(c.acks_processed for c in client.connections)
    assert client.rtt_stats.count < total_acks


def test_stop_closes_connections():
    loop, server, client = build_session(parallel=2)
    client.start()
    loop.run(until=500 * MSEC)
    client.stop()
    sent = [c.snd_nxt for c in client.connections]
    loop.run(until=seconds(1))
    assert [c.snd_nxt for c in client.connections] == sent


def test_aggregate_counters():
    loop, server, client = build_session(parallel=3)
    client.start()
    loop.run(until=seconds(1))
    # With a free CPU three slow-starting flows overflow the phone qdisc,
    # so retransmissions are expected; the counters must simply be sane.
    assert client.retransmitted_segments >= 0
    assert client.rto_count >= 0
    assert client.mean_cwnd_segments > 0
    # Cubic does not pace: no pacer stats
    assert client.mean_pacer_period_bytes() == 0.0
    assert client.mean_pacer_idle_ns() == 0.0
