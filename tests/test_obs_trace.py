"""Tests for the ring-buffer tracer and the JSONL / Chrome trace
exporters."""

import json

import pytest

from repro import (
    ExperimentSpec,
    Tracer,
    export_chrome_trace,
    export_jsonl,
    load_jsonl,
    run_experiment,
    validate_chrome_trace,
    validate_jsonl,
)
from repro.sim import NULL_TRACER, TraceRecord


# ---------------------------------------------------------------------------
# Ring buffer


def test_ring_buffer_evicts_oldest_and_counts_drops():
    tracer = Tracer(keep=True, max_records=10)
    for i in range(25):
        tracer.emit(i, "src", "ev", i=i)
    records = tracer.records
    assert len(records) == 10
    assert [r.fields["i"] for r in records] == list(range(15, 25))
    assert tracer.dropped_records == 15


def test_ring_buffer_unbounded_when_none():
    tracer = Tracer(keep=True, max_records=None)
    for i in range(1000):
        tracer.emit(i, "src", "ev")
    assert len(tracer.records) == 1000
    assert tracer.dropped_records == 0


def test_category_globs_filter_sources():
    tracer = Tracer(keep=True, categories=("cc-*", "little0"))
    tracer.emit(0, "cc-1", "mode")
    tracer.emit(1, "cc-2", "mode")
    tracer.emit(2, "little0", "exec")
    tracer.emit(3, "big0", "exec")
    tracer.emit(4, "ethernet", "tx")
    assert [r.source for r in tracer.records] == ["cc-1", "cc-2", "little0"]


def test_null_tracer_cannot_be_enabled():
    assert NULL_TRACER.enabled is False
    with pytest.raises(RuntimeError):
        NULL_TRACER.enabled = True
    NULL_TRACER.enabled = False  # setting False stays a no-op
    assert NULL_TRACER.enabled is False


# ---------------------------------------------------------------------------
# JSONL export


def test_jsonl_round_trip(tmp_path):
    records = [
        TraceRecord(0, "little0", "exec", {"item": "ack", "start_ns": 0}),
        TraceRecord(5, "cc-1", "mode", {"algo": "bbr", "mode": "DRAIN"}),
    ]
    path = tmp_path / "trace.jsonl"
    assert export_jsonl(records, str(path)) == 2
    assert load_jsonl(str(path)) == records
    assert validate_jsonl(str(path)) == 2


def test_validate_jsonl_rejects_bad_schema(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"time_ns": 1, "source": "x"}\n')
    with pytest.raises(ValueError, match="bad.jsonl:1"):
        validate_jsonl(str(path))


# ---------------------------------------------------------------------------
# Chrome trace export


def test_chrome_trace_exec_records_become_duration_slices(tmp_path):
    records = [
        TraceRecord(2_000, "little0", "exec",
                    {"item": "ack", "start_ns": 1_000, "cycles": 42}),
        TraceRecord(3_000, "cc-1", "mode", {"algo": "bbr"}),
    ]
    path = tmp_path / "chrome.json"
    export_chrome_trace(records, str(path))
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    slices = [e for e in events if e["ph"] == "X"]
    assert len(slices) == 1
    assert slices[0]["name"] == "ack"
    assert slices[0]["ts"] == pytest.approx(1.0)  # start_ns in us
    assert slices[0]["dur"] == pytest.approx(1.0)
    assert "start_ns" not in slices[0]["args"]
    instants = [e for e in events if e["ph"] == "i"]
    assert len(instants) == 1
    # per-source threads carry name metadata
    names = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert {"repro-sim", "little0", "cc-1"} <= names
    assert validate_chrome_trace(str(path)) == 2


# ---------------------------------------------------------------------------
# Integration: a traced experiment exports valid files


def test_traced_experiment_round_trips(tmp_path):
    tracer = Tracer(keep=True)
    spec = ExperimentSpec(cc="bbr", connections=2, duration_s=0.6, warmup_s=0.1)
    run_experiment(spec, tracer=tracer)
    assert tracer.records, "a traced run should emit records"
    sources = {r.source for r in tracer.records}
    assert any(s.startswith("flow-") for s in sources)
    assert any(s.startswith("cc-") for s in sources)

    jsonl = tmp_path / "trace.jsonl"
    chrome = tmp_path / "trace.json"
    count = export_jsonl(tracer.records, str(jsonl))
    assert count == len(tracer.records)
    assert validate_jsonl(str(jsonl)) == count
    export_chrome_trace(tracer.records, str(chrome))
    assert validate_chrome_trace(str(chrome)) == count
    # CPU work renders as per-core duration slices
    doc = json.loads(chrome.read_text())
    assert any(e["ph"] == "X" for e in doc["traceEvents"])


def test_untraced_experiment_matches_traced_metrics():
    spec = ExperimentSpec(cc="bbr", connections=2, duration_s=0.6, warmup_s=0.1)
    plain = run_experiment(spec)
    traced = run_experiment(spec, tracer=Tracer(keep=True))
    assert plain.scalar_metrics() == traced.scalar_metrics()
