"""Tests for live grid telemetry (repro.obs.live)."""

import io
import json

import pytest

from repro import (
    ExperimentSpec,
    GridMonitor,
    run_grid_report,
    validate_openmetrics,
)
from repro.kernel import KERNELS
from repro.obs.live import (
    progress_done,
    progress_error,
    progress_hit,
    progress_start,
)

COMPILED = KERNELS.get("compiled")

needs_compiled = pytest.mark.skipif(
    not COMPILED.available,
    reason=f"compiled kernel not built ({COMPILED.why_unavailable})",
)

PAIR = [
    ExperimentSpec(cc=cc, connections=1, duration_s=0.6, warmup_s=0.2)
    for cc in ("bbr", "cubic")
]


def eight_point_grid():
    return [
        ExperimentSpec(cc=cc, connections=1, duration_s=0.4, warmup_s=0.1,
                       seed=seed)
        for seed in (1, 2, 3, 4) for cc in ("bbr", "cubic")
    ]


# -- monitor state machine --------------------------------------------------


def test_monitor_accounting():
    mon = GridMonitor(4, stream=None)
    mon.record(progress_start(0, "a", ))
    assert mon.processed == 0 and len(mon.running) == 1
    mon.record(progress_done(0, 1000, 0.5))
    mon.record(progress_hit(1))
    mon.record(progress_error(2, "boom"))
    assert mon.processed == 3
    assert mon.remaining == 1
    assert mon.done == 1 and mon.cache_hits == 1 and mon.errors == 1
    assert mon.sim_events == 1000
    assert not mon.running
    mon.record(progress_done(3, 500, 0.25))
    assert mon.processed == 4 and mon.remaining == 0


def test_monitor_render_line_and_eta():
    mon = GridMonitor(8, stream=None, chunk=2)
    for i in range(3):
        mon.record(progress_done(i, 1000, 0.1))
    line = mon.render_line()
    assert "3/8" in line
    assert "ETA" in line
    assert mon.eta_s() is not None and mon.eta_s() >= 0
    assert mon.total_chunks == 4 and mon.chunks_done == 1


def test_monitor_renders_in_place_to_stream():
    stream = io.StringIO()
    mon = GridMonitor(2, stream=stream, interval_s=0.0)
    mon.record(progress_done(0, 100, 0.1))
    mon.record(progress_done(1, 100, 0.1))
    mon.finish()
    text = stream.getvalue()
    assert "2/2" in text


def test_monitor_survives_broken_stream():
    class Broken(io.StringIO):
        def write(self, s):
            raise OSError("gone")

    mon = GridMonitor(2, stream=Broken(), interval_s=0.0)
    mon.record(progress_done(0, 100, 0.1))
    mon.record(progress_done(1, 100, 0.1))
    mon.finish()
    assert mon.processed == 2


# -- grid integration -------------------------------------------------------


@pytest.mark.parametrize("jobs", [1, 2])
def test_grid_feeds_monitor(jobs):
    mon = GridMonitor(len(PAIR), stream=None)
    report = run_grid_report(PAIR, jobs=jobs, monitor=mon)
    assert report.points == 2
    assert mon.processed == 2 and mon.done == 2 and mon.errors == 0
    assert mon.sim_events == report.total_events
    assert len(mon.worker_points) >= 1


def test_monitor_records_cache_hits(tmp_path):
    from repro import ResultCache

    cache = ResultCache(root=str(tmp_path))
    run_grid_report(PAIR, jobs=1, cache=cache)
    mon = GridMonitor(len(PAIR), stream=None)
    run_grid_report(PAIR, jobs=1, cache=cache, monitor=mon)
    assert mon.cache_hits == 2 and mon.done == 0


def test_eight_point_live_grid_renders_progress():
    specs = eight_point_grid()
    stream = io.StringIO()
    mon = GridMonitor(len(specs), stream=stream, interval_s=0.0)
    report = run_grid_report(specs, jobs=2, monitor=mon)
    assert report.points == 8
    assert mon.processed == 8
    assert "8/8" in stream.getvalue()
    assert mon.eta_s() == 0


@pytest.mark.parametrize("kernel", [
    "pure", pytest.param("compiled", marks=needs_compiled)])
def test_live_on_off_identical_metrics(monkeypatch, kernel):
    """Telemetry observes; metrics must be bit-identical with it on."""
    monkeypatch.setenv("REPRO_KERNEL", kernel)
    plain = run_grid_report(PAIR, jobs=2)
    mon = GridMonitor(len(PAIR), stream=io.StringIO(), interval_s=0.0)
    live = run_grid_report(PAIR, jobs=2, monitor=mon)
    assert [r.scalar_metrics() for r in plain.results] == \
        [r.scalar_metrics() for r in live.results]


# -- exports ----------------------------------------------------------------


def test_openmetrics_export_is_valid(tmp_path):
    mon = GridMonitor(len(PAIR), stream=None)
    run_grid_report(PAIR, jobs=1, monitor=mon)
    text = mon.openmetrics()
    samples = validate_openmetrics(text)
    assert samples >= 8
    assert text.endswith("# EOF\n")
    path = tmp_path / "grid.om"
    mon.write_openmetrics(str(path))
    assert validate_openmetrics(path.read_text()) == samples


def test_jsonl_export_round_trips(tmp_path):
    mon = GridMonitor(len(PAIR), stream=None)
    run_grid_report(PAIR, jobs=1, monitor=mon)
    path = tmp_path / "progress.jsonl"
    count = mon.write_jsonl(str(path))
    events = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(events) == count >= 4  # start+done per point
    kinds = {e["kind"] for e in events}
    assert {"start", "done"} <= kinds


def test_validate_openmetrics_rejects_garbage():
    with pytest.raises(ValueError):
        validate_openmetrics("repro_x 1\n")  # no TYPE, no EOF
    with pytest.raises(ValueError):
        validate_openmetrics("# TYPE repro_x gauge\nrepro_x notanumber\n# EOF\n")
