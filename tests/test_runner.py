"""Tests for the parallel experiment runner (:mod:`repro.runner`).

The load-bearing property is determinism: fanning a grid across worker
processes must change *nothing* about the results — same metrics, same
ordering — versus the serial path. Short simulations keep these quick.
"""

import pytest

from repro import (
    ExperimentGridError,
    ExperimentSpec,
    GridPointError,
    resolve_chunk,
    resolve_jobs,
    run_grid,
    run_grid_report,
    run_replicated,
    run_replicated_grid,
    run_replicated_parallel,
)
from repro.runner import (
    CHUNK_ENV_VAR,
    JOBS_ENV_VAR,
    MAX_AUTO_CHUNK,
    TASKS_PER_WORKER,
    _replication_specs,
)


def _quick(**overrides) -> ExperimentSpec:
    defaults = dict(duration_s=0.8, warmup_s=0.2)
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def _grid():
    return [
        _quick(cc=cc, connections=n)
        for cc in ("bbr", "cubic")
        for n in (1, 2)
    ]


# -- determinism ------------------------------------------------------------


def test_parallel_grid_matches_serial_exactly():
    specs = _grid()
    serial = run_grid(specs, jobs=1)
    parallel = run_grid(specs, jobs=4)
    assert len(serial) == len(parallel) == len(specs)
    for s, p, spec in zip(serial, parallel, specs):
        # Results come back in grid order regardless of completion order.
        assert s.spec == p.spec == spec
        assert s.scalar_metrics() == p.scalar_metrics()
        assert s.per_flow_goodput_mbps == p.per_flow_goodput_mbps
        assert s.events_processed == p.events_processed


def test_parallel_replication_matches_serial_run_replicated():
    spec = _quick(cc="bbr", connections=2)
    serial = run_replicated(spec, runs=3)
    pooled = run_replicated_parallel(spec, runs=3, jobs=3)
    assert len(serial.runs) == len(pooled.runs) == 3
    for s, p in zip(serial.runs, pooled.runs):
        assert s.spec == p.spec  # identical derived seeds
        assert s.scalar_metrics() == p.scalar_metrics()
    assert serial.goodput_mbps == pooled.goodput_mbps
    assert serial.goodput_stdev == pooled.goodput_stdev
    for name in serial.stats.names():
        assert serial.stats.mean(name) == pooled.stats.mean(name)


def test_replication_seeds_match_serial_derivation():
    spec = _quick(seed=7)
    seeds = [s.seed for s in _replication_specs(spec, 4)]
    assert seeds == [7, 1007, 2007, 3007]


def test_run_replicated_grid_orders_by_spec():
    specs = [_quick(cc="bbr"), _quick(cc="cubic")]
    aggs = run_replicated_grid(specs, runs=2, jobs=2)
    assert [a.spec.cc for a in aggs] == ["bbr", "cubic"]
    assert all(len(a.runs) == 2 for a in aggs)


# -- error capture ----------------------------------------------------------


def test_failing_point_is_captured_not_fatal():
    good = _quick()
    bad = ExperimentSpec(duration_s=0.5, warmup_s=1.0)  # warmup >= duration
    results = run_grid([good, bad, good], jobs=2, raise_on_error=False)
    assert results[0].scalar_metrics() == results[2].scalar_metrics()
    err = results[1]
    assert isinstance(err, GridPointError)
    assert err.index == 1
    assert err.spec == bad
    assert "ValueError" in err.error
    assert "warmup must be shorter" in err.traceback


def test_failing_point_raises_after_grid_completes():
    bad = ExperimentSpec(duration_s=0.5, warmup_s=1.0)
    with pytest.raises(ExperimentGridError) as excinfo:
        run_grid([_quick(), bad], jobs=1)
    assert len(excinfo.value.errors) == 1
    assert excinfo.value.errors[0].index == 1


# -- chunked dispatch -------------------------------------------------------


def _chunk_grid():
    specs = [_quick(cc="bbr", seed=s) for s in range(1, 6)]
    bad = ExperimentSpec(duration_s=0.5, warmup_s=1.0)  # warmup >= duration
    specs.insert(2, bad)
    return specs, 2


def test_chunked_matches_unchunked_ordering_and_errors():
    specs, bad_index = _chunk_grid()
    unchunked = run_grid_report(specs, jobs=3, chunk=1, raise_on_error=False)
    chunked = run_grid_report(specs, jobs=3, chunk=2, raise_on_error=False)
    assert unchunked.chunk == 1 and chunked.chunk == 2
    assert len(unchunked.results) == len(chunked.results) == len(specs)
    for i, (u, c) in enumerate(zip(unchunked.results, chunked.results)):
        if i == bad_index:
            assert isinstance(u, GridPointError)
            assert isinstance(c, GridPointError)
            assert c.index == bad_index and c.spec == specs[bad_index]
            assert "warmup must be shorter" in c.traceback
        else:
            assert u.spec == c.spec == specs[i]
            assert u.scalar_metrics() == c.scalar_metrics()


def test_oversized_chunk_batches_whole_grid_into_one_task():
    specs = [_quick(cc=cc) for cc in ("bbr", "cubic")]
    report = run_grid_report(specs, jobs=2, chunk=64)
    assert report.chunk == 64
    assert [r.spec for r in report.results] == specs


def test_chunk_summary_line():
    specs = [_quick(cc="bbr", seed=s) for s in range(1, 5)]
    report = run_grid_report(specs, jobs=2, chunk=2)
    assert "chunk=2" in report.summary_line()


# -- chunk resolution -------------------------------------------------------


def test_resolve_chunk_explicit_wins(monkeypatch):
    monkeypatch.setenv(CHUNK_ENV_VAR, "7")
    assert resolve_chunk(3, points=100, jobs=2) == 3


def test_resolve_chunk_env_var(monkeypatch):
    monkeypatch.setenv(CHUNK_ENV_VAR, "5")
    assert resolve_chunk(points=100, jobs=2) == 5


def test_resolve_chunk_auto_sizing(monkeypatch):
    monkeypatch.delenv(CHUNK_ENV_VAR, raising=False)
    assert resolve_chunk(points=0, jobs=4) == 1
    assert resolve_chunk(points=8, jobs=4) == 1
    # 100 points on 2 workers: ceil(100 / (2 * TASKS_PER_WORKER))
    expected = -(-100 // (2 * TASKS_PER_WORKER))
    assert resolve_chunk(points=100, jobs=2) == expected
    assert resolve_chunk(points=100_000, jobs=2) == MAX_AUTO_CHUNK


@pytest.mark.parametrize("env", ["0", "-1", "2.5", "many"])
def test_resolve_chunk_bad_env(monkeypatch, env):
    monkeypatch.setenv(CHUNK_ENV_VAR, env)
    with pytest.raises(ValueError, match="REPRO_CHUNK"):
        resolve_chunk(points=10, jobs=2)


def test_resolve_chunk_rejects_bad_arguments():
    with pytest.raises(ValueError):
        resolve_chunk(0)
    with pytest.raises(ValueError):
        resolve_chunk(-3)
    with pytest.raises(ValueError):
        resolve_chunk(2.5)
    with pytest.raises(ValueError):
        resolve_chunk(True)


# -- jobs resolution / fallback ---------------------------------------------


def test_resolve_jobs_explicit_wins(monkeypatch):
    monkeypatch.setenv(JOBS_ENV_VAR, "8")
    assert resolve_jobs(3) == 3


def test_resolve_jobs_env_var(monkeypatch):
    monkeypatch.setenv(JOBS_ENV_VAR, "5")
    assert resolve_jobs() == 5


@pytest.mark.parametrize("env", ["lots", "2.5", "0", "-4"])
def test_resolve_jobs_bad_env(monkeypatch, env):
    """Junk REPRO_JOBS fails fast, naming the variable — not deep in the
    executor."""
    monkeypatch.setenv(JOBS_ENV_VAR, env)
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        resolve_jobs()


def test_resolve_jobs_rejects_nonpositive():
    with pytest.raises(ValueError):
        resolve_jobs(0)
    with pytest.raises(ValueError):
        resolve_jobs(-2)


def test_resolve_jobs_rejects_non_integers():
    with pytest.raises(ValueError, match="integer"):
        resolve_jobs(2.5)
    with pytest.raises(ValueError, match="integer"):
        resolve_jobs(True)


def test_report_serial_fallback_for_single_point():
    report = run_grid_report([_quick()], jobs=4)
    assert report.jobs == 1  # capped at the point count
    assert report.points == 1
    assert report.total_events > 0
    assert report.events_per_sec > 0
    assert "points=1" in report.summary_line()


def test_report_caps_workers_at_point_count():
    report = run_grid_report([_quick(), _quick(cc="cubic")], jobs=16)
    assert report.jobs == 2
    assert not report.errors


def test_empty_grid():
    report = run_grid_report([], jobs=4)
    assert report.results == []
    assert report.points == 0


def test_summary_line_renders_notices():
    report = run_grid_report([_quick()], jobs=1)
    assert "[note:" not in report.summary_line()
    report.notices.append("kernel 'compiled' unavailable; ran pure")
    line = report.summary_line()
    assert "[note: kernel 'compiled' unavailable; ran pure]" in line
