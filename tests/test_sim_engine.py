"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import EventLoop, SimulationError


def test_starts_at_time_zero(loop):
    assert loop.now == 0


def test_call_after_fires_at_right_time(loop):
    seen = []
    loop.call_after(100, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [100]


def test_call_at_absolute_time(loop):
    seen = []
    loop.call_at(250, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [250]


def test_events_fire_in_time_order(loop):
    seen = []
    loop.call_after(300, lambda: seen.append("c"))
    loop.call_after(100, lambda: seen.append("a"))
    loop.call_after(200, lambda: seen.append("b"))
    loop.run()
    assert seen == ["a", "b", "c"]


def test_same_time_events_fire_in_insertion_order(loop):
    seen = []
    for tag in ("first", "second", "third"):
        loop.call_at(50, lambda t=tag: seen.append(t))
    loop.run()
    assert seen == ["first", "second", "third"]


def test_call_soon_runs_after_pending_same_time_events(loop):
    seen = []
    loop.call_at(0, lambda: seen.append("pending"))
    loop.call_soon(lambda: seen.append("soon"))
    loop.run()
    assert seen == ["pending", "soon"]


def test_cannot_schedule_in_the_past(loop):
    loop.call_after(100, lambda: None)
    loop.run()
    with pytest.raises(SimulationError):
        loop.call_at(50, lambda: None)


def test_negative_delay_rejected(loop):
    with pytest.raises(SimulationError):
        loop.call_after(-1, lambda: None)


def test_cancelled_event_does_not_fire(loop):
    seen = []
    event = loop.call_after(100, lambda: seen.append("x"))
    event.cancel()
    loop.run()
    assert seen == []
    assert not event.pending


def test_run_until_stops_clock_at_horizon(loop):
    loop.call_after(1000, lambda: None)
    loop.run(until=500)
    assert loop.now == 500
    # The event is still pending and fires on the next run.
    fired = []
    loop.call_at(1000, lambda: fired.append(1))
    loop.run(until=2000)
    assert loop.now == 2000


def test_event_at_exact_horizon_fires(loop):
    seen = []
    loop.call_at(500, lambda: seen.append(1))
    loop.run(until=500)
    assert seen == [1]


def test_events_scheduled_during_run_execute(loop):
    seen = []

    def first():
        loop.call_after(10, lambda: seen.append("second"))
        seen.append("first")

    loop.call_after(5, first)
    loop.run()
    assert seen == ["first", "second"]


def test_stop_halts_processing(loop):
    seen = []

    def first():
        seen.append(1)
        loop.stop()

    loop.call_after(1, first)
    loop.call_after(2, lambda: seen.append(2))
    loop.run()
    assert seen == [1]
    assert loop.pending_count() == 1


def test_max_events_guard(loop):
    def reschedule():
        loop.call_after(1, reschedule)

    loop.call_after(1, reschedule)
    with pytest.raises(SimulationError):
        loop.run(max_events=100)


def test_events_processed_counter(loop):
    for i in range(5):
        loop.call_after(i + 1, lambda: None)
    cancelled = loop.call_after(10, lambda: None)
    cancelled.cancel()
    loop.run()
    assert loop.events_processed == 5


def test_peek_next_time_skips_cancelled(loop):
    e1 = loop.call_after(10, lambda: None)
    loop.call_after(20, lambda: None)
    e1.cancel()
    assert loop.peek_next_time() == 20


def test_run_while_running_rejected(loop):
    def reenter():
        with pytest.raises(SimulationError):
            loop.run()

    loop.call_after(1, reenter)
    loop.run()


# -- lazy deletion / heap compaction ----------------------------------------


def test_pending_count_is_exact_under_cancellation(loop):
    events = [loop.call_after(100 + i, lambda: None) for i in range(10)]
    assert loop.pending_count() == 10
    for e in events[:4]:
        e.cancel()
    assert loop.pending_count() == 6
    # double-cancel must not double-count
    events[0].cancel()
    assert loop.pending_count() == 6


def test_cancel_after_fire_is_noop(loop):
    event = loop.call_after(10, lambda: None)
    loop.run()
    event.cancel()
    assert loop.pending_count() == 0
    assert not event.pending


def test_heap_growth_bounded_under_timer_rearm_churn():
    """Re-arming a timer 20k times must not grow the heap by 20k entries.

    This is the pacing/RTO pattern: each re-arm cancels the previous
    far-future event and pushes a new one. On a heap-only loop, lazy
    deletion alone would accumulate every cancelled entry until its
    expiry; compaction keeps heap size proportional to the live count.
    """
    from repro.sim.timer import Timer

    loop = EventLoop(wheel=False)
    timer = Timer(loop, lambda: None)
    for i in range(20_000):
        timer.start(1_000_000 + i)  # always re-armed into the far future
    assert loop.pending_count() == 1
    # Compaction bounds the heap at ~2x the compaction floor, not 20k.
    assert len(loop._heap) < 2_000
    assert loop.compactions > 0


def test_wheel_absorbs_timer_rearm_churn_with_no_debt():
    """With the wheel on (the default), the same churn leaves zero debt.

    Each cancel is a true O(1) bucket delete, so neither the heap nor
    the wheel accumulates cancelled entries and compaction never runs.
    """
    from repro.sim.timer import Timer

    loop = EventLoop()
    timer = Timer(loop, lambda: None)
    for i in range(20_000):
        timer.start(200_000_000 + i)  # RTO-scale horizon: wheel-routed
    assert loop.pending_count() == 1
    assert len(loop._heap) == 0
    assert loop._wheel.live_count() == 1
    assert loop.compactions == 0


def test_compaction_preserves_firing_order(loop):
    seen = []
    keep = []
    for i in range(600):
        loop.call_at(1_000 + i, lambda i=i: seen.append(i))
        keep.append(i)
    # Cancel every other event to push past the compaction threshold.
    cancelled = []
    for i in range(2_000):
        e = loop.call_at(5_000 + i, lambda: seen.append("dead"))
        e.cancel()
        cancelled.append(i)
    loop.run()
    assert seen == list(range(600))


def test_explicit_compact_drops_cancelled_entries():
    # Heap-only loop: compaction is a heap concern (wheel cancels are
    # hard deletes and leave nothing to compact).
    loop = EventLoop(wheel=False)
    live = loop.call_after(100, lambda: None)
    dead = [loop.call_after(200 + i, lambda: None) for i in range(50)]
    for e in dead:
        e.cancel()
    assert len(loop._heap) == 51
    loop.compact()
    assert len(loop._heap) == 1
    assert loop.pending_count() == 1
    assert live.pending


def test_peek_next_time_updates_cancel_accounting():
    loop = EventLoop(wheel=False)
    first = loop.call_after(10, lambda: None)
    loop.call_after(20, lambda: None)
    first.cancel()
    assert loop.peek_next_time() == 20
    assert loop.pending_count() == 1
    assert len(loop._heap) == 1
