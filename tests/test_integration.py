"""Integration tests: cross-module behaviour on the full simulated device.

These exercise the complete pipeline (device CPU -> stack -> testbed ->
server) and pin down the paper's qualitative results as regressions.
They use short durations; the benchmark suite runs the full-scale grids.
"""

import pytest

from repro import (
    CpuConfig,
    ExperimentSpec,
    LTE_CELLULAR,
    NetemConfig,
    PIXEL_6,
    PacingMode,
    WIFI_LAN,
    run_experiment,
)
from repro.units import mbps


def spec(**kw):
    defaults = dict(
        cpu_config=CpuConfig.LOW_END, duration_s=3.0, warmup_s=1.0
    )
    defaults.update(kw)
    return ExperimentSpec(**defaults)


# -- the paper's core findings, miniaturized ---------------------------------


def test_high_end_reaches_near_line_rate_for_both():
    for cc in ("bbr", "cubic"):
        r = run_experiment(spec(cc=cc, connections=1, cpu_config=CpuConfig.HIGH_END,
                                duration_s=2.0, warmup_s=0.5))
        assert r.goodput_mbps > 900, cc


def test_goodput_ordering_low_end_20c():
    """cubic > bbr-unpaced > bbr-paced on a Low-End device at 20 conns."""
    cubic = run_experiment(spec(cc="cubic", connections=20))
    unpaced = run_experiment(spec(cc="bbr", connections=20,
                                  pacing_mode=PacingMode.OFF))
    paced = run_experiment(spec(cc="bbr", connections=20))
    assert cubic.goodput_mbps > unpaced.goodput_mbps > paced.goodput_mbps


def test_bbr_gap_grows_with_connections():
    r1 = run_experiment(spec(cc="bbr", connections=1))
    r20 = run_experiment(spec(cc="bbr", connections=20))
    c1 = run_experiment(spec(cc="cubic", connections=1))
    c20 = run_experiment(spec(cc="cubic", connections=20))
    assert (r20.goodput_mbps / c20.goodput_mbps) < (r1.goodput_mbps / c1.goodput_mbps)


def test_smaller_skbs_with_more_connections():
    """The autosize coupling that drives the effect (DESIGN.md §4.3)."""
    r1 = run_experiment(spec(cc="bbr", connections=1))
    r20 = run_experiment(spec(cc="bbr", connections=20))
    assert r20.mean_skb_bytes < 0.5 * r1.mean_skb_bytes


def test_stride_amortizes_timer_fires():
    s1 = run_experiment(spec(cc="bbr", connections=20))
    s10 = run_experiment(spec(cc="bbr", connections=20, pacing_stride=10.0))
    # An order of magnitude fewer pacing periods per delivered byte.
    rate1 = s1.pacing_periods / max(1.0, s1.goodput_mbps)
    rate10 = s10.pacing_periods / max(1.0, s10.goodput_mbps)
    assert rate10 < 0.3 * rate1
    assert s10.goodput_mbps > s1.goodput_mbps


def test_stride_keeps_rtt_far_below_unpaced():
    strided = run_experiment(spec(cc="bbr", connections=20, pacing_stride=10.0))
    unpaced = run_experiment(spec(cc="bbr", connections=20,
                                  pacing_mode=PacingMode.OFF))
    assert strided.rtt_mean_ms < unpaced.rtt_mean_ms


def test_pixel6_shows_same_shape():
    bbr = run_experiment(spec(cc="bbr", connections=20, device=PIXEL_6))
    cubic = run_experiment(spec(cc="cubic", connections=20, device=PIXEL_6))
    assert bbr.goodput_mbps < 0.8 * cubic.goodput_mbps


def test_wifi_medium_varies_but_preserves_gap():
    bbr = run_experiment(spec(cc="bbr", connections=20, medium=WIFI_LAN))
    cubic = run_experiment(spec(cc="cubic", connections=20, medium=WIFI_LAN))
    assert bbr.goodput_mbps < cubic.goodput_mbps


def test_lte_no_gap():
    bbr = run_experiment(spec(cc="bbr", connections=5, medium=LTE_CELLULAR,
                              duration_s=5.0, warmup_s=2.0))
    cubic = run_experiment(spec(cc="cubic", connections=5, medium=LTE_CELLULAR,
                                duration_s=5.0, warmup_s=2.0))
    assert abs(bbr.goodput_mbps - cubic.goodput_mbps) / cubic.goodput_mbps < 0.3
    assert bbr.goodput_mbps < 20


def test_bbr2_behaves_like_bbr_on_low_end():
    bbr2 = run_experiment(spec(cc="bbr2", connections=20))
    cubic = run_experiment(spec(cc="cubic", connections=20))
    assert bbr2.goodput_mbps < 0.85 * cubic.goodput_mbps


def test_cpu_frequency_scales_goodput():
    low = run_experiment(spec(cc="cubic", connections=1))
    mid = run_experiment(spec(cc="cubic", connections=1,
                              cpu_config=CpuConfig.MID_END))
    # 1.2 GHz vs 576 MHz: roughly the frequency ratio, below line rate.
    ratio = mid.goodput_mbps / low.goodput_mbps
    assert 1.6 < ratio < 2.6


def test_conservation_no_goodput_inflation_from_retransmits():
    """Goodput is receiver-side in-order bytes; loss cannot inflate it."""
    lossy = run_experiment(spec(
        cc="cubic", connections=4,
        netem=NetemConfig(loss_probability=0.03),
    ))
    clean = run_experiment(spec(cc="cubic", connections=4))
    assert lossy.retransmitted_segments > 0
    assert lossy.goodput_mbps <= clean.goodput_mbps * 1.05


def test_default_config_sits_between_low_and_high():
    low = run_experiment(spec(cc="bbr", connections=20, duration_s=5.0, warmup_s=2.5))
    default = run_experiment(spec(cc="bbr", connections=20, duration_s=5.0,
                                  warmup_s=2.5, cpu_config=CpuConfig.DEFAULT))
    high = run_experiment(spec(cc="bbr", connections=20, duration_s=5.0,
                               warmup_s=2.5, cpu_config=CpuConfig.HIGH_END))
    assert low.goodput_mbps < default.goodput_mbps < high.goodput_mbps
