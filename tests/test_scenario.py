"""Tests for the declarative scenario layer: component registries,
spec serialization, and scenario-file expansion."""

import json
import os

import pytest

from repro import (
    CC_ALGORITHMS,
    CPU_CONFIGS,
    DEVICES,
    EXECUTORS,
    ExperimentSpec,
    MEDIA,
    CpuConfig,
    DuplicateNameError,
    Registry,
    UnknownNameError,
    all_registries,
    expand_scenario,
    expand_scenario_dicts,
    load_scenario,
    run_experiment,
    run_replicated,
    spec_from_dict,
    spec_to_dict,
)

SCENARIO_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "benchmarks", "scenarios"
)


def scenario_file(name):
    return os.path.join(SCENARIO_DIR, f"{name}.json")


# ---------------------------------------------------------------------------
# Registry behaviour
# ---------------------------------------------------------------------------


def test_registry_register_get_names_order():
    reg = Registry("widget")
    reg.register("b", 2)
    reg.register("a", 1)
    assert reg.get("b") == 2
    assert reg.names() == ("b", "a")  # registration order, not sorted
    assert "a" in reg and "zz" not in reg
    assert len(reg) == 2


def test_registry_unknown_name_lists_choices():
    reg = Registry("widget")
    reg.register("alpha", 1)
    reg.register("beta", 2)
    with pytest.raises(UnknownNameError) as exc:
        reg.get("gamma")
    assert "unknown widget 'gamma'" in str(exc.value)
    assert "alpha" in str(exc.value) and "beta" in str(exc.value)
    assert isinstance(exc.value, ValueError)  # callers catch ValueError


def test_registry_duplicate_rejected_unless_replace():
    reg = Registry("widget")
    reg.register("x", 1)
    with pytest.raises(DuplicateNameError):
        reg.register("x", 2)
    assert reg.get("x") == 1
    reg.register("x", 2, replace=True)
    assert reg.get("x") == 2


def test_builtin_registries_populated():
    assert set(CC_ALGORITHMS.names()) == {"cubic", "bbr", "bbr2", "reno"}
    assert set(EXECUTORS.names()) == {"serial", "rps", "free"}
    assert set(MEDIA.names()) == {"ethernet", "wifi", "lte"}
    assert set(DEVICES.names()) == {"pixel4", "pixel6"}
    assert CPU_CONFIGS.names() == CpuConfig.ALL
    registries = all_registries()
    assert len(registries) == 6
    assert "probe" in registries and len(registries["probe"]) > 0


def test_registered_cc_extension_reaches_experiment():
    """A newly registered algorithm is runnable by name, core untouched."""
    from repro.cc import Reno

    CC_ALGORITHMS.register("reno-test-variant", Reno)
    try:
        spec = ExperimentSpec(
            cc="reno-test-variant", connections=1,
            duration_s=1.0, warmup_s=0.2,
        )
        result = run_experiment(spec_from_dict(spec.to_dict()))
        assert result.goodput_mbps > 0
    finally:
        CC_ALGORITHMS._items.pop("reno-test-variant")


# ---------------------------------------------------------------------------
# Spec serialization
# ---------------------------------------------------------------------------


def test_spec_to_dict_uses_registry_names():
    wire = spec_to_dict(ExperimentSpec())
    assert wire["device"] == "pixel4"
    assert wire["medium"] == "ethernet"
    assert wire["netem"] is None
    assert wire["costs"] is None


def test_spec_from_dict_defaults_for_missing_keys():
    assert spec_from_dict({}) == ExperimentSpec()
    assert spec_from_dict({"cc": "cubic"}) == ExperimentSpec(cc="cubic")


def test_spec_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match=r"unknown ExperimentSpec key\(s\)"):
        spec_from_dict({"cc": "bbr", "connectoins": 2})


def test_spec_from_dict_rejects_unknown_nested_keys():
    with pytest.raises(ValueError, match="netem"):
        spec_from_dict({"netem": {"rate_bps": 1e6, "burst": 3}})
    with pytest.raises(ValueError, match="costs"):
        spec_from_dict({"costs": {"cycles_per_byte_recv": 1.0}})


def test_spec_from_dict_rejects_unknown_device_and_medium():
    with pytest.raises(ValueError, match="pixel4"):
        spec_from_dict({"device": "pixel9"})
    with pytest.raises(ValueError, match="ethernet"):
        spec_from_dict({"medium": "5g"})


def test_unregistered_profile_serializes_inline():
    from dataclasses import replace

    from repro import PIXEL_4

    custom = replace(PIXEL_4, cycles_scale=0.7)
    spec = ExperimentSpec(device=custom)
    wire = spec.to_dict()
    assert isinstance(wire["device"], dict)
    assert spec_from_dict(json.loads(json.dumps(wire))) == spec


# ---------------------------------------------------------------------------
# Scenario expansion
# ---------------------------------------------------------------------------


def test_grid_expansion_order_is_last_axis_fastest():
    doc = {
        "base": {"cc": "bbr"},
        "grid": {"connections": [1, 5], "pacing_mode": ["auto", "off"]},
    }
    points = [
        (s.connections, s.pacing_mode) for s in expand_scenario(doc)
    ]
    assert points == [(1, "auto"), (1, "off"), (5, "auto"), (5, "off")]


def test_base_only_scenario_is_one_point():
    specs = expand_scenario({"base": {"cc": "cubic", "connections": 4}})
    assert specs == [ExperimentSpec(cc="cubic", connections=4)]


def test_overrides_apply_to_matching_points_in_order():
    doc = {
        "base": {"cc": "bbr", "seed": 1},
        "grid": {"cpu_config": ["low-end", "default"]},
        "overrides": [
            {"match": {"cpu_config": "default"}, "set": {"seed": 7}},
            {"set": {"connections": 2}},  # no match = applies everywhere
        ],
    }
    specs = expand_scenario(doc)
    assert [s.seed for s in specs] == [1, 7]
    assert [s.connections for s in specs] == [2, 2]


def test_scenario_rejects_unknown_keys_everywhere():
    with pytest.raises(ValueError, match="scenario"):
        expand_scenario_dicts({"base": {}, "gird": {}})
    with pytest.raises(ValueError, match="scenario base"):
        expand_scenario_dicts({"base": {"cpu": "low-end"}})
    with pytest.raises(ValueError, match="scenario grid"):
        expand_scenario_dicts({"grid": {"strides": [1, 2]}})
    with pytest.raises(ValueError, match=r"override #0"):
        expand_scenario_dicts({"overrides": [{"match": {}, "apply": {}}]})
    with pytest.raises(ValueError, match=r"override #0 match"):
        expand_scenario_dicts({"overrides": [{"match": {"ccc": "bbr"}}]})


def test_scenario_rejects_empty_grid_axis():
    with pytest.raises(ValueError, match="non-empty list"):
        expand_scenario_dicts({"grid": {"connections": []}})


# ---------------------------------------------------------------------------
# Checked-in canonical scenarios
# ---------------------------------------------------------------------------


def test_fig5_scenario_matches_python_built_grid():
    specs = load_scenario(scenario_file("fig5_pacing_connections"))
    expected = [
        ExperimentSpec(
            cc="bbr", cpu_config="low-end", connections=n, pacing_mode=mode,
            duration_s=4.0, warmup_s=1.5,
        )
        for n in (1, 5, 20)
        for mode in ("auto", "off")
    ]
    assert specs == expected


def test_fig8_scenario_matches_python_built_grid():
    specs = load_scenario(scenario_file("fig8_stride_sweep"))
    expected = [
        ExperimentSpec(
            cc="bbr", connections=20, cpu_config=config, pacing_stride=stride,
            duration_s=4.0, warmup_s=1.5,
        )
        for config in ("low-end", "mid-end", "default")
        for stride in (1.0, 2.0, 5.0, 10.0, 20.0, 50.0)
    ]
    assert specs == expected


def test_smoke_scenario_expands_to_two_points():
    specs = load_scenario(scenario_file("smoke_2point"))
    assert [s.cc for s in specs] == ["bbr", "cubic"]
    assert all(s.connections == 2 for s in specs)


# ---------------------------------------------------------------------------
# Satellite behaviours riding on the refactor
# ---------------------------------------------------------------------------


def test_scalar_metrics_cover_all_numeric_fields():
    result = run_experiment(
        ExperimentSpec(cc="bbr", connections=2, duration_s=1.0, warmup_s=0.2)
    )
    metrics = result.scalar_metrics()
    for name in (
        "rtt_min_ms", "rto_count", "pacing_periods",
        "router_dropped_segments", "phone_dropped_segments",
        "peak_qdisc_segments", "events_processed",
    ):
        assert name in metrics, name
    assert "spec" not in metrics and "per_flow_goodput_mbps" not in metrics
    assert all(isinstance(v, float) for v in metrics.values())


def test_run_replicated_parallel_matches_serial():
    spec = ExperimentSpec(cc="cubic", connections=1, duration_s=1.0, warmup_s=0.2)
    serial = run_replicated(spec, runs=2, jobs=1)
    parallel = run_replicated(spec, runs=2, jobs=2)
    assert [r.scalar_metrics() for r in serial.runs] == \
           [r.scalar_metrics() for r in parallel.runs]
    assert serial.goodput_mbps == parallel.goodput_mbps
    assert serial.stats.runs == parallel.stats.runs == 2


def test_run_replicated_rejects_bad_jobs():
    spec = ExperimentSpec(duration_s=1.0, warmup_s=0.2)
    with pytest.raises(ValueError):
        run_replicated(spec, runs=1, jobs=0)
