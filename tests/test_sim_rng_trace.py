"""Unit tests for RNG streams and the tracer."""

from repro.sim import RngStreams, Tracer


def test_same_seed_same_stream():
    a = RngStreams(42).stream("wifi")
    b = RngStreams(42).stream("wifi")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_independent():
    rngs = RngStreams(42)
    a = [rngs.stream("wifi").random() for _ in range(5)]
    b = [rngs.stream("lte").random() for _ in range(5)]
    assert a != b


def test_stream_creation_order_irrelevant():
    r1 = RngStreams(7)
    r1.stream("a")
    first = r1.stream("b").random()
    r2 = RngStreams(7)
    second = r2.stream("b").random()  # "a" never created
    assert first == second


def test_fork_is_deterministic_and_distinct():
    base = RngStreams(1)
    f1 = base.fork(3).stream("x").random()
    f2 = RngStreams(1).fork(3).stream("x").random()
    assert f1 == f2
    assert f1 != RngStreams(1).stream("x").random()


def test_tracer_records_and_filters():
    tracer = Tracer()
    tracer.emit(10, "link", "drop", flow=1)
    tracer.emit(20, "link", "send", flow=2)
    tracer.emit(30, "cpu", "drop", flow=3)
    assert len(tracer.records) == 3
    assert len(tracer.filter(source="link")) == 2
    assert len(tracer.filter(event="drop")) == 2
    assert len(tracer.filter(source="link", event="drop")) == 1


def test_tracer_disabled_keeps_nothing():
    tracer = Tracer(enabled=False)
    tracer.emit(10, "x", "y")
    assert tracer.records == []


def test_tracer_subscriber_called():
    tracer = Tracer(keep=False)
    seen = []
    tracer.subscribe(seen.append)
    tracer.emit(5, "src", "evt", a=1)
    assert len(seen) == 1
    assert seen[0].fields == {"a": 1}
    assert tracer.records == []


def test_tracer_clear():
    tracer = Tracer()
    tracer.emit(1, "a", "b")
    tracer.clear()
    assert tracer.records == []


def test_trace_record_str():
    tracer = Tracer()
    tracer.emit(1_000_000, "link", "drop", flow=7)
    text = str(tracer.records[0])
    assert "link" in text and "drop" in text and "flow=7" in text
