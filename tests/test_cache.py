"""Tests for the content-addressed result cache (:mod:`repro.cache`).

The load-bearing properties: a hit reproduces the fresh run's metrics
bit-identically, any spec or code change misses, and the cache can never
turn a runnable grid into a failing one (corrupt entries and unwritable
directories degrade to plain recomputation).
"""

import json
import os

import pytest

from repro import (
    ExperimentSpec,
    ResultCache,
    canonical_spec_json,
    run_experiment,
    run_grid_report,
    spec_digest,
)
from repro.cache import (
    CACHE_DIR_ENV_VAR,
    CACHE_ENV_VAR,
    cache_enabled,
    code_fingerprint,
    default_cache_dir,
    kernel_fingerprint,
    resolve_cache,
    result_from_dict,
    result_to_dict,
)


def _quick(**overrides) -> ExperimentSpec:
    defaults = dict(connections=1, duration_s=0.6, warmup_s=0.2)
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


# -- addressing -------------------------------------------------------------


def test_canonical_json_is_stable_and_key_sorted():
    spec = _quick(cc="bbr")
    text = canonical_spec_json(spec)
    assert text == canonical_spec_json(_quick(cc="bbr"))  # equal specs agree
    keys = list(json.loads(text))
    assert keys == sorted(keys)


def test_spec_digest_changes_on_any_mutation():
    base = _quick()
    assert spec_digest(base) == spec_digest(_quick())
    for mutated in (
        _quick(seed=2),
        _quick(cc="cubic"),
        _quick(connections=2),
        _quick(pacing_stride=5.0),
        _quick(probes=("cwnd",)),
    ):
        assert spec_digest(mutated) != spec_digest(base)


def test_code_fingerprint_is_memoized_hex():
    fp = code_fingerprint()
    assert fp == code_fingerprint()
    assert len(fp) == 64
    int(fp, 16)  # valid hex


# -- result serialization ---------------------------------------------------


def test_result_round_trip_is_bit_identical():
    result = run_experiment(_quick(cc="bbr"))
    rebuilt = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
    assert rebuilt.spec == result.spec
    assert rebuilt.scalar_metrics() == result.scalar_metrics()
    assert rebuilt.per_flow_goodput_mbps == result.per_flow_goodput_mbps
    # ints must survive as ints, not floats
    assert isinstance(rebuilt.events_processed, int)
    assert isinstance(rebuilt.retransmitted_segments, int)


def test_result_round_trip_preserves_timeseries():
    result = run_experiment(_quick(cc="bbr", probes=("cwnd", "bbr_state")))
    rebuilt = result_from_dict(result_to_dict(result))
    assert sorted(rebuilt.timeseries) == sorted(result.timeseries)
    for name, ts in result.timeseries.items():
        back = rebuilt.timeseries[name]
        assert back.t_ns == ts.t_ns
        assert back.values == ts.values
        assert back.labels == ts.labels
        assert back.unit == ts.unit


def test_result_from_dict_rejects_schema_mismatch():
    payload = result_to_dict(run_experiment(_quick()))
    payload["metrics"].pop("goodput_mbps")
    with pytest.raises(ValueError, match="schema"):
        result_from_dict(payload)


# -- cache store ------------------------------------------------------------


def test_cache_hit_returns_bit_identical_metrics(tmp_path):
    cache = ResultCache(root=str(tmp_path))
    spec = _quick(cc="bbr")
    assert cache.get(spec) is None
    fresh = run_experiment(spec)
    assert cache.put(spec, fresh)
    hit = cache.get(spec)
    assert hit is not None
    assert hit.spec == spec
    assert json.dumps(hit.scalar_metrics(), sort_keys=True) == \
        json.dumps(fresh.scalar_metrics(), sort_keys=True)
    assert hit.per_flow_goodput_mbps == fresh.per_flow_goodput_mbps


def test_cache_invalidated_by_spec_mutation(tmp_path):
    cache = ResultCache(root=str(tmp_path))
    spec = _quick(seed=1)
    cache.put(spec, run_experiment(spec))
    assert cache.get(spec) is not None
    assert cache.get(_quick(seed=2)) is None
    assert cache.get(_quick(seed=1, cc="cubic")) is None


def test_cache_invalidated_by_code_fingerprint_change(tmp_path):
    spec = _quick()
    old = ResultCache(root=str(tmp_path), fingerprint="a" * 64)
    old.put(spec, run_experiment(spec))
    assert old.get(spec) is not None
    new = ResultCache(root=str(tmp_path), fingerprint="b" * 64)
    assert new.get(spec) is None  # other code version: miss
    stats = new.stats()
    assert stats.current_entries == 0
    assert stats.stale_entries == 1


def test_corrupt_entry_reads_as_miss(tmp_path):
    cache = ResultCache(root=str(tmp_path))
    spec = _quick()
    cache.put(spec, run_experiment(spec))
    with open(cache.entry_path(spec), "w") as fh:
        fh.write("{not json")
    assert cache.get(spec) is None


def test_put_leaves_no_temp_files(tmp_path):
    cache = ResultCache(root=str(tmp_path))
    spec = _quick()
    cache.put(spec, run_experiment(spec))
    names = os.listdir(cache.version_dir)
    assert names == [spec_digest(spec) + ".json"]


def test_put_failure_is_swallowed(tmp_path):
    # A root that is a *file* makes every directory operation fail.
    blocker = tmp_path / "blocked"
    blocker.write_text("")
    cache = ResultCache(root=str(blocker))
    spec = _quick()
    assert cache.put(spec, run_experiment(spec)) is False
    assert cache.get(spec) is None


def test_clear_and_stats(tmp_path):
    cache = ResultCache(root=str(tmp_path))
    stale = ResultCache(root=str(tmp_path), fingerprint="c" * 64)
    result = run_experiment(_quick())
    cache.put(_quick(), result)
    cache.put(_quick(seed=9), run_experiment(_quick(seed=9)))
    stale.put(_quick(), result)
    stats = cache.stats()
    assert stats.current_entries == 2
    assert stats.stale_entries == 1
    assert stats.versions == 2
    assert stats.size_bytes > 0
    assert cache.clear(stale_only=True) == 1
    assert cache.stats().current_entries == 2
    assert cache.clear() == 2
    empty = cache.stats()
    assert empty.entries == 0 and empty.versions == 0


# -- env resolution ---------------------------------------------------------


def test_default_cache_dir_env_override(monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV_VAR, "/tmp/somewhere-else")
    assert default_cache_dir() == "/tmp/somewhere-else"
    monkeypatch.delenv(CACHE_DIR_ENV_VAR)
    assert default_cache_dir().endswith(os.path.join(".cache", "repro-bbr"))


@pytest.mark.parametrize("value,enabled", [
    ("off", False), ("0", False), ("no", False), ("FALSE", False),
    ("", True), ("on", True), ("1", True),
])
def test_cache_enabled_env_values(monkeypatch, value, enabled):
    monkeypatch.setenv(CACHE_ENV_VAR, value)
    assert cache_enabled() is enabled


def test_resolve_cache_contract(monkeypatch, tmp_path):
    explicit = ResultCache(root=str(tmp_path))
    monkeypatch.setenv(CACHE_ENV_VAR, "off")
    assert resolve_cache(None) is None          # env disables the default
    assert resolve_cache(False) is None
    assert resolve_cache(explicit) is explicit  # explicit store always wins
    assert resolve_cache(True) is not None      # True overrides the env
    monkeypatch.setenv(CACHE_ENV_VAR, "on")
    monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "default"))
    resolved = resolve_cache(None)
    assert resolved is not None
    assert resolved.root == str(tmp_path / "default")


# -- grid integration -------------------------------------------------------


def _grid():
    return [_quick(cc=cc, seed=s) for cc in ("bbr", "cubic") for s in (1, 2)]


def test_grid_cold_then_warm_counters_and_metrics(tmp_path):
    cache = ResultCache(root=str(tmp_path))
    specs = _grid()
    cold = run_grid_report(specs, jobs=2, cache=cache)
    assert cold.cache_used
    assert (cold.cache_hits, cold.cache_misses) == (0, len(specs))
    warm = run_grid_report(specs, jobs=2, cache=cache)
    assert (warm.cache_hits, warm.cache_misses) == (len(specs), 0)
    assert warm.total_events == 0  # nothing was recomputed
    assert "cache hits=4 misses=0" in warm.summary_line()
    cold_metrics = [r.scalar_metrics() for r in cold.results]
    warm_metrics = [r.scalar_metrics() for r in warm.results]
    assert json.dumps(cold_metrics, sort_keys=True) == \
        json.dumps(warm_metrics, sort_keys=True)
    assert [r.spec for r in warm.results] == specs


def test_grid_partial_warm_recomputes_only_new_points(tmp_path):
    cache = ResultCache(root=str(tmp_path))
    specs = _grid()
    run_grid_report(specs[:2], jobs=1, cache=cache)
    mixed = run_grid_report(specs, jobs=2, cache=cache)
    assert (mixed.cache_hits, mixed.cache_misses) == (2, 2)
    assert [r.spec for r in mixed.results] == specs


def test_grid_cache_false_bypasses_store(tmp_path):
    cache_dir = tmp_path / "cache"
    specs = _grid()[:2]
    report = run_grid_report(specs, jobs=1, cache=False)
    assert not report.cache_used
    assert report.cache_hits == report.cache_misses == 0
    assert "cache" not in report.summary_line()
    assert not cache_dir.exists()


def test_grid_error_points_are_never_cached(tmp_path):
    cache = ResultCache(root=str(tmp_path))
    bad = ExperimentSpec(duration_s=0.5, warmup_s=1.0)  # warmup >= duration
    report = run_grid_report([_quick(), bad], jobs=1, cache=cache,
                             raise_on_error=False)
    assert (report.cache_hits, report.cache_misses, report.cache_skipped) == \
        (0, 1, 1)
    assert not os.path.exists(cache.entry_path(bad))
    again = run_grid_report([_quick(), bad], jobs=1, cache=cache,
                            raise_on_error=False)
    assert (again.cache_hits, again.cache_skipped) == (1, 1)


def test_cli_no_cache_flag_writes_nothing(monkeypatch, tmp_path):
    import io

    from repro.cli import main

    cache_dir = tmp_path / "cli-cache"
    monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(cache_dir))
    monkeypatch.setenv(CACHE_ENV_VAR, "on")
    args = ["run", "--cc", "bbr", "--connections", "1",
            "--duration", "0.6", "--warmup", "0.2"]
    out = io.StringIO()
    assert main(args + ["--no-cache"], out=out) == 0
    assert not cache_dir.exists()
    assert "cache" not in out.getvalue()
    out = io.StringIO()
    assert main(args, out=out) == 0  # cached path does write
    assert cache_dir.exists()
    assert "cache hits=0 misses=1" in out.getvalue()
    out = io.StringIO()
    assert main(args, out=out) == 0
    assert "cache hits=1 misses=0" in out.getvalue()


def test_cli_cache_stats_clear_path(monkeypatch, tmp_path):
    import io

    from repro.cli import main

    cache_dir = tmp_path / "cli-cache"
    monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(cache_dir))
    monkeypatch.setenv(CACHE_ENV_VAR, "on")
    out = io.StringIO()
    assert main(["run", "--cc", "bbr", "--connections", "1",
                 "--duration", "0.6", "--warmup", "0.2"], out=out) == 0
    out = io.StringIO()
    assert main(["cache", "path"], out=out) == 0
    assert out.getvalue().strip() == str(cache_dir)
    out = io.StringIO()
    assert main(["cache", "stats", "--json"], out=out) == 0
    stats = json.loads(out.getvalue())
    assert stats["current_entries"] == 1
    # the default cache version is kernel-aware (== code_fingerprint()
    # under the pure kernel, a derived version under compiled)
    assert stats["fingerprint"] == kernel_fingerprint()
    out = io.StringIO()
    assert main(["cache", "clear"], out=out) == 0
    assert "removed 1 cache entries" in out.getvalue()
    out = io.StringIO()
    assert main(["cache", "stats", "--json"], out=out) == 0
    assert json.loads(out.getvalue())["entries"] == 0
