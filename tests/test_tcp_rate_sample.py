"""Unit tests for delivery-rate estimation."""

from repro.tcp import DeliveryRateEstimator, TxRecord
from repro.units import MSEC, SEC


def send_record(est, seq, nbytes, now, has_inflight, app_limited=False):
    snapshot = est.on_send(now, has_inflight=has_inflight, app_limited=app_limited)
    return TxRecord(
        seq=seq, end_seq=seq + nbytes, segments=max(1, nbytes // 1448),
        sent_ns=now, **snapshot,
    )


def test_flight_restart_resets_clocks():
    est = DeliveryRateEstimator()
    record = send_record(est, 0, 1448, now=5 * MSEC, has_inflight=False)
    assert record.first_sent_at_send == 5 * MSEC
    assert record.delivered_time_at_send == 5 * MSEC


def test_chained_sends_keep_clocks():
    est = DeliveryRateEstimator()
    send_record(est, 0, 1448, now=0, has_inflight=False)
    second = send_record(est, 1448, 1448, now=MSEC, has_inflight=True)
    assert second.first_sent_at_send == 0


def test_sample_rate_matches_delivery():
    est = DeliveryRateEstimator()
    record = send_record(est, 0, 10_000, now=0, has_inflight=False)
    est.on_delivered(10_000, now_ns=10 * MSEC)
    rs = est.make_sample(record, now_ns=10 * MSEC)
    assert rs.valid
    assert rs.delivered_bytes == 10_000
    # 10 kB over 10 ms = 8 Mbps
    assert abs(rs.delivery_rate_bps - 8e6) / 8e6 < 0.01
    assert rs.rtt_ns == 10 * MSEC


def test_interval_takes_max_of_send_and_ack_legs():
    est = DeliveryRateEstimator()
    send_record(est, 0, 1000, now=0, has_inflight=False)
    # second packet sent 50 ms after the first: send leg dominates
    second = send_record(est, 1000, 1000, now=50 * MSEC, has_inflight=True)
    est.on_delivered(1000, now_ns=51 * MSEC)
    est.on_delivered(1000, now_ns=52 * MSEC)
    rs = est.make_sample(second, now_ns=52 * MSEC)
    # send leg = 50 ms (sent at 50 ms, flight began at 0); ack leg = 52 ms
    # (no delivery had occurred when it was sent) — the max wins.
    assert rs.interval_ns == 52 * MSEC


def test_retransmitted_record_gives_invalid_sample():
    est = DeliveryRateEstimator()
    record = send_record(est, 0, 1000, now=0, has_inflight=False)
    record.retransmitted = True
    est.on_delivered(1000, now_ns=MSEC)
    rs = est.make_sample(record, now_ns=MSEC)
    assert not rs.valid
    assert rs.delivery_rate_bps == 0.0


def test_app_limited_marking():
    est = DeliveryRateEstimator()
    record = send_record(est, 0, 1000, now=0, has_inflight=False, app_limited=True)
    assert record.is_app_limited
    est.on_delivered(1000, now_ns=MSEC)
    rs = est.make_sample(record, now_ns=MSEC)
    assert rs.is_app_limited
    # Once delivery passes the app-limited point, new sends are clean.
    est.on_delivered(1000, now_ns=2 * MSEC)
    clean = send_record(est, 2000, 1000, now=2 * MSEC, has_inflight=True)
    assert not clean.is_app_limited


def test_first_sent_chains_after_sample():
    est = DeliveryRateEstimator()
    first = send_record(est, 0, 1000, now=0, has_inflight=False)
    est.on_delivered(1000, now_ns=5 * MSEC)
    est.make_sample(first, now_ns=5 * MSEC)
    assert est.first_sent_ns == 0  # set to the sampled packet's send time
    nxt = send_record(est, 1000, 1000, now=6 * MSEC, has_inflight=True)
    assert nxt.first_sent_at_send == 0


def test_delivered_counter_accumulates():
    est = DeliveryRateEstimator()
    est.on_delivered(100, 1)
    est.on_delivered(200, 2)
    assert est.delivered_bytes == 300
    assert est.delivered_time_ns == 2


def test_last_sent_defaults_to_sent():
    est = DeliveryRateEstimator()
    record = send_record(est, 0, 1000, now=7, has_inflight=False)
    assert record.last_sent_ns == 7
