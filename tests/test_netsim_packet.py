"""Unit tests for Packet / segment accounting / splitting."""

import pytest

from repro.netsim import DEFAULT_MSS, HEADER_BYTES, Packet


def test_segment_count_rounds_up():
    p = Packet(flow_id=1, seq=0, length=DEFAULT_MSS * 2 + 1)
    assert p.segments == 3


def test_full_segments():
    p = Packet(flow_id=1, seq=0, length=DEFAULT_MSS * 4)
    assert p.segments == 4


def test_ack_occupies_one_segment():
    p = Packet(flow_id=1, is_ack=True, ack=100)
    assert p.segments == 1
    assert p.length == 0


def test_wire_bytes_include_per_segment_headers():
    p = Packet(flow_id=1, seq=0, length=DEFAULT_MSS * 2)
    assert p.wire_bytes == DEFAULT_MSS * 2 + 2 * HEADER_BYTES


def test_end_seq():
    p = Packet(flow_id=1, seq=1000, length=500)
    assert p.end_seq == 1500


def test_split_head_basic():
    p = Packet(flow_id=1, seq=0, length=DEFAULT_MSS * 10)
    head = p.split_head(4)
    assert head is not None
    assert head.seq == 0
    assert head.length == DEFAULT_MSS * 4
    assert p.seq == DEFAULT_MSS * 4
    assert p.segments == 6
    assert head.segments == 4


def test_split_head_preserves_metadata():
    p = Packet(flow_id=3, seq=0, length=DEFAULT_MSS * 4, sent_ts=123, is_retransmission=True)
    head = p.split_head(2)
    assert head.flow_id == 3
    assert head.sent_ts == 123
    assert head.is_retransmission


def test_split_head_refuses_full_or_zero():
    p = Packet(flow_id=1, seq=0, length=DEFAULT_MSS * 2)
    assert p.split_head(0) is None
    assert p.split_head(2) is None
    assert p.split_head(5) is None


def test_split_head_refuses_ack():
    p = Packet(flow_id=1, is_ack=True)
    assert p.split_head(1) is None


def test_packet_ids_unique():
    a = Packet(flow_id=1)
    b = Packet(flow_id=1)
    assert a.packet_id != b.packet_id
