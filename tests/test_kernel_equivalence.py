"""Compiled-kernel backend: selection, fallback, and pure-equivalence.

The pure-python simulator is the behavioral reference; the C extension
(:mod:`repro._ckernel`) must be *bit-identical* — same event order, same
seq tie-breaks, same float expressions. The property-style tests drive
both backends through the same randomized loop workload (same seeds as
``test_sim_wheel.py``) and through full experiments (scalar metrics,
event counts, probe time series compared for exact equality).

Everything else here covers the graceful degradation paths: the
extension being absent at import time, instrumented runs, and the C
types refusing instrumentation they cannot honour.
"""

from __future__ import annotations

import dataclasses
import importlib.util
import os
import random

import pytest

import repro.kernel as kernel_mod
from repro import (
    ExperimentSpec,
    SimProfiler,
    Tracer,
    code_fingerprint,
    kernel_fingerprint,
    kernel_info,
    load_scenario,
    run_experiment,
)
from repro.kernel import KERNEL_ENV_VAR, KERNELS, compiled_for, resolve_kernel
from repro.netsim import MEDIA
from repro.sim import EventLoop, SimulationError
from repro.sim.engine import _WHEEL_MIN_DELAY_NS
from repro.tcp.rate_sample import DeliveryRateEstimator
from repro.tcp.rtt import MinRttFilter, RttEstimator
from repro.tcp.scoreboard import Scoreboard

COMPILED = KERNELS.get("compiled")

needs_compiled = pytest.mark.skipif(
    not COMPILED.available,
    reason=f"compiled kernel not built ({COMPILED.why_unavailable})",
)


@pytest.fixture
def kernel_env(monkeypatch):
    """Select a backend for run_experiment via the environment."""

    def select(name: str) -> None:
        monkeypatch.setenv(KERNEL_ENV_VAR, name)

    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    return select


# -- loop-level equivalence (same workload as test_sim_wheel.py) ---------------


def _run_workload(loop, seed: int) -> list:
    """Drive *loop* through a deterministic random schedule/cancel workload.

    Identical to the wheel-vs-heap property test: both backends must
    consume the RNG in the same order, so any divergence in fire order
    or timing shows up as a log mismatch.
    """
    rng = random.Random(seed)
    log = []
    pending = {}
    counter = [0]

    def pick_delay() -> int:
        bucket = rng.random()
        if bucket < 0.4:
            return rng.randrange(0, _WHEEL_MIN_DELAY_NS)
        if bucket < 0.8:
            return rng.randrange(_WHEEL_MIN_DELAY_NS, 40_000_000)
        return rng.randrange(40_000_000, 600_000_000)

    def schedule() -> None:
        tag = counter[0]
        counter[0] += 1
        event = loop.call_after(pick_delay(), fire, tag)
        pending[tag] = event

    def fire(tag: int) -> None:
        pending.pop(tag, None)
        log.append((loop.now, tag))
        roll = rng.random()
        if roll < 0.55:
            schedule()
        if roll < 0.25 and pending:
            victim = rng.choice(sorted(pending))
            pending.pop(victim).cancel()
        elif roll < 0.45 and pending:
            victim = rng.choice(sorted(pending))
            pending.pop(victim).cancel()
            schedule()

    for _ in range(60):
        schedule()
    loop.run(until=3_000_000_000)
    return log


@needs_compiled
@pytest.mark.parametrize("seed", [7, 23, 1009])
def test_compiled_loop_fires_identically_to_pure(seed):
    """Property: the C loop never changes what fires, when, or in what order."""
    pure_log = _run_workload(EventLoop(), seed)
    compiled_log = _run_workload(COMPILED.make_loop(), seed)
    assert pure_log, "workload should fire at least some events"
    assert compiled_log == pure_log


@needs_compiled
@pytest.mark.parametrize("seed", [7, 23, 1009])
def test_compiled_loop_agrees_on_events_processed(seed):
    pure = EventLoop()
    comp = COMPILED.make_loop()
    _run_workload(pure, seed)
    _run_workload(comp, seed)
    assert comp.events_processed == pure.events_processed


# -- experiment-level equivalence (metrics, event counts, probe series) --------


def _experiment_specs():
    return {
        "bbr_lowend": ExperimentSpec(
            cc="bbr", connections=2, cpu_config="low-end",
            duration_s=1.0, warmup_s=0.2, seed=7,
        ),
        "cubic_wifi": ExperimentSpec(
            cc="cubic", connections=2, medium=MEDIA.get("wifi"),
            duration_s=1.0, warmup_s=0.2, seed=23,
        ),
        "bbr2_probes": ExperimentSpec(
            cc="bbr2", connections=1, duration_s=1.0, warmup_s=0.2,
            seed=1009, probes=("cwnd", "srtt", "delivery_rate"),
        ),
    }


@needs_compiled
@pytest.mark.parametrize("name", sorted(_experiment_specs()))
def test_experiment_results_bit_identical_across_kernels(name, kernel_env):
    """The full result — every scalar, every probe sample — must match."""
    spec = _experiment_specs()[name]
    kernel_env("pure")
    pure = dataclasses.asdict(run_experiment(spec))
    kernel_env("compiled")
    compiled = dataclasses.asdict(run_experiment(spec))
    assert compiled == pure


# -- selection and fallback ----------------------------------------------------


def test_resolve_kernel_defaults_to_pure(kernel_env):
    assert resolve_kernel().name == "pure"


def test_resolve_kernel_prefers_argument_over_env(kernel_env):
    kernel_env("pure")
    assert resolve_kernel().name == "pure"
    # the argument wins even when the env says otherwise
    kernel_env("compiled")
    assert resolve_kernel("pure").name == "pure"


def test_resolve_kernel_unknown_name_raises(kernel_env):
    from repro.registry import UnknownNameError

    with pytest.raises(UnknownNameError):
        resolve_kernel("turbo")


def test_resolve_kernel_junk_env_fails_fast(kernel_env):
    """An inherited bogus REPRO_KERNEL must never silently pick a backend."""
    kernel_env("turbo")
    with pytest.raises(ValueError) as excinfo:
        resolve_kernel()
    message = str(excinfo.value)
    assert KERNEL_ENV_VAR in message
    assert "compiled" in message and "pure" in message
    assert "turbo" in message


def test_resolve_kernel_blank_env_means_unset(kernel_env):
    kernel_env("   ")
    assert resolve_kernel().name == "pure"


def test_instrumented_run_falls_back_to_pure_with_notice(monkeypatch, capsys):
    monkeypatch.setattr(kernel_mod, "_noticed", set())
    kernel = resolve_kernel("compiled", instrumented=True)
    assert kernel.name == "pure"
    err = capsys.readouterr().err
    assert "instrumented" in err and "pure" in err
    # once per process, not once per run
    resolve_kernel("compiled", instrumented=True)
    assert capsys.readouterr().err == ""


def test_missing_extension_falls_back_to_pure(monkeypatch, capsys):
    """Simulate a machine where the C extension never built."""
    monkeypatch.setattr(kernel_mod, "_ckernel", None)
    monkeypatch.setattr(kernel_mod, "_ckernel_error", "no compiler at install")
    monkeypatch.setattr(kernel_mod, "_ckernel_loaded", True)
    monkeypatch.setattr(kernel_mod, "_noticed", set())
    assert not COMPILED.available
    assert "no compiler at install" in COMPILED.why_unavailable
    kernel = resolve_kernel("compiled")
    assert kernel.name == "pure"
    assert "falling back to the pure kernel" in capsys.readouterr().err


def test_missing_extension_still_runs_experiments(monkeypatch, kernel_env):
    """REPRO_KERNEL=compiled on a pure-only install must still work."""
    monkeypatch.setattr(kernel_mod, "_ckernel", None)
    monkeypatch.setattr(kernel_mod, "_ckernel_loaded", True)
    monkeypatch.setattr(kernel_mod, "_noticed", set())
    kernel_env("compiled")
    spec = ExperimentSpec(cc="bbr", duration_s=0.5, warmup_s=0.1)
    result = run_experiment(spec)
    assert result.events_processed > 0


def test_compiled_for_is_none_for_pure_loops():
    assert compiled_for(EventLoop()) is None


@needs_compiled
def test_compiled_for_identifies_compiled_loops():
    loop = COMPILED.make_loop()
    assert compiled_for(loop) is not None


def test_kernel_info_reports_active_backend(kernel_env):
    info = kernel_info()
    assert info == {
        "name": "pure",
        "compiler": None,
        "compiled_components": [],
    }


@needs_compiled
def test_kernel_info_reports_compiler_for_compiled():
    info = kernel_info(COMPILED)
    assert info["name"] == "compiled"
    assert isinstance(info["compiler"], str) and info["compiler"]
    # the ACK hot path families must all be covered by the built extension
    for family in ("loop", "scoreboard", "rate-sampler", "rtt-filters", "cc-bbr"):
        assert family in info["compiled_components"]


# -- instrumentation guards on the C types -------------------------------------


@needs_compiled
def test_profiled_experiment_falls_back_and_profiles_fully(kernel_env):
    """A profiler under --kernel compiled must never come back empty."""
    kernel_env("compiled")
    profiler = SimProfiler()
    result = run_experiment(
        ExperimentSpec(cc="bbr", duration_s=0.5, warmup_s=0.1),
        profiler=profiler,
    )
    assert profiler.total_events == result.events_processed


@needs_compiled
def test_compiled_loop_refuses_profiler():
    loop = COMPILED.make_loop()
    with pytest.raises(SimulationError, match="pure"):
        loop.set_profiler(SimProfiler())


@needs_compiled
def test_traced_components_stay_pure_on_compiled_loop():
    """Routing must not hand a tracing component to the tracerless C kernel."""
    from repro.cpu.core import CpuCore

    loop = COMPILED.make_loop()
    tracer = Tracer(enabled=True)
    core = CpuCore(loop, 1e9, "cpu0", tracer)
    assert type(core) is CpuCore  # pure python, tracer honoured


@needs_compiled
def test_c_component_constructor_rejects_enabled_tracer():
    ck = kernel_mod._load_ckernel()
    loop = COMPILED.make_loop()
    with pytest.raises(ValueError, match="pure"):
        ck.CpuCore(loop, 1e9, "cpu0", Tracer(enabled=True))


# -- ACK hot path: property-style scoreboard/estimator equivalence -------------

#: every externally observable RateSample field
_RS_FIELDS = (
    "delivered_bytes", "interval_ns", "rtt_ns", "delivered_total",
    "prior_delivered", "prior_inflight_segments", "newly_acked_segments",
    "newly_sacked_segments", "newly_lost_segments", "is_app_limited",
    "ack_time_ns", "min_rtt_expired",
)

#: every externally observable TxRecord field
_REC_FIELDS = (
    "seq", "end_seq", "segments", "sent_ns", "delivered_at_send",
    "delivered_time_at_send", "first_sent_at_send", "is_app_limited",
    "retransmitted", "sacked", "lost", "sacked_segments", "last_sent_ns",
)


def _rs_tuple(rs):
    return tuple(getattr(rs, f) for f in _RS_FIELDS)


def _rec_tuple(rec):
    return tuple(getattr(rec, f) for f in _REC_FIELDS)


def _sb_state(sb, delivery):
    """Everything an ACK can change, down to per-record flags."""
    return {
        "snd_una": sb.snd_una,
        "highest_sacked": sb.highest_sacked,
        "packets_out": sb.packets_out,
        "sacked_out": sb.sacked_out,
        "lost_out": sb.lost_out,
        "retrans_out": sb.retrans_out,
        "inflight": sb.inflight_segments,
        "has_inflight": sb.has_inflight,
        "retx_total": sb.total_retransmitted_segments,
        "records": [_rec_tuple(r) for r in sb.records],
        "delivered_bytes": delivery.delivered_bytes,
        "delivered_time_ns": delivery.delivered_time_ns,
        "first_sent_ns": delivery.first_sent_ns,
        "app_limited_until": delivery.app_limited_until,
    }


def _run_ack_workload(seed: int, loop) -> list:
    """Drive one scoreboard + estimator pair through a random ACK storm.

    Exercises every per-ACK transition the connection uses: in-order
    transmission, cumulative ACKs (including partial, mid-record ones),
    out-of-order SACK blocks, reorder-threshold loss marking, lost-record
    retransmission, RTO mark-all-lost with timer re-arm off the oldest
    unacked record, and recovery-exit mark clearing. Both backends must
    consume the RNG identically, so any state divergence desynchronises
    the traces and fails the comparison.
    """
    rng = random.Random(seed)
    mss = 1000
    sb = Scoreboard(mss, loop=loop)
    delivery = DeliveryRateEstimator(loop=loop)
    now = 0
    seq = 0
    trace = []
    for _ in range(120):
        # a flight of fresh transmissions
        for _ in range(rng.randrange(1, 6)):
            segments = rng.randrange(1, 5)
            now += rng.randrange(1_000, 50_000)
            rec = delivery.send_record(
                now, seq, seq + segments * mss, segments,
                sb.has_inflight, rng.random() < 0.2,
            )
            rec.last_sent_ns = now
            sb.on_transmit(rec)
            seq += segments * mss
        # one ACK: cumulative point plus up to two (possibly overlapping,
        # non-mss-aligned) SACK blocks
        una = sb.snd_una
        span = seq - una
        if rng.random() < 0.55 and span > 0:
            ack = una + rng.randrange(0, span + 1)
        else:
            ack = una
        blocks = []
        for _ in range(rng.randrange(0, 3)):
            if span <= 0:
                break
            start = una + rng.randrange(0, span)
            end = min(seq, start + rng.randrange(1, 6 * mss))
            if end > start:
                blocks.append((start, end))
        now += rng.randrange(10_000, 200_000)
        rs, acked_bytes = sb.process_ack(
            delivery, ack, blocks, now, sb.inflight_segments,
            rng.random() < 0.1,
        )
        trace.append(("ack", _rs_tuple(rs), acked_bytes, _sb_state(sb, delivery)))
        # drain the retransmission queue
        if rng.random() < 0.5:
            lost = sb.next_lost_record()
            while lost is not None:
                now += rng.randrange(1_000, 10_000)
                sb.on_retransmit(lost)
                lost.last_sent_ns = now
                lost = sb.next_lost_record()
            trace.append(("retx", _sb_state(sb, delivery)))
        # RTO: presume everything lost, re-arm off the oldest unacked record
        if rng.random() < 0.15:
            newly_lost = sb.mark_all_lost()
            oldest = sb.oldest_unacked_record()
            rearm = oldest.last_sent_ns if oldest is not None else None
            trace.append(("rto", newly_lost, rearm, _sb_state(sb, delivery)))
        # recovery episode over
        if rng.random() < 0.2:
            sb.clear_loss_marks()
            trace.append(("clear", _sb_state(sb, delivery)))
    return trace


@needs_compiled
@pytest.mark.parametrize("seed", [7, 23, 1009])
def test_scoreboard_ack_path_equivalent_across_kernels(seed):
    """Property: the C scoreboard/estimator pair never diverges from pure."""
    pure_trace = _run_ack_workload(seed, None)
    compiled_trace = _run_ack_workload(seed, COMPILED.make_loop())
    assert any(op[0] == "rto" for op in pure_trace), "workload must hit RTO"
    assert any(op[0] == "retx" for op in pure_trace), "workload must retransmit"
    assert len(compiled_trace) == len(pure_trace)
    for step, (pure_op, compiled_op) in enumerate(
        zip(pure_trace, compiled_trace)
    ):
        assert compiled_op == pure_op, f"divergence at step {step}"


@needs_compiled
def test_ack_path_components_route_to_c_on_compiled_loop():
    """The PR 6 routing rule extends to the whole ACK hot path."""
    ck = kernel_mod._load_ckernel()
    loop = COMPILED.make_loop()
    assert type(Scoreboard(1448, loop=loop)) is ck.Scoreboard
    assert type(DeliveryRateEstimator(loop=loop)) is ck.DeliveryRateEstimator
    assert type(RttEstimator(loop=loop)) is ck.RttEstimator
    assert type(MinRttFilter(loop=loop)) is ck.MinRttFilter
    # without a compiled loop the reference implementations run
    assert type(Scoreboard(1448)) is Scoreboard
    assert type(DeliveryRateEstimator()) is DeliveryRateEstimator
    assert type(RttEstimator()) is RttEstimator
    assert type(MinRttFilter()) is MinRttFilter


@needs_compiled
def test_churn_experiment_bit_identical_across_kernels(kernel_env):
    """Multi-flow churn (Poisson cubic arrivals vs one BBR flow) matches too."""
    path = os.path.join(
        os.path.dirname(__file__), os.pardir,
        "benchmarks", "scenarios", "churn_poisson.json",
    )
    specs = load_scenario(path)
    assert specs, "churn_poisson should expand to at least one point"
    kernel_env("pure")
    pure = [dataclasses.asdict(run_experiment(spec)) for spec in specs]
    kernel_env("compiled")
    compiled = [dataclasses.asdict(run_experiment(spec)) for spec in specs]
    assert compiled == pure


# -- cache fingerprints distinguish backends -----------------------------------


def test_kernel_fingerprint_distinguishes_backends():
    base = code_fingerprint()
    assert kernel_fingerprint("pure") == base
    assert kernel_fingerprint("compiled") != base
    # deterministic: same input, same derived version
    assert kernel_fingerprint("compiled") == kernel_fingerprint("compiled")


# -- perf harness: single-core parallel skip -----------------------------------


def _load_perf_harness():
    path = os.path.join(
        os.path.dirname(__file__), os.pardir, "benchmarks", "perf_harness.py"
    )
    spec = importlib.util.spec_from_file_location("perf_harness", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_parallel_scaling_skipped_on_single_core(monkeypatch):
    """One core: no speedup claim, an explicit skip marker instead."""
    harness = _load_perf_harness()
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    assert harness.measure_parallel_scaling(0.2, 0.05) == {
        "skipped_reason": "single core"
    }
