"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import pytest

# The result cache (repro.cache) is on by default, which would let the
# serial-vs-parallel determinism tests trivially compare cache hits with
# cache hits — and would write into the developer's real cache while
# testing. Run the suite cache-off; cache tests opt back in with
# explicit ResultCache instances in tmp dirs. Same story for the run
# ledger (repro.obs.ledger): off by default so thousands of test runs
# don't spam the developer's ledger; ledger tests opt back in with
# explicit RunLedger instances or REPRO_LEDGER_DIR monkeypatches.
os.environ.setdefault("REPRO_CACHE", "off")
os.environ.setdefault("REPRO_LEDGER", "off")

from repro.cpu import FreeExecutor, ZERO_COSTS
from repro.netsim import ETHERNET_LAN, MediumProfile, NetemConfig, Testbed
from repro.sim import EventLoop, RngStreams
from repro.tcp.stack import MobileTcpStack, ServerHost


class ProtocolHarness:
    """A phone+server pair on a free CPU: pure protocol behaviour.

    Used by TCP/CC tests that want network dynamics without compute
    effects. Real-CPU behaviour is covered by the experiment-level tests.
    """

    def __init__(
        self,
        medium: MediumProfile = ETHERNET_LAN,
        netem: NetemConfig = None,
        seed: int = 1,
    ):
        self.loop = EventLoop()
        self.testbed = Testbed(self.loop, medium, netem=netem, rng=RngStreams(seed))
        self.stack = MobileTcpStack(
            self.loop, FreeExecutor(), ZERO_COSTS, self.testbed
        )
        self.server = ServerHost(self.testbed)

    def run(self, until_ns: int) -> None:
        """Advance the simulation to *until_ns*."""
        self.loop.run(until=until_ns)


@pytest.fixture
def loop() -> EventLoop:
    """A fresh event loop."""
    return EventLoop()


@pytest.fixture
def harness() -> ProtocolHarness:
    """A protocol harness on the default Ethernet medium."""
    return ProtocolHarness()
