"""Unit tests for the windowed max filter (kernel minmax port)."""

import pytest

from repro.cc import WindowedMaxFilter


def test_empty_filter_reads_zero():
    f = WindowedMaxFilter(10)
    assert f.value == 0.0


def test_first_sample_becomes_max():
    f = WindowedMaxFilter(10)
    f.update(0, 5.0)
    assert f.value == 5.0


def test_higher_sample_replaces_immediately():
    f = WindowedMaxFilter(10)
    f.update(0, 5.0)
    f.update(1, 9.0)
    assert f.value == 9.0


def test_lower_samples_do_not_displace_fresh_max():
    f = WindowedMaxFilter(10)
    f.update(0, 9.0)
    for t in range(1, 8):
        f.update(t, 3.0)
    assert f.value == 9.0


def test_stale_max_expires_to_newer_samples():
    """The regression that mattered: an old maximum must decay."""
    f = WindowedMaxFilter(10)
    f.update(0, 9.0)
    for t in range(1, 40):
        f.update(t, 3.0)
    assert f.value == 3.0


def test_expiry_falls_back_to_recent_samples():
    f = WindowedMaxFilter(10)
    f.update(0, 9.0)
    f.update(2, 7.0)  # between best and the later stream
    for t in range(3, 12):
        f.update(t, 1.0)
    # Once the 9.0 ages past the window the filter must track the recent
    # sample level (the kernel's quarter/half refreshes overwrite the 7.0
    # runner-up with newer samples — same behaviour as lib/minmax.c).
    assert f.value == 1.0


def test_second_best_survives_if_large_enough():
    f = WindowedMaxFilter(10)
    f.update(0, 9.0)
    for t in range(1, 9):
        f.update(t, 7.0)  # >= the refreshed runners-up: retained
    f.update(11, 1.0)  # best expires on this update
    assert f.value == 7.0


def test_gap_larger_than_window_resets():
    f = WindowedMaxFilter(10)
    f.update(0, 9.0)
    f.update(100, 1.0)
    assert f.value == 1.0


def test_reset_seeds_all_slots():
    f = WindowedMaxFilter(10)
    f.reset(5, 4.0)
    assert f.value == 4.0
    f.update(6, 2.0)
    assert f.value == 4.0


def test_window_validation():
    with pytest.raises(ValueError):
        WindowedMaxFilter(0)


def test_equal_values_refresh_timestamps():
    f = WindowedMaxFilter(10)
    f.update(0, 5.0)
    f.update(8, 5.0)  # equal -> reset with fresh time
    for t in range(9, 17):
        f.update(t, 1.0)
    assert f.value == 5.0  # still within window of the refresh
