"""Unit tests for the server-side receiver endpoint."""

import pytest

from repro.netsim import Packet
from repro.tcp import TcpReceiverEndpoint

MSS = 1000


def data(seq, segs=1, flow=1, sent_ts=123):
    return Packet(flow_id=flow, seq=seq, length=segs * MSS, mss=MSS, sent_ts=sent_ts)


def make_endpoint():
    acks = []
    ep = TcpReceiverEndpoint(1, acks.append)
    return ep, acks


def test_in_order_data_advances_rcv_nxt():
    ep, acks = make_endpoint()
    ep.on_data(data(0, 2))
    assert ep.rcv_nxt == 2000
    assert ep.bytes_in_order == 2000
    assert acks[-1].ack == 2000
    assert acks[-1].sack_blocks == []


def test_ack_echoes_timestamp():
    ep, acks = make_endpoint()
    ep.on_data(data(0, 1, sent_ts=777))
    assert acks[-1].echo_ts == 777


def test_out_of_order_generates_sack():
    ep, acks = make_endpoint()
    ep.on_data(data(2000, 2))
    assert ep.rcv_nxt == 0
    assert acks[-1].ack == 0
    assert acks[-1].sack_blocks == [(2000, 4000)]


def test_hole_fill_drains_ooo_queue():
    ep, acks = make_endpoint()
    ep.on_data(data(2000, 2))
    ep.on_data(data(0, 2))
    assert ep.rcv_nxt == 4000
    assert acks[-1].sack_blocks == []
    assert ep.bytes_in_order == 4000


def test_ooo_intervals_merge():
    ep, acks = make_endpoint()
    ep.on_data(data(2000, 1))
    ep.on_data(data(4000, 1))
    ep.on_data(data(3000, 1))  # bridges the two
    assert acks[-1].sack_blocks == [(2000, 5000)]


def test_most_recent_block_listed_first():
    ep, acks = make_endpoint()
    ep.on_data(data(2000, 1))
    ep.on_data(data(6000, 1))
    blocks = acks[-1].sack_blocks
    assert blocks[0] == (6000, 7000)
    assert (2000, 3000) in blocks


def test_at_most_three_sack_blocks():
    ep, acks = make_endpoint()
    for i in range(5):
        ep.on_data(data(2000 + i * 2000, 1))
    assert len(acks[-1].sack_blocks) == 3


def test_duplicate_data_counted():
    ep, acks = make_endpoint()
    ep.on_data(data(0, 2))
    ep.on_data(data(0, 2))
    assert ep.duplicate_bytes == 2000
    assert ep.bytes_in_order == 2000


def test_overlap_partial_duplicate():
    ep, acks = make_endpoint()
    ep.on_data(data(0, 2))
    ep.on_data(data(1000, 2))  # 1 segment duplicate, 1 new
    assert ep.rcv_nxt == 3000
    assert ep.duplicate_bytes == 1000
    assert ep.bytes_in_order == 3000


def test_goodput_hook_sees_in_order_advances():
    ep, _ = make_endpoint()
    seen = []
    ep.on_goodput = seen.append
    ep.on_data(data(2000, 2))   # OOO: no goodput
    ep.on_data(data(0, 2))      # fills hole: 4000 in-order bytes at once
    assert seen == [4000]


def test_advertised_window_shrinks_with_held_ooo():
    ep, acks = make_endpoint()
    full = ep.advertised_window()
    ep.on_data(data(2000, 2))
    assert ep.advertised_window() == full - 2000
    assert acks[-1].rwnd == full - 2000
    ep.on_data(data(0, 2))
    assert ep.advertised_window() == full


def test_receiver_rejects_ack_packets():
    ep, _ = make_endpoint()
    with pytest.raises(ValueError):
        ep.on_data(Packet(flow_id=1, is_ack=True))


def test_acks_sent_counter():
    ep, acks = make_endpoint()
    for i in range(4):
        ep.on_data(data(i * 1000, 1))
    assert ep.acks_sent == 4
    assert len(acks) == 4
