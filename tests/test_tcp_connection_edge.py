"""Edge-case tests for SocketConfig and sender internals."""

import pytest

from repro.cc import Bbr, Cubic, Reno
from repro.tcp import FiniteSource, PacingMode, SocketConfig
from repro.units import MSEC, SEC, seconds

from conftest import ProtocolHarness


def test_socket_config_validation():
    with pytest.raises(ValueError):
        SocketConfig(pacing_mode="sometimes")
    with pytest.raises(ValueError):
        SocketConfig(pacing_stride=0.9)
    with pytest.raises(ValueError):
        SocketConfig(initial_cwnd=0)


def test_stride_flows_into_pacer(harness):
    config = SocketConfig(pacing_stride=7.0)
    sender = harness.stack.create_connection(Bbr(), config=config)
    assert sender.pacer.stride == 7.0


def test_internal_pacing_rate_uses_phase_factor(harness):
    sender = harness.stack.create_connection(Cubic())
    sender.rtt.update(MSEC)
    sender.cwnd = 100
    sender.ssthresh = 1 << 30  # slow start
    ss_rate = sender.internal_pacing_rate_bps()
    sender.ssthresh = 10  # congestion avoidance
    ca_rate = sender.internal_pacing_rate_bps()
    assert ss_rate == pytest.approx(2.0 * 100 * sender.mss * 8 * SEC / MSEC)
    assert ca_rate == pytest.approx(1.2 * 100 * sender.mss * 8 * SEC / MSEC)


def test_internal_rate_zero_before_first_rtt(harness):
    sender = harness.stack.create_connection(Cubic())
    assert sender.internal_pacing_rate_bps() == 0.0


def test_send_quantum_falls_back_to_gso_without_rate(harness):
    sender = harness.stack.create_connection(Reno())
    sender.pacer.rate_bps = 0.0
    assert sender.send_quantum_bytes == sender.config.gso_max_bytes


def test_sub_mss_tail_stays_unsent(harness):
    """Senders transmit whole segments; a sub-MSS tail waits forever
    (iperf-style sources end on segment boundaries in practice)."""
    sender = harness.stack.create_connection(
        Reno(), source=FiniteSource(sender_bytes := 10 * 1448 + 100)
    )
    sender.start()
    harness.run(seconds(2))
    assert sender.snd_nxt == 10 * 1448


def test_snd_wnd_tracks_latest_ack(harness):
    sender = harness.stack.create_connection(Reno())
    endpoint = harness.server.endpoint_for(sender.flow_id)
    endpoint.rcv_buffer_bytes = 123_456
    sender.start()
    harness.run(seconds(1))
    assert sender.snd_wnd <= 123_456


def test_copy_pipeline_keeps_socket_fed(harness):
    sender = harness.stack.create_connection(Reno())
    sender.start()
    harness.run(seconds(1))
    # The copy-ahead never exceeds its configured bound.
    assert 0 <= sender.copied_seq - sender.snd_nxt <= sender.config.sndbuf_unsent_bytes
    assert sender.copied_seq > 0


def test_bbr_min_tso_segs_scales_with_rate(harness):
    bbr = Bbr()
    sender = harness.stack.create_connection(bbr)
    bbr._rate_bps = 100e6
    assert bbr.min_tso_segs(sender) == 2
    bbr._rate_bps = 2e9
    assert bbr.min_tso_segs(sender) == 4
