"""Unit tests for metrics collectors, summaries, and report rendering."""

import math

import pytest

from repro.metrics import (
    IntervalCounter,
    MetricSummary,
    RunSet,
    StatAccumulator,
    render_bars,
    render_series,
    render_table,
)
from repro.sim import EventLoop
from repro.units import MSEC, SEC


def test_interval_counter_bins_by_time(loop):
    counter = IntervalCounter(loop, 100 * MSEC)
    counter.add(10)
    loop.call_at(150 * MSEC, lambda: counter.add(20))
    loop.call_at(250 * MSEC, lambda: counter.add(30))
    loop.run()
    series = counter.series()
    assert series == [(0, 10), (100 * MSEC, 20), (200 * MSEC, 30)]
    assert counter.total == 60


def test_interval_counter_gap_filling(loop):
    counter = IntervalCounter(loop, 100 * MSEC)
    counter.add(1)
    loop.call_at(350 * MSEC, lambda: counter.add(2))
    loop.run()
    series = counter.series()
    assert len(series) == 4
    assert series[1][1] == 0 and series[2][1] == 0


def test_interval_counter_window_rate(loop):
    counter = IntervalCounter(loop, 100 * MSEC)
    for t in range(10):
        loop.call_at(t * 100 * MSEC, lambda: counter.add(1_000_000))
    loop.run()
    # Bins [200ms, 800ms): six bins of 1 MB
    rate = counter.rate_bps_between(200 * MSEC, 800 * MSEC)
    assert rate == pytest.approx(6 * 1_000_000 * 8 / 0.6)


def test_stat_accumulator_moments():
    acc = StatAccumulator()
    for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
        acc.add(v)
    assert acc.mean == pytest.approx(5.0)
    assert acc.stdev == pytest.approx(math.sqrt(32 / 7.0))
    assert acc.min_value == 2.0
    assert acc.max_value == 9.0


def test_stat_accumulator_percentiles():
    acc = StatAccumulator(keep=True)
    for v in range(1, 101):
        acc.add(float(v))
    assert acc.percentile(50) == pytest.approx(50.5)
    assert acc.percentile(95) == pytest.approx(95.05)
    assert acc.percentile(0) == 1.0
    assert acc.percentile(100) == 100.0


def test_percentile_cache_invalidated_on_add():
    """The lazily sorted view must not go stale when samples arrive
    between percentile queries (out of order, so a stale cache would
    return the old max)."""
    acc = StatAccumulator(keep=True)
    acc.add(10.0)
    acc.add(30.0)
    assert acc.percentile(100) == 30.0  # builds the sorted cache
    acc.add(20.0)
    assert acc.percentile(100) == 30.0
    assert acc.percentile(50) == 20.0
    acc.add(40.0)
    assert acc.percentile(100) == 40.0


def test_percentile_requires_keep():
    acc = StatAccumulator()
    acc.add(1.0)
    with pytest.raises(RuntimeError):
        acc.percentile(50)


def test_runset_aggregates():
    rs = RunSet()
    rs.add_run({"goodput": 100.0, "rtt": 2.0})
    rs.add_run({"goodput": 120.0, "rtt": 4.0})
    assert rs.mean("goodput") == 110.0
    assert rs.stdev("goodput") == pytest.approx(math.sqrt(200.0))
    summary = rs.summary("rtt")
    assert isinstance(summary, MetricSummary)
    assert summary.mean == 3.0
    assert summary.runs == 2
    assert "rtt" in str(summary)


def test_runset_missing_metric_is_zero():
    rs = RunSet()
    assert rs.mean("nope") == 0.0
    assert rs.summary("nope").runs == 0


def test_render_table_alignment():
    text = render_table(
        ["name", "value"], [["bbr", 138.2], ["cubic", 310.0]], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert "bbr" in lines[3] and "138" in lines[3]


def test_render_series_shapes_figure_data():
    text = render_series(
        "conns", [1, 5, 20],
        [("bbr", [325, 250, 138]), ("cubic", [364, 350, 310])],
    )
    assert "bbr" in text and "cubic" in text and "20" in text


def test_render_bars():
    text = render_bars(["paced", "unpaced"], [138.0, 373.0], unit="Mbps")
    lines = text.splitlines()
    assert len(lines) == 2
    assert lines[1].count("█") > lines[0].count("█")


def test_render_bars_validates_lengths():
    with pytest.raises(ValueError):
        render_bars(["a"], [1.0, 2.0])
