"""Tests for the probe framework: registry, sampling, wire format,
and serial/parallel determinism."""

import json

import pytest

from repro import (
    ExperimentSpec,
    PROBES,
    UnknownNameError,
    run_experiment,
    run_replicated_parallel,
    spec_from_dict,
    spec_to_dict,
)
from repro.obs.probes import DEFAULT_PROBE_PERIOD_NS, ProbeContext, ProbeSet
from repro.obs.series import TimeSeries

SMOKE = dict(cc="bbr", connections=2, duration_s=0.8, warmup_s=0.2)


# ---------------------------------------------------------------------------
# Registry


def test_probe_registry_names():
    names = PROBES.names()
    for expected in ("cwnd", "inflight", "pacing_rate", "srtt",
                     "delivery_rate", "goodput", "bbr_state", "cpu_util",
                     "cpu_freq", "softirq", "qdisc"):
        assert expected in names


def test_unknown_probe_raises_with_choices():
    spec = ExperimentSpec(probes=("no_such_probe",), **SMOKE)
    with pytest.raises(UnknownNameError, match="no_such_probe"):
        run_experiment(spec)


# ---------------------------------------------------------------------------
# Sampling


def test_all_probes_record_nonempty_series():
    spec = ExperimentSpec(probes=PROBES.names(), **SMOKE)
    result = run_experiment(spec)
    assert result.timeseries
    for name in ("cwnd", "pacing_rate", "cpu_util", "bbr_state"):
        assert name in result.timeseries
    expected_samples = int(0.8e9) // DEFAULT_PROBE_PERIOD_NS + 1
    for name, ts in result.timeseries.items():
        assert isinstance(ts, TimeSeries)
        assert len(ts.t_ns) == expected_samples, name
        assert len(ts.values) == expected_samples, name
        assert ts.t_ns[0] == 0
        assert ts.t_ns == sorted(ts.t_ns)


def test_bbr_state_series_is_labelled():
    spec = ExperimentSpec(probes=("bbr_state",), **SMOKE)
    ts = run_experiment(spec).timeseries["bbr_state"]
    assert ts.labels is not None
    assert len(ts.labels) == len(ts.values)
    assert ts.labels[0] == "startup"


def test_cpu_util_probe_emits_per_core_series():
    spec = ExperimentSpec(probes=("cpu_util",), **SMOKE)
    series = run_experiment(spec).timeseries
    assert "cpu_util" in series
    per_core = [n for n in series if n.startswith("cpu_util.")]
    assert per_core, "expected per-core cpu_util.<name> series"
    assert all(0.0 <= v <= 1.0 for n in per_core for v in series[n].values)


def test_probes_do_not_change_measured_metrics():
    """Probes are read-only: every scalar except the event count must be
    bit-identical with and without them."""
    plain = run_experiment(ExperimentSpec(**SMOKE))
    probed = run_experiment(ExperimentSpec(probes=PROBES.names(), **SMOKE))
    a, b = plain.scalar_metrics(), probed.scalar_metrics()
    a.pop("events_processed")
    b.pop("events_processed")
    assert a == b


# ---------------------------------------------------------------------------
# Wire format


def test_probes_round_trip_through_wire_format():
    spec = ExperimentSpec(probes=("cwnd", "pacing_rate"), **SMOKE)
    wire = spec_to_dict(spec)
    assert wire["probes"] == ["cwnd", "pacing_rate"]  # JSON-safe list
    assert spec_from_dict(json.loads(json.dumps(wire))) == spec


def test_probes_wire_validation():
    wire = spec_to_dict(ExperimentSpec(**SMOKE))
    wire["probes"] = "cwnd"
    with pytest.raises(ValueError, match="probes"):
        spec_from_dict(wire)


# ---------------------------------------------------------------------------
# Parallel runner


def test_timeseries_identical_serial_vs_parallel():
    spec = ExperimentSpec(probes=("cwnd", "goodput", "cpu_util"), **SMOKE)
    serial = run_replicated_parallel(spec, runs=2, jobs=1)
    parallel = run_replicated_parallel(spec, runs=2, jobs=2)
    assert len(serial.runs) == len(parallel.runs) == 2
    for run_s, run_p in zip(serial.runs, parallel.runs):
        assert set(run_s.timeseries) == set(run_p.timeseries)
        for name, ts in run_s.timeseries.items():
            assert ts == run_p.timeseries[name], name


# ---------------------------------------------------------------------------
# TimeSeries container


def test_timeseries_dict_round_trip():
    ts = TimeSeries(name="x", unit="ms", t_ns=[0, 10, 20],
                    values=[1.0, 2.0, 3.0], labels=["a", "b", "c"])
    assert TimeSeries.from_dict(ts.to_dict()) == ts
    plain = TimeSeries(name="y", unit="", t_ns=[0], values=[0.5])
    assert TimeSeries.from_dict(plain.to_dict()) == plain


def test_timeseries_downsample_keeps_endpoints():
    ts = TimeSeries(name="x", unit="", t_ns=list(range(0, 1000, 10)),
                    values=[float(i) for i in range(100)])
    small = ts.downsample(7)
    assert len(small.t_ns) <= 7
    assert small.t_ns[0] == ts.t_ns[0]
    assert small.t_ns[-1] == ts.t_ns[-1]
    with pytest.raises(ValueError):
        ts.downsample(1)


def test_probe_context_rejects_duplicate_series():
    ctx = ProbeContext(loop=None, spec=None, client=None, server=None,
                       testbed=None, device=None, stack=None)
    ctx.series("dup", "ms")
    with pytest.raises(ValueError, match="dup"):
        ctx.series("dup", "ms")


def test_probeset_rejects_unknown_name_eagerly():
    ctx = ProbeContext(loop=None, spec=None, client=None, server=None,
                       testbed=None, device=None, stack=None)
    with pytest.raises(UnknownNameError):
        ProbeSet(("nope",), ctx)
