"""Tests for the run ledger (repro.obs.ledger)."""

import json
import os
import threading

import pytest

from repro import (
    ExperimentSpec,
    RunLedger,
    diff_records,
    run_experiment,
    run_grid_report,
    spec_digest,
)
from repro.kernel import KERNELS
from repro.obs.ledger import (
    LEDGER_DIR_ENV_VAR,
    LEDGER_ENV_VAR,
    atomic_append_line,
    ledger_enabled,
    record_metrics_by_digest,
    resolve_ledger,
)

COMPILED = KERNELS.get("compiled")

needs_compiled = pytest.mark.skipif(
    not COMPILED.available,
    reason=f"compiled kernel not built ({COMPILED.why_unavailable})",
)

SPEC = ExperimentSpec(cc="bbr", connections=1, duration_s=0.6, warmup_s=0.2)
PAIR = [
    ExperimentSpec(cc=cc, connections=1, duration_s=0.6, warmup_s=0.2)
    for cc in ("bbr", "cubic")
]


@pytest.fixture
def ledger(tmp_path):
    return RunLedger(root=str(tmp_path / "ledger"))


# -- record round trip ------------------------------------------------------


def test_run_record_round_trip_bit_identity(ledger):
    """A run's metrics reload from the ledger bit-identical."""
    result = run_experiment(SPEC, ledger=ledger)
    (record,) = ledger.records()
    assert record["kind"] == "run"
    assert record["spec_digest"] == spec_digest(SPEC)
    assert record["metrics"] == result.scalar_metrics()
    assert record["events"] == result.events_processed
    from repro import resolve_kernel
    assert record["kernel"] == resolve_kernel().name
    # The canonical spec JSON ref resolves back to the digest's spec.
    ref = ledger.spec_ref_path(record["spec_digest"])
    with open(ref, encoding="utf-8") as fh:
        assert json.loads(fh.read())["cc"] == "bbr"


def test_grid_record_covers_every_point(ledger, tmp_path):
    from repro import ResultCache

    cache = ResultCache(root=str(tmp_path / "cache"))
    report = run_grid_report(PAIR, jobs=1, cache=cache, ledger=ledger)
    report_warm = run_grid_report(PAIR, jobs=1, cache=cache, ledger=ledger)
    assert report.run_id and report_warm.run_id
    grids = ledger.records(kind="grid")
    assert [r["id"] for r in grids] == [report.run_id, report_warm.run_id]
    cold, warm = grids
    assert [p["digest"] for p in cold["points"]] == \
        [spec_digest(s) for s in PAIR]
    assert not any(p["cache_hit"] for p in cold["points"])
    assert all(p["cache_hit"] for p in warm["points"])
    assert warm["cache"] == {"used": True, "hits": 2, "misses": 0,
                             "skipped": 0}
    # Cache hits still carry metrics, so cold-vs-warm diffs bit-match.
    rows, code = diff_records(cold, warm)
    assert (rows, code) == ([], 0)


def test_grid_record_written_even_when_grid_raises(ledger):
    from repro import ExperimentGridError

    bad = [ExperimentSpec(cc="bbr", connections=0, duration_s=0.4)]
    with pytest.raises(ExperimentGridError):
        run_grid_report(bad, jobs=1, ledger=ledger)
    (record,) = ledger.records(kind="grid")
    assert record["errors"] == 1
    assert "error" in record["points"][0]


# -- neutrality: ledger on/off identical metrics ----------------------------


@pytest.mark.parametrize("kernel", [
    "pure", pytest.param("compiled", marks=needs_compiled)])
def test_ledger_on_off_identical_metrics(ledger, monkeypatch, kernel):
    """The ledger observes; it must never perturb the simulation."""
    monkeypatch.setenv("REPRO_KERNEL", kernel)
    off = run_grid_report(PAIR, jobs=1, ledger=False)
    on = run_grid_report(PAIR, jobs=1, ledger=ledger)
    assert [r.scalar_metrics() for r in off.results] == \
        [r.scalar_metrics() for r in on.results]
    assert len(ledger.records(kind="grid")) == 1


# -- concurrent appends -----------------------------------------------------


def test_pool_workers_append_atomically(ledger, monkeypatch):
    """jobs=2 workers appending run records never interleave lines."""
    monkeypatch.setenv(LEDGER_DIR_ENV_VAR, ledger.root)
    monkeypatch.setenv(LEDGER_ENV_VAR, "on")
    specs = [
        ExperimentSpec(cc=cc, connections=1, duration_s=0.5, warmup_s=0.1,
                       seed=seed)
        for seed in (1, 2) for cc in ("bbr", "cubic")
    ]
    report = run_grid_report(specs, jobs=2)
    assert report.points == 4
    records = ledger.records()
    # 4 worker-side run records + the coordinator's grid record, every
    # line intact JSON (records() would silently drop corrupt lines; the
    # count proves none were mangled by concurrent appends).
    assert [r["kind"] for r in records] == ["run"] * 4 + ["grid"]
    with open(ledger.path, encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line]
    assert len(lines) == 5
    for line in lines:
        json.loads(line)


def test_atomic_append_threads_do_not_interleave(tmp_path):
    path = str(tmp_path / "out.jsonl")
    payloads = [json.dumps({"i": i, "pad": "x" * 256}) for i in range(64)]

    def work(chunk):
        for line in chunk:
            assert atomic_append_line(path, line)

    threads = [threading.Thread(target=work, args=(payloads[i::4],))
               for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    with open(path, encoding="utf-8") as fh:
        got = sorted(json.loads(line)["i"] for line in fh)
    assert got == list(range(64))


# -- swallow semantics ------------------------------------------------------


def test_unwritable_ledger_never_fails_the_run(tmp_path):
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("occupied")
    ledger = RunLedger(root=str(blocker / "ledger"))
    result = run_experiment(SPEC, ledger=ledger)
    assert result.goodput_mbps > 0
    assert ledger.records() == []
    report = run_grid_report(PAIR, jobs=1, ledger=ledger)
    assert report.points == 2
    assert report.run_id is None


# -- resolve / env plumbing -------------------------------------------------


def test_resolve_ledger_contract(monkeypatch, tmp_path):
    explicit = RunLedger(root=str(tmp_path))
    assert resolve_ledger(explicit) is explicit
    assert resolve_ledger(False) is None
    monkeypatch.setenv(LEDGER_ENV_VAR, "off")
    assert not ledger_enabled()
    assert resolve_ledger(None) is None
    assert resolve_ledger(True) is not None  # True forces on despite env
    monkeypatch.setenv(LEDGER_ENV_VAR, "on")
    monkeypatch.setenv(LEDGER_DIR_ENV_VAR, str(tmp_path / "env-ledger"))
    resolved = resolve_ledger(None)
    assert resolved is not None
    assert resolved.root == str(tmp_path / "env-ledger")


# -- find / prune / diff ----------------------------------------------------


def test_find_by_unique_prefix_and_ambiguity(ledger):
    run_experiment(SPEC, ledger=ledger)
    run_experiment(PAIR[1], ledger=ledger)
    a, b = ledger.records()
    assert ledger.find(a["id"])["id"] == a["id"]
    with pytest.raises(KeyError):
        ledger.find("zzzz")
    with pytest.raises(KeyError):
        ledger.find("")
    shared = os.path.commonprefix([a["id"], b["id"]])
    if shared:
        with pytest.raises(ValueError):
            ledger.find(shared)


def test_prune_keeps_newest_and_drops_orphan_spec_refs(ledger):
    for spec in PAIR:
        run_experiment(spec, ledger=ledger)
    assert len(os.listdir(ledger.specs_dir)) == 2
    removed = ledger.prune(keep=1)
    assert removed == 1
    (record,) = ledger.records()
    assert record["label"].startswith("cubic")
    # The bbr spec ref no longer backs any record and is gone.
    assert os.listdir(ledger.specs_dir) == \
        [record["spec_digest"] + ".json"]


def test_records_skips_corrupt_lines(ledger):
    run_experiment(SPEC, ledger=ledger)
    with open(ledger.path, "a", encoding="utf-8") as fh:
        fh.write("{truncated\n")
        fh.write("42\n")
    run_experiment(PAIR[1], ledger=ledger)
    assert [r["kind"] for r in ledger.records()] == ["run", "run"]


def test_diff_records_exit_codes():
    mk = lambda digest, **metrics: {  # noqa: E731
        "id": "x", "kind": "run", "spec_digest": digest, "metrics": metrics}
    same_a = mk("d1", goodput_mbps=100.0)
    same_b = mk("d1", goodput_mbps=100.0)
    assert diff_records(same_a, same_b) == ([], 0)
    near = mk("d1", goodput_mbps=100.0001)
    rows, code = diff_records(same_a, near)
    assert code == 1 and rows[0]["metric"] == "goodput_mbps"
    assert diff_records(same_a, near, tol=1e-3)[1] == 0
    assert diff_records(same_a, mk("d2", goodput_mbps=1.0))[1] == 2
    with pytest.raises(ValueError):
        diff_records(same_a, same_b, tol=-1)


def test_record_metrics_by_digest_both_kinds():
    run = {"kind": "run", "spec_digest": "d1", "metrics": {"m": 1.0}}
    grid = {"kind": "grid", "points": [
        {"digest": "d2", "metrics": {"m": 2.0}},
        {"digest": "d3", "error": "boom"},
    ]}
    assert record_metrics_by_digest(run) == {"d1": {"m": 1.0}}
    assert record_metrics_by_digest(grid) == {"d2": {"m": 2.0}}
