"""Tests for the opt-in event-loop profiler."""

from repro import ExperimentSpec, SimProfiler, run_experiment
from repro.sim import EventLoop

SMOKE = dict(cc="bbr", connections=2, duration_s=0.6, warmup_s=0.1)


def test_profiler_counts_every_event():
    profiler = SimProfiler()
    result = run_experiment(ExperimentSpec(**SMOKE), profiler=profiler)
    assert profiler.total_events == result.events_processed
    assert profiler.total_wall_ns > 0
    # the CPU-core completion callback dominates any real run
    assert "CpuCore._complete" in profiler.records


def test_profiler_does_not_change_metrics():
    plain = run_experiment(ExperimentSpec(**SMOKE))
    profiled = run_experiment(ExperimentSpec(**SMOKE), profiler=SimProfiler())
    assert plain.scalar_metrics() == profiled.scalar_metrics()


def test_profiler_records_sim_and_wall_time():
    loop = EventLoop()
    profiler = SimProfiler()
    loop.set_profiler(profiler)

    def tick():
        pass

    loop.call_at(10, tick)
    loop.call_at(30, tick)
    loop.run()
    rec = profiler.records[tick.__qualname__]
    count, sim_ns, wall_ns = rec
    assert count == 2
    assert sim_ns == 30  # 0->10 plus 10->30
    assert wall_ns >= 0


def test_profiler_render_and_rows():
    profiler = SimProfiler()
    assert "no events" in profiler.render()
    run_experiment(ExperimentSpec(**SMOKE), profiler=profiler)
    rows = profiler.rows()
    assert rows
    walls = [r["wall_ms"] for r in rows]
    assert walls == sorted(walls, reverse=True)
    text = profiler.render()
    assert "simulation profile" in text
    d = profiler.as_dict()
    assert sum(v["count"] for v in d.values()) == profiler.total_events
