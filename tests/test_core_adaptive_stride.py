"""Unit tests for the adaptive-stride controller (§7.1.2 extension)."""

from repro.apps.iperf import IperfClientApp, IperfServerApp
from repro.cc import Bbr
from repro.core.stride import AdaptiveStrideController
from repro.cpu import NetStackExecutor
from repro.devices import CpuConfig, PIXEL_4, build_device
from repro.netsim import ETHERNET_LAN, Testbed as _Testbed
from repro.sim import EventLoop, RngStreams
from repro.tcp.stack import MobileTcpStack
from repro.units import MSEC, seconds


def build(parallel=10, config=CpuConfig.LOW_END, seed=2):
    loop = EventLoop()
    device = build_device(loop, PIXEL_4, config)
    testbed = _Testbed(loop, ETHERNET_LAN, rng=RngStreams(seed))
    stack = MobileTcpStack(loop, NetStackExecutor(device.cpu),
                           device.cost_model, testbed)
    server = IperfServerApp(loop, testbed)
    client = IperfClientApp(loop, stack, Bbr, parallel=parallel)
    controller = AdaptiveStrideController(loop, client.connections, device)
    return loop, device, testbed, server, client, controller


def test_controller_applies_stride_to_all_connections():
    loop, device, testbed, server, client, controller = build()
    device.start()
    client.start()
    controller.start()
    loop.run(until=seconds(3))
    stride = controller.stride
    assert all(c.pacer.stride == stride for c in client.connections)
    controller.stop()


def test_controller_moves_up_under_cpu_saturation():
    loop, device, testbed, server, client, controller = build(parallel=20)
    device.start()
    client.start()
    controller.start()
    loop.run(until=seconds(4))
    # A saturated Low-End CPU must push the stride above stock pacing.
    assert controller.stride > 1.0
    assert len(controller.history) > 3
    controller.stop()


def test_controller_improves_goodput_over_stock():
    # with controller
    loop, device, testbed, server, client, controller = build(parallel=20)
    device.start(); client.start(); controller.start()
    loop.run(until=seconds(5))
    adaptive = server.goodput_bps_between(seconds(2), seconds(5))
    controller.stop()
    # without controller (same seed)
    loop2, device2, testbed2, server2, client2, _ = build(parallel=20)
    device2.start(); client2.start()
    loop2.run(until=seconds(5))
    stock = server2.goodput_bps_between(seconds(2), seconds(5))
    assert adaptive > 1.1 * stock


def test_controller_stop_freezes_stride():
    loop, device, testbed, server, client, controller = build()
    device.start(); client.start(); controller.start()
    loop.run(until=seconds(2))
    controller.stop()
    frozen = controller.stride
    loop.run(until=seconds(3))
    assert controller.stride == frozen
