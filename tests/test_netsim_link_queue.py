"""Unit tests for Link serialization and the droptail queue."""

import pytest

from repro.netsim import DropTailQueue, Link, Packet
from repro.netsim.packet import DEFAULT_MSS
from repro.units import mbps, transmit_time


def make_data(flow=1, segs=1, seq=0):
    return Packet(flow_id=flow, seq=seq, length=DEFAULT_MSS * segs)


def test_link_delivers_after_serialization_and_propagation(loop):
    got = []
    link = Link(loop, rate_bps=mbps(100), prop_delay_ns=1000)
    link.connect(lambda p: got.append((loop.now, p)))
    p = make_data()
    link.send(p)
    loop.run()
    expected = transmit_time(p.wire_bytes, mbps(100)) + 1000
    assert got[0][0] == expected


def test_link_serializes_fifo(loop):
    got = []
    link = Link(loop, rate_bps=mbps(100))
    link.connect(lambda p: got.append(p.seq))
    link.send(make_data(seq=0))
    link.send(make_data(seq=DEFAULT_MSS))
    loop.run()
    assert got == [0, DEFAULT_MSS]


def test_link_requires_sink(loop):
    link = Link(loop, rate_bps=mbps(10))
    link.send(make_data())
    with pytest.raises(RuntimeError):
        loop.run()


def test_link_stats(loop):
    link = Link(loop, rate_bps=mbps(100))
    link.connect(lambda p: None)
    p = make_data(segs=2)
    link.send(p)
    loop.run()
    assert link.packets_sent == 1
    assert link.bytes_sent == p.wire_bytes
    assert link.busy_ns == transmit_time(p.wire_bytes, mbps(100))


def test_link_rejects_nonpositive_rate(loop):
    with pytest.raises(ValueError):
        Link(loop, rate_bps=0)


def test_queue_admits_within_capacity(loop):
    got = []
    link = Link(loop, rate_bps=mbps(1000))
    link.connect(got.append)
    q = DropTailQueue(loop, link, capacity_segments=10)
    q.enqueue(make_data(segs=4))
    q.enqueue(make_data(segs=4, seq=4 * DEFAULT_MSS))
    loop.run()
    assert len(got) == 2
    assert q.dropped_segments == 0


def test_queue_tail_drops_overflow(loop):
    got = []
    link = Link(loop, rate_bps=mbps(1))  # slow: keeps queue backed up
    link.connect(got.append)
    q = DropTailQueue(loop, link, capacity_segments=5)
    # First packet (3 segs) goes straight to the link; the queue holds
    # the rest.
    for i in range(5):
        q.enqueue(make_data(segs=3, seq=i * 3 * DEFAULT_MSS))
    assert q.dropped_segments > 0
    assert q.backlog_segments <= 5


def test_queue_splits_partially_fitting_packet(loop):
    got = []
    link = Link(loop, rate_bps=mbps(1))
    link.connect(got.append)
    q = DropTailQueue(loop, link, capacity_segments=4)
    q.enqueue(make_data(segs=2))              # -> link (in flight)
    q.enqueue(make_data(segs=3, seq=2 * DEFAULT_MSS))  # queued fully
    q.enqueue(make_data(segs=3, seq=5 * DEFAULT_MSS))  # 1 seg fits, 2 dropped
    assert q.backlog_segments == 4
    assert q.dropped_segments == 2
    assert q.dropped_packets == 1


def test_queue_drop_callback(loop):
    drops = []
    link = Link(loop, rate_bps=mbps(1))
    link.connect(lambda p: None)
    q = DropTailQueue(loop, link, capacity_segments=2)
    q.on_drop = lambda packet, segs: drops.append(segs)
    q.enqueue(make_data(segs=2))
    q.enqueue(make_data(segs=2, seq=2 * DEFAULT_MSS))
    q.enqueue(make_data(segs=2, seq=4 * DEFAULT_MSS))
    assert drops == [2]


def test_queue_preserves_order_and_drains(loop):
    got = []
    link = Link(loop, rate_bps=mbps(100))
    link.connect(lambda p: got.append(p.seq))
    q = DropTailQueue(loop, link, capacity_segments=100)
    seqs = [i * DEFAULT_MSS for i in range(10)]
    for s in seqs:
        q.enqueue(make_data(segs=1, seq=s))
    loop.run()
    assert got == seqs
    assert q.backlog_segments == 0


def test_queue_backlog_sampling(loop):
    link = Link(loop, rate_bps=mbps(1))
    link.connect(lambda p: None)
    q = DropTailQueue(loop, link, capacity_segments=50)
    q.enqueue(make_data(segs=10))
    q.enqueue(make_data(segs=10, seq=10 * DEFAULT_MSS))
    q.sample_backlog()
    assert q.mean_backlog_segments == 10.0  # one on the wire, one queued


def test_queue_capacity_validation(loop):
    link = Link(loop, rate_bps=mbps(1))
    with pytest.raises(ValueError):
        DropTailQueue(loop, link, capacity_segments=0)
