"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_text_output():
    code, text = run_cli([
        "run", "--cc", "cubic", "--connections", "2",
        "--duration", "1.5", "--warmup", "0.5",
    ])
    assert code == 0
    assert "goodput_mbps" in text
    assert "cubic" in text


def test_run_json_output():
    code, text = run_cli([
        "run", "--cc", "bbr", "--connections", "2",
        "--duration", "1.5", "--warmup", "0.5", "--json",
    ])
    assert code == 0
    payload = json.loads(text)
    assert payload["goodput_mbps"] > 0
    assert payload["runs"] == 1
    assert "bbr" in payload["label"]


def test_run_with_master_knobs():
    code, text = run_cli([
        "run", "--cc", "bbr", "--connections", "2",
        "--duration", "1.5", "--warmup", "0.5",
        "--fixed-cwnd", "70", "--disable-model", "--json",
    ])
    assert code == 0
    assert json.loads(text)["goodput_mbps"] > 0


def test_run_with_netem():
    code, text = run_cli([
        "run", "--cc", "cubic", "--connections", "1",
        "--duration", "1.5", "--warmup", "0.5",
        "--rate-limit-mbps", "50", "--json",
    ])
    assert code == 0
    assert json.loads(text)["goodput_mbps"] < 55


def test_compare_emits_gap():
    code, text = run_cli([
        "compare", "--connections", "4",
        "--duration", "1.5", "--warmup", "0.5",
    ])
    assert code == 0
    assert "gap" in text
    assert "cubic" in text and "bbr" in text


def test_sweep_strides_rows():
    code, text = run_cli([
        "sweep-strides", "--connections", "4",
        "--duration", "1.5", "--warmup", "0.5",
        "--strides", "1", "5", "--json",
    ])
    assert code == 0
    rows = json.loads(text)
    assert len(rows) == 2
    assert rows[0]["stride"] == "1x"
    assert rows[1]["stride"] == "5x"


def test_invalid_choice_rejected():
    with pytest.raises(SystemExit):
        run_cli(["run", "--cc", "warp"])


def _write_scenario(tmp_path, doc, name="scenario.json"):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


def test_run_scenario_single_point(tmp_path):
    path = _write_scenario(tmp_path, {
        "base": {"cc": "cubic", "connections": 2,
                 "duration_s": 1.5, "warmup_s": 0.5},
    })
    code, text = run_cli(["run", "--scenario", path, "--json"])
    assert code == 0
    payload = json.loads(text)
    assert payload["goodput_mbps"] > 0
    assert "cubic" in payload["label"]


def test_run_scenario_rejects_multi_point(tmp_path, capsys):
    path = _write_scenario(tmp_path, {
        "grid": {"cc": ["bbr", "cubic"]},
    })
    code, _ = run_cli(["run", "--scenario", path])
    assert code == 2
    assert "repro grid" in capsys.readouterr().err


def test_grid_scenario_runs_all_points(tmp_path):
    path = _write_scenario(tmp_path, {
        "base": {"connections": 2, "duration_s": 1.0, "warmup_s": 0.2},
        "grid": {"cc": ["bbr", "cubic"]},
    })
    code, text = run_cli(["grid", "--scenario", path, "--json", "--jobs", "1"])
    assert code == 0
    rows = json.loads(text)
    assert len(rows) == 2
    assert "bbr" in rows[0]["label"] and "cubic" in rows[1]["label"]


def test_grid_scenario_matches_python_specs(tmp_path):
    """CLI grid output equals the same points built and run in Python."""
    from repro import ExperimentSpec, run_replicated_grid

    path = _write_scenario(tmp_path, {
        "base": {"connections": 2, "duration_s": 1.0, "warmup_s": 0.2},
        "grid": {"cc": ["bbr", "cubic"]},
    })
    code, text = run_cli(["grid", "--scenario", path, "--json", "--jobs", "1"])
    assert code == 0
    rows = json.loads(text)
    specs = [
        ExperimentSpec(cc=cc, connections=2, duration_s=1.0, warmup_s=0.2)
        for cc in ("bbr", "cubic")
    ]
    aggs = run_replicated_grid(specs, runs=1, jobs=1)
    assert [r["goodput_mbps"] for r in rows] == \
           [round(a.goodput_mbps, 2) for a in aggs]


def test_list_prints_registered_components():
    code, text = run_cli(["list"])
    assert code == 0
    for name in ("cubic", "bbr2", "serial", "wifi", "pixel6", "low-end"):
        assert name in text


def test_list_json():
    code, text = run_cli(["list", "--json"])
    assert code == 0
    payload = json.loads(text)
    assert payload["cc"] == ["cubic", "bbr", "bbr2", "reno"]
    assert payload["device"] == ["pixel4", "pixel6"]
