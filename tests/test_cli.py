"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_text_output():
    code, text = run_cli([
        "run", "--cc", "cubic", "--connections", "2",
        "--duration", "1.5", "--warmup", "0.5",
    ])
    assert code == 0
    assert "goodput_mbps" in text
    assert "cubic" in text


def test_run_json_output():
    code, text = run_cli([
        "run", "--cc", "bbr", "--connections", "2",
        "--duration", "1.5", "--warmup", "0.5", "--json",
    ])
    assert code == 0
    payload = json.loads(text)
    assert payload["goodput_mbps"] > 0
    assert payload["runs"] == 1
    assert "bbr" in payload["label"]


def test_run_with_master_knobs():
    code, text = run_cli([
        "run", "--cc", "bbr", "--connections", "2",
        "--duration", "1.5", "--warmup", "0.5",
        "--fixed-cwnd", "70", "--disable-model", "--json",
    ])
    assert code == 0
    assert json.loads(text)["goodput_mbps"] > 0


def test_run_with_netem():
    code, text = run_cli([
        "run", "--cc", "cubic", "--connections", "1",
        "--duration", "1.5", "--warmup", "0.5",
        "--rate-limit-mbps", "50", "--json",
    ])
    assert code == 0
    assert json.loads(text)["goodput_mbps"] < 55


def test_compare_emits_gap():
    code, text = run_cli([
        "compare", "--connections", "4",
        "--duration", "1.5", "--warmup", "0.5",
    ])
    assert code == 0
    assert "gap" in text
    assert "cubic" in text and "bbr" in text


def test_sweep_strides_rows():
    code, text = run_cli([
        "sweep-strides", "--connections", "4",
        "--duration", "1.5", "--warmup", "0.5",
        "--strides", "1", "5", "--json",
    ])
    assert code == 0
    rows = json.loads(text)
    assert len(rows) == 2
    assert rows[0]["stride"] == "1x"
    assert rows[1]["stride"] == "5x"


def test_invalid_choice_rejected():
    with pytest.raises(SystemExit):
        run_cli(["run", "--cc", "warp"])
