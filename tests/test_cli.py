"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_text_output():
    code, text = run_cli([
        "run", "--cc", "cubic", "--connections", "2",
        "--duration", "1.5", "--warmup", "0.5",
    ])
    assert code == 0
    assert "goodput_mbps" in text
    assert "cubic" in text


def test_run_json_output():
    code, text = run_cli([
        "run", "--cc", "bbr", "--connections", "2",
        "--duration", "1.5", "--warmup", "0.5", "--json",
    ])
    assert code == 0
    payload = json.loads(text)
    assert payload["goodput_mbps"] > 0
    assert payload["runs"] == 1
    assert "bbr" in payload["label"]


def test_run_with_master_knobs():
    code, text = run_cli([
        "run", "--cc", "bbr", "--connections", "2",
        "--duration", "1.5", "--warmup", "0.5",
        "--fixed-cwnd", "70", "--disable-model", "--json",
    ])
    assert code == 0
    assert json.loads(text)["goodput_mbps"] > 0


def test_run_with_netem():
    code, text = run_cli([
        "run", "--cc", "cubic", "--connections", "1",
        "--duration", "1.5", "--warmup", "0.5",
        "--rate-limit-mbps", "50", "--json",
    ])
    assert code == 0
    assert json.loads(text)["goodput_mbps"] < 55


def test_compare_emits_gap():
    code, text = run_cli([
        "compare", "--connections", "4",
        "--duration", "1.5", "--warmup", "0.5",
    ])
    assert code == 0
    assert "gap" in text
    assert "cubic" in text and "bbr" in text


def test_sweep_strides_rows():
    code, text = run_cli([
        "sweep-strides", "--connections", "4",
        "--duration", "1.5", "--warmup", "0.5",
        "--strides", "1", "5", "--json",
    ])
    assert code == 0
    rows = json.loads(text)
    assert len(rows) == 2
    assert rows[0]["stride"] == "1x"
    assert rows[1]["stride"] == "5x"


def test_invalid_choice_rejected():
    with pytest.raises(SystemExit):
        run_cli(["run", "--cc", "warp"])


def _write_scenario(tmp_path, doc, name="scenario.json"):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


def test_run_scenario_single_point(tmp_path):
    path = _write_scenario(tmp_path, {
        "base": {"cc": "cubic", "connections": 2,
                 "duration_s": 1.5, "warmup_s": 0.5},
    })
    code, text = run_cli(["run", "--scenario", path, "--json"])
    assert code == 0
    payload = json.loads(text)
    assert payload["goodput_mbps"] > 0
    assert "cubic" in payload["label"]


def test_run_scenario_rejects_multi_point(tmp_path, capsys):
    path = _write_scenario(tmp_path, {
        "grid": {"cc": ["bbr", "cubic"]},
    })
    code, _ = run_cli(["run", "--scenario", path])
    assert code == 2
    assert "repro grid" in capsys.readouterr().err


def test_grid_scenario_runs_all_points(tmp_path):
    path = _write_scenario(tmp_path, {
        "base": {"connections": 2, "duration_s": 1.0, "warmup_s": 0.2},
        "grid": {"cc": ["bbr", "cubic"]},
    })
    code, text = run_cli(["grid", "--scenario", path, "--json", "--jobs", "1"])
    assert code == 0
    rows = json.loads(text)
    assert len(rows) == 2
    assert "bbr" in rows[0]["label"] and "cubic" in rows[1]["label"]


def test_grid_scenario_matches_python_specs(tmp_path):
    """CLI grid output equals the same points built and run in Python."""
    from repro import ExperimentSpec, run_replicated_grid

    path = _write_scenario(tmp_path, {
        "base": {"connections": 2, "duration_s": 1.0, "warmup_s": 0.2},
        "grid": {"cc": ["bbr", "cubic"]},
    })
    code, text = run_cli(["grid", "--scenario", path, "--json", "--jobs", "1"])
    assert code == 0
    rows = json.loads(text)
    specs = [
        ExperimentSpec(cc=cc, connections=2, duration_s=1.0, warmup_s=0.2)
        for cc in ("bbr", "cubic")
    ]
    aggs = run_replicated_grid(specs, runs=1, jobs=1)
    assert [r["goodput_mbps"] for r in rows] == \
           [round(a.goodput_mbps, 2) for a in aggs]


def test_list_prints_registered_components():
    code, text = run_cli(["list"])
    assert code == 0
    for name in ("cubic", "bbr2", "serial", "wifi", "pixel6", "low-end"):
        assert name in text


def test_list_json():
    code, text = run_cli(["list", "--json"])
    assert code == 0
    payload = json.loads(text)
    assert payload["cc"] == ["cubic", "bbr", "bbr2", "reno"]
    assert payload["device"] == ["pixel4", "pixel6"]


# -- run ledger / live telemetry / perf trend -------------------------------


SMOKE_DOC = {
    "base": {"connections": 1, "duration_s": 0.6, "warmup_s": 0.2},
    "grid": {"cc": ["bbr", "cubic"]},
}


@pytest.fixture
def ledger_env(tmp_path, monkeypatch):
    """Route the ledger (and cache) to tmp dirs with writing enabled."""
    monkeypatch.setenv("REPRO_LEDGER", "on")
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
    monkeypatch.setenv("REPRO_CACHE", "on")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path


def test_grid_live_with_exports(tmp_path, ledger_env, capsys):
    from repro import validate_openmetrics

    scenario = _write_scenario(tmp_path, SMOKE_DOC)
    om = tmp_path / "grid.om"
    jl = tmp_path / "grid-progress.jsonl"
    code, text = run_cli([
        "grid", "--scenario", scenario, "--jobs", "2", "--live",
        "--metrics-out", str(om), "--progress-out", str(jl),
    ])
    assert code == 0
    err = capsys.readouterr().err
    assert "2/2" in err  # the live status line reached stderr
    assert validate_openmetrics(om.read_text()) >= 8
    events = [json.loads(line) for line in jl.read_text().splitlines()]
    assert {e["kind"] for e in events} >= {"start", "done"}
    assert " run=" in text  # ledger record id on the timing line


def test_runs_list_show_diff_prune(tmp_path, ledger_env):
    scenario = _write_scenario(tmp_path, SMOKE_DOC)
    for _ in range(2):
        code, _ = run_cli(["grid", "--scenario", scenario, "--jobs", "1"])
        assert code == 0

    code, text = run_cli(["runs", "list", "--kind", "grid", "--json"])
    assert code == 0
    records = json.loads(text)
    assert len(records) == 2
    cold, warm = records
    assert cold["cache"] == {"used": True, "hits": 0, "misses": 2,
                             "skipped": 0}
    assert warm["cache"]["hits"] == 2

    code, text = run_cli(["runs", "list"])
    assert code == 0
    assert "0h/2m" in text and "2h/0m" in text

    code, text = run_cli(["runs", "show", cold["id"][:10]])
    assert code == 0
    assert json.loads(text)["id"] == cold["id"]

    # Cold vs fully-cached re-run: bit-identical metrics, exit 0.
    code, text = run_cli(["runs", "diff", cold["id"], warm["id"]])
    assert code == 0
    assert "records match" in text

    code, text = run_cli(["runs", "path"])
    assert code == 0 and text.strip().endswith("ledger.jsonl")

    code, text = run_cli(["runs", "prune", "--keep", "1"])
    assert code == 0
    code, text = run_cli(["runs", "list", "--json"])
    assert len(json.loads(text)) == 1


def test_runs_diff_exit_codes(tmp_path, ledger_env, capsys):
    from repro import RunLedger

    ledger = RunLedger()
    base = {"v": 1, "kind": "run", "ts": 0.0, "spec_digest": "d1"}
    ledger.append({**base, "id": "aaa1", "metrics": {"goodput_mbps": 100.0}})
    ledger.append({**base, "id": "bbb2", "metrics": {"goodput_mbps": 90.0}})
    ledger.append({**base, "id": "ccc3", "spec_digest": "other",
                   "metrics": {"goodput_mbps": 90.0}})

    code, text = run_cli(["runs", "diff", "aaa1", "bbb2"])
    assert code == 1
    assert "goodput_mbps" in text

    code, _ = run_cli(["runs", "diff", "aaa1", "bbb2", "--tol", "0.2"])
    assert code == 0

    code, _ = run_cli(["runs", "diff", "aaa1", "ccc3"])
    assert code == 2
    assert "no spec digests" in capsys.readouterr().err

    code, _ = run_cli(["runs", "diff", "aaa1", "zzz9"])
    assert code == 2
    assert "no ledger record" in capsys.readouterr().err


def test_runs_diff_json_contract(tmp_path, ledger_env):
    from repro import RunLedger

    ledger = RunLedger()
    base = {"v": 1, "kind": "run", "ts": 0.0, "spec_digest": "d1"}
    ledger.append({**base, "id": "aaa1", "metrics": {"m": 1.0}})
    ledger.append({**base, "id": "bbb2", "metrics": {"m": 2.0}})
    code, text = run_cli(["runs", "diff", "aaa1", "bbb2", "--json"])
    assert code == 1
    payload = json.loads(text)
    assert payload["exit_code"] == 1
    assert payload["differing"][0]["metric"] == "m"


def test_sweep_status_renders_progress(capsys):
    code, _ = run_cli([
        "sweep-strides", "--connections", "1", "--duration", "0.6",
        "--warmup", "0.2", "--strides", "1", "5", "--status", "--json",
    ])
    assert code == 0
    assert "2/2" in capsys.readouterr().err


def test_perf_trend_render_and_gate(tmp_path):
    from repro.obs import perf_trend

    path = str(tmp_path / "hist.jsonl")
    for value in (100.0, 102.0, 98.0, 60.0):  # last entry: a real slide
        perf_trend.append_history(path, perf_trend.history_record(
            {"bbr_1c": value}, kernel="pure", quick=False,
            timestamp=value, cpu_count=4))
    code, text = run_cli(["perf", "trend", "--history", path])
    assert code == 0
    assert "kernel=pure" in text and "bbr_1c" in text

    code, text = run_cli(["perf", "trend", "--history", path,
                          "--check-regression", "10"])
    assert code == 1
    assert "REGRESSION" in text

    code, text = run_cli(["perf", "trend", "--history", path,
                          "--check-regression", "50"])
    assert code == 0
    assert "regression gate: ok" in text


def test_perf_trend_missing_history(tmp_path, capsys):
    code, _ = run_cli(["perf", "trend",
                       "--history", str(tmp_path / "none.jsonl")])
    assert code == 2
    assert "no history entries" in capsys.readouterr().err


def test_report_surfaces_meta_notices(tmp_path, capsys):
    series = {
        "goodput": {"name": "goodput", "unit": "mbps",
                    "t_ns": [0, 1000], "values": [1.0, 2.0]},
        "_meta": {"notices": ["trace ring buffer dropped 7 oldest records"],
                  "dropped_trace_records": 7},
    }
    path = tmp_path / "series.json"
    path.write_text(json.dumps(series))
    code, text = run_cli(["report", str(path)])
    assert code == 0
    assert "goodput" in text
    assert "dropped 7 oldest records" in capsys.readouterr().err
