"""Tests for the §6 analytical model and stride helpers."""

import pytest

from repro import (
    CpuConfig,
    ExperimentSpec,
    PAPER_STRIDES,
    StrideRow,
    expected_throughput_bps,
    idle_time_ns,
    sweep_strides,
)
from repro.units import SEC, mbps


def test_idle_time_eq1():
    # 4000 bytes at 32 Mbps = 1 ms
    assert idle_time_ns(4000, mbps(32)) == pytest.approx(1e6, rel=1e-6)


def test_idle_time_eq2_stride():
    base = idle_time_ns(4000, mbps(32))
    assert idle_time_ns(4000, mbps(32), stride=5) == 5 * base


def test_idle_time_validation():
    with pytest.raises(ValueError):
        idle_time_ns(1000, 0)
    with pytest.raises(ValueError):
        idle_time_ns(1000, mbps(1), stride=0.5)


def test_expected_throughput_eq3():
    # Paper Table 2, 1x row: 32.1 kbit per buffer, 0.88 ms idle, 20 conns
    skb_bytes = 32.1 * 1000 / 8
    expected = expected_throughput_bps(skb_bytes, 0.88e6, 20)
    assert expected / 1e6 == pytest.approx(729, rel=0.01)


def test_expected_throughput_validation():
    assert expected_throughput_bps(1000, 0, 20) == 0.0
    with pytest.raises(ValueError):
        expected_throughput_bps(1000, 1000, 0)


def test_stride_row_from_measurement():
    row = StrideRow.from_measurement(
        stride=1.0, mean_skb_bytes=4012.5, mean_idle_ms=0.88,
        actual_tx_mbps=430.0, rtt_ms=3.7, connections=20,
    )
    assert row.skb_len_kbits == pytest.approx(32.1, rel=0.01)
    assert row.expected_tx_mbps == pytest.approx(729, rel=0.01)
    cells = row.as_table_row()
    assert cells[0] == "1x"
    assert len(cells) == 6


def test_paper_strides_constant():
    assert PAPER_STRIDES == (1.0, 2.0, 5.0, 10.0, 20.0, 50.0)


def test_sweep_strides_runs_each_point():
    spec = ExperimentSpec(
        cc="bbr", connections=4, cpu_config=CpuConfig.LOW_END,
        duration_s=1.5, warmup_s=0.5,
    )
    results = sweep_strides(spec, strides=(1.0, 5.0), runs=1)
    assert set(results) == {1.0, 5.0}
    assert all(r.goodput_mbps > 0 for r in results.values())
    assert results[5.0].runs[0].spec.pacing_stride == 5.0
