"""Property-based tests (hypothesis) on core data structures and
end-to-end invariants."""

import json
from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro import (
    CC_ALGORITHMS,
    CPU_CONFIGS,
    DEVICES,
    EXECUTORS,
    ExperimentSpec,
    MEDIA,
    NetemConfig,
    PIXEL_4,
    spec_from_dict,
)
from repro.cc import WindowedMaxFilter
from repro.cpu import DEFAULT_COSTS
from repro.metrics import StatAccumulator
from repro.netsim import DEFAULT_MSS, Packet
from repro.sim import EventLoop, RngStreams
from repro.tcp import Scoreboard, TxRecord
from repro.tcp.receiver import TcpReceiverEndpoint
from repro.tcp.segmentation import GSO_MAX_BYTES, tso_autosize_bytes
from repro.units import SEC

MSS = 1000


# ---------------------------------------------------------------------------
# Event loop ordering
# ---------------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=60))
def test_event_loop_fires_in_nondecreasing_time_order(delays):
    loop = EventLoop()
    fired = []
    for d in delays:
        loop.call_after(d, lambda d=d: fired.append(loop.now))
    loop.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=2, max_size=40))
def test_same_time_events_preserve_insertion_order(delays):
    loop = EventLoop()
    fired = []
    when = 50
    for i, _ in enumerate(delays):
        loop.call_at(when, lambda i=i: fired.append(i))
    loop.run()
    assert fired == list(range(len(delays)))


# ---------------------------------------------------------------------------
# Windowed max filter
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),   # time increments
            st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        ),
        min_size=1,
        max_size=200,
    )
)
def test_minmax_value_never_below_latest_sample_in_window(samples):
    f = WindowedMaxFilter(10)
    t = 0
    for dt, v in samples:
        t += dt
        result = f.update(t, v)
        # The running max is at least the sample just offered...
        assert result >= v
    # ...and equals some sample seen within the window.
    recent = [v for (tt, v) in _accumulate(samples) if t - tt <= 30]
    assert f.value <= max(v for _, v in _accumulate(samples))


def _accumulate(samples):
    t = 0
    out = []
    for dt, v in samples:
        t += dt
        out.append((t, v))
    return out


@given(st.lists(st.floats(min_value=1.0, max_value=100.0), min_size=25, max_size=80))
def test_minmax_stale_max_expires(values):
    """After a full window of strictly lower samples, a spike is gone."""
    f = WindowedMaxFilter(10)
    f.update(0, 1e9)  # giant spike at t=0
    for i, v in enumerate(values, start=1):
        f.update(i, v)
    assert f.value <= max(values)


# ---------------------------------------------------------------------------
# Scoreboard conservation
# ---------------------------------------------------------------------------


@st.composite
def transmissions(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    segs = draw(st.lists(st.integers(min_value=1, max_value=8), min_size=n, max_size=n))
    return segs


@given(transmissions(), st.data())
def test_scoreboard_counters_match_record_state(segs, data):
    sb = Scoreboard(MSS)
    seq = 0
    for i, s in enumerate(segs):
        sb.on_transmit(
            TxRecord(
                seq=seq, end_seq=seq + s * MSS, segments=s, sent_ns=i,
                delivered_at_send=0, delivered_time_at_send=0,
                first_sent_at_send=0,
            )
        )
        seq += s * MSS
    total = seq
    # Apply a random cumulative ack and random SACK blocks.
    ack = data.draw(st.integers(min_value=0, max_value=total // MSS)) * MSS
    blocks = []
    for _ in range(data.draw(st.integers(min_value=0, max_value=3))):
        a = data.draw(st.integers(min_value=0, max_value=total // MSS - 1)) * MSS
        b = data.draw(st.integers(min_value=a // MSS + 1, max_value=total // MSS)) * MSS
        blocks.append((a, b))
    sb.on_ack(ack, blocks)

    # Invariants: counters equal a fresh walk over the records.
    packets = sum(r.segments for r in sb.records)
    sacked = sum(r.sacked_segments for r in sb.records)
    assert sb.packets_out == packets
    assert sb.sacked_out == sacked
    assert 0 <= sb.sacked_out <= sb.packets_out
    assert sb.inflight_segments >= 0
    assert sb.snd_una >= ack or ack <= 0
    for r in sb.records:
        assert 0 <= r.sacked_segments <= r.segments
        assert not (r.sacked and r.lost)


# ---------------------------------------------------------------------------
# Receiver reassembly
# ---------------------------------------------------------------------------


@given(st.permutations(list(range(12))))
def test_receiver_delivers_exactly_once_any_arrival_order(order):
    acks = []
    ep = TcpReceiverEndpoint(1, acks.append)
    for idx in order:
        ep.on_data(Packet(flow_id=1, seq=idx * MSS, length=MSS, mss=MSS, sent_ts=0))
    assert ep.rcv_nxt == 12 * MSS
    assert ep.bytes_in_order == 12 * MSS
    assert ep.duplicate_bytes == 0
    assert acks[-1].ack == 12 * MSS
    assert acks[-1].sack_blocks == []


@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.integers(1, 4)),
        min_size=1,
        max_size=40,
    )
)
def test_receiver_rcv_nxt_monotone_and_window_bounded(chunks):
    ep = TcpReceiverEndpoint(1, lambda ack: None)
    last = 0
    for start_seg, len_seg in chunks:
        ep.on_data(
            Packet(flow_id=1, seq=start_seg * MSS, length=len_seg * MSS, mss=MSS, sent_ts=0)
        )
        assert ep.rcv_nxt >= last
        last = ep.rcv_nxt
        assert 0 <= ep.advertised_window() <= ep.rcv_buffer_bytes


# ---------------------------------------------------------------------------
# TSO autosize
# ---------------------------------------------------------------------------


@given(
    st.floats(min_value=0.0, max_value=100e9, allow_nan=False),
    st.integers(min_value=500, max_value=9000),
)
def test_autosize_bounds(rate, mss):
    nbytes = tso_autosize_bytes(rate, mss)
    assert nbytes % mss == 0
    assert nbytes >= 2 * mss
    assert nbytes <= max(GSO_MAX_BYTES // mss, 1) * mss


@given(
    st.floats(min_value=1e6, max_value=1e9, allow_nan=False),
    st.floats(min_value=1.01, max_value=10.0, allow_nan=False),
)
def test_autosize_monotone_in_rate(rate, factor):
    assert tso_autosize_bytes(rate * factor, 1448) >= tso_autosize_bytes(rate, 1448)


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=300))
def test_stat_accumulator_matches_reference(values):
    acc = StatAccumulator(keep=True)
    for v in values:
        acc.add(v)
    mean = sum(values) / len(values)
    assert abs(acc.mean - mean) < 1e-6 * max(1.0, abs(mean))
    assert acc.min_value == min(values)
    assert acc.max_value == max(values)
    assert acc.percentile(0) == min(values)
    assert acc.percentile(100) == max(values)


# ---------------------------------------------------------------------------
# Spec wire-format round trip
# ---------------------------------------------------------------------------

#: an unregistered device profile — serializes inline instead of by name
_CUSTOM_DEVICE = replace(PIXEL_4, cycles_scale=0.7)

_netems = st.builds(
    NetemConfig,
    rate_bps=st.one_of(st.none(), st.floats(min_value=1e6, max_value=1e9)),
    extra_delay_ns=st.integers(min_value=0, max_value=10**7),
    loss_probability=st.floats(min_value=0.0, max_value=0.5),
    buffer_segments=st.one_of(st.none(), st.integers(min_value=1, max_value=1000)),
)

_specs = st.builds(
    ExperimentSpec,
    cc=st.sampled_from(CC_ALGORITHMS.names()),
    connections=st.integers(min_value=1, max_value=30),
    device=st.sampled_from(
        [DEVICES.get(name) for name in DEVICES.names()] + [_CUSTOM_DEVICE]
    ),
    cpu_config=st.sampled_from(CPU_CONFIGS.names()),
    medium=st.sampled_from([MEDIA.get(name) for name in MEDIA.names()]),
    netem=st.one_of(st.none(), _netems),
    pacing_mode=st.sampled_from(["auto", "on", "off"]),
    pacing_stride=st.floats(min_value=0.5, max_value=50.0),
    duration_s=st.floats(min_value=0.5, max_value=30.0),
    warmup_s=st.floats(min_value=0.0, max_value=0.4),
    seed=st.integers(min_value=0, max_value=2**31),
    costs=st.sampled_from(
        [None, DEFAULT_COSTS.scaled(0.5), DEFAULT_COSTS.without_pacing_overhead()]
    ),
    disable_model=st.booleans(),
    fixed_cwnd_segments=st.one_of(st.none(), st.integers(min_value=1, max_value=500)),
    fixed_pacing_rate_mbps=st.one_of(
        st.none(), st.floats(min_value=1.0, max_value=1000.0)
    ),
    executor=st.sampled_from(EXECUTORS.names()),
    phone_qdisc_segments=st.integers(min_value=10, max_value=5000),
)


@given(_specs)
def test_spec_dict_round_trip_exact(spec):
    assert spec_from_dict(spec.to_dict()) == spec


@given(_specs)
def test_spec_survives_json_serialization(spec):
    """The wire format must survive an actual JSON encode/decode."""
    wire = json.loads(json.dumps(spec.to_dict()))
    assert spec_from_dict(wire) == spec


# ---------------------------------------------------------------------------
# RNG streams
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
def test_rng_streams_reproducible(seed, name):
    a = RngStreams(seed).stream(name).random()
    b = RngStreams(seed).stream(name).random()
    assert a == b
