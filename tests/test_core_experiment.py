"""Tests for the experiment runner — the library's main entry point."""

import pytest

from repro import (
    CpuConfig,
    ExperimentSpec,
    NetemConfig,
    PacingMode,
    run_experiment,
    run_replicated,
)
from repro.core.experiment import make_cc_factory
from repro.cc import MasterModule


def quick(**kw):
    defaults = dict(duration_s=1.5, warmup_s=0.5, cpu_config=CpuConfig.LOW_END)
    defaults.update(kw)
    return ExperimentSpec(**defaults)


def test_runs_and_reports_goodput():
    result = run_experiment(quick(cc="cubic", connections=1))
    assert 200 < result.goodput_mbps < 500
    assert result.rtt_mean_ms > 0
    assert result.cpu_busy_fraction > 0.9
    assert result.events_processed > 1000


def test_determinism_same_seed_same_result():
    a = run_experiment(quick(cc="bbr", connections=2, seed=42))
    b = run_experiment(quick(cc="bbr", connections=2, seed=42))
    assert a.goodput_mbps == b.goodput_mbps
    assert a.rtt_mean_ms == b.rtt_mean_ms
    assert a.events_processed == b.events_processed


def test_different_seeds_vary_on_wifi():
    from repro import WIFI_LAN
    a = run_experiment(quick(cc="bbr", medium=WIFI_LAN, seed=1))
    b = run_experiment(quick(cc="bbr", medium=WIFI_LAN, seed=2))
    assert a.goodput_mbps != b.goodput_mbps


def test_bbr_underperforms_cubic_on_low_end_20c():
    """The paper's headline result, as a regression test."""
    bbr = run_experiment(quick(cc="bbr", connections=20, duration_s=3.0, warmup_s=1.0))
    cubic = run_experiment(quick(cc="cubic", connections=20, duration_s=3.0, warmup_s=1.0))
    assert bbr.goodput_mbps < 0.75 * cubic.goodput_mbps


def test_disabling_pacing_raises_bbr_goodput():
    paced = run_experiment(quick(cc="bbr", connections=20, duration_s=3.0, warmup_s=1.0))
    unpaced = run_experiment(
        quick(cc="bbr", connections=20, pacing_mode=PacingMode.OFF,
              duration_s=3.0, warmup_s=1.0)
    )
    assert unpaced.goodput_mbps > 1.2 * paced.goodput_mbps
    assert unpaced.rtt_mean_ms > paced.rtt_mean_ms


def test_stride_improves_low_end_goodput():
    s1 = run_experiment(quick(cc="bbr", connections=20, duration_s=3.0, warmup_s=1.0))
    s5 = run_experiment(
        quick(cc="bbr", connections=20, pacing_stride=5.0, duration_s=3.0, warmup_s=1.0)
    )
    assert s5.goodput_mbps > 1.1 * s1.goodput_mbps


def test_per_flow_goodput_reported():
    result = run_experiment(quick(cc="cubic", connections=4))
    assert len(result.per_flow_goodput_mbps) == 4
    assert all(g > 0 for g in result.per_flow_goodput_mbps)
    assert sum(result.per_flow_goodput_mbps) == pytest.approx(
        result.goodput_mbps, rel=0.01
    )


def test_replication_aggregates():
    agg = run_replicated(quick(cc="cubic", connections=1), runs=3)
    assert len(agg.runs) == 3
    assert agg.goodput_mbps > 0
    assert agg.stats.runs == 3
    assert agg.mean("cpu_busy_fraction") > 0.9


def test_replication_is_deterministic():
    a = run_replicated(quick(cc="cubic"), runs=2)
    b = run_replicated(quick(cc="cubic"), runs=2)
    assert a.goodput_mbps == b.goodput_mbps


def test_netem_shallow_buffer_causes_retransmissions():
    spec = quick(
        cc="bbr", connections=10, pacing_mode=PacingMode.OFF,
        netem=NetemConfig(rate_bps=500e6, buffer_segments=10),
        duration_s=3.0, warmup_s=1.0,
    )
    result = run_experiment(spec)
    assert result.retransmitted_segments > 100
    assert result.router_dropped_segments > 100


def test_master_knobs_build_wrapped_module():
    spec = quick(cc="bbr", fixed_cwnd_segments=70, disable_model=True)
    module = make_cc_factory(spec)()
    assert isinstance(module, MasterModule)
    assert module.fixed_cwnd_segments == 70
    result = run_experiment(spec)
    assert result.mean_cwnd_segments == 70


def test_fixed_pacing_rate_mbps():
    spec = quick(cc="bbr", connections=1, fixed_pacing_rate_mbps=20.0,
                 duration_s=2.0, warmup_s=0.5)
    result = run_experiment(spec)
    assert result.goodput_mbps < 25


def test_unknown_cc_rejected():
    with pytest.raises(ValueError):
        run_experiment(quick(cc="warp-speed"))


def test_bad_warmup_rejected():
    with pytest.raises(ValueError):
        run_experiment(ExperimentSpec(duration_s=1.0, warmup_s=2.0))


def test_unknown_executor_rejected():
    with pytest.raises(ValueError):
        run_experiment(quick(executor="gpu"))


def test_free_executor_removes_cpu_limit():
    low = run_experiment(quick(cc="cubic", connections=1))
    free = run_experiment(quick(cc="cubic", connections=1, executor="free"))
    assert free.goodput_mbps > 2 * low.goodput_mbps
    assert free.cpu_busy_fraction == 0.0


def test_rps_executor_spreads_load():
    serial = run_experiment(quick(cc="cubic", connections=8, duration_s=2.0, warmup_s=0.5))
    rps = run_experiment(
        quick(cc="cubic", connections=8, executor="rps", duration_s=2.0, warmup_s=0.5)
    )
    assert rps.goodput_mbps > 1.5 * serial.goodput_mbps


def test_label_is_descriptive():
    spec = quick(cc="bbr", connections=20, pacing_stride=5.0)
    label = spec.label()
    assert "bbr" in label and "20c" in label and "stride=5x" in label


def test_memory_proxy_reported():
    result = run_experiment(quick(cc="cubic", connections=4))
    assert result.peak_memory_bytes > 0
    assert result.mean_memory_bytes > 0
    assert result.peak_memory_bytes >= result.mean_memory_bytes


def test_teardown_runs_even_when_metrics_extraction_fails(monkeypatch):
    """A metrics exception must not leak live timers (worker reuse)."""
    import repro.core.experiment as exp_mod
    from repro.apps.flows import FlowClient

    stops = []
    original_stop = FlowClient.stop
    monkeypatch.setattr(
        FlowClient, "stop",
        lambda self: (stops.append(True), original_stop(self)),
    )

    def boom(_bps):
        raise RuntimeError("metrics exploded")

    monkeypatch.setattr(exp_mod, "to_mbps", boom)
    with pytest.raises(RuntimeError, match="metrics exploded"):
        run_experiment(quick())
    assert stops, "client.stop() must run despite the metrics failure"
