"""Unit tests for Timer and PeriodicTimer."""

import pytest

from repro.sim import EventLoop, PeriodicTimer, Timer


def test_timer_fires_once(loop):
    fired = []
    timer = Timer(loop, lambda: fired.append(loop.now))
    timer.start(100)
    loop.run()
    assert fired == [100]
    assert timer.fire_count == 1
    assert not timer.pending


def test_timer_restart_rearms(loop):
    fired = []
    timer = Timer(loop, lambda: fired.append(loop.now))
    timer.start(100)
    timer.start(300)  # re-arm before expiry
    loop.run()
    assert fired == [300]


def test_timer_cancel(loop):
    fired = []
    timer = Timer(loop, lambda: fired.append(1))
    timer.start(100)
    timer.cancel()
    loop.run()
    assert fired == []


def test_timer_cancel_idempotent(loop):
    timer = Timer(loop, lambda: None)
    timer.cancel()
    timer.cancel()  # must not raise


def test_timer_expires_at(loop):
    timer = Timer(loop, lambda: None)
    timer.start(250)
    assert timer.expires_at == 250
    assert timer.pending


def test_timer_start_at_absolute(loop):
    fired = []
    loop.call_after(50, lambda: None)
    loop.run()
    timer = Timer(loop, lambda: fired.append(loop.now))
    timer.start_at(120)
    loop.run()
    assert fired == [120]


def test_timer_start_at_past_clamps_to_now(loop):
    fired = []
    loop.call_after(100, lambda: None)
    loop.run()
    timer = Timer(loop, lambda: fired.append(loop.now))
    timer.start_at(10)  # in the past
    loop.run()
    assert fired == [100]


def test_timer_slack_rounds_up(loop):
    fired = []
    timer = Timer(loop, lambda: fired.append(loop.now), slack_ns=100)
    timer.start(150)
    loop.run()
    assert fired == [200]


def test_timer_rearm_from_callback(loop):
    fired = []
    timer = Timer(loop, lambda: None)

    def on_fire():
        fired.append(loop.now)
        if len(fired) < 3:
            timer.start(100)

    timer._callback = on_fire
    timer.start(100)
    loop.run()
    assert fired == [100, 200, 300]


def test_periodic_timer_ticks(loop):
    ticks = []
    periodic = PeriodicTimer(loop, 100, lambda: ticks.append(loop.now))
    periodic.start()
    loop.run(until=350)
    assert ticks == [100, 200, 300]


def test_periodic_timer_initial_delay(loop):
    ticks = []
    periodic = PeriodicTimer(loop, 100, lambda: ticks.append(loop.now))
    periodic.start(initial_delay_ns=0)
    loop.run(until=250)
    assert ticks == [0, 100, 200]


def test_periodic_timer_stop(loop):
    ticks = []
    periodic = PeriodicTimer(loop, 100, lambda: ticks.append(loop.now))
    periodic.start()
    loop.call_at(250, periodic.stop)
    loop.run(until=1000)
    assert ticks == [100, 200]
    assert not periodic.running


def test_periodic_timer_stop_from_callback(loop):
    ticks = []
    periodic = PeriodicTimer(loop, 100, lambda: None)

    def on_tick():
        ticks.append(loop.now)
        if len(ticks) == 2:
            periodic.stop()

    periodic._callback = on_tick
    periodic.start()
    loop.run(until=1000)
    assert ticks == [100, 200]


def test_periodic_rejects_nonpositive_period(loop):
    with pytest.raises(ValueError):
        PeriodicTimer(loop, 0, lambda: None)
