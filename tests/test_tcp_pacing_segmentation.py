"""Unit tests for TSO autosizing and the pacing controller (Eqs. 1-2)."""

import pytest

from repro.tcp import GSO_MAX_BYTES, PacingController, tso_autosize_bytes, tso_autosize_segments
from repro.units import MSEC, SEC, mbps

MSS = 1448


def test_autosize_is_about_one_ms_of_rate():
    nbytes = tso_autosize_bytes(mbps(100), MSS)
    # 100 Mbps ~ 12.5 kB/ms; rounded down to whole segments
    assert 10_000 < nbytes < 13_000
    assert nbytes % MSS == 0


def test_autosize_scales_with_rate():
    assert tso_autosize_bytes(mbps(400), MSS) > tso_autosize_bytes(mbps(100), MSS)


def test_autosize_min_segments_floor():
    assert tso_autosize_bytes(mbps(1), MSS) == 2 * MSS
    assert tso_autosize_bytes(mbps(1), MSS, min_tso_segs=4) == 4 * MSS


def test_autosize_gso_cap():
    nbytes = tso_autosize_bytes(mbps(10_000), MSS)
    assert nbytes <= GSO_MAX_BYTES
    assert nbytes == (GSO_MAX_BYTES // MSS) * MSS


def test_autosize_segments_form():
    assert tso_autosize_segments(mbps(100), MSS) == tso_autosize_bytes(mbps(100), MSS) // MSS


def test_autosize_rejects_bad_mss():
    with pytest.raises(ValueError):
        tso_autosize_bytes(mbps(100), 0)


# ---------------------------------------------------------------------------
# PacingController
# ---------------------------------------------------------------------------


def make_pacer(rate_mbps=100.0, stride=1.0):
    pacer = PacingController(MSS, stride=stride)
    pacer.rate_bps = mbps(rate_mbps)
    return pacer


def test_stride_below_one_rejected():
    with pytest.raises(ValueError):
        PacingController(MSS, stride=0.5)


def test_not_blocked_initially():
    pacer = make_pacer()
    assert not pacer.blocked(0)


def test_budget_is_stride_times_goal():
    p1 = make_pacer(stride=1.0)
    p5 = make_pacer(stride=5.0)
    assert p5.period_budget_bytes() == 5 * p1.period_budget_bytes()


def test_idle_time_follows_eq1():
    pacer = make_pacer(rate_mbps=100, stride=1.0)
    pacer.open_period(0)
    budget = pacer.period_budget_bytes()
    pacer.consume(budget)
    idle = pacer.close_period(0)
    expected = int(budget * 8 * SEC / mbps(100))
    assert idle == expected
    assert pacer.blocked(idle - 1)
    assert not pacer.blocked(idle)


def test_stride_scales_idle_time_eq2():
    idle = {}
    for stride in (1.0, 5.0):
        pacer = make_pacer(rate_mbps=100, stride=stride)
        pacer.open_period(0)
        pacer.consume(pacer.period_budget_bytes())
        idle[stride] = pacer.close_period(0)
    assert idle[5.0] == pytest.approx(5 * idle[1.0], rel=0.01)


def test_underfilled_period_still_idles_full_budget():
    """cwnd-capped bursts idle by intent, not by what was sent (Table 2)."""
    pacer = make_pacer(rate_mbps=100, stride=10.0)
    pacer.open_period(0)
    pacer.consume(MSS)  # far below the 10x budget
    idle = pacer.close_period(0)
    full = int(pacer.period_budget_bytes() * 8 * SEC / mbps(100))
    assert idle == full


def test_idle_measured_from_period_open():
    """CPU work overlaps the pacing clock: delay is from open time."""
    pacer = make_pacer(rate_mbps=100)
    pacer.open_period(0)
    budget = pacer.period_budget_bytes()
    pacer.consume(budget)
    full_idle = int(budget * 8 * SEC / mbps(100))
    # The transmit work finished 60% into the idle window.
    late = int(full_idle * 0.6)
    remaining = pacer.close_period(late)
    assert remaining == full_idle - late
    assert pacer.next_send_at_ns == full_idle


def test_cpu_slower_than_idle_means_no_delay():
    pacer = make_pacer(rate_mbps=100)
    pacer.open_period(0)
    pacer.consume(pacer.period_budget_bytes())
    remaining = pacer.close_period(10 * SEC)  # CPU took ages
    assert remaining == 0
    assert not pacer.blocked(10 * SEC)


def test_zero_rate_never_blocks():
    pacer = PacingController(MSS)
    pacer.rate_bps = 0.0
    pacer.open_period(0)
    pacer.consume(MSS)
    assert pacer.close_period(0) == 0
    assert not pacer.blocked(0)


def test_consume_outside_period_rejected():
    pacer = make_pacer()
    with pytest.raises(RuntimeError):
        pacer.consume(100)


def test_close_without_open_rejected():
    pacer = make_pacer()
    with pytest.raises(RuntimeError):
        pacer.close_period(0)


def test_open_while_blocked_rejected():
    pacer = make_pacer()
    pacer.open_period(0)
    pacer.consume(pacer.period_budget_bytes())
    pacer.close_period(0)
    with pytest.raises(RuntimeError):
        pacer.open_period(0)


def test_abandon_period_does_not_pace():
    pacer = make_pacer()
    pacer.open_period(0)
    pacer.abandon_period()
    assert not pacer.blocked(0)
    assert pacer.periods == 0


def test_statistics_track_periods():
    pacer = make_pacer(rate_mbps=100)
    for t in range(3):
        now = pacer.next_send_at_ns
        pacer.open_period(now)
        pacer.consume(pacer.period_budget_bytes())
        pacer.close_period(now)
    assert pacer.periods == 3
    assert pacer.mean_period_bytes == pacer.period_budget_bytes()
    assert pacer.mean_idle_ns > 0
