"""Unit tests for the assembled Figure-1 testbed."""

import pytest

from repro.netsim import ETHERNET_LAN, NetemConfig, Packet
from repro.netsim import Testbed as _Testbed  # alias avoids pytest collection
from repro.netsim.packet import DEFAULT_MSS
from repro.sim import EventLoop, RngStreams
from repro.units import MSEC, mbps


def build(loop, **kwargs):
    return _Testbed(loop, ETHERNET_LAN, rng=RngStreams(1), **kwargs)


def test_data_reaches_server(loop):
    tb = build(loop)
    got = []
    tb.on_server_receive = got.append
    tb.on_phone_receive = lambda p: None
    tb.phone_send(Packet(flow_id=1, seq=0, length=DEFAULT_MSS))
    loop.run()
    assert len(got) == 1
    assert got[0].flow_id == 1


def test_ack_returns_to_phone(loop):
    tb = build(loop)
    tb.on_server_receive = lambda p: tb.server_send(
        Packet(flow_id=p.flow_id, is_ack=True, ack=p.end_seq)
    )
    acks = []
    tb.on_phone_receive = acks.append
    tb.phone_send(Packet(flow_id=1, seq=0, length=DEFAULT_MSS))
    loop.run()
    assert len(acks) == 1
    assert acks[0].ack == DEFAULT_MSS


def test_rtt_includes_both_directions(loop):
    tb = build(loop)
    tb.on_server_receive = lambda p: tb.server_send(
        Packet(flow_id=1, is_ack=True, ack=p.end_seq)
    )
    times = []
    tb.on_phone_receive = lambda p: times.append(loop.now)
    tb.phone_send(Packet(flow_id=1, seq=0, length=DEFAULT_MSS))
    loop.run()
    # at least two propagation delays plus serialization
    assert times[0] >= 2 * ETHERNET_LAN.one_way_delay_ns


def test_netem_rate_limit_applies_to_router_egress(loop):
    tb = build(loop, netem=NetemConfig(rate_bps=mbps(10)))
    assert tb.router_server_link.rate_bps == mbps(10)


def test_netem_buffer_overrides_router_queue(loop):
    tb = build(loop, netem=NetemConfig(buffer_segments=10))
    assert tb.router_queue.capacity_segments == 10


def test_shallow_buffer_drops_bursts(loop):
    tb = build(loop, netem=NetemConfig(rate_bps=mbps(50), buffer_segments=10))
    got = []
    tb.on_server_receive = got.append
    tb.on_phone_receive = lambda p: None
    # Burst 40 segments into a 10-segment buffer behind a 50 Mbps port.
    for i in range(10):
        tb.phone_send(Packet(flow_id=1, seq=i * 4 * DEFAULT_MSS, length=4 * DEFAULT_MSS))
    loop.run()
    assert tb.router_dropped_segments > 0
    delivered = sum(p.segments for p in got)
    assert delivered + tb.router_dropped_segments == 40


def test_missing_receiver_raises(loop):
    tb = build(loop)
    tb.phone_send(Packet(flow_id=1, seq=0, length=DEFAULT_MSS))
    with pytest.raises(RuntimeError):
        loop.run()


def test_netem_loss_drops_uplink_packets(loop):
    tb = _Testbed(
        loop, ETHERNET_LAN,
        netem=NetemConfig(loss_probability=0.5),
        rng=RngStreams(9),
    )
    got = []
    tb.on_server_receive = got.append
    tb.on_phone_receive = lambda p: None
    for i in range(100):
        tb.phone_send(Packet(flow_id=1, seq=i * DEFAULT_MSS, length=DEFAULT_MSS))
    loop.run()
    assert 20 < len(got) < 80
