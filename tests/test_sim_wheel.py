"""Equivalence and accounting tests for the timer-wheel scheduler.

The wheel is a pure routing optimization: any workload must fire the
same callbacks at the same times in the same order as the heap-only
loop. The property-style test below drives both loops through an
identical randomized schedule/cancel/re-arm workload whose delays
straddle the wheel's routing cutoff, so events land in the heap, in
wheel level 0, and in wheel level 1 within the same run.
"""

from __future__ import annotations

import random

import pytest

from repro.netsim.packet import HEADER_BYTES, Packet, PacketPool
from repro.sim import EventLoop, SimulationError
from repro.sim.engine import _WHEEL_MIN_DELAY_NS


def _run_workload(loop: EventLoop, seed: int) -> list:
    """Drive *loop* through a deterministic random timer workload.

    Returns the fire log as (time, tag) tuples. All randomness comes
    from a Random seeded identically for both loops; because the fire
    order must match, both loops consume the RNG in the same order (a
    divergence shows up as a log mismatch, which is what we assert).
    """
    rng = random.Random(seed)
    log = []
    pending = {}
    counter = [0]

    # Delay palette straddles the routing cutoff (_WHEEL_MIN_DELAY_NS):
    # sub-cutoff delays stay on the heap, mid delays land in wheel level
    # 0, and long delays (hundreds of ms) reach level 1.
    def pick_delay() -> int:
        bucket = rng.random()
        if bucket < 0.4:
            return rng.randrange(0, _WHEEL_MIN_DELAY_NS)
        if bucket < 0.8:
            return rng.randrange(_WHEEL_MIN_DELAY_NS, 40_000_000)
        return rng.randrange(40_000_000, 600_000_000)

    def schedule() -> None:
        tag = counter[0]
        counter[0] += 1
        event = loop.call_after(pick_delay(), fire, tag)
        pending[tag] = event

    def fire(tag: int) -> None:
        pending.pop(tag, None)
        log.append((loop.now, tag))
        roll = rng.random()
        if roll < 0.55:
            schedule()
        if roll < 0.25 and pending:
            # Cancel a random pending timer (true-O(1) wheel delete or
            # lazy heap delete, depending on where it was routed).
            victim = rng.choice(sorted(pending))
            pending.pop(victim).cancel()
        elif roll < 0.45 and pending:
            # Re-arm: cancel then schedule anew, the hrtimer pattern.
            victim = rng.choice(sorted(pending))
            pending.pop(victim).cancel()
            schedule()

    for _ in range(60):
        schedule()
    loop.run(until=3_000_000_000)
    return log


@pytest.mark.parametrize("seed", [7, 23, 1009])
def test_wheel_and_heap_fire_identically(seed):
    """Property: the wheel never changes what fires, when, or in what order."""
    wheel_log = _run_workload(EventLoop(wheel=True), seed)
    heap_log = _run_workload(EventLoop(wheel=False), seed)
    assert wheel_log, "workload should fire at least some events"
    assert wheel_log == heap_log


@pytest.mark.parametrize("seed", [7, 23, 1009])
def test_wheel_and_heap_agree_on_events_processed(seed):
    loop_w = EventLoop(wheel=True)
    loop_h = EventLoop(wheel=False)
    _run_workload(loop_w, seed)
    _run_workload(loop_h, seed)
    assert loop_w.events_processed == loop_h.events_processed


# -- max_events accounting (regression) ----------------------------------------


def test_max_events_overrun_still_counts_processed_events(loop):
    """events_processed must reflect work done even when the guard trips.

    Regression: the dispatch loop folds its local counter into
    events_processed in a finally block, so the SimulationError raised
    by the max_events valve must not lose the count.
    """

    def reschedule():
        loop.call_after(1, reschedule)

    loop.call_after(1, reschedule)
    with pytest.raises(SimulationError):
        loop.run(max_events=100)
    assert loop.events_processed == 100


def test_max_events_accumulates_across_runs(loop):
    for i in range(10):
        loop.call_after(i + 1, lambda: None)
    loop.run(max_events=50)
    assert loop.events_processed == 10
    for i in range(10):
        loop.call_after(i + 1, lambda: None)
    with pytest.raises(SimulationError):
        loop.run(max_events=5)
    assert loop.events_processed == 15


# -- packet pool (allocation diet) ----------------------------------------------


def test_pool_reuses_released_packets():
    pool = PacketPool()
    p1 = pool.acquire_data(flow_id=1, seq=0, length=3000, mss=1500, sent_ts=10)
    pool.release(p1)
    p2 = pool.acquire_data(flow_id=2, seq=3000, length=1500, mss=1500, sent_ts=20)
    assert p2 is p1  # recycled, not reallocated
    assert pool.reused == 1
    assert (p2.flow_id, p2.seq, p2.length, p2.sent_ts) == (2, 3000, 1500, 20)
    assert p2.segments == 1
    assert p2.wire_bytes == 1500 + HEADER_BYTES
    assert not p2.is_retransmission


def test_pool_acquire_assigns_fresh_packet_id():
    pool = PacketPool()
    p1 = pool.acquire_data(flow_id=1, seq=0, length=1500, mss=1500, sent_ts=0)
    first_id = p1.packet_id
    pool.release(p1)
    p2 = pool.acquire_data(flow_id=1, seq=1500, length=1500, mss=1500, sent_ts=0)
    assert p2.packet_id != first_id


def test_pool_double_release_is_ignored():
    pool = PacketPool()
    p = pool.acquire_data(flow_id=1, seq=0, length=1500, mss=1500, sent_ts=0)
    pool.release(p)
    pool.release(p)  # double free must not corrupt the free list
    a = pool.acquire_data(flow_id=1, seq=0, length=1500, mss=1500, sent_ts=0)
    b = pool.acquire_data(flow_id=1, seq=1500, length=1500, mss=1500, sent_ts=0)
    assert a is not b


def test_pool_ack_reuse_clears_sack_blocks():
    pool = PacketPool()
    ack = pool.acquire_ack(flow_id=1, ack=1000, rwnd=64000, echo_ts=5)
    ack.sack_blocks.append((2000, 3000))
    pool.release(ack)
    ack2 = pool.acquire_ack(flow_id=2, ack=5000, rwnd=32000, echo_ts=9)
    assert ack2 is ack
    assert ack2.sack_blocks == []
    assert ack2.is_ack
    assert ack2.wire_bytes == HEADER_BYTES
    assert (ack2.flow_id, ack2.ack, ack2.rwnd, ack2.echo_ts) == (2, 5000, 32000, 9)


def test_pool_bounds_free_list():
    pool = PacketPool(max_free=2)
    packets = [
        pool.acquire_data(flow_id=1, seq=i * 1500, length=1500, mss=1500, sent_ts=0)
        for i in range(4)
    ]
    for p in packets:
        pool.release(p)
    assert len(pool._free) == 2


def test_pooled_packet_split_head_matches_fresh_packet():
    pool = PacketPool()
    p = pool.acquire_data(flow_id=1, seq=0, length=6000, mss=1500, sent_ts=0)
    pool.release(p)
    recycled = pool.acquire_data(flow_id=3, seq=9000, length=6000, mss=1500, sent_ts=7)
    fresh = Packet(flow_id=3, seq=9000, length=6000, mss=1500, sent_ts=7)
    head_r = recycled.split_head(2)
    head_f = fresh.split_head(2)
    for a, b in ((head_r, head_f), (recycled, fresh)):
        assert (a.seq, a.length, a.segments, a.wire_bytes) == (
            b.seq, b.length, b.segments, b.wire_bytes)
