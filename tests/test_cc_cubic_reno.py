"""Unit tests for CUBIC and Reno behaviour."""

from repro.cc import Cubic, Reno
from repro.cc.cubic import BETA
from repro.tcp import FiniteSource
from repro.units import seconds

from conftest import ProtocolHarness


class FakeConn:
    """Minimal stand-in exposing what the CC modules read/write."""

    def __init__(self, cwnd=10, now=0):
        self.cwnd = cwnd
        self.ssthresh = 1 << 30
        self.cwnd_cnt = 0
        self.now = now
        self.srtt_ns = 1_000_000
        self.min_rtt_ns = 900_000
        self.snd_nxt = 0

    @property
    def in_slow_start(self):
        return self.cwnd < self.ssthresh


def test_reno_slow_start_doubles_per_rtt():
    conn = FakeConn(cwnd=10)
    reno = Reno()
    leftover = reno.slow_start(conn, acked=10)
    assert conn.cwnd == 20
    assert leftover == 0


def test_reno_slow_start_stops_at_ssthresh():
    conn = FakeConn(cwnd=10)
    conn.ssthresh = 12
    reno = Reno()
    leftover = reno.slow_start(conn, acked=10)
    assert conn.cwnd == 12
    assert leftover == 8


def test_reno_cong_avoid_one_per_rtt():
    conn = FakeConn(cwnd=10)
    conn.ssthresh = 5  # not in slow start
    reno = Reno()
    for _ in range(10):  # one cwnd's worth of acks
        reno.cong_avoid(conn, 1)
    assert conn.cwnd == 11


def test_reno_ssthresh_halves():
    conn = FakeConn(cwnd=20)
    assert Reno().ssthresh(conn) == 10


def test_cubic_ssthresh_uses_beta():
    conn = FakeConn(cwnd=100)
    cubic = Cubic()
    assert cubic.ssthresh(conn) == int(100 * BETA)


def test_cubic_fast_convergence_lowers_wmax():
    conn = FakeConn(cwnd=100)
    cubic = Cubic()
    cubic.ssthresh(conn)              # first epoch: w_last_max = 100
    conn.cwnd = 80                    # loss before regaining w_max
    cubic.ssthresh(conn)
    assert cubic.w_last_max < 80.0 * (2.0 - BETA) / 2.0 + 1e-9


def test_cubic_window_growth_is_concave_then_convex():
    """cwnd growth slows near w_max then accelerates beyond it."""
    harness = ProtocolHarness()
    sender = harness.stack.create_connection(Cubic())
    sender.ssthresh = 50  # force congestion avoidance early
    sender.start()
    samples = []

    def sample():
        samples.append(sender.cwnd)
        if harness.loop.now < seconds(2):
            harness.loop.call_after(seconds(0.1), sample)

    harness.loop.call_after(seconds(0.2), sample)
    harness.run(seconds(2))
    assert samples[-1] > samples[0]  # it grows
    assert all(b >= a for a, b in zip(samples, samples[1:]))  # monotone


def test_cubic_hystart_exits_slow_start_before_loss():
    """HyStart should cut slow start when delay rises, without any loss."""
    harness = ProtocolHarness()
    sender = harness.stack.create_connection(Cubic())
    sender.start()
    harness.run(seconds(2))
    # No losses on this clean LAN, yet ssthresh must have been set by
    # HyStart (delay grows once the 1 Gbps line saturates).
    assert sender.ssthresh < (1 << 30)
    assert sender.retransmitted_segments == 0 or sender.ssthresh < (1 << 30)


def test_cubic_rto_resets_epoch():
    conn = FakeConn(cwnd=100)
    cubic = Cubic()
    cubic.ssthresh(conn)
    cubic.epoch_start_ns = 123
    cubic.on_rto(conn)
    assert cubic.epoch_start_ns is None


def test_cubic_is_cheaper_per_ack_than_bbr():
    from repro.cc import Bbr
    assert Cubic().ack_cost_cycles < Bbr().ack_cost_cycles
