"""Tests for the distributed sweep layer (:mod:`repro.dist`).

The contract under test is the same one :mod:`repro.runner` carries:
sharding a grid across pull-workers changes *nothing* about the results
— same metrics, same grid ordering — versus a serial run, and killing
any process (worker SIGKILL mid-chunk, coordinator restart) costs at
most one lease timeout of duplicated deterministic work, never a wrong
or missing result.

Worker subprocesses are real ``repro worker --pull`` invocations so the
full path — CLI, manifest validation, queue claims, cache writes —
is exercised, not a test double.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro import (
    ExperimentSpec,
    ResultCache,
    resolve_worker_jobs,
    run_grid_report,
)
from repro.cli import main as cli_main
from repro.dist import (
    DistributedSweepError,
    QueueStateError,
    TaskQueue,
    grid_digest,
    run_distributed,
    run_worker,
)
from repro.dist.worker import WorkerError
from repro.obs.ledger import RunLedger, merge_ledgers
from repro.obs.live import DistMonitor
from repro.runner import JOBS_ENV_VAR

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _quick(**overrides) -> ExperimentSpec:
    defaults = dict(duration_s=0.8, warmup_s=0.2)
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def _grid():
    return [
        _quick(cc=cc, connections=n)
        for cc in ("bbr", "cubic")
        for n in (1, 2)
    ]


def _worker_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.update(extra)
    return env


def _spawn_worker(queue_dir, lease=2.0, idle=60.0, **env_extra):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--pull", str(queue_dir),
         "--lease-timeout", str(lease), "--idle-timeout", str(idle),
         "--poll", "0.05"],
        env=_worker_env(**env_extra),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )


# -- queue primitives --------------------------------------------------------


def _publish_two(queue):
    queue.prepare({"grid_digest": "d" * 64})
    queue.publish(0, [{"index": 0, "spec": {}}])
    queue.publish(1, [{"index": 1, "spec": {}}])


def test_queue_claim_is_exclusive_and_ordered(tmp_path):
    queue = TaskQueue(str(tmp_path / "q"))
    _publish_two(queue)
    assert queue.pending_count() == 2
    a = queue.claim("worker-a", lease_s=60)
    b = queue.claim("worker-b", lease_s=60)
    assert a.chunk == 0 and b.chunk == 1  # claim order follows chunk order
    assert queue.claim("worker-c", lease_s=60) is None
    assert queue.stats() == {"tasks": 0, "leases": 2, "done": 0}


def test_queue_complete_releases_lease_and_records(tmp_path):
    queue = TaskQueue(str(tmp_path / "q"))
    _publish_two(queue)
    task = queue.claim("worker-a", lease_s=60)
    queue.complete(task, {"chunk": task.chunk, "points": []})
    assert queue.stats() == {"tasks": 1, "leases": 0, "done": 1}
    assert set(queue.done_records()) == {0}


def test_expired_lease_is_reclaimed_but_live_one_is_not(tmp_path):
    queue = TaskQueue(str(tmp_path / "q"))
    _publish_two(queue)
    dead = queue.claim("dead-worker", lease_s=0.01)
    live = queue.claim("live-worker", lease_s=300)
    time.sleep(0.05)
    reclaimed = queue.reclaim_expired()
    assert reclaimed == [dead.name]
    assert queue.stats() == {"tasks": 1, "leases": 1, "done": 0}
    # The reclaimed chunk is claimable again; the live one stays leased.
    again = queue.claim("other-worker", lease_s=60)
    assert again.chunk == dead.chunk
    assert live.chunk != dead.chunk


def test_expired_but_completed_lease_is_dropped_not_republished(tmp_path):
    queue = TaskQueue(str(tmp_path / "q"))
    _publish_two(queue)
    task = queue.claim("worker-a", lease_s=0.01)
    time.sleep(0.05)
    # Worker finished but died before releasing the lease.
    queue.complete(task, {"chunk": task.chunk, "points": []})
    assert queue.reclaim_expired() == []
    assert queue.stats()["tasks"] == 1  # only the never-claimed chunk


def test_renew_detects_losing_the_lease(tmp_path):
    queue = TaskQueue(str(tmp_path / "q"))
    _publish_two(queue)
    task = queue.claim("slow-worker", lease_s=0.01)
    time.sleep(0.05)
    queue.reclaim_expired()
    thief = queue.claim("other-worker", lease_s=60)
    assert thief.chunk == task.chunk
    assert queue.renew(task, lease_s=60) is False
    assert task.lost
    # Completing a lost task must not clobber the thief's live lease.
    queue.complete(task, {"chunk": task.chunk, "points": []})
    assert queue.renew(thief, lease_s=60) is True


def test_prepare_refuses_a_different_grid_and_resumes_same_one(tmp_path):
    queue = TaskQueue(str(tmp_path / "q"))
    _publish_two(queue)
    with pytest.raises(QueueStateError, match="different sweep"):
        queue.prepare({"grid_digest": "e" * 64})
    # Same digest: stale tasks are swept, ledgers survive.
    ledger_dir = queue.ledger_dir("worker-a")
    os.makedirs(ledger_dir)
    queue.prepare({"grid_digest": "d" * 64})
    assert queue.pending_count() == 0
    assert os.path.isdir(ledger_dir)


# -- worker-jobs hardening (satellite 1) ------------------------------------


def test_resolve_worker_jobs_never_exceeds_host_cores(monkeypatch):
    monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
    cores = os.cpu_count() or 1
    assert resolve_worker_jobs(None) == cores
    assert resolve_worker_jobs(1) == 1
    # An explicit request above the core count is clamped, not rejected:
    # one command line must work across heterogeneous worker hosts.
    assert resolve_worker_jobs(cores + 7) == cores
    monkeypatch.setenv(JOBS_ENV_VAR, str(cores + 3))
    assert resolve_worker_jobs(None) == cores
    with pytest.raises(ValueError):
        resolve_worker_jobs(0)


# -- distributed == serial ---------------------------------------------------


def test_distributed_sweep_matches_serial_bit_identically(tmp_path):
    specs = _grid()
    cache = ResultCache(root=str(tmp_path / "cache"))
    report = run_distributed(
        specs, str(tmp_path / "queue"), cache=cache, workers=2,
        lease_s=30, poll_s=0.05, wait_timeout_s=300, name="t",
    )
    serial = run_grid_report(specs, jobs=1, cache=False)
    assert report.points == len(specs)
    for dist, ser, spec in zip(report.results, serial.results, specs):
        assert dist.spec == ser.spec == spec
        assert dist.scalar_metrics() == ser.scalar_metrics()
        assert dist.per_flow_goodput_mbps == ser.per_flow_goodput_mbps
    assert report.cache_misses == len(specs)
    assert report.total_events == serial.total_events


def test_distributed_resume_recomputes_nothing(tmp_path):
    specs = _grid()[:2]
    cache = ResultCache(root=str(tmp_path / "cache"))
    cold = run_distributed(
        specs, str(tmp_path / "queue"), cache=cache, workers=1,
        lease_s=30, poll_s=0.05, wait_timeout_s=300, name="t",
    )
    assert cold.cache_misses == len(specs)
    # Re-issue the identical sweep: the shared cache is the checkpoint,
    # so every point is a pre-scan hit and no chunk is even published.
    warm = run_distributed(
        specs, str(tmp_path / "queue"), cache=cache, workers=0,
        lease_s=30, poll_s=0.05, wait_timeout_s=30, name="t",
    )
    assert warm.cache_hits == len(specs)
    assert warm.cache_misses == 0 and warm.total_events == 0
    assert TaskQueue(str(tmp_path / "queue")).pending_count() == 0
    for a, b in zip(cold.results, warm.results):
        assert a.scalar_metrics() == b.scalar_metrics()


def test_distributed_requires_a_cache(tmp_path):
    with pytest.raises(ValueError, match="shared result cache"):
        run_distributed([_quick()], str(tmp_path / "queue"), cache=False)


def test_distributed_captures_point_errors(tmp_path):
    specs = [_quick(), _quick(connections=0)]  # second point is invalid
    cache = ResultCache(root=str(tmp_path / "cache"))
    report = run_distributed(
        specs, str(tmp_path / "queue"), cache=cache, workers=1,
        lease_s=30, poll_s=0.05, wait_timeout_s=300,
        raise_on_error=False, name="t",
    )
    assert len(report.errors) == 1
    assert report.errors[0].index == 1
    assert report.results[0].scalar_metrics()
    assert "ValueError" in report.errors[0].error


# -- fault tolerance (satellite 3) -------------------------------------------


def test_sigkilled_worker_chunk_is_redispatched(tmp_path):
    """SIGKILL a worker mid-chunk; the sweep must still finish exactly.

    Worker A claims a chunk and stalls on its first point (the
    REPRO_DIST_POINT_DELAY hook); we SIGKILL it, its lease expires, the
    coordinator re-publishes the chunk, and worker B — started with no
    delay — computes everything. The final grid must be bit-identical
    to a serial run and the coordinator must report the re-dispatch.
    """
    specs = _grid()
    cache = ResultCache(root=str(tmp_path / "cache"))
    queue_dir = str(tmp_path / "queue")
    queue = TaskQueue(queue_dir)
    outcome = {}

    def coordinate():
        try:
            outcome["report"] = run_distributed(
                specs, queue_dir, cache=cache, workers=0, chunk=2,
                lease_s=1.5, poll_s=0.05, wait_timeout_s=300, name="t",
            )
        except BaseException as exc:  # surfaced in the main thread
            outcome["error"] = exc

    coordinator = threading.Thread(target=coordinate, daemon=True)
    coordinator.start()

    def wait_for(predicate, timeout=60.0, what="condition"):
        deadline = time.monotonic() + timeout
        while not predicate():
            assert time.monotonic() < deadline, f"timed out waiting: {what}"
            assert "error" not in outcome, f"coordinator died: {outcome}"
            time.sleep(0.05)

    wait_for(lambda: queue.pending_count() > 0, what="chunks published")
    victim = _spawn_worker(queue_dir, lease=1.5, idle=60,
                           REPRO_DIST_POINT_DELAY="600")
    try:
        wait_for(lambda: queue.stats()["leases"] > 0,
                 what="victim claimed a chunk")
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
        rescuer = _spawn_worker(queue_dir, lease=5.0, idle=60)
        try:
            coordinator.join(timeout=300)
            assert not coordinator.is_alive(), "sweep never completed"
        finally:
            rescuer.wait(timeout=60)
    finally:
        if victim.poll() is None:
            victim.kill()

    assert "error" not in outcome, f"coordinator raised: {outcome.get('error')}"
    report = outcome["report"]
    assert any("re-dispatched" in n for n in report.notices), report.notices
    serial = run_grid_report(specs, jobs=1, cache=False)
    for dist, ser in zip(report.results, serial.results):
        assert dist.scalar_metrics() == ser.scalar_metrics()


def test_coordinator_detects_all_local_workers_dead(tmp_path):
    # A worker pool that dies instantly (bogus delay knob kills it on
    # the first point) must fail the sweep loudly, not hang it.
    specs = [_quick()]
    cache = ResultCache(root=str(tmp_path / "cache"))
    env_backup = os.environ.get("REPRO_DIST_POINT_DELAY")
    os.environ["REPRO_DIST_POINT_DELAY"] = "not-a-number"
    try:
        with pytest.raises(DistributedSweepError, match="exited"):
            run_distributed(
                specs, str(tmp_path / "queue"), cache=cache, workers=1,
                lease_s=30, poll_s=0.05, wait_timeout_s=300, name="t",
            )
    finally:
        if env_backup is None:
            del os.environ["REPRO_DIST_POINT_DELAY"]
        else:
            os.environ["REPRO_DIST_POINT_DELAY"] = env_backup


# -- worker validation -------------------------------------------------------


def test_worker_refuses_fingerprint_skew(tmp_path):
    queue = TaskQueue(str(tmp_path / "queue"))
    queue.prepare({
        "grid_digest": "d" * 64,
        "kernel": "pure",
        "fingerprint": "f" * 64,  # nothing real hashes to this
        "cache_root": str(tmp_path / "cache"),
    })
    with pytest.raises(WorkerError, match="different simulator code"):
        run_worker(str(queue.root), idle_timeout_s=5, poll_s=0.05)


def test_worker_times_out_without_a_manifest(tmp_path):
    with pytest.raises(WorkerError, match="no sweep manifest"):
        run_worker(str(tmp_path / "empty"), idle_timeout_s=0.2, poll_s=0.05)


def test_worker_exits_on_stop_and_reports(tmp_path):
    specs = [_quick()]
    cache = ResultCache(root=str(tmp_path / "cache"))
    queue = TaskQueue(str(tmp_path / "queue"))
    queue.prepare({
        "grid_digest": grid_digest(specs),
        "kernel": "pure",
        "cache_root": cache.root,
    })
    from repro.core.scenario import spec_to_dict

    queue.publish(0, [{"index": 0, "spec": spec_to_dict(specs[0])}])
    queue.request_stop()
    report = run_worker(str(queue.root), lease_s=30, idle_timeout_s=60,
                        poll_s=0.05)
    # Stop drains remaining work first, then exits.
    assert report.chunks == 1 and report.computed == 1
    assert report.exit_reason == "stop requested"
    assert cache.contains(specs[0])
    snapshots = queue.worker_snapshots()
    assert snapshots[report.worker_id]["state"] == "exited"


# -- ledger merge (satellite 2) ----------------------------------------------


def test_merge_ledgers_dedupes_and_orders(tmp_path):
    shard_a = RunLedger(root=str(tmp_path / "a"))
    shard_b = RunLedger(root=str(tmp_path / "b"))
    shard_a.append({"id": "aa1", "kind": "run", "ts": 3.0})
    shard_a.append({"id": "aa2", "kind": "run", "ts": 1.0})
    shard_b.append({"id": "bb1", "kind": "run", "ts": 2.0})
    shard_b.append({"id": "aa1", "kind": "run", "ts": 3.0})  # duplicate
    dest, added = merge_ledgers([shard_a, shard_b],
                                dest=str(tmp_path / "merged"))
    assert added == 3
    assert [r["id"] for r in dest.records()] == ["aa2", "bb1", "aa1"]
    # Idempotent: merging again adds nothing.
    _, added_again = merge_ledgers([shard_a, shard_b], dest=dest)
    assert added_again == 0


def test_merge_ledgers_copies_spec_refs(tmp_path):
    spec = _quick()
    shard = RunLedger(root=str(tmp_path / "shard"))
    result = run_grid_report([spec], jobs=1, cache=False,
                             ledger=shard)
    assert shard.records(kind="grid")
    dest, added = merge_ledgers([shard], dest=str(tmp_path / "merged"))
    assert added == 1
    from repro import spec_digest

    assert os.path.exists(dest.spec_ref_path(spec_digest(spec)))
    assert result.run_id in {r["id"] for r in dest.records()}


def test_distributed_journal_lands_in_coordinator_ledger(tmp_path):
    specs = _grid()[:2]
    cache = ResultCache(root=str(tmp_path / "cache"))
    journal = RunLedger(root=str(tmp_path / "journal"))
    report = run_distributed(
        specs, str(tmp_path / "queue"), cache=cache, workers=1,
        lease_s=30, poll_s=0.05, wait_timeout_s=300, name="t",
        ledger=journal,
    )
    assert report.run_id is not None
    record = journal.find(report.run_id)
    dist = record["distributed"]
    assert dist["queue"] == str(tmp_path / "queue")
    assert len(dist["workers"]) == 1
    assert dist["reclaims"] == 0


# -- live telemetry ----------------------------------------------------------


def test_dist_monitor_renders_worker_heartbeats():
    monitor = DistMonitor(total_points=4)
    monitor.record(("done", 0, 1000, 0.5, "hostx-12-ab"))
    monitor.update_workers({
        "hostx-12-ab": {"state": "running", "events_per_sec": 1234.0},
        "hostx-99-cd": {"state": "exited", "events_per_sec": 0.0},
    })
    line = monitor.render_line()
    assert "1/4" in line
    assert "1 live" in line and "12@1,234ev/s" in line
    assert "99" not in line  # exited workers leave the live tail


def test_distributed_monitor_sees_every_point(tmp_path):
    specs = _grid()[:2]
    cache = ResultCache(root=str(tmp_path / "cache"))
    monitor = DistMonitor(total_points=len(specs))
    run_distributed(
        specs, str(tmp_path / "queue"), cache=cache, workers=1,
        lease_s=30, poll_s=0.05, wait_timeout_s=300, name="t",
        monitor=monitor,
    )
    assert monitor.processed == len(specs)
    assert monitor.sim_events > 0


# -- CLI surface -------------------------------------------------------------


@pytest.fixture
def dist_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "on")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_LEDGER", "on")
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
    return tmp_path


def test_cli_sweep_distributed_no_cache_is_an_error(tmp_path, capsys):
    import io

    code = cli_main([
        "sweep", "--scenario",
        os.path.join("benchmarks", "scenarios", "smoke_2point.json"),
        "--distributed", "--no-cache", "--queue", str(tmp_path / "q"),
    ], out=io.StringIO())
    assert code == 2
    assert "incompatible" in capsys.readouterr().err


def test_cli_sweep_distributed_end_to_end(dist_env, capsys):
    import io

    scenario = os.path.join("benchmarks", "scenarios", "smoke_2point.json")
    out = io.StringIO()
    code = cli_main([
        "sweep", "--scenario", scenario, "--distributed",
        "--workers", "1", "--queue", str(dist_env / "q"),
        "--wait-timeout", "300", "--json",
    ], out=out)
    assert code == 0
    rows = json.loads(out.getvalue())
    assert len(rows) == 2
    # Identical to the plain (non-distributed) sweep, served from cache.
    out2 = io.StringIO()
    code = cli_main(["sweep", "--scenario", scenario, "--json"], out=out2)
    assert code == 0
    assert json.loads(out2.getvalue()) == rows
    # Merge the per-worker shards and confirm the ledger is queryable.
    out3 = io.StringIO()
    code = cli_main(["runs", "merge", str(dist_env / "q")], out=out3)
    assert code == 0
    assert "merged" in out3.getvalue()


def test_cli_worker_reports_errors_cleanly(tmp_path, capsys):
    import io

    code = cli_main([
        "worker", "--pull", str(tmp_path / "nope"),
        "--idle-timeout", "0.2", "--poll", "0.05",
    ], out=io.StringIO())
    assert code == 2
    assert "no sweep manifest" in capsys.readouterr().err
