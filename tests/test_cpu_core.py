"""Unit tests for the CPU core work-queue model."""

import pytest

from repro.cpu import CpuCore, WorkItem
from repro.units import cycles_to_ns


def test_work_takes_cycles_over_frequency_time(loop):
    core = CpuCore(loop, freq_hz=1e9)
    done = []
    core.submit_work(1000, lambda: done.append(loop.now))
    loop.run()
    assert done == [1000]  # 1000 cycles at 1 GHz = 1000 ns


def test_low_frequency_takes_longer(loop):
    core = CpuCore(loop, freq_hz=1e6)
    done = []
    core.submit_work(1000, lambda: done.append(loop.now))
    loop.run()
    assert done == [1_000_000]


def test_fifo_order_within_class(loop):
    core = CpuCore(loop, freq_hz=1e9)
    done = []
    core.submit_work(100, lambda: done.append("a"))
    core.submit_work(100, lambda: done.append("b"))
    core.submit_work(100, lambda: done.append("c"))
    loop.run()
    assert done == ["a", "b", "c"]


def test_high_priority_jumps_queue(loop):
    core = CpuCore(loop, freq_hz=1e9)
    done = []
    core.submit_work(100, lambda: done.append("bulk1"))
    core.submit_work(100, lambda: done.append("bulk2"))
    core.submit_work(100, lambda: done.append("irq"), priority=WorkItem.HIGH)
    loop.run()
    # bulk1 was already executing; irq preempts the *queue*, not the
    # running item.
    assert done == ["bulk1", "irq", "bulk2"]


def test_continuation_goes_to_head_of_class(loop):
    core = CpuCore(loop, freq_hz=1e9)
    done = []
    core.submit_work(100, lambda: done.append("a"))
    core.submit_work(100, lambda: done.append("b"))
    core.submit(WorkItem(100, lambda: done.append("cont")), continuation=True)
    loop.run()
    assert done == ["a", "cont", "b"]


def test_queue_serializes_work(loop):
    core = CpuCore(loop, freq_hz=1e9)
    times = []
    for _ in range(3):
        core.submit_work(1000, lambda: times.append(loop.now))
    loop.run()
    assert times == [1000, 2000, 3000]


def test_busy_accounting(loop):
    core = CpuCore(loop, freq_hz=1e9)
    core.submit_work(5000, lambda: None)
    loop.run()
    assert core.busy_ns_total == 5000
    assert core.items_executed == 1
    assert core.cycles_executed == 5000


def test_busy_up_to_now_includes_running_item(loop):
    core = CpuCore(loop, freq_hz=1e9)
    core.submit_work(10_000, lambda: None)
    loop.call_at(4_000, lambda: loop.stop())
    loop.run()
    assert core.busy_ns_up_to_now() == 4_000


def test_frequency_change_applies_to_next_item(loop):
    core = CpuCore(loop, freq_hz=1e9)
    done = []
    core.submit_work(1000, lambda: done.append(loop.now))
    core.submit_work(1000, lambda: done.append(loop.now))
    loop.call_at(500, lambda: core.set_frequency(2e9))
    loop.run()
    # First item ran at 1 GHz (1000 ns); second started after and ran at
    # 2 GHz (500 ns).
    assert done == [1000, 1500]


def test_callback_submissions_are_fifo(loop):
    core = CpuCore(loop, freq_hz=1e9)
    done = []

    def first():
        done.append("first")
        core.submit_work(100, lambda: done.append("child"))

    core.submit_work(100, first)
    core.submit_work(100, lambda: done.append("second"))
    loop.run()
    assert done == ["first", "second", "child"]


def test_zero_cycle_work_completes_immediately(loop):
    core = CpuCore(loop, freq_hz=1e9)
    done = []
    core.submit_work(0, lambda: done.append(loop.now))
    loop.run()
    assert done == [0]


def test_negative_cycles_rejected():
    with pytest.raises(ValueError):
        WorkItem(-1, lambda: None)


def test_invalid_priority_rejected():
    with pytest.raises(ValueError):
        WorkItem(10, lambda: None, priority=2)


def test_invalid_frequency_rejected(loop):
    with pytest.raises(ValueError):
        CpuCore(loop, freq_hz=0)
    core = CpuCore(loop, freq_hz=1e9)
    with pytest.raises(ValueError):
        core.set_frequency(-5)


def test_max_queue_depth_tracked(loop):
    core = CpuCore(loop, freq_hz=1e9)
    for _ in range(4):
        core.submit_work(100, lambda: None)
    assert core.max_queue_depth == 3  # one is executing
    loop.run()
    assert core.queue_depth == 0


def test_cycles_to_ns_helper():
    assert cycles_to_ns(1000, 1e9) == 1000
    assert cycles_to_ns(576, 576e6) == 1000
    with pytest.raises(ValueError):
        cycles_to_ns(100, 0)
