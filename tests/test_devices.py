"""Unit tests for device profiles and Table 1 configurations."""

import pytest

from repro.cpu import DEFAULT_COSTS
from repro.devices import PIXEL_4, PIXEL_6, CpuConfig, build_device
from repro.units import ghz, mhz
from repro.sim import EventLoop


def test_pixel4_table1_pin_points():
    assert PIXEL_4.low_end_hz == mhz(576)
    assert PIXEL_4.mid_end_hz == mhz(1200)
    assert PIXEL_4.high_end_hz == ghz(2.8)


def test_pixel6_table1_pin_points():
    assert PIXEL_6.low_end_hz == mhz(300)
    assert PIXEL_6.mid_end_hz == mhz(1197)
    assert PIXEL_6.high_end_hz == ghz(2.8)


def test_pixel6_is_more_efficient_per_cycle():
    assert PIXEL_6.cycles_scale < PIXEL_4.cycles_scale


def test_low_end_build(loop):
    dev = build_device(loop, PIXEL_4, CpuConfig.LOW_END)
    dev.start()
    assert not dev.cpu.big.enabled
    assert dev.cpu.active_core in dev.cpu.little.cores
    assert dev.cpu.active_core.freq_hz == mhz(576)
    dev.stop()


def test_mid_end_build(loop):
    dev = build_device(loop, PIXEL_4, CpuConfig.MID_END)
    dev.start()
    assert not dev.cpu.big.enabled
    assert dev.cpu.active_core.freq_hz == mhz(1200)
    dev.stop()


def test_high_end_build(loop):
    dev = build_device(loop, PIXEL_4, CpuConfig.HIGH_END)
    dev.start()
    assert not dev.cpu.little.enabled
    assert dev.cpu.active_core in dev.cpu.big.cores
    assert dev.cpu.active_core.freq_hz == ghz(2.8)
    dev.stop()


def test_default_build_has_dynamic_policy(loop):
    dev = build_device(loop, PIXEL_4, CpuConfig.DEFAULT)
    dev.start()
    assert dev.policy is not None
    assert dev.cpu.big.enabled and dev.cpu.little.enabled
    assert dev.policy.thermal is not None
    assert dev.policy.thermal.sustained_hz == PIXEL_4.sustained_big_hz
    dev.stop()


def test_cost_model_scaled_by_profile(loop):
    dev4 = build_device(loop, PIXEL_4, CpuConfig.LOW_END)
    dev6 = build_device(loop, PIXEL_6, CpuConfig.LOW_END)
    assert dev4.cost_model.skb_xmit_fixed == DEFAULT_COSTS.skb_xmit_fixed
    assert dev6.cost_model.skb_xmit_fixed < dev4.cost_model.skb_xmit_fixed


def test_unknown_config_rejected(loop):
    with pytest.raises(ValueError):
        build_device(loop, PIXEL_4, "turbo")


def test_cpu_busy_fraction(loop):
    dev = build_device(loop, PIXEL_4, CpuConfig.LOW_END)
    dev.start()
    core = dev.cpu.active_core
    core.submit_work(int(core.freq_hz * 0.05), lambda: None)  # 50 ms of work
    loop.run(until=100_000_000)
    assert 0.45 < dev.cpu_busy_fraction(100_000_000) < 0.55
    dev.stop()
