"""Behavioural tests for BBR v2 and the §5 master module."""

from repro.cc import Bbr, Bbr2, Cubic, MasterModule
from repro.cc.bbr2 import PROBE_CRUISE, PROBE_DOWN, PROBE_REFILL, PROBE_UP, STARTUP
from repro.netsim import NetemConfig
from repro.units import MSEC, mbps, seconds

from conftest import ProtocolHarness


def run_cc(cc, netem=None, duration=seconds(3), seed=1):
    harness = ProtocolHarness(netem=netem, seed=seed)
    sender = harness.stack.create_connection(cc)
    sender.start()
    harness.run(duration)
    return harness, sender


# ---------------------------------------------------------------------------
# BBR2
# ---------------------------------------------------------------------------


def test_bbr2_reaches_line_rate():
    harness, sender = run_cc(Bbr2())
    endpoint = harness.server.endpoints[sender.flow_id]
    assert endpoint.bytes_in_order * 8 / 3.0 > 0.8e9


def test_bbr2_cycles_probe_phases():
    harness = ProtocolHarness()
    sender = harness.stack.create_connection(Bbr2())
    bbr2 = sender.cc
    # Record every mode transition (polling misses the sub-ms phases).
    modes = set()
    original = bbr2._update_state_machine

    def spy(conn, rs):
        original(conn, rs)
        modes.add(bbr2.mode)

    bbr2._update_state_machine = spy
    sender.start()
    harness.run(seconds(8))
    assert PROBE_DOWN in modes
    assert PROBE_CRUISE in modes
    assert PROBE_REFILL in modes
    assert PROBE_UP in modes
    assert bbr2.cycle_count >= 2  # several full probe cycles completed


def test_bbr2_sets_inflight_hi_under_loss():
    harness, sender = run_cc(
        Bbr2(), netem=NetemConfig(rate_bps=mbps(100), buffer_segments=30), seed=3,
        duration=seconds(6),
    )
    bbr2 = sender.cc
    assert sender.retransmitted_segments > 0
    assert bbr2.inflight_hi is not None


def test_bbr2_reacts_to_persistent_loss_unlike_bbr():
    """BBR2's loss response should cut retransmissions vs BBR in a
    shallow buffer (the v2 design goal)."""
    retx = {}
    for name, factory in (("bbr", Bbr), ("bbr2", Bbr2)):
        harness, sender = run_cc(
            factory(),
            netem=NetemConfig(rate_bps=mbps(200), buffer_segments=20),
            duration=seconds(6),
            seed=11,
        )
        retx[name] = sender.retransmitted_segments
    assert retx["bbr2"] < retx["bbr"]


def test_bbr2_pacing_required():
    assert Bbr2().wants_pacing
    assert Bbr2().ack_cost_cycles > Cubic().ack_cost_cycles


# ---------------------------------------------------------------------------
# MasterModule (§5)
# ---------------------------------------------------------------------------


def test_master_fixed_cwnd_applied():
    harness, sender = run_cc(
        MasterModule(Bbr(), fixed_cwnd_segments=70), duration=seconds(1)
    )
    assert sender.cwnd == 70


def test_master_disable_model_freezes_bbr():
    master = MasterModule(Bbr(), disable_model=True, fixed_cwnd_segments=70)
    harness, sender = run_cc(master, duration=seconds(1))
    inner = master.inner
    assert inner.mode == "startup"      # never advanced
    assert inner.bw_filter.value == 0.0  # never updated
    assert sender.cwnd == 70
    assert master.ack_cost_cycles == 0   # model cost disappears


def test_master_fixed_pacing_rate():
    rate = mbps(50)
    master = MasterModule(Bbr(), fixed_pacing_rate_bps=rate)
    harness, sender = run_cc(master, duration=seconds(2))
    assert sender.pacer.rate_bps == rate
    endpoint = harness.server.endpoints[sender.flow_id]
    goodput = endpoint.bytes_in_order * 8 / 2.0
    assert goodput < rate * 1.2  # pacing caps throughput


def test_master_force_pacing_on_cubic():
    master = MasterModule(Cubic(), force_pacing=True)
    harness, sender = run_cc(master, duration=seconds(1))
    assert sender.pacing_active
    assert sender.pacer.periods > 0


def test_master_force_pacing_off_bbr():
    master = MasterModule(Bbr(), force_pacing=False)
    harness, sender = run_cc(master, duration=seconds(1))
    assert not sender.pacing_active


def test_master_delegates_when_unconfigured():
    master = MasterModule(Bbr())
    harness, sender = run_cc(master, duration=seconds(2))
    assert master.inner.full_bw_reached  # inner model ran normally
    assert master.wants_pacing
    assert master.name == "master(bbr)"
