"""Perf harness: track simulator speed and runner scaling across PRs.

Run it directly (``PYTHONPATH=src python benchmarks/perf_harness.py``) to
measure

* **single-run speed** — wall-clock and events/sec for three canonical
  grid points (1- and 20-connection BBR on the Low-End config, and a
  20-connection Cubic run on Default), best-of-``REPEATS`` to suppress
  scheduler noise;
* **parallel scaling** — the Figure 2 Low-End grid (BBR + Cubic over
  {1, 5, 10, 20} connections) at ``jobs=1`` versus ``jobs=N``;
* **timer-churn microbenchmark** — hundreds of concurrent re-arming
  timers, measured with the timer wheel on and off (the wheel's O(1)
  cancel is exactly what this workload stresses);
* **allocation microbenchmark** — ``tracemalloc`` peak plus packet-pool
  reuse statistics for one canonical run (the zero-allocation hot path's
  scoreboard);
* **result-cache microbenchmark** — the Figure 5 scenario grid run cold
  (empty cache) and warm (every point a hit) against a throwaway cache
  directory: wall time, hit rate, and the cold/warm speedup;
* **chunked-dispatch microbenchmark** — a grid of many very short
  simulations dispatched one point per pool task versus batched, which
  isolates the per-task IPC round trip the chunking amortizes;
* **distributed-dispatch microbenchmark** — the shared-queue protocol's
  per-chunk cost (publish + atomic-rename claim + completion record)
  plus a 2-worker distributed run of a short grid against the same grid
  run serially, with a metrics-identity check (:mod:`repro.dist`);
* **flow-churn microbenchmark** — Poisson connection arrivals racing a
  greedy flow, which stresses flow setup/teardown and the per-flow
  accounting rather than the steady-state fast path.

All timing measurements pin ``cache=False`` so the result cache can
never serve a point the harness meant to time.

Results are written to ``benchmarks/results/BENCH_runner.json``. The
``baseline`` block is *preserved* across reruns — it records the seed
repo's numbers on the machine that first established it — so the
``current`` block always has something fixed to be compared against.
Future perf PRs should rerun this harness and keep ``current`` moving.

Every invocation also appends one compact trajectory entry (per-point
events/sec, kernel, quick flag, CPU count, git head) to
``benchmarks/results/BENCH_history.jsonl`` (``--no-history`` skips it;
``repro perf trend`` renders the file). ``--check-regression`` gates
against the **median of comparable history entries** — same kernel,
quick mode, and CPU count — so a sustained slide trips it even when each
step stays inside the budget; with no comparable history it falls back
to the frozen baseline, exactly the old behavior.

``--quick`` shortens simulated durations for CI smoke use; quick numbers
are noisier and are not written unless ``--write`` is also given.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
import tracemalloc
from typing import Dict, List

from repro import (
    KERNELS,
    ExperimentSpec,
    FlowSpec,
    NetemConfig,
    ResultCache,
    kernel_info,
    load_scenario,
    resolve_kernel,
    run_experiment,
    run_grid_report,
)
from repro.kernel import KERNEL_ENV_VAR
from repro.netsim.packet import PACKET_POOL
from repro.obs import perf_trend
from repro.sim import EventLoop, Timer

SCENARIO_DIR = os.path.join(os.path.dirname(__file__), "scenarios")

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BENCH_PATH = os.path.join(RESULTS_DIR, "BENCH_runner.json")
HISTORY_PATH = os.path.join(RESULTS_DIR, perf_trend.HISTORY_FILENAME)

#: best-of repetitions per single-run point
REPEATS = 5

#: Seed-repo single-run numbers (pre parallel-runner/event-loop PR),
#: measured on the container that established the baseline. Used to seed
#: the ``baseline`` block when BENCH_runner.json does not exist yet.
SEED_BASELINE: Dict[str, Dict[str, float]] = {
    "bbr_1c_low-end": {"wall_s": 0.197, "events": 27451, "events_per_sec": 139319.5},
    "bbr_20c_low-end": {"wall_s": 1.1971, "events": 164376, "events_per_sec": 137317.4},
    "cubic_20c_default": {"wall_s": 2.7164, "events": 293844, "events_per_sec": 108175.4},
}


def canonical_points(duration_s: float = 2.0, warmup_s: float = 0.5) -> Dict[str, ExperimentSpec]:
    """The three single-run measurement points (stable across PRs)."""
    return {
        "bbr_1c_low-end": ExperimentSpec(
            cc="bbr", connections=1, cpu_config="low-end",
            duration_s=duration_s, warmup_s=warmup_s),
        "bbr_20c_low-end": ExperimentSpec(
            cc="bbr", connections=20, cpu_config="low-end",
            duration_s=duration_s, warmup_s=warmup_s),
        "cubic_20c_default": ExperimentSpec(
            cc="cubic", connections=20, cpu_config="default",
            duration_s=duration_s, warmup_s=warmup_s),
    }


def fig2_lowend_grid(duration_s: float = 2.0, warmup_s: float = 0.5) -> List[ExperimentSpec]:
    """The Figure 2 Low-End slice: BBR + Cubic x {1, 5, 10, 20} connections."""
    return [
        ExperimentSpec(cc=cc, connections=n, cpu_config="low-end",
                       duration_s=duration_s, warmup_s=warmup_s)
        for cc in ("bbr", "cubic")
        for n in (1, 5, 10, 20)
    ]


def measure_single_runs(duration_s: float, warmup_s: float) -> Dict[str, Dict[str, float]]:
    """Best-of-REPEATS wall/events/sec for each canonical point."""
    out: Dict[str, Dict[str, float]] = {}
    for name, spec in canonical_points(duration_s, warmup_s).items():
        best_wall = float("inf")
        events = 0
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            result = run_experiment(spec)
            wall = time.perf_counter() - t0
            if wall < best_wall:
                best_wall = wall
                events = result.events_processed
        out[name] = {
            "wall_s": round(best_wall, 4),
            "events": events,
            "events_per_sec": round(events / best_wall, 1),
        }
        print(f"  {name}: {best_wall:.3f}s  {events / best_wall:,.0f} ev/s")
    return out


def measure_parallel_scaling(duration_s: float, warmup_s: float) -> Dict[str, object]:
    """Fig. 2 Low-End grid wall-clock at jobs=1 vs jobs=N.

    On a single-core box this section is skipped entirely: a jobs=N
    measurement there reports pure process-pool overhead (speedup < 1x),
    which reads like a regression when it is really a statement about
    the hardware. The skip is recorded so the JSON says *why* the
    numbers are absent. ``--check-regression`` never gates on this
    section either way — only the single-run points are budgeted.
    """
    if (os.cpu_count() or 1) < 2:
        print("  skipped: single core")
        return {"skipped_reason": "single core"}
    grid = fig2_lowend_grid(duration_s, warmup_s)
    jobs_n = min(os.cpu_count(), 4)
    serial = run_grid_report(grid, jobs=1, cache=False)
    print(f"  jobs=1: {serial.summary_line()}")
    parallel = run_grid_report(grid, jobs=jobs_n, cache=False)
    print(f"  jobs={jobs_n}: {parallel.summary_line()}")
    speedup = serial.wall_s / parallel.wall_s if parallel.wall_s > 0 else 0.0
    return {
        "grid": "fig2_low-end (bbr+cubic x 1/5/10/20 connections)",
        "points": serial.points,
        "jobs1_wall_s": round(serial.wall_s, 3),
        "jobsN": parallel.jobs,
        "jobsN_wall_s": round(parallel.wall_s, 3),
        "speedup": round(speedup, 2),
        "events_per_sec_jobs1": round(serial.events_per_sec, 1),
        "events_per_sec_jobsN": round(parallel.events_per_sec, 1),
    }


def _timer_churn_rate(wheel: bool, n_timers: int, rounds: int) -> Dict[str, float]:
    """Re-arm *n_timers* RTO-style timers *rounds* times each.

    Models the dominant hrtimer pattern in the stack: every ACK re-arms
    the connection's RTO ~200 ms out, so the previously armed expiry is
    cancelled long before it fires. The driver events ride the heap
    (sub-cutoff delays) in both configurations; only the RTO arms are
    routed differently, isolating the cancel cost under test. On the
    heap, each cancelled expiry lingers as lazy-deletion debt until
    compaction; the wheel deletes it from its bucket immediately.
    """
    loop = EventLoop(wheel=wheel)
    timers = [Timer(loop, lambda: None) for _ in range(n_timers)]
    rearms = 0

    def drive(idx: int, remaining: int) -> None:
        nonlocal rearms
        timers[idx].start(200_000_000 + idx)  # RTO-scale: wheel-routed
        rearms += 1
        if remaining > 1:
            loop.call_after(300_000 + (idx % 11) * 1_000, drive, idx, remaining - 1)

    for i in range(n_timers):
        loop.call_after(i, drive, i, rounds)
    t0 = time.perf_counter()
    loop.run()
    wall = time.perf_counter() - t0
    return {
        "fires": sum(t.fire_count for t in timers),
        "compactions": loop.compactions,
        "rearms_per_sec": round(rearms / wall, 1) if wall > 0 else 0.0,
        "wall_s": round(wall, 4),
    }


def measure_timer_churn(quick: bool) -> Dict[str, object]:
    """Wheel-on vs wheel-off rates for the timer re-arm workload."""
    n_timers, rounds = (200, 100) if quick else (500, 600)
    wheel = _timer_churn_rate(True, n_timers, rounds)
    heap = _timer_churn_rate(False, n_timers, rounds)
    ratio = (wheel["rearms_per_sec"] / heap["rearms_per_sec"]
             if heap["rearms_per_sec"] else 0.0)
    print(f"  wheel: {wheel['rearms_per_sec']:,.0f} re-arms/s   "
          f"heap: {heap['rearms_per_sec']:,.0f} re-arms/s   "
          f"(x{ratio:.2f})")
    return {
        "timers": n_timers,
        "rounds": rounds,
        "wheel": wheel,
        "heap": heap,
        "wheel_vs_heap": round(ratio, 3),
    }


def measure_result_cache(quick: bool) -> Dict[str, object]:
    """Cold vs warm wall time for a scenario grid through the result cache.

    Uses a throwaway cache directory so the numbers are honest cold/warm
    measurements regardless of the developer's real cache state. The
    full harness runs the Figure 5 grid (the ISSUE's acceptance target:
    a warm re-run recomputes 0 points and is >= 50x faster); ``--quick``
    uses the 2-point CI smoke grid.
    """
    name = "smoke_2point" if quick else "fig5_pacing_connections"
    specs = load_scenario(os.path.join(SCENARIO_DIR, f"{name}.json"))
    with tempfile.TemporaryDirectory(prefix="repro-cache-bench-") as tmp:
        cache = ResultCache(root=tmp)
        cold = run_grid_report(specs, cache=cache)
        warm = run_grid_report(specs, cache=cache)
    speedup = cold.wall_s / warm.wall_s if warm.wall_s > 0 else float("inf")
    hit_rate = warm.cache_hits / warm.points if warm.points else 0.0
    print(f"  {name}: cold {cold.wall_s:.3f}s -> warm {warm.wall_s:.4f}s "
          f"(x{speedup:,.0f}, {hit_rate:.0%} hits, "
          f"{warm.total_events} events recomputed)")
    return {
        "grid": name,
        "points": cold.points,
        "cold_wall_s": round(cold.wall_s, 4),
        "cold_misses": cold.cache_misses,
        "warm_wall_s": round(warm.wall_s, 4),
        "warm_hits": warm.cache_hits,
        "warm_recomputed_events": warm.total_events,
        "hit_rate": round(hit_rate, 4),
        "speedup": round(speedup, 1),
    }


def measure_chunked_dispatch(quick: bool) -> Dict[str, object]:
    """Chunk=1 vs batched dispatch on a grid of many short simulations.

    The grid is the smoke-2point pair fanned across seeds: each point is
    a few tens of milliseconds of simulation, so the per-task IPC round
    trip (pickle, queue, result pickle) is a visible fraction of the
    cold run — exactly the overhead chunking is meant to amortize.
    """
    seeds = range(1, 9) if quick else range(1, 17)
    specs = [
        ExperimentSpec(cc=cc, connections=2, duration_s=0.8, warmup_s=0.2,
                       seed=seed)
        for seed in seeds
        for cc in ("bbr", "cubic")
    ]
    jobs = max(2, min(os.cpu_count() or 1, 4))
    chunk = max(2, len(specs) // (jobs * 2))
    unchunked = run_grid_report(specs, jobs=jobs, chunk=1, cache=False)
    print(f"  chunk=1: {unchunked.summary_line()}")
    chunked = run_grid_report(specs, jobs=jobs, chunk=chunk, cache=False)
    print(f"  chunk={chunk}: {chunked.summary_line()}")
    improvement = (unchunked.wall_s / chunked.wall_s - 1
                   if chunked.wall_s > 0 else 0.0)
    print(f"  chunked dispatch: {improvement:+.1%} wall-clock vs per-point")
    return {
        "grid": "smoke pair x seeds",
        "points": len(specs),
        "jobs": jobs,
        "chunk": chunk,
        "unchunked_wall_s": round(unchunked.wall_s, 4),
        "chunked_wall_s": round(chunked.wall_s, 4),
        "improvement": round(improvement, 4),
    }


def measure_dist_dispatch(quick: bool) -> Dict[str, object]:
    """Distributed-sweep overhead: queue ops per chunk and 2-worker wall.

    Two numbers matter for the coordinator/worker layer. First, the raw
    cost of the queue protocol itself — publish, claim (atomic rename +
    lease stamp), complete — measured over an empty-payload churn loop:
    this is pure filesystem overhead every chunk pays on top of its
    simulations. Second, a 2-worker distributed run of a short grid
    against a serial run of the same grid: wall-clock ratio plus a
    metrics-identity check, since the distributed path is only a win if
    it is *exactly* the same computation. On a single-core box the
    worker comparison reports the honest (likely <1x) ratio; the queue
    overhead numbers are hardware-independent either way.
    """
    from repro.dist import TaskQueue, run_distributed

    ops = 100 if quick else 400
    with tempfile.TemporaryDirectory(prefix="repro-dist-bench-") as tmp:
        queue = TaskQueue(os.path.join(tmp, "queue"))
        queue.prepare({"grid_digest": "bench"})
        t0 = time.perf_counter()
        for c in range(ops):
            queue.publish(c, [{"index": c, "spec": {}}])
            task = queue.claim("bench-worker", lease_s=60)
            queue.complete(task, {"chunk": task.chunk, "points": []})
        queue_wall = time.perf_counter() - t0
    per_chunk_ms = queue_wall / ops * 1e3
    print(f"  queue protocol: {ops} publish+claim+complete cycles in "
          f"{queue_wall:.3f}s ({per_chunk_ms:.2f} ms/chunk)")

    seeds = range(1, 3) if quick else range(1, 5)
    specs = [
        ExperimentSpec(cc=cc, connections=2, duration_s=0.8, warmup_s=0.2,
                       seed=seed)
        for seed in seeds
        for cc in ("bbr", "cubic")
    ]
    serial = run_grid_report(specs, jobs=1, cache=False)
    print(f"  serial: {serial.summary_line()}")
    with tempfile.TemporaryDirectory(prefix="repro-dist-bench-") as tmp:
        cache = ResultCache(root=os.path.join(tmp, "cache"))
        dist = run_distributed(
            specs, os.path.join(tmp, "queue"), cache=cache, workers=2,
            lease_s=60, poll_s=0.05, wait_timeout_s=600, name="bench",
            ledger=False,
        )
    print(f"  2 workers: {dist.summary_line()}")
    metrics_identical = all(
        d.scalar_metrics() == s.scalar_metrics()
        for d, s in zip(dist.results, serial.results)
    )
    speedup = serial.wall_s / dist.wall_s if dist.wall_s > 0 else 0.0
    print(f"  distributed vs serial: x{speedup:.2f} wall-clock, metrics "
          f"{'identical' if metrics_identical else 'DIVERGED'}")
    return {
        "queue_ops": ops,
        "queue_wall_s": round(queue_wall, 4),
        "queue_overhead_ms_per_chunk": round(per_chunk_ms, 3),
        "grid_points": len(specs),
        "serial_wall_s": round(serial.wall_s, 4),
        "workers2_wall_s": round(dist.wall_s, 4),
        "workers2_chunk": dist.chunk,
        "speedup": round(speedup, 2),
        "metrics_identical": metrics_identical,
    }


def measure_flow_churn(quick: bool) -> Dict[str, object]:
    """Flow-churn microbenchmark: Poisson connection arrivals against a
    greedy flow on a shared bottleneck.

    Unlike the steady-state canonical points, this run spends its time
    on flow setup/teardown — connection creation, per-flow accounting,
    completion hooks, and the flow routing table — so regressions in the
    multi-flow plumbing show up here even when the fast path is fine.
    """
    duration_s, rate_hz = (1.2, 20.0) if quick else (3.0, 30.0)
    spec = ExperimentSpec(
        duration_s=duration_s, warmup_s=0.2,
        netem=NetemConfig(rate_bps=2e8),
        flows=(FlowSpec(cc="bbr"),
               FlowSpec(cc="cubic", count=0, arrival_rate_hz=rate_hz,
                        mean_transfer_bytes=200_000, start_s=0.1)),
    )
    best_wall = float("inf")
    result = None
    for _ in range(3):
        t0 = time.perf_counter()
        candidate = run_experiment(spec)
        wall = time.perf_counter() - t0
        if wall < best_wall:
            best_wall, result = wall, candidate
    events_per_sec = result.events_processed / best_wall if best_wall else 0.0
    print(f"  churn {rate_hz:g}/s: {result.flow_count} flows "
          f"({result.flows_completed} completed), {best_wall:.3f}s  "
          f"{events_per_sec:,.0f} ev/s")
    return {
        "arrival_rate_hz": rate_hz,
        "duration_s": duration_s,
        "flows": result.flow_count,
        "flows_completed": result.flows_completed,
        "fct_mean_ms": round(result.fct_mean_ms, 3),
        "wall_s": round(best_wall, 4),
        "events": result.events_processed,
        "events_per_sec": round(events_per_sec, 1),
    }


def _ack_processing_rate(loop, rounds: int) -> Dict[str, object]:
    """Drive a synthetic SACK-heavy ACK stream through one scoreboard.

    Each round sends a 10-record flight (4 segments each) and applies
    three ACKs: two with out-of-order SACK blocks (partial coverage,
    holes that trip FACK loss marking), retransmits whatever was marked
    lost, then a cumulative catch-up ACK. *loop* selects the kernel: a
    compiled EventLoop routes the scoreboard/estimator to C, None keeps
    them pure.
    """
    from repro.tcp.rate_sample import DeliveryRateEstimator
    from repro.tcp.scoreboard import Scoreboard

    mss = 1448
    sb = Scoreboard(mss, loop=loop)
    delivery = DeliveryRateEstimator(loop=loop)
    now = 0
    seq = 0
    acks = 0
    t0 = time.perf_counter()
    for i in range(rounds):
        for j in range(10):
            now += 20_000
            record = delivery.send_record(
                now, seq, seq + 4 * mss, 4, sb.has_inflight, j == 9
            )
            sb.on_transmit(record)
            seq += 4 * mss
        base = seq - 40 * mss
        now += 300_000
        sb.process_ack(
            delivery, base + 4 * mss,
            [(base + 12 * mss, base + 16 * mss),
             (base + 20 * mss, base + 26 * mss)],
            now, sb.inflight_segments, False,
        )
        now += 100_000
        sb.process_ack(
            delivery, base + 8 * mss,
            [(base + 28 * mss, base + 40 * mss)],
            now, sb.inflight_segments, False,
        )
        record = sb.next_lost_record()
        while record is not None:
            sb.on_retransmit(record)
            record = sb.next_lost_record()
        now += 200_000
        sb.process_ack(delivery, seq, [], now, sb.inflight_segments,
                       i % 7 == 0)
        acks += 3
        sb.clear_loss_marks()
    wall = time.perf_counter() - t0
    return {
        "acks": acks,
        "acks_per_sec": round(acks / wall, 1) if wall > 0 else 0.0,
        "wall_s": round(wall, 4),
        # cross-kernel integrity fingerprint (must match pure vs C)
        "delivered_bytes": delivery.delivered_bytes,
        "snd_una": sb.snd_una,
        "retransmitted_segments": sb.total_retransmitted_segments,
    }


def measure_ack_processing(quick: bool) -> Dict[str, object]:
    """Pure vs compiled rates for the per-ACK scoreboard/estimator path."""
    rounds = 2_000 if quick else 10_000
    pure = _ack_processing_rate(None, rounds)
    out: Dict[str, object] = {"rounds": rounds, "pure": pure}
    compiled_kernel = KERNELS.get("compiled")
    if compiled_kernel.available:
        compiled = _ack_processing_rate(compiled_kernel.make_loop(), rounds)
        speedup = (compiled["acks_per_sec"] / pure["acks_per_sec"]
                   if pure["acks_per_sec"] else 0.0)
        state_match = all(
            compiled[key] == pure[key]
            for key in ("delivered_bytes", "snd_una",
                        "retransmitted_segments")
        )
        out["compiled"] = compiled
        out["compiled_vs_pure"] = round(speedup, 3)
        out["state_match"] = state_match
        print(f"  pure: {pure['acks_per_sec']:,.0f} acks/s   "
              f"compiled: {compiled['acks_per_sec']:,.0f} acks/s   "
              f"(x{speedup:.2f}, state {'ok' if state_match else 'DIVERGED'})")
    else:
        print(f"  pure: {pure['acks_per_sec']:,.0f} acks/s   "
              f"(compiled kernel not built)")
    return out


def measure_allocations(duration_s: float, warmup_s: float) -> Dict[str, object]:
    """tracemalloc peak + packet-pool reuse for one canonical run.

    The run is repeated under tracemalloc, so its wall time is *not*
    comparable to the single-run numbers; only the allocation profile is
    recorded. Pool counters are process-global — deltas isolate this run.
    """
    spec = canonical_points(duration_s, warmup_s)["bbr_20c_low-end"]
    acquired0, reused0 = PACKET_POOL.acquired, PACKET_POOL.reused
    tracemalloc.start()
    run_experiment(spec)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    acquired = PACKET_POOL.acquired - acquired0
    reused = PACKET_POOL.reused - reused0
    reuse_fraction = round(reused / acquired, 4) if acquired else 0.0
    print(f"  bbr_20c_low-end: peak {peak / 1024:,.0f} KiB, "
          f"{acquired:,} packets, {reuse_fraction:.1%} pooled")
    return {
        "point": "bbr_20c_low-end",
        "tracemalloc_peak_kib": round(peak / 1024, 1),
        "packets_acquired": acquired,
        "packets_reused": reused,
        "pool_reuse_fraction": reuse_fraction,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short simulations (CI smoke; noisier numbers)")
    parser.add_argument("--write", action="store_true", default=None,
                        help="write BENCH_runner.json (default unless --quick)")
    parser.add_argument("--check-regression", type=float, default=None,
                        metavar="PCT",
                        help="exit 1 if any point's events/sec falls more "
                             "than PCT%% below the reference (the median of "
                             "comparable history entries, or the committed "
                             "baseline when there are none)")
    parser.add_argument("--output", default=BENCH_PATH, metavar="PATH",
                        help="where to write the results JSON (CI points "
                             "this elsewhere to keep the committed "
                             "BENCH_runner.json pristine)")
    parser.add_argument("--history", default=HISTORY_PATH, metavar="PATH",
                        help="trajectory JSONL to append to and gate "
                             "against (render with 'repro perf trend')")
    parser.add_argument("--no-history", action="store_true",
                        help="do not append this run to the history file")
    args = parser.parse_args(argv)

    duration_s, warmup_s = (0.8, 0.2) if args.quick else (2.0, 0.5)
    write = args.write if args.write is not None else not args.quick

    active_kernel = resolve_kernel()
    print("single-run speed (best of %d, kernel=%s):"
          % (REPEATS, active_kernel.describe()))
    current = measure_single_runs(duration_s, warmup_s)

    # When the compiled kernel is built and the regular numbers above ran
    # pure, measure the compiled backend too: the baseline comparison
    # stays like-for-like while the JSON still records what the fast
    # kernel does on this hardware.
    current_compiled = None
    compiled_kernel = KERNELS.get("compiled")
    if active_kernel.name != "compiled" and compiled_kernel.available:
        print("single-run speed (kernel=%s):" % compiled_kernel.describe())
        prev = os.environ.get(KERNEL_ENV_VAR)
        os.environ[KERNEL_ENV_VAR] = "compiled"
        try:
            current_compiled = measure_single_runs(duration_s, warmup_s)
        finally:
            if prev is None:
                os.environ.pop(KERNEL_ENV_VAR, None)
            else:
                os.environ[KERNEL_ENV_VAR] = prev

    print("parallel scaling:")
    scaling = measure_parallel_scaling(duration_s, warmup_s)
    print("timer churn (microbenchmark):")
    churn = measure_timer_churn(args.quick)
    print("allocations (microbenchmark):")
    allocations = measure_allocations(duration_s, warmup_s)
    print("result cache (microbenchmark):")
    cache_bench = measure_result_cache(args.quick)
    print("chunked dispatch (microbenchmark):")
    chunking = measure_chunked_dispatch(args.quick)
    print("distributed dispatch (microbenchmark):")
    dist_dispatch = measure_dist_dispatch(args.quick)
    print("flow churn (microbenchmark):")
    flow_churn = measure_flow_churn(args.quick)
    print("ack processing (microbenchmark):")
    ack_processing = measure_ack_processing(args.quick)

    existing: Dict[str, object] = {}
    if os.path.exists(BENCH_PATH):
        with open(BENCH_PATH) as f:
            existing = json.load(f)
    baseline = existing.get("baseline") or SEED_BASELINE

    payload = {
        "baseline": baseline,
        "current": current,
        "parallel": scaling,
        "microbench": {
            "timer_churn": churn,
            "allocation": allocations,
            "result_cache": cache_bench,
            "chunked_dispatch": chunking,
            "dist_dispatch": dist_dispatch,
            "flow_churn": flow_churn,
            "ack_processing": ack_processing,
        },
        "meta": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "quick": bool(args.quick),
            #: the backend the ``current`` block was measured with
            "kernel": kernel_info(active_kernel),
        },
    }
    if current_compiled is not None:
        payload["current_compiled"] = current_compiled
        payload["meta"]["kernel_compiled"] = kernel_info(compiled_kernel)
    if write:
        os.makedirs(os.path.dirname(os.path.abspath(args.output)), exist_ok=True)
        with open(args.output, "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        print(f"wrote {args.output}")

    # The gate reads history *before* this run is appended: the newest
    # entry under test is the run we just measured, never its own
    # reference.
    prior = perf_trend.comparable_entries(
        perf_trend.load_history(args.history),
        kernel=active_kernel.name, quick=args.quick,
    )

    if not args.no_history:
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        head = perf_trend.git_head(repo_root)
        micro_rates = {
            "timer_wheel_rearms_per_sec": churn["wheel"]["rearms_per_sec"],
            "flow_churn_events_per_sec": flow_churn["events_per_sec"],
        }
        appended = perf_trend.append_history(
            args.history,
            perf_trend.history_record(
                {name: c["events_per_sec"] for name, c in current.items()},
                kernel=active_kernel.name, quick=args.quick,
                microbench=micro_rates, head=head,
            ),
        )
        if current_compiled is not None:
            perf_trend.append_history(
                args.history,
                perf_trend.history_record(
                    {name: c["events_per_sec"]
                     for name, c in current_compiled.items()},
                    kernel="compiled", quick=args.quick, head=head,
                ),
            )
        if appended:
            print(f"appended history entry to {args.history}")

    for name, cur in current.items():
        base = baseline.get(name)
        if base:
            gain = cur["events_per_sec"] / base["events_per_sec"] - 1
            print(f"  {name}: events/sec {gain:+.1%} vs baseline")
    if args.check_regression is None:
        return 0
    if prior:
        gate = perf_trend.median_baseline(prior)
        source = f"median of {len(prior)} comparable history entries"
    else:
        gate = {name: base["events_per_sec"]
                for name, base in baseline.items()}
        source = "frozen baseline (no comparable history)"
    print(f"  regression gate: {source}")
    regressed = perf_trend.check_trend(
        {name: cur["events_per_sec"] for name, cur in current.items()},
        gate, args.check_regression,
    )
    if regressed:
        for name, gain in regressed:
            print(f"REGRESSION: {name} events/sec {gain:+.1%} exceeds "
                  f"the -{args.check_regression:g}% budget vs the {source}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
