"""§7.1.1: pacing strides do not inflate memory usage.

Paper: RAM on the phone is unaffected by pacing strides (Low-End, 20
connections). Our proxy for the stack's memory footprint is the peak of
(qdisc backlog + unacked in-flight bytes); it must stay in the same
region across strides — data waits slightly longer per period but the
windows bounding it do not grow.
"""

from repro import CpuConfig
from repro.metrics import render_table

from common import base_spec, measure, publish, run_once

STRIDES = (1.0, 5.0, 10.0, 50.0)


def _run():
    out = {}
    for stride in STRIDES:
        out[stride] = measure(base_spec(
            cc="bbr", cpu_config=CpuConfig.LOW_END, connections=20,
            pacing_stride=stride,
        ))
    return out


def test_sec71_memory(benchmark):
    out = run_once(benchmark, _run)
    publish(
        "sec71_memory",
        render_table(
            ["stride", "peak memory (KiB)", "mean memory (KiB)", "goodput (Mbps)"],
            [[f"{s:g}x",
              round(out[s].mean("peak_memory_bytes") / 1024, 1),
              round(out[s].mean("mean_memory_bytes") / 1024, 1),
              round(out[s].goodput_mbps, 1)] for s in STRIDES],
            title="Sec 7.1.1: memory footprint across pacing strides",
        ),
    )
    peaks = [out[s].mean("peak_memory_bytes") for s in STRIDES]
    # The paper's claim is about the phone's RAM: strides leave it
    # unaffected. Our stack-footprint proxy (qdisc backlog + unacked
    # inflight) necessarily scales with the achieved bandwidth-delay
    # product — what must hold is that even the largest peak remains
    # negligible against device memory (Pixel 4: 6 GB). Use 0.1% of a
    # conservative 4 GB as "unaffected".
    assert max(peaks) < 0.001 * 4 * 1024 ** 3
    # And it does not grow with the stride once throughput is factored
    # out: bytes of footprint per Mbps of goodput stays in one band.
    per_mbps = [
        out[s].mean("peak_memory_bytes") / max(1.0, out[s].goodput_mbps)
        for s in STRIDES
    ]
    assert max(per_mbps) < 12 * max(1.0, min(per_mbps))
