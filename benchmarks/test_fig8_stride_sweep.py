"""Figure 8: goodput across pacing strides (the paper's contribution).

Paper shape: increasing the pacing stride substantially improves BBR's
goodput on every CPU-constrained configuration (Low-End from <140 to
~240 Mbps; Default from ~400 to >700 Mbps); the optimum is an interior
stride (5-10x region), and over-large strides saturate the socket buffer
and collapse throughput.
"""

from repro import CpuConfig, PAPER_STRIDES, sweep_strides
from repro.metrics import render_series

from common import RUNS, base_spec, publish, run_once


def _sweep(config: str):
    spec = base_spec(cc="bbr", cpu_config=config, connections=20)
    return sweep_strides(spec, strides=PAPER_STRIDES, runs=RUNS)


def test_fig8_stride_sweep(benchmark):
    def run():
        return {
            config: _sweep(config)
            for config in (CpuConfig.LOW_END, CpuConfig.MID_END, CpuConfig.DEFAULT)
        }

    sweeps = run_once(benchmark, run)
    strides = list(PAPER_STRIDES)
    series = [
        (config, [round(sweeps[config][s].goodput_mbps, 1) for s in strides])
        for config in sweeps
    ]
    publish(
        "fig8_stride_sweep",
        render_series("stride", [f"{s:g}x" for s in strides], series,
                      title="Figure 8: BBR goodput by pacing stride (20 conns)"),
    )
    for config, sweep in sweeps.items():
        goodputs = {s: sweep[s].goodput_mbps for s in strides}
        best = max(goodputs, key=goodputs.get)
        # A moderate stride beats stock pacing substantially...
        assert goodputs[best] > 1.3 * goodputs[1.0], config
        # ...the optimum is interior (not stock, not the largest)...
        assert best not in (1.0, 50.0), config
        # ...and the largest stride collapses below the best.
        assert goodputs[50.0] < 0.8 * goodputs[best], config
