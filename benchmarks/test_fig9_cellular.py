"""Figure 9 / Appendix A.1: LTE cellular uplink — no BBR/Cubic gap.

Paper: over T-Mobile LTE the uplink is bandwidth-limited (<20 Mbps), far
below the pacing bottleneck, so BBR and Cubic perform the same under
every setting — the CPU effect only appears when the network can carry
hundreds of Mbps.
"""

from repro import CpuConfig, LTE_CELLULAR
from repro.metrics import render_series

from common import base_spec, goodput_series, publish, run_once

CONNS = (1, 5, 10, 20)


def _run():
    bbr = goodput_series(
        base_spec(cc="bbr", cpu_config=CpuConfig.LOW_END, medium=LTE_CELLULAR,
                  duration_s=6.0, warmup_s=2.0),
        connections=CONNS,
    )
    cubic = goodput_series(
        base_spec(cc="cubic", cpu_config=CpuConfig.LOW_END, medium=LTE_CELLULAR,
                  duration_s=6.0, warmup_s=2.0),
        connections=CONNS,
    )
    return bbr, cubic


def test_fig9_lte(benchmark):
    bbr, cubic = run_once(benchmark, _run)
    publish(
        "fig9_cellular",
        render_series(
            "connections", list(CONNS),
            [("bbr (Mbps)", [round(x, 2) for x in bbr]),
             ("cubic (Mbps)", [round(x, 2) for x in cubic])],
            title="Figure 9: LTE cellular uplink, Low-End config",
        ),
    )
    for b, c in zip(bbr, cubic):
        # Bandwidth-limited: both well under 20 Mbps...
        assert b < 20 and c < 20
        # ...and no CPU-shaped difference: the algorithms land within the
        # band that loss-recovery dynamics alone explain (at 20 tiny-cwnd
        # flows over 18 Mbps our Cubic is RTO-prone, giving BBR a small
        # edge; on hardware the same band appears as WiFi/driver noise).
        assert abs(b - c) / max(b, c) < 0.35
