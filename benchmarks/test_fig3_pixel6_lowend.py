"""Figure 3: BBR vs Cubic on the Pixel 6, Low-End configuration.

Paper shape: despite the different SoC (Tensor LITTLE cores pinned at
300 MHz vs the Pixel 4's 576 MHz), the picture matches Figure 2a — BBR's
gap versus Cubic widens with the number of connections, reaching roughly
half of Cubic's goodput at 20 connections.
"""

from repro import CpuConfig, PIXEL_6
from repro.metrics import render_series

from common import CONNECTION_GRID, base_spec, goodput_series, publish, run_once


def _run():
    bbr = goodput_series(
        base_spec(cc="bbr", device=PIXEL_6, cpu_config=CpuConfig.LOW_END)
    )
    cubic = goodput_series(
        base_spec(cc="cubic", device=PIXEL_6, cpu_config=CpuConfig.LOW_END)
    )
    text = render_series(
        "connections",
        list(CONNECTION_GRID),
        [("bbr (Mbps)", [round(x, 1) for x in bbr]),
         ("cubic (Mbps)", [round(x, 1) for x in cubic])],
        title="Figure 3: Pixel 6, Low-End, Ethernet LAN",
    )
    return bbr, cubic, text


def test_fig3(benchmark):
    bbr, cubic, text = run_once(benchmark, _run)
    publish("fig3_pixel6_lowend", text)
    # BBR's 20-connection goodput is comparably ~45-55% below Cubic's.
    assert bbr[-1] < 0.75 * cubic[-1]
    # The gap grows with connections.
    assert bbr[-1] / cubic[-1] < bbr[0] / cubic[0]
