"""Figure 2: BBR vs Cubic goodput on the Pixel 4 across all four CPU
configurations and {1, 5, 10, 20} parallel connections (Ethernet LAN).

Paper shape to reproduce:
* High-End: both algorithms reach >= ~915 Mbps (near line rate);
* Low/Mid/Default: BBR <= Cubic, and BBR's goodput degrades sharply as
  connections increase while Cubic's degrades only mildly.
"""

import pytest

from repro import CpuConfig
from repro.metrics import render_series

from common import CONNECTION_GRID, base_spec, goodput_series, publish, run_once


def _run_config(config: str):
    # High-End runs at line rate with violent synchronized slow starts;
    # give it a longer warmup so the paper's steady state is what gets
    # measured (the paper averages 5-minute runs).
    extra = {}
    if config == CpuConfig.HIGH_END:
        extra = dict(duration_s=6.0, warmup_s=3.0)
    bbr = goodput_series(base_spec(cc="bbr", cpu_config=config, **extra))
    cubic = goodput_series(base_spec(cc="cubic", cpu_config=config, **extra))
    text = render_series(
        "connections",
        list(CONNECTION_GRID),
        [("bbr (Mbps)", [round(x, 1) for x in bbr]),
         ("cubic (Mbps)", [round(x, 1) for x in cubic])],
        title=f"Figure 2 ({config}): Pixel 4, Ethernet LAN",
    )
    return bbr, cubic, text


@pytest.mark.parametrize("config", [
    CpuConfig.LOW_END, CpuConfig.MID_END, CpuConfig.DEFAULT,
])
def test_fig2_constrained_configs(benchmark, config):
    bbr, cubic, text = run_once(benchmark, lambda: _run_config(config))
    publish(f"fig2_{config}", text)
    # BBR underperforms Cubic at high connection counts...
    assert bbr[-1] < 0.8 * cubic[-1]
    # ...and BBR degrades with more connections while Cubic barely does.
    assert bbr[-1] < 0.8 * bbr[0]
    assert cubic[-1] > 0.7 * cubic[0]


def test_fig2_high_end(benchmark):
    bbr, cubic, text = run_once(
        benchmark, lambda: _run_config(CpuConfig.HIGH_END)
    )
    publish("fig2_high-end", text)
    # Paper: both capable of >= 915 Mbps at 1 connection on High-End.
    assert bbr[0] > 900
    assert cubic[0] > 900
    # And no catastrophic multi-connection collapse for either.
    assert min(bbr) > 600
    assert min(cubic) > 600
