"""§5.1: isolating BBR's differences with the master module.

* §5.1.1 — disable BBR's per-ACK model and pin a Cubic-like cwnd (70):
  goodput stays suboptimal, so the model's compute is *not* the culprit.
* §5.1.2 — sweep fixed per-connection pacing rates: only an effectively
  unpaced rate (~140 Mbps/conn, ~9x the 16 Mbps theoretically needed)
  recovers Cubic-level goodput.
"""

from repro import CpuConfig
from repro.metrics import render_table

from common import base_spec, measure, publish, run_once

RATES = (20.0, 60.0, 100.0, 140.0)


def test_sec511_model_disabled_fixed_cwnd(benchmark):
    def run():
        cubic = measure(base_spec(cc="cubic", cpu_config=CpuConfig.LOW_END,
                                  connections=20))
        stock = measure(base_spec(cc="bbr", cpu_config=CpuConfig.LOW_END,
                                  connections=20))
        no_model = measure(base_spec(
            cc="bbr", cpu_config=CpuConfig.LOW_END, connections=20,
            disable_model=True, fixed_cwnd_segments=70,
            fixed_pacing_rate_mbps=16.0,  # the theoretical per-conn need
        ))
        return cubic, stock, no_model

    cubic, stock, no_model = run_once(benchmark, run)
    publish(
        "sec511_model_disabled",
        render_table(
            ["variant", "goodput (Mbps)"],
            [["cubic", round(cubic.goodput_mbps, 1)],
             ["bbr stock", round(stock.goodput_mbps, 1)],
             ["bbr, model off, cwnd=70, 16Mbps pacing", round(no_model.goodput_mbps, 1)]],
            title="Sec 5.1.1: disabling BBR's model does not close the gap",
        ),
    )
    # Even with zero model compute and Cubic-like cwnd, paced goodput
    # stays well below Cubic: the model is not the bottleneck.
    assert no_model.goodput_mbps < 0.8 * cubic.goodput_mbps


def test_sec512_fixed_pacing_rate_sweep(benchmark):
    def run():
        cubic = measure(base_spec(cc="cubic", cpu_config=CpuConfig.LOW_END,
                                  connections=20))
        swept = {}
        for rate in RATES:
            swept[rate] = measure(base_spec(
                cc="bbr", cpu_config=CpuConfig.LOW_END, connections=20,
                disable_model=True, fixed_cwnd_segments=70,
                fixed_pacing_rate_mbps=rate,
            ))
        return cubic, swept

    cubic, swept = run_once(benchmark, run)
    rows = [["cubic (unpaced)", round(cubic.goodput_mbps, 1)]] + [
        [f"bbr @{rate:g} Mbps/conn", round(swept[rate].goodput_mbps, 1)]
        for rate in RATES
    ]
    publish(
        "sec512_fixed_pacing_sweep",
        render_table(["variant", "goodput (Mbps)"], rows,
                     title="Sec 5.1.2: fixed per-connection pacing rates"),
    )
    goodputs = [swept[r].goodput_mbps for r in RATES]
    # Goodput grows with the pinned pacing rate...
    assert goodputs[-1] > goodputs[0]
    # ...and only the effectively-unpaced 140 Mbps/conn rate approaches
    # Cubic; the theoretically-sufficient 20 Mbps/conn stays far below.
    assert swept[140.0].goodput_mbps > 0.75 * cubic.goodput_mbps
    assert swept[20.0].goodput_mbps < 0.7 * cubic.goodput_mbps
