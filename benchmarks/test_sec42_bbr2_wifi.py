"""§4.2: BBR2 on the Pixel 6 over WiFi (Low-End, 20 connections).

Paper: Cubic still wins; going from Cubic to BBR and BBR2 costs roughly
23% and 20% of goodput respectively (BBR2 slightly better than BBR but
both clearly below Cubic).
"""

from repro import CpuConfig, PIXEL_6, WIFI_LAN
from repro.metrics import render_bars

from common import base_spec, measure, publish, run_once


def _run():
    out = {}
    for cc in ("cubic", "bbr", "bbr2"):
        out[cc] = measure(base_spec(
            cc=cc, device=PIXEL_6, cpu_config=CpuConfig.LOW_END,
            medium=WIFI_LAN, connections=20,
            duration_s=6.0, warmup_s=2.0,
        ))
    return out


def test_sec42_bbr2_wifi(benchmark):
    out = run_once(benchmark, _run)
    publish(
        "sec42_bbr2_wifi",
        render_bars(
            list(out),
            [out[cc].goodput_mbps for cc in out],
            unit=" Mbps",
            title="Sec 4.2: Pixel 6 WiFi, Low-End, 20 conns",
        ),
    )
    cubic = out["cubic"].goodput_mbps
    # Both BBR variants lose a substantial fraction vs Cubic.
    assert out["bbr"].goodput_mbps < 0.9 * cubic
    assert out["bbr2"].goodput_mbps < 0.9 * cubic
    # And the two BBR generations land in the same region.
    ratio = out["bbr2"].goodput_mbps / out["bbr"].goodput_mbps
    assert 0.6 < ratio < 1.7
