"""Table 2: per-stride socket-buffer length, idle time, expected vs
actual throughput, and RTT (Default configuration, 20 connections).

Paper shape:
* skbuff length and idle time grow with the stride;
* skbuff length plateaus once the socket buffer (cwnd) saturates;
* actual throughput tracks expected (Eq. 3) once the stride is large
  enough to amortize the pacing CPU overhead, and both collapse for
  over-large strides;
* RTT falls as the stride grows (fewer timer fires -> less CPU queueing).
"""

from repro import CpuConfig, PAPER_STRIDES, StrideRow, sweep_strides
from repro.metrics import render_table

from common import RUNS, base_spec, publish, run_once


def _run():
    spec = base_spec(cc="bbr", cpu_config=CpuConfig.DEFAULT, connections=20)
    sweeps = sweep_strides(spec, strides=PAPER_STRIDES, runs=RUNS)
    rows = []
    for stride in PAPER_STRIDES:
        agg = sweeps[stride]
        rows.append(
            StrideRow.from_measurement(
                stride=stride,
                mean_skb_bytes=agg.mean("mean_skb_bytes"),
                mean_idle_ms=agg.mean("mean_idle_ms"),
                actual_tx_mbps=agg.goodput_mbps,
                rtt_ms=agg.rtt_mean_ms,
                connections=20,
            )
        )
    return rows


def test_table2(benchmark):
    rows = run_once(benchmark, _run)
    publish(
        "table2_stride_detail",
        render_table(
            ["Pacing Stride", "Skbuff Len (Kb)", "Idle Time (ms)",
             "Expected Tx (Mbps)", "Actual Tx (Mbps)", "RTT (ms)"],
            [r.as_table_row() for r in rows],
            title="Table 2: stride detail (Default config, 20 connections)",
        ),
    )
    by_stride = {r.stride: r for r in rows}
    # Idle time grows monotonically with the stride (Eq. 2).
    idles = [by_stride[s].idle_time_ms for s in PAPER_STRIDES]
    assert all(b > a for a, b in zip(idles, idles[1:]))
    # Skbuff length grows then plateaus (socket-buffer saturation).
    skbs = [by_stride[s].skb_len_kbits for s in PAPER_STRIDES]
    assert skbs[1] > 1.5 * skbs[0]
    assert skbs[-1] < 4 * skbs[2]  # nowhere near 50x the 1x size: capped
    # At stride 1x the CPU overhead leaves actual well below expected.
    assert by_stride[1.0].actual_tx_mbps < 0.85 * by_stride[1.0].expected_tx_mbps
    # Large strides collapse actual throughput.
    assert by_stride[50.0].actual_tx_mbps < by_stride[5.0].actual_tx_mbps
    # RTT at large strides is below the 1x RTT (pacing overhead gone).
    assert by_stride[50.0].rtt_ms < by_stride[1.0].rtt_ms
