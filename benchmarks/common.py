"""Shared plumbing for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it runs the
relevant experiment grid, renders the same rows/series the paper reports,
prints them, and archives them under ``benchmarks/results/``. Absolute
numbers come from a simulator, not the authors' phones — the *shape*
(who wins, by what factor, where crossovers fall) is the reproduction
target; see EXPERIMENTS.md for the side-by-side record.

Defaults below trade statistical polish for wall-clock time: the paper
averages 10 x 5-minute iperf runs; the benches average ``RUNS`` seeded
runs of ``DURATION_S`` simulated seconds, which is past convergence for
every scenario measured here.

Grid helpers run through :mod:`repro.runner` and therefore consult the
content-addressed result cache (:mod:`repro.cache`) by default:
re-rendering a figure whose simulations are unchanged is served from
disk in milliseconds, bit-identical to a fresh run. Set
``REPRO_CACHE=off`` (or pass ``cache=False``) to force recomputation,
e.g. when timing the simulator itself.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro import (
    ExperimentSpec,
    ReplicatedResult,
    load_scenario,
    run_replicated_grid,
    run_replicated_parallel,
    spec_from_dict,
)

#: simulated seconds per run (measurement starts after WARMUP_S)
DURATION_S = 4.0
WARMUP_S = 1.5
#: seeded replications per grid point (determinism makes 1 meaningful;
#: raise for tighter error bars when wall-clock allows)
RUNS = 1

#: the connection counts of Figures 2/3/5
CONNECTION_GRID = (1, 5, 10, 20)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
#: canonical declarative grids (Figure 5, Figure 8, CI smoke)
SCENARIO_DIR = os.path.join(os.path.dirname(__file__), "scenarios")

#: grid helpers accept built specs or declarative spec dicts
SpecLike = Union[ExperimentSpec, dict]


def _coerce_spec(spec: SpecLike) -> ExperimentSpec:
    return spec_from_dict(spec) if isinstance(spec, dict) else spec


def base_spec(**overrides) -> ExperimentSpec:
    """An ExperimentSpec with benchmark-suite defaults applied."""
    defaults = dict(duration_s=DURATION_S, warmup_s=WARMUP_S)
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def scenario_path(name: str) -> str:
    """Path of a checked-in scenario file (``name`` without ``.json``)."""
    return os.path.join(SCENARIO_DIR, f"{name}.json")


def scenario_specs(name: str) -> List[ExperimentSpec]:
    """Expand the checked-in scenario *name* into its spec list."""
    return load_scenario(scenario_path(name))


def measure(spec: SpecLike, runs: int = RUNS, cache=None) -> ReplicatedResult:
    """Run a grid point with the suite's replication count.

    Accepts a built :class:`ExperimentSpec` or a declarative spec dict.
    Replications fan out across worker processes (``REPRO_JOBS`` or all
    cores; see :mod:`repro.runner`); results are identical to serial.
    *cache* passes through to the runner (``None`` = the default
    on-disk result cache, ``False`` = always recompute).
    """
    return run_replicated_parallel(_coerce_spec(spec), runs=runs, cache=cache)


def measure_grid(
    specs: Sequence[SpecLike], runs: int = RUNS, cache=None,
    chunk: Optional[int] = None,
) -> List[ReplicatedResult]:
    """Run a whole grid through the parallel runner, in grid order.

    Each element may be a built spec or a declarative spec dict (e.g.
    from :func:`repro.expand_scenario_dicts`). *cache* and *chunk* pass
    through to :func:`repro.runner.run_grid_report`.
    """
    return run_replicated_grid(
        [_coerce_spec(s) for s in specs], runs=runs, cache=cache, chunk=chunk
    )


def goodput_series(
    spec: ExperimentSpec,
    connections: Sequence[int] = CONNECTION_GRID,
    runs: int = RUNS,
) -> List[float]:
    """Mean goodput (Mbps) for each connection count."""
    specs = [replace(spec, connections=n) for n in connections]
    return [agg.goodput_mbps for agg in measure_grid(specs, runs=runs)]


def publish(name: str, text: str) -> None:
    """Print a rendered table/figure and archive it under results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text + "\n")


def run_once(benchmark, func):
    """Run *func* exactly once under pytest-benchmark.

    These are macro-benchmarks (tens of seconds); repetition happens
    inside each experiment via seeded replication, not via the timer.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
