"""Figures 4 and 5: the effect of TCP packet pacing on BBR goodput.

* Figure 4 — Low-End / Mid-End / Default at 20 connections, pacing on vs
  off. Paper: disabling pacing raises goodput substantially (2.7x on
  Low-End; +67% Mid-End; +91% Default).
* Figure 5 — Low-End at {1, 5, 20} connections. Paper: pacing hurts at
  every connection count and the gap widens with more connections.
"""

import pytest

from repro import CpuConfig, PacingMode
from repro.metrics import render_bars, render_series

from common import base_spec, measure, publish, run_once


def _paced_vs_unpaced(config: str, connections: int):
    paced = measure(base_spec(cc="bbr", cpu_config=config, connections=connections))
    unpaced = measure(base_spec(
        cc="bbr", cpu_config=config, connections=connections,
        pacing_mode=PacingMode.OFF,
    ))
    return paced, unpaced


def test_fig4_pacing_onoff_20conns(benchmark):
    def run():
        rows = {}
        for config in (CpuConfig.LOW_END, CpuConfig.MID_END, CpuConfig.DEFAULT):
            rows[config] = _paced_vs_unpaced(config, 20)
        return rows

    rows = run_once(benchmark, run)
    labels, values = [], []
    for config, (paced, unpaced) in rows.items():
        labels += [f"{config} paced", f"{config} unpaced"]
        values += [paced.goodput_mbps, unpaced.goodput_mbps]
    publish(
        "fig4_pacing_onoff",
        render_bars(labels, values, unit=" Mbps",
                    title="Figure 4: BBR goodput, pacing on vs off (20 conns)"),
    )
    for config, (paced, unpaced) in rows.items():
        # Disabling pacing must raise goodput substantially everywhere.
        assert unpaced.goodput_mbps > 1.3 * paced.goodput_mbps, config


def test_fig5_pacing_onoff_by_connections(benchmark):
    def run():
        out = {}
        for n in (1, 5, 20):
            out[n] = _paced_vs_unpaced(CpuConfig.LOW_END, n)
        return out

    out = run_once(benchmark, run)
    conns = sorted(out)
    paced_row = [round(out[n][0].goodput_mbps, 1) for n in conns]
    unpaced_row = [round(out[n][1].goodput_mbps, 1) for n in conns]
    publish(
        "fig5_pacing_connections",
        render_series(
            "connections", conns,
            [("paced (Mbps)", paced_row), ("unpaced (Mbps)", unpaced_row)],
            title="Figure 5: BBR pacing on/off across connections (Low-End)",
        ),
    )
    for n in conns:
        paced, unpaced = out[n]
        assert unpaced.goodput_mbps > paced.goodput_mbps, n
    # The relative gap is worst at 20 connections.
    gap = {n: out[n][1].goodput_mbps / out[n][0].goodput_mbps for n in conns}
    assert gap[20] > gap[1]
