"""Table 1: the mobile CPU configurations used on the Pixel phones."""

from repro import PIXEL_4, PIXEL_6
from repro.metrics import render_table

from common import publish, run_once


def _build_table() -> str:
    rows = [
        ["Low-End", f"{PIXEL_4.low_end_hz / 1e6:.0f}MHz",
         f"{PIXEL_6.low_end_hz / 1e6:.0f}MHz", "LITTLE"],
        ["Mid-End", f"{PIXEL_4.mid_end_hz / 1e9:.1f}GHz",
         f"{PIXEL_6.mid_end_hz / 1e9:.1f}GHz", "LITTLE"],
        ["High-End", f"{PIXEL_4.high_end_hz / 1e9:.1f}GHz",
         f"{PIXEL_6.high_end_hz / 1e9:.1f}GHz", "BIG"],
        ["Default", "Dynamic", "Dynamic", "Dynamic"],
    ]
    return render_table(
        ["Config.", "Pixel 4 Freq.", "Pixel 6 Freq.", "Cores"],
        rows,
        title="Table 1: Mobile CPU configurations",
    )


def test_table1(benchmark):
    text = run_once(benchmark, _build_table)
    publish("table1_configs", text)
    # Sanity: the pin points of the paper exist exactly.
    assert "576MHz" in text
    assert "300MHz" in text
    assert "2.8GHz" in text
    assert "1.2GHz" in text
