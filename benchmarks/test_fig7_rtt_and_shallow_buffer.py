"""Figure 7 and §5.2.3: what pacing buys — low RTT and few retransmits.

* Figure 7 — RTT of BBR with and without pacing (20 connections).
  Paper: RTT more than doubles for every configuration when pacing is
  disabled.
* §5.2.3 — a 10-packet shallow router buffer. Paper: disabling pacing
  raises average retransmissions from 37 to ~13,500 segments; goodput
  rises but the network is visibly congested.
"""

from repro import CpuConfig, NetemConfig, PacingMode
from repro.metrics import render_series, render_table
from repro.units import mbps

from common import base_spec, measure, publish, run_once


def test_fig7_rtt_with_and_without_pacing(benchmark):
    def run():
        rows = {}
        for config in (CpuConfig.LOW_END, CpuConfig.MID_END, CpuConfig.DEFAULT):
            paced = measure(base_spec(cc="bbr", cpu_config=config, connections=20))
            unpaced = measure(base_spec(
                cc="bbr", cpu_config=config, connections=20,
                pacing_mode=PacingMode.OFF,
            ))
            rows[config] = (paced, unpaced)
        return rows

    rows = run_once(benchmark, run)
    configs = list(rows)
    publish(
        "fig7_rtt_pacing",
        render_series(
            "config", configs,
            [("paced RTT (ms)", [round(rows[c][0].rtt_mean_ms, 2) for c in configs]),
             ("unpaced RTT (ms)", [round(rows[c][1].rtt_mean_ms, 2) for c in configs])],
            title="Figure 7: BBR RTT with/without pacing (20 conns)",
        ),
    )
    for config, (paced, unpaced) in rows.items():
        # RTT more than doubles without pacing.
        assert unpaced.rtt_mean_ms > 2.0 * paced.rtt_mean_ms, config


def test_sec523_shallow_buffer_retransmissions(benchmark):
    """10-packet buffer on a near-line-rate router port (tc).

    The port runs slightly below the access line rate so that only
    *bursts* overflow the shallow buffer: paced single-skb arrivals pass
    cleanly, unpaced TSQ bursts slam into it.
    """
    netem = NetemConfig(rate_bps=mbps(800), buffer_segments=10)

    def run():
        paced = measure(base_spec(
            cc="bbr", cpu_config=CpuConfig.LOW_END, connections=20, netem=netem,
        ))
        unpaced = measure(base_spec(
            cc="bbr", cpu_config=CpuConfig.LOW_END, connections=20, netem=netem,
            pacing_mode=PacingMode.OFF,
        ))
        return paced, unpaced

    paced, unpaced = run_once(benchmark, run)
    publish(
        "sec523_shallow_buffer",
        render_table(
            ["variant", "goodput (Mbps)", "retransmitted segs", "RTT (ms)"],
            [["paced", round(paced.goodput_mbps, 1),
              int(paced.retransmitted_segments), round(paced.rtt_mean_ms, 2)],
             ["unpaced", round(unpaced.goodput_mbps, 1),
              int(unpaced.retransmitted_segments), round(unpaced.rtt_mean_ms, 2)]],
            title="Sec 5.2.3: 10-packet shallow buffer, BBR, 20 conns, Low-End",
        ),
    )
    # Paper: retransmissions explode (37 -> ~13,500) without pacing, and
    # goodput still rises — congestion is the price of the speed-up.
    assert unpaced.retransmitted_segments > 5 * max(1.0, paced.retransmitted_segments)
    assert unpaced.goodput_mbps > paced.goodput_mbps
    assert unpaced.rtt_mean_ms > paced.rtt_mean_ms
