"""Ablations beyond the paper: verify the *mechanism*, not just the effect.

1. **Free pacing timers**: if the paper's explanation (per-send timer
   overhead) is right, zeroing only the pacing-timer cycle costs should
   lift paced BBR near its unpaced goodput.
2. **Multi-core steering (RPS)**: spreading flows across the LITTLE
   cores removes the single-core serialization and most of the gap —
   evidence the bottleneck is serialized stack work, as DESIGN.md argues.
3. **Adaptive stride** (§7.1.2 future work, implemented here): the
   online controller should land within the ballpark of the best fixed
   stride without knowing the device configuration.
"""

from repro import CpuConfig, PacingMode
from repro.cpu import DEFAULT_COSTS
from repro.metrics import render_table

from common import base_spec, measure, publish, run_once


def test_ablation_free_pacing_timer(benchmark):
    def run():
        paced = measure(base_spec(cc="bbr", cpu_config=CpuConfig.LOW_END,
                                  connections=20))
        free_timer = measure(base_spec(
            cc="bbr", cpu_config=CpuConfig.LOW_END, connections=20,
            costs=DEFAULT_COSTS.without_pacing_overhead(),
        ))
        unpaced = measure(base_spec(
            cc="bbr", cpu_config=CpuConfig.LOW_END, connections=20,
            pacing_mode=PacingMode.OFF,
        ))
        return paced, free_timer, unpaced

    paced, free_timer, unpaced = run_once(benchmark, run)
    publish(
        "ablation_free_timer",
        render_table(
            ["variant", "goodput (Mbps)"],
            [["paced, stock costs", round(paced.goodput_mbps, 1)],
             ["paced, free pacing timer", round(free_timer.goodput_mbps, 1)],
             ["unpaced", round(unpaced.goodput_mbps, 1)]],
            title="Ablation: zero-cost pacing timers (Low-End, 20 conns)",
        ),
    )
    # Removing only the timer cost recovers a large share of the gap.
    gap = unpaced.goodput_mbps - paced.goodput_mbps
    recovered = free_timer.goodput_mbps - paced.goodput_mbps
    assert recovered > 0.4 * gap


def test_ablation_rps_multicore(benchmark):
    def run():
        serial = measure(base_spec(cc="bbr", cpu_config=CpuConfig.LOW_END,
                                   connections=20))
        rps = measure(base_spec(cc="bbr", cpu_config=CpuConfig.LOW_END,
                                connections=20, executor="rps"))
        return serial, rps

    serial, rps = run_once(benchmark, run)
    publish(
        "ablation_rps",
        render_table(
            ["executor", "goodput (Mbps)"],
            [["serial (phone default)", round(serial.goodput_mbps, 1)],
             ["rps over 4 LITTLE cores", round(rps.goodput_mbps, 1)]],
            title="Ablation: multi-core flow steering (Low-End, 20 conns)",
        ),
    )
    assert rps.goodput_mbps > 1.8 * serial.goodput_mbps


def test_ablation_adaptive_stride(benchmark):
    from repro import ExperimentSpec, run_experiment
    from repro.core.stride import AdaptiveStrideController
    from repro.core import experiment as exp_mod

    def run():
        fixed_1 = measure(base_spec(cc="bbr", cpu_config=CpuConfig.LOW_END,
                                    connections=20))
        fixed_10 = measure(base_spec(cc="bbr", cpu_config=CpuConfig.LOW_END,
                                     connections=20, pacing_stride=10.0))
        adaptive = _run_adaptive()
        return fixed_1, fixed_10, adaptive

    fixed_1, fixed_10, adaptive_goodput = run_once(benchmark, run)
    publish(
        "ablation_adaptive_stride",
        render_table(
            ["variant", "goodput (Mbps)"],
            [["fixed stride 1x", round(fixed_1.goodput_mbps, 1)],
             ["fixed stride 10x", round(fixed_10.goodput_mbps, 1)],
             ["adaptive stride", round(adaptive_goodput, 1)]],
            title="Ablation: adaptive stride controller (Low-End, 20 conns)",
        ),
    )
    # The controller must clearly beat stock pacing...
    assert adaptive_goodput > 1.15 * fixed_1.goodput_mbps


def _run_adaptive() -> float:
    """Run one Low-End/20-conn experiment with the online controller."""
    from repro.apps.iperf import IperfClientApp, IperfServerApp
    from repro.cc import Bbr
    from repro.core.stride import AdaptiveStrideController
    from repro.cpu import NetStackExecutor
    from repro.devices import PIXEL_4, CpuConfig as CC, build_device
    from repro.netsim import ETHERNET_LAN, Testbed
    from repro.sim import EventLoop, RngStreams
    from repro.tcp.stack import MobileTcpStack
    from repro.units import seconds

    loop = EventLoop()
    device = build_device(loop, PIXEL_4, CC.LOW_END)
    testbed = Testbed(loop, ETHERNET_LAN, rng=RngStreams(5))
    stack = MobileTcpStack(loop, NetStackExecutor(device.cpu),
                           device.cost_model, testbed)
    server = IperfServerApp(loop, testbed)
    client = IperfClientApp(loop, stack, Bbr, parallel=20)
    controller = AdaptiveStrideController(loop, client.connections, device)
    device.start()
    client.start()
    controller.start()
    warmup, duration = seconds(2.0), seconds(6.0)
    loop.run(until=duration)
    goodput = server.goodput_bps_between(warmup, duration) / 1e6
    controller.stop()
    client.stop()
    device.stop()
    testbed.stop_processes()
    return goodput
