"""Figure 6: is it BBR, or is it TCP pacing? — Cubic with pacing enabled.

Paper (Low-End, 20 connections): enabling TCP's internal pacing on Cubic
also cuts its goodput; pinning a low 20 Mbps/connection pacing rate is
worst (147 Mbps instead of the ideal 400), while a 140 Mbps/connection
rate recovers unpaced performance. Pacing overhead is a TCP problem, not
a BBR problem.
"""

from repro import CpuConfig, PacingMode
from repro.metrics import render_bars

from common import base_spec, measure, publish, run_once


def _run():
    spec = base_spec(cc="cubic", cpu_config=CpuConfig.LOW_END, connections=20)
    default = measure(spec)  # unpaced (Cubic default)
    paced = measure(base_spec(
        cc="cubic", cpu_config=CpuConfig.LOW_END, connections=20,
        pacing_mode=PacingMode.ON,
    ))
    paced_20 = measure(base_spec(
        cc="cubic", cpu_config=CpuConfig.LOW_END, connections=20,
        pacing_mode=PacingMode.ON, fixed_pacing_rate_mbps=20.0,
    ))
    paced_140 = measure(base_spec(
        cc="cubic", cpu_config=CpuConfig.LOW_END, connections=20,
        pacing_mode=PacingMode.ON, fixed_pacing_rate_mbps=140.0,
    ))
    return default, paced, paced_20, paced_140


def test_fig6_cubic_pacing(benchmark):
    default, paced, paced_20, paced_140 = run_once(benchmark, _run)
    publish(
        "fig6_cubic_pacing",
        render_bars(
            ["no pacing (default)", "pacing on (internal rate)",
             "pacing @20Mbps/conn", "pacing @140Mbps/conn"],
            [default.goodput_mbps, paced.goodput_mbps,
             paced_20.goodput_mbps, paced_140.goodput_mbps],
            unit=" Mbps",
            title="Figure 6: Cubic goodput with pacing (Low-End, 20 conns)",
        ),
    )
    # A low pinned pacing rate collapses Cubic far below the 20x20=400
    # Mbps ideal (paper: 147 Mbps) — pacing overhead, not BBR, is the
    # bottleneck...
    assert paced_20.goodput_mbps < 250
    assert paced_20.goodput_mbps < 0.7 * default.goodput_mbps
    # ...and a high pinned rate (effectively unpaced) recovers it.
    assert paced_140.goodput_mbps > 0.85 * default.goodput_mbps
    assert paced_140.goodput_mbps > 1.5 * paced_20.goodput_mbps
    # NOTE (EXPERIMENTS.md): the "internal rate" row direction differs
    # from the paper here — our Cubic's cwnd *permission* grows unbounded
    # on the CPU-limited path, so the internal formula yields a rate too
    # high to throttle anything. The pinned-rate rows carry the finding.
    assert paced.goodput_mbps > 0  # reported, not direction-asserted
