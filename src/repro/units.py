"""Unit helpers used throughout the simulator.

Conventions (enforced by these helpers, relied on everywhere):

* **time** is an ``int`` number of nanoseconds,
* **data sizes** are ``int`` bytes,
* **rates** are ``float`` bits per second.

Keeping time integral makes the discrete-event engine deterministic: two
runs with the same seeds schedule exactly the same event sequence, with no
floating-point tie ambiguity.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time constructors (return integer nanoseconds)
# ---------------------------------------------------------------------------

NSEC = 1
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000


def nanoseconds(value: float) -> int:
    """Return *value* nanoseconds as an integer tick count."""
    return int(round(value))


def microseconds(value: float) -> int:
    """Return *value* microseconds in integer nanoseconds."""
    return int(round(value * USEC))


def milliseconds(value: float) -> int:
    """Return *value* milliseconds in integer nanoseconds."""
    return int(round(value * MSEC))


def seconds(value: float) -> int:
    """Return *value* seconds in integer nanoseconds."""
    return int(round(value * SEC))


def to_seconds(ns: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return ns / SEC


def to_milliseconds(ns: int) -> float:
    """Convert integer nanoseconds to float milliseconds."""
    return ns / MSEC


def to_microseconds(ns: int) -> float:
    """Convert integer nanoseconds to float microseconds."""
    return ns / USEC


# ---------------------------------------------------------------------------
# Rate constructors (return float bits per second)
# ---------------------------------------------------------------------------


def bits_per_second(value: float) -> float:
    """Return *value* in bits/s (identity; for symmetry and readability)."""
    return float(value)


def kbps(value: float) -> float:
    """Return *value* kilobits/s in bits/s."""
    return float(value) * 1e3


def mbps(value: float) -> float:
    """Return *value* megabits/s in bits/s."""
    return float(value) * 1e6


def gbps(value: float) -> float:
    """Return *value* gigabits/s in bits/s."""
    return float(value) * 1e9


def to_mbps(bits_per_sec: float) -> float:
    """Convert bits/s to megabits/s."""
    return bits_per_sec / 1e6


def to_gbps(bits_per_sec: float) -> float:
    """Convert bits/s to gigabits/s."""
    return bits_per_sec / 1e9


# ---------------------------------------------------------------------------
# Size constructors (return integer bytes)
# ---------------------------------------------------------------------------


def bytes_(value: float) -> int:
    """Return *value* bytes as an integer byte count."""
    return int(round(value))


def kib(value: float) -> int:
    """Return *value* KiB (1024 bytes) in bytes."""
    return int(round(value * 1024))


def mib(value: float) -> int:
    """Return *value* MiB in bytes."""
    return int(round(value * 1024 * 1024))


def kilobits(value: float) -> int:
    """Return *value* kilobits (1000 bits) in whole bytes (floor)."""
    return int(value * 1000) // 8


def to_kilobits(nbytes: float) -> float:
    """Convert bytes to kilobits (1000-bit units, as in the paper's Table 2)."""
    return nbytes * 8.0 / 1000.0


# ---------------------------------------------------------------------------
# Derived helpers
# ---------------------------------------------------------------------------


def transmit_time(nbytes: int, rate_bps: float) -> int:
    """Time (integer ns) to serialize *nbytes* onto a link of *rate_bps*.

    A zero or negative rate means "infinitely fast" and returns 0; the
    caller is expected to treat such links as unshaped.
    """
    if rate_bps <= 0:
        return 0
    return int(round(nbytes * 8 * SEC / rate_bps))


def rate_from_bytes(nbytes: int, interval_ns: int) -> float:
    """Average rate in bits/s for *nbytes* delivered over *interval_ns*."""
    if interval_ns <= 0:
        return 0.0
    return nbytes * 8 * SEC / interval_ns


def cycles_to_ns(cycles: int, freq_hz: float) -> int:
    """Wall time (integer ns) to execute *cycles* at *freq_hz* (cycles/s)."""
    if freq_hz <= 0:
        raise ValueError("CPU frequency must be positive")
    return int(round(cycles * SEC / freq_hz))


def mhz(value: float) -> float:
    """Return *value* MHz in Hz."""
    return float(value) * 1e6


def ghz(value: float) -> float:
    """Return *value* GHz in Hz."""
    return float(value) * 1e9
