"""Command-line interface: run paper experiments without writing code.

Examples::

    python -m repro run --cc bbr --connections 20 --config low-end
    python -m repro run --cc cubic --connections 20 --config low-end --runs 3
    python -m repro run --cc bbr --connections 20 --config default \
        --stride 5 --medium wifi --json
    python -m repro grid --scenario benchmarks/scenarios/smoke_2point.json
    python -m repro grid --scenario benchmarks/scenarios/fig8_stride_sweep.json
    python -m repro grid --scenario benchmarks/scenarios/fig4_grid.json --live
    python -m repro sweep --scenario benchmarks/scenarios/fig4_grid.json \
        --distributed --workers 2 --live
    python -m repro worker --pull /shared/queue/fig4
    python -m repro runs merge /shared/queue/fig4
    python -m repro compare --connections 20 --config low-end
    python -m repro sweep-strides --config default --connections 20 --status
    python -m repro cache stats
    python -m repro runs list
    python -m repro runs diff 68a1b2c3 68a1d4e5
    python -m repro perf trend
    python -m repro list

``run`` executes one experiment (optionally replicated), ``grid``
expands a declarative scenario file into its full experiment grid,
``sweep`` runs the same grids and with ``--distributed`` shards them
into a shared queue directory for any number of ``worker --pull``
processes (local or cross-host over a shared filesystem; the shared
result cache carries results and makes the sweep resumable —
:mod:`repro.dist`), ``compare`` races BBR against Cubic on identical
settings,
``sweep-strides`` reproduces a Figure-8 row, ``cache`` inspects or
clears the on-disk result cache (:mod:`repro.cache`), and ``list``
shows every registered component. All ``choices=`` below come from the
component registries (:mod:`repro.registry`), so a newly registered
algorithm or medium is immediately addressable here.

Experiment commands consult the result cache transparently: repeated
runs of an unchanged grid are served from disk (the timing line reports
``cache hits=... misses=...``); ``--no-cache`` forces recomputation.
Every experiment/grid invocation also appends a manifest record to the
run ledger (:mod:`repro.obs.ledger`; ``REPRO_LEDGER=off`` disables it);
``runs`` lists, shows, diffs, and prunes those records, and ``perf
trend`` renders the harness history in
``benchmarks/results/BENCH_history.jsonl``. ``grid --live`` (or
sweep-strides ``--status``) renders an in-place progress line — points
done, chunks, cache hits, events/sec per worker, ETA — from the worker
heartbeat stream (:mod:`repro.obs.live`); ``--metrics-out`` exports the
final telemetry as OpenMetrics text.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import replace
from typing import Dict, List, Optional

import time

from . import (
    CC_ALGORITHMS,
    CPU_CONFIGS,
    CpuConfig,
    DEVICES,
    DistMonitor,
    ExperimentSpec,
    GridMonitor,
    KERNELS,
    MEDIA,
    NetemConfig,
    PROBES,
    PacingMode,
    ReplicatedResult,
    ResultCache,
    RunLedger,
    SimProfiler,
    TimeSeries,
    Tracer,
    all_registries,
    diff_records,
    expand_scenario,
    export_chrome_trace,
    export_jsonl,
    load_scenario_doc,
    merge_ledgers,
    resolve_jobs,
    resolve_kernel,
    run_distributed,
    run_experiment,
    run_replicated_grid_report,
    run_worker,
    sweep_strides,
)
from .dist import DistributedSweepError, default_queue_dir, grid_digest
from .dist.worker import WorkerError
from .kernel import KERNEL_ENV_VAR, compiled_components
from .metrics import RunSet, render_series, render_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Are Mobiles Ready for BBR?' experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--connections", "-P", type=int, default=1,
                       help="parallel uplink connections (iperf3 -P)")
        p.add_argument("--config", choices=CPU_CONFIGS.names(),
                       default=CpuConfig.LOW_END, help="Table 1 CPU config")
        p.add_argument("--device", choices=DEVICES.names(),
                       default="pixel4")
        p.add_argument("--medium", choices=MEDIA.names(),
                       default="ethernet")
        p.add_argument("--duration", type=float, default=8.0,
                       help="simulated seconds per run")
        p.add_argument("--warmup", type=float, default=2.0,
                       help="warmup excluded from measurement")
        p.add_argument("--runs", type=int, default=1,
                       help="seeded replications to average")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--jobs", "-j", type=int, default=None,
                       help="worker processes for grid/replication fan-out "
                            "(default: $REPRO_JOBS, then CPU count)")
        p.add_argument("--no-cache", action="store_true",
                       help="recompute every point instead of consulting "
                            "the on-disk result cache")
        p.add_argument("--chunk", type=int, default=None,
                       help="specs batched per worker task (default: "
                            "$REPRO_CHUNK, then auto-sized from the grid)")
        p.add_argument("--kernel", choices=KERNELS.names(), default=None,
                       help="simulation-kernel backend (default: "
                            "$REPRO_KERNEL, then pure); instrumented runs "
                            "fall back to pure")
        p.add_argument("--rate-limit-mbps", type=float, default=None,
                       help="tc rate limit on the router's server port")
        p.add_argument("--buffer-segments", type=int, default=None,
                       help="router egress buffer depth (segments)")
        p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON")

    run_p = sub.add_parser("run", help="run one experiment")
    add_common(run_p)
    run_p.add_argument("--cc", choices=CC_ALGORITHMS.names(),
                       default="bbr")
    run_p.add_argument("--pacing", choices=PacingMode.ALL,
                       default=PacingMode.AUTO)
    run_p.add_argument("--stride", type=float, default=1.0,
                       help="pacing stride (paper Eq. 2)")
    run_p.add_argument("--fixed-cwnd", type=int, default=None,
                       help="master module: pin cwnd (segments)")
    run_p.add_argument("--fixed-pacing-mbps", type=float, default=None,
                       help="master module: pin the pacing rate")
    run_p.add_argument("--disable-model", action="store_true",
                       help="master module: skip the CC model's per-ACK work")
    run_p.add_argument("--scenario", metavar="FILE", default=None,
                       help="single-point scenario file; overrides the "
                            "spec flags above (multi-point files need "
                            "'repro grid')")
    run_p.add_argument("--probe", action="append", default=None,
                       metavar="NAME",
                       help="record a time-series probe (repeatable; "
                            "'all' selects every registered probe; see "
                            "'repro list')")
    run_p.add_argument("--series-out", metavar="FILE", default=None,
                       help="write probe time series as JSON "
                            "(render with 'repro report FILE')")
    run_p.add_argument("--trace-out", metavar="FILE", default=None,
                       help="write the component trace as JSONL "
                            "(forces a single in-process run)")
    run_p.add_argument("--chrome-trace", metavar="FILE", default=None,
                       help="write a Chrome trace-event JSON loadable "
                            "in Perfetto (forces a single in-process run)")
    run_p.add_argument("--trace-category", action="append", default=None,
                       metavar="GLOB",
                       help="only trace sources matching this glob "
                            "(repeatable; e.g. 'cc-*', 'little*')")
    run_p.add_argument("--profile", action="store_true",
                       help="profile the event loop per callback type "
                            "(forces a single in-process run)")

    grid_p = sub.add_parser(
        "grid", help="run every point of a declarative scenario file")
    grid_p.add_argument("--scenario", metavar="FILE", required=True,
                        help="JSON scenario (base + grid + overrides)")
    grid_p.add_argument("--runs", type=int, default=1,
                        help="seeded replications to average per point")
    grid_p.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes (default: $REPRO_JOBS, "
                             "then CPU count)")
    grid_p.add_argument("--no-cache", action="store_true",
                        help="recompute every point instead of consulting "
                             "the on-disk result cache")
    grid_p.add_argument("--chunk", type=int, default=None,
                        help="specs batched per worker task (default: "
                             "$REPRO_CHUNK, then auto-sized from the grid)")
    grid_p.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")
    grid_p.add_argument("--live", action="store_true",
                        help="render a live progress line on stderr: points "
                             "done, chunks, cache hits, events/sec, ETA")
    grid_p.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write the final grid telemetry as OpenMetrics "
                             "text")
    grid_p.add_argument("--progress-out", metavar="FILE", default=None,
                        help="write the raw worker progress events as JSONL")

    sweep_grid_p = sub.add_parser(
        "sweep", help="run a scenario grid, optionally sharded across "
                      "distributed pull-workers over a shared cache")
    sweep_grid_p.add_argument("--scenario", metavar="FILE", required=True,
                              help="JSON scenario (base + grid + overrides)")
    sweep_grid_p.add_argument("--distributed", action="store_true",
                              help="shard the grid into a shared task queue "
                                   "for 'repro worker --pull' processes "
                                   "(the shared result cache carries the "
                                   "results and makes the sweep resumable)")
    sweep_grid_p.add_argument("--queue", metavar="DIR", default=None,
                              help="queue directory (default: a per-sweep "
                                   "directory under the cache root; must be "
                                   "on a filesystem every worker mounts)")
    sweep_grid_p.add_argument("--workers", type=int, default=0,
                              help="local pull-workers to spawn (0: only "
                                   "coordinate — start workers yourself, "
                                   "anywhere the queue is mounted)")
    sweep_grid_p.add_argument("--jobs", "-j", type=int, default=None,
                              help="per-worker process count when "
                                   "distributed (capped at the worker "
                                   "host's cores); else the grid pool size")
    sweep_grid_p.add_argument("--no-cache", action="store_true",
                              help="recompute every point (incompatible "
                                   "with --distributed: the cache is how "
                                   "workers return results)")
    sweep_grid_p.add_argument("--chunk", type=int, default=None,
                              help="points per published task (default: "
                                   "$REPRO_CHUNK, then auto-sized from the "
                                   "grid and worker count)")
    sweep_grid_p.add_argument("--lease-timeout", type=float, default=60.0,
                              metavar="S",
                              help="seconds before an unrenewed chunk lease "
                                   "is re-dispatched to another worker")
    sweep_grid_p.add_argument("--wait-timeout", type=float, default=None,
                              metavar="S",
                              help="give up when the distributed sweep has "
                                   "not completed within S seconds "
                                   "(default: wait indefinitely)")
    sweep_grid_p.add_argument("--live", "--status", action="store_true",
                              help="render a live progress line on stderr, "
                                   "aggregating per-worker heartbeats")
    sweep_grid_p.add_argument("--metrics-out", metavar="FILE", default=None,
                              help="write the final sweep telemetry as "
                                   "OpenMetrics text")
    sweep_grid_p.add_argument("--progress-out", metavar="FILE", default=None,
                              help="write the raw progress events as JSONL")
    sweep_grid_p.add_argument("--json", action="store_true",
                              help="emit machine-readable JSON")

    worker_p = sub.add_parser(
        "worker", help="pull and execute sweep chunks from a shared queue")
    worker_p.add_argument("--pull", metavar="DIR", required=True,
                          help="queue directory published by "
                               "'repro sweep --distributed'")
    worker_p.add_argument("--jobs", "-j", type=int, default=None,
                          help="process count for this worker (default: "
                               "$REPRO_JOBS, then CPU count; always capped "
                               "at this host's cores)")
    worker_p.add_argument("--lease-timeout", type=float, default=60.0,
                          metavar="S",
                          help="lease duration stamped on claimed chunks "
                               "(renewed while computing)")
    worker_p.add_argument("--idle-timeout", type=float, default=300.0,
                          metavar="S",
                          help="exit after this long without work "
                               "(0: wait until stopped)")
    worker_p.add_argument("--poll", type=float, default=0.5, metavar="S",
                          help="queue poll interval while idle")
    worker_p.add_argument("--max-chunks", type=int, default=None,
                          help="exit after executing this many chunks")
    worker_p.add_argument("--cache-dir", metavar="DIR", default=None,
                          help="override the shared cache location named "
                               "in the queue manifest (for hosts mounting "
                               "it at a different path)")
    worker_p.add_argument("--json", action="store_true",
                          help="emit the worker report as JSON")

    cmp_p = sub.add_parser("compare", help="BBR vs Cubic on one setting")
    add_common(cmp_p)
    cmp_p.add_argument("--stride", type=float, default=1.0)

    sweep_p = sub.add_parser("sweep-strides", help="Figure-8 stride sweep")
    add_common(sweep_p)
    sweep_p.add_argument("--strides", type=float, nargs="+",
                         default=[1, 2, 5, 10, 20, 50])
    sweep_p.add_argument("--status", dest="live", action="store_true",
                         help="render a live progress line on stderr while "
                              "the sweep runs")

    cache_p = sub.add_parser(
        "cache", help="inspect or clear the on-disk result cache")
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    cache_stats_p = cache_sub.add_parser(
        "stats", help="entry counts, size, and the current code fingerprint")
    cache_stats_p.add_argument("--json", action="store_true",
                               help="emit machine-readable JSON")
    cache_clear_p = cache_sub.add_parser(
        "clear", help="delete cached results")
    cache_clear_p.add_argument("--stale", action="store_true",
                               help="only delete entries from older code "
                                    "versions (keep the current ones)")
    cache_sub.add_parser(
        "path", help="print the cache directory ($REPRO_CACHE_DIR overrides)")

    runs_p = sub.add_parser(
        "runs", help="inspect the run ledger (the append-only history of "
                     "every experiment/grid invocation)")
    runs_sub = runs_p.add_subparsers(dest="runs_command", required=True)
    runs_list_p = runs_sub.add_parser(
        "list", help="most recent ledger records")
    runs_list_p.add_argument("--limit", type=int, default=20,
                             help="records to show, newest last")
    runs_list_p.add_argument("--kind", choices=("run", "grid"), default=None,
                             help="only this record kind")
    runs_list_p.add_argument("--json", action="store_true",
                             help="emit machine-readable JSON")
    runs_show_p = runs_sub.add_parser(
        "show", help="print one ledger record as JSON")
    runs_show_p.add_argument("run_id", metavar="ID",
                             help="record id (any unique prefix)")
    runs_diff_p = runs_sub.add_parser(
        "diff", help="compare two records' metrics by spec digest "
                     "(exit 0 within --tol, 1 beyond, 2 nothing shared)")
    runs_diff_p.add_argument("run_a", metavar="ID_A")
    runs_diff_p.add_argument("run_b", metavar="ID_B")
    runs_diff_p.add_argument("--tol", type=float, default=0.0,
                             help="relative tolerance per metric "
                                  "(default 0: bit-exact)")
    runs_diff_p.add_argument("--json", action="store_true",
                             help="emit machine-readable JSON")
    runs_prune_p = runs_sub.add_parser(
        "prune", help="drop all but the newest records (and orphaned "
                      "spec refs)")
    runs_prune_p.add_argument("--keep", type=int, default=100,
                              help="records to keep")
    runs_merge_p = runs_sub.add_parser(
        "merge", help="fold per-worker ledger shards (or a whole sweep "
                      "queue's ledgers/) into one queryable ledger")
    runs_merge_p.add_argument("sources", metavar="DIR", nargs="+",
                              help="ledger directory, or a queue directory "
                                   "whose ledgers/ subdirectories are all "
                                   "merged")
    runs_merge_p.add_argument("--into", metavar="DIR", default=None,
                              help="destination ledger directory (default: "
                                   "the regular run ledger)")
    runs_sub.add_parser(
        "path", help="print the ledger file ($REPRO_LEDGER_DIR overrides)")

    perf_p = sub.add_parser(
        "perf", help="performance-trajectory tooling over the harness "
                     "history")
    perf_sub = perf_p.add_subparsers(dest="perf_command", required=True)
    trend_p = perf_sub.add_parser(
        "trend", help="render the events/sec trajectory from "
                      "BENCH_history.jsonl")
    trend_p.add_argument("--history", metavar="FILE",
                         default=os.path.join("benchmarks", "results",
                                              "BENCH_history.jsonl"),
                         help="history JSONL written by the perf harness")
    trend_p.add_argument("--check-regression", type=float, default=None,
                         metavar="PCT",
                         help="exit 1 when the newest entry sits more than "
                              "PCT%% below the median of earlier comparable "
                              "entries")
    trend_p.add_argument("--json", action="store_true",
                         help="emit the raw history as JSON")

    report_p = sub.add_parser(
        "report", help="render probe time series saved by 'run --series-out'")
    report_p.add_argument("series_file", metavar="FILE",
                          help="JSON file written by 'repro run --series-out'")
    report_p.add_argument("--probe", action="append", default=None,
                          metavar="NAME",
                          help="only render series whose name starts with "
                               "NAME (repeatable; default: all)")
    report_p.add_argument("--points", type=int, default=12,
                          help="downsample each series to this many points")

    list_p = sub.add_parser(
        "list", help="list registered components (CCs, media, devices, ...)")
    list_p.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")
    return parser


def _spec_from_args(args, **overrides) -> ExperimentSpec:
    netem = None
    if args.rate_limit_mbps is not None or args.buffer_segments is not None:
        netem = NetemConfig(
            rate_bps=args.rate_limit_mbps * 1e6 if args.rate_limit_mbps else None,
            buffer_segments=args.buffer_segments,
        )
    fields = dict(
        connections=args.connections,
        device=DEVICES.get(args.device),
        cpu_config=args.config,
        medium=MEDIA.get(args.medium),
        duration_s=args.duration,
        warmup_s=args.warmup,
        seed=args.seed,
        netem=netem,
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


def _result_dict(agg) -> dict:
    row = {
        "label": agg.spec.label(),
        "runs": len(agg.runs),
        "goodput_mbps": round(agg.goodput_mbps, 2),
        "goodput_stdev": round(agg.goodput_stdev, 2),
        "rtt_mean_ms": round(agg.rtt_mean_ms, 3),
        "retransmitted_segments": round(agg.retransmitted_segments, 1),
        "cpu_busy_fraction": round(agg.mean("cpu_busy_fraction"), 3),
        "mean_skb_bytes": round(agg.mean("mean_skb_bytes"), 1),
        "mean_idle_ms": round(agg.mean("mean_idle_ms"), 3),
    }
    if any(r.flow_count > 1 for r in agg.runs):
        row["flows"] = round(agg.mean("flow_count"), 1)
        row["jain_fairness"] = round(agg.mean("jain_fairness"), 3)
    return row


def _emit(rows: List[dict], as_json: bool, out) -> None:
    if as_json:
        json.dump(rows if len(rows) > 1 else rows[0], out, indent=2)
        out.write("\n")
        return
    # Rows may have heterogeneous keys (multi-flow rows grow fairness
    # columns); the table shows the union, blank where absent.
    headers = list(dict.fromkeys(k for r in rows for k in r))
    table = render_table(headers, [[r.get(h, "") for h in headers] for r in rows])
    out.write(table + "\n")


def _timing_line(aggs, jobs: int, wall_s: float,
                 events: Optional[int] = None) -> str:
    """One-line sweep timing summary (points, workers, wall, events/sec).

    *events* overrides the event count (the grid report's total excludes
    cache hits, so warm re-runs don't report fictitious throughput).
    """
    points = sum(len(a.runs) for a in aggs)
    if events is None:
        events = sum(r.events_processed for a in aggs for r in a.runs)
    rate = events / wall_s if wall_s > 0 else 0.0
    return (
        f"# points={points} workers={min(jobs, points)} "
        f"wall={wall_s:.2f}s events/sec={rate:,.0f}"
    )


def _cache_suffix(report) -> str:
    """Cache/chunk/kernel annotations for the timing line (empty when default)."""
    suffix = ""
    if report.chunk > 1:
        suffix += f" chunk={report.chunk}"
    if report.kernel != "pure":
        suffix += f" kernel={report.kernel}"
        components = getattr(report, "kernel_components", ())
        if components:
            suffix += f"[{'+'.join(components)}]"
    if report.cache_used:
        suffix += (f" cache hits={report.cache_hits} "
                   f"misses={report.cache_misses}")
        if report.cache_skipped:
            suffix += f" skipped={report.cache_skipped}"
    return suffix


def _make_monitor(args, total_points: int) -> Optional[GridMonitor]:
    """A grid monitor when --live/--status or a telemetry export asks.

    ``--metrics-out``/``--progress-out`` without ``--live`` still need
    the monitor collecting events — just with no stream to render to.
    """
    live = getattr(args, "live", False)
    exports = getattr(args, "metrics_out", None) or \
        getattr(args, "progress_out", None)
    if not live and not exports:
        return None
    return GridMonitor(total_points, stream=sys.stderr if live else None)


def _export_monitor(args, monitor: Optional[GridMonitor]) -> None:
    """Write the OpenMetrics / progress-JSONL exports when requested."""
    if monitor is None:
        return
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        monitor.write_openmetrics(metrics_out)
        sys.stderr.write(f"wrote OpenMetrics grid telemetry to "
                         f"{metrics_out}\n")
    progress_out = getattr(args, "progress_out", None)
    if progress_out:
        count = monitor.write_jsonl(progress_out)
        sys.stderr.write(f"wrote {count} progress events to "
                         f"{progress_out}\n")


def _run_specs(args, specs):
    """Run replicated specs through the parallel runner, with timing."""
    jobs = resolve_jobs(args.jobs)
    cache = False if getattr(args, "no_cache", False) else None
    monitor = _make_monitor(args, len(specs) * args.runs)
    start = time.perf_counter()
    aggs, report = run_replicated_grid_report(
        specs, runs=args.runs, jobs=jobs, cache=cache,
        chunk=getattr(args, "chunk", None), monitor=monitor,
    )
    wall = time.perf_counter() - start
    _export_monitor(args, monitor)
    for notice in report.notices:
        sys.stderr.write(f"note: {notice}\n")
    line = _timing_line(aggs, jobs, wall, events=report.total_events)
    suffix = _cache_suffix(report)
    if report.run_id:
        suffix += f" run={report.run_id}"
    return aggs, line + suffix


def _resolve_probes(names: Optional[List[str]]) -> tuple:
    """Expand ``--probe`` values; 'all' selects every registered probe."""
    if not names:
        return ()
    if "all" in names:
        return PROBES.names()
    for name in names:
        PROBES.get(name)  # raises UnknownNameError with choices
    return tuple(dict.fromkeys(names))


def _write_series(timeseries: Dict[str, TimeSeries], path: str,
                  meta: Optional[dict] = None) -> None:
    doc: Dict[str, object] = {name: ts.to_dict()
                              for name, ts in timeseries.items()}
    if meta:
        # Run-level annotations (dropped trace records, kernel-fallback
        # notices) ride along under a key no probe can claim; 'repro
        # report' surfaces them instead of parsing them as a series.
        doc["_meta"] = meta
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


def _instrumented_run(args, spec, out):
    """Single in-process run with tracing and/or profiling attached.

    The parallel runner ships specs to worker processes, so a Tracer or
    SimProfiler living in this process could never observe them; when
    ``--trace-out``/``--chrome-trace``/``--profile`` is given we run the
    one experiment here instead.
    """
    if args.runs > 1:
        sys.stderr.write(
            "note: --trace-out/--chrome-trace/--profile run in-process; "
            f"forcing --runs 1 (requested {args.runs})\n"
        )
    tracer = None
    if args.trace_out or args.chrome_trace:
        tracer = Tracer(keep=True, categories=tuple(args.trace_category or ()))
    profiler = SimProfiler() if args.profile else None
    start = time.perf_counter()
    result = run_experiment(spec, tracer=tracer, profiler=profiler)
    wall = time.perf_counter() - start
    stats = RunSet()
    stats.add_run(result.scalar_metrics())
    agg = ReplicatedResult(spec=spec, runs=[result], stats=stats)
    notices: List[str] = []
    requested_kernel = os.environ.get(KERNEL_ENV_VAR) or "pure"
    if requested_kernel != "pure":
        notices.append(
            f"instrumented run: pure kernel used instead of "
            f"{requested_kernel!r}"
        )
    if tracer is not None:
        if tracer.dropped_records:
            notices.append(
                f"trace ring buffer dropped {tracer.dropped_records} "
                "oldest records"
            )
            sys.stderr.write(
                f"note: trace ring buffer dropped {tracer.dropped_records} "
                "oldest records (raise Tracer(max_records=...) to keep more)\n"
            )
        if args.trace_out:
            count = export_jsonl(tracer.records, args.trace_out)
            sys.stderr.write(f"wrote {count} trace records to "
                             f"{args.trace_out}\n")
        if args.chrome_trace:
            count = export_chrome_trace(tracer.records, args.chrome_trace)
            sys.stderr.write(f"wrote {count} Chrome trace events to "
                             f"{args.chrome_trace} (open in Perfetto)\n")
    timing = _timing_line([agg], jobs=1, wall_s=wall)
    meta = {
        "notices": notices,
        "dropped_trace_records": tracer.dropped_records if tracer else 0,
    } if notices else None
    return agg, timing, profiler, meta


def _cmd_run(args, out) -> int:
    if args.scenario is not None:
        specs = expand_scenario(load_scenario_doc(args.scenario))
        if len(specs) != 1:
            sys.stderr.write(
                f"error: scenario {args.scenario!r} expands to "
                f"{len(specs)} points; 'repro run' takes exactly one "
                f"(use 'repro grid --scenario' for the full grid)\n"
            )
            return 2
        spec = specs[0]
    else:
        spec = _spec_from_args(
            args,
            cc=args.cc,
            pacing_mode=args.pacing,
            pacing_stride=args.stride,
            fixed_cwnd_segments=args.fixed_cwnd,
            fixed_pacing_rate_mbps=args.fixed_pacing_mbps,
            disable_model=args.disable_model,
        )
    probes = _resolve_probes(args.probe)
    if probes:
        spec = replace(spec, probes=probes)
    profiler = None
    series_meta = None
    if args.trace_out or args.chrome_trace or args.profile:
        agg, timing, profiler, series_meta = _instrumented_run(args, spec, out)
    else:
        (agg,), timing = _run_specs(args, [spec])
    _emit([_result_dict(agg)], args.json, out)
    if not args.json:
        out.write(timing + "\n")
    if probes and args.series_out:
        _write_series(agg.runs[0].timeseries, args.series_out,
                      meta=series_meta)
        sys.stderr.write(f"wrote {len(agg.runs[0].timeseries)} time series "
                         f"to {args.series_out}\n")
    if profiler is not None:
        out.write("\n" + profiler.render(top=10) + "\n")
    return 0


def _cmd_report(args, out) -> int:
    with open(args.series_file, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        sys.stderr.write(f"error: {args.series_file!r} is not a series "
                         "JSON object (expected 'run --series-out' output)\n")
        return 2
    meta = doc.pop("_meta", None)
    if isinstance(meta, dict):
        for notice in meta.get("notices") or []:
            sys.stderr.write(f"note: {notice}\n")
    wanted = args.probe
    series = {}
    for name, payload in doc.items():
        if wanted and not any(name.startswith(w) for w in wanted):
            continue
        series[name] = TimeSeries.from_dict(payload)
    if not series:
        sys.stderr.write("error: no matching time series "
                         f"in {args.series_file!r}\n")
        return 2
    points = max(2, args.points)
    # Series sampled on the same clock grid share one chart; labelled or
    # odd-grid series get their own.
    groups: Dict[tuple, List[TimeSeries]] = {}
    for ts in series.values():
        small = ts.downsample(points)
        groups.setdefault(tuple(small.t_ns), []).append(small)
    first = True
    for t_grid, members in groups.items():
        if not first:
            out.write("\n")
        first = False
        t_ms = [t / 1e6 for t in t_grid]
        chart = [(f"{ts.name} [{ts.unit}]" if ts.unit else ts.name, ts.values)
                 for ts in members]
        title = ", ".join(ts.name for ts in members)
        out.write(render_series("t_ms", t_ms, chart, title=title) + "\n")
    return 0


def _cmd_grid(args, out) -> int:
    specs = expand_scenario(load_scenario_doc(args.scenario))
    if not specs:
        sys.stderr.write(
            f"error: scenario {args.scenario!r} expands to no points\n"
        )
        return 2
    aggs, timing = _run_specs(args, specs)
    _emit([_result_dict(agg) for agg in aggs], args.json, out)
    if not args.json:
        out.write(timing + "\n")
    return 0


def _scenario_files() -> List[str]:
    """Scenario JSON names under the scenario directory, sorted.

    The directory defaults to ``benchmarks/scenarios`` relative to the
    working directory (the repo layout); ``$REPRO_SCENARIO_DIR``
    overrides it. Missing directory -> empty list, not an error.
    """
    root = os.environ.get("REPRO_SCENARIO_DIR",
                          os.path.join("benchmarks", "scenarios"))
    try:
        names = os.listdir(root)
    except OSError:
        return []
    return sorted(os.path.splitext(n)[0] for n in names
                  if n.endswith(".json"))


def _cmd_list(args, out) -> int:
    sections = {
        "cc": "congestion controls",
        "executor": "executors",
        "medium": "media",
        "device": "devices",
        "cpu-config": "CPU configs",
        "probe": "probes",
        "scenario": "scenarios",
        "kernel": "kernels",
    }
    registries = all_registries()
    scenarios = _scenario_files()

    def _kernel_entry(kernel) -> str:
        """``compiled (gcc ...) [loop+timers+...]`` or an unavailable note."""
        if not kernel.available:
            return f"{kernel.name} (unavailable: {kernel.why_unavailable})"
        entry = kernel.describe()
        components = compiled_components(kernel)
        if components:
            entry += f" [{'+'.join(components)}]"
        return entry

    if args.json:
        payload = {key: list(reg.names()) for key, reg in registries.items()}
        payload["scenario"] = scenarios
        payload["kernel"] = {
            kernel.name: {
                "available": kernel.available,
                "compiler": kernel.compiler,
                "compiled_components": list(compiled_components(kernel)),
            }
            for _, kernel in KERNELS.items()
        }
        json.dump(payload, out, indent=2)
        out.write("\n")
        return 0
    width = max(len(title) for title in sections.values())
    for key, reg in registries.items():
        title = sections.get(key, key)
        out.write(f"{title.rjust(width)}: {', '.join(reg.names())}\n")
    if scenarios:
        out.write(f"{'scenarios'.rjust(width)}: {', '.join(scenarios)}\n")
    kernel_entries = ", ".join(
        _kernel_entry(kernel) for _, kernel in KERNELS.items()
    )
    out.write(f"{'kernels'.rjust(width)}: {kernel_entries}\n")
    return 0


def _cmd_cache(args, out) -> int:
    cache = ResultCache()
    if args.cache_command == "path":
        out.write(cache.root + "\n")
        return 0
    if args.cache_command == "stats":
        stats = cache.stats()
        if args.json:
            json.dump(stats.to_dict(), out, indent=2)
            out.write("\n")
        else:
            out.write(stats.render() + "\n")
        return 0
    assert args.cache_command == "clear"
    removed = cache.clear(stale_only=args.stale)
    what = "stale cache entries" if args.stale else "cache entries"
    out.write(f"removed {removed} {what} under {cache.root}\n")
    return 0


def _when(ts) -> str:
    """Record timestamp as local wall-clock text ('-' when absent)."""
    try:
        return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(float(ts)))
    except (TypeError, ValueError, OverflowError, OSError):
        return "-"


def _runs_list_row(record: dict) -> dict:
    """One 'repro runs list' table row from a ledger record."""
    kind = record.get("kind", "?")
    if kind == "grid":
        points = record.get("points", [])
        count = len(points)
        first = points[0].get("label", "") if points else ""
        label = f"{first} (+{count - 1})" if count > 1 else first
    else:
        count = 1
        label = record.get("label", "")
    cache = record.get("cache") or {}
    if cache.get("used"):
        cache_col = f"{cache.get('hits', 0)}h/{cache.get('misses', 0)}m"
    else:
        cache_col = "-"
    row = {
        "id": str(record.get("id", ""))[:16],
        "when": _when(record.get("ts")),
        "kind": kind,
        "points": count,
        "kernel": record.get("kernel", "?"),
        "cache": cache_col,
        "events/sec": f"{record.get('events_per_sec', 0):,.0f}",
        "label": label,
    }
    errors = record.get("errors", 0)
    if errors:
        row["label"] += f" [{errors} errors]"
    return row


def _cmd_runs(args, out) -> int:
    # Constructed directly (not via resolve_ledger) so reads work even
    # under REPRO_LEDGER=off — the kill-switch gates writes, not
    # inspection, mirroring how 'repro cache stats' always works.
    ledger = RunLedger()
    if args.runs_command == "path":
        out.write(ledger.path + "\n")
        return 0
    if args.runs_command == "list":
        records = ledger.records(limit=args.limit, kind=args.kind)
        if args.json:
            json.dump(records, out, indent=2)
            out.write("\n")
            return 0
        if not records:
            out.write(f"no ledger records under {ledger.path}\n")
            return 0
        rows = [_runs_list_row(r) for r in records]
        headers = list(rows[0])
        out.write(render_table(
            headers, [[row[h] for h in headers] for row in rows]) + "\n")
        return 0
    if args.runs_command == "merge":
        return _cmd_runs_merge(args, out)
    if args.runs_command == "prune":
        if args.keep < 0:
            sys.stderr.write(f"error: --keep must be >= 0, got {args.keep}\n")
            return 2
        removed = ledger.prune(keep=args.keep)
        out.write(f"removed {removed} ledger records "
                  f"(kept newest {args.keep}) under {ledger.root}\n")
        return 0
    if args.runs_command == "show":
        try:
            record = ledger.find(args.run_id)
        except (KeyError, ValueError) as exc:
            sys.stderr.write(f"error: {exc}\n")
            return 2
        json.dump(record, out, indent=2)
        out.write("\n")
        return 0
    assert args.runs_command == "diff"
    try:
        rec_a = ledger.find(args.run_a)
        rec_b = ledger.find(args.run_b)
    except (KeyError, ValueError) as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 2
    rows, code = diff_records(rec_a, rec_b, tol=args.tol)
    if args.json:
        json.dump({"differing": rows, "exit_code": code}, out, indent=2)
        out.write("\n")
        return code
    if code == 2:
        sys.stderr.write(
            f"error: records {rec_a.get('id')} and {rec_b.get('id')} "
            "share no spec digests (nothing comparable)\n")
        return code
    if not rows:
        out.write(f"records match (all shared metrics within "
                  f"tol={args.tol:g})\n")
        return code
    table_rows = [[r["digest"][:12], r["metric"],
                   "-" if r["a"] is None else f"{r['a']:g}",
                   "-" if r["b"] is None else f"{r['b']:g}",
                   "-" if r["delta"] is None else f"{r['delta']:+g}"]
                  for r in rows]
    out.write(render_table(["digest", "metric", "a", "b", "delta"],
                           table_rows) + "\n")
    out.write(f"{len(rows)} metric(s) differ beyond tol={args.tol:g}\n")
    return code


def _cmd_perf(args, out) -> int:
    from .obs import perf_trend

    history = perf_trend.load_history(args.history)
    if not history:
        sys.stderr.write(
            f"error: no history entries in {args.history!r} "
            "(benchmarks/perf_harness.py appends one per invocation)\n")
        return 2
    if args.json:
        json.dump(history, out, indent=2)
        out.write("\n")
    else:
        out.write(perf_trend.render_trend(history) + "\n")
    if args.check_regression is None:
        return 0
    latest = history[-1]
    prior = perf_trend.comparable_entries(
        history[:-1], kernel=latest.get("kernel"),
        quick=bool(latest.get("quick")), cpu_count=latest.get("cpu_count"))
    if not prior:
        out.write("# regression gate: no earlier comparable entries "
                  "(kernel/quick/cpus must match); nothing to gate\n")
        return 0
    baseline = perf_trend.median_baseline(prior)
    current = {name: float(value)
               for name, value in latest.get("events_per_sec", {}).items()}
    regressed = perf_trend.check_trend(current, baseline,
                                       args.check_regression)
    if regressed:
        for name, gain in regressed:
            out.write(f"# REGRESSION {name}: {gain:+.1%} vs the median of "
                      f"{len(prior)} comparable entries "
                      f"(budget -{args.check_regression:g}%)\n")
        return 1
    out.write(f"# regression gate: ok — {len(current)} point(s) within "
              f"{args.check_regression:g}% of the {len(prior)}-entry "
              "median\n")
    return 0


def _single_run_agg(spec, result) -> ReplicatedResult:
    """Wrap one grid result as a 1-run aggregate for the table renderer."""
    stats = RunSet()
    stats.add_run(result.scalar_metrics())
    return ReplicatedResult(spec=spec, runs=[result], stats=stats)


def _cmd_sweep_scenario(args, out) -> int:
    specs = expand_scenario(load_scenario_doc(args.scenario))
    if not specs:
        sys.stderr.write(
            f"error: scenario {args.scenario!r} expands to no points\n"
        )
        return 2
    if not args.distributed:
        # Same semantics as 'repro grid': one box, the process pool.
        args.runs = 1
        aggs, timing = _run_specs(args, specs)
        _emit([_result_dict(agg) for agg in aggs], args.json, out)
        if not args.json:
            out.write(timing + "\n")
        return 0
    if args.no_cache:
        sys.stderr.write(
            "error: --no-cache is incompatible with --distributed — the "
            "shared result cache is how workers return results\n"
        )
        return 2
    name = os.path.splitext(os.path.basename(args.scenario))[0]
    queue_dir = args.queue or default_queue_dir(name, grid_digest(specs))
    monitor = None
    if args.live or args.metrics_out or args.progress_out:
        monitor = DistMonitor(len(specs),
                              stream=sys.stderr if args.live else None)
    try:
        report = run_distributed(
            specs, queue_dir,
            chunk=args.chunk,
            workers=args.workers,
            worker_jobs=args.jobs,
            lease_s=args.lease_timeout,
            wait_timeout_s=args.wait_timeout,
            monitor=monitor,
            name=name,
        )
    except (ValueError, DistributedSweepError) as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 2
    _export_monitor(args, monitor)
    for notice in report.notices:
        sys.stderr.write(f"note: {notice}\n")
    aggs = [_single_run_agg(spec, result)
            for spec, result in zip(specs, report.results)]
    _emit([_result_dict(agg) for agg in aggs], args.json, out)
    if not args.json:
        line = f"# queue={queue_dir} " + report.summary_line()
        if report.run_id:
            line += f" run={report.run_id}"
        out.write(line + "\n")
    return 0


def _cmd_worker(args, out) -> int:
    try:
        report = run_worker(
            args.pull,
            jobs=args.jobs,
            lease_s=args.lease_timeout,
            idle_timeout_s=args.idle_timeout,
            poll_s=args.poll,
            max_chunks=args.max_chunks,
            cache_root=args.cache_dir,
        )
    except (ValueError, WorkerError) as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 2
    if args.json:
        json.dump({
            "worker_id": report.worker_id,
            "chunks": report.chunks,
            "points": report.points,
            "computed": report.computed,
            "cached": report.cached,
            "errors": report.errors,
            "events": report.events,
            "wall_s": report.wall_s,
            "events_per_sec": report.events_per_sec,
            "exit_reason": report.exit_reason,
        }, out, indent=2)
        out.write("\n")
    else:
        out.write(report.summary_line() + "\n")
    return 0


def _cmd_runs_merge(args, out) -> int:
    # A queue directory is accepted directly: its ledgers/ subdirectory
    # holds one shard per worker, which is exactly what needs merging
    # after a distributed sweep.
    sources: List[str] = []
    for source in args.sources:
        ledgers_sub = os.path.join(source, "ledgers")
        if os.path.isdir(ledgers_sub):
            shards = sorted(
                os.path.join(ledgers_sub, n) for n in os.listdir(ledgers_sub)
                if os.path.isdir(os.path.join(ledgers_sub, n)))
            if not shards:
                sys.stderr.write(f"note: queue {source!r} has no worker "
                                 "ledgers to merge\n")
            sources.extend(shards)
        else:
            sources.append(source)
    dest, added = merge_ledgers(sources, dest=args.into)
    out.write(f"merged {added} new record(s) from {len(sources)} "
              f"ledger(s) into {dest.path}\n")
    return 0


def _cmd_compare(args, out) -> int:
    specs = [
        _spec_from_args(args, cc=cc, pacing_stride=args.stride)
        for cc in ("cubic", "bbr")
    ]
    aggs, timing = _run_specs(args, specs)
    rows = [_result_dict(agg) for agg in aggs]
    _emit(rows, args.json, out)
    if not args.json:
        cubic, bbr = rows[0], rows[1]
        gap = 100 * (1 - bbr["goodput_mbps"] / max(1e-9, cubic["goodput_mbps"]))
        out.write(f"\nBBR vs Cubic goodput gap: {gap:.1f}%\n")
        out.write(timing + "\n")
    return 0


def _cmd_sweep(args, out) -> int:
    spec = _spec_from_args(args, cc="bbr")
    jobs = resolve_jobs(args.jobs)
    monitor = _make_monitor(args, len(args.strides) * args.runs)
    start = time.perf_counter()
    results = sweep_strides(spec, strides=args.strides, runs=args.runs,
                            jobs=jobs, cache=False if args.no_cache else None,
                            chunk=args.chunk, monitor=monitor)
    wall = time.perf_counter() - start
    _export_monitor(args, monitor)
    rows = []
    for stride in args.strides:
        agg = results[float(stride)]
        row = _result_dict(agg)
        row = {"stride": f"{stride:g}x", **row}
        del row["label"]
        rows.append(row)
    _emit(rows, args.json, out)
    if not args.json:
        out.write(_timing_line(list(results.values()), jobs, wall) + "\n")
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if getattr(args, "kernel", None):
        # Exported (not just resolved here) so grid/replication worker
        # processes inherit the same backend selection.
        os.environ[KERNEL_ENV_VAR] = args.kernel
        # Resolve once up front: if the compiled extension is missing
        # this prints the fallback notice before any output, not midway
        # through a grid.
        resolve_kernel(args.kernel)
    if args.command == "run":
        return _cmd_run(args, out)
    if args.command == "grid":
        return _cmd_grid(args, out)
    if args.command == "compare":
        return _cmd_compare(args, out)
    if args.command == "sweep":
        return _cmd_sweep_scenario(args, out)
    if args.command == "worker":
        return _cmd_worker(args, out)
    if args.command == "sweep-strides":
        return _cmd_sweep(args, out)
    if args.command == "report":
        return _cmd_report(args, out)
    if args.command == "cache":
        return _cmd_cache(args, out)
    if args.command == "runs":
        return _cmd_runs(args, out)
    if args.command == "perf":
        return _cmd_perf(args, out)
    if args.command == "list":
        return _cmd_list(args, out)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
