"""Content-addressed on-disk cache for experiment results.

Every grid point in this repository is a fully deterministic simulation:
the :class:`~repro.core.experiment.ExperimentSpec` (which includes the
seed) plus the simulator source code completely determine the
:class:`~repro.core.experiment.ExperimentResult`. That makes results
perfect cache material — re-rendering a figure after touching only the
CLI or the docs should not re-run a single simulation.

An entry is addressed by two hashes:

* the **spec digest** — SHA-256 of the canonical wire-format JSON
  (:func:`repro.core.scenario.canonical_spec_json`), so any spec
  mutation misses;
* the **code fingerprint** — SHA-256 over every ``*.py`` and ``*.c``
  file under ``src/repro/``, so any simulator change invalidates the
  whole cache version at once (entries from older code stay on disk as
  *stale* versions until ``repro cache clear``). The default fingerprint
  additionally folds in the active simulation-kernel backend
  (:func:`kernel_fingerprint`): pure and compiled kernels are verified
  bit-identical, but a defect in one must never poison the other's
  cached results.

Entries live under ``~/.cache/repro-bbr/<fingerprint>/<digest>.json``
(root overridable via ``REPRO_CACHE_DIR``) and store the full result —
scalar metrics, per-flow goodputs, and any probe time series — as
compact JSON. JSON round-trips Python ints exactly and floats via
``repr``, so a cache hit reproduces the fresh run's metrics
bit-identically. Writes are atomic (``tempfile`` + ``os.replace``), so
concurrent grid runners can share one cache directory safely; corrupt or
truncated entries read back as misses.

``REPRO_CACHE=off`` (also ``0``/``no``/``false``) disables the default
cache; explicit :class:`ResultCache` instances passed to the runner are
always honoured.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Union

from .core.experiment import ExperimentResult, ExperimentSpec
from .core.scenario import spec_digest, spec_from_dict, spec_to_dict
from .obs.series import TimeSeries

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "CACHE_ENV_VAR",
    "CacheStats",
    "ResultCache",
    "cache_enabled",
    "code_fingerprint",
    "default_cache_dir",
    "kernel_fingerprint",
    "resolve_cache",
    "result_from_dict",
    "result_to_dict",
]

#: environment variable overriding the cache root directory
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"
#: environment variable disabling the default cache ("off"/"0"/"no"/"false")
CACHE_ENV_VAR = "REPRO_CACHE"

_DISABLED_VALUES = ("0", "off", "no", "false")

#: fingerprint directories use this many hex digits (collision-safe at
#: the "versions of one codebase" scale while keeping paths short)
_FINGERPRINT_DIRLEN = 16

#: subdirectories of the cache root that belong to other subsystems and
#: must never be scanned, counted, or cleared as cache versions (the run
#: ledger of :mod:`repro.obs.ledger` lives beside the cache by default)
_RESERVED_SUBDIRS = ("ledger",)

#: result fields that need structured (non-scalar) serialization
_RESULT_SPECIAL_FIELDS = ("spec", "per_flow_goodput_mbps", "timeseries")

_code_fingerprint: Optional[str] = None


def default_cache_dir() -> str:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-bbr``."""
    env = os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-bbr")


def cache_enabled() -> bool:
    """Whether the default (env-configured) cache is enabled."""
    return os.environ.get(CACHE_ENV_VAR, "").strip().lower() not in _DISABLED_VALUES


def code_fingerprint() -> str:
    """SHA-256 over the source of the installed ``repro`` package.

    Files are hashed in sorted relative-path order (paths normalized to
    ``/``), path and content both, so the fingerprint is stable across
    platforms and changes whenever any simulator source changes — which
    is exactly when cached results may no longer be reproducible.
    Computed once per process.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        root = os.path.dirname(os.path.abspath(__file__))
        paths = []
        for dirpath, _dirnames, filenames in os.walk(root):
            for filename in filenames:
                if filename.endswith((".py", ".c")):
                    full = os.path.join(dirpath, filename)
                    rel = os.path.relpath(full, root).replace(os.sep, "/")
                    paths.append((rel, full))
        digest = hashlib.sha256()
        for rel, full in sorted(paths):
            digest.update(rel.encode("utf-8"))
            digest.update(b"\0")
            with open(full, "rb") as fh:
                digest.update(fh.read())
            digest.update(b"\0")
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


def kernel_fingerprint(kernel_name: Optional[str] = None) -> str:
    """The code fingerprint specialized to a simulation-kernel backend.

    The pure kernel (the behavioral reference) keeps the plain
    :func:`code_fingerprint`, so existing caches stay valid; any other
    backend gets a derived version. *kernel_name* defaults to the
    backend the environment currently selects.
    """
    if kernel_name is None:
        from .kernel import resolve_kernel

        kernel_name = resolve_kernel().name
    base = code_fingerprint()
    if kernel_name == "pure":
        return base
    return hashlib.sha256(
        f"{base}:kernel={kernel_name}".encode("utf-8")
    ).hexdigest()


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """Serialize a result to a plain JSON-compatible dict (exact round trip).

    Scalar fields are stored verbatim under ``metrics`` (ints stay ints,
    floats stay floats), the spec in its wire format, and probe series
    via :meth:`~repro.obs.series.TimeSeries.to_dict`.
    """
    metrics: Dict[str, Any] = {}
    for f in fields(ExperimentResult):
        if f.name not in _RESULT_SPECIAL_FIELDS:
            metrics[f.name] = getattr(result, f.name)
    out: Dict[str, Any] = {
        "spec": spec_to_dict(result.spec),
        "per_flow_goodput_mbps": list(result.per_flow_goodput_mbps),
        "metrics": metrics,
    }
    if result.timeseries:
        out["timeseries"] = {
            name: ts.to_dict() for name, ts in result.timeseries.items()
        }
    return out


def result_from_dict(data: Dict[str, Any]) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_dict`.

    Raises ``ValueError`` on any schema mismatch (an entry written by a
    different result layout), which the cache treats as a miss.
    """
    if not isinstance(data, dict):
        raise ValueError(f"cache entry must be a mapping, got {type(data).__name__}")
    metrics = data.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError("cache entry has no metrics mapping")
    expected = {
        f.name for f in fields(ExperimentResult)
        if f.name not in _RESULT_SPECIAL_FIELDS
    }
    if set(metrics) != expected:
        raise ValueError(
            f"cache entry metric fields {sorted(metrics)} do not match "
            f"the current ExperimentResult schema {sorted(expected)}"
        )
    timeseries = {
        name: TimeSeries.from_dict(payload)
        for name, payload in data.get("timeseries", {}).items()
    }
    return ExperimentResult(
        spec=spec_from_dict(data["spec"]),
        per_flow_goodput_mbps=list(data["per_flow_goodput_mbps"]),
        timeseries=timeseries,
        **metrics,
    )


@dataclass
class CacheStats:
    """A snapshot of the cache directory's contents."""

    path: str
    fingerprint: str
    #: entries usable by the current code version
    current_entries: int
    #: entries left behind by older code fingerprints
    stale_entries: int
    #: total on-disk size of all entries, bytes
    size_bytes: int
    #: distinct code fingerprints with at least one entry
    versions: int

    @property
    def entries(self) -> int:
        """Total entries across all code versions."""
        return self.current_entries + self.stale_entries

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form for ``repro cache stats --json``."""
        return {
            "path": self.path,
            "fingerprint": self.fingerprint,
            "entries": self.entries,
            "current_entries": self.current_entries,
            "stale_entries": self.stale_entries,
            "size_bytes": self.size_bytes,
            "versions": self.versions,
        }

    def render(self) -> str:
        """Human-readable multi-line summary."""
        return (
            f"cache path : {self.path}\n"
            f"fingerprint: {self.fingerprint}\n"
            f"entries    : {self.entries} "
            f"({self.current_entries} current, {self.stale_entries} stale "
            f"across {self.versions} code version(s))\n"
            f"size       : {self.size_bytes / 1024:.1f} KiB"
        )


class ResultCache:
    """Content-addressed experiment result store on the local filesystem."""

    def __init__(self, root: Optional[str] = None,
                 fingerprint: Optional[str] = None):
        self.root = os.path.abspath(root or default_cache_dir())
        self.fingerprint = fingerprint or kernel_fingerprint()

    @property
    def version_dir(self) -> str:
        """The subdirectory holding entries for the current code version."""
        return os.path.join(self.root, self.fingerprint[:_FINGERPRINT_DIRLEN])

    def entry_path(self, spec: ExperimentSpec) -> str:
        """Where *spec*'s result lives (whether or not it exists yet)."""
        return os.path.join(self.version_dir, spec_digest(spec) + ".json")

    def get(self, spec: ExperimentSpec) -> Optional[ExperimentResult]:
        """The cached result for *spec*, or ``None`` on a miss.

        Unreadable or schema-mismatched entries (concurrent writer
        races, older layouts) are treated as misses, never errors.
        """
        try:
            with open(self.entry_path(spec), encoding="utf-8") as fh:
                return result_from_dict(json.load(fh))
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def contains(self, spec: ExperimentSpec) -> bool:
        """Whether an entry for *spec* exists, without deserializing it.

        A cheap existence probe for coordination layers that only need
        to know "is this point done?" (the distributed sweep asks this
        per point when assembling and verifying). A ``True`` here can
        still read back as a miss if the entry is corrupt — callers that
        need the result must still :meth:`get` it.
        """
        return os.path.exists(self.entry_path(spec))

    def put(self, spec: ExperimentSpec, result: ExperimentResult) -> bool:
        """Store *result* under *spec*'s address; returns success.

        The write is atomic — the payload lands in a temp file in the
        destination directory and is ``os.replace``d into place — so
        parallel grid runners sharing the cache can never observe a
        half-written entry. Failures (read-only filesystem, disk full)
        are swallowed: a cache that cannot persist must not fail runs.
        """
        payload = json.dumps(result_to_dict(result), separators=(",", ":"))
        path = self.entry_path(spec)
        try:
            os.makedirs(self.version_dir, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.version_dir, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(payload)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True

    def _version_dirs(self) -> List[str]:
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return []
        return [
            os.path.join(self.root, name)
            for name in names
            if name not in _RESERVED_SUBDIRS
            and os.path.isdir(os.path.join(self.root, name))
        ]

    def _entries(self, version_dir: str) -> List[str]:
        try:
            names = sorted(os.listdir(version_dir))
        except OSError:
            return []
        return [
            os.path.join(version_dir, name)
            for name in names
            if name.endswith(".json") and not name.startswith(".tmp-")
        ]

    def stats(self) -> CacheStats:
        """Count entries and bytes, split current vs stale code versions."""
        current = stale = size = versions = 0
        current_dir = self.version_dir
        for version_dir in self._version_dirs():
            entries = self._entries(version_dir)
            if not entries:
                continue
            versions += 1
            for path in entries:
                try:
                    size += os.path.getsize(path)
                except OSError:
                    continue
                if version_dir == current_dir:
                    current += 1
                else:
                    stale += 1
        return CacheStats(
            path=self.root,
            fingerprint=self.fingerprint,
            current_entries=current,
            stale_entries=stale,
            size_bytes=size,
            versions=versions,
        )

    def clear(self, stale_only: bool = False) -> int:
        """Delete entries (all versions, or only stale ones); returns count.

        Emptied version directories are removed too; the cache root is
        left in place.
        """
        removed = 0
        current_dir = self.version_dir
        for version_dir in self._version_dirs():
            if stale_only and version_dir == current_dir:
                continue
            for path in self._entries(version_dir):
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    continue
            try:
                os.rmdir(version_dir)
            except OSError:
                pass  # stray temp files or concurrent writers; leave it
        return removed


def resolve_cache(
    cache: Union[None, bool, ResultCache] = None,
) -> Optional[ResultCache]:
    """Resolve the runner's ``cache`` argument to a store (or ``None``).

    ``None`` means *default*: a cache in the env-configured location,
    unless ``REPRO_CACHE`` disables it. ``False`` forces caching off,
    ``True`` forces the default cache on regardless of the environment,
    and an explicit :class:`ResultCache` is used as-is.
    """
    if isinstance(cache, ResultCache):
        return cache
    if cache is False:
        return None
    if cache is None and not cache_enabled():
        return None
    return ResultCache()
