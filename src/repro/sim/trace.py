"""Lightweight structured tracing for simulations.

Components emit ``(time, source, event, fields)`` records through a
:class:`Tracer`; tests and debugging sessions subscribe or dump them. The
default tracer is disabled and costs one attribute check per emit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

__all__ = ["TraceRecord", "Tracer", "NULL_TRACER"]


@dataclass
class TraceRecord:
    """One trace event."""

    time_ns: int
    source: str
    event: str
    fields: Dict[str, Any]

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time_ns / 1e6:10.3f}ms] {self.source:>16s} {self.event} {kv}"


class Tracer:
    """Collects :class:`TraceRecord` objects and fans them out to sinks."""

    def __init__(self, enabled: bool = True, keep: bool = True):
        self.enabled = enabled
        self.keep = keep
        self.records: List[TraceRecord] = []
        self._sinks: List[Callable[[TraceRecord], None]] = []

    def emit(self, time_ns: int, source: str, event: str, **fields: Any) -> None:
        """Record an event if tracing is enabled."""
        if not self.enabled:
            return
        record = TraceRecord(time_ns, source, event, fields)
        if self.keep:
            self.records.append(record)
        for sink in self._sinks:
            sink(record)

    def subscribe(self, sink: Callable[[TraceRecord], None]) -> None:
        """Add a callable invoked for every emitted record."""
        self._sinks.append(sink)

    def filter(self, source: Optional[str] = None, event: Optional[str] = None) -> List[TraceRecord]:
        """Return kept records matching the given source/event names."""
        out = self.records
        if source is not None:
            out = [r for r in out if r.source == source]
        if event is not None:
            out = [r for r in out if r.event == event]
        return list(out)

    def clear(self) -> None:
        """Drop all kept records."""
        self.records.clear()


#: A shared disabled tracer for components constructed without one.
NULL_TRACER = Tracer(enabled=False, keep=False)
