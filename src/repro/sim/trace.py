"""Lightweight structured tracing for simulations.

Components emit ``(time, source, event, fields)`` records through a
:class:`Tracer`; tests, debugging sessions, and the exporters in
:mod:`repro.obs.trace_export` consume them. The default tracer is
disabled and costs one attribute check per call site (emitters use the
``if tracer.enabled: tracer.emit(...)`` idiom so kwargs are never even
built when tracing is off).

Kept records live in a bounded ring buffer (``max_records``): long runs
keep the most recent window instead of growing without bound, and
:attr:`Tracer.dropped_records` counts what the ring evicted. Category
filters (``categories=("cc-*", "little*")``, glob patterns matched
against the record's *source*) restrict collection to the components of
interest; match results are cached per source name.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence

__all__ = ["TraceRecord", "Tracer", "NULL_TRACER"]

#: default ring-buffer capacity; ~100 bytes/record keeps this ~tens of MB
DEFAULT_MAX_RECORDS = 200_000


@dataclass
class TraceRecord:
    """One trace event."""

    time_ns: int
    source: str
    event: str
    fields: Dict[str, Any]

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time_ns / 1e6:10.3f}ms] {self.source:>16s} {self.event} {kv}"


class Tracer:
    """Collects :class:`TraceRecord` objects and fans them out to sinks."""

    def __init__(
        self,
        enabled: bool = True,
        keep: bool = True,
        max_records: Optional[int] = DEFAULT_MAX_RECORDS,
        categories: Sequence[str] = (),
    ):
        self.enabled = enabled
        self.keep = keep
        self.max_records = max_records
        #: glob patterns matched against record sources; empty = keep all
        self.categories = tuple(categories)
        #: records evicted from the full ring (oldest-first)
        self.dropped_records = 0
        self._ring: Deque[TraceRecord] = deque(maxlen=max_records)
        self._sinks: List[Callable[[TraceRecord], None]] = []
        self._category_hits: Dict[str, bool] = {}

    @property
    def records(self) -> List[TraceRecord]:
        """Kept records, oldest first (a copy of the ring)."""
        return list(self._ring)

    def accepts(self, source: str) -> bool:
        """True if *source* passes the category filter (cached per name)."""
        if not self.categories:
            return True
        hit = self._category_hits.get(source)
        if hit is None:
            hit = any(fnmatchcase(source, pattern) for pattern in self.categories)
            self._category_hits[source] = hit
        return hit

    def emit(self, time_ns: int, source: str, event: str, **fields: Any) -> None:
        """Record an event if tracing is enabled and the source matches."""
        if not self.enabled:
            return
        if self.categories and not self.accepts(source):
            return
        record = TraceRecord(time_ns, source, event, fields)
        if self.keep:
            ring = self._ring
            if ring.maxlen is not None and len(ring) == ring.maxlen:
                self.dropped_records += 1
            ring.append(record)
        for sink in self._sinks:
            sink(record)

    def subscribe(self, sink: Callable[[TraceRecord], None]) -> None:
        """Add a callable invoked for every emitted record."""
        self._sinks.append(sink)

    def filter(self, source: Optional[str] = None, event: Optional[str] = None) -> List[TraceRecord]:
        """Return kept records matching the given source/event names."""
        out: List[TraceRecord] = list(self._ring)
        if source is not None:
            out = [r for r in out if r.source == source]
        if event is not None:
            out = [r for r in out if r.event == event]
        return out

    def clear(self) -> None:
        """Drop all kept records (the eviction counter is kept)."""
        self._ring.clear()


class _NullTracer(Tracer):
    """The process-wide disabled tracer.

    One instance is shared by every component constructed without an
    explicit tracer, so enabling it would silently start tracing every
    simulation in the process. The setter refuses; build a private
    ``Tracer()`` and pass it to the components instead.
    """

    def __init__(self) -> None:
        super().__init__(enabled=False, keep=False, max_records=None)

    @property
    def enabled(self) -> bool:
        return False

    @enabled.setter
    def enabled(self, value: bool) -> None:
        if value:
            raise RuntimeError(
                "NULL_TRACER is shared by every traced component in the "
                "process; enabling it would trace everything. Construct a "
                "Tracer() and pass it to the components you care about."
            )


#: A shared disabled tracer for components constructed without one.
NULL_TRACER: Tracer = _NullTracer()
