"""Discrete-event simulation kernel.

Public surface:

* :class:`~repro.sim.engine.EventLoop` — the clock and scheduler,
* :class:`~repro.sim.engine.Event` — a cancellable scheduled callback,
* :class:`~repro.sim.timer.Timer` / :class:`~repro.sim.timer.PeriodicTimer`
  — hrtimer-style re-armable timers,
* :class:`~repro.sim.rng.RngStreams` — named deterministic RNG streams,
* :class:`~repro.sim.trace.Tracer` — structured tracing.
"""

from .engine import Event, EventLoop, SimulationError
from .rng import RngStreams
from .timer import PeriodicTimer, Timer
from .trace import NULL_TRACER, TraceRecord, Tracer

__all__ = [
    "Event",
    "EventLoop",
    "SimulationError",
    "RngStreams",
    "Timer",
    "PeriodicTimer",
    "Tracer",
    "TraceRecord",
    "NULL_TRACER",
]
