"""Deterministic discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`. Three design
rules make every simulation in this package reproducible bit-for-bit:

1. time is an integer nanosecond counter (see :mod:`repro.units`);
2. events scheduled for the same instant fire in insertion order (a
   monotonically increasing sequence number breaks heap ties);
3. all randomness flows through named, seeded streams
   (:class:`repro.sim.rng.RngStreams`), never the global ``random`` module.

Cancellation is lazy (an :class:`Event` is flagged and skipped when it
reaches the top of the heap), which keeps ``cancel`` O(1). The loop counts
cancelled entries still buried in the heap and compacts when they dominate,
so workloads that re-arm timers millions of times (pacing, RTO) keep the
heap proportional to the number of *live* events.

A hierarchical timer wheel (:mod:`repro.sim.wheel`, enabled by default)
sits in front of the heap: near-future events go into fixed-width ns
buckets with O(1) insert and *true* O(1) cancel (a dict delete — no
lazy-deletion debt at all), while far-future and behind-cursor events
fall back to the heap. Dispatch merges both sources by the same
``(when, seq)`` key, so rule 2 holds bit-for-bit whether or not the wheel
is enabled (``EventLoop(wheel=False)`` gives the pure-heap loop).
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from .wheel import _INF as _WHEEL_INF, READY as _READY, TimerWheel

__all__ = ["Event", "EventLoop", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the engine is used inconsistently.

    Examples: scheduling in the past, running a loop that was already
    stopped, or cancelling an event twice.
    """


# Heap entries are plain (when, seq, event) tuples: the monotonically
# increasing seq breaks time ties deterministically and guarantees the
# Event object itself is never compared (tuple comparison short-circuits).
_HeapEntry = Tuple[int, int, "Event"]

# Compaction policy: rebuild the heap when at least _COMPACT_MIN cancelled
# entries are buried in it AND they make up at least half of it. The floor
# keeps small simulations from compacting over and over; the fraction
# bounds heap size at ~2x the live event count.
_COMPACT_MIN = 512

# Wheel routing cutoff: schedules at least this far out go to the timer
# wheel, closer ones to the heap. Profiling the canonical scenarios shows
# sub-millisecond delays are fire-path work (serialization, CPU work
# items, pacing releases) that almost always runs — C heapq beats any
# Python-level bucketing for those — while delays past ~2 ms are
# timer-class arms (RTO, delayed ACK, PROBE_RTT) that are nearly always
# cancelled and re-armed, exactly where the wheel's true-O(1) cancel
# wins. The cutoff is a pure routing heuristic: dispatch merges both
# sources by (when, seq), so it can never affect firing order.
_WHEEL_MIN_DELAY_NS = 1 << 21


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`EventLoop.call_at` /
    :meth:`EventLoop.call_after` and can be cancelled. A heap-resident
    event stays in the heap when cancelled and is skipped when popped
    (lazy deletion); a wheel-resident event is deleted from its bucket
    immediately. Both paths keep cancellation O(1).
    """

    __slots__ = (
        "when", "callback", "args", "cancelled", "_fired", "_loop",
        "_seq", "_wslot",
    )

    def __init__(
        self,
        when: int,
        callback: Callable[..., None],
        args: tuple,
        loop: Optional["EventLoop"] = None,
    ):
        self.when = when
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._fired = False
        self._loop = loop
        #: scheduling sequence number (the (when, seq) tie-break key)
        self._seq = 0
        #: where the event lives: None = heap, a bucket dict = timer
        #: wheel, the READY sentinel = wheel's drained ready list
        self._wslot = None

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._fired:
            return
        slot = self._wslot
        if slot is None:
            # Heap-resident: lazy deletion. Only events still buried in
            # the heap count toward compaction.
            if self._loop is not None:
                self._loop._note_cancelled()
        elif slot is _READY:
            # Drained into the wheel's ready list: skipped at dispatch.
            self._loop._wheel._ready_cancelled += 1
        else:
            # Bucketed in the wheel: a true O(1) delete, no debt left.
            del slot[self._seq]
            self._wslot = None
            self._loop._wheel._count -= 1

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not cancelled/fired."""
        return not self.cancelled and not self._fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self._fired else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.when} {name} {state}>"


class EventLoop:
    """The simulation clock and scheduler.

    A single :class:`EventLoop` instance is shared by every component of a
    simulated testbed (CPU model, links, TCP stacks, applications). Typical
    use::

        loop = EventLoop()
        loop.call_after(milliseconds(5), hello)
        loop.run(until=seconds(1))

    ``wheel=False`` disables the timer wheel and schedules everything on
    the heap — same event stream, useful as the determinism reference.
    """

    def __init__(self, wheel: bool = True) -> None:
        self._now: int = 0
        self._heap: List[_HeapEntry] = []
        #: O(1)-insert/cancel front-end for near-future events
        self._wheel: Optional[TimerWheel] = TimerWheel() if wheel else None
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0
        #: cancelled events still sitting in the heap (lazy deletion debt)
        self._cancelled_in_heap = 0
        #: heap rebuilds triggered by cancellation debt (for tests/stats)
        self.compactions = 0
        #: arbitrary per-simulation scratch space (used by tracing helpers)
        self.context: Dict[str, Any] = {}
        #: opt-in profiler (see :meth:`set_profiler`); None = free dispatch
        self._profiler = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulated time in integer nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Count of callbacks that have fired (excludes cancelled events)."""
        return self._events_processed

    # -- scheduling --------------------------------------------------------

    def call_at(self, when: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule *callback(*args)* at absolute time *when* (ns).

        *when* may equal :attr:`now` (the event fires after currently
        pending same-time events) but may not be in the past.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} before now={self._now}"
            )
        # Event construction is spelled out (not Event(...)) to skip one
        # Python call frame on the hottest allocation site in the kernel.
        event = Event.__new__(Event)
        event.when = when
        event.callback = callback
        event.args = args
        event.cancelled = False
        event._fired = False
        event._loop = self
        event._wslot = None
        self._seq = seq = self._seq + 1
        event._seq = seq
        if when - self._now >= _WHEEL_MIN_DELAY_NS:
            wheel = self._wheel
            if wheel is not None and wheel.insert(when, seq, event, self._now):
                return event
        heapq.heappush(self._heap, (when, seq, event))
        return event

    def call_after(self, delay: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule *callback(*args)* after *delay* ns (must be >= 0)."""
        # Folded fast path: delay >= 0 implies now + delay >= now, so the
        # past-scheduling guard of call_at is subsumed by the delay check
        # and the push happens without a second call.
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        when = self._now + delay
        event = Event.__new__(Event)
        event.when = when
        event.callback = callback
        event.args = args
        event.cancelled = False
        event._fired = False
        event._loop = self
        event._wslot = None
        self._seq = seq = self._seq + 1
        event._seq = seq
        if delay >= _WHEEL_MIN_DELAY_NS:
            wheel = self._wheel
            if wheel is not None and wheel.insert(when, seq, event, self._now):
                return event
        heapq.heappush(self._heap, (when, seq, event))
        return event

    def call_soon(self, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule *callback(*args)* at the current instant.

        The callback runs after everything already queued for ``now``.
        """
        return self.call_after(0, callback, *args)

    # -- execution ----------------------------------------------------------

    def stop(self) -> None:
        """Request the running loop to stop after the current callback."""
        self._stopped = True

    def set_profiler(self, profiler) -> None:
        """Install (or with ``None`` remove) a per-callback profiler.

        *profiler* exposes a ``records`` dict mapping callback qualname
        to a mutable ``[count, sim_ns, wall_ns]`` triple (see
        :class:`repro.obs.profiler.SimProfiler`). Profiling uses a
        separate dispatch loop inside :meth:`run`, so the unprofiled
        path stays untouched.
        """
        self._profiler = profiler

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run the simulation.

        Parameters
        ----------
        until:
            Absolute stop time in ns. Events scheduled at exactly *until*
            still fire; later ones remain queued. ``None`` runs to queue
            exhaustion.
        max_events:
            Optional safety valve against runaway simulations.

        Returns the simulated time at exit.
        """
        if self._running:
            raise SimulationError("loop is already running")
        self._running = True
        self._stopped = False
        # Hot path: this loop dispatches every simulated event. Heap and
        # function lookups are bound to locals; `until`/`max_events` are
        # normalized to plain comparisons (int/inf compare exactly in
        # Python, so an integer horizon keeps its precision).
        heap = self._heap
        heappop = heapq.heappop
        horizon = float("inf") if until is None else until
        limit = float("inf") if max_events is None else max_events
        processed = 0
        profiler = self._profiler
        wheel = self._wheel
        try:
            if profiler is not None:
                # Profiled dispatch: same semantics, plus per-callback
                # accounting. Kept as a separate loop so the unprofiled
                # paths below pay nothing for the feature; event selection
                # goes through the shared merged-pop helper since the
                # callback timing dwarfs its overhead.
                records = profiler.records
                perf_ns = time.perf_counter_ns
                prev_when = self._now
                pop_next = self._pop_next_entry
                while not self._stopped:
                    entry = pop_next(horizon)
                    if entry is None:
                        break
                    when = entry[0]
                    event = entry[2]
                    self._now = when
                    event._fired = True
                    callback = event.callback
                    t0 = perf_ns()
                    callback(*event.args)
                    wall = perf_ns() - t0
                    key = (getattr(callback, "__qualname__", None)
                           or type(callback).__qualname__)
                    rec = records.get(key)
                    if rec is None:
                        records[key] = [1, when - prev_when, wall]
                    else:
                        rec[0] += 1
                        rec[1] += when - prev_when
                        rec[2] += wall
                    prev_when = when
                    processed += 1
                    if processed >= limit:
                        raise SimulationError(
                            f"exceeded max_events={max_events} (runaway simulation?)"
                        )
            elif wheel is None:
                # Pure-heap dispatch (EventLoop(wheel=False)).
                while heap and not self._stopped:
                    entry = heap[0]
                    when = entry[0]
                    if when > horizon:
                        break
                    event = entry[2]
                    if event.cancelled:
                        self._pop_cancelled_head()
                        continue
                    heappop(heap)
                    self._now = when
                    event._fired = True
                    event.callback(*event.args)
                    processed += 1
                    if processed >= limit:
                        raise SimulationError(
                            f"exceeded max_events={max_events} (runaway simulation?)"
                        )
            else:
                # Merged dispatch. The wheel maintains _next_fire, a
                # lower bound on its earliest live entry; the common
                # iteration (a heap event fires while the wheel holds
                # only far timers) pays exactly one extra read + compare
                # against it. When the bound is reached the slow path
                # merges the wheel's sorted ready list against the heap
                # head by the same (when, seq) key, so the fired event
                # stream is bit-identical to the pure-heap loop — where
                # an event *waits* (bucket vs heap) is a performance
                # detail, never an ordering one. Buckets are drained only
                # once the heap head reaches the wheel's bucket bound, so
                # far-future timers (which are nearly always cancelled
                # first) are never drained, sorted, or even looked at.
                while not self._stopped:
                    if heap:
                        hentry = heap[0]
                        when = hentry[0]
                        if when < wheel._next_fire:
                            if when > horizon:
                                break
                            event = hentry[2]
                            if event.cancelled:
                                self._pop_cancelled_head()
                                continue
                            heappop(heap)
                            self._now = when
                            event._fired = True
                            event.callback(*event.args)
                            processed += 1
                            if processed >= limit:
                                raise SimulationError(
                                    f"exceeded max_events={max_events} (runaway simulation?)"
                                )
                            continue
                    # Slow path: the wheel may own the next event.
                    ready = wheel._ready
                    rpos = wheel._ready_pos
                    rlen = len(ready)
                    if rpos < rlen:
                        wentry = ready[rpos]
                        if heap and heap[0] < wentry:
                            hentry = heap[0]
                            when = hentry[0]
                            if when > horizon:
                                break
                            event = hentry[2]
                            if event.cancelled:
                                self._pop_cancelled_head()
                                continue
                            heappop(heap)
                        else:
                            when = wentry[0]
                            if when > horizon:
                                break
                            rpos += 1
                            wheel._ready_pos = rpos
                            wheel._next_fire = (
                                ready[rpos][0] if rpos < rlen else wheel._next_when
                            )
                            event = wentry[2]
                            if event.cancelled:
                                wheel._ready_cancelled -= 1
                                continue
                    elif wheel._count:
                        if wheel._next_when <= horizon:
                            wheel._refill()
                            continue
                        # All buckets past the horizon: re-sync the
                        # fast-path bound (it may have been stale-low).
                        wheel._next_fire = wheel._next_when
                        if not heap or heap[0][0] > horizon:
                            break
                        continue
                    elif heap:
                        # Ready list consumed, buckets empty: the wheel
                        # holds nothing, so the bounds were stale-low
                        # (cancelled timers) — reset them.
                        wheel._next_when = wheel._next_fire = _WHEEL_INF
                        continue
                    else:
                        break
                    self._now = when
                    event._fired = True
                    event.callback(*event.args)
                    processed += 1
                    if processed >= limit:
                        raise SimulationError(
                            f"exceeded max_events={max_events} (runaway simulation?)"
                        )
            if until is not None and self._now < until:
                # Advance the clock to the horizon so back-to-back run()
                # calls observe contiguous time.
                self._now = until
        finally:
            self._events_processed += processed
            self._running = False
        return self._now

    def run_until_idle(self) -> int:
        """Run until no events remain; returns the final time."""
        return self.run(until=None)

    def peek_next_time(self) -> Optional[int]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            self._pop_cancelled_head()
        when = heap[0][0] if heap else None
        wheel = self._wheel
        if wheel is not None:
            wentry = wheel.peek_entry()
            if wentry is not None and (when is None or wentry[0] < when):
                when = wentry[0]
        return when

    def pending_count(self) -> int:
        """Number of scheduled, non-cancelled events (O(1))."""
        count = len(self._heap) - self._cancelled_in_heap
        if self._wheel is not None:
            count += self._wheel.live_count()
        return count

    # -- lazy-deletion bookkeeping ------------------------------------------

    def _pop_cancelled_head(self) -> None:
        """Pop one cancelled event off the heap head, settling its debt.

        Shared by both ``run`` dispatch loops and :meth:`peek_next_time`
        so the lazy-deletion accounting lives in exactly one place.
        """
        heapq.heappop(self._heap)
        self._cancelled_in_heap -= 1

    def _pop_next_entry(self, horizon) -> Optional[_HeapEntry]:
        """Pop the earliest live entry at or before *horizon*, or ``None``.

        Merges the wheel and the heap by their shared (when, seq) key;
        used by the profiled dispatch loop and available to any caller
        that wants single-step dispatch semantics.
        """
        heap = self._heap
        while heap and heap[0][2].cancelled:
            self._pop_cancelled_head()
        hentry = heap[0] if heap else None
        wheel = self._wheel
        wentry = wheel.peek_entry() if wheel is not None else None
        if hentry is not None and (wentry is None or hentry < wentry):
            if hentry[0] > horizon:
                return None
            return heapq.heappop(heap)
        if wentry is None or wentry[0] > horizon:
            return None
        wheel._consume_ready()
        return wentry

    def _note_cancelled(self) -> None:
        """Record one more cancelled-in-heap event; compact when they dominate."""
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap >= _COMPACT_MIN
            and self._cancelled_in_heap * 2 >= len(self._heap)
        ):
            self.compact()

    def compact(self) -> None:
        """Drop cancelled entries from the heap and re-heapify.

        Heap order among live entries is fully determined by their
        (when, seq) keys, so rebuilding never perturbs firing order.
        """
        if not self._cancelled_in_heap:
            return
        self._heap[:] = [e for e in self._heap if not e[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self.compactions += 1
