"""Deterministic discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`. Three design
rules make every simulation in this package reproducible bit-for-bit:

1. time is an integer nanosecond counter (see :mod:`repro.units`);
2. events scheduled for the same instant fire in insertion order (a
   monotonically increasing sequence number breaks heap ties);
3. all randomness flows through named, seeded streams
   (:class:`repro.sim.rng.RngStreams`), never the global ``random`` module.

Cancellation is lazy (an :class:`Event` is flagged and skipped when it
reaches the top of the heap), which keeps ``cancel`` O(1). The loop counts
cancelled entries still buried in the heap and compacts when they dominate,
so workloads that re-arm timers millions of times (pacing, RTO) keep the
heap proportional to the number of *live* events.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Event", "EventLoop", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the engine is used inconsistently.

    Examples: scheduling in the past, running a loop that was already
    stopped, or cancelling an event twice.
    """


# Heap entries are plain (when, seq, event) tuples: the monotonically
# increasing seq breaks time ties deterministically and guarantees the
# Event object itself is never compared (tuple comparison short-circuits).
_HeapEntry = Tuple[int, int, "Event"]

# Compaction policy: rebuild the heap when at least _COMPACT_MIN cancelled
# entries are buried in it AND they make up at least half of it. The floor
# keeps small simulations from compacting over and over; the fraction
# bounds heap size at ~2x the live event count.
_COMPACT_MIN = 512


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`EventLoop.call_at` /
    :meth:`EventLoop.call_after` and can be cancelled. A cancelled event
    stays in the heap but is skipped when popped (lazy deletion), which
    keeps cancellation O(1).
    """

    __slots__ = ("when", "callback", "args", "cancelled", "_fired", "_loop")

    def __init__(
        self,
        when: int,
        callback: Callable[..., None],
        args: tuple,
        loop: Optional["EventLoop"] = None,
    ):
        self.when = when
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._fired = False
        self._loop = loop

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired."""
        if self.cancelled:
            return
        self.cancelled = True
        # Only events still buried in the heap count toward compaction;
        # a fired event was already popped.
        if not self._fired and self._loop is not None:
            self._loop._note_cancelled()

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not cancelled/fired."""
        return not self.cancelled and not self._fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self._fired else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.when} {name} {state}>"


class EventLoop:
    """The simulation clock and scheduler.

    A single :class:`EventLoop` instance is shared by every component of a
    simulated testbed (CPU model, links, TCP stacks, applications). Typical
    use::

        loop = EventLoop()
        loop.call_after(milliseconds(5), hello)
        loop.run(until=seconds(1))
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._heap: List[_HeapEntry] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0
        #: cancelled events still sitting in the heap (lazy deletion debt)
        self._cancelled_in_heap = 0
        #: heap rebuilds triggered by cancellation debt (for tests/stats)
        self.compactions = 0
        #: arbitrary per-simulation scratch space (used by tracing helpers)
        self.context: Dict[str, Any] = {}
        #: opt-in profiler (see :meth:`set_profiler`); None = free dispatch
        self._profiler = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulated time in integer nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Count of callbacks that have fired (excludes cancelled events)."""
        return self._events_processed

    # -- scheduling --------------------------------------------------------

    def call_at(self, when: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule *callback(*args)* at absolute time *when* (ns).

        *when* may equal :attr:`now` (the event fires after currently
        pending same-time events) but may not be in the past.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} before now={self._now}"
            )
        event = Event(when, callback, args, self)
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, event))
        return event

    def call_after(self, delay: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule *callback(*args)* after *delay* ns (must be >= 0)."""
        # Folded fast path: delay >= 0 implies now + delay >= now, so the
        # past-scheduling guard of call_at is subsumed by the delay check
        # and the push happens without a second call.
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        event = Event(self._now + delay, callback, args, self)
        self._seq += 1
        heapq.heappush(self._heap, (event.when, self._seq, event))
        return event

    def call_soon(self, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule *callback(*args)* at the current instant.

        The callback runs after everything already queued for ``now``.
        """
        return self.call_after(0, callback, *args)

    # -- execution ----------------------------------------------------------

    def stop(self) -> None:
        """Request the running loop to stop after the current callback."""
        self._stopped = True

    def set_profiler(self, profiler) -> None:
        """Install (or with ``None`` remove) a per-callback profiler.

        *profiler* exposes a ``records`` dict mapping callback qualname
        to a mutable ``[count, sim_ns, wall_ns]`` triple (see
        :class:`repro.obs.profiler.SimProfiler`). Profiling uses a
        separate dispatch loop inside :meth:`run`, so the unprofiled
        path stays untouched.
        """
        self._profiler = profiler

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run the simulation.

        Parameters
        ----------
        until:
            Absolute stop time in ns. Events scheduled at exactly *until*
            still fire; later ones remain queued. ``None`` runs to queue
            exhaustion.
        max_events:
            Optional safety valve against runaway simulations.

        Returns the simulated time at exit.
        """
        if self._running:
            raise SimulationError("loop is already running")
        self._running = True
        self._stopped = False
        # Hot path: this loop dispatches every simulated event. Heap and
        # function lookups are bound to locals; `until`/`max_events` are
        # normalized to plain comparisons (int/inf compare exactly in
        # Python, so an integer horizon keeps its precision).
        heap = self._heap
        heappop = heapq.heappop
        horizon = float("inf") if until is None else until
        limit = float("inf") if max_events is None else max_events
        processed = 0
        profiler = self._profiler
        try:
            if profiler is None:
                while heap and not self._stopped:
                    entry = heap[0]
                    when = entry[0]
                    if when > horizon:
                        break
                    heappop(heap)
                    event = entry[2]
                    if event.cancelled:
                        self._cancelled_in_heap -= 1
                        continue
                    self._now = when
                    event._fired = True
                    event.callback(*event.args)
                    processed += 1
                    if processed >= limit:
                        self._events_processed += processed
                        processed = 0
                        raise SimulationError(
                            f"exceeded max_events={max_events} (runaway simulation?)"
                        )
            else:
                # Profiled dispatch: same semantics, plus per-callback
                # accounting. Kept as a separate loop so the unprofiled
                # hot path above pays nothing for the feature.
                records = profiler.records
                perf_ns = time.perf_counter_ns
                prev_when = self._now
                while heap and not self._stopped:
                    entry = heap[0]
                    when = entry[0]
                    if when > horizon:
                        break
                    heappop(heap)
                    event = entry[2]
                    if event.cancelled:
                        self._cancelled_in_heap -= 1
                        continue
                    self._now = when
                    event._fired = True
                    callback = event.callback
                    t0 = perf_ns()
                    callback(*event.args)
                    wall = perf_ns() - t0
                    key = (getattr(callback, "__qualname__", None)
                           or type(callback).__qualname__)
                    rec = records.get(key)
                    if rec is None:
                        records[key] = [1, when - prev_when, wall]
                    else:
                        rec[0] += 1
                        rec[1] += when - prev_when
                        rec[2] += wall
                    prev_when = when
                    processed += 1
                    if processed >= limit:
                        self._events_processed += processed
                        processed = 0
                        raise SimulationError(
                            f"exceeded max_events={max_events} (runaway simulation?)"
                        )
            if until is not None and self._now < until:
                # Advance the clock to the horizon so back-to-back run()
                # calls observe contiguous time.
                self._now = until
        finally:
            self._events_processed += processed
            self._running = False
        return self._now

    def run_until_idle(self) -> int:
        """Run until no events remain; returns the final time."""
        return self.run(until=None)

    def peek_next_time(self) -> Optional[int]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled_in_heap -= 1
        return heap[0][0] if heap else None

    def pending_count(self) -> int:
        """Number of scheduled, non-cancelled events (O(1))."""
        return len(self._heap) - self._cancelled_in_heap

    # -- lazy-deletion bookkeeping ------------------------------------------

    def _note_cancelled(self) -> None:
        """Record one more cancelled-in-heap event; compact when they dominate."""
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap >= _COMPACT_MIN
            and self._cancelled_in_heap * 2 >= len(self._heap)
        ):
            self.compact()

    def compact(self) -> None:
        """Drop cancelled entries from the heap and re-heapify.

        Heap order among live entries is fully determined by their
        (when, seq) keys, so rebuilding never perturbs firing order.
        """
        if not self._cancelled_in_heap:
            return
        self._heap[:] = [e for e in self._heap if not e[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self.compactions += 1
