"""Hierarchical timer wheel: O(1) scheduling for near-future events.

The workloads this simulator reproduces arm and cancel *millions* of
short-lived timers per run — pacing hrtimers every send period, the RTO
timer re-armed on every ACK, periodic governor/metrics ticks. A binary
heap handles that with lazy deletion: cancelled entries stay buried until
popped (or until compaction rebuilds the heap), so heavy re-arm churn
keeps paying ``O(log n)`` pushes plus amortized sweep work. Linux solves
the same problem by pairing hrtimers with wheel-style bucketing; this
module is the simulator's equivalent.

:class:`TimerWheel` is layered *in front of* the engine's heap by
:class:`~repro.sim.engine.EventLoop`:

* events within the wheel horizon go into fixed-width nanosecond buckets
  — **O(1) insert** (a dict store) and **true O(1) cancel** (a dict
  delete; no lazy-deletion debt, no compaction);
* far-future events (beyond :data:`LEVEL1_SPAN_NS`) and events landing
  behind the wheel's drain cursor overflow to the heap, which the engine
  still owns.

Two levels mirror the kernel's coarse/fine split:

===== ================== ========== ==================
level bucket width       buckets    span ("horizon")
===== ================== ========== ==================
0     2^16 ns ≈ 65.5 µs  256        2^24 ns ≈ 16.8 ms
1     2^24 ns ≈ 16.8 ms  256        2^32 ns ≈ 4.29 s
===== ================== ========== ==================

Level 0 catches pacing periods and softirq/transmit completions; level 1
catches RTOs, delayed ACK / PROBE_RTT deadlines and governor ticks. A
level-1 bucket *cascades* into level-0 buckets when the drain cursor
reaches its time range — each event cascades at most once, and a timer
cancelled before its coarse bucket is reached never pays the cascade.

**Ordering is preserved bit-for-bit.** The engine's contract is that
events fire in ``(when, seq)`` order, where ``seq`` is the global
insertion sequence number. Buckets keep that exact key: draining a bucket
sorts its entries by ``(when, seq)`` into a ready list, and the engine's
dispatch loop merges ready entries with the heap head by the same key, so
the fired event stream is identical to a heap-only loop (asserted by
``tests/test_sim_wheel.py``). Occupancy bitmaps (one int per level) make
"find the next non-empty bucket" a couple of word-sized bit operations
instead of a slot scan.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = [
    "TimerWheel",
    "LEVEL0_SHIFT",
    "LEVEL1_SHIFT",
    "SLOTS",
    "LEVEL0_SPAN_NS",
    "LEVEL1_SPAN_NS",
]

#: log2 of the level-0 bucket width in ns (2^16 ns = 65.536 µs).
LEVEL0_SHIFT = 16
#: log2 of the level-1 bucket width in ns (2^24 ns = 16.777 ms).
LEVEL1_SHIFT = 24
#: buckets per level (must be a power of two for the slot mask).
SLOTS = 256
_MASK = SLOTS - 1
_FULL = (1 << SLOTS) - 1

#: time covered by level 0 from the drain cursor (one level-1 bucket).
LEVEL0_SPAN_NS = SLOTS << LEVEL0_SHIFT
#: wheel horizon: events further out overflow to the engine's heap.
LEVEL1_SPAN_NS = SLOTS << LEVEL1_SHIFT

# Level-1 acceptance limit. The drain cursor is level-0 aligned but not
# level-1 aligned, so accepting the full span would let live bucket
# indices span 257 consecutive values — and two indices 256 apart map to
# the same slot. Capping the reach at span − one bucket keeps every live
# index within a 256-wide window (distinct slots, and the bitmap scan can
# reconstruct absolute indices unambiguously).
_L1_LIMIT_NS = LEVEL1_SPAN_NS - LEVEL0_SPAN_NS

# Sentinel stored in Event._wslot while the event sits in the drained
# ready list (no longer deletable in O(1); dispatch skips it instead).
READY = object()

# int/float comparisons are exact in Python, so an infinite "no bucketed
# entries" bound composes safely with the integer-ns clock.
_INF = float("inf")


class TimerWheel:
    """Two-level bucketed schedule for an :class:`EventLoop`.

    The wheel does not own dispatch: the event loop asks for the earliest
    wheel entry (:meth:`peek_entry` / the ``_ready`` list) and merges it
    against its heap head. All state mutations stay deterministic — the
    only iteration over a (insertion-ordered) dict happens in
    :meth:`_refill`/cascade, and the subsequent ``(when, seq)`` sort makes
    the result independent of insertion order.
    """

    __slots__ = (
        "_l0",
        "_l1",
        "_map0",
        "_map1",
        "_floor",
        "_count",
        "_next_when",
        "_next_fire",
        "_ready",
        "_ready_pos",
        "_ready_cancelled",
        "inserts",
        "cascaded_events",
        "drains",
    )

    def __init__(self) -> None:
        self._l0: List[dict] = [{} for _ in range(SLOTS)]
        self._l1: List[dict] = [{} for _ in range(SLOTS)]
        #: occupancy bitmaps (bit i = slot i may be non-empty; bits are
        #: cleared lazily when a cancelled-out bucket is found empty)
        self._map0 = 0
        self._map1 = 0
        #: drain cursor: every bucketed entry has ``when >= _floor``;
        #: always a multiple of the level-0 bucket width
        self._floor = 0
        #: live entries currently in buckets (excludes the ready list)
        self._count = 0
        #: lower bound on the earliest bucketed entry's time (stale-low
        #: after cancels, which is safe: the dispatch loop uses it only
        #: to decide whether the heap head can fire without a drain)
        self._next_when = _INF
        #: lower bound on the earliest live wheel entry *anywhere* (ready
        #: list or buckets). The dispatch fast path compares the heap
        #: head against this single value; whenever the ready list is
        #: exhausted it equals ``_next_when``. Stale-low is safe (one
        #: trip through the slow path re-syncs it); stale-high would
        #: reorder events, so every mutation keeps it a true lower bound.
        self._next_fire = _INF
        #: drained, (when, seq)-sorted entries awaiting dispatch
        self._ready: List[Tuple[int, int, object]] = []
        self._ready_pos = 0
        #: cancelled entries still in the ready list (pending_count math)
        self._ready_cancelled = 0
        # stats (for tests and the perf harness)
        self.inserts = 0
        self.cascaded_events = 0
        self.drains = 0

    # -- capacity / accounting ----------------------------------------------

    def live_count(self) -> int:
        """Scheduled, non-cancelled events held by the wheel (O(1))."""
        return self._count + (
            len(self._ready) - self._ready_pos - self._ready_cancelled
        )

    # -- insert / cancel ------------------------------------------------------

    def insert(self, when: int, seq: int, event, now: int) -> bool:
        """Try to take ownership of *event*; False = caller uses the heap.

        Rejects events behind the drain cursor (their bucket was already
        swept — the heap merge still fires them in order) and events
        beyond the level-1 reach. When the reach check fails only because
        the cursor lags far behind *now* (timers that are always
        cancelled never trigger a drain, so the cursor never moves on its
        own), the cursor is advanced toward ``now`` first and the insert
        retried — every live entry's time is >= now, so this never skips
        an occupied bucket.
        """
        floor = self._floor
        delta = when - floor
        if delta < 0:
            return False
        if delta >= _L1_LIMIT_NS:
            advanced = (now >> LEVEL0_SHIFT) << LEVEL0_SHIFT
            earliest = self._next_bucket_start()
            if earliest is not None and earliest < advanced:
                advanced = earliest
            if advanced <= floor:
                return False
            self._floor = floor = advanced
            delta = when - floor
            if delta >= _L1_LIMIT_NS:
                return False
        if delta < LEVEL0_SPAN_NS:
            slot = (when >> LEVEL0_SHIFT) & _MASK
            bucket = self._l0[slot]
            if not bucket:
                self._map0 |= 1 << slot
        else:
            slot = (when >> LEVEL1_SHIFT) & _MASK
            bucket = self._l1[slot]
            if not bucket:
                self._map1 |= 1 << slot
        bucket[seq] = event
        event._wslot = bucket
        self._count += 1
        if when < self._next_when:
            self._next_when = when
        if when < self._next_fire:
            self._next_fire = when
        self.inserts += 1
        return True

    def cancel(self, event) -> None:
        """Remove a bucketed or ready *event* (called by ``Event.cancel``)."""
        slot = event._wslot
        if slot is READY:
            # Already drained: skipped (and accounted) at dispatch.
            self._ready_cancelled += 1
            return
        del slot[event._seq]
        event._wslot = None
        self._count -= 1
        # The bucket's bitmap bit is cleared lazily by _refill: clearing
        # it here would need the slot index on every Event just for this.

    # -- drain ----------------------------------------------------------------

    def _scan(self, bitmap_attr: str, buckets: List[dict], shift: int) -> Optional[int]:
        """Absolute index of the earliest occupied bucket in one level.

        Clears stale bitmap bits (buckets emptied by cancels) as a side
        effect. Returns ``None`` when the level is empty.
        """
        bitmap = getattr(self, bitmap_attr)
        if not bitmap:
            return None
        cursor = self._floor >> shift
        start = cursor & _MASK
        rotated = ((bitmap >> start) | (bitmap << (SLOTS - start))) & _FULL
        while rotated:
            offset = (rotated & -rotated).bit_length() - 1
            if buckets[(start + offset) & _MASK]:
                return cursor + offset
            # cancelled-out bucket: retire its bit and keep scanning
            setattr(self, bitmap_attr, getattr(self, bitmap_attr) & ~(1 << ((start + offset) & _MASK)))
            rotated &= rotated - 1
        return None

    def _next_bucket_start(self) -> Optional[int]:
        """Start time of the earliest occupied bucket, or ``None``.

        A safe upper bound for cursor advancement: no live entry sits
        before it.
        """
        idx0 = self._scan("_map0", self._l0, LEVEL0_SHIFT)
        idx1 = self._scan("_map1", self._l1, LEVEL1_SHIFT)
        start = None if idx0 is None else idx0 << LEVEL0_SHIFT
        if idx1 is not None:
            start1 = idx1 << LEVEL1_SHIFT
            if start is None or start1 < start:
                start = start1
        return start

    def _refill(self) -> List[Tuple[int, int, object]]:
        """Drain the earliest non-empty bucket into the ready list.

        Cascades any level-1 bucket whose time range begins at or before
        the earliest level-0 bucket first, so the drained bucket always
        holds the wheel's globally earliest entries. Returns the new
        ready list ([] only when the wheel is empty).
        """
        l0 = self._l0
        while True:
            idx0 = self._scan("_map0", l0, LEVEL0_SHIFT)
            idx1 = self._scan("_map1", self._l1, LEVEL1_SHIFT)
            # (idx1 << 8) <= idx0  ⟺  the level-1 bucket starts at or
            # before the earliest level-0 bucket: cascade it down first.
            if idx1 is not None and (idx0 is None or (idx1 << 8) <= idx0):
                slot1 = idx1 & _MASK
                bucket1 = self._l1[slot1]
                self._map1 &= ~(1 << slot1)
                # No wheel entry exists before this bucket's start (see
                # the invariant argument in DESIGN.md), so the cursor may
                # jump straight to it.
                self._floor = idx1 << LEVEL1_SHIFT
                map0 = self._map0
                for seq, ev in bucket1.items():
                    slot0 = (ev.when >> LEVEL0_SHIFT) & _MASK
                    b0 = l0[slot0]
                    if not b0:
                        map0 |= 1 << slot0
                    b0[seq] = ev
                    ev._wslot = b0
                self._map0 = map0
                self.cascaded_events += len(bucket1)
                bucket1.clear()
                continue
            if idx0 is None:
                # Fully empty (count must be 0: bits were only stale).
                self._next_when = _INF
                self._next_fire = _INF
                self._ready = []
                self._ready_pos = 0
                return self._ready
            slot0 = idx0 & _MASK
            bucket0 = l0[slot0]
            self._map0 &= ~(1 << slot0)
            ready = [(ev.when, seq, ev) for seq, ev in bucket0.items()]
            bucket0.clear()
            ready.sort()  # (when, seq) — seq is unique, events never compared
            for entry in ready:
                entry[2]._wslot = READY
            self._count -= len(ready)
            self._floor = (idx0 + 1) << LEVEL0_SHIFT
            # Every entry still bucketed is at or past the new cursor.
            self._next_when = self._floor if self._count else _INF
            self._next_fire = ready[0][0]
            self._ready = ready
            self._ready_pos = 0
            self.drains += 1
            return ready

    def peek_entry(self) -> Optional[Tuple[int, int, object]]:
        """Earliest live wheel entry without consuming it.

        Skips (and settles accounting for) cancelled ready entries;
        refills from the buckets as needed.
        """
        while True:
            ready = self._ready
            pos = self._ready_pos
            n = len(ready)
            while pos < n:
                entry = ready[pos]
                if not entry[2].cancelled:
                    self._ready_pos = pos
                    self._next_fire = entry[0]
                    return entry
                pos += 1
                self._ready_cancelled -= 1
            self._ready_pos = pos
            if not self._count:
                self._next_fire = _INF
                return None
            self._refill()

    def _consume_ready(self) -> None:
        """Advance past the current ready head, refreshing the fire bound."""
        pos = self._ready_pos + 1
        self._ready_pos = pos
        ready = self._ready
        self._next_fire = ready[pos][0] if pos < len(ready) else self._next_when
