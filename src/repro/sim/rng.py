"""Named, seeded random-number streams.

Each stochastic component of the simulator (WiFi fading, governor noise,
scheduling jitter, ...) draws from its own named stream so that adding a
new source of randomness does not perturb existing ones — a standard
variance-reduction discipline in network simulators (ns-3 has the same
facility).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngStreams"]


class RngStreams:
    """Factory for independent :class:`random.Random` streams.

    Streams are derived from a master seed and a stream name through
    SHA-256, so ``RngStreams(7).stream("wifi")`` is identical across runs
    and machines regardless of creation order.
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it deterministically."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, salt: int) -> "RngStreams":
        """Derive an independent family of streams (for replicated runs)."""
        digest = hashlib.sha256(
            f"{self.master_seed}/fork/{salt}".encode("utf-8")
        ).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))
