"""Restartable timers in the style of Linux ``hrtimer``.

The TCP stack arms and re-arms many timers (pacing, RTO, delayed ACK,
PROBE_RTT deadlines). :class:`Timer` wraps the raw one-shot events of
:class:`~repro.sim.engine.EventLoop` with the arm/cancel/restart life cycle
those call sites expect, plus an optional *slack* that models timer
coalescing granularity on real systems.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..kernel import compiled_for
from .engine import Event, EventLoop

__all__ = ["Timer", "PeriodicTimer"]


class Timer:
    """A one-shot, re-armable timer.

    ``start(delay)`` schedules the callback; calling ``start`` again while
    pending re-arms it (the previous schedule is cancelled), mirroring
    ``hrtimer_start``'s semantics. *slack_ns* rounds the expiry up to the
    next multiple of the slack, emulating coarse timer wheels.
    """

    __slots__ = ("_loop", "_callback", "_slack", "_event", "name", "fire_count")

    def __new__(cls, *args, **kwargs):
        # Kernel routing: timers armed on a compiled-kernel loop are C
        # timers (O(1) generation-counter cancel, no Event allocation).
        if cls is Timer and args:
            ck = compiled_for(args[0])
            if ck is not None:
                return ck.Timer(*args, **kwargs)
        return super().__new__(cls)

    def __init__(
        self,
        loop: EventLoop,
        callback: Callable[[], None],
        slack_ns: int = 0,
        name: str = "",
    ):
        self._loop = loop
        self._callback = callback
        self._slack = max(0, int(slack_ns))
        self._event: Optional[Event] = None
        self.name = name
        #: number of times the timer has fired (for tests and stats)
        self.fire_count = 0

    @property
    def pending(self) -> bool:
        """True if the timer is armed and has not fired."""
        return self._event is not None and self._event.pending

    @property
    def expires_at(self) -> Optional[int]:
        """Absolute expiry time in ns, or None when not armed."""
        return self._event.when if self.pending else None

    def start(self, delay_ns: int) -> None:
        """(Re-)arm the timer *delay_ns* from now (>= 0)."""
        delay = int(delay_ns)
        if delay < 0:
            delay = 0
        self.start_at(self._loop.now + delay)

    def start_at(self, when_ns: int) -> None:
        """(Re-)arm the timer for absolute time *when_ns*."""
        self.cancel()
        now = self._loop.now
        when = when_ns if when_ns > now else now
        if self._slack:
            remainder = when % self._slack
            if remainder:
                when += self._slack - remainder
        self._event = self._loop.call_at(when, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if pending."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self.fire_count += 1
        self._callback()


class PeriodicTimer:
    """A timer that re-arms itself every *period_ns* until stopped.

    Used by the schedutil governor (utilization sampling), interval metric
    collectors, and the WiFi rate process.
    """

    __slots__ = ("_loop", "period_ns", "_callback", "_timer", "_running", "name")

    def __init__(
        self,
        loop: EventLoop,
        period_ns: int,
        callback: Callable[[], None],
        name: str = "",
    ):
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self._loop = loop
        self.period_ns = int(period_ns)
        self._callback = callback
        self._timer = Timer(loop, self._tick, name=name)
        self._running = False
        self.name = name

    @property
    def running(self) -> bool:
        """True while the periodic timer is active."""
        return self._running

    def start(self, initial_delay_ns: Optional[int] = None) -> None:
        """Start ticking; first fire after *initial_delay_ns* (default: one period)."""
        self._running = True
        delay = self.period_ns if initial_delay_ns is None else initial_delay_ns
        self._timer.start(delay)

    def stop(self) -> None:
        """Stop ticking."""
        self._running = False
        self._timer.cancel()

    def _tick(self) -> None:
        if not self._running:
            return
        self._callback()
        if self._running:
            self._timer.start(self.period_ns)
