"""repro — a reproduction of *Are Mobiles Ready for BBR?* (IMC 2022).

The paper measures BBR/BBR2 vs. Cubic on Pixel phones and finds TCP's
internal packet pacing — a per-send timer — throttles goodput on
CPU-constrained devices; a *pacing stride* (pace less often, more data
per period) recovers the loss while keeping pacing's low RTTs.

This package reproduces the study in simulation: a cycle-cost CPU model
of the phone (``repro.cpu``), a Linux-structured TCP stack with internal
pacing and the stride modification (``repro.tcp``), Cubic/BBR/BBR2
(``repro.cc``), the Ethernet/WiFi/LTE testbed (``repro.netsim``), and an
experiment API (``repro.core``). Quick start::

    from repro import ExperimentSpec, run_experiment

    result = run_experiment(ExperimentSpec(cc="bbr", connections=20))
    print(result.goodput_mbps)
"""

from .core import (
    AdaptiveStrideController,
    ExperimentResult,
    ExperimentSpec,
    FlowSpec,
    PAPER_STRIDES,
    ReplicatedResult,
    StrideRow,
    canonical_spec_json,
    expand_scenario,
    expand_scenario_dicts,
    expected_throughput_bps,
    flow_from_dict,
    flow_to_dict,
    idle_time_ns,
    load_scenario,
    load_scenario_doc,
    make_cc_factory,
    resolve_flows,
    run_experiment,
    run_replicated,
    spec_digest,
    spec_from_dict,
    spec_to_dict,
    sweep_strides,
)
from .metrics import goodput_shares, jain_fairness_index
from .cache import (
    CacheStats,
    ResultCache,
    code_fingerprint,
    default_cache_dir,
    kernel_fingerprint,
    resolve_cache,
)
from .kernel import KERNELS, compiled_components, kernel_info, resolve_kernel
from .dist import (
    DistributedSweepError,
    TaskQueue,
    WorkerReport,
    run_distributed,
    run_worker,
)
from .cc import CC_ALGORITHMS
from .cpu import EXECUTORS
from .devices import CPU_CONFIGS, DEVICES, PIXEL_4, PIXEL_6, CpuConfig, DeviceProfile
from .netsim import ETHERNET_LAN, LTE_CELLULAR, MEDIA, WIFI_LAN, NetemConfig
from .obs import (
    DistMonitor,
    GridMonitor,
    PROBES,
    ProbeSet,
    RunLedger,
    SimProfiler,
    TimeSeries,
    diff_records,
    export_chrome_trace,
    export_jsonl,
    load_jsonl,
    merge_ledgers,
    resolve_ledger,
    validate_chrome_trace,
    validate_jsonl,
    validate_openmetrics,
)
from .sim import Tracer
from .registry import (
    DuplicateNameError,
    Registry,
    RegistryError,
    UnknownNameError,
    all_registries,
)
from .runner import (
    ExperimentGridError,
    GridPointError,
    GridReport,
    resolve_chunk,
    resolve_jobs,
    resolve_worker_jobs,
    run_grid,
    run_grid_report,
    run_replicated_grid,
    run_replicated_grid_report,
    run_replicated_parallel,
)
from .tcp.pacing import PacingMode

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ExperimentSpec",
    "ExperimentResult",
    "ReplicatedResult",
    "FlowSpec",
    "resolve_flows",
    "run_experiment",
    "run_replicated",
    "make_cc_factory",
    "jain_fairness_index",
    "goodput_shares",
    "spec_to_dict",
    "spec_from_dict",
    "flow_to_dict",
    "flow_from_dict",
    "canonical_spec_json",
    "spec_digest",
    "CacheStats",
    "ResultCache",
    "code_fingerprint",
    "default_cache_dir",
    "kernel_fingerprint",
    "resolve_cache",
    "KERNELS",
    "kernel_info",
    "compiled_components",
    "resolve_kernel",
    "expand_scenario",
    "expand_scenario_dicts",
    "load_scenario",
    "load_scenario_doc",
    "Registry",
    "RegistryError",
    "UnknownNameError",
    "DuplicateNameError",
    "all_registries",
    "CC_ALGORITHMS",
    "EXECUTORS",
    "MEDIA",
    "DEVICES",
    "CPU_CONFIGS",
    "sweep_strides",
    "PAPER_STRIDES",
    "AdaptiveStrideController",
    "StrideRow",
    "expected_throughput_bps",
    "idle_time_ns",
    "PIXEL_4",
    "PIXEL_6",
    "CpuConfig",
    "DeviceProfile",
    "ETHERNET_LAN",
    "WIFI_LAN",
    "LTE_CELLULAR",
    "NetemConfig",
    "PacingMode",
    "PROBES",
    "ProbeSet",
    "SimProfiler",
    "TimeSeries",
    "Tracer",
    "RunLedger",
    "resolve_ledger",
    "merge_ledgers",
    "diff_records",
    "GridMonitor",
    "DistMonitor",
    "DistributedSweepError",
    "TaskQueue",
    "WorkerReport",
    "run_distributed",
    "run_worker",
    "validate_openmetrics",
    "export_jsonl",
    "load_jsonl",
    "validate_jsonl",
    "export_chrome_trace",
    "validate_chrome_trace",
    "ExperimentGridError",
    "GridPointError",
    "GridReport",
    "resolve_chunk",
    "resolve_jobs",
    "resolve_worker_jobs",
    "run_grid",
    "run_grid_report",
    "run_replicated_grid",
    "run_replicated_grid_report",
    "run_replicated_parallel",
]
