"""tc/netem-style impairments.

The paper's testbed lets network conditions be set on the OpenWRT router
with Linux ``tc`` (§3.2). :class:`NetemConfig` captures the knobs the
reproduction needs — an egress rate limit, additional one-way delay,
random loss, and the egress buffer depth — and the
:class:`~repro.netsim.testbed.Testbed` applies them to the router's
server-facing port.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..sim import EventLoop
from .packet import Packet

__all__ = ["NetemConfig", "NetemImpairment"]


@dataclass(frozen=True)
class NetemConfig:
    """Router egress traffic-control settings.

    ``rate_bps=None`` leaves the port at line rate. ``buffer_segments``
    overrides the router's egress buffer depth (the §5.2.3 shallow-buffer
    experiment uses 10).
    """

    rate_bps: Optional[float] = None
    extra_delay_ns: int = 0
    loss_probability: float = 0.0
    buffer_segments: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        if self.extra_delay_ns < 0:
            raise ValueError("extra delay must be >= 0")


class NetemImpairment:
    """Applies random loss and added delay between two components.

    Sits on a path as a packet filter: ``impairment(packet)`` either drops
    the packet or forwards it to the downstream sink after the configured
    delay.
    """

    def __init__(
        self,
        loop: EventLoop,
        config: NetemConfig,
        sink: Callable[[Packet], None],
        rng: Optional[random.Random] = None,
    ):
        self._loop = loop
        self.config = config
        self.sink = sink
        self._rng = rng or random.Random(0)
        self.dropped_packets = 0
        self.forwarded_packets = 0

    def __call__(self, packet: Packet) -> None:
        if self.config.loss_probability > 0.0:
            if self._rng.random() < self.config.loss_probability:
                self.dropped_packets += 1
                return
        self.forwarded_packets += 1
        if self.config.extra_delay_ns > 0:
            self._loop.call_after(self.config.extra_delay_ns, self.sink, packet)
        else:
            self.sink(packet)
