"""Access media: Ethernet, WiFi, and LTE profiles (§3.2, Appendix A.1).

Each medium is described by a :class:`MediumProfile` (rates, base one-way
delays, and variability). WiFi capacity follows an AR(1) (Gauss-Markov)
process around its mean, which is the standard first-order model for slow
fading plus contention; LTE is a low fixed-rate uplink with higher base
delay — the regime in which the paper finds *no* BBR/Cubic gap because
the network, not the CPU, is the bottleneck.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..registry import Registry
from ..sim import EventLoop, NULL_TRACER, PeriodicTimer, Tracer
from ..units import MSEC, USEC, gbps, mbps, microseconds, milliseconds
from .link import Link

__all__ = [
    "MediumProfile",
    "ETHERNET_LAN",
    "WIFI_LAN",
    "LTE_CELLULAR",
    "MEDIA",
    "VariableRateLink",
    "make_access_link",
]


@dataclass(frozen=True)
class MediumProfile:
    """Static description of an access medium."""

    name: str
    #: uplink (phone -> router) capacity in bits/s
    uplink_bps: float
    #: downlink (router -> phone) capacity in bits/s
    downlink_bps: float
    #: one-way propagation/processing delay per direction, ns
    one_way_delay_ns: int
    #: relative std-dev of the AR(1) capacity process (0 = fixed rate)
    rate_sigma: float = 0.0
    #: AR(1) memory parameter in [0, 1); closer to 1 = slower fading
    rate_phi: float = 0.9
    #: capacity process update period, ns
    rate_update_ns: int = 50 * MSEC


#: Ethernet LAN via USB adapter: ~1 Gbps line rate, sub-millisecond RTT.
ETHERNET_LAN = MediumProfile(
    name="ethernet",
    uplink_bps=gbps(1.0),
    downlink_bps=gbps(1.0),
    one_way_delay_ns=microseconds(250),
)

#: WiFi LAN, phone ~1 m from the AP: high but variable effective rate.
WIFI_LAN = MediumProfile(
    name="wifi",
    uplink_bps=mbps(620.0),
    downlink_bps=mbps(620.0),
    one_way_delay_ns=milliseconds(1.0),
    rate_sigma=0.12,
    rate_phi=0.9,
)

#: T-Mobile LTE uplink: bandwidth-limited (<20 Mbps goodput in the paper).
LTE_CELLULAR = MediumProfile(
    name="lte",
    uplink_bps=mbps(18.0),
    downlink_bps=mbps(60.0),
    one_way_delay_ns=milliseconds(30.0),
    rate_sigma=0.08,
    rate_phi=0.95,
)

#: name -> :class:`MediumProfile` (spec ``medium=`` scenario references)
MEDIA: Registry = Registry("medium")
MEDIA.register(ETHERNET_LAN.name, ETHERNET_LAN)
MEDIA.register(WIFI_LAN.name, WIFI_LAN)
MEDIA.register(LTE_CELLULAR.name, LTE_CELLULAR)


class VariableRateLink(Link):
    """A link whose rate follows an AR(1) process around a mean.

    ``rate(t+1) = mean + phi * (rate(t) - mean) + noise`` with Gaussian
    noise scaled so the stationary standard deviation is
    ``sigma * mean``; the rate is clamped to ``[0.3, 1.5] * mean``.
    """

    def __init__(
        self,
        loop: EventLoop,
        mean_rate_bps: float,
        sigma: float,
        phi: float,
        update_ns: int,
        prop_delay_ns: int,
        rng: random.Random,
        name: str = "varlink",
        tracer: Tracer = NULL_TRACER,
    ):
        super().__init__(loop, mean_rate_bps, prop_delay_ns, name=name, tracer=tracer)
        self.mean_rate_bps = float(mean_rate_bps)
        self.sigma = float(sigma)
        self.phi = float(phi)
        self._rng = rng
        # stationary variance of AR(1) = noise_var / (1 - phi^2)
        self._noise_std = sigma * mean_rate_bps * (1.0 - phi * phi) ** 0.5
        self._timer = PeriodicTimer(loop, update_ns, self._update, name=f"{name}-rate")
        if sigma > 0.0:
            self._timer.start(initial_delay_ns=0)

    def _update(self) -> None:
        deviation = self.rate_bps - self.mean_rate_bps
        new_rate = (
            self.mean_rate_bps
            + self.phi * deviation
            + self._rng.gauss(0.0, self._noise_std)
        )
        low = 0.3 * self.mean_rate_bps
        high = 1.5 * self.mean_rate_bps
        self.rate_bps = min(high, max(low, new_rate))

    def stop(self) -> None:
        """Stop the rate process (lets the event loop drain)."""
        self._timer.stop()


def make_access_link(
    loop: EventLoop,
    profile: MediumProfile,
    direction: str,
    rng: random.Random,
    tracer: Tracer = NULL_TRACER,
    name: Optional[str] = None,
) -> Link:
    """Build the uplink or downlink access link for *profile*.

    *direction* is ``"up"`` (phone to router) or ``"down"``. *name*
    overrides the default link name (extra sender ports need distinct
    ones); ``None`` keeps the legacy ``"<medium>-<direction>link"``.
    """
    if direction not in ("up", "down"):
        raise ValueError("direction must be 'up' or 'down'")
    rate = profile.uplink_bps if direction == "up" else profile.downlink_bps
    if name is None:
        name = f"{profile.name}-{direction}link"
    if profile.rate_sigma > 0.0:
        return VariableRateLink(
            loop,
            rate,
            profile.rate_sigma,
            profile.rate_phi,
            profile.rate_update_ns,
            profile.one_way_delay_ns,
            rng,
            name=name,
            tracer=tracer,
        )
    return Link(loop, rate, profile.one_way_delay_ns, name=name, tracer=tracer)
