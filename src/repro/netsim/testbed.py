"""The paper's testbed topology (Figure 1), generalized to many senders.

::

    [phone / iperf client] --access medium--> [OpenWRT router] --Ethernet--> [iperf server]

Data flows uplink (phone to server); ACKs flow back. Each sender host
attaches through a :class:`SenderPort` — its own transmit qdisc
(droptail, generous by default), access uplink, optional per-port netem
impairment, and a dedicated access downlink for the return path. All
ports converge on the shared router, whose server-facing port carries the
optional ``tc`` impairments (rate limit, delay, loss, buffer depth) of
:class:`~repro.netsim.shaper.NetemConfig` — that queue is the contention
point multi-flow experiments study.

The single-sender topology of the source paper is simply port 0, built
with exactly the original component names and RNG streams so legacy specs
reproduce their archived results byte for byte.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim import EventLoop, RngStreams, Tracer, NULL_TRACER
from ..units import gbps, microseconds
from .link import Link
from .media import MediumProfile, make_access_link
from .packet import Packet
from .queue import DropTailQueue
from .shaper import NetemConfig, NetemImpairment

__all__ = [
    "Testbed",
    "SenderPort",
    "DEFAULT_PHONE_QDISC_SEGMENTS",
    "DEFAULT_ROUTER_BUFFER_SEGMENTS",
]

#: Default phone transmit qdisc depth in MSS segments (pfifo-like).
DEFAULT_PHONE_QDISC_SEGMENTS = 1000

#: Default router egress buffer in MSS segments (a deep LAN-router buffer).
DEFAULT_ROUTER_BUFFER_SEGMENTS = 2000

PacketSink = Callable[[Packet], None]


class SenderPort:
    """One phone-side attachment point on the shared bottleneck.

    Owns the host's transmit qdisc, its access uplink (whose sink is the
    router, possibly through a per-port netem impairment), and the access
    downlink ACKs return on. ``receiver`` is the host stack's RX entry.
    """

    def __init__(
        self,
        index: int,
        uplink: Link,
        qdisc: DropTailQueue,
        downlink: Link,
    ):
        self.index = index
        self.uplink = uplink
        self.qdisc = qdisc
        self.downlink = downlink
        self.receiver: Optional[PacketSink] = None

    def send(self, packet: Packet) -> None:
        """Host NIC entry point: enqueue a data packet on the qdisc."""
        self.qdisc.enqueue(packet)

    def deliver(self, packet: Packet) -> None:
        """Downlink exit point: hand an arriving packet to the host."""
        if self.receiver is None:
            raise RuntimeError("no phone receiver attached to testbed")
        self.receiver(packet)


class Testbed:
    """Assembles links, queues and impairments into Figure 1's topology.

    Hosts interact through four methods:

    * :meth:`phone_send` — phone TCP stack hands a data packet to its qdisc,
    * ``on_server_receive`` — called with packets arriving at the server,
    * :meth:`server_send` — server hands an ACK to the return path,
    * ``on_phone_receive`` — called with ACKs arriving at the phone.

    The legacy attributes (``uplink``, ``phone_qdisc``, ``downlink``,
    ``on_phone_receive``, :meth:`phone_send`) address port 0; additional
    sender hosts attach via :meth:`add_sender_port` and route their ACKs
    by flow id (see :meth:`register_flow`).
    """

    def __init__(
        self,
        loop: EventLoop,
        medium: MediumProfile,
        netem: Optional[NetemConfig] = None,
        rng: Optional[RngStreams] = None,
        phone_qdisc_segments: int = DEFAULT_PHONE_QDISC_SEGMENTS,
        tracer: Tracer = NULL_TRACER,
    ):
        self.loop = loop
        self.medium = medium
        self.netem = netem or NetemConfig()
        rngs = rng or RngStreams(0)
        self._rngs = rngs
        self._tracer = tracer
        self._phone_qdisc_segments = phone_qdisc_segments

        self.on_server_receive: Optional[PacketSink] = None

        # ---- uplink data path: phone qdisc -> access up -> router -> server
        self.uplink = make_access_link(
            loop, medium, "up", rngs.stream("uplink"), tracer=tracer
        )
        self.phone_qdisc = DropTailQueue(
            loop, self.uplink, capacity_segments=phone_qdisc_segments,
            name="phone-qdisc", tracer=tracer,
        )
        router_rate = self.netem.rate_bps or gbps(1.0)
        self.router_server_link = Link(
            loop, router_rate, microseconds(50), name="router-server",
            tracer=tracer,
        )
        buffer_segments = self.netem.buffer_segments or DEFAULT_ROUTER_BUFFER_SEGMENTS
        self.router_queue = DropTailQueue(
            loop, self.router_server_link, capacity_segments=buffer_segments,
            name="router-queue", input_link=self.uplink, tracer=tracer,
        )
        self._uplink_impairment = NetemImpairment(
            loop, self.netem, self.router_queue.enqueue, rngs.stream("netem"),
        )
        self.uplink.connect(self._uplink_impairment)
        self.router_server_link.connect(self._deliver_to_server)

        # ---- return path: server -> router -> access down -> phone
        self.server_router_link = Link(
            loop, gbps(1.0), microseconds(50), name="server-router",
            tracer=tracer,
        )
        self.downlink = make_access_link(
            loop, medium, "down", rngs.stream("downlink"), tracer=tracer
        )
        self.server_router_link.connect(self.downlink.send)
        self.downlink.connect(self._deliver_to_phone)

        #: all sender attachment points; port 0 is the legacy phone
        self.ports: List[SenderPort] = [
            SenderPort(0, self.uplink, self.phone_qdisc, self.downlink)
        ]
        #: flow id -> owning port, for return-path (ACK) routing
        self._flow_ports: Dict[int, SenderPort] = {}

    # -- multi-sender topology -------------------------------------------------

    def add_sender_port(self, netem: Optional[NetemConfig] = None) -> SenderPort:
        """Attach another sender host to the shared bottleneck.

        The new port mirrors port 0 — its own qdisc, access uplink and
        downlink with independent RNG streams — and feeds the same router
        queue. *netem* adds a per-port impairment (extra one-way delay /
        loss) on the data path between this host's uplink and the router;
        rate and buffer remain properties of the shared bottleneck.
        """
        index = len(self.ports)
        uplink = make_access_link(
            self.loop, self.medium, "up", self._rngs.stream(f"uplink-{index}"),
            tracer=self._tracer, name=f"{self.medium.name}-uplink-{index}",
        )
        qdisc = DropTailQueue(
            self.loop, uplink, capacity_segments=self._phone_qdisc_segments,
            name=f"phone-qdisc-{index}", tracer=self._tracer,
        )
        sink: PacketSink = self._uplink_impairment
        if netem is not None:
            sink = NetemImpairment(
                self.loop, netem, self._uplink_impairment,
                self._rngs.stream(f"netem-{index}"),
            )
        uplink.connect(sink)
        downlink = make_access_link(
            self.loop, self.medium, "down", self._rngs.stream(f"downlink-{index}"),
            tracer=self._tracer, name=f"{self.medium.name}-downlink-{index}",
        )
        port = SenderPort(index, uplink, qdisc, downlink)
        downlink.connect(port.deliver)
        self.ports.append(port)
        # ACKs must now be demultiplexed per flow instead of going
        # straight to port 0's downlink. Single-port testbeds keep the
        # direct wiring (and its exact event sequence).
        self.server_router_link.connect(self._route_downlink)
        return port

    def set_port_netem(self, index: int, netem: NetemConfig) -> None:
        """Insert a per-port impairment on an existing port's data path."""
        port = self.ports[index]
        impairment = NetemImpairment(
            self.loop, netem, self._uplink_impairment,
            self._rngs.stream(f"netem-{index}"),
        )
        port.uplink.connect(impairment)

    def register_flow(self, flow_id: int, port: SenderPort) -> None:
        """Record which port owns *flow_id* (return-path routing)."""
        self._flow_ports[flow_id] = port

    # -- host-facing API -----------------------------------------------------

    @property
    def on_phone_receive(self) -> Optional[PacketSink]:
        """Port 0's RX entry point (legacy single-sender interface)."""
        return self.ports[0].receiver

    @on_phone_receive.setter
    def on_phone_receive(self, sink: Optional[PacketSink]) -> None:
        self.ports[0].receiver = sink

    def phone_send(self, packet: Packet) -> None:
        """Phone NIC entry point: enqueue a data packet on port 0's qdisc."""
        self.phone_qdisc.enqueue(packet)

    def server_send(self, packet: Packet) -> None:
        """Server NIC entry point (ACKs)."""
        self.server_router_link.send(packet)

    # -- stats ----------------------------------------------------------------

    @property
    def router_dropped_segments(self) -> int:
        """Segments tail-dropped at the router's egress buffer."""
        return self.router_queue.dropped_segments

    @property
    def phone_dropped_segments(self) -> int:
        """Segments tail-dropped at the sender hosts' own qdiscs."""
        return sum(port.qdisc.dropped_segments for port in self.ports)

    @property
    def phone_backlog_segments(self) -> int:
        """Current backlog summed over every sender qdisc."""
        return sum(port.qdisc.backlog_segments for port in self.ports)

    @property
    def peak_phone_qdisc_segments(self) -> int:
        """Deepest backlog any sender qdisc reached."""
        return max(port.qdisc.max_backlog_segments for port in self.ports)

    def stop_processes(self) -> None:
        """Stop periodic media processes so the event loop can drain."""
        for port in self.ports:
            for link in (port.uplink, port.downlink):
                stop = getattr(link, "stop", None)
                if stop is not None:
                    stop()

    # -- internals -------------------------------------------------------------

    def _deliver_to_server(self, packet: Packet) -> None:
        if self.on_server_receive is None:
            raise RuntimeError("no server receiver attached to testbed")
        self.on_server_receive(packet)

    def _deliver_to_phone(self, packet: Packet) -> None:
        self.ports[0].deliver(packet)

    def _route_downlink(self, packet: Packet) -> None:
        port = self._flow_ports.get(packet.flow_id)
        (port if port is not None else self.ports[0]).downlink.send(packet)
