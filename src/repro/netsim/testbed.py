"""The paper's testbed topology (Figure 1).

::

    [phone / iperf client] --access medium--> [OpenWRT router] --Ethernet--> [iperf server]

Data flows uplink (phone to server); ACKs flow back. The phone side has a
transmit qdisc (droptail, generous by default); the router's server-facing
port carries the optional ``tc`` impairments (rate limit, delay, loss,
buffer depth) of :class:`~repro.netsim.shaper.NetemConfig`.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..sim import EventLoop, RngStreams, Tracer, NULL_TRACER
from ..units import gbps, microseconds
from .link import Link
from .media import MediumProfile, make_access_link
from .packet import Packet
from .queue import DropTailQueue
from .shaper import NetemConfig, NetemImpairment

__all__ = ["Testbed", "DEFAULT_PHONE_QDISC_SEGMENTS", "DEFAULT_ROUTER_BUFFER_SEGMENTS"]

#: Default phone transmit qdisc depth in MSS segments (pfifo-like).
DEFAULT_PHONE_QDISC_SEGMENTS = 1000

#: Default router egress buffer in MSS segments (a deep LAN-router buffer).
DEFAULT_ROUTER_BUFFER_SEGMENTS = 2000

PacketSink = Callable[[Packet], None]


class Testbed:
    """Assembles links, queues and impairments into Figure 1's topology.

    Hosts interact through four methods:

    * :meth:`phone_send` — phone TCP stack hands a data packet to its qdisc,
    * ``on_server_receive`` — called with packets arriving at the server,
    * :meth:`server_send` — server hands an ACK to the return path,
    * ``on_phone_receive`` — called with ACKs arriving at the phone.
    """

    def __init__(
        self,
        loop: EventLoop,
        medium: MediumProfile,
        netem: Optional[NetemConfig] = None,
        rng: Optional[RngStreams] = None,
        phone_qdisc_segments: int = DEFAULT_PHONE_QDISC_SEGMENTS,
        tracer: Tracer = NULL_TRACER,
    ):
        self.loop = loop
        self.medium = medium
        self.netem = netem or NetemConfig()
        rngs = rng or RngStreams(0)
        self._tracer = tracer

        self.on_server_receive: Optional[PacketSink] = None
        self.on_phone_receive: Optional[PacketSink] = None

        # ---- uplink data path: phone qdisc -> access up -> router -> server
        self.uplink = make_access_link(
            loop, medium, "up", rngs.stream("uplink"), tracer=tracer
        )
        self.phone_qdisc = DropTailQueue(
            loop, self.uplink, capacity_segments=phone_qdisc_segments,
            name="phone-qdisc", tracer=tracer,
        )
        router_rate = self.netem.rate_bps or gbps(1.0)
        self.router_server_link = Link(
            loop, router_rate, microseconds(50), name="router-server",
            tracer=tracer,
        )
        buffer_segments = self.netem.buffer_segments or DEFAULT_ROUTER_BUFFER_SEGMENTS
        self.router_queue = DropTailQueue(
            loop, self.router_server_link, capacity_segments=buffer_segments,
            name="router-queue", input_link=self.uplink, tracer=tracer,
        )
        self._uplink_impairment = NetemImpairment(
            loop, self.netem, self.router_queue.enqueue, rngs.stream("netem"),
        )
        self.uplink.connect(self._uplink_impairment)
        self.router_server_link.connect(self._deliver_to_server)

        # ---- return path: server -> router -> access down -> phone
        self.server_router_link = Link(
            loop, gbps(1.0), microseconds(50), name="server-router",
            tracer=tracer,
        )
        self.downlink = make_access_link(
            loop, medium, "down", rngs.stream("downlink"), tracer=tracer
        )
        self.server_router_link.connect(self.downlink.send)
        self.downlink.connect(self._deliver_to_phone)

    # -- host-facing API -----------------------------------------------------

    def phone_send(self, packet: Packet) -> None:
        """Phone NIC entry point: enqueue a data packet on the qdisc."""
        self.phone_qdisc.enqueue(packet)

    def server_send(self, packet: Packet) -> None:
        """Server NIC entry point (ACKs)."""
        self.server_router_link.send(packet)

    # -- stats ----------------------------------------------------------------

    @property
    def router_dropped_segments(self) -> int:
        """Segments tail-dropped at the router's egress buffer."""
        return self.router_queue.dropped_segments

    @property
    def phone_dropped_segments(self) -> int:
        """Segments tail-dropped at the phone's own qdisc."""
        return self.phone_qdisc.dropped_segments

    def stop_processes(self) -> None:
        """Stop periodic media processes so the event loop can drain."""
        for link in (self.uplink, self.downlink):
            stop = getattr(link, "stop", None)
            if stop is not None:
                stop()

    # -- internals -------------------------------------------------------------

    def _deliver_to_server(self, packet: Packet) -> None:
        if self.on_server_receive is None:
            raise RuntimeError("no server receiver attached to testbed")
        self.on_server_receive(packet)

    def _deliver_to_phone(self, packet: Packet) -> None:
        if self.on_phone_receive is None:
            raise RuntimeError("no phone receiver attached to testbed")
        self.on_phone_receive(packet)
