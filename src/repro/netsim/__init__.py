"""Network substrate: packets, links, queues, impairments, media, testbed.

See :class:`~repro.netsim.testbed.Testbed` for the assembled Figure-1
topology and :mod:`repro.netsim.media` for the Ethernet/WiFi/LTE profiles.
"""

from .link import Link
from .media import (
    ETHERNET_LAN,
    LTE_CELLULAR,
    MEDIA,
    WIFI_LAN,
    MediumProfile,
    VariableRateLink,
    make_access_link,
)
from .packet import DEFAULT_MSS, HEADER_BYTES, Packet, SackBlock
from .queue import DropTailQueue
from .shaper import NetemConfig, NetemImpairment
from .testbed import (
    DEFAULT_PHONE_QDISC_SEGMENTS,
    DEFAULT_ROUTER_BUFFER_SEGMENTS,
    SenderPort,
    Testbed,
)

__all__ = [
    "Link",
    "MediumProfile",
    "ETHERNET_LAN",
    "WIFI_LAN",
    "LTE_CELLULAR",
    "MEDIA",
    "VariableRateLink",
    "make_access_link",
    "Packet",
    "SackBlock",
    "DEFAULT_MSS",
    "HEADER_BYTES",
    "DropTailQueue",
    "NetemConfig",
    "NetemImpairment",
    "Testbed",
    "SenderPort",
    "DEFAULT_PHONE_QDISC_SEGMENTS",
    "DEFAULT_ROUTER_BUFFER_SEGMENTS",
]
