"""Droptail buffering in front of a link.

:class:`DropTailQueue` is used both as the phone's transmit qdisc and as
the router's egress buffer. Capacity is expressed in MSS-sized segments
(the paper's "10-packet shallow buffer" is ``capacity_segments=10``).
When an arriving GSO super-packet does not fully fit, the head segments
that do fit are admitted and the tail is dropped — per-segment droptail
semantics at super-packet event cost.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..kernel import compiled_for
from ..sim import EventLoop, Tracer, NULL_TRACER
from .link import Link
from .packet import Packet

__all__ = ["DropTailQueue"]


class DropTailQueue:
    """A bounded FIFO feeding a :class:`~repro.netsim.link.Link`.

    The queue hands one packet at a time to the link and refills on the
    link's delivery completions (modelled by polling the link's busy
    state when packets are admitted and when the wire drains).
    """

    def __new__(cls, *args, **kwargs):
        # Kernel routing: droptail queues on a compiled-kernel loop are C
        # queues (the fed link may be either backend — the C queue calls
        # a python link's send() through the method protocol, which keeps
        # VariableRateLink media working). Traced queues stay pure.
        if cls is DropTailQueue and args:
            tracer = kwargs.get(
                "tracer", args[5] if len(args) > 5 else NULL_TRACER
            )
            ck = compiled_for(args[0])
            if ck is not None and not tracer.enabled:
                return ck.DropTailQueue(*args, **kwargs)
        return super().__new__(cls)

    def __init__(
        self,
        loop: EventLoop,
        link: Link,
        capacity_segments: int = 1000,
        name: str = "queue",
        input_link: Optional[Link] = None,
        tracer: Tracer = NULL_TRACER,
    ):
        if capacity_segments < 1:
            raise ValueError("queue capacity must be at least one segment")
        self._loop = loop
        self.link = link
        #: upstream link feeding this queue, if any. Used to credit the
        #: drain that happens *while a GSO super-packet's segments are
        #: still arriving*: the simulator delivers a super-packet as one
        #: event at the end of its serialization, but a real droptail
        #: queue interleaves per-MTU arrivals with departures, so up to
        #: ``segments * egress_rate / ingress_rate`` segments leave
        #: during the arrival itself.
        self.input_link = input_link
        self.capacity_segments = int(capacity_segments)
        self.name = name
        self._tracer = tracer
        self._fifo: Deque[Packet] = deque()
        self._backlog_segments = 0
        self._link_busy = False
        # Optional callback invoked when segments are dropped
        self.on_drop: Optional[Callable[[Packet, int], None]] = None
        # stats
        self.enqueued_segments = 0
        self.dropped_segments = 0
        self.dropped_packets = 0
        self.max_backlog_segments = 0
        self.backlog_sum_segments = 0.0
        self._backlog_samples = 0

    # -- ingress ------------------------------------------------------------

    def enqueue(self, packet: Packet) -> None:
        """Admit as much of *packet* as fits; drop the rest (tail drop)."""
        free = self.capacity_segments - self._backlog_segments
        if self.input_link is not None and not packet.is_ack:
            ratio = self.link.rate_bps / self.input_link.rate_bps
            if ratio > 1.0:
                ratio = 1.0
            free += int(packet.segments * ratio)
        segs = packet.segments
        if segs <= free:
            self._admit(packet)
            return
        if free > 0 and not packet.is_ack:
            head = packet.split_head(free)
            if head is not None:
                self._admit(head)
        # remainder of `packet` (possibly all of it) is dropped
        self.dropped_packets += 1
        self.dropped_segments += packet.segments
        if self._tracer.enabled:
            self._tracer.emit(self._loop.now, self.name, "drop",
                              flow=packet.flow_id, segs=packet.segments)
        if self.on_drop is not None:
            self.on_drop(packet, packet.segments)

    def _admit(self, packet: Packet) -> None:
        self._fifo.append(packet)
        self._backlog_segments += packet.segments
        self.enqueued_segments += packet.segments
        if self._backlog_segments > self.max_backlog_segments:
            self.max_backlog_segments = self._backlog_segments
        self._pump()

    # -- egress -------------------------------------------------------------

    def _pump(self) -> None:
        if self._link_busy or not self._fifo:
            return
        packet = self._fifo.popleft()
        self._backlog_segments -= packet.segments
        self._link_busy = True
        # The link serializes exactly one packet at a time here because we
        # only hand it one; it reports the serialization time it just
        # computed, so the refill is scheduled without recomputing it.
        tx_ns = self.link.send(packet)
        if tx_ns is None:
            tx_ns = self.link.serialization_ns(packet)
        self._loop.call_after(tx_ns, self._tx_done)

    def _tx_done(self) -> None:
        self._link_busy = False
        self._pump()

    # -- introspection ------------------------------------------------------

    @property
    def backlog_segments(self) -> int:
        """Segments currently buffered (excluding the one on the wire)."""
        return self._backlog_segments

    @property
    def backlog_packets(self) -> int:
        """Super-packets currently buffered."""
        return len(self._fifo)

    def sample_backlog(self) -> None:
        """Record the instantaneous backlog for averaging (metrics hook)."""
        self.backlog_sum_segments += self._backlog_segments
        self._backlog_samples += 1

    @property
    def mean_backlog_segments(self) -> float:
        """Mean of sampled backlogs (0 if never sampled)."""
        if self._backlog_samples == 0:
            return 0.0
        return self.backlog_sum_segments / self._backlog_samples
