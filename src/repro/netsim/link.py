"""Point-to-point links.

A :class:`Link` serializes packets at a line rate and delivers them after
a propagation delay. Links are unidirectional; a duplex cable is two
links. Media with time-varying capacity (WiFi, LTE) subclass and adjust
:attr:`rate_bps` from a periodic process.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..kernel import compiled_for
from ..sim import EventLoop, Tracer, NULL_TRACER
from ..units import SEC, transmit_time
from .packet import Packet

__all__ = ["Link"]

PacketSink = Callable[[Packet], None]


class Link:
    """A unidirectional link with rate, propagation delay, and a FIFO.

    The internal FIFO only models *serialization* (one packet on the wire
    at a time); buffering policy belongs to the upstream queue/qdisc. The
    FIFO is unbounded because upstream components are expected to respect
    :meth:`backlogged` (qdiscs do) or bound their own buffers (routers do).
    """

    def __new__(cls, *args, **kwargs):
        # Kernel routing: plain links on a compiled-kernel loop are C
        # links. Subclasses (VariableRateLink) and traced links stay
        # pure — their Python method overrides must keep working.
        if cls is Link and args:
            tracer = kwargs.get(
                "tracer", args[4] if len(args) > 4 else NULL_TRACER
            )
            ck = compiled_for(args[0])
            if ck is not None and not tracer.enabled:
                return ck.Link(*args, **kwargs)
        return super().__new__(cls)

    def __init__(
        self,
        loop: EventLoop,
        rate_bps: float,
        prop_delay_ns: int = 0,
        name: str = "link",
        tracer: Tracer = NULL_TRACER,
    ):
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        self._loop = loop
        self.rate_bps = float(rate_bps)
        self.prop_delay_ns = int(prop_delay_ns)
        self.name = name
        self._tracer = tracer
        self.sink: Optional[PacketSink] = None
        self._fifo: Deque[Packet] = deque()
        self._transmitting = False
        # stats
        self.packets_sent = 0
        self.bytes_sent = 0
        self.busy_ns = 0

    def connect(self, sink: PacketSink) -> None:
        """Set the receiver callback for delivered packets."""
        self.sink = sink

    # -- sending ------------------------------------------------------------

    def send(self, packet: Packet) -> Optional[int]:
        """Begin (or queue for) serialization of *packet*.

        Returns the serialization time (ns) when transmission starts
        immediately, else ``None`` — letting a caller that hands the link
        one packet at a time (the droptail queue) schedule its own refill
        without recomputing the transmit time.
        """
        self._fifo.append(packet)
        if not self._transmitting:
            return self._start_next()
        return None

    @property
    def backlogged(self) -> bool:
        """True while the wire is busy or the FIFO is non-empty."""
        return self._transmitting or bool(self._fifo)

    @property
    def queue_len(self) -> int:
        """Packets waiting for the wire (excludes the one being sent)."""
        return len(self._fifo)

    def serialization_ns(self, packet: Packet) -> int:
        """Time to clock *packet* onto the wire at the current rate."""
        return transmit_time(packet.wire_bytes, self.rate_bps)

    # -- internals ----------------------------------------------------------

    def _start_next(self) -> Optional[int]:
        if not self._fifo:
            return None
        packet = self._fifo.popleft()
        self._transmitting = True
        # Inlined transmit_time (same expression, so timings stay
        # bit-identical); the rate > 0 invariant is enforced at set time.
        tx_ns = int(round(packet.wire_bytes * 8 * SEC / self.rate_bps))
        self.busy_ns += tx_ns
        self._loop.call_after(tx_ns, self._tx_done, packet)
        return tx_ns

    def _tx_done(self, packet: Packet) -> None:
        self._transmitting = False
        self.packets_sent += 1
        self.bytes_sent += packet.wire_bytes
        if self._tracer.enabled:
            self._tracer.emit(self._loop.now, self.name, "tx",
                              flow=packet.flow_id, bytes=packet.wire_bytes,
                              segs=packet.segments)
        # Delivery, inlined (one call per packet on the hottest path).
        sink = self.sink
        if sink is None:
            raise RuntimeError(f"link {self.name} has no sink connected")
        if self.prop_delay_ns > 0:
            self._loop.call_after(self.prop_delay_ns, sink, packet)
        else:
            self._loop.call_after(0, sink, packet)
        if self._fifo:
            self._start_next()
