"""Wire units exchanged by the simulated hosts.

To keep event counts tractable at gigabit rates, the simulator moves
*GSO super-packets*: one :class:`Packet` carries a contiguous byte range
of up to tens of kilobytes (exactly like an skb handed to a TSO-capable
NIC). Queues account for them in MSS-sized segments, and the droptail
router may split a super-packet, accepting the head segments and dropping
the tail — which preserves per-segment loss behaviour at super-packet
event cost.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["Packet", "SackBlock", "DEFAULT_MSS", "HEADER_BYTES"]

#: Default TCP maximum segment size (1500 MTU - 40 IP/TCP - 12 timestamps).
DEFAULT_MSS = 1448

#: Per-segment wire overhead: Ethernet (14+4+8+12 framing) + IP (20) + TCP (32).
HEADER_BYTES = 90

_packet_ids = itertools.count(1)

SackBlock = Tuple[int, int]


@dataclass
class Packet:
    """A data super-packet or an ACK.

    Data packets carry the byte range ``[seq, seq + length)`` of a flow.
    ACK packets have ``length == 0``, a cumulative ``ack`` sequence and an
    optional list of SACK blocks. ``echo_ts`` carries the send timestamp of
    the data that elicited the ACK (TCP timestamp option), which the sender
    uses for RTT measurement.
    """

    flow_id: int
    seq: int = 0
    length: int = 0
    mss: int = DEFAULT_MSS
    is_ack: bool = False
    ack: int = 0
    #: receiver's advertised window in bytes (on ACKs)
    rwnd: int = 1 << 30
    sack_blocks: List[SackBlock] = field(default_factory=list)
    echo_ts: Optional[int] = None
    sent_ts: Optional[int] = None
    is_retransmission: bool = False
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def end_seq(self) -> int:
        """One past the last byte carried."""
        return self.seq + self.length

    @property
    def segments(self) -> int:
        """Number of MSS-sized wire segments this packet represents."""
        if self.length <= 0:
            return 1  # pure ACK occupies one slot
        return -(-self.length // self.mss)  # ceil division

    @property
    def wire_bytes(self) -> int:
        """Bytes on the wire including per-segment header overhead."""
        return self.length + self.segments * HEADER_BYTES

    def split_head(self, max_segments: int) -> Optional["Packet"]:
        """Split off the first *max_segments* segments as a new packet.

        Shrinks ``self`` to the remaining tail and returns the head, or
        ``None`` when ``max_segments`` is 0 or this is an ACK. Used by the
        droptail queue to admit a partial super-packet.
        """
        if self.is_ack or max_segments <= 0 or max_segments >= self.segments:
            return None
        head_len = max_segments * self.mss
        head = Packet(
            flow_id=self.flow_id,
            seq=self.seq,
            length=head_len,
            mss=self.mss,
            sent_ts=self.sent_ts,
            is_retransmission=self.is_retransmission,
        )
        self.seq += head_len
        self.length -= head_len
        return head

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_ack:
            return f"<ACK flow={self.flow_id} ack={self.ack} sacks={len(self.sack_blocks)}>"
        return f"<DATA flow={self.flow_id} [{self.seq},{self.end_seq}) segs={self.segments}>"
