"""Wire units exchanged by the simulated hosts.

To keep event counts tractable at gigabit rates, the simulator moves
*GSO super-packets*: one :class:`Packet` carries a contiguous byte range
of up to tens of kilobytes (exactly like an skb handed to a TSO-capable
NIC). Queues account for them in MSS-sized segments, and the droptail
router may split a super-packet, accepting the head segments and dropping
the tail — which preserves per-segment loss behaviour at super-packet
event cost.

Packets are the hottest per-event allocation in a run (one data packet
and one ACK per super-packet round trip), so :class:`Packet` is a plain
``__slots__`` class with ``segments``/``wire_bytes`` precomputed at the
two sites that can change them (construction and :meth:`Packet.split_head`)
rather than recomputed as properties on every queue/link touch, and
:class:`PacketPool` recycles delivered packets through a bounded free
list — an ACK reuses the previous ACK's ``sack_blocks`` list in place
instead of allocating a fresh one.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

__all__ = [
    "Packet",
    "PacketPool",
    "PACKET_POOL",
    "SackBlock",
    "DEFAULT_MSS",
    "HEADER_BYTES",
]

#: Default TCP maximum segment size (1500 MTU - 40 IP/TCP - 12 timestamps).
DEFAULT_MSS = 1448

#: Per-segment wire overhead: Ethernet (14+4+8+12 framing) + IP (20) + TCP (32).
HEADER_BYTES = 90

_packet_ids = itertools.count(1)

SackBlock = Tuple[int, int]


class Packet:
    """A data super-packet or an ACK.

    Data packets carry the byte range ``[seq, seq + length)`` of a flow.
    ACK packets have ``length == 0``, a cumulative ``ack`` sequence and an
    optional list of SACK blocks. ``echo_ts`` carries the send timestamp of
    the data that elicited the ACK (TCP timestamp option), which the sender
    uses for RTT measurement.

    ``segments`` and ``wire_bytes`` are plain attributes kept current by
    ``__init__`` and :meth:`split_head` (the only places ``seq``/``length``
    legitimately change); everything downstream reads them for free.
    """

    __slots__ = (
        "flow_id",
        "seq",
        "length",
        "mss",
        "is_ack",
        "ack",
        "rwnd",
        "sack_blocks",
        "echo_ts",
        "sent_ts",
        "is_retransmission",
        "packet_id",
        "segments",
        "wire_bytes",
        "_pooled",
    )

    def __init__(
        self,
        flow_id: int,
        seq: int = 0,
        length: int = 0,
        mss: int = DEFAULT_MSS,
        is_ack: bool = False,
        ack: int = 0,
        rwnd: int = 1 << 30,
        sack_blocks: Optional[List[SackBlock]] = None,
        echo_ts: Optional[int] = None,
        sent_ts: Optional[int] = None,
        is_retransmission: bool = False,
    ):
        self.flow_id = flow_id
        self.seq = seq
        self.length = length
        self.mss = mss
        self.is_ack = is_ack
        self.ack = ack
        #: receiver's advertised window in bytes (on ACKs)
        self.rwnd = rwnd
        self.sack_blocks = sack_blocks if sack_blocks is not None else []
        self.echo_ts = echo_ts
        self.sent_ts = sent_ts
        self.is_retransmission = is_retransmission
        self.packet_id = next(_packet_ids)
        segments = 1 if length <= 0 else -(-length // mss)  # pure ACK = 1 slot
        self.segments = segments
        self.wire_bytes = length + segments * HEADER_BYTES
        self._pooled = False

    @property
    def end_seq(self) -> int:
        """One past the last byte carried."""
        return self.seq + self.length

    def split_head(self, max_segments: int) -> Optional["Packet"]:
        """Split off the first *max_segments* segments as a new packet.

        Shrinks ``self`` to the remaining tail and returns the head, or
        ``None`` when ``max_segments`` is 0 or this is an ACK. Used by the
        droptail queue to admit a partial super-packet.
        """
        if self.is_ack or max_segments <= 0 or max_segments >= self.segments:
            return None
        head_len = max_segments * self.mss
        head = Packet(
            flow_id=self.flow_id,
            seq=self.seq,
            length=head_len,
            mss=self.mss,
            sent_ts=self.sent_ts,
            is_retransmission=self.is_retransmission,
        )
        self.seq += head_len
        length = self.length - head_len
        self.length = length
        segments = 1 if length <= 0 else -(-length // self.mss)
        self.segments = segments
        self.wire_bytes = length + segments * HEADER_BYTES
        return head

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_ack:
            return f"<ACK flow={self.flow_id} ack={self.ack} sacks={len(self.sack_blocks)}>"
        return f"<DATA flow={self.flow_id} [{self.seq},{self.end_seq}) segs={self.segments}>"


class PacketPool:
    """Bounded free list recycling :class:`Packet` objects at delivery.

    Packets live exactly one network traversal: built at the sender (or
    receiver, for ACKs), handed through queues and links, consumed at the
    far host. Nothing retains them afterwards — the sender's bookkeeping
    lives in ``TxRecord``s, the receiver's in its reassembly intervals —
    so the consuming host releases them back here and the next transmit
    reuses the object instead of allocating. Dropped packets are simply
    garbage-collected (drops are rare; skipping the release keeps every
    failure path trivially safe).

    ``release`` is guarded by the packet's ``_pooled`` flag, so a stray
    double release cannot put the same object in the list twice.
    """

    __slots__ = ("_free", "max_free", "acquired", "reused")

    def __init__(self, max_free: int = 4096):
        self._free: List[Packet] = []
        self.max_free = int(max_free)
        # stats (exposed for the allocation microbenchmark)
        self.acquired = 0
        self.reused = 0

    def acquire_data(
        self,
        flow_id: int,
        seq: int,
        length: int,
        mss: int,
        sent_ts: int,
        is_retransmission: bool = False,
    ) -> Packet:
        """A data packet carrying ``[seq, seq + length)``."""
        self.acquired += 1
        free = self._free
        if not free:
            return Packet(
                flow_id=flow_id,
                seq=seq,
                length=length,
                mss=mss,
                sent_ts=sent_ts,
                is_retransmission=is_retransmission,
            )
        self.reused += 1
        packet = free.pop()
        packet._pooled = False
        packet.flow_id = flow_id
        packet.seq = seq
        packet.length = length
        packet.mss = mss
        packet.is_ack = False
        packet.ack = 0
        packet.rwnd = 1 << 30
        packet.sack_blocks.clear()
        packet.echo_ts = None
        packet.sent_ts = sent_ts
        packet.is_retransmission = is_retransmission
        packet.packet_id = next(_packet_ids)
        segments = 1 if length <= 0 else -(-length // mss)
        packet.segments = segments
        packet.wire_bytes = length + segments * HEADER_BYTES
        return packet

    def acquire_ack(
        self,
        flow_id: int,
        ack: int,
        rwnd: int,
        echo_ts: Optional[int],
    ) -> Packet:
        """An ACK packet; ``sack_blocks`` comes back empty for in-place fill."""
        self.acquired += 1
        free = self._free
        if not free:
            return Packet(
                flow_id=flow_id, is_ack=True, ack=ack, rwnd=rwnd, echo_ts=echo_ts
            )
        self.reused += 1
        packet = free.pop()
        packet._pooled = False
        packet.flow_id = flow_id
        packet.seq = 0
        packet.length = 0
        packet.is_ack = True
        packet.ack = ack
        packet.rwnd = rwnd
        packet.sack_blocks.clear()
        packet.echo_ts = echo_ts
        packet.sent_ts = None
        packet.is_retransmission = False
        packet.packet_id = next(_packet_ids)
        packet.segments = 1
        packet.wire_bytes = HEADER_BYTES
        return packet

    def release(self, packet: Packet) -> None:
        """Return *packet* to the free list (no-op if already there)."""
        if packet._pooled:
            return
        free = self._free
        if len(free) < self.max_free:
            packet._pooled = True
            free.append(packet)


#: Process-wide pool shared by senders and receivers. Safe to share across
#: experiments in one process: a pooled packet is inert storage, and every
#: acquire fully reinitializes it (packet_id was already a process-global
#: counter before pooling existed).
PACKET_POOL = PacketPool()
