"""The paper-facing API: experiment specs, the runner, stride studies,
and the §6 analytical model."""

from .analysis import StrideRow, expected_throughput_bps, idle_time_ns
from .experiment import (
    ExperimentResult,
    ExperimentSpec,
    ReplicatedResult,
    make_cc_factory,
    run_experiment,
    run_replicated,
)
from .flows import FlowSpec, resolve_flows
from .scenario import (
    canonical_spec_json,
    expand_scenario,
    expand_scenario_dicts,
    flow_from_dict,
    flow_to_dict,
    load_scenario,
    load_scenario_doc,
    spec_digest,
    spec_from_dict,
    spec_to_dict,
)
from .stride import PAPER_STRIDES, AdaptiveStrideController, sweep_strides

__all__ = [
    "ExperimentSpec",
    "ExperimentResult",
    "ReplicatedResult",
    "FlowSpec",
    "resolve_flows",
    "run_experiment",
    "run_replicated",
    "make_cc_factory",
    "spec_to_dict",
    "spec_from_dict",
    "flow_to_dict",
    "flow_from_dict",
    "canonical_spec_json",
    "spec_digest",
    "expand_scenario",
    "expand_scenario_dicts",
    "load_scenario",
    "load_scenario_doc",
    "PAPER_STRIDES",
    "sweep_strides",
    "AdaptiveStrideController",
    "StrideRow",
    "expected_throughput_bps",
    "idle_time_ns",
]
