"""Flow-level experiment description: heterogeneous senders at one bottleneck.

The source paper only ever needs N identical greedy uplink flows from a
single phone, which is what ``ExperimentSpec.connections`` expresses. The
related work the ROADMAP targets (BBR-vs-Cubic share studies,
RTT-unfairness sweeps, web-like churn) needs the *flow* as a first-class
entity: each :class:`FlowSpec` describes one sender host attached to the
shared bottleneck — its congestion control, its access-path impairment
(base RTT / loss), the lifetime of its flows, and optionally a seeded
Poisson arrival process of finite transfers.

``ExperimentSpec.flows`` holds a tuple of these; an empty tuple means the
legacy single-host shape, which :func:`resolve_flows` maps to the exact
equivalent one-entry plan so both spellings run the same code path (and
produce bit-identical results for archived grids).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..netsim import NetemConfig

__all__ = ["FlowSpec", "resolve_flows"]


@dataclass(frozen=True)
class FlowSpec:
    """One sender host and the flows it contributes to the experiment.

    Every host gets its own device CPU, TCP stack, qdisc and access
    links; all hosts share the router bottleneck. ``count`` static flows
    are opened at ``start_s`` (slightly staggered, like the legacy iperf
    client); each is greedy unless ``transfer_bytes`` bounds it. With
    ``arrival_rate_hz`` > 0 the host additionally spawns finite flows at
    Poisson arrival times with exponentially distributed sizes (mean
    ``mean_transfer_bytes``), drawn from the experiment's seeded
    :class:`~repro.sim.rng.RngStreams` — so churn is identical under
    serial, parallel, and cached execution.
    """

    #: congestion control for this host's flows: "cubic" | "bbr" | ...
    cc: str = "bbr"
    #: static flows opened at start_s (0 = churn-only host)
    count: int = 1
    #: when the static flows open, seconds
    start_s: float = 0.0
    #: when this host's flows close (None = run to the end)
    stop_s: Optional[float] = None
    #: static flows stop after this many bytes (None = greedy);
    #: rounded up to whole MSS segments by the flow client
    transfer_bytes: Optional[int] = None
    #: per-host access-path impairment (extra one-way delay / loss on the
    #: data path); rate/buffer describe the shared bottleneck and belong
    #: in the spec-level ``netem``
    netem: Optional[NetemConfig] = None
    #: Poisson arrival rate of extra finite flows (0 = no churn)
    arrival_rate_hz: float = 0.0
    #: mean of the exponential flow-size draw (required with churn)
    mean_transfer_bytes: Optional[int] = None
    #: hard cap on churn arrivals (None = bounded by the run duration)
    max_arrivals: Optional[int] = None

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("flow count must be >= 0")
        if self.count == 0 and self.arrival_rate_hz <= 0:
            raise ValueError(
                "a flow entry needs static flows (count >= 1) or a churn "
                "process (arrival_rate_hz > 0)"
            )
        if self.start_s < 0:
            raise ValueError("start_s must be >= 0")
        if self.stop_s is not None and self.stop_s <= self.start_s:
            raise ValueError("stop_s must be > start_s")
        if self.transfer_bytes is not None and self.transfer_bytes <= 0:
            raise ValueError("transfer_bytes must be > 0")
        if self.arrival_rate_hz < 0:
            raise ValueError("arrival_rate_hz must be >= 0")
        if self.arrival_rate_hz > 0 and self.mean_transfer_bytes is None:
            raise ValueError("churn (arrival_rate_hz > 0) needs mean_transfer_bytes")
        if self.mean_transfer_bytes is not None and self.mean_transfer_bytes <= 0:
            raise ValueError("mean_transfer_bytes must be > 0")
        if self.max_arrivals is not None and self.max_arrivals < 1:
            raise ValueError("max_arrivals must be >= 1")

    def label(self) -> str:
        """Compact human-readable identifier for reports."""
        parts = [self.cc]
        if self.count != 1:
            parts.append(f"{self.count}c")
        if self.arrival_rate_hz > 0:
            parts.append(f"poisson@{self.arrival_rate_hz:g}/s")
        if self.netem is not None and self.netem.extra_delay_ns:
            parts.append(f"+{self.netem.extra_delay_ns / 1e6:g}ms")
        return "/".join(parts)


def resolve_flows(spec) -> Tuple[FlowSpec, ...]:
    """The spec's flow plan: explicit ``flows``, or the legacy mapping.

    A legacy spec (``flows == ()``) is exactly one host running
    ``spec.connections`` greedy flows under ``spec.cc`` — the shape every
    archived result grid was produced with.
    """
    if spec.flows:
        return spec.flows
    return (FlowSpec(cc=spec.cc, count=spec.connections),)
