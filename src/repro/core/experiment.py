"""Experiment runner: one call from specification to measured result.

This is the library's main entry point. A :class:`ExperimentSpec` names a
device + CPU configuration (Table 1), a medium (§3.2), a congestion
control, a connection count, and the §5/§6 knobs (pacing mode, master
module overrides, pacing stride). :func:`run_experiment` assembles the
full simulated testbed, runs the iperf workload, and returns an
:class:`ExperimentResult`; :func:`run_replicated` averages over seeds the
way the paper averages over 10 iperf runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields, replace
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..apps.flows import FlowClient
from ..apps.iperf import IperfServerApp
from ..cc import CC_ALGORITHMS, CongestionOps, MasterModule
from ..cpu import CostModel, EXECUTORS
from ..devices import CpuConfig, DeviceProfile, PIXEL_4, build_device
from ..kernel import resolve_kernel
from ..metrics.collector import StatAccumulator
from ..metrics.fairness import jain_fairness_index
from ..metrics.summary import RunSet
from ..netsim import ETHERNET_LAN, MediumProfile, NetemConfig, Testbed
from ..obs.ledger import RunLedger, resolve_ledger
from ..obs.probes import ProbeContext, ProbeSet
from ..obs.series import TimeSeries
from ..sim import EventLoop, NULL_TRACER, PeriodicTimer, RngStreams, Tracer
from ..tcp.connection import SocketConfig
from ..tcp.pacing import PacingMode
from ..tcp.stack import FlowIdAllocator, MobileTcpStack
from ..units import MSEC, mbps, seconds, to_mbps
from .flows import FlowSpec, resolve_flows

__all__ = [
    "ExperimentSpec",
    "ExperimentResult",
    "ReplicatedResult",
    "FlowSpec",
    "run_experiment",
    "run_replicated",
    "make_cc_factory",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything needed to reproduce one measurement point."""

    #: congestion control: "cubic" | "bbr" | "bbr2" | "reno"
    cc: str = "bbr"
    #: parallel connections (iperf3 -P)
    connections: int = 1
    device: DeviceProfile = PIXEL_4
    #: Table 1 configuration name (see :class:`repro.devices.CpuConfig`)
    cpu_config: str = CpuConfig.LOW_END
    medium: MediumProfile = ETHERNET_LAN
    netem: Optional[NetemConfig] = None
    #: pacing decision (§5.2): auto / forced on / forced off
    pacing_mode: str = PacingMode.AUTO
    #: the paper's pacing stride (§6); 1.0 = stock kernel
    pacing_stride: float = 1.0
    #: simulated transfer duration (the paper runs 5 min; the defaults
    #: here are shorter but past convergence — see EXPERIMENTS.md)
    duration_s: float = 8.0
    #: measurement starts after this warmup
    warmup_s: float = 2.0
    seed: int = 1
    #: cost-model override (None = device default); ablations use this
    costs: Optional[CostModel] = None
    # --- §5 master-module knobs ---
    disable_model: bool = False
    fixed_cwnd_segments: Optional[int] = None
    fixed_pacing_rate_mbps: Optional[float] = None
    #: stack work placement: "serial" (default, see DESIGN.md §4),
    #: "rps" (multi-core ablation), "free" (no CPU model)
    executor: str = "serial"
    phone_qdisc_segments: int = 1000
    #: telemetry probes to sample during the run (names registered in
    #: :data:`repro.obs.probes.PROBES`); results land in
    #: :attr:`ExperimentResult.timeseries`
    probes: Tuple[str, ...] = ()
    #: heterogeneous sender hosts (see :class:`repro.core.flows.FlowSpec`);
    #: empty = the legacy shape (``connections`` flows under ``cc``)
    flows: Tuple[FlowSpec, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.flows, tuple):
            object.__setattr__(self, "flows", tuple(self.flows))
        for flow in self.flows:
            if not isinstance(flow, FlowSpec):
                raise ValueError(
                    f"flows entries must be FlowSpec, got {type(flow).__name__}"
                )
        if self.flows and self.connections != 1:
            raise ValueError(
                "a spec uses either 'flows' or 'connections', not both "
                "(leave connections at its default of 1)"
            )

    def label(self) -> str:
        """Compact human-readable identifier for reports."""
        if self.flows:
            ccs = "+".join(dict.fromkeys(f.cc for f in self.flows))
            total = sum(f.count for f in self.flows)
            shape = f"{len(self.flows)}h{total}f"
            parts = [ccs, shape, self.cpu_config, self.medium.name]
        else:
            parts = [self.cc, f"{self.connections}c", self.cpu_config,
                     self.medium.name]
        if self.pacing_mode != PacingMode.AUTO:
            parts.append(f"pacing={self.pacing_mode}")
        if self.pacing_stride != 1.0:
            parts.append(f"stride={self.pacing_stride:g}x")
        return "/".join(parts)

    def to_dict(self) -> Dict[str, object]:
        """Serialize to a plain JSON-compatible dict (exact round trip).

        The inverse is :func:`repro.core.scenario.spec_from_dict`; this
        is the wire format specs travel in (worker processes, scenario
        files, archives).
        """
        from .scenario import spec_to_dict  # deferred: scenario imports us

        return spec_to_dict(self)


@dataclass
class ExperimentResult:
    """Measured outputs of one run."""

    spec: ExperimentSpec
    goodput_mbps: float
    per_flow_goodput_mbps: List[float]
    rtt_mean_ms: float
    rtt_p50_ms: float
    rtt_p95_ms: float
    rtt_min_ms: float
    retransmitted_segments: int
    rto_count: int
    cpu_busy_fraction: float
    #: Table 2 quantities (pacing connections only; 0.0 otherwise)
    mean_skb_bytes: float
    mean_idle_ms: float
    pacing_periods: int
    router_dropped_segments: int
    phone_dropped_segments: int
    peak_qdisc_segments: int
    #: memory proxy: peak of (qdisc backlog + unacked inflight), bytes
    peak_memory_bytes: int
    mean_memory_bytes: float
    mean_cwnd_segments: float
    events_processed: int
    #: flows that ran (static + churn-spawned), i.e. len(per_flow_goodput_mbps)
    flow_count: int = 1
    #: finite transfers that acknowledged all their bytes
    flows_completed: int = 0
    #: Jain index over per-flow goodput in the window (1.0 = equal shares)
    jain_fairness: float = 1.0
    #: flow-completion-time summary over completed finite transfers, ms
    fct_mean_ms: float = 0.0
    fct_p95_ms: float = 0.0
    #: probe output: series name -> :class:`~repro.obs.series.TimeSeries`
    #: (empty unless the spec selected probes)
    timeseries: Dict[str, TimeSeries] = field(default_factory=dict)

    def scalar_metrics(self) -> Dict[str, float]:
        """Flat metric dict for :class:`~repro.metrics.summary.RunSet`.

        Derived from the dataclass itself: every numeric field is a
        metric (so new fields aggregate automatically); the spec and
        per-flow list are skipped. Per-flow goodput *shares* are emitted
        as ``goodput_share_f<id>`` entries (flow ids follow creation
        order) whenever anything was delivered, so fairness outcomes ride
        through :class:`~repro.metrics.summary.RunSet` aggregation.
        """
        out: Dict[str, float] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out[f.name] = float(value)
        total = sum(self.per_flow_goodput_mbps)
        if total > 0.0:
            for index, goodput in enumerate(self.per_flow_goodput_mbps):
                out[f"goodput_share_f{index + 1}"] = goodput / total
        return out


@dataclass
class ReplicatedResult:
    """Aggregate over seeded replications (the paper's 10-run averages)."""

    spec: ExperimentSpec
    runs: List[ExperimentResult]
    stats: RunSet = field(default_factory=RunSet)

    @property
    def goodput_mbps(self) -> float:
        """Mean goodput across runs."""
        return self.stats.mean("goodput_mbps")

    @property
    def goodput_stdev(self) -> float:
        """Goodput standard deviation across runs."""
        return self.stats.stdev("goodput_mbps")

    @property
    def rtt_mean_ms(self) -> float:
        """Mean of per-run mean RTTs."""
        return self.stats.mean("rtt_mean_ms")

    @property
    def retransmitted_segments(self) -> float:
        """Mean retransmitted segments per run."""
        return self.stats.mean("retransmitted_segments")

    def mean(self, name: str) -> float:
        """Mean of any scalar metric across runs."""
        return self.stats.mean(name)


def make_cc_factory(
    spec: ExperimentSpec, cc: Optional[str] = None
) -> Callable[[], CongestionOps]:
    """Resolve a CC name + the spec's master-module knobs to a factory.

    *cc* overrides the spec-level algorithm (per-flow CC in multi-flow
    experiments); the §5 master-module knobs always come from the spec.
    """
    base_factory = CC_ALGORITHMS.get(cc if cc is not None else spec.cc)
    needs_master = (
        spec.disable_model
        or spec.fixed_cwnd_segments is not None
        or spec.fixed_pacing_rate_mbps is not None
    )
    if not needs_master:
        return base_factory
    fixed_rate = (
        mbps(spec.fixed_pacing_rate_mbps)
        if spec.fixed_pacing_rate_mbps is not None
        else None
    )

    def factory() -> CongestionOps:
        return MasterModule(
            base_factory(),
            disable_model=spec.disable_model,
            fixed_cwnd_segments=spec.fixed_cwnd_segments,
            fixed_pacing_rate_bps=fixed_rate,
        )

    return factory


def run_experiment(
    spec: ExperimentSpec,
    tracer: Optional[Tracer] = None,
    profiler=None,
    ledger: Union[None, bool, RunLedger] = None,
) -> ExperimentResult:
    """Run one simulated iperf experiment and return its measurements.

    *tracer* (a :class:`~repro.sim.trace.Tracer`) is threaded through
    every traced component — CPU cores and governors, the TCP stack,
    links and queues, and CC state machines; export its records with
    :mod:`repro.obs.trace_export`. *profiler* (a
    :class:`~repro.obs.profiler.SimProfiler`) installs per-callback
    event-loop accounting. Both default to off and cost nothing then.

    *ledger* selects the run ledger
    (:func:`repro.obs.ledger.resolve_ledger`): unless disabled
    (``REPRO_LEDGER=off`` / ``ledger=False``), a manifest record of this
    invocation — spec digest, kernel, metrics, timing — is appended
    after the run. The ledger observes results and never changes them;
    append failures are swallowed.
    """
    if spec.warmup_s >= spec.duration_s:
        raise ValueError("warmup must be shorter than the duration")
    wall_start = time.perf_counter()
    if tracer is None:
        tracer = NULL_TRACER
    # Kernel selection (REPRO_KERNEL / --kernel) happens here and only
    # here: every component below takes the loop, and the ones with C
    # counterparts route themselves to the compiled backend when the loop
    # is compiled (see repro.kernel). Instrumented runs always get the
    # pure kernel — the C hot path carries no tracer/profiler hooks.
    kernel = resolve_kernel(
        instrumented=tracer.enabled or profiler is not None
    )
    loop = kernel.make_loop()
    rng = RngStreams(spec.seed)
    if profiler is not None:
        loop.set_profiler(profiler)

    # One sender host per flow entry. Host 0 is built exactly the way the
    # single-host path always was (same construction order, component
    # names, and RNG streams), so legacy specs — the implicit one-entry
    # plan of resolve_flows — reproduce archived results byte for byte.
    flow_plan = resolve_flows(spec)
    devices = [build_device(loop, spec.device, spec.cpu_config, tracer=tracer)]
    testbed = Testbed(
        loop,
        spec.medium,
        netem=spec.netem,
        rng=rng,
        phone_qdisc_segments=spec.phone_qdisc_segments,
        tracer=tracer,
    )
    if flow_plan[0].netem is not None:
        testbed.set_port_netem(0, flow_plan[0].netem)
    for host_flow in flow_plan[1:]:
        devices.append(
            build_device(loop, spec.device, spec.cpu_config, tracer=tracer)
        )
        testbed.add_sender_port(netem=host_flow.netem)

    flow_ids = FlowIdAllocator()
    stacks = []
    for host_index, device in enumerate(devices):
        costs = spec.costs if spec.costs is not None else device.cost_model
        executor = EXECUTORS.get(spec.executor)(device.cpu)
        stacks.append(
            MobileTcpStack(
                loop, executor, costs, testbed, tracer=tracer,
                port=testbed.ports[host_index], flow_ids=flow_ids,
            )
        )
    device, stack = devices[0], stacks[0]
    server = IperfServerApp(loop, testbed)
    socket_config = SocketConfig(
        pacing_mode=spec.pacing_mode,
        pacing_stride=spec.pacing_stride,
    )
    client = FlowClient(loop, socket_config=socket_config)
    for host_index, host_flow in enumerate(flow_plan):
        cc_factory = make_cc_factory(spec, cc=host_flow.cc)
        if host_flow.count > 0:
            client.add_flow_group(
                stacks[host_index],
                cc_factory,
                count=host_flow.count,
                start_s=host_flow.start_s,
                stop_s=host_flow.stop_s,
                transfer_bytes=host_flow.transfer_bytes,
                label=host_flow.cc,
            )
        if host_flow.arrival_rate_hz > 0:
            client.add_churn_process(
                stacks[host_index],
                cc_factory,
                rng.stream(f"flow-arrivals-{host_index}"),
                arrival_rate_hz=host_flow.arrival_rate_hz,
                mean_transfer_bytes=host_flow.mean_transfer_bytes,
                start_s=host_flow.start_s,
                stop_s=host_flow.stop_s,
                horizon_s=spec.duration_s,
                max_arrivals=host_flow.max_arrivals,
                label=host_flow.cc,
            )

    warmup_ns = seconds(spec.warmup_s)
    duration_ns = seconds(spec.duration_s)
    client.rtt_window_start_ns = warmup_ns

    # Memory proxy sampler: qdisc backlog + unacked inflight, in bytes.
    memory_stats = StatAccumulator()
    mss = socket_config.mss

    def sample_memory() -> None:
        if loop.now < warmup_ns:
            return
        backlog = testbed.phone_backlog_segments * mss
        inflight = sum(
            c.scoreboard.packets_out * mss for c in client.connections
        )
        memory_stats.add(backlog + inflight)

    memory_sampler = PeriodicTimer(loop, 50 * MSEC, sample_memory, name="memsample")

    probe_set: Optional[ProbeSet] = None
    if spec.probes:
        probe_set = ProbeSet(
            spec.probes,
            ProbeContext(
                loop, spec, client, server, testbed, device, stack,
                devices=devices, stacks=stacks,
            ),
        )

    # Teardown runs in the finally block so that an exception anywhere in
    # the run or in metrics extraction cannot leak live periodic timers.
    # This matters once worker processes reuse interpreters across grid
    # points (see repro.runner): a leaked sampler would keep the dead
    # testbed reachable for the worker's lifetime.
    try:
        memory_sampler.start()
        if probe_set is not None:
            probe_set.start()
        for host_device in devices:
            host_device.start()
        client.start()
        loop.run(until=duration_ns)

        goodput_bps = server.goodput_bps_between(warmup_ns, duration_ns)
        per_flow = [
            to_mbps(server.flow_goodput_bps_between(c.flow_id, warmup_ns, duration_ns))
            for c in client.connections
        ]
        rtt = client.rtt_stats
        pacing_periods = sum(c.pacer.periods for c in client.connections)
        fct_stats = StatAccumulator(keep=True)
        for completion_ns in client.completion_times_ns():
            fct_stats.add(completion_ns / 1e6)

        result = ExperimentResult(
            spec=spec,
            goodput_mbps=to_mbps(goodput_bps),
            per_flow_goodput_mbps=per_flow,
            rtt_mean_ms=rtt.mean,
            rtt_p50_ms=rtt.percentile(50) if rtt.count else 0.0,
            rtt_p95_ms=rtt.percentile(95) if rtt.count else 0.0,
            rtt_min_ms=rtt.min_value or 0.0,
            retransmitted_segments=client.retransmitted_segments,
            rto_count=client.rto_count,
            cpu_busy_fraction=sum(
                d.cpu_busy_fraction(duration_ns) for d in devices
            ) / len(devices),
            mean_skb_bytes=client.mean_pacer_period_bytes(),
            mean_idle_ms=client.mean_pacer_idle_ns() / 1e6,
            pacing_periods=pacing_periods,
            router_dropped_segments=testbed.router_dropped_segments,
            phone_dropped_segments=testbed.phone_dropped_segments,
            peak_qdisc_segments=testbed.peak_phone_qdisc_segments,
            peak_memory_bytes=int(memory_stats.max_value or 0),
            mean_memory_bytes=memory_stats.mean,
            mean_cwnd_segments=client.mean_cwnd_segments,
            events_processed=loop.events_processed,
            flow_count=len(client.connections),
            flows_completed=client.flows_completed,
            jain_fairness=jain_fairness_index(per_flow),
            fct_mean_ms=fct_stats.mean,
            fct_p95_ms=fct_stats.percentile(95) if fct_stats.count else 0.0,
            timeseries=probe_set.timeseries if probe_set is not None else {},
        )
        ledger_store = resolve_ledger(ledger)
        if ledger_store is not None:
            ledger_store.record_run(
                spec, result, time.perf_counter() - wall_start,
                kernel=kernel.name,
            )
        return result
    finally:
        # Teardown so the loop holds no live periodic sources.
        memory_sampler.stop()
        if probe_set is not None:
            probe_set.stop()
        client.stop()
        for host_device in devices:
            host_device.stop()
        testbed.stop_processes()


def run_replicated(
    spec: ExperimentSpec, runs: int = 3, jobs: Optional[int] = 1
) -> ReplicatedResult:
    """Run *runs* seeded replications of *spec* and aggregate.

    Seeds are derived deterministically from ``spec.seed``, so the same
    spec always yields the same aggregate. With *jobs* > 1 (or ``None``
    to resolve via ``REPRO_JOBS`` / the CPU count) the replications fan
    out through :mod:`repro.runner`; ordering and aggregates are
    identical to the serial path.
    """
    if runs < 1:
        raise ValueError("need at least one run")
    if jobs is None or jobs != 1:
        # Deferred import: repro.runner imports this module.
        from ..runner import resolve_jobs, run_replicated_parallel

        if resolve_jobs(jobs) > 1:
            return run_replicated_parallel(spec, runs=runs, jobs=jobs)
    results: List[ExperimentResult] = []
    stats = RunSet()
    for i in range(runs):
        run_spec = replace(spec, seed=spec.seed + 1000 * i)
        result = run_experiment(run_spec)
        results.append(result)
        stats.add_run(result.scalar_metrics())
    return ReplicatedResult(spec=spec, runs=results, stats=stats)
