"""The paper's analytical throughput model (§6, Eq. 1–3).

Eq. 1: ``idleTime = socketBufferLength / pacingRate``
Eq. 2: ``idleTime = idleTime × pacingStride``
Eq. 3: ``expectedTx = socketBufferLength × connections / idleTime``

Expected throughput models a *purely pacing-limited* sender: if the CPU
could keep up, each connection would ship one socket buffer per idle
period. Comparing expected vs. actual throughput locates the two failure
regimes of Table 2 — CPU-overhead-limited (actual < expected, small
strides) and buffer-saturation-limited (expected itself collapses, large
strides).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..units import SEC

__all__ = ["expected_throughput_bps", "idle_time_ns", "StrideRow"]


def idle_time_ns(socket_buffer_bytes: float, pacing_rate_bps: float, stride: float = 1.0) -> int:
    """Eq. 1 × Eq. 2: pacing idle time for one socket buffer."""
    if pacing_rate_bps <= 0:
        raise ValueError("pacing rate must be positive")
    if stride < 1.0:
        raise ValueError("stride must be >= 1")
    return int(socket_buffer_bytes * 8 * SEC / pacing_rate_bps * stride)


def expected_throughput_bps(
    socket_buffer_bytes: float, idle_ns: float, connections: int
) -> float:
    """Eq. 3: aggregate throughput of a purely pacing-limited sender."""
    if idle_ns <= 0:
        return 0.0
    if connections < 1:
        raise ValueError("need at least one connection")
    return socket_buffer_bytes * 8 * SEC * connections / idle_ns


@dataclass
class StrideRow:
    """One row of the paper's Table 2."""

    stride: float
    skb_len_kbits: float
    idle_time_ms: float
    expected_tx_mbps: float
    actual_tx_mbps: float
    rtt_ms: float

    @classmethod
    def from_measurement(
        cls,
        stride: float,
        mean_skb_bytes: float,
        mean_idle_ms: float,
        actual_tx_mbps: float,
        rtt_ms: float,
        connections: int,
    ) -> "StrideRow":
        """Build a row, deriving expected throughput via Eq. 3."""
        idle_ns = mean_idle_ms * 1e6
        expected = (
            expected_throughput_bps(mean_skb_bytes, idle_ns, connections) / 1e6
            if idle_ns > 0
            else 0.0
        )
        return cls(
            stride=stride,
            skb_len_kbits=mean_skb_bytes * 8 / 1000.0,
            idle_time_ms=mean_idle_ms,
            expected_tx_mbps=expected,
            actual_tx_mbps=actual_tx_mbps,
            rtt_ms=rtt_ms,
        )

    def as_table_row(self) -> List[object]:
        """Cells in the paper's column order."""
        return [
            f"{self.stride:g}x",
            self.skb_len_kbits,
            self.idle_time_ms,
            self.expected_tx_mbps,
            self.actual_tx_mbps,
            self.rtt_ms,
        ]
