"""Declarative scenarios: experiment specs as serializable data.

An :class:`~repro.core.experiment.ExperimentSpec` is a frozen dataclass,
which is perfect inside one Python process but opaque as soon as a spec
has to travel — to a worker process, a results archive, or a colleague's
shell. This module makes the spec a *wire format*:

* :func:`spec_to_dict` / :func:`spec_from_dict` convert specs to and
  from plain JSON-compatible dicts with an **exact round trip**
  (``spec_from_dict(spec.to_dict()) == spec`` always). Devices and media
  are referenced by their registry name (``"pixel4"``, ``"wifi"``);
  unregistered profiles, ``netem`` and ``costs`` serialize as inline
  field dicts. Unknown keys are rejected with a message naming the
  valid ones.

* **Scenario files** describe whole experiment grids declaratively, the
  way ns-3 / Pantheon-style harnesses do. A scenario is a JSON document::

      {
        "name": "fig8_stride_sweep",
        "base":  {"cc": "bbr", "connections": 20},
        "grid":  {"cpu_config": ["low-end", "default"],
                  "pacing_stride": [1, 5, 10]},
        "overrides": [
          {"match": {"cpu_config": "default"}, "set": {"seed": 7}}
        ]
      }

  :func:`expand_scenario` takes the cartesian product of the ``grid``
  axes over ``base`` (first axis outermost, last axis fastest-varying),
  applies each ``overrides`` entry to every matching point, and returns
  a deterministic ``List[ExperimentSpec]``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import fields
from typing import Any, Dict, List, Sequence, Union

from ..cpu.costs import CostModel
from ..devices import DEVICES, DeviceProfile
from ..netsim import MEDIA, MediumProfile, NetemConfig
from ..registry import Registry
from .experiment import ExperimentSpec
from .flows import FlowSpec

__all__ = [
    "spec_to_dict",
    "spec_from_dict",
    "flow_to_dict",
    "flow_from_dict",
    "canonical_spec_json",
    "spec_digest",
    "expand_scenario",
    "expand_scenario_dicts",
    "load_scenario",
    "load_scenario_doc",
]

#: scenario-document keys that are not spec fields
_SCENARIO_KEYS = ("name", "description", "base", "grid", "overrides")
_OVERRIDE_KEYS = ("match", "set")


def _field_names(cls) -> List[str]:
    return [f.name for f in fields(cls)]


def _reject_unknown(data: Dict[str, Any], valid: Sequence[str], what: str) -> None:
    unknown = [k for k in data if k not in valid]
    if unknown:
        raise ValueError(
            f"unknown {what} key(s) {sorted(unknown)}; "
            f"valid keys are {sorted(valid)}"
        )


def _dataclass_to_dict(value) -> Dict[str, Any]:
    """One-level dataclass -> dict; tuples become lists (JSON-friendly)."""
    out: Dict[str, Any] = {}
    for f in fields(value):
        v = getattr(value, f.name)
        out[f.name] = list(v) if isinstance(v, tuple) else v
    return out


def _dataclass_from_dict(cls, data: Dict[str, Any], what: str):
    """One-level dict -> dataclass; lists become tuples; keys checked."""
    if not isinstance(data, dict):
        raise ValueError(f"{what} must be a mapping, got {type(data).__name__}")
    _reject_unknown(data, _field_names(cls), what)
    kwargs = {
        k: tuple(v) if isinstance(v, list) else v for k, v in data.items()
    }
    return cls(**kwargs)


def _profile_to_ref(registry: Registry, value) -> Union[str, Dict[str, Any]]:
    """A registered profile serializes as its name, others inline."""
    name = getattr(value, "name", None)
    if name in registry and registry.get(name) == value:
        return name
    return _dataclass_to_dict(value)


def _profile_from_ref(registry: Registry, cls, ref, what: str):
    if isinstance(ref, str):
        return registry.get(ref)
    if isinstance(ref, dict):
        return _dataclass_from_dict(cls, ref, what)
    raise ValueError(
        f"{what} must be a registered name (one of {sorted(registry.names())}) "
        f"or an inline field mapping, got {type(ref).__name__}"
    )


def flow_to_dict(flow: FlowSpec) -> Dict[str, Any]:
    """Serialize one :class:`FlowSpec` to a plain JSON-compatible dict."""
    out: Dict[str, Any] = {}
    for f in fields(FlowSpec):
        value = getattr(flow, f.name)
        if f.name == "netem":
            out[f.name] = None if value is None else _dataclass_to_dict(value)
        else:
            out[f.name] = value
    return out


def flow_from_dict(data: Dict[str, Any]) -> FlowSpec:
    """Build a :class:`FlowSpec` from a (possibly partial) dict.

    Missing keys take the flow's defaults; unknown keys raise
    ``ValueError`` naming the valid ones.
    """
    if not isinstance(data, dict):
        raise ValueError(f"flow must be a mapping, got {type(data).__name__}")
    _reject_unknown(data, _field_names(FlowSpec), "flow")
    kwargs = dict(data)
    if kwargs.get("netem") is not None:
        kwargs["netem"] = _dataclass_from_dict(
            NetemConfig, kwargs["netem"], "flow netem"
        )
    return FlowSpec(**kwargs)


def spec_to_dict(spec: ExperimentSpec) -> Dict[str, Any]:
    """Serialize *spec* to a plain JSON-compatible dict (all fields).

    The inverse of :func:`spec_from_dict`; the round trip is exact.
    """
    out: Dict[str, Any] = {}
    for f in fields(ExperimentSpec):
        value = getattr(spec, f.name)
        if f.name == "device":
            out[f.name] = _profile_to_ref(DEVICES, value)
        elif f.name == "medium":
            out[f.name] = _profile_to_ref(MEDIA, value)
        elif f.name in ("netem", "costs"):
            out[f.name] = None if value is None else _dataclass_to_dict(value)
        elif f.name == "probes":
            out[f.name] = list(value)
        elif f.name == "flows":
            out[f.name] = [flow_to_dict(flow) for flow in value]
        else:
            out[f.name] = value
    return out


def spec_from_dict(data: Dict[str, Any]) -> ExperimentSpec:
    """Build an :class:`ExperimentSpec` from a (possibly partial) dict.

    Missing keys take the spec's defaults; unknown keys raise
    ``ValueError`` naming the valid ones, and device/medium names are
    resolved through the component registries (unknown names raise with
    the list of registered choices).
    """
    if not isinstance(data, dict):
        raise ValueError(
            f"spec must be a mapping, got {type(data).__name__}"
        )
    _reject_unknown(data, _field_names(ExperimentSpec), "ExperimentSpec")
    kwargs = dict(data)
    if "device" in kwargs:
        kwargs["device"] = _profile_from_ref(
            DEVICES, DeviceProfile, kwargs["device"], "device"
        )
    if "medium" in kwargs:
        kwargs["medium"] = _profile_from_ref(
            MEDIA, MediumProfile, kwargs["medium"], "medium"
        )
    if kwargs.get("netem") is not None:
        kwargs["netem"] = _dataclass_from_dict(
            NetemConfig, kwargs["netem"], "netem"
        )
    if kwargs.get("costs") is not None:
        kwargs["costs"] = _dataclass_from_dict(
            CostModel, kwargs["costs"], "costs"
        )
    if "probes" in kwargs:
        probes = kwargs["probes"]
        if not isinstance(probes, (list, tuple)) or not all(
            isinstance(p, str) for p in probes
        ):
            raise ValueError("probes must be a list of probe names")
        kwargs["probes"] = tuple(probes)
    if "flows" in kwargs:
        flows = kwargs["flows"]
        if not isinstance(flows, (list, tuple)):
            raise ValueError("flows must be a list of flow mappings")
        kwargs["flows"] = tuple(flow_from_dict(flow) for flow in flows)
    return ExperimentSpec(**kwargs)


def canonical_spec_json(spec: ExperimentSpec) -> str:
    """The canonical wire-format serialization of *spec*, as one line.

    Key-sorted, separator-minimal JSON over :func:`spec_to_dict`, so two
    equal specs always produce the same byte string regardless of field
    declaration order or how the spec was constructed (built in Python,
    expanded from a scenario file, or round-tripped through a worker).
    This is the string the result cache (:mod:`repro.cache`) hashes.
    """
    return json.dumps(spec_to_dict(spec), sort_keys=True,
                      separators=(",", ":"))


def spec_digest(spec: ExperimentSpec) -> str:
    """SHA-256 hex digest of :func:`canonical_spec_json`.

    The content address of one experiment: any spec mutation — a seed
    bump, a different device, an extra probe — changes the digest, and
    equal specs always share it.
    """
    return hashlib.sha256(canonical_spec_json(spec).encode("utf-8")).hexdigest()


def expand_scenario_dicts(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Expand a scenario document into per-point spec dicts.

    Expansion is deterministic: the cartesian product iterates ``grid``
    axes in document order with the last axis varying fastest, and
    ``overrides`` entries apply in list order to every point whose
    fields match the entry's ``match`` mapping (an empty/omitted
    ``match`` applies everywhere).
    """
    if not isinstance(doc, dict):
        raise ValueError(
            f"scenario must be a mapping, got {type(doc).__name__}"
        )
    _reject_unknown(doc, _SCENARIO_KEYS, "scenario")
    spec_keys = _field_names(ExperimentSpec)

    base = doc.get("base", {})
    if not isinstance(base, dict):
        raise ValueError("scenario 'base' must be a mapping")
    _reject_unknown(base, spec_keys, "scenario base")

    grid = doc.get("grid", {})
    if not isinstance(grid, dict):
        raise ValueError("scenario 'grid' must be a mapping")
    _reject_unknown(grid, spec_keys, "scenario grid")
    for key, values in grid.items():
        if not isinstance(values, list) or not values:
            raise ValueError(
                f"scenario grid axis {key!r} must be a non-empty list"
            )

    overrides = doc.get("overrides", [])
    if not isinstance(overrides, list):
        raise ValueError("scenario 'overrides' must be a list")
    for i, entry in enumerate(overrides):
        if not isinstance(entry, dict):
            raise ValueError(f"scenario override #{i} must be a mapping")
        _reject_unknown(entry, _OVERRIDE_KEYS, f"scenario override #{i}")
        _reject_unknown(entry.get("match", {}), spec_keys,
                        f"scenario override #{i} match")
        _reject_unknown(entry.get("set", {}), spec_keys,
                        f"scenario override #{i} set")

    axes = list(grid)
    points: List[Dict[str, Any]] = []
    for combo in itertools.product(*(grid[axis] for axis in axes)):
        point = dict(base)
        point.update(zip(axes, combo))
        for entry in overrides:
            match = entry.get("match", {})
            if all(point.get(k) == v for k, v in match.items()):
                point.update(entry.get("set", {}))
        points.append(point)
    return points


def expand_scenario(doc: Dict[str, Any]) -> List[ExperimentSpec]:
    """Expand a scenario document into its :class:`ExperimentSpec` list."""
    return [spec_from_dict(point) for point in expand_scenario_dicts(doc)]


def load_scenario_doc(path: str) -> Dict[str, Any]:
    """Read a scenario JSON document from *path* (no expansion)."""
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as exc:
            raise ValueError(f"scenario file {path!r} is not valid JSON: {exc}")
    return doc


def load_scenario(path: str) -> List[ExperimentSpec]:
    """Read and expand the scenario file at *path*."""
    return expand_scenario(load_scenario_doc(path))
