"""Pacing-stride study helpers (§6) and the adaptive-stride extension.

:func:`sweep_strides` reproduces Figure 8's experiment grid.
:class:`AdaptiveStrideController` implements the paper's future work
(§7.1.2): instead of a fixed stride, it hill-climbs the stride online
using the measured CPU busy fraction and goodput — pacing as finely as
the CPU can afford, no more coarsely than necessary.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from typing import Optional

from ..devices import DeviceSetup
from ..sim import EventLoop, PeriodicTimer
from ..units import MSEC
from .experiment import ExperimentSpec, ReplicatedResult

__all__ = ["PAPER_STRIDES", "sweep_strides", "AdaptiveStrideController"]

#: The six strides evaluated in the paper (§6.2).
PAPER_STRIDES = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0)


def sweep_strides(
    spec: ExperimentSpec,
    strides: Sequence[float] = PAPER_STRIDES,
    runs: int = 3,
    jobs: Optional[int] = None,
    cache=None,
    chunk: Optional[int] = None,
    monitor=None,
    ledger=None,
) -> Dict[float, ReplicatedResult]:
    """Run *spec* at each stride; returns ``{stride: aggregate}``.

    Points fan out across *jobs* worker processes (``None`` resolves via
    ``REPRO_JOBS`` / cpu count; see :mod:`repro.runner`); results are
    deterministic and independent of the worker count. *cache*, *chunk*,
    *monitor* (live progress), and *ledger* pass through to
    :func:`repro.runner.run_grid_report`.
    """
    from ..runner import run_replicated_grid  # deferred: avoids import cycle

    stride_specs = [
        replace(spec, pacing_stride=float(stride)) for stride in strides
    ]
    aggregates = run_replicated_grid(
        stride_specs, runs=runs, jobs=jobs, cache=cache, chunk=chunk,
        monitor=monitor, ledger=ledger,
    )
    return {
        float(stride): agg for stride, agg in zip(strides, aggregates)
    }


@dataclass
class _StrideSample:
    stride: float
    goodput_bytes: int


class AdaptiveStrideController:
    """Online stride tuner (the §7.1.2 future-work extension).

    Every ``period_ns`` it compares goodput against the previous period
    and hill-climbs the stride over a discrete ladder: move up while the
    CPU is saturated and goodput keeps improving, back off when a larger
    stride stopped paying (the buffer-saturation regime). All of the
    paper's observations — optimum depends on device configuration and
    load — motivate exactly this controller shape.
    """

    LADDER = (1.0, 2.0, 3.0, 5.0, 8.0, 10.0, 15.0, 20.0, 30.0, 50.0)
    #: CPU busy fraction above which pacing overhead is presumed binding
    CPU_HIGH_WATER = 0.90
    #: relative goodput loss that triggers a step back down
    REGRESSION = 0.03

    def __init__(
        self,
        loop: EventLoop,
        connections: Sequence[object],
        device: DeviceSetup,
        period_ns: int = 500 * MSEC,
    ):
        self._loop = loop
        self._connections = list(connections)
        self._device = device
        self._timer = PeriodicTimer(loop, period_ns, self._tick, name="adaptive-stride")
        self._index = 0
        self._last_delivered = 0
        self._last_busy = 0
        self._last_goodput = -1.0
        self._last_direction = +1
        self.history: List[_StrideSample] = []

    @property
    def stride(self) -> float:
        """Current stride applied to every connection."""
        return self.LADDER[self._index]

    def start(self) -> None:
        """Begin periodic adaptation."""
        self._apply()
        self._last_delivered = self._total_delivered()
        self._last_busy = self._device_busy()
        self._timer.start()

    def stop(self) -> None:
        """Stop adapting (the current stride stays in force)."""
        self._timer.stop()

    # -- internals -------------------------------------------------------------

    def _total_delivered(self) -> int:
        return sum(c.delivered_bytes for c in self._connections)

    def _device_busy(self) -> int:
        return sum(core.busy_ns_up_to_now() for core in self._device.cpu.all_cores())

    def _apply(self) -> None:
        for conn in self._connections:
            conn.pacer.stride = self.stride

    def _tick(self) -> None:
        delivered = self._total_delivered()
        busy = self._device_busy()
        goodput = float(delivered - self._last_delivered)
        busy_frac = (busy - self._last_busy) / self._timer.period_ns
        self._last_delivered = delivered
        self._last_busy = busy
        self.history.append(_StrideSample(self.stride, int(goodput)))

        if self._last_goodput < 0:
            self._last_goodput = goodput
            return

        direction = self._last_direction
        if goodput < self._last_goodput * (1.0 - self.REGRESSION):
            # The last move hurt: reverse.
            direction = -direction
        elif busy_frac < self.CPU_HIGH_WATER and self.stride > 1.0:
            # CPU has slack: pace more finely for lower RTT.
            direction = -1
        elif busy_frac >= self.CPU_HIGH_WATER:
            # CPU saturated: amortize harder.
            direction = +1
        new_index = min(max(self._index + direction, 0), len(self.LADDER) - 1)
        self._last_direction = direction if new_index != self._index else self._last_direction
        self._index = new_index
        self._last_goodput = goodput
        self._apply()
