"""Run ledger: a persistent, append-only history of what was run.

Every simulation in this repository is deterministic, cached, and
cheap to describe — yet until this module the *history* of runs
evaporated with the process: there was no persistent record of which
specs ran, under which kernel, at what throughput, with how many cache
hits. The ledger fixes that. Each :func:`repro.core.experiment.run_experiment`
and :func:`repro.runner.run_grid_report` invocation appends one
structured manifest record to a JSONL file:

* **run records** (``kind="run"``) — one simulated experiment: the spec
  digest plus a canonical-JSON ref, the kernel backend, the code
  fingerprint, a flow summary, every scalar metric, and wall/sim timing;
* **grid records** (``kind="grid"``) — one grid invocation: per-point
  digests/labels/metrics (cache hits included, so a fully-cached re-run
  is still diffable), cache hit/miss/skip and chunk counters, per-point
  :class:`~repro.runner.GridPointError` messages, and aggregate timing.

The ledger lives under ``~/.cache/repro-bbr/ledger/`` next to the
result cache (``REPRO_LEDGER_DIR`` overrides the location,
``REPRO_LEDGER=off`` disables writing). Appends are atomic — each
record is a single ``O_APPEND`` ``write()`` of one complete line — so
pool workers appending concurrently can never interleave partial
records. Writes mirror :mod:`repro.cache`'s swallow semantics: a ledger
that cannot persist (read-only filesystem, disk full) must never fail a
run.

Canonical spec JSON is stored once per digest under
``<root>/specs/<digest>.json`` so records stay compact while every
digest in the ledger remains resolvable back to the exact spec that
produced it.

The CLI surface is ``repro runs list | show | diff | prune``
(:mod:`repro.cli`); :func:`diff_records` implements the metric diff with
its CI-facing exit-code contract.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "LEDGER_DIR_ENV_VAR",
    "LEDGER_ENV_VAR",
    "LEDGER_RECORD_VERSION",
    "RunLedger",
    "atomic_append_line",
    "default_ledger_dir",
    "diff_records",
    "grid_record",
    "ledger_enabled",
    "merge_ledgers",
    "record_metrics_by_digest",
    "resolve_ledger",
    "run_record",
]

#: environment variable overriding the ledger directory
LEDGER_DIR_ENV_VAR = "REPRO_LEDGER_DIR"
#: environment variable disabling the ledger ("off"/"0"/"no"/"false")
LEDGER_ENV_VAR = "REPRO_LEDGER"

_DISABLED_VALUES = ("0", "off", "no", "false")

#: schema version stamped into every record
LEDGER_RECORD_VERSION = 1

#: ledger file name inside the ledger directory
_LEDGER_FILENAME = "ledger.jsonl"
#: subdirectory holding one canonical spec JSON per digest
_SPECS_SUBDIR = "specs"


def default_ledger_dir() -> str:
    """The ledger root: ``$REPRO_LEDGER_DIR`` or ``<cache root>/ledger``.

    Sharing the cache root (``~/.cache/repro-bbr`` unless
    ``REPRO_CACHE_DIR`` moves it) keeps every persistent artifact of a
    machine in one place; :mod:`repro.cache` knows to leave the
    ``ledger`` subdirectory alone when clearing.
    """
    env = os.environ.get(LEDGER_DIR_ENV_VAR, "").strip()
    if env:
        return env
    from ..cache import default_cache_dir

    return os.path.join(default_cache_dir(), "ledger")


def ledger_enabled() -> bool:
    """Whether the default (env-configured) ledger is enabled."""
    return os.environ.get(LEDGER_ENV_VAR, "").strip().lower() not in _DISABLED_VALUES


def atomic_append_line(path: str, line: str) -> bool:
    """Append one complete line to *path* atomically; returns success.

    The payload goes down in a single ``write()`` on an ``O_APPEND``
    descriptor, so concurrent appenders (grid pool workers, parallel CI
    jobs sharing a ledger) serialize at the file offset and can never
    interleave partial records. Failures are swallowed into ``False`` —
    the ledger never fails a run.
    """
    data = (line.rstrip("\n") + "\n").encode("utf-8")
    try:
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
    except OSError:
        return False
    return True


def _new_record_id() -> str:
    """A short unique id for one ledger record (wall clock + entropy)."""
    return f"{int(time.time()):x}{os.urandom(4).hex()}"


def _flow_summary(spec) -> Dict[str, Any]:
    """Compact description of the spec's flow plan for the record."""
    if spec.flows:
        return {
            "ccs": list(dict.fromkeys(f.cc for f in spec.flows)),
            "static": sum(f.count for f in spec.flows),
            "churn": any(f.arrival_rate_hz > 0 for f in spec.flows),
        }
    return {"ccs": [spec.cc], "static": spec.connections, "churn": False}


def run_record(
    spec,
    result,
    wall_s: float,
    kernel: Optional[str] = None,
) -> Dict[str, Any]:
    """Build the manifest record for one completed experiment."""
    from ..cache import code_fingerprint
    from ..core.scenario import spec_digest
    from ..kernel import resolve_kernel

    events = result.events_processed
    return {
        "v": LEDGER_RECORD_VERSION,
        "id": _new_record_id(),
        "kind": "run",
        "ts": time.time(),
        "label": spec.label(),
        "spec_digest": spec_digest(spec),
        "kernel": kernel if kernel is not None else resolve_kernel().name,
        "fingerprint": code_fingerprint()[:16],
        "flows": _flow_summary(spec),
        "metrics": result.scalar_metrics(),
        "wall_s": wall_s,
        "sim_s": spec.duration_s,
        "events": events,
        "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
    }


def grid_record(
    specs: Sequence, report, extra: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Build the manifest record for one grid invocation.

    Every point appears — computed, cached, or failed — keyed by its
    spec digest, with its full scalar metrics when it produced a result.
    Cache hits carry metrics too, so ``repro runs diff`` works between a
    cold run and a fully-cached re-run. *extra* adds caller-owned keys
    (the distributed coordinator journals its queue/worker/reclaim
    summary this way) without being able to clobber the core schema.
    """
    from ..cache import code_fingerprint
    from ..core.scenario import spec_digest
    from ..runner import GridPointError

    points: List[Dict[str, Any]] = []
    for index, (spec, result) in enumerate(zip(specs, report.results)):
        point: Dict[str, Any] = {
            "digest": spec_digest(spec),
            "label": spec.label(),
            "cache_hit": index in report.cache_hit_indices,
        }
        if isinstance(result, GridPointError):
            point["error"] = result.error
        else:
            point["metrics"] = result.scalar_metrics()
        points.append(point)
    record = dict(extra) if extra else {}
    record.update({
        "v": LEDGER_RECORD_VERSION,
        "id": _new_record_id(),
        "kind": "grid",
        "ts": time.time(),
        "kernel": report.kernel,
        "fingerprint": code_fingerprint()[:16],
        "points": points,
        "cache": {
            "used": report.cache_used,
            "hits": report.cache_hits,
            "misses": report.cache_misses,
            "skipped": report.cache_skipped,
        },
        "jobs": report.jobs,
        "chunk": report.chunk,
        "errors": len(report.errors),
        "wall_s": report.wall_s,
        "events": report.total_events,
        "events_per_sec": report.events_per_sec,
    })
    return record


class RunLedger:
    """Append-only JSONL store of run/grid manifest records."""

    def __init__(self, root: Optional[str] = None):
        self.root = os.path.abspath(root or default_ledger_dir())

    @property
    def path(self) -> str:
        """The ledger JSONL file."""
        return os.path.join(self.root, _LEDGER_FILENAME)

    @property
    def specs_dir(self) -> str:
        """Directory of canonical spec JSON files, one per digest."""
        return os.path.join(self.root, _SPECS_SUBDIR)

    def spec_ref_path(self, digest: str) -> str:
        """Where the canonical spec JSON for *digest* lives."""
        return os.path.join(self.specs_dir, digest + ".json")

    def append(self, record: Dict[str, Any]) -> Optional[str]:
        """Append *record*; returns its id on success, ``None`` on failure.

        Serialization errors and filesystem errors are both swallowed —
        the ledger must never fail the run it is describing.
        """
        try:
            line = json.dumps(record, separators=(",", ":"))
        except (TypeError, ValueError):
            return None
        if not atomic_append_line(self.path, line):
            return None
        return record.get("id")

    def write_spec_ref(self, spec) -> bool:
        """Store *spec*'s canonical JSON under its digest (idempotent)."""
        from ..core.scenario import canonical_spec_json, spec_digest

        path = self.spec_ref_path(spec_digest(spec))
        if os.path.exists(path):
            return True
        try:
            os.makedirs(self.specs_dir, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.specs_dir, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(canonical_spec_json(spec))
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True

    def record_run(self, spec, result, wall_s: float,
                   kernel: Optional[str] = None) -> Optional[str]:
        """Append a run record (plus its spec ref); never raises."""
        try:
            self.write_spec_ref(spec)
            return self.append(run_record(spec, result, wall_s, kernel=kernel))
        except Exception:  # noqa: BLE001 - ledger never fails a run
            return None

    def record_grid(self, specs: Sequence, report,
                    extra: Optional[Dict[str, Any]] = None) -> Optional[str]:
        """Append a grid record (plus every point's spec ref); never raises."""
        try:
            for spec in specs:
                self.write_spec_ref(spec)
            return self.append(grid_record(specs, report, extra=extra))
        except Exception:  # noqa: BLE001 - ledger never fails a run
            return None

    def records(
        self,
        limit: Optional[int] = None,
        kind: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Stored records, oldest first; corrupt lines are skipped.

        *limit* keeps only the most recent records (after filtering by
        *kind*), matching what ``repro runs list`` shows.
        """
        out: List[Dict[str, Any]] = []
        try:
            with open(self.path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if not isinstance(record, dict) or "id" not in record:
                        continue
                    if kind is not None and record.get("kind") != kind:
                        continue
                    out.append(record)
        except OSError:
            return []
        if limit is not None and limit >= 0:
            out = out[-limit:] if limit else []
        return out

    def find(self, id_prefix: str) -> Dict[str, Any]:
        """The unique record whose id starts with *id_prefix*.

        Raises ``KeyError`` when no record matches and ``ValueError``
        when the prefix is ambiguous (the message lists the candidates).
        """
        if not id_prefix:
            raise KeyError("empty record id")
        matches = [r for r in self.records()
                   if str(r.get("id", "")).startswith(id_prefix)]
        if not matches:
            raise KeyError(f"no ledger record with id {id_prefix!r} "
                           f"under {self.path}")
        ids = {str(r["id"]) for r in matches}
        if len(ids) > 1:
            raise ValueError(
                f"record id {id_prefix!r} is ambiguous: "
                f"{', '.join(sorted(ids))}"
            )
        return matches[-1]

    def prune(self, keep: int = 0) -> int:
        """Drop all but the most recent *keep* records; returns removed count.

        The ledger file is rewritten atomically; spec refs no longer
        referenced by any surviving record are deleted too.
        """
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        records = self.records()
        kept = records[-keep:] if keep else []
        removed = len(records) - len(kept)
        try:
            os.makedirs(self.root, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.root, prefix=".tmp-", suffix=".jsonl"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    for record in kept:
                        fh.write(json.dumps(record, separators=(",", ":")))
                        fh.write("\n")
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return 0
        live_digests = set()
        for record in kept:
            live_digests.update(record_metrics_by_digest(record))
        try:
            for name in os.listdir(self.specs_dir):
                if not name.endswith(".json"):
                    continue
                if name[: -len(".json")] not in live_digests:
                    try:
                        os.unlink(os.path.join(self.specs_dir, name))
                    except OSError:
                        pass
        except OSError:
            pass
        return removed


def record_metrics_by_digest(
    record: Dict[str, Any],
) -> Dict[str, Dict[str, float]]:
    """Map spec digest -> scalar metrics for either record kind.

    Run records contribute their single point; grid records contribute
    every point that produced metrics (failed points are skipped). This
    is the join key :func:`diff_records` compares on.
    """
    out: Dict[str, Dict[str, float]] = {}
    if record.get("kind") == "run":
        digest = record.get("spec_digest")
        metrics = record.get("metrics")
        if isinstance(digest, str) and isinstance(metrics, dict):
            out[digest] = metrics
    elif record.get("kind") == "grid":
        for point in record.get("points", []):
            if not isinstance(point, dict):
                continue
            digest = point.get("digest")
            metrics = point.get("metrics")
            if isinstance(digest, str) and isinstance(metrics, dict):
                out[digest] = metrics
    return out


def diff_records(
    a: Dict[str, Any],
    b: Dict[str, Any],
    tol: float = 0.0,
) -> Tuple[List[Dict[str, Any]], int]:
    """Compare two records' scalar metrics by spec digest.

    Returns ``(rows, exit_code)``. Each row describes one metric on one
    shared digest whose values differ beyond *tol* (relative tolerance:
    ``|a-b| > tol * max(|a|, |b|)``; ``tol=0`` demands exact equality).
    The exit code is the CI contract of ``repro runs diff``:

    * ``0`` — every compared metric within tolerance,
    * ``1`` — at least one metric differs beyond tolerance,
    * ``2`` — the records share no spec digests (nothing comparable).
    """
    if tol < 0:
        raise ValueError(f"tol must be >= 0, got {tol}")
    metrics_a = record_metrics_by_digest(a)
    metrics_b = record_metrics_by_digest(b)
    shared = sorted(set(metrics_a) & set(metrics_b))
    if not shared:
        return [], 2
    rows: List[Dict[str, Any]] = []
    for digest in shared:
        ma, mb = metrics_a[digest], metrics_b[digest]
        for name in sorted(set(ma) | set(mb)):
            if name not in ma or name not in mb:
                rows.append({
                    "digest": digest, "metric": name,
                    "a": ma.get(name), "b": mb.get(name),
                    "delta": None,
                })
                continue
            va, vb = float(ma[name]), float(mb[name])
            if va == vb:
                continue
            scale = max(abs(va), abs(vb))
            if abs(va - vb) > tol * scale:
                rows.append({
                    "digest": digest, "metric": name,
                    "a": va, "b": vb, "delta": vb - va,
                })
    return rows, (1 if rows else 0)


def merge_ledgers(
    sources: Sequence[Union[str, "RunLedger"]],
    dest: Union[None, str, "RunLedger"] = None,
) -> Tuple["RunLedger", int]:
    """Fold per-worker ledger shards into one queryable ledger.

    A distributed sweep gives every worker a private ledger directory
    (``O_APPEND`` line atomicity is a single-host guarantee, so workers
    on different hosts must never share one JSONL file); this merge
    makes the shards usable by ``repro runs list|diff`` again. Records
    are deduplicated by id against the destination and each other,
    ordered by timestamp (ties by id, so the merge is deterministic),
    and appended with their spec refs copied alongside. Returns the
    destination ledger and the number of records added. Sources are read
    only — re-merging is idempotent.
    """
    dest_ledger = (dest if isinstance(dest, RunLedger)
                   else RunLedger(root=dest))
    seen = {str(r.get("id")) for r in dest_ledger.records()}
    incoming: List[Tuple[Any, str, Dict[str, Any], "RunLedger"]] = []
    added = 0
    for source in sources:
        src_ledger = (source if isinstance(source, RunLedger)
                      else RunLedger(root=source))
        if os.path.abspath(src_ledger.root) == os.path.abspath(dest_ledger.root):
            continue
        for record in src_ledger.records():
            rid = str(record.get("id"))
            if rid in seen:
                continue
            seen.add(rid)
            incoming.append((record.get("ts", 0.0), rid, record, src_ledger))
    incoming.sort(key=lambda item: (item[0], item[1]))
    for _ts, _rid, record, src_ledger in incoming:
        for digest in record_metrics_by_digest(record):
            src_path = src_ledger.spec_ref_path(digest)
            dst_path = dest_ledger.spec_ref_path(digest)
            if os.path.exists(dst_path) or not os.path.exists(src_path):
                continue
            try:
                os.makedirs(dest_ledger.specs_dir, exist_ok=True)
                with open(src_path, encoding="utf-8") as fh:
                    payload = fh.read()
                fd, tmp = tempfile.mkstemp(
                    dir=dest_ledger.specs_dir, prefix=".tmp-", suffix=".json"
                )
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(payload)
                os.replace(tmp, dst_path)
            except OSError:
                pass  # a missing spec ref degrades `runs show`, not the merge
        if dest_ledger.append(record) is not None:
            added += 1
    return dest_ledger, added


def resolve_ledger(
    ledger: Union[None, bool, "RunLedger"] = None,
) -> Optional["RunLedger"]:
    """Resolve a ``ledger`` argument to a store (or ``None``).

    Mirrors :func:`repro.cache.resolve_cache`: ``None`` means the
    env-configured default (off when ``REPRO_LEDGER`` disables it),
    ``False`` forces off, ``True`` forces the default on, and an
    explicit :class:`RunLedger` is used as-is.
    """
    if isinstance(ledger, RunLedger):
        return ledger
    if ledger is False:
        return None
    if ledger is None and not ledger_enabled():
        return None
    return RunLedger()
