"""The probe framework: named periodic samplers over a running testbed.

A *probe* is a named factory registered in :data:`PROBES`. Given a
:class:`ProbeContext` (the live experiment components), it creates its
:class:`~repro.obs.series.TimeSeries` objects through
:meth:`ProbeContext.series` and returns a sampler callable that appends
one sample per tick. :class:`ProbeSet` drives all selected samplers from
a single :class:`~repro.sim.timer.PeriodicTimer`, so N probes cost one
event per period.

Probes are read-only observers: they never mutate connection, CPU, or
queue state, so enabling them changes event *counts* but no measured
metric (tested in ``tests/test_obs_probes.py``). Experiment specs select
probes with the ``probes`` field (``ExperimentSpec(probes=("cwnd",))``),
which round-trips through the scenario wire format and the parallel
runner; the CLI spells it ``--probe cwnd``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..registry import Registry
from ..sim import EventLoop, PeriodicTimer
from ..units import MSEC, SEC
from .series import TimeSeries

__all__ = ["PROBES", "ProbeContext", "ProbeSet", "DEFAULT_PROBE_PERIOD_NS", "probe"]

#: default sampling period (10 ms, the governor's own cadence)
DEFAULT_PROBE_PERIOD_NS = 10 * MSEC

#: a sampler takes the current simulated time and records one sample
Sampler = Callable[[int], None]

#: name -> probe factory ``(ProbeContext) -> Sampler``
PROBES: Registry = Registry("probe")


class ProbeContext:
    """The live experiment components a probe can observe.

    Created by :func:`repro.core.experiment.run_experiment`; all series
    created through :meth:`series` accumulate in :attr:`timeseries`,
    which becomes ``ExperimentResult.timeseries``.
    """

    def __init__(
        self,
        loop: EventLoop,
        spec,
        client,
        server,
        testbed,
        device,
        stack,
        devices: Optional[Sequence] = None,
        stacks: Optional[Sequence] = None,
    ):
        self.loop = loop
        self.spec = spec
        self.client = client
        self.server = server
        self.testbed = testbed
        self.device = device
        self.stack = stack
        #: all sender hosts (multi-flow experiments); [device]/[stack]
        #: for the single-host shape
        self.devices = list(devices) if devices is not None else [device]
        self.stacks = list(stacks) if stacks is not None else [stack]
        self.timeseries: Dict[str, TimeSeries] = {}

    def series(self, name: str, unit: str = "", labelled: bool = False) -> TimeSeries:
        """Create (and register) a named output series."""
        if name in self.timeseries:
            raise ValueError(f"duplicate probe series {name!r}")
        ts = TimeSeries(name=name, unit=unit, labels=[] if labelled else None)
        self.timeseries[name] = ts
        return ts


def probe(name: str) -> Callable[[Callable], Callable]:
    """Decorator: register a probe factory under *name*."""

    def register(factory: Callable[[ProbeContext], Sampler]) -> Callable:
        PROBES.register(name, factory)
        return factory

    return register


class ProbeSet:
    """The selected probes of one experiment, driven by one timer."""

    def __init__(
        self,
        names: Sequence[str],
        ctx: ProbeContext,
        period_ns: int = DEFAULT_PROBE_PERIOD_NS,
    ):
        self.ctx = ctx
        self.period_ns = int(period_ns)
        # Resolve all names first: an unknown probe fails fast with the
        # registry's choices-enumerating error, before anything runs.
        self._samplers: List[Sampler] = [PROBES.get(name)(ctx) for name in names]
        self._timer = PeriodicTimer(ctx.loop, self.period_ns, self._sample, name="probes")

    @property
    def timeseries(self) -> Dict[str, TimeSeries]:
        """All series produced by this probe set."""
        return self.ctx.timeseries

    def start(self) -> None:
        """Begin sampling, with a tick at t=now (so series start at 0)."""
        if self._samplers:
            self._timer.start(initial_delay_ns=0)

    def stop(self) -> None:
        """Stop the sampling timer."""
        self._timer.stop()

    def _sample(self) -> None:
        now = self.ctx.loop.now
        for sampler in self._samplers:
            sampler(now)


# --------------------------------------------------------------------------
# TCP / congestion-control probes
# --------------------------------------------------------------------------


@probe("cwnd")
def _cwnd_probe(ctx: ProbeContext) -> Sampler:
    """Mean congestion window across connections, in segments."""
    series = ctx.series("cwnd", "segments")
    conns = ctx.client.connections

    def sample(now: int) -> None:
        n = len(conns)
        series.append(now, sum(c.cwnd for c in conns) / n if n else 0.0)

    return sample


@probe("inflight")
def _inflight_probe(ctx: ProbeContext) -> Sampler:
    """Total unacknowledged segments in flight."""
    series = ctx.series("inflight", "segments")
    conns = ctx.client.connections

    def sample(now: int) -> None:
        series.append(now, float(sum(c.inflight_segments for c in conns)))

    return sample


@probe("pacing_rate")
def _pacing_rate_probe(ctx: ProbeContext) -> Sampler:
    """Mean pacing rate across connections, in Mbps."""
    series = ctx.series("pacing_rate", "Mbps")
    conns = ctx.client.connections

    def sample(now: int) -> None:
        n = len(conns)
        rate = sum(c.pacer.rate_bps for c in conns) / n if n else 0.0
        series.append(now, rate / 1e6)

    return sample


@probe("srtt")
def _srtt_probe(ctx: ProbeContext) -> Sampler:
    """Mean smoothed RTT across connections with an estimate, in ms."""
    series = ctx.series("srtt", "ms")
    conns = ctx.client.connections

    def sample(now: int) -> None:
        samples = [c.srtt_ns for c in conns if c.srtt_ns is not None]
        mean_ns = sum(samples) / len(samples) if samples else 0.0
        series.append(now, mean_ns / 1e6)

    return sample


@probe("delivery_rate")
def _delivery_rate_probe(ctx: ProbeContext) -> Sampler:
    """Aggregate ACK-clocked delivery rate over the last period, Mbps."""
    series = ctx.series("delivery_rate", "Mbps")
    conns = ctx.client.connections
    state = {"t": ctx.loop.now, "bytes": sum(c.delivered_bytes for c in conns)}

    def sample(now: int) -> None:
        delivered = sum(c.delivered_bytes for c in conns)
        dt = now - state["t"]
        rate_mbps = (
            (delivered - state["bytes"]) * 8 * SEC / dt / 1e6 if dt > 0 else 0.0
        )
        state["t"], state["bytes"] = now, delivered
        series.append(now, rate_mbps)

    return sample


@probe("goodput")
def _goodput_probe(ctx: ProbeContext) -> Sampler:
    """Server-side in-order goodput over the last period, Mbps."""
    series = ctx.series("goodput", "Mbps")
    aggregate = ctx.server.aggregate
    state = {"t": ctx.loop.now, "bytes": aggregate.total}

    def sample(now: int) -> None:
        total = aggregate.total
        dt = now - state["t"]
        rate_mbps = (total - state["bytes"]) * 8 * SEC / dt / 1e6 if dt > 0 else 0.0
        state["t"], state["bytes"] = now, total
        series.append(now, rate_mbps)

    return sample


@probe("bbr_state")
def _bbr_state_probe(ctx: ProbeContext) -> Sampler:
    """First flow's CC mode (label) and pacing gain (value).

    Works for any CC: loss-based modules report their name and gain 0.
    A :class:`~repro.cc.master.MasterModule` wrapper is unwrapped to the
    model underneath.
    """
    series = ctx.series("bbr_state", "pacing_gain", labelled=True)
    conns = ctx.client.connections

    def sample(now: int) -> None:
        # Resolved per tick: churn-only experiments have no connection
        # until the first arrival.
        if not conns:
            series.append(now, 0.0, label="none")
            return
        cc = conns[0].cc
        cc = getattr(cc, "inner", cc)
        series.append(
            now,
            float(getattr(cc, "pacing_gain", 0.0)),
            label=str(getattr(cc, "mode", cc.name)),
        )

    return sample


# --------------------------------------------------------------------------
# CPU probes
# --------------------------------------------------------------------------


@probe("cpu_util")
def _cpu_util_probe(ctx: ProbeContext) -> Sampler:
    """Per-core busy fraction over the last period, plus the core sum."""
    cores = ctx.device.cpu.all_cores()
    total = ctx.series("cpu_util", "fraction")
    per_core = {c.name: ctx.series(f"cpu_util.{c.name}", "fraction") for c in cores}
    state = {"t": ctx.loop.now}
    last_busy = {c.name: c.busy_ns_up_to_now() for c in cores}

    def sample(now: int) -> None:
        dt = now - state["t"]
        state["t"] = now
        busy_sum = 0.0
        for core in cores:
            busy = core.busy_ns_up_to_now()
            frac = (busy - last_busy[core.name]) / dt if dt > 0 else 0.0
            last_busy[core.name] = busy
            busy_sum += frac
            per_core[core.name].append(now, frac)
        total.append(now, busy_sum)

    return sample


@probe("cpu_freq")
def _cpu_freq_probe(ctx: ProbeContext) -> Sampler:
    """Per-core clock frequency in MHz."""
    cores = ctx.device.cpu.all_cores()
    per_core = {c.name: ctx.series(f"cpu_freq.{c.name}", "MHz") for c in cores}

    def sample(now: int) -> None:
        for core in cores:
            per_core[core.name].append(now, core.freq_hz / 1e6)

    return sample


@probe("softirq")
def _softirq_probe(ctx: ProbeContext) -> Sampler:
    """Pending stack work items across cores (softirq backlog)."""
    series = ctx.series("softirq", "items")
    cores = ctx.device.cpu.all_cores()

    def sample(now: int) -> None:
        series.append(now, float(sum(c.queue_depth for c in cores)))

    return sample


# --------------------------------------------------------------------------
# Network probes
# --------------------------------------------------------------------------


@probe("qdisc")
def _qdisc_probe(ctx: ProbeContext) -> Sampler:
    """Phone-qdisc and router-buffer backlogs, in segments.

    The phone series sums every sender port's qdisc (identical to the
    legacy single-qdisc reading when there is one host).
    """
    phone = ctx.series("qdisc.phone", "segments")
    router = ctx.series("qdisc.router", "segments")
    testbed = ctx.testbed

    def sample(now: int) -> None:
        phone.append(now, float(testbed.phone_backlog_segments))
        router.append(now, float(testbed.router_queue.backlog_segments))

    return sample


# --------------------------------------------------------------------------
# Per-flow probes (series keyed by flow id)
# --------------------------------------------------------------------------


@probe("flow_goodput")
def _flow_goodput_probe(ctx: ProbeContext) -> Sampler:
    """Per-flow server goodput over the last period, Mbps.

    One ``flow_goodput.f<id>`` series per flow. Flows created at setup
    are tracked from the first tick; churn-spawned flows appear lazily
    as they arrive. The discovery tick anchors the rate window at 0.
    """
    server = ctx.server
    client = ctx.client
    # flow id -> [series, window start, byte total at window start]
    known: Dict[int, list] = {}

    def sample(now: int) -> None:
        flow_ids = {conn.flow_id for conn in client.connections}
        flow_ids.update(server.per_flow)
        for flow_id in sorted(flow_ids):
            counter = server.per_flow.get(flow_id)
            total = 0 if counter is None else counter.total
            entry = known.get(flow_id)
            if entry is None:
                ts = ctx.series(f"flow_goodput.f{flow_id}", "Mbps")
                known[flow_id] = [ts, now, total]
                ts.append(now, 0.0)
                continue
            ts, t0, bytes0 = entry
            dt = now - t0
            rate_mbps = (
                (total - bytes0) * 8 * SEC / dt / 1e6 if dt > 0 else 0.0
            )
            entry[1], entry[2] = now, total
            ts.append(now, rate_mbps)

    return sample


@probe("flow_cwnd")
def _flow_cwnd_probe(ctx: ProbeContext) -> Sampler:
    """Per-flow congestion window, one ``flow_cwnd.f<id>`` series each.

    Closed flows (completed transfers, scheduled stops) drop out of
    their series rather than flat-lining at the final cwnd.
    """
    conns = ctx.client.connections
    known: Dict[int, TimeSeries] = {}

    def sample(now: int) -> None:
        for conn in conns:
            if conn.closed:
                continue
            ts = known.get(conn.flow_id)
            if ts is None:
                ts = known[conn.flow_id] = ctx.series(
                    f"flow_cwnd.f{conn.flow_id}", "segments"
                )
            ts.append(now, float(conn.cwnd))

    return sample
