"""Live grid telemetry: progress events, an in-place status view, and
scraper-friendly exports.

A long grid today is a black box between the dispatch line and the
summary line. This module opens it up: the runner (and, through a
multiprocessing queue, its pool workers) emits one small event per
lifecycle edge of every grid point —

* ``("start", index, label, pid, wall_ts)`` — a worker began simulating,
* ``("done", index, events, wall_s, pid)`` — it finished,
* ``("error", index, message, pid)`` — it raised (captured per point),
* ``("hit", index)`` — the coordinator served it from the result cache

— and a :class:`GridMonitor` folds the stream into live state: points
done/running, per-chunk progress, cache hits, an ETA, and aggregate
worker throughput. The CLI's ``repro grid --live`` renders that state as
an in-place status line on stderr (re-printed, throttled, when stderr is
not a TTY); the same state exports as OpenMetrics text
(:meth:`GridMonitor.openmetrics`) and the raw event stream as JSONL
(:meth:`GridMonitor.write_jsonl`) for external scrapers.

Everything here is observational: events are emitted outside the
simulation clock, monitors never touch specs or results, and a grid run
with a monitor attached produces bit-identical metrics to one without.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, IO, List, Optional, Tuple

__all__ = [
    "DistMonitor",
    "GridMonitor",
    "progress_done",
    "progress_error",
    "progress_hit",
    "progress_start",
    "validate_openmetrics",
]

#: progress-bar width in the rendered status line
_BAR_WIDTH = 20


# -- event constructors ------------------------------------------------------
# Events are plain tuples (kind first) so they pickle cheaply through the
# pool workers' multiprocessing queue.


def progress_start(index: int, label: str) -> Tuple:
    """A worker began simulating grid point *index*."""
    return ("start", index, label, os.getpid(), time.time())


def progress_done(index: int, events: int, wall_s: float) -> Tuple:
    """Grid point *index* finished after *wall_s* seconds."""
    return ("done", index, events, wall_s, os.getpid())


def progress_error(index: int, message: str) -> Tuple:
    """Grid point *index* raised (captured as a GridPointError)."""
    return ("error", index, message, os.getpid())


def progress_hit(index: int) -> Tuple:
    """Grid point *index* was served from the result cache."""
    return ("hit", index)


class GridMonitor:
    """Folds grid progress events into live status, renderable in place.

    *stream* (usually ``sys.stderr``) receives the status line after
    each event, rewritten with ``\\r`` on TTYs and re-printed at most
    every *interval_s* seconds otherwise; ``stream=None`` collects state
    silently for programmatic use. The monitor also keeps the raw event
    log (wall-clock stamped) for JSONL export.
    """

    def __init__(
        self,
        total_points: int,
        stream: Optional[IO[str]] = None,
        interval_s: float = 0.25,
        chunk: int = 1,
    ):
        if total_points < 0:
            raise ValueError(f"total_points must be >= 0, got {total_points}")
        self.total_points = total_points
        self.stream = stream
        self.interval_s = interval_s
        #: spec batch size per pool task (chunk progress = points/chunk)
        self.chunk = max(1, chunk)
        self.done = 0
        self.errors = 0
        self.cache_hits = 0
        self.sim_events = 0
        #: indices currently being simulated (started, not finished)
        self.running: Dict[int, float] = {}
        #: pid -> points finished by that worker
        self.worker_points: Dict[int, int] = {}
        #: pid -> simulation events produced by that worker
        self.worker_events: Dict[int, int] = {}
        #: raw event log for JSONL export (dicts, wall-clock stamped)
        self.events_log: List[Dict[str, Any]] = []
        self._t0 = time.perf_counter()
        self._last_render = 0.0
        self._line_len = 0

    # -- state ---------------------------------------------------------------

    @property
    def processed(self) -> int:
        """Points with a final outcome (done + errors + cache hits)."""
        return self.done + self.errors + self.cache_hits

    @property
    def remaining(self) -> int:
        """Points without a final outcome yet."""
        return max(0, self.total_points - self.processed)

    @property
    def elapsed_s(self) -> float:
        """Wall seconds since the monitor was created."""
        return time.perf_counter() - self._t0

    @property
    def events_per_sec(self) -> float:
        """Aggregate simulation-event throughput over the wall clock."""
        elapsed = self.elapsed_s
        return self.sim_events / elapsed if elapsed > 0 else 0.0

    @property
    def chunks_done(self) -> int:
        """Completed chunks, under the runner's batching."""
        return self.processed // self.chunk

    @property
    def total_chunks(self) -> int:
        """Chunk count for the grid (ceiling division)."""
        return -(-self.total_points // self.chunk) if self.total_points else 0

    def eta_s(self) -> Optional[float]:
        """Estimated seconds to completion (None until one point lands).

        The estimate assumes the remaining points cost what the
        processed ones did on average — cache hits count as processed,
        so a warm re-run's ETA collapses toward zero immediately.
        """
        if self.processed == 0 or self.remaining == 0:
            return 0.0 if self.remaining == 0 else None
        return self.elapsed_s / self.processed * self.remaining

    # -- event intake --------------------------------------------------------

    def record(self, event: Tuple) -> None:
        """Fold one progress event into the live state (and render)."""
        kind = event[0]
        now = time.time()
        if kind == "start":
            _, index, label, pid, ts = event
            self.running[index] = ts
            self.events_log.append(
                {"ts": ts, "kind": "start", "point": index,
                 "label": label, "pid": pid}
            )
        elif kind == "done":
            _, index, events, wall_s, pid = event
            self.running.pop(index, None)
            self.done += 1
            self.sim_events += events
            self.worker_points[pid] = self.worker_points.get(pid, 0) + 1
            self.worker_events[pid] = self.worker_events.get(pid, 0) + events
            self.events_log.append(
                {"ts": now, "kind": "done", "point": index,
                 "events": events, "wall_s": wall_s, "pid": pid}
            )
        elif kind == "error":
            _, index, message, pid = event
            self.running.pop(index, None)
            self.errors += 1
            self.events_log.append(
                {"ts": now, "kind": "error", "point": index,
                 "error": message, "pid": pid}
            )
        elif kind == "hit":
            _, index = event
            self.cache_hits += 1
            self.events_log.append(
                {"ts": now, "kind": "hit", "point": index}
            )
        else:  # unknown kinds are logged, never fatal (forward compat)
            self.events_log.append({"ts": now, "kind": str(kind)})
        self._maybe_render()

    # -- rendering -----------------------------------------------------------

    def render_line(self) -> str:
        """The current one-line status view."""
        total = self.total_points or 1
        filled = round(_BAR_WIDTH * self.processed / total)
        bar = "#" * filled + "." * (_BAR_WIDTH - filled)
        parts = [
            f"[{bar}] {self.processed}/{self.total_points}",
        ]
        if self.chunk > 1:
            parts.append(f"chunks {self.chunks_done}/{self.total_chunks}")
        if self.running:
            parts.append(f"{len(self.running)} running")
        if self.cache_hits:
            parts.append(f"hits={self.cache_hits}")
        if self.errors:
            parts.append(f"errors={self.errors}")
        if self.sim_events:
            parts.append(f"{self.events_per_sec:,.0f} ev/s")
        workers = len(self.worker_points)
        if workers > 1:
            parts.append(f"{workers} workers")
        eta = self.eta_s()
        if eta is not None and self.remaining:
            parts.append(f"ETA {eta:.0f}s")
        return " ".join(parts)

    def _maybe_render(self, force: bool = False) -> None:
        if self.stream is None:
            return
        now = time.perf_counter()
        if not force and (now - self._last_render) < self.interval_s:
            return
        self._last_render = now
        line = self.render_line()
        isatty = getattr(self.stream, "isatty", lambda: False)()
        try:
            if isatty:
                pad = max(0, self._line_len - len(line))
                self.stream.write("\r" + line + " " * pad)
                self._line_len = len(line)
            else:
                self.stream.write(line + "\n")
            self.stream.flush()
        except (OSError, ValueError):
            self.stream = None  # a closed/broken stream stops rendering

    def finish(self) -> None:
        """Render the final state (and terminate the in-place line)."""
        if self.stream is None:
            return
        self._maybe_render(force=True)
        if getattr(self.stream, "isatty", lambda: False)():
            try:
                self.stream.write("\n")
                self.stream.flush()
            except (OSError, ValueError):
                pass

    # -- exports -------------------------------------------------------------

    def openmetrics(self) -> str:
        """The current state as OpenMetrics text (for external scrapers).

        One exposition: gauges for live state, counters for totals,
        per-worker samples labelled by pid, terminated by ``# EOF`` as
        the format requires. :func:`validate_openmetrics` checks the
        output's structure.
        """
        lines = [
            "# HELP repro_grid_points Grid points by lifecycle state.",
            "# TYPE repro_grid_points gauge",
            f'repro_grid_points{{state="total"}} {self.total_points}',
            f'repro_grid_points{{state="done"}} {self.done}',
            f'repro_grid_points{{state="running"}} {len(self.running)}',
            f'repro_grid_points{{state="cache_hit"}} {self.cache_hits}',
            f'repro_grid_points{{state="error"}} {self.errors}',
            "# HELP repro_grid_chunks Completed / total dispatch chunks.",
            "# TYPE repro_grid_chunks gauge",
            f'repro_grid_chunks{{state="done"}} {self.chunks_done}',
            f'repro_grid_chunks{{state="total"}} {self.total_chunks}',
            "# HELP repro_grid_sim_events Simulation events computed so far.",
            "# TYPE repro_grid_sim_events counter",
            f"repro_grid_sim_events_total {self.sim_events}",
            "# HELP repro_grid_events_per_second Aggregate event throughput.",
            "# TYPE repro_grid_events_per_second gauge",
            f"repro_grid_events_per_second {self.events_per_sec:.1f}",
            "# HELP repro_grid_elapsed_seconds Wall time since dispatch.",
            "# TYPE repro_grid_elapsed_seconds gauge",
            f"repro_grid_elapsed_seconds {self.elapsed_s:.3f}",
            "# HELP repro_worker_points Points finished per worker process.",
            "# TYPE repro_worker_points gauge",
        ]
        for pid in sorted(self.worker_points):
            lines.append(
                f'repro_worker_points{{pid="{pid}"}} {self.worker_points[pid]}'
            )
        lines.append("# HELP repro_worker_sim_events Events per worker process.")
        lines.append("# TYPE repro_worker_sim_events gauge")
        for pid in sorted(self.worker_events):
            lines.append(
                f'repro_worker_sim_events{{pid="{pid}"}} '
                f"{self.worker_events[pid]}"
            )
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def write_openmetrics(self, path: str) -> None:
        """Write :meth:`openmetrics` output to *path*."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.openmetrics())

    def write_jsonl(self, path: str) -> int:
        """Write the raw event log as JSONL; returns the record count."""
        with open(path, "w", encoding="utf-8") as fh:
            for entry in self.events_log:
                fh.write(json.dumps(entry, separators=(",", ":")))
                fh.write("\n")
        return len(self.events_log)


class DistMonitor(GridMonitor):
    """Grid monitor that also aggregates distributed-worker heartbeats.

    A distributed sweep's progress events arrive when chunks *complete*,
    but workers publish heartbeat snapshots (progress files in the queue
    directory) continuously while they compute. The coordinator feeds
    those snapshots in via :meth:`update_workers`, and the status line
    grows a per-worker tail — ``2 live: a@12,345ev/s b@9,870ev/s`` — so
    a stalled or dead worker is visible between chunk completions. The
    ETA inherited from :class:`GridMonitor` stays chunk-driven (cache
    hits collapse it on warm resumes, exactly as in local grids).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: worker id -> latest heartbeat snapshot from the queue dir
        self.workers: Dict[str, Dict[str, Any]] = {}

    def update_workers(self, snapshots: Dict[str, Dict[str, Any]]) -> None:
        """Replace the heartbeat view (and refresh the rendering)."""
        self.workers = dict(snapshots)
        self._maybe_render()

    @staticmethod
    def _short_id(worker_id: str) -> str:
        """Heartbeat ids are ``host-pid-hex``; the pid part identifies."""
        parts = worker_id.rsplit("-", 2)
        return parts[1] if len(parts) == 3 else worker_id[:8]

    def render_line(self) -> str:
        line = super().render_line()
        live = {wid: snap for wid, snap in self.workers.items()
                if snap.get("state") != "exited"}
        if not live:
            return line
        tails = []
        for wid in sorted(live):
            rate = live[wid].get("events_per_sec", 0.0)
            tails.append(f"{self._short_id(wid)}@{rate:,.0f}ev/s")
        return f"{line} | {len(live)} live: " + " ".join(tails)


def validate_openmetrics(text: str) -> int:
    """Validate OpenMetrics text structure; returns the sample count.

    Checks the subset of the format this module emits: every non-comment
    line is ``name[{labels}] value``, every sample's metric family was
    declared by a preceding ``# TYPE``, and the exposition ends with
    ``# EOF``. Raises ``ValueError`` with the offending line otherwise.
    """
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("OpenMetrics text must end with '# EOF'")
    declared: set = set()
    samples = 0
    for lineno, line in enumerate(lines[:-1], start=1):
        if not line:
            raise ValueError(f"line {lineno}: empty line before # EOF")
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE", "UNIT"):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            if parts[1] == "TYPE":
                declared.add(parts[2])
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"line {lineno}: no value in {line!r}")
        try:
            float(value_part)
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value {value_part!r}"
            ) from None
        metric = name_part.split("{", 1)[0]
        family = metric[: -len("_total")] if metric.endswith("_total") else metric
        if metric not in declared and family not in declared:
            raise ValueError(
                f"line {lineno}: sample {metric!r} has no preceding # TYPE"
            )
        samples += 1
    return samples
