"""Time-series containers for telemetry probes.

A :class:`TimeSeries` is the unit of probe output: a named, unit-tagged
sequence of ``(time_ns, value)`` samples, optionally with a categorical
label per sample (BBR's mode string rides alongside its pacing gain).
Series serialize to plain JSON dicts so they travel in experiment
results (including across the parallel runner's process boundary), in
``repro run --series-out`` files, and into ``repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["TimeSeries"]


@dataclass
class TimeSeries:
    """One probe's samples over simulated time."""

    name: str
    unit: str = ""
    t_ns: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    #: optional categorical label per sample (e.g. BBR mode names);
    #: ``None`` for purely numeric series
    labels: Optional[List[str]] = None

    def append(self, t_ns: int, value: float, label: Optional[str] = None) -> None:
        """Record one sample at simulated time *t_ns*."""
        self.t_ns.append(int(t_ns))
        self.values.append(float(value))
        if self.labels is not None:
            self.labels.append("" if label is None else str(label))
        elif label is not None:
            raise ValueError(
                f"series {self.name!r} was created without labels; "
                f"initialise labels=[] to record them"
            )

    def __len__(self) -> int:
        return len(self.t_ns)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a plain JSON-compatible dict (exact round trip)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "unit": self.unit,
            "t_ns": list(self.t_ns),
            "values": list(self.values),
        }
        if self.labels is not None:
            out["labels"] = list(self.labels)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TimeSeries":
        """Rebuild a series from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise ValueError(f"series must be a mapping, got {type(data).__name__}")
        unknown = set(data) - {"name", "unit", "t_ns", "values", "labels"}
        if unknown:
            raise ValueError(f"unknown series key(s) {sorted(unknown)}")
        series = cls(
            name=str(data.get("name", "")),
            unit=str(data.get("unit", "")),
            t_ns=[int(t) for t in data.get("t_ns", [])],
            values=[float(v) for v in data.get("values", [])],
            labels=(
                [str(l) for l in data["labels"]]
                if data.get("labels") is not None
                else None
            ),
        )
        if len(series.t_ns) != len(series.values):
            raise ValueError(
                f"series {series.name!r} has {len(series.t_ns)} times "
                f"but {len(series.values)} values"
            )
        if series.labels is not None and len(series.labels) != len(series.t_ns):
            raise ValueError(f"series {series.name!r} label count mismatch")
        return series

    def downsample(self, max_points: int) -> "TimeSeries":
        """An evenly strided copy with at most *max_points* samples.

        Sample times are kept exact (no interpolation): the copy picks
        ``max_points`` indices spread evenly across the series, always
        including the first and last sample.
        """
        if max_points < 2:
            raise ValueError("need at least two points")
        n = len(self.t_ns)
        if n <= max_points:
            indices = range(n)
        else:
            indices = sorted(
                {round(i * (n - 1) / (max_points - 1)) for i in range(max_points)}
            )
        return TimeSeries(
            name=self.name,
            unit=self.unit,
            t_ns=[self.t_ns[i] for i in indices],
            values=[self.values[i] for i in indices],
            labels=(
                [self.labels[i] for i in indices] if self.labels is not None else None
            ),
        )
