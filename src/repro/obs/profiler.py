"""Opt-in per-callback-type profiling for the event loop.

:class:`SimProfiler` aggregates, per callback qualname, how many events
fired, how much *simulated* time elapsed while that callback type was at
the head of the calendar queue, and how much *wall-clock* time the
Python callback consumed. The event loop only pays for this when a
profiler is installed (:meth:`repro.sim.engine.EventLoop.set_profiler`);
the disabled dispatch path is unchanged — verified by
``benchmarks/perf_harness.py``.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..metrics.report import render_table

__all__ = ["SimProfiler"]


class SimProfiler:
    """Per-callback-type counters: (count, simulated ns, wall ns)."""

    def __init__(self) -> None:
        #: callback qualname -> mutable ``[count, sim_ns, wall_ns]``.
        #: The loop mutates these lists in place on its hot path.
        self.records: Dict[str, List[int]] = {}

    @property
    def total_events(self) -> int:
        """Events dispatched while this profiler was installed."""
        return sum(rec[0] for rec in self.records.values())

    @property
    def total_wall_ns(self) -> int:
        """Wall-clock nanoseconds spent inside profiled callbacks."""
        return sum(rec[2] for rec in self.records.values())

    def rows(self, top: int = 0) -> List[Dict[str, Any]]:
        """One dict per callback type, sorted by wall time, descending.

        *top* > 0 keeps only the heaviest *top* callback types.
        """
        ranked = sorted(
            self.records.items(), key=lambda kv: kv[1][2], reverse=True
        )
        if top > 0:
            ranked = ranked[:top]
        out = []
        for name, (count, sim_ns, wall_ns) in ranked:
            out.append(
                {
                    "callback": name,
                    "count": count,
                    "sim_ms": sim_ns / 1e6,
                    "wall_ms": wall_ns / 1e6,
                    "wall_us_per_event": wall_ns / count / 1e3 if count else 0.0,
                }
            )
        return out

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """JSON-friendly snapshot keyed by callback qualname."""
        return {
            name: {"count": rec[0], "sim_ns": rec[1], "wall_ns": rec[2]}
            for name, rec in self.records.items()
        }

    def render(self, top: int = 0) -> str:
        """ASCII table of the profile, heaviest callbacks first.

        *top* > 0 limits the table to the heaviest *top* callback types
        (the title still reports totals across all of them).
        """
        rows = self.rows(top)
        if not rows:
            return "(no events profiled)"
        total = len(self.records)
        title = (f"simulation profile: {self.total_events} events, "
                 f"{self.total_wall_ns / 1e6:.1f} ms wall")
        if 0 < top < total:
            title += f" (top {len(rows)} of {total} callback types)"
        headers = ["callback", "count", "sim_ms", "wall_ms", "wall_us/event"]
        table = render_table(
            headers,
            [
                [r["callback"], r["count"], r["sim_ms"], r["wall_ms"],
                 r["wall_us_per_event"]]
                for r in rows
            ],
            title=title,
        )
        return table
