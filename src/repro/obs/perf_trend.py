"""Perf-trajectory sentinel: bench history and sustained-regression gates.

``benchmarks/results/BENCH_runner.json`` freezes one baseline and one
``current`` snapshot — a two-point story with no trajectory. This module
gives the perf harness a history: every harness invocation appends one
compact record (kernel, events/sec per canonical point, microbench
rates, git head, timestamp) to ``benchmarks/results/BENCH_history.jsonl``,
and the gates compare a run against the **median of comparable history
entries** instead of a single frozen number — a sustained slide across
runs trips the sentinel even when each step stays inside a one-shot
noise budget, while one noisy CI run cannot poison the reference.

Entries are *comparable* when kernel name, quick mode, and CPU count all
match: events/sec measured under the compiled kernel, in quick mode, or
on different hardware are different populations and never gate each
other. With no comparable history the gate falls back to the frozen
baseline, so a fresh checkout behaves exactly as before.

``repro perf trend`` (:mod:`repro.cli`) renders the trajectory and
applies :func:`check_trend` as a CI-friendly exit code.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .ledger import atomic_append_line

__all__ = [
    "HISTORY_FILENAME",
    "append_history",
    "check_trend",
    "comparable_entries",
    "git_head",
    "history_record",
    "load_history",
    "median_baseline",
    "render_trend",
]

#: history file name under ``benchmarks/results/``
HISTORY_FILENAME = "BENCH_history.jsonl"

#: schema version stamped into every history record
_HISTORY_VERSION = 1

#: sparkline glyphs, lowest to highest
_SPARK = "▁▂▃▄▅▆▇█"


def git_head(cwd: Optional[str] = None) -> Optional[str]:
    """The short git HEAD of *cwd* (None outside a repo / without git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    head = out.stdout.strip()
    return head if out.returncode == 0 and head else None


def history_record(
    events_per_sec: Dict[str, float],
    kernel: str,
    quick: bool,
    microbench: Optional[Dict[str, float]] = None,
    timestamp: Optional[float] = None,
    head: Optional[str] = None,
    cpu_count: Optional[int] = None,
) -> Dict[str, Any]:
    """Build one compact history entry.

    *timestamp* is injected (wall clock of the harness, never simulated
    time); it defaults to ``time.time()`` at call time.
    """
    return {
        "v": _HISTORY_VERSION,
        "ts": time.time() if timestamp is None else timestamp,
        "git_head": head,
        "kernel": kernel,
        "quick": bool(quick),
        "cpu_count": cpu_count if cpu_count is not None else os.cpu_count(),
        "events_per_sec": {k: float(v) for k, v in events_per_sec.items()},
        "microbench": dict(microbench or {}),
    }


def append_history(path: str, record: Dict[str, Any]) -> bool:
    """Append *record* to the history file atomically; returns success."""
    try:
        line = json.dumps(record, separators=(",", ":"))
    except (TypeError, ValueError):
        return False
    return atomic_append_line(path, line)


def load_history(path: str) -> List[Dict[str, Any]]:
    """History entries, oldest first; corrupt/foreign lines are skipped."""
    out: List[Dict[str, Any]] = []
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                if isinstance(entry, dict) and \
                        isinstance(entry.get("events_per_sec"), dict):
                    out.append(entry)
    except OSError:
        return []
    return out


def comparable_entries(
    history: Sequence[Dict[str, Any]],
    kernel: str,
    quick: bool,
    cpu_count: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """The entries whose numbers are comparable to a run's.

    Kernel backend, quick mode, and CPU count must all match — each axis
    shifts events/sec by far more than any regression budget.
    """
    if cpu_count is None:
        cpu_count = os.cpu_count()
    return [
        e for e in history
        if e.get("kernel") == kernel
        and bool(e.get("quick")) == bool(quick)
        and e.get("cpu_count") == cpu_count
    ]


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def median_baseline(
    entries: Sequence[Dict[str, Any]],
) -> Dict[str, float]:
    """Per-point median events/sec over *entries* (empty dict when none)."""
    samples: Dict[str, List[float]] = {}
    for entry in entries:
        for name, value in entry.get("events_per_sec", {}).items():
            if isinstance(value, (int, float)):
                samples.setdefault(name, []).append(float(value))
    return {name: _median(values) for name, values in samples.items()}


def check_trend(
    current: Dict[str, float],
    baseline: Dict[str, float],
    budget_pct: float,
) -> List[Tuple[str, float]]:
    """Points in *current* that regressed beyond *budget_pct* vs *baseline*.

    Returns ``(point, relative_gain)`` pairs, ``relative_gain`` negative
    for a slowdown. Points absent from the baseline never gate.
    """
    regressed: List[Tuple[str, float]] = []
    for name, value in current.items():
        base = baseline.get(name)
        if not base:
            continue
        gain = float(value) / float(base) - 1.0
        if gain < -budget_pct / 100.0:
            regressed.append((name, gain))
    return regressed


def _sparkline(values: Sequence[float]) -> str:
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK[0] * len(values)
    span = hi - lo
    return "".join(
        _SPARK[min(len(_SPARK) - 1, int((v - lo) / span * len(_SPARK)))]
        for v in values
    )


def render_trend(history: Sequence[Dict[str, Any]]) -> str:
    """Human-readable trajectory: one block per comparable entry group.

    Entries are grouped by (kernel, quick, cpu_count); within a group
    each canonical point gets a sparkline over time, the first and last
    values, and the last value's distance from the group median.
    """
    if not history:
        return "no history entries"
    groups: Dict[Tuple, List[Dict[str, Any]]] = {}
    for entry in history:
        key = (entry.get("kernel"), bool(entry.get("quick")),
               entry.get("cpu_count"))
        groups.setdefault(key, []).append(entry)
    blocks: List[str] = []
    for (kernel, quick, cpus), entries in groups.items():
        header = (f"kernel={kernel} quick={'yes' if quick else 'no'} "
                  f"cpus={cpus} ({len(entries)} entries)")
        lines = [header]
        medians = median_baseline(entries)
        names = sorted({n for e in entries for n in e.get("events_per_sec", {})})
        width = max((len(n) for n in names), default=0)
        for name in names:
            values = [
                float(e["events_per_sec"][name]) for e in entries
                if name in e.get("events_per_sec", {})
            ]
            if not values:
                continue
            last = values[-1]
            vs_median = (last / medians[name] - 1.0) if medians.get(name) else 0.0
            lines.append(
                f"  {name.ljust(width)} {_sparkline(values)} "
                f"{values[0]:>11,.0f} -> {last:>11,.0f} ev/s "
                f"({vs_median:+.1%} vs median)"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
