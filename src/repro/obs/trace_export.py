"""Trace export: JSONL and Chrome trace-event (Perfetto) formats.

Two export paths for the records a :class:`~repro.sim.trace.Tracer`
collects:

* **JSONL** — one JSON object per line with the fixed schema
  ``{"time_ns": int, "source": str, "event": str, "fields": {...}}``.
  Greppable, streamable, and loss-free (:func:`load_jsonl` rebuilds the
  exact records).

* **Chrome trace-event JSON** — loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``. Each trace source
  becomes a named thread; ``exec`` records carrying a ``start_ns`` field
  (CPU work items, including pacing-timer callbacks — emitted by
  :class:`~repro.cpu.core.CpuCore`) render as duration slices on their
  core's track, everything else as instant events.

Both formats have validators used by tests and CI.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from ..sim.trace import TraceRecord

__all__ = [
    "export_jsonl",
    "load_jsonl",
    "validate_jsonl",
    "export_chrome_trace",
    "validate_chrome_trace",
]

_JSONL_KEYS = ("time_ns", "source", "event", "fields")


# --------------------------------------------------------------------------
# JSONL
# --------------------------------------------------------------------------


def record_to_dict(record: TraceRecord) -> Dict[str, Any]:
    """One record as its JSONL wire object."""
    return {
        "time_ns": record.time_ns,
        "source": record.source,
        "event": record.event,
        "fields": record.fields,
    }


def export_jsonl(records: Iterable[TraceRecord], path: str) -> int:
    """Write *records* to *path*, one JSON object per line; returns count."""
    count = 0
    with open(path, "w") as f:
        for record in records:
            f.write(json.dumps(record_to_dict(record)) + "\n")
            count += 1
    return count


def load_jsonl(path: str) -> List[TraceRecord]:
    """Rebuild :class:`TraceRecord` objects from a JSONL trace file."""
    records: List[TraceRecord] = []
    with open(path) as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            obj = _check_jsonl_object(line, path, line_no)
            records.append(
                TraceRecord(obj["time_ns"], obj["source"], obj["event"], obj["fields"])
            )
    return records


def validate_jsonl(path: str) -> int:
    """Check every line of *path* against the JSONL trace schema.

    Returns the record count; raises ``ValueError`` naming the first
    offending line otherwise.
    """
    count = 0
    with open(path) as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            _check_jsonl_object(line, path, line_no)
            count += 1
    return count


def _check_jsonl_object(line: str, path: str, line_no: int) -> Dict[str, Any]:
    where = f"{path}:{line_no}"
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{where}: not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ValueError(f"{where}: expected an object, got {type(obj).__name__}")
    missing = [k for k in _JSONL_KEYS if k not in obj]
    if missing:
        raise ValueError(f"{where}: missing key(s) {missing}")
    unknown = [k for k in obj if k not in _JSONL_KEYS]
    if unknown:
        raise ValueError(f"{where}: unknown key(s) {sorted(unknown)}")
    if not isinstance(obj["time_ns"], int) or isinstance(obj["time_ns"], bool):
        raise ValueError(f"{where}: time_ns must be an integer")
    if not isinstance(obj["source"], str) or not isinstance(obj["event"], str):
        raise ValueError(f"{where}: source and event must be strings")
    if not isinstance(obj["fields"], dict):
        raise ValueError(f"{where}: fields must be an object")
    return obj


# --------------------------------------------------------------------------
# Chrome trace-event format
# --------------------------------------------------------------------------

_PID = 1
_PROCESS_NAME = "repro-sim"


def chrome_trace_events(records: Iterable[TraceRecord]) -> List[Dict[str, Any]]:
    """Build the ``traceEvents`` list for *records*.

    Timestamps are microseconds (the format's unit). Sources map to
    threads in order of first appearance; ``M`` metadata events name
    them so Perfetto shows ``phone-qdisc``, ``little0``, ... as tracks.
    """
    events: List[Dict[str, Any]] = [
        {
            "ph": "M", "pid": _PID, "tid": 0,
            "name": "process_name", "args": {"name": _PROCESS_NAME},
        }
    ]
    tids: Dict[str, int] = {}
    for record in records:
        tid = tids.get(record.source)
        if tid is None:
            tid = tids[record.source] = len(tids) + 1
            events.append(
                {
                    "ph": "M", "pid": _PID, "tid": tid,
                    "name": "thread_name", "args": {"name": record.source},
                }
            )
        fields = record.fields
        start_ns = fields.get("start_ns")
        if record.event == "exec" and isinstance(start_ns, int):
            # A completed CPU work item: render the span it occupied the
            # core as a duration slice (pacing-timer callbacks included).
            events.append(
                {
                    "ph": "X", "pid": _PID, "tid": tid,
                    "name": str(fields.get("item", "work")),
                    "cat": "cpu",
                    "ts": start_ns / 1e3,
                    "dur": (record.time_ns - start_ns) / 1e3,
                    "args": {k: v for k, v in fields.items() if k != "start_ns"},
                }
            )
        else:
            events.append(
                {
                    "ph": "i", "pid": _PID, "tid": tid,
                    "name": record.event,
                    "cat": record.event,
                    "ts": record.time_ns / 1e3,
                    "s": "t",
                    "args": dict(fields),
                }
            )
    return events


def export_chrome_trace(records: Iterable[TraceRecord], path: str) -> int:
    """Write a Perfetto-loadable trace for *records*; returns event count."""
    events = chrome_trace_events(records)
    with open(path, "w") as f:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, f)
    return len(events)


def validate_chrome_trace(path: str) -> int:
    """Check *path* against the trace-event JSON schema.

    Returns the number of non-metadata events; raises ``ValueError``
    on the first violation.
    """
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path}: expected an object with a 'traceEvents' list")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError(f"{path}: 'traceEvents' must be a list")
    payload = 0
    for i, event in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not an object")
        for key in ("ph", "pid", "tid", "name"):
            if key not in event:
                raise ValueError(f"{where}: missing {key!r}")
        ph = event["ph"]
        if ph == "M":
            continue
        payload += 1
        if not isinstance(event.get("ts"), (int, float)):
            raise ValueError(f"{where}: missing numeric 'ts'")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: 'X' event needs a non-negative 'dur'")
        elif ph != "i":
            raise ValueError(f"{where}: unexpected phase {ph!r}")
    return payload
