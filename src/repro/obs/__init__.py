"""Observability: time-series probes, trace export, and the profiler.

The paper's core figures are *time series* — goodput, pacing rate, CPU
utilization, BBR state over the life of a transfer. This package turns
any experiment into those figures:

* :mod:`repro.obs.probes` — named periodic samplers selected per spec
  (``ExperimentSpec(probes=("pacing_rate", "cpu_util"))``), recorded
  into ``ExperimentResult.timeseries``,
* :mod:`repro.obs.trace_export` — JSONL and Chrome trace-event exports
  of :class:`~repro.sim.trace.Tracer` ring buffers,
* :mod:`repro.obs.profiler` — per-callback-type event-loop profiling,
* :mod:`repro.obs.ledger` — the persistent run ledger (every
  experiment/grid invocation appends a manifest record),
* :mod:`repro.obs.live` — live grid progress: worker heartbeat events,
  the in-place status view, OpenMetrics/JSONL exports,
* :mod:`repro.obs.perf_trend` — the perf-trajectory sentinel over
  ``BENCH_history.jsonl``.
"""

from .ledger import (
    RunLedger,
    default_ledger_dir,
    diff_records,
    ledger_enabled,
    merge_ledgers,
    resolve_ledger,
)
from .live import DistMonitor, GridMonitor, validate_openmetrics
from .probes import DEFAULT_PROBE_PERIOD_NS, PROBES, ProbeContext, ProbeSet, probe
from .profiler import SimProfiler
from .series import TimeSeries
from .trace_export import (
    export_chrome_trace,
    export_jsonl,
    load_jsonl,
    validate_chrome_trace,
    validate_jsonl,
)

__all__ = [
    "PROBES",
    "ProbeContext",
    "ProbeSet",
    "probe",
    "DEFAULT_PROBE_PERIOD_NS",
    "SimProfiler",
    "TimeSeries",
    "RunLedger",
    "default_ledger_dir",
    "diff_records",
    "ledger_enabled",
    "merge_ledgers",
    "resolve_ledger",
    "DistMonitor",
    "GridMonitor",
    "validate_openmetrics",
    "export_jsonl",
    "load_jsonl",
    "validate_jsonl",
    "export_chrome_trace",
    "validate_chrome_trace",
]
