"""The four CPU configurations of Table 1 and the device builder.

``build_device(loop, profile, config)`` assembles a
:class:`~repro.cpu.cluster.BigLittleCpu` with the right clusters
enabled/disabled, pins or starts the right governor, and returns a
:class:`DeviceSetup` whose ``cost_model`` is the default cost model
scaled by the profile's per-cycle efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..cpu import (
    BigLittleCpu,
    CostModel,
    CpuCluster,
    DEFAULT_COSTS,
    DynamicCpuPolicy,
    ThermalModel,
    UserspaceGovernor,
)
from ..registry import Registry
from ..sim import EventLoop, Tracer, NULL_TRACER
from .profiles import DeviceProfile

__all__ = ["CpuConfig", "CPU_CONFIGS", "DeviceSetup", "build_device"]


class CpuConfig:
    """Table 1's configuration names."""

    LOW_END = "low-end"
    MID_END = "mid-end"
    HIGH_END = "high-end"
    DEFAULT = "default"

    # ALL is assigned from the CPU_CONFIGS registry below, so the tuple
    # and the registry can never drift apart.
    ALL: tuple


@dataclass
class DeviceSetup:
    """A fully assembled device: topology, governors, and cost model."""

    profile: DeviceProfile
    config: str
    cpu: BigLittleCpu
    cost_model: CostModel
    governors: List[object] = field(default_factory=list)
    policy: Optional[DynamicCpuPolicy] = None

    def start(self) -> None:
        """Apply pinned frequencies / start dynamic sampling."""
        for governor in self.governors:
            governor.start()
        if self.policy is not None:
            self.policy.start()

    def stop(self) -> None:
        """Stop periodic governor work (lets the event loop drain)."""
        for governor in self.governors:
            governor.stop()
        if self.policy is not None:
            self.policy.stop()

    def cpu_busy_fraction(self, elapsed_ns: int) -> float:
        """Aggregate busy fraction of the active core over *elapsed_ns*."""
        if elapsed_ns <= 0:
            return 0.0
        busy = sum(core.busy_ns_up_to_now() for core in self.cpu.all_cores())
        return busy / elapsed_ns


def _pin_low_end(loop: EventLoop, setup: DeviceSetup, tracer: Tracer) -> None:
    setup.cpu.disable_big()
    setup.governors.append(
        UserspaceGovernor(setup.cpu.little, setup.profile.low_end_hz)
    )


def _pin_mid_end(loop: EventLoop, setup: DeviceSetup, tracer: Tracer) -> None:
    setup.cpu.disable_big()
    setup.governors.append(
        UserspaceGovernor(setup.cpu.little, setup.profile.mid_end_hz)
    )


def _pin_high_end(loop: EventLoop, setup: DeviceSetup, tracer: Tracer) -> None:
    setup.cpu.disable_little()
    setup.governors.append(
        UserspaceGovernor(setup.cpu.big, setup.profile.high_end_hz)
    )


def _dynamic_default(loop: EventLoop, setup: DeviceSetup, tracer: Tracer) -> None:
    # DEFAULT: dynamic scaling + migration + thermal envelope
    thermal = ThermalModel(sustained_hz=setup.profile.sustained_big_hz)
    setup.policy = DynamicCpuPolicy(loop, setup.cpu, thermal=thermal, tracer=tracer)


#: name -> configurator ``(loop, DeviceSetup, tracer) -> None`` applying a
#: Table 1 configuration to a freshly built topology
CPU_CONFIGS: Registry = Registry("CPU config")
CPU_CONFIGS.register(CpuConfig.LOW_END, _pin_low_end)
CPU_CONFIGS.register(CpuConfig.MID_END, _pin_mid_end)
CPU_CONFIGS.register(CpuConfig.HIGH_END, _pin_high_end)
CPU_CONFIGS.register(CpuConfig.DEFAULT, _dynamic_default)

CpuConfig.ALL = CPU_CONFIGS.names()


def build_device(
    loop: EventLoop,
    profile: DeviceProfile,
    config: str,
    base_costs: CostModel = DEFAULT_COSTS,
    tracer: Tracer = NULL_TRACER,
) -> DeviceSetup:
    """Build the device *profile* in Table 1 configuration *config*."""
    configure = CPU_CONFIGS.get(config)

    little = CpuCluster(
        loop, "little", profile.little_opps_hz, profile.little_cores, tracer=tracer
    )
    big = CpuCluster(
        loop, "big", profile.big_opps_hz, profile.big_cores, tracer=tracer
    )
    cpu = BigLittleCpu(little, big)
    costs = base_costs.scaled(profile.cycles_scale)
    setup = DeviceSetup(profile=profile, config=config, cpu=cpu, cost_model=costs)
    configure(loop, setup, tracer)
    return setup
