"""The four CPU configurations of Table 1 and the device builder.

``build_device(loop, profile, config)`` assembles a
:class:`~repro.cpu.cluster.BigLittleCpu` with the right clusters
enabled/disabled, pins or starts the right governor, and returns a
:class:`DeviceSetup` whose ``cost_model`` is the default cost model
scaled by the profile's per-cycle efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..cpu import (
    BigLittleCpu,
    CostModel,
    CpuCluster,
    DEFAULT_COSTS,
    DynamicCpuPolicy,
    ThermalModel,
    UserspaceGovernor,
)
from ..sim import EventLoop, Tracer, NULL_TRACER
from .profiles import DeviceProfile

__all__ = ["CpuConfig", "DeviceSetup", "build_device"]


class CpuConfig:
    """Table 1's configuration names."""

    LOW_END = "low-end"
    MID_END = "mid-end"
    HIGH_END = "high-end"
    DEFAULT = "default"

    ALL = (LOW_END, MID_END, HIGH_END, DEFAULT)


@dataclass
class DeviceSetup:
    """A fully assembled device: topology, governors, and cost model."""

    profile: DeviceProfile
    config: str
    cpu: BigLittleCpu
    cost_model: CostModel
    governors: List[object] = field(default_factory=list)
    policy: Optional[DynamicCpuPolicy] = None

    def start(self) -> None:
        """Apply pinned frequencies / start dynamic sampling."""
        for governor in self.governors:
            governor.start()
        if self.policy is not None:
            self.policy.start()

    def stop(self) -> None:
        """Stop periodic governor work (lets the event loop drain)."""
        for governor in self.governors:
            governor.stop()
        if self.policy is not None:
            self.policy.stop()

    def cpu_busy_fraction(self, elapsed_ns: int) -> float:
        """Aggregate busy fraction of the active core over *elapsed_ns*."""
        if elapsed_ns <= 0:
            return 0.0
        busy = sum(core.busy_ns_up_to_now() for core in self.cpu.all_cores())
        return busy / elapsed_ns


def build_device(
    loop: EventLoop,
    profile: DeviceProfile,
    config: str,
    base_costs: CostModel = DEFAULT_COSTS,
    tracer: Tracer = NULL_TRACER,
) -> DeviceSetup:
    """Build the device *profile* in Table 1 configuration *config*."""
    if config not in CpuConfig.ALL:
        raise ValueError(f"unknown CPU config {config!r}")

    little = CpuCluster(
        loop, "little", profile.little_opps_hz, profile.little_cores, tracer=tracer
    )
    big = CpuCluster(
        loop, "big", profile.big_opps_hz, profile.big_cores, tracer=tracer
    )
    cpu = BigLittleCpu(little, big)
    costs = base_costs.scaled(profile.cycles_scale)
    setup = DeviceSetup(profile=profile, config=config, cpu=cpu, cost_model=costs)

    if config == CpuConfig.LOW_END:
        cpu.disable_big()
        setup.governors.append(UserspaceGovernor(little, profile.low_end_hz))
    elif config == CpuConfig.MID_END:
        cpu.disable_big()
        setup.governors.append(UserspaceGovernor(little, profile.mid_end_hz))
    elif config == CpuConfig.HIGH_END:
        cpu.disable_little()
        setup.governors.append(UserspaceGovernor(big, profile.high_end_hz))
    else:  # DEFAULT: dynamic scaling + migration + thermal envelope
        thermal = ThermalModel(sustained_hz=profile.sustained_big_hz)
        setup.policy = DynamicCpuPolicy(loop, cpu, thermal=thermal, tracer=tracer)
    return setup
