"""Device profiles: Pixel 4 and Pixel 6 (§3.1, Table 1).

A :class:`DeviceProfile` captures what the reproduction needs from a
phone SoC: the OPP (frequency) tables of the LITTLE and BIG clusters, the
core counts, a sustained-clock thermal cap for dynamic mode, and a
relative per-cycle efficiency factor.

Frequency tables follow the real SoCs (Snapdragon 855 for the Pixel 4,
Google Tensor for the Pixel 6) closely enough that Table 1's pin points
exist exactly: 576 MHz / 1.2 GHz / 2.8 GHz on the Pixel 4 and
300 MHz / 1.2 GHz / 2.8 GHz on the Pixel 6.

``cycles_scale`` multiplies the cost model's cycle counts: the Tensor's
Cortex-A55/X1 cores retire this workload in fewer effective cycles than
the 855's (newer cores, better memory system), which is why the paper
sees similar Low-End goodput on the Pixel 6 at 300 MHz as on the Pixel 4
at 576 MHz (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..registry import Registry
from ..units import ghz, mhz

__all__ = ["DeviceProfile", "PIXEL_4", "PIXEL_6", "DEVICES"]


@dataclass(frozen=True)
class DeviceProfile:
    """Static description of a phone SoC."""

    name: str
    little_opps_hz: Tuple[float, ...]
    big_opps_hz: Tuple[float, ...]
    little_cores: int = 4
    big_cores: int = 4
    #: sustained BIG-cluster clock under the thermal envelope (dynamic mode)
    sustained_big_hz: float = 0.0
    #: multiplier on CostModel cycle counts (relative core efficiency)
    cycles_scale: float = 1.0

    @property
    def low_end_hz(self) -> float:
        """Table 1 Low-End pin: minimum LITTLE OPP."""
        return min(self.little_opps_hz)

    @property
    def mid_end_hz(self) -> float:
        """Table 1 Mid-End pin: the 1.2 GHz LITTLE OPP (median region)."""
        table = sorted(self.little_opps_hz)
        return table[len(table) // 2]

    @property
    def high_end_hz(self) -> float:
        """Table 1 High-End pin: maximum BIG OPP."""
        return max(self.big_opps_hz)


#: Pixel 4 (2019, Snapdragon 855, Android 11 / kernel 4.14).
PIXEL_4 = DeviceProfile(
    name="pixel4",
    little_opps_hz=(
        mhz(576), mhz(672), mhz(768), mhz(940), mhz(1056),
        mhz(1200), mhz(1360), mhz(1516), mhz(1612), mhz(1708), mhz(1785),
    ),
    big_opps_hz=(
        mhz(826), mhz(1056), mhz(1286), mhz(1516), mhz(1747),
        mhz(1977), mhz(2208), mhz(2400), mhz(2600), ghz(2.8),
    ),
    little_cores=4,
    big_cores=4,
    sustained_big_hz=mhz(1460),
    cycles_scale=1.0,
)

#: Pixel 6 (2021, Google Tensor, Android 12 / kernel 5.10).
PIXEL_6 = DeviceProfile(
    name="pixel6",
    little_opps_hz=(
        mhz(300), mhz(574), mhz(738), mhz(930), mhz(1098),
        mhz(1197), mhz(1328), mhz(1491), mhz(1598), mhz(1704), mhz(1803),
    ),
    big_opps_hz=(
        mhz(500), mhz(851), mhz(984), mhz(1106), mhz(1277),
        mhz(1426), mhz(1582), mhz(1745), mhz(1826), mhz(2048),
        mhz(2188), mhz(2252), mhz(2401), mhz(2507), mhz(2630),
        mhz(2704), ghz(2.8),
    ),
    little_cores=4,
    big_cores=2,
    sustained_big_hz=mhz(1582),
    cycles_scale=0.52,
)

#: name -> :class:`DeviceProfile` (spec ``device=`` scenario references)
DEVICES: Registry = Registry("device")
DEVICES.register(PIXEL_4.name, PIXEL_4)
DEVICES.register(PIXEL_6.name, PIXEL_6)
