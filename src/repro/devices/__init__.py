"""Device profiles (Pixel 4 / Pixel 6) and Table 1 CPU configurations."""

from .configs import CpuConfig, DeviceSetup, build_device
from .profiles import PIXEL_4, PIXEL_6, DeviceProfile

__all__ = [
    "DeviceProfile",
    "PIXEL_4",
    "PIXEL_6",
    "CpuConfig",
    "DeviceSetup",
    "build_device",
]
