"""Device profiles (Pixel 4 / Pixel 6) and Table 1 CPU configurations."""

from .configs import CPU_CONFIGS, CpuConfig, DeviceSetup, build_device
from .profiles import DEVICES, PIXEL_4, PIXEL_6, DeviceProfile

__all__ = [
    "DeviceProfile",
    "PIXEL_4",
    "PIXEL_6",
    "DEVICES",
    "CpuConfig",
    "CPU_CONFIGS",
    "DeviceSetup",
    "build_device",
]
