/* Compiled simulation-kernel backend (the `compiled` entry of
 * repro.kernel.KERNELS).
 *
 * This extension re-implements the simulator's mechanical hot core —
 * EventLoop/Event, WorkItem/CpuCore, Timer, Link, DropTailQueue — as C
 * types that are drop-in constructor-compatible with their pure-python
 * counterparts. The pure modules remain the bit-identical determinism
 * reference (see DESIGN.md "Simulation kernel"); this file must never
 * change observable behaviour, only wall-clock cost.
 *
 * Determinism contract (mirrors repro.sim.engine):
 *   1. time is an integer nanosecond counter (int64 here; values in
 *      every supported workload fit comfortably),
 *   2. events fire in (when, seq) order where seq is a single shared
 *      insertion counter — every scheduling site, Python-visible or
 *      internal, consumes exactly one seq at the same logical point as
 *      the pure code, so tie-breaks are identical,
 *   3. float arithmetic is IEEE-754 double in both interpreters: the C
 *      expressions are transcribed verbatim from the pure modules
 *      (Python round() == C nearbyint() under the default half-even
 *      rounding mode; Python int() truncation == C double->int64 cast
 *      for the non-negative values used here).
 *
 * Unlike the pure loop there is no timer wheel: a single binary heap
 * with lazy deletion gives the same total (when, seq) order (the wheel
 * is a routing optimization, not an ordering feature), and C heap ops
 * are cheap enough that bucketing would only add constant factors.
 *
 * Internal event kinds (CPU completion, link/queue tx-done, timer fire,
 * one-arg calls) carry no Python Event object and no args tuple — the
 * heap entry itself is the schedule record — which is where most of the
 * speedup over interpreted dispatch comes from.
 *
 * Tracing/profiling are pure-kernel features: constructors reject
 * enabled tracers and EventLoop.set_profiler raises, pointing at
 * `--kernel pure` (repro.core.experiment falls back automatically).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <math.h>
#include <stdint.h>
#include "structmember.h"

#define NS_PER_SEC 1000000000LL

/* ---------------------------------------------------------------- types */

typedef struct CLoop CLoop;
typedef struct CEvent CEvent;
typedef struct CTimer CTimer;
typedef struct CWorkItem CWorkItem;
typedef struct CCore CCore;
typedef struct CLink CLink;
typedef struct CQueue CQueue;

enum {
    KIND_PY = 0,     /* a = CEvent (owns callback/args)                  */
    KIND_CPU = 1,    /* a = CCore, b = CWorkItem                         */
    KIND_LINK = 2,   /* a = CLink, b = Packet                            */
    KIND_QTX = 3,    /* a = CQueue                                       */
    KIND_TIMER = 4,  /* a = CTimer, tag = arming generation              */
    KIND_CALL1 = 5,  /* a = callable, b = single argument                */
};

typedef struct {
    int64_t when;
    int64_t seq;
    int64_t tag;
    int kind;
    PyObject *a;  /* owned */
    PyObject *b;  /* owned or NULL */
} HeapEntry;

struct CLoop {
    PyObject_HEAD
    HeapEntry *heap;
    Py_ssize_t heap_len;
    Py_ssize_t heap_cap;
    int64_t now;
    int64_t seq;
    int64_t events_processed;
    int64_t cancelled_in_heap;
    int64_t compactions;
    int running;
    int stopped;
    PyObject *context;   /* dict */
    PyObject *profiler;  /* always None (set_profiler(None) is allowed) */
};

struct CEvent {
    PyObject_HEAD
    int64_t when;
    int64_t seq;
    PyObject *callback;
    PyObject *args;  /* tuple */
    CLoop *loop;     /* owned */
    char cancelled;
    char fired;
};

struct CTimer {
    PyObject_HEAD
    CLoop *loop;        /* owned */
    PyObject *callback;
    PyObject *name;
    int64_t slack;
    int64_t fire_count;
    int64_t gen;        /* bumped every (re-)arm; heap entries carry the
                           generation they were armed with */
    int64_t when;
    int armed;
};

struct CWorkItem {
    PyObject_HEAD
    int64_t cycles;
    PyObject *callback;
    PyObject *name;
    int priority;
    int64_t submitted_at;
    int64_t started_at;
    int has_submitted;
    int has_started;
};

struct CCore {
    PyObject_HEAD
    CLoop *loop;       /* owned */
    double freq_hz;
    PyObject *name;
    /* two circular buffers of owned CWorkItem refs */
    PyObject **q;
    Py_ssize_t q_head, q_len, q_cap;
    PyObject **hq;
    Py_ssize_t hq_head, hq_len, hq_cap;
    PyObject *current;  /* owned CWorkItem or NULL */
    int64_t busy_ns_total;
    int64_t items_executed;
    int64_t cycles_executed;
    int64_t max_queue_depth;
    int64_t busy_since;
    int has_busy_since;
};

struct CLink {
    PyObject_HEAD
    CLoop *loop;      /* owned */
    double rate_bps;
    int64_t prop_delay_ns;
    PyObject *name;
    PyObject *sink;   /* owned or NULL (exposed as None) */
    /* circular buffer of owned Packet refs */
    PyObject **fifo;
    Py_ssize_t f_head, f_len, f_cap;
    int transmitting;
    int64_t packets_sent;
    int64_t bytes_sent;
    int64_t busy_ns;
};

struct CQueue {
    PyObject_HEAD
    CLoop *loop;          /* owned */
    PyObject *link;       /* owned; CLink fast path or any Link-alike */
    PyObject *input_link; /* owned or NULL (exposed as None) */
    int64_t capacity_segments;
    PyObject *name;
    PyObject *on_drop;    /* owned or NULL (exposed as None) */
    PyObject **fifo;
    Py_ssize_t f_head, f_len, f_cap;
    int64_t backlog_segments;
    int link_busy;
    int64_t enqueued_segments;
    int64_t dropped_segments;
    int64_t dropped_packets;
    int64_t max_backlog_segments;
    double backlog_sum_segments;
    int64_t backlog_samples;
};

static PyTypeObject CLoop_Type;
static PyTypeObject CEvent_Type;
static PyTypeObject CTimer_Type;
static PyTypeObject CWorkItem_Type;
static PyTypeObject CCore_Type;
static PyTypeObject CLink_Type;
static PyTypeObject CQueue_Type;

/* interned attribute names for the Python-object interop paths */
static PyObject *s_wire_bytes, *s_segments, *s_is_ack, *s_split_head,
    *s_rate_bps, *s_enabled, *s_send, *s_serialization_ns;

/* ------------------------------------------------------------- helpers */

static PyObject *
sim_error(void)
{
    /* repro.sim.engine.SimulationError, fetched lazily so the compiled
     * and pure kernels raise the exact same exception class. */
    static PyObject *exc = NULL;
    if (exc == NULL) {
        PyObject *mod = PyImport_ImportModule("repro.sim.engine");
        if (mod != NULL) {
            exc = PyObject_GetAttrString(mod, "SimulationError");
            Py_DECREF(mod);
        }
        if (exc == NULL) {
            PyErr_Clear();
            exc = PyExc_RuntimeError;
            Py_INCREF(exc);
        }
    }
    return exc;
}

static int
as_i64(PyObject *obj, int64_t *out)
{
    PyObject *idx = PyNumber_Index(obj);
    if (idx == NULL)
        return -1;
    long long v = PyLong_AsLongLong(idx);
    Py_DECREF(idx);
    if (v == -1 && PyErr_Occurred())
        return -1;
    *out = (int64_t)v;
    return 0;
}

static int
tracer_is_enabled(PyObject *tracer)
{
    /* Truthiness of tracer.enabled; a missing attribute counts as off. */
    if (tracer == NULL || tracer == Py_None)
        return 0;
    PyObject *en = PyObject_GetAttr(tracer, s_enabled);
    if (en == NULL) {
        PyErr_Clear();
        return 0;
    }
    int truthy = PyObject_IsTrue(en);
    Py_DECREF(en);
    return truthy > 0;
}

static int
reject_enabled_tracer(PyObject *tracer, const char *what)
{
    if (tracer_is_enabled(tracer)) {
        PyErr_Format(PyExc_ValueError,
                     "compiled %s does not support an enabled tracer; "
                     "run with --kernel pure (REPRO_KERNEL=pure) for "
                     "instrumented runs", what);
        return -1;
    }
    return 0;
}

/* ------------------------------------------------------ heap machinery */

static inline int
entry_lt(const HeapEntry *x, const HeapEntry *y)
{
    if (x->when != y->when)
        return x->when < y->when;
    return x->seq < y->seq;
}

static int
entry_live(const HeapEntry *e)
{
    switch (e->kind) {
    case KIND_PY:
        return !((CEvent *)e->a)->cancelled;
    case KIND_TIMER: {
        CTimer *t = (CTimer *)e->a;
        return t->armed && t->gen == e->tag;
    }
    default:
        return 1;
    }
}

static void
entry_release(HeapEntry *e)
{
    Py_XDECREF(e->a);
    Py_XDECREF(e->b);
    e->a = e->b = NULL;
}

static int
heap_reserve(CLoop *self, Py_ssize_t need)
{
    if (need <= self->heap_cap)
        return 0;
    Py_ssize_t cap = self->heap_cap ? self->heap_cap : 64;
    while (cap < need)
        cap *= 2;
    HeapEntry *mem = PyMem_Realloc(self->heap, cap * sizeof(HeapEntry));
    if (mem == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->heap = mem;
    self->heap_cap = cap;
    return 0;
}

/* push an entry; steals the references held in *e */
static int
heap_push(CLoop *self, HeapEntry *e)
{
    if (heap_reserve(self, self->heap_len + 1) < 0) {
        entry_release(e);
        return -1;
    }
    HeapEntry *h = self->heap;
    Py_ssize_t pos = self->heap_len++;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (!entry_lt(e, &h[parent]))
            break;
        h[pos] = h[parent];
        pos = parent;
    }
    h[pos] = *e;
    return 0;
}

/* pop the minimum into *out (caller owns its references) */
static void
heap_pop(CLoop *self, HeapEntry *out)
{
    HeapEntry *h = self->heap;
    *out = h[0];
    Py_ssize_t n = --self->heap_len;
    if (n == 0)
        return;
    HeapEntry last = h[n];
    Py_ssize_t pos = 0;
    Py_ssize_t child;
    while ((child = 2 * pos + 1) < n) {
        if (child + 1 < n && entry_lt(&h[child + 1], &h[child]))
            child += 1;
        if (!entry_lt(&h[child], &last))
            break;
        h[pos] = h[child];
        pos = child;
    }
    h[pos] = last;
}

/* discard a dead head entry, settling the lazy-deletion debt */
static void
heap_pop_dead(CLoop *self)
{
    HeapEntry e;
    heap_pop(self, &e);
    if (e.kind == KIND_PY || e.kind == KIND_TIMER)
        self->cancelled_in_heap -= 1;
    entry_release(&e);
}

static void
loop_compact(CLoop *self)
{
    /* Drop dead entries and re-heapify (Floyd). Live order is fully
     * determined by (when, seq), so this never perturbs firing order. */
    if (self->cancelled_in_heap == 0)
        return;
    HeapEntry *h = self->heap;
    Py_ssize_t n = self->heap_len;
    Py_ssize_t w = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        if (entry_live(&h[i]))
            h[w++] = h[i];
        else
            entry_release(&h[i]);
    }
    self->heap_len = w;
    for (Py_ssize_t i = w / 2 - 1; i >= 0; i--) {
        HeapEntry item = h[i];
        Py_ssize_t pos = i;
        Py_ssize_t child;
        while ((child = 2 * pos + 1) < w) {
            if (child + 1 < w && entry_lt(&h[child + 1], &h[child]))
                child += 1;
            if (!entry_lt(&h[child], &item))
                break;
            h[pos] = h[child];
            pos = child;
        }
        h[pos] = item;
    }
    self->cancelled_in_heap = 0;
    self->compactions += 1;
}

/* mirror of EventLoop._note_cancelled's compaction policy */
#define COMPACT_MIN 512

static void
loop_note_cancelled(CLoop *self)
{
    self->cancelled_in_heap += 1;
    if (self->cancelled_in_heap >= COMPACT_MIN
        && self->cancelled_in_heap * 2 >= self->heap_len)
        loop_compact(self);
}

/* schedule an internal (no Python Event) entry; consumes one seq.
 * Steals no references: INCREFs a and b itself. */
static int
schedule_internal(CLoop *self, int64_t when, int kind, int64_t tag,
                  PyObject *a, PyObject *b)
{
    HeapEntry e;
    e.when = when;
    e.seq = ++self->seq;
    e.tag = tag;
    e.kind = kind;
    Py_INCREF(a);
    e.a = a;
    Py_XINCREF(b);
    e.b = b;
    return heap_push(self, &e);
}

/* --------------------------------------------------------------- Event */

static void
CEvent_dealloc(CEvent *self)
{
    PyObject_GC_UnTrack(self);
    Py_XDECREF(self->callback);
    Py_XDECREF(self->args);
    Py_XDECREF(self->loop);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CEvent_traverse(CEvent *self, visitproc visit, void *arg)
{
    Py_VISIT(self->callback);
    Py_VISIT(self->args);
    Py_VISIT(self->loop);
    return 0;
}

static int
CEvent_clear(CEvent *self)
{
    Py_CLEAR(self->callback);
    Py_CLEAR(self->args);
    Py_CLEAR(self->loop);
    return 0;
}

static PyObject *
CEvent_cancel(CEvent *self, PyObject *Py_UNUSED(ignored))
{
    if (!self->cancelled) {
        self->cancelled = 1;
        if (!self->fired && self->loop != NULL)
            loop_note_cancelled(self->loop);
    }
    Py_RETURN_NONE;
}

static PyObject *
CEvent_get_pending(CEvent *self, void *closure)
{
    return PyBool_FromLong(!self->cancelled && !self->fired);
}

static PyObject *
CEvent_repr(CEvent *self)
{
    const char *state = self->cancelled ? "cancelled"
                        : (self->fired ? "fired" : "pending");
    return PyUnicode_FromFormat("<Event t=%lld %R %s>",
                                (long long)self->when, self->callback, state);
}

static PyMethodDef CEvent_methods[] = {
    {"cancel", (PyCFunction)CEvent_cancel, METH_NOARGS,
     "Cancel the event; a no-op if it already fired."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef CEvent_getset[] = {
    {"pending", (getter)CEvent_get_pending, NULL,
     "True while the event is scheduled and not cancelled/fired.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef CEvent_members[] = {
    {"when", T_LONGLONG, offsetof(CEvent, when), READONLY,
     "Absolute fire time in ns."},
    {"callback", T_OBJECT_EX, offsetof(CEvent, callback), READONLY, NULL},
    {"cancelled", T_BOOL, offsetof(CEvent, cancelled), READONLY, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CEvent_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.Event",
    .tp_basicsize = sizeof(CEvent),
    .tp_dealloc = (destructor)CEvent_dealloc,
    .tp_repr = (reprfunc)CEvent_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A scheduled callback (compiled kernel).",
    .tp_traverse = (traverseproc)CEvent_traverse,
    .tp_clear = (inquiry)CEvent_clear,
    .tp_methods = CEvent_methods,
    .tp_getset = CEvent_getset,
    .tp_members = CEvent_members,
    .tp_free = PyObject_GC_Del,
};

/* ------------------------------------------------------------ EventLoop */

static PyObject *
CLoop_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "", kwlist))
        return NULL;
    CLoop *self = (CLoop *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->context = PyDict_New();
    if (self->context == NULL) {
        Py_DECREF(self);
        return NULL;
    }
    Py_INCREF(Py_None);
    self->profiler = Py_None;
    return (PyObject *)self;
}

static void
CLoop_dealloc(CLoop *self)
{
    PyObject_GC_UnTrack(self);
    for (Py_ssize_t i = 0; i < self->heap_len; i++)
        entry_release(&self->heap[i]);
    self->heap_len = 0;
    PyMem_Free(self->heap);
    self->heap = NULL;
    Py_XDECREF(self->context);
    Py_XDECREF(self->profiler);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CLoop_traverse(CLoop *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->heap_len; i++) {
        Py_VISIT(self->heap[i].a);
        Py_VISIT(self->heap[i].b);
    }
    Py_VISIT(self->context);
    Py_VISIT(self->profiler);
    return 0;
}

static int
CLoop_clear(CLoop *self)
{
    for (Py_ssize_t i = 0; i < self->heap_len; i++)
        entry_release(&self->heap[i]);
    self->heap_len = 0;
    Py_CLEAR(self->context);
    Py_CLEAR(self->profiler);
    return 0;
}

/* shared scheduling core for call_at/call_after */
static PyObject *
loop_schedule_event(CLoop *self, int64_t when, PyObject *callback,
                    PyObject *const *extra, Py_ssize_t nextra)
{
    CEvent *ev = PyObject_GC_New(CEvent, &CEvent_Type);
    if (ev == NULL)
        return NULL;
    ev->when = when;
    Py_INCREF(callback);
    ev->callback = callback;
    ev->args = PyTuple_New(nextra);
    if (ev->args == NULL) {
        ev->loop = NULL;
        Py_DECREF(ev);
        return NULL;
    }
    for (Py_ssize_t i = 0; i < nextra; i++) {
        Py_INCREF(extra[i]);
        PyTuple_SET_ITEM(ev->args, i, extra[i]);
    }
    Py_INCREF(self);
    ev->loop = self;
    ev->cancelled = 0;
    ev->fired = 0;
    ev->seq = ++self->seq;
    PyObject_GC_Track(ev);

    HeapEntry e;
    e.when = when;
    e.seq = ev->seq;
    e.tag = 0;
    e.kind = KIND_PY;
    Py_INCREF(ev);
    e.a = (PyObject *)ev;
    e.b = NULL;
    if (heap_push(self, &e) < 0) {
        Py_DECREF(ev);
        return NULL;
    }
    return (PyObject *)ev;
}

static PyObject *
CLoop_call_at(CLoop *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "call_at(when, callback, *args) takes at least 2 arguments");
        return NULL;
    }
    int64_t when;
    if (as_i64(args[0], &when) < 0)
        return NULL;
    if (when < self->now) {
        PyErr_Format(sim_error(),
                     "cannot schedule at t=%lld before now=%lld",
                     (long long)when, (long long)self->now);
        return NULL;
    }
    return loop_schedule_event(self, when, args[1], args + 2, nargs - 2);
}

static PyObject *
CLoop_call_after(CLoop *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "call_after(delay, callback, *args) takes at least 2 arguments");
        return NULL;
    }
    int64_t delay;
    if (as_i64(args[0], &delay) < 0)
        return NULL;
    if (delay < 0) {
        PyErr_Format(sim_error(), "negative delay %lld", (long long)delay);
        return NULL;
    }
    return loop_schedule_event(self, self->now + delay, args[1],
                               args + 2, nargs - 2);
}

static PyObject *
CLoop_call_soon(CLoop *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 1) {
        PyErr_SetString(PyExc_TypeError,
                        "call_soon(callback, *args) takes at least 1 argument");
        return NULL;
    }
    return loop_schedule_event(self, self->now, args[0], args + 1, nargs - 1);
}

static PyObject *
CLoop_stop(CLoop *self, PyObject *Py_UNUSED(ignored))
{
    self->stopped = 1;
    Py_RETURN_NONE;
}

static PyObject *
CLoop_set_profiler(CLoop *self, PyObject *profiler)
{
    if (profiler != Py_None) {
        PyErr_SetString(sim_error(),
                        "the compiled kernel does not support the "
                        "SimProfiler; rerun with --kernel pure "
                        "(REPRO_KERNEL=pure)");
        return NULL;
    }
    Py_RETURN_NONE;
}

/* forward declarations of the internal dispatchers (defined with their
 * component types below) */
static int core_complete(CCore *core, CWorkItem *item);
static int link_tx_done(CLink *link, PyObject *packet);
static int queue_tx_done(CQueue *q);

static PyObject *
CLoop_run(CLoop *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"until", "max_events", NULL};
    PyObject *until = Py_None, *max_events = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|OO", kwlist,
                                     &until, &max_events))
        return NULL;
    int64_t horizon = 0, limit = 0;
    int has_h = 0, has_l = 0;
    if (until != Py_None) {
        if (as_i64(until, &horizon) < 0)
            return NULL;
        has_h = 1;
    }
    if (max_events != Py_None) {
        if (as_i64(max_events, &limit) < 0)
            return NULL;
        has_l = 1;
    }
    if (self->running) {
        PyErr_SetString(sim_error(), "loop is already running");
        return NULL;
    }
    self->running = 1;
    self->stopped = 0;
    int64_t processed = 0;
    int failed = 0;

    while (!self->stopped) {
        if (self->heap_len == 0)
            break;
        HeapEntry *head = &self->heap[0];
        if (has_h && head->when > horizon)
            break;
        if (!entry_live(head)) {
            heap_pop_dead(self);
            continue;
        }
        HeapEntry e;
        heap_pop(self, &e);
        self->now = e.when;
        int rc = 0;
        switch (e.kind) {
        case KIND_PY: {
            CEvent *ev = (CEvent *)e.a;
            ev->fired = 1;
            PyObject *res = PyObject_Call(ev->callback, ev->args, NULL);
            if (res == NULL)
                rc = -1;
            else
                Py_DECREF(res);
            break;
        }
        case KIND_CPU:
            rc = core_complete((CCore *)e.a, (CWorkItem *)e.b);
            break;
        case KIND_LINK:
            rc = link_tx_done((CLink *)e.a, e.b);
            break;
        case KIND_QTX:
            rc = queue_tx_done((CQueue *)e.a);
            break;
        case KIND_TIMER: {
            CTimer *t = (CTimer *)e.a;
            t->armed = 0;
            t->fire_count += 1;
            PyObject *res = PyObject_CallNoArgs(t->callback);
            if (res == NULL)
                rc = -1;
            else
                Py_DECREF(res);
            break;
        }
        case KIND_CALL1: {
            PyObject *res = PyObject_CallOneArg(e.a, e.b);
            if (res == NULL)
                rc = -1;
            else
                Py_DECREF(res);
            break;
        }
        }
        entry_release(&e);
        if (rc < 0) {
            failed = 1;
            break;
        }
        processed += 1;
        if (has_l && processed >= limit) {
            PyErr_Format(sim_error(),
                         "exceeded max_events=%lld (runaway simulation?)",
                         (long long)limit);
            failed = 1;
            break;
        }
    }
    if (!failed && has_h && self->now < horizon)
        self->now = horizon;
    self->events_processed += processed;
    self->running = 0;
    if (failed)
        return NULL;
    return PyLong_FromLongLong(self->now);
}

static PyObject *
CLoop_run_until_idle(CLoop *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *args = PyTuple_New(0);
    if (args == NULL)
        return NULL;
    PyObject *res = CLoop_run(self, args, NULL);
    Py_DECREF(args);
    return res;
}

static PyObject *
CLoop_peek_next_time(CLoop *self, PyObject *Py_UNUSED(ignored))
{
    while (self->heap_len && !entry_live(&self->heap[0]))
        heap_pop_dead(self);
    if (self->heap_len == 0)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(self->heap[0].when);
}

static PyObject *
CLoop_pending_count(CLoop *self, PyObject *Py_UNUSED(ignored))
{
    return PyLong_FromLongLong(
        (long long)self->heap_len - self->cancelled_in_heap);
}

static PyObject *
CLoop_compact_py(CLoop *self, PyObject *Py_UNUSED(ignored))
{
    loop_compact(self);
    Py_RETURN_NONE;
}

static PyObject *
CLoop_get_now(CLoop *self, void *closure)
{
    return PyLong_FromLongLong(self->now);
}

static PyObject *
CLoop_get_events_processed(CLoop *self, void *closure)
{
    return PyLong_FromLongLong(self->events_processed);
}

static PyMethodDef CLoop_methods[] = {
    {"call_at", (PyCFunction)(void (*)(void))CLoop_call_at, METH_FASTCALL,
     "Schedule callback(*args) at absolute time `when` (ns)."},
    {"call_after", (PyCFunction)(void (*)(void))CLoop_call_after, METH_FASTCALL,
     "Schedule callback(*args) after `delay` ns (must be >= 0)."},
    {"call_soon", (PyCFunction)(void (*)(void))CLoop_call_soon, METH_FASTCALL,
     "Schedule callback(*args) at the current instant."},
    {"run", (PyCFunction)(void (*)(void))CLoop_run,
     METH_VARARGS | METH_KEYWORDS, "Run the simulation."},
    {"run_until_idle", (PyCFunction)CLoop_run_until_idle, METH_NOARGS,
     "Run until no events remain; returns the final time."},
    {"stop", (PyCFunction)CLoop_stop, METH_NOARGS,
     "Request the running loop to stop after the current callback."},
    {"set_profiler", (PyCFunction)CLoop_set_profiler, METH_O,
     "Unsupported on the compiled kernel (raises; use --kernel pure)."},
    {"peek_next_time", (PyCFunction)CLoop_peek_next_time, METH_NOARGS,
     "Time of the next pending event, or None."},
    {"pending_count", (PyCFunction)CLoop_pending_count, METH_NOARGS,
     "Number of scheduled, non-cancelled events (O(1))."},
    {"compact", (PyCFunction)CLoop_compact_py, METH_NOARGS,
     "Drop cancelled entries from the heap and re-heapify."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef CLoop_getset[] = {
    {"now", (getter)CLoop_get_now, NULL,
     "Current simulated time in integer nanoseconds.", NULL},
    {"_now", (getter)CLoop_get_now, NULL,
     "Alias of `now` for callers that read the pure loop's clock slot "
     "directly (a per-event hot-path optimization).", NULL},
    {"events_processed", (getter)CLoop_get_events_processed, NULL,
     "Count of callbacks that have fired.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef CLoop_members[] = {
    {"context", T_OBJECT_EX, offsetof(CLoop, context), READONLY,
     "Arbitrary per-simulation scratch space."},
    {"compactions", T_LONGLONG, offsetof(CLoop, compactions), READONLY,
     "Heap rebuilds triggered by cancellation debt."},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CLoop_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.EventLoop",
    .tp_basicsize = sizeof(CLoop),
    .tp_dealloc = (destructor)CLoop_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "The simulation clock and scheduler (compiled kernel).",
    .tp_traverse = (traverseproc)CLoop_traverse,
    .tp_clear = (inquiry)CLoop_clear,
    .tp_methods = CLoop_methods,
    .tp_getset = CLoop_getset,
    .tp_members = CLoop_members,
    .tp_new = CLoop_new,
    .tp_free = PyObject_GC_Del,
};
/* ------------------------------------------------------- ring buffers */

/* A tiny grow-only circular buffer of owned PyObject* — the C stand-in
 * for collections.deque in CpuCore/Link/DropTailQueue. */

static int
ring_push(PyObject ***bufp, Py_ssize_t *headp, Py_ssize_t *lenp,
          Py_ssize_t *capp, PyObject *item, int front)
{
    PyObject **buf = *bufp;
    Py_ssize_t cap = *capp, len = *lenp;
    if (len == cap) {
        Py_ssize_t ncap = cap ? cap * 2 : 8;
        PyObject **nbuf = PyMem_Malloc(ncap * sizeof(PyObject *));
        if (nbuf == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        for (Py_ssize_t i = 0; i < len; i++)
            nbuf[i] = buf[(*headp + i) % (cap ? cap : 1)];
        PyMem_Free(buf);
        *bufp = buf = nbuf;
        *capp = cap = ncap;
        *headp = 0;
    }
    if (front) {
        *headp = (*headp - 1 + cap) % cap;
        buf[*headp] = item;
    } else {
        buf[(*headp + len) % cap] = item;
    }
    *lenp = len + 1;
    Py_INCREF(item);
    return 0;
}

/* pop-left; transfers ownership to the caller (never called empty) */
static PyObject *
ring_pop(PyObject **buf, Py_ssize_t *headp, Py_ssize_t *lenp, Py_ssize_t cap)
{
    PyObject *item = buf[*headp];
    *headp = (*headp + 1) % cap;
    *lenp -= 1;
    return item;
}

static void
ring_dealloc(PyObject **buf, Py_ssize_t head, Py_ssize_t len, Py_ssize_t cap)
{
    for (Py_ssize_t i = 0; i < len; i++)
        Py_DECREF(buf[(head + i) % cap]);
    PyMem_Free(buf);
}

#define RING_TRAVERSE(buf, head, len, cap)                                \
    do {                                                                  \
        for (Py_ssize_t _i = 0; _i < (len); _i++)                         \
            Py_VISIT((buf)[((head) + _i) % (cap)]);                       \
    } while (0)

/* tolerant int coercion used by Timer: mirrors pure int(x) for floats */
static int
as_i64_trunc(PyObject *obj, int64_t *out)
{
    if (PyFloat_Check(obj)) {
        *out = (int64_t)PyFloat_AS_DOUBLE(obj);
        return 0;
    }
    return as_i64(obj, out);
}

/* ------------------------------------------------------------ WorkItem */

static int
workitem_setup(CWorkItem *self, int64_t cycles, PyObject *callback,
               PyObject *name, int priority)
{
    if (cycles < 0) {
        PyErr_SetString(PyExc_ValueError, "work cycles must be >= 0");
        return -1;
    }
    if (priority != 0 && priority != 1) {
        PyErr_SetString(PyExc_ValueError,
                        "priority must be 0 (high) or 1 (normal)");
        return -1;
    }
    self->cycles = cycles;
    Py_INCREF(callback);
    self->callback = callback;
    Py_INCREF(name);
    self->name = name;
    self->priority = priority;
    self->has_submitted = 0;
    self->has_started = 0;
    return 0;
}

static PyObject *
CWorkItem_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"cycles", "callback", "name", "priority", NULL};
    PyObject *cycles_obj, *callback, *name = NULL;
    int priority = 1;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO|Oi:WorkItem", kwlist,
                                     &cycles_obj, &callback, &name, &priority))
        return NULL;
    int64_t cycles;
    if (as_i64_trunc(cycles_obj, &cycles) < 0)
        return NULL;
    CWorkItem *self = (CWorkItem *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    PyObject *nm = name ? name : PyUnicode_FromString("work");
    if (nm == NULL) {
        Py_DECREF(self);
        return NULL;
    }
    if (workitem_setup(self, cycles, callback, nm, priority) < 0) {
        if (!name)
            Py_DECREF(nm);
        Py_DECREF(self);
        return NULL;
    }
    if (!name)
        Py_DECREF(nm);  /* workitem_setup took its own reference */
    return (PyObject *)self;
}

static void
CWorkItem_dealloc(CWorkItem *self)
{
    PyObject_GC_UnTrack(self);
    Py_XDECREF(self->callback);
    Py_XDECREF(self->name);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CWorkItem_traverse(CWorkItem *self, visitproc visit, void *arg)
{
    Py_VISIT(self->callback);
    Py_VISIT(self->name);
    return 0;
}

static int
CWorkItem_clear(CWorkItem *self)
{
    Py_CLEAR(self->callback);
    Py_CLEAR(self->name);
    return 0;
}

static PyObject *
CWorkItem_get_submitted_at(CWorkItem *self, void *closure)
{
    if (!self->has_submitted)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(self->submitted_at);
}

static PyObject *
CWorkItem_get_started_at(CWorkItem *self, void *closure)
{
    if (!self->has_started)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(self->started_at);
}

static PyGetSetDef CWorkItem_getset[] = {
    {"submitted_at", (getter)CWorkItem_get_submitted_at, NULL,
     "Time the item was queued, or None.", NULL},
    {"started_at", (getter)CWorkItem_get_started_at, NULL,
     "Time the item started executing, or None.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef CWorkItem_members[] = {
    {"cycles", T_LONGLONG, offsetof(CWorkItem, cycles), READONLY,
     "Cycle cost of the item."},
    {"callback", T_OBJECT_EX, offsetof(CWorkItem, callback), READONLY, NULL},
    {"name", T_OBJECT, offsetof(CWorkItem, name), 0, NULL},
    {"priority", T_INT, offsetof(CWorkItem, priority), READONLY, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CWorkItem_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.WorkItem",
    .tp_basicsize = sizeof(CWorkItem),
    .tp_dealloc = (destructor)CWorkItem_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A unit of stack work to execute on a core (compiled kernel).",
    .tp_traverse = (traverseproc)CWorkItem_traverse,
    .tp_clear = (inquiry)CWorkItem_clear,
    .tp_getset = CWorkItem_getset,
    .tp_members = CWorkItem_members,
    .tp_new = CWorkItem_new,
    .tp_free = PyObject_GC_Del,
};

/* ------------------------------------------------------------- CpuCore */

static int
core_start_next(CCore *self)
{
    PyObject *item_obj;
    if (self->hq_len)
        item_obj = ring_pop(self->hq, &self->hq_head, &self->hq_len,
                            self->hq_cap);
    else if (self->q_len)
        item_obj = ring_pop(self->q, &self->q_head, &self->q_len,
                            self->q_cap);
    else
        return 0;
    CWorkItem *item = (CWorkItem *)item_obj;
    CLoop *loop = self->loop;
    int64_t now = loop->now;
    self->current = item_obj;  /* takes the popped reference */
    item->started_at = now;
    item->has_started = 1;
    self->busy_since = now;
    self->has_busy_since = 1;
    /* pure: duration = int(round(item.cycles * SEC / self._freq_hz)) */
    int64_t duration = (int64_t)nearbyint(
        (double)item->cycles * (double)NS_PER_SEC / self->freq_hz);
    return schedule_internal(loop, now + duration, KIND_CPU, 0,
                             (PyObject *)self, item_obj);
}

/* KIND_CPU dispatch: the heap entry owns `item` while this runs */
static int
core_complete(CCore *self, CWorkItem *item)
{
    if (self->has_busy_since) {
        self->busy_ns_total += self->loop->now - self->busy_since;
        self->has_busy_since = 0;
    }
    Py_CLEAR(self->current);
    self->items_executed += 1;
    self->cycles_executed += item->cycles;
    /* Run the callback *before* starting the next item (pure semantics:
     * newly submitted work lands behind already-queued items). */
    PyObject *res = PyObject_CallNoArgs(item->callback);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    if (self->current == NULL)
        return core_start_next(self);
    return 0;
}

static int
core_submit(CCore *self, CWorkItem *item, int continuation)
{
    item->submitted_at = self->loop->now;
    item->has_submitted = 1;
    int rc;
    if (item->priority == 0)
        rc = ring_push(&self->hq, &self->hq_head, &self->hq_len,
                       &self->hq_cap, (PyObject *)item, continuation);
    else
        rc = ring_push(&self->q, &self->q_head, &self->q_len,
                       &self->q_cap, (PyObject *)item, continuation);
    if (rc < 0)
        return -1;
    Py_ssize_t depth = self->q_len + self->hq_len;
    if (depth > self->max_queue_depth)
        self->max_queue_depth = depth;
    if (self->current == NULL)
        return core_start_next(self);
    return 0;
}

static PyObject *
CCore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"loop", "freq_hz", "name", "tracer", NULL};
    CLoop *loop;
    double freq_hz;
    PyObject *name = NULL, *tracer = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!d|OO:CpuCore", kwlist,
                                     &CLoop_Type, &loop, &freq_hz,
                                     &name, &tracer))
        return NULL;
    if (freq_hz <= 0) {
        PyErr_SetString(PyExc_ValueError, "core frequency must be positive");
        return NULL;
    }
    if (reject_enabled_tracer(tracer, "CpuCore") < 0)
        return NULL;
    CCore *self = (CCore *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    Py_INCREF(loop);
    self->loop = loop;
    self->freq_hz = freq_hz;
    if (name != NULL) {
        Py_INCREF(name);
        self->name = name;
    } else {
        self->name = PyUnicode_FromString("cpu0");
        if (self->name == NULL) {
            Py_DECREF(self);
            return NULL;
        }
    }
    return (PyObject *)self;
}

static void
CCore_dealloc(CCore *self)
{
    PyObject_GC_UnTrack(self);
    ring_dealloc(self->q, self->q_head, self->q_len, self->q_cap);
    ring_dealloc(self->hq, self->hq_head, self->hq_len, self->hq_cap);
    self->q = self->hq = NULL;
    self->q_len = self->hq_len = 0;
    Py_XDECREF(self->current);
    Py_XDECREF(self->loop);
    Py_XDECREF(self->name);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CCore_traverse(CCore *self, visitproc visit, void *arg)
{
    RING_TRAVERSE(self->q, self->q_head, self->q_len, self->q_cap);
    RING_TRAVERSE(self->hq, self->hq_head, self->hq_len, self->hq_cap);
    Py_VISIT(self->current);
    Py_VISIT(self->loop);
    Py_VISIT(self->name);
    return 0;
}

static int
CCore_clear(CCore *self)
{
    ring_dealloc(self->q, self->q_head, self->q_len, self->q_cap);
    ring_dealloc(self->hq, self->hq_head, self->hq_len, self->hq_cap);
    self->q = self->hq = NULL;
    self->q_head = self->hq_head = self->q_len = self->hq_len = 0;
    self->q_cap = self->hq_cap = 0;
    Py_CLEAR(self->current);
    Py_CLEAR(self->loop);
    Py_CLEAR(self->name);
    return 0;
}

static PyObject *
CCore_submit(CCore *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"item", "continuation", NULL};
    PyObject *item;
    int continuation = 0;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!|p:submit", kwlist,
                                     &CWorkItem_Type, &item, &continuation))
        return NULL;
    if (core_submit(self, (CWorkItem *)item, continuation) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
CCore_submit_work(CCore *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"cycles", "callback", "name", "priority",
                             "continuation", NULL};
    PyObject *cycles_obj, *callback, *name = NULL;
    int priority = 1, continuation = 0;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO|Oip:submit_work",
                                     kwlist, &cycles_obj, &callback, &name,
                                     &priority, &continuation))
        return NULL;
    int64_t cycles;
    if (as_i64_trunc(cycles_obj, &cycles) < 0)
        return NULL;
    CWorkItem *item = PyObject_GC_New(CWorkItem, &CWorkItem_Type);
    if (item == NULL)
        return NULL;
    item->callback = NULL;
    item->name = NULL;
    PyObject *nm = name ? name : PyUnicode_FromString("work");
    if (nm == NULL) {
        Py_DECREF(item);
        return NULL;
    }
    int rc = workitem_setup(item, cycles, callback, nm, priority);
    if (!name)
        Py_DECREF(nm);
    if (rc < 0) {
        Py_DECREF(item);
        return NULL;
    }
    PyObject_GC_Track(item);
    if (core_submit(self, item, continuation) < 0) {
        Py_DECREF(item);
        return NULL;
    }
    return (PyObject *)item;
}

static PyObject *
CCore_set_frequency(CCore *self, PyObject *arg)
{
    double freq_hz = PyFloat_AsDouble(arg);
    if (freq_hz == -1.0 && PyErr_Occurred())
        return NULL;
    if (freq_hz <= 0) {
        PyErr_SetString(PyExc_ValueError, "core frequency must be positive");
        return NULL;
    }
    self->freq_hz = freq_hz;
    Py_RETURN_NONE;
}

static PyObject *
CCore_busy_ns_up_to_now(CCore *self, PyObject *Py_UNUSED(ignored))
{
    int64_t total = self->busy_ns_total;
    if (self->has_busy_since)
        total += self->loop->now - self->busy_since;
    return PyLong_FromLongLong(total);
}

static PyObject *
CCore_get_freq_hz(CCore *self, void *closure)
{
    return PyFloat_FromDouble(self->freq_hz);
}

static PyObject *
CCore_get_busy(CCore *self, void *closure)
{
    return PyBool_FromLong(self->current != NULL);
}

static PyObject *
CCore_get_queue_depth(CCore *self, void *closure)
{
    return PyLong_FromSsize_t(self->q_len + self->hq_len);
}

static PyMethodDef CCore_methods[] = {
    {"submit", (PyCFunction)(void (*)(void))CCore_submit,
     METH_VARARGS | METH_KEYWORDS,
     "Enqueue a WorkItem; it runs when the core reaches it."},
    {"submit_work", (PyCFunction)(void (*)(void))CCore_submit_work,
     METH_VARARGS | METH_KEYWORDS,
     "Build and submit a WorkItem without a Python-side allocation."},
    {"set_frequency", (PyCFunction)CCore_set_frequency, METH_O,
     "Change the clock; affects items started after this call."},
    {"busy_ns_up_to_now", (PyCFunction)CCore_busy_ns_up_to_now, METH_NOARGS,
     "Total busy nanoseconds including the in-flight item so far."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef CCore_getset[] = {
    {"freq_hz", (getter)CCore_get_freq_hz, NULL,
     "Current clock frequency in Hz.", NULL},
    {"busy", (getter)CCore_get_busy, NULL,
     "True while an item is executing.", NULL},
    {"queue_depth", (getter)CCore_get_queue_depth, NULL,
     "Items waiting (not counting the one executing).", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef CCore_members[] = {
    {"name", T_OBJECT, offsetof(CCore, name), 0, NULL},
    {"busy_ns_total", T_LONGLONG, offsetof(CCore, busy_ns_total), READONLY,
     NULL},
    {"items_executed", T_LONGLONG, offsetof(CCore, items_executed), READONLY,
     NULL},
    {"cycles_executed", T_LONGLONG, offsetof(CCore, cycles_executed),
     READONLY, NULL},
    {"max_queue_depth", T_LONGLONG, offsetof(CCore, max_queue_depth),
     READONLY, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.CpuCore",
    .tp_basicsize = sizeof(CCore),
    .tp_dealloc = (destructor)CCore_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "One core: frequency, FIFO run queues, busy accounting "
              "(compiled kernel).",
    .tp_traverse = (traverseproc)CCore_traverse,
    .tp_clear = (inquiry)CCore_clear,
    .tp_methods = CCore_methods,
    .tp_getset = CCore_getset,
    .tp_members = CCore_members,
    .tp_new = CCore_new,
    .tp_free = PyObject_GC_Del,
};

/* --------------------------------------------------------------- Timer */

static PyObject *
CTimer_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"loop", "callback", "slack_ns", "name", NULL};
    CLoop *loop;
    PyObject *callback, *name = NULL;
    long long slack_ns = 0;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!O|LO:Timer", kwlist,
                                     &CLoop_Type, &loop, &callback,
                                     &slack_ns, &name))
        return NULL;
    CTimer *self = (CTimer *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    Py_INCREF(loop);
    self->loop = loop;
    Py_INCREF(callback);
    self->callback = callback;
    self->slack = slack_ns > 0 ? (int64_t)slack_ns : 0;
    if (name != NULL) {
        Py_INCREF(name);
        self->name = name;
    } else {
        self->name = PyUnicode_FromString("");
        if (self->name == NULL) {
            Py_DECREF(self);
            return NULL;
        }
    }
    return (PyObject *)self;
}

static void
CTimer_dealloc(CTimer *self)
{
    PyObject_GC_UnTrack(self);
    Py_XDECREF(self->loop);
    Py_XDECREF(self->callback);
    Py_XDECREF(self->name);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CTimer_traverse(CTimer *self, visitproc visit, void *arg)
{
    Py_VISIT(self->loop);
    Py_VISIT(self->callback);
    Py_VISIT(self->name);
    return 0;
}

static int
CTimer_clear(CTimer *self)
{
    Py_CLEAR(self->loop);
    Py_CLEAR(self->callback);
    Py_CLEAR(self->name);
    return 0;
}

static void
timer_cancel_internal(CTimer *self)
{
    if (self->armed) {
        self->armed = 0;
        loop_note_cancelled(self->loop);
    }
}

static int
timer_start_at(CTimer *self, int64_t when_ns)
{
    timer_cancel_internal(self);
    int64_t now = self->loop->now;
    int64_t when = when_ns > now ? when_ns : now;
    if (self->slack) {
        int64_t remainder = when % self->slack;
        if (remainder)
            when += self->slack - remainder;
    }
    self->gen += 1;
    self->armed = 1;
    self->when = when;
    return schedule_internal(self->loop, when, KIND_TIMER, self->gen,
                             (PyObject *)self, NULL);
}

static PyObject *
CTimer_start(CTimer *self, PyObject *arg)
{
    int64_t delay;
    if (as_i64_trunc(arg, &delay) < 0)
        return NULL;
    if (delay < 0)
        delay = 0;
    if (timer_start_at(self, self->loop->now + delay) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
CTimer_start_at(CTimer *self, PyObject *arg)
{
    int64_t when;
    if (as_i64_trunc(arg, &when) < 0)
        return NULL;
    if (timer_start_at(self, when) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
CTimer_cancel(CTimer *self, PyObject *Py_UNUSED(ignored))
{
    timer_cancel_internal(self);
    Py_RETURN_NONE;
}

static PyObject *
CTimer_get_pending(CTimer *self, void *closure)
{
    return PyBool_FromLong(self->armed);
}

static PyObject *
CTimer_get_expires_at(CTimer *self, void *closure)
{
    if (!self->armed)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(self->when);
}

static PyMethodDef CTimer_methods[] = {
    {"start", (PyCFunction)CTimer_start, METH_O,
     "(Re-)arm the timer delay_ns from now (>= 0)."},
    {"start_at", (PyCFunction)CTimer_start_at, METH_O,
     "(Re-)arm the timer for an absolute time."},
    {"cancel", (PyCFunction)CTimer_cancel, METH_NOARGS,
     "Disarm the timer if pending."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef CTimer_getset[] = {
    {"pending", (getter)CTimer_get_pending, NULL,
     "True if the timer is armed and has not fired.", NULL},
    {"expires_at", (getter)CTimer_get_expires_at, NULL,
     "Absolute expiry time in ns, or None when not armed.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef CTimer_members[] = {
    {"name", T_OBJECT, offsetof(CTimer, name), 0, NULL},
    {"fire_count", T_LONGLONG, offsetof(CTimer, fire_count), READONLY,
     "Number of times the timer has fired."},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CTimer_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.Timer",
    .tp_basicsize = sizeof(CTimer),
    .tp_dealloc = (destructor)CTimer_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A one-shot, re-armable timer (compiled kernel).",
    .tp_traverse = (traverseproc)CTimer_traverse,
    .tp_clear = (inquiry)CTimer_clear,
    .tp_methods = CTimer_methods,
    .tp_getset = CTimer_getset,
    .tp_members = CTimer_members,
    .tp_new = CTimer_new,
    .tp_free = PyObject_GC_Del,
};

/* ---------------------------------------------------------------- Link */

static int
packet_wire_bytes(PyObject *packet, int64_t *out)
{
    PyObject *v = PyObject_GetAttr(packet, s_wire_bytes);
    if (v == NULL)
        return -1;
    int rc = as_i64(v, out);
    Py_DECREF(v);
    return rc;
}

static int
packet_segments(PyObject *packet, int64_t *out)
{
    PyObject *v = PyObject_GetAttr(packet, s_segments);
    if (v == NULL)
        return -1;
    int rc = as_i64(v, out);
    Py_DECREF(v);
    return rc;
}

/* pure: transmit_time(nbytes, rate) — 0 for rate <= 0 */
static int64_t
transmit_time_c(int64_t nbytes, double rate_bps)
{
    if (rate_bps <= 0)
        return 0;
    return (int64_t)nearbyint(
        (double)nbytes * 8.0 * (double)NS_PER_SEC / rate_bps);
}

/* begin serializing the head packet; *tx_out = -1 when nothing started */
static int
clink_start_next(CLink *self, int64_t *tx_out)
{
    *tx_out = -1;
    if (self->f_len == 0)
        return 0;
    PyObject *packet = ring_pop(self->fifo, &self->f_head, &self->f_len,
                                self->f_cap);
    self->transmitting = 1;
    int64_t wb;
    if (packet_wire_bytes(packet, &wb) < 0) {
        Py_DECREF(packet);
        return -1;
    }
    /* pure: tx_ns = int(round(packet.wire_bytes * 8 * SEC / self.rate_bps)) */
    int64_t tx_ns = (int64_t)nearbyint(
        (double)wb * 8.0 * (double)NS_PER_SEC / self->rate_bps);
    self->busy_ns += tx_ns;
    int rc = schedule_internal(self->loop, self->loop->now + tx_ns,
                               KIND_LINK, 0, (PyObject *)self, packet);
    Py_DECREF(packet);
    if (rc < 0)
        return -1;
    *tx_out = tx_ns;
    return 0;
}

static int
clink_send(CLink *self, PyObject *packet, int64_t *tx_out)
{
    if (ring_push(&self->fifo, &self->f_head, &self->f_len, &self->f_cap,
                  packet, 0) < 0)
        return -1;
    if (!self->transmitting)
        return clink_start_next(self, tx_out);
    *tx_out = -1;
    return 0;
}

/* KIND_LINK dispatch: the heap entry owns `packet` while this runs */
static int
link_tx_done(CLink *self, PyObject *packet)
{
    self->transmitting = 0;
    self->packets_sent += 1;
    int64_t wb;
    if (packet_wire_bytes(packet, &wb) < 0)
        return -1;
    self->bytes_sent += wb;
    PyObject *sink = self->sink;
    if (sink == NULL || sink == Py_None) {
        PyErr_Format(PyExc_RuntimeError, "link %S has no sink connected",
                     self->name);
        return -1;
    }
    int64_t delay = self->prop_delay_ns > 0 ? self->prop_delay_ns : 0;
    if (schedule_internal(self->loop, self->loop->now + delay, KIND_CALL1,
                          0, sink, packet) < 0)
        return -1;
    if (self->f_len) {
        int64_t dummy;
        return clink_start_next(self, &dummy);
    }
    return 0;
}

static PyObject *
CLink_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"loop", "rate_bps", "prop_delay_ns", "name",
                             "tracer", NULL};
    CLoop *loop;
    double rate_bps;
    long long prop_delay_ns = 0;
    PyObject *name = NULL, *tracer = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!d|LOO:Link", kwlist,
                                     &CLoop_Type, &loop, &rate_bps,
                                     &prop_delay_ns, &name, &tracer))
        return NULL;
    if (rate_bps <= 0) {
        PyErr_SetString(PyExc_ValueError, "link rate must be positive");
        return NULL;
    }
    if (reject_enabled_tracer(tracer, "Link") < 0)
        return NULL;
    CLink *self = (CLink *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    Py_INCREF(loop);
    self->loop = loop;
    self->rate_bps = rate_bps;
    self->prop_delay_ns = (int64_t)prop_delay_ns;
    if (name != NULL) {
        Py_INCREF(name);
        self->name = name;
    } else {
        self->name = PyUnicode_FromString("link");
        if (self->name == NULL) {
            Py_DECREF(self);
            return NULL;
        }
    }
    return (PyObject *)self;
}

static void
CLink_dealloc(CLink *self)
{
    PyObject_GC_UnTrack(self);
    ring_dealloc(self->fifo, self->f_head, self->f_len, self->f_cap);
    self->fifo = NULL;
    self->f_len = 0;
    Py_XDECREF(self->loop);
    Py_XDECREF(self->name);
    Py_XDECREF(self->sink);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CLink_traverse(CLink *self, visitproc visit, void *arg)
{
    RING_TRAVERSE(self->fifo, self->f_head, self->f_len, self->f_cap);
    Py_VISIT(self->loop);
    Py_VISIT(self->name);
    Py_VISIT(self->sink);
    return 0;
}

static int
CLink_clear(CLink *self)
{
    ring_dealloc(self->fifo, self->f_head, self->f_len, self->f_cap);
    self->fifo = NULL;
    self->f_head = self->f_len = self->f_cap = 0;
    Py_CLEAR(self->loop);
    Py_CLEAR(self->name);
    Py_CLEAR(self->sink);
    return 0;
}

static PyObject *
CLink_connect(CLink *self, PyObject *sink)
{
    Py_INCREF(sink);
    Py_XSETREF(self->sink, sink);
    Py_RETURN_NONE;
}

static PyObject *
CLink_send(CLink *self, PyObject *packet)
{
    int64_t tx;
    if (clink_send(self, packet, &tx) < 0)
        return NULL;
    if (tx < 0)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(tx);
}

static PyObject *
CLink_serialization_ns(CLink *self, PyObject *packet)
{
    int64_t wb;
    if (packet_wire_bytes(packet, &wb) < 0)
        return NULL;
    return PyLong_FromLongLong(transmit_time_c(wb, self->rate_bps));
}

static PyObject *
CLink_get_backlogged(CLink *self, void *closure)
{
    return PyBool_FromLong(self->transmitting || self->f_len > 0);
}

static PyObject *
CLink_get_queue_len(CLink *self, void *closure)
{
    return PyLong_FromSsize_t(self->f_len);
}

static PyObject *
CLink_get_sink(CLink *self, void *closure)
{
    PyObject *sink = self->sink ? self->sink : Py_None;
    Py_INCREF(sink);
    return sink;
}

static int
CLink_set_sink(CLink *self, PyObject *value, void *closure)
{
    if (value == NULL)
        value = Py_None;
    Py_INCREF(value);
    Py_XSETREF(self->sink, value);
    return 0;
}

static PyMethodDef CLink_methods[] = {
    {"connect", (PyCFunction)CLink_connect, METH_O,
     "Set the receiver callback for delivered packets."},
    {"send", (PyCFunction)CLink_send, METH_O,
     "Begin (or queue for) serialization; returns tx ns or None."},
    {"serialization_ns", (PyCFunction)CLink_serialization_ns, METH_O,
     "Time to clock the packet onto the wire at the current rate."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef CLink_getset[] = {
    {"backlogged", (getter)CLink_get_backlogged, NULL,
     "True while the wire is busy or the FIFO is non-empty.", NULL},
    {"queue_len", (getter)CLink_get_queue_len, NULL,
     "Packets waiting for the wire (excludes the one being sent).", NULL},
    {"sink", (getter)CLink_get_sink, (setter)CLink_set_sink,
     "Receiver callback for delivered packets.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef CLink_members[] = {
    {"rate_bps", T_DOUBLE, offsetof(CLink, rate_bps), 0,
     "Line rate in bits/s (mutable, e.g. by rate processes)."},
    {"prop_delay_ns", T_LONGLONG, offsetof(CLink, prop_delay_ns), 0, NULL},
    {"name", T_OBJECT, offsetof(CLink, name), 0, NULL},
    {"packets_sent", T_LONGLONG, offsetof(CLink, packets_sent), READONLY,
     NULL},
    {"bytes_sent", T_LONGLONG, offsetof(CLink, bytes_sent), READONLY, NULL},
    {"busy_ns", T_LONGLONG, offsetof(CLink, busy_ns), READONLY, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CLink_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.Link",
    .tp_basicsize = sizeof(CLink),
    .tp_dealloc = (destructor)CLink_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A unidirectional link with rate, propagation delay, and a "
              "FIFO (compiled kernel).",
    .tp_traverse = (traverseproc)CLink_traverse,
    .tp_clear = (inquiry)CLink_clear,
    .tp_methods = CLink_methods,
    .tp_getset = CLink_getset,
    .tp_members = CLink_members,
    .tp_new = CLink_new,
    .tp_free = PyObject_GC_Del,
};

/* ------------------------------------------------------- DropTailQueue */

static int
link_rate(PyObject *link, double *out)
{
    if (PyObject_TypeCheck(link, &CLink_Type)) {
        *out = ((CLink *)link)->rate_bps;
        return 0;
    }
    PyObject *v = PyObject_GetAttr(link, s_rate_bps);
    if (v == NULL)
        return -1;
    double d = PyFloat_AsDouble(v);
    Py_DECREF(v);
    if (d == -1.0 && PyErr_Occurred())
        return -1;
    *out = d;
    return 0;
}

static int
cqueue_pump(CQueue *self)
{
    if (self->link_busy || self->f_len == 0)
        return 0;
    PyObject *packet = ring_pop(self->fifo, &self->f_head, &self->f_len,
                                self->f_cap);
    int64_t segs;
    if (packet_segments(packet, &segs) < 0) {
        Py_DECREF(packet);
        return -1;
    }
    self->backlog_segments -= segs;
    self->link_busy = 1;
    int64_t tx_ns = -1;
    if (PyObject_TypeCheck(self->link, &CLink_Type)) {
        if (clink_send((CLink *)self->link, packet, &tx_ns) < 0) {
            Py_DECREF(packet);
            return -1;
        }
        if (tx_ns < 0) {
            int64_t wb;
            if (packet_wire_bytes(packet, &wb) < 0) {
                Py_DECREF(packet);
                return -1;
            }
            tx_ns = transmit_time_c(wb, ((CLink *)self->link)->rate_bps);
        }
    } else {
        PyObject *res = PyObject_CallMethodOneArg(self->link, s_send, packet);
        if (res == NULL) {
            Py_DECREF(packet);
            return -1;
        }
        if (res == Py_None) {
            Py_DECREF(res);
            res = PyObject_CallMethodOneArg(self->link, s_serialization_ns,
                                            packet);
            if (res == NULL) {
                Py_DECREF(packet);
                return -1;
            }
        }
        int rc = as_i64(res, &tx_ns);
        Py_DECREF(res);
        if (rc < 0) {
            Py_DECREF(packet);
            return -1;
        }
    }
    Py_DECREF(packet);
    return schedule_internal(self->loop, self->loop->now + tx_ns, KIND_QTX,
                             0, (PyObject *)self, NULL);
}

/* KIND_QTX dispatch */
static int
queue_tx_done(CQueue *self)
{
    self->link_busy = 0;
    return cqueue_pump(self);
}

static int
cqueue_admit(CQueue *self, PyObject *packet)
{
    int64_t segs;
    if (packet_segments(packet, &segs) < 0)
        return -1;
    if (ring_push(&self->fifo, &self->f_head, &self->f_len, &self->f_cap,
                  packet, 0) < 0)
        return -1;
    self->backlog_segments += segs;
    self->enqueued_segments += segs;
    if (self->backlog_segments > self->max_backlog_segments)
        self->max_backlog_segments = self->backlog_segments;
    return cqueue_pump(self);
}

static PyObject *
CQueue_enqueue(CQueue *self, PyObject *packet)
{
    int64_t free_segs = self->capacity_segments - self->backlog_segments;
    int is_ack = 0;
    PyObject *v = PyObject_GetAttr(packet, s_is_ack);
    if (v == NULL)
        return NULL;
    is_ack = PyObject_IsTrue(v);
    Py_DECREF(v);
    if (is_ack < 0)
        return NULL;
    int64_t segs;
    if (packet_segments(packet, &segs) < 0)
        return NULL;
    if (self->input_link != NULL && self->input_link != Py_None && !is_ack) {
        double lr, ir;
        if (link_rate(self->link, &lr) < 0
            || link_rate(self->input_link, &ir) < 0)
            return NULL;
        double ratio = lr / ir;
        if (ratio > 1.0)
            ratio = 1.0;
        /* pure: free += int(packet.segments * ratio) — truncation */
        free_segs += (int64_t)((double)segs * ratio);
    }
    if (segs <= free_segs) {
        if (cqueue_admit(self, packet) < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    if (free_segs > 0 && !is_ack) {
        PyObject *free_obj = PyLong_FromLongLong(free_segs);
        if (free_obj == NULL)
            return NULL;
        PyObject *head = PyObject_CallMethodOneArg(packet, s_split_head,
                                                   free_obj);
        Py_DECREF(free_obj);
        if (head == NULL)
            return NULL;
        if (head != Py_None) {
            if (cqueue_admit(self, head) < 0) {
                Py_DECREF(head);
                return NULL;
            }
        }
        Py_DECREF(head);
    }
    /* remainder of `packet` (possibly all of it) is dropped; pure rereads
     * packet.segments after split_head shrank the packet */
    self->dropped_packets += 1;
    int64_t rem_segs;
    if (packet_segments(packet, &rem_segs) < 0)
        return NULL;
    self->dropped_segments += rem_segs;
    if (self->on_drop != NULL && self->on_drop != Py_None) {
        PyObject *segs_obj = PyLong_FromLongLong(rem_segs);
        if (segs_obj == NULL)
            return NULL;
        PyObject *res = PyObject_CallFunctionObjArgs(self->on_drop, packet,
                                                     segs_obj, NULL);
        Py_DECREF(segs_obj);
        if (res == NULL)
            return NULL;
        Py_DECREF(res);
    }
    Py_RETURN_NONE;
}

static PyObject *
CQueue_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"loop", "link", "capacity_segments", "name",
                             "input_link", "tracer", NULL};
    CLoop *loop;
    PyObject *link, *name = NULL, *input_link = NULL, *tracer = NULL;
    long long capacity = 1000;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!O|LOOO:DropTailQueue",
                                     kwlist, &CLoop_Type, &loop, &link,
                                     &capacity, &name, &input_link, &tracer))
        return NULL;
    if (capacity < 1) {
        PyErr_SetString(PyExc_ValueError,
                        "queue capacity must be at least one segment");
        return NULL;
    }
    if (reject_enabled_tracer(tracer, "DropTailQueue") < 0)
        return NULL;
    CQueue *self = (CQueue *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    Py_INCREF(loop);
    self->loop = loop;
    Py_INCREF(link);
    self->link = link;
    if (input_link != NULL && input_link != Py_None) {
        Py_INCREF(input_link);
        self->input_link = input_link;
    }
    self->capacity_segments = (int64_t)capacity;
    if (name != NULL) {
        Py_INCREF(name);
        self->name = name;
    } else {
        self->name = PyUnicode_FromString("queue");
        if (self->name == NULL) {
            Py_DECREF(self);
            return NULL;
        }
    }
    return (PyObject *)self;
}

static void
CQueue_dealloc(CQueue *self)
{
    PyObject_GC_UnTrack(self);
    ring_dealloc(self->fifo, self->f_head, self->f_len, self->f_cap);
    self->fifo = NULL;
    self->f_len = 0;
    Py_XDECREF(self->loop);
    Py_XDECREF(self->link);
    Py_XDECREF(self->input_link);
    Py_XDECREF(self->name);
    Py_XDECREF(self->on_drop);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CQueue_traverse(CQueue *self, visitproc visit, void *arg)
{
    RING_TRAVERSE(self->fifo, self->f_head, self->f_len, self->f_cap);
    Py_VISIT(self->loop);
    Py_VISIT(self->link);
    Py_VISIT(self->input_link);
    Py_VISIT(self->name);
    Py_VISIT(self->on_drop);
    return 0;
}

static int
CQueue_clear(CQueue *self)
{
    ring_dealloc(self->fifo, self->f_head, self->f_len, self->f_cap);
    self->fifo = NULL;
    self->f_head = self->f_len = self->f_cap = 0;
    Py_CLEAR(self->loop);
    Py_CLEAR(self->link);
    Py_CLEAR(self->input_link);
    Py_CLEAR(self->name);
    Py_CLEAR(self->on_drop);
    return 0;
}

static PyObject *
CQueue_sample_backlog(CQueue *self, PyObject *Py_UNUSED(ignored))
{
    self->backlog_sum_segments += (double)self->backlog_segments;
    self->backlog_samples += 1;
    Py_RETURN_NONE;
}

static PyObject *
CQueue_get_backlog_segments(CQueue *self, void *closure)
{
    return PyLong_FromLongLong(self->backlog_segments);
}

static PyObject *
CQueue_get_backlog_packets(CQueue *self, void *closure)
{
    return PyLong_FromSsize_t(self->f_len);
}

static PyObject *
CQueue_get_mean_backlog(CQueue *self, void *closure)
{
    if (self->backlog_samples == 0)
        return PyFloat_FromDouble(0.0);
    return PyFloat_FromDouble(self->backlog_sum_segments
                              / (double)self->backlog_samples);
}

static PyObject *
CQueue_get_input_link(CQueue *self, void *closure)
{
    PyObject *v = self->input_link ? self->input_link : Py_None;
    Py_INCREF(v);
    return v;
}

static PyMethodDef CQueue_methods[] = {
    {"enqueue", (PyCFunction)CQueue_enqueue, METH_O,
     "Admit as much of the packet as fits; drop the rest (tail drop)."},
    {"sample_backlog", (PyCFunction)CQueue_sample_backlog, METH_NOARGS,
     "Record the instantaneous backlog for averaging (metrics hook)."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef CQueue_getset[] = {
    {"backlog_segments", (getter)CQueue_get_backlog_segments, NULL,
     "Segments currently buffered (excluding the one on the wire).", NULL},
    {"backlog_packets", (getter)CQueue_get_backlog_packets, NULL,
     "Super-packets currently buffered.", NULL},
    {"mean_backlog_segments", (getter)CQueue_get_mean_backlog, NULL,
     "Mean of sampled backlogs (0 if never sampled).", NULL},
    {"input_link", (getter)CQueue_get_input_link, NULL,
     "Upstream link feeding this queue, if any.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef CQueue_members[] = {
    {"link", T_OBJECT_EX, offsetof(CQueue, link), READONLY, NULL},
    {"capacity_segments", T_LONGLONG, offsetof(CQueue, capacity_segments),
     READONLY, NULL},
    {"name", T_OBJECT, offsetof(CQueue, name), 0, NULL},
    {"on_drop", T_OBJECT, offsetof(CQueue, on_drop), 0,
     "Optional callback invoked when segments are dropped."},
    {"enqueued_segments", T_LONGLONG, offsetof(CQueue, enqueued_segments),
     READONLY, NULL},
    {"dropped_segments", T_LONGLONG, offsetof(CQueue, dropped_segments),
     READONLY, NULL},
    {"dropped_packets", T_LONGLONG, offsetof(CQueue, dropped_packets),
     READONLY, NULL},
    {"max_backlog_segments", T_LONGLONG,
     offsetof(CQueue, max_backlog_segments), READONLY, NULL},
    {"backlog_sum_segments", T_DOUBLE,
     offsetof(CQueue, backlog_sum_segments), READONLY, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CQueue_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.DropTailQueue",
    .tp_basicsize = sizeof(CQueue),
    .tp_dealloc = (destructor)CQueue_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A bounded FIFO feeding a Link (compiled kernel).",
    .tp_traverse = (traverseproc)CQueue_traverse,
    .tp_clear = (inquiry)CQueue_clear,
    .tp_methods = CQueue_methods,
    .tp_getset = CQueue_getset,
    .tp_members = CQueue_members,
    .tp_new = CQueue_new,
    .tp_free = PyObject_GC_Del,
};

/* -------------------------------------------------------------- module */

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._ckernel",
    .m_doc = "Compiled simulation-kernel backend: C implementations of the "
             "event loop and the mechanical hot-path components, "
             "bit-identical to the pure-python reference.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    if ((s_wire_bytes = PyUnicode_InternFromString("wire_bytes")) == NULL
        || (s_segments = PyUnicode_InternFromString("segments")) == NULL
        || (s_is_ack = PyUnicode_InternFromString("is_ack")) == NULL
        || (s_split_head = PyUnicode_InternFromString("split_head")) == NULL
        || (s_rate_bps = PyUnicode_InternFromString("rate_bps")) == NULL
        || (s_enabled = PyUnicode_InternFromString("enabled")) == NULL
        || (s_send = PyUnicode_InternFromString("send")) == NULL
        || (s_serialization_ns
            = PyUnicode_InternFromString("serialization_ns")) == NULL)
        return NULL;

    if (PyType_Ready(&CEvent_Type) < 0 || PyType_Ready(&CLoop_Type) < 0
        || PyType_Ready(&CWorkItem_Type) < 0 || PyType_Ready(&CCore_Type) < 0
        || PyType_Ready(&CTimer_Type) < 0 || PyType_Ready(&CLink_Type) < 0
        || PyType_Ready(&CQueue_Type) < 0)
        return NULL;

    /* WorkItem.HIGH / WorkItem.NORMAL class attributes */
    PyObject *zero = PyLong_FromLong(0), *one = PyLong_FromLong(1);
    if (zero == NULL || one == NULL)
        return NULL;
    if (PyDict_SetItemString(CWorkItem_Type.tp_dict, "HIGH", zero) < 0
        || PyDict_SetItemString(CWorkItem_Type.tp_dict, "NORMAL", one) < 0) {
        Py_DECREF(zero);
        Py_DECREF(one);
        return NULL;
    }
    Py_DECREF(zero);
    Py_DECREF(one);

    PyObject *m = PyModule_Create(&ckernel_module);
    if (m == NULL)
        return NULL;

    if (PyModule_AddObjectRef(m, "Event", (PyObject *)&CEvent_Type) < 0
        || PyModule_AddObjectRef(m, "EventLoop", (PyObject *)&CLoop_Type) < 0
        || PyModule_AddObjectRef(m, "WorkItem",
                                 (PyObject *)&CWorkItem_Type) < 0
        || PyModule_AddObjectRef(m, "CpuCore", (PyObject *)&CCore_Type) < 0
        || PyModule_AddObjectRef(m, "Timer", (PyObject *)&CTimer_Type) < 0
        || PyModule_AddObjectRef(m, "Link", (PyObject *)&CLink_Type) < 0
        || PyModule_AddObjectRef(m, "DropTailQueue",
                                 (PyObject *)&CQueue_Type) < 0
        || PyModule_AddStringConstant(m, "BACKEND", "compiled") < 0
#if defined(__clang__)
        || PyModule_AddStringConstant(m, "COMPILER",
                                      "clang " __clang_version__) < 0
#elif defined(__GNUC__)
        || PyModule_AddStringConstant(m, "COMPILER", "gcc " __VERSION__) < 0
#else
        || PyModule_AddStringConstant(m, "COMPILER", "cc") < 0
#endif
    ) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
