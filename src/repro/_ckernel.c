/* Compiled simulation-kernel backend (the `compiled` entry of
 * repro.kernel.KERNELS).
 *
 * This extension re-implements the simulator's mechanical hot core —
 * EventLoop/Event, WorkItem/CpuCore, Timer, Link, DropTailQueue — as C
 * types that are drop-in constructor-compatible with their pure-python
 * counterparts. The pure modules remain the bit-identical determinism
 * reference (see DESIGN.md "Simulation kernel"); this file must never
 * change observable behaviour, only wall-clock cost.
 *
 * Determinism contract (mirrors repro.sim.engine):
 *   1. time is an integer nanosecond counter (int64 here; values in
 *      every supported workload fit comfortably),
 *   2. events fire in (when, seq) order where seq is a single shared
 *      insertion counter — every scheduling site, Python-visible or
 *      internal, consumes exactly one seq at the same logical point as
 *      the pure code, so tie-breaks are identical,
 *   3. float arithmetic is IEEE-754 double in both interpreters: the C
 *      expressions are transcribed verbatim from the pure modules
 *      (Python round() == C nearbyint() under the default half-even
 *      rounding mode; Python int() truncation == C double->int64 cast
 *      for the non-negative values used here).
 *
 * Unlike the pure loop there is no timer wheel: a single binary heap
 * with lazy deletion gives the same total (when, seq) order (the wheel
 * is a routing optimization, not an ordering feature), and C heap ops
 * are cheap enough that bucketing would only add constant factors.
 *
 * Internal event kinds (CPU completion, link/queue tx-done, timer fire,
 * one-arg calls) carry no Python Event object and no args tuple — the
 * heap entry itself is the schedule record — which is where most of the
 * speedup over interpreted dispatch comes from.
 *
 * Tracing/profiling are pure-kernel features: constructors reject
 * enabled tracers and EventLoop.set_profiler raises, pointing at
 * `--kernel pure` (repro.core.experiment falls back automatically).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <math.h>
#include <stdint.h>
#include "structmember.h"

#define NS_PER_SEC 1000000000LL

/* ---------------------------------------------------------------- types */

typedef struct CLoop CLoop;
typedef struct CEvent CEvent;
typedef struct CTimer CTimer;
typedef struct CWorkItem CWorkItem;
typedef struct CCore CCore;
typedef struct CLink CLink;
typedef struct CQueue CQueue;

enum {
    KIND_PY = 0,     /* a = CEvent (owns callback/args)                  */
    KIND_CPU = 1,    /* a = CCore, b = CWorkItem                         */
    KIND_LINK = 2,   /* a = CLink, b = Packet                            */
    KIND_QTX = 3,    /* a = CQueue                                       */
    KIND_TIMER = 4,  /* a = CTimer, tag = arming generation              */
    KIND_CALL1 = 5,  /* a = callable, b = single argument                */
};

typedef struct {
    int64_t when;
    int64_t seq;
    int64_t tag;
    int kind;
    PyObject *a;  /* owned */
    PyObject *b;  /* owned or NULL */
} HeapEntry;

struct CLoop {
    PyObject_HEAD
    HeapEntry *heap;
    Py_ssize_t heap_len;
    Py_ssize_t heap_cap;
    int64_t now;
    int64_t seq;
    int64_t events_processed;
    int64_t cancelled_in_heap;
    int64_t compactions;
    int running;
    int stopped;
    PyObject *context;   /* dict */
    PyObject *profiler;  /* always None (set_profiler(None) is allowed) */
};

struct CEvent {
    PyObject_HEAD
    int64_t when;
    int64_t seq;
    PyObject *callback;
    PyObject *args;  /* tuple */
    CLoop *loop;     /* owned */
    char cancelled;
    char fired;
};

struct CTimer {
    PyObject_HEAD
    CLoop *loop;        /* owned */
    PyObject *callback;
    PyObject *name;
    int64_t slack;
    int64_t fire_count;
    int64_t gen;        /* bumped every (re-)arm; heap entries carry the
                           generation they were armed with */
    int64_t when;
    int armed;
};

struct CWorkItem {
    PyObject_HEAD
    int64_t cycles;
    PyObject *callback;
    PyObject *name;
    int priority;
    int64_t submitted_at;
    int64_t started_at;
    int has_submitted;
    int has_started;
};

struct CCore {
    PyObject_HEAD
    CLoop *loop;       /* owned */
    double freq_hz;
    PyObject *name;
    /* two circular buffers of owned CWorkItem refs */
    PyObject **q;
    Py_ssize_t q_head, q_len, q_cap;
    PyObject **hq;
    Py_ssize_t hq_head, hq_len, hq_cap;
    PyObject *current;  /* owned CWorkItem or NULL */
    int64_t busy_ns_total;
    int64_t items_executed;
    int64_t cycles_executed;
    int64_t max_queue_depth;
    int64_t busy_since;
    int has_busy_since;
};

struct CLink {
    PyObject_HEAD
    CLoop *loop;      /* owned */
    double rate_bps;
    int64_t prop_delay_ns;
    PyObject *name;
    PyObject *sink;   /* owned or NULL (exposed as None) */
    /* circular buffer of owned Packet refs */
    PyObject **fifo;
    Py_ssize_t f_head, f_len, f_cap;
    int transmitting;
    int64_t packets_sent;
    int64_t bytes_sent;
    int64_t busy_ns;
};

struct CQueue {
    PyObject_HEAD
    CLoop *loop;          /* owned */
    PyObject *link;       /* owned; CLink fast path or any Link-alike */
    PyObject *input_link; /* owned or NULL (exposed as None) */
    int64_t capacity_segments;
    PyObject *name;
    PyObject *on_drop;    /* owned or NULL (exposed as None) */
    PyObject **fifo;
    Py_ssize_t f_head, f_len, f_cap;
    int64_t backlog_segments;
    int link_busy;
    int64_t enqueued_segments;
    int64_t dropped_segments;
    int64_t dropped_packets;
    int64_t max_backlog_segments;
    double backlog_sum_segments;
    int64_t backlog_samples;
};

static PyTypeObject CLoop_Type;
static PyTypeObject CEvent_Type;
static PyTypeObject CTimer_Type;
static PyTypeObject CWorkItem_Type;
static PyTypeObject CCore_Type;
static PyTypeObject CLink_Type;
static PyTypeObject CQueue_Type;

/* interned attribute names for the Python-object interop paths */
static PyObject *s_wire_bytes, *s_segments, *s_is_ack, *s_split_head,
    *s_rate_bps, *s_enabled, *s_send, *s_serialization_ns, *s_cwnd;

/* ------------------------------------------------------------- helpers */

static PyObject *
sim_error(void)
{
    /* repro.sim.engine.SimulationError, fetched lazily so the compiled
     * and pure kernels raise the exact same exception class. */
    static PyObject *exc = NULL;
    if (exc == NULL) {
        PyObject *mod = PyImport_ImportModule("repro.sim.engine");
        if (mod != NULL) {
            exc = PyObject_GetAttrString(mod, "SimulationError");
            Py_DECREF(mod);
        }
        if (exc == NULL) {
            PyErr_Clear();
            exc = PyExc_RuntimeError;
            Py_INCREF(exc);
        }
    }
    return exc;
}

static int
as_i64(PyObject *obj, int64_t *out)
{
    PyObject *idx = PyNumber_Index(obj);
    if (idx == NULL)
        return -1;
    long long v = PyLong_AsLongLong(idx);
    Py_DECREF(idx);
    if (v == -1 && PyErr_Occurred())
        return -1;
    *out = (int64_t)v;
    return 0;
}

static int
tracer_is_enabled(PyObject *tracer)
{
    /* Truthiness of tracer.enabled; a missing attribute counts as off. */
    if (tracer == NULL || tracer == Py_None)
        return 0;
    PyObject *en = PyObject_GetAttr(tracer, s_enabled);
    if (en == NULL) {
        PyErr_Clear();
        return 0;
    }
    int truthy = PyObject_IsTrue(en);
    Py_DECREF(en);
    return truthy > 0;
}

static int
reject_enabled_tracer(PyObject *tracer, const char *what)
{
    if (tracer_is_enabled(tracer)) {
        PyErr_Format(PyExc_ValueError,
                     "compiled %s does not support an enabled tracer; "
                     "run with --kernel pure (REPRO_KERNEL=pure) for "
                     "instrumented runs", what);
        return -1;
    }
    return 0;
}

/* ------------------------------------------------------ heap machinery */

static inline int
entry_lt(const HeapEntry *x, const HeapEntry *y)
{
    if (x->when != y->when)
        return x->when < y->when;
    return x->seq < y->seq;
}

static int
entry_live(const HeapEntry *e)
{
    switch (e->kind) {
    case KIND_PY:
        return !((CEvent *)e->a)->cancelled;
    case KIND_TIMER: {
        CTimer *t = (CTimer *)e->a;
        return t->armed && t->gen == e->tag;
    }
    default:
        return 1;
    }
}

static void
entry_release(HeapEntry *e)
{
    Py_XDECREF(e->a);
    Py_XDECREF(e->b);
    e->a = e->b = NULL;
}

static int
heap_reserve(CLoop *self, Py_ssize_t need)
{
    if (need <= self->heap_cap)
        return 0;
    Py_ssize_t cap = self->heap_cap ? self->heap_cap : 64;
    while (cap < need)
        cap *= 2;
    HeapEntry *mem = PyMem_Realloc(self->heap, cap * sizeof(HeapEntry));
    if (mem == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->heap = mem;
    self->heap_cap = cap;
    return 0;
}

/* push an entry; steals the references held in *e */
static int
heap_push(CLoop *self, HeapEntry *e)
{
    if (heap_reserve(self, self->heap_len + 1) < 0) {
        entry_release(e);
        return -1;
    }
    HeapEntry *h = self->heap;
    Py_ssize_t pos = self->heap_len++;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (!entry_lt(e, &h[parent]))
            break;
        h[pos] = h[parent];
        pos = parent;
    }
    h[pos] = *e;
    return 0;
}

/* pop the minimum into *out (caller owns its references) */
static void
heap_pop(CLoop *self, HeapEntry *out)
{
    HeapEntry *h = self->heap;
    *out = h[0];
    Py_ssize_t n = --self->heap_len;
    if (n == 0)
        return;
    HeapEntry last = h[n];
    Py_ssize_t pos = 0;
    Py_ssize_t child;
    while ((child = 2 * pos + 1) < n) {
        if (child + 1 < n && entry_lt(&h[child + 1], &h[child]))
            child += 1;
        if (!entry_lt(&h[child], &last))
            break;
        h[pos] = h[child];
        pos = child;
    }
    h[pos] = last;
}

/* discard a dead head entry, settling the lazy-deletion debt */
static void
heap_pop_dead(CLoop *self)
{
    HeapEntry e;
    heap_pop(self, &e);
    if (e.kind == KIND_PY || e.kind == KIND_TIMER)
        self->cancelled_in_heap -= 1;
    entry_release(&e);
}

static void
loop_compact(CLoop *self)
{
    /* Drop dead entries and re-heapify (Floyd). Live order is fully
     * determined by (when, seq), so this never perturbs firing order. */
    if (self->cancelled_in_heap == 0)
        return;
    HeapEntry *h = self->heap;
    Py_ssize_t n = self->heap_len;
    Py_ssize_t w = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        if (entry_live(&h[i]))
            h[w++] = h[i];
        else
            entry_release(&h[i]);
    }
    self->heap_len = w;
    for (Py_ssize_t i = w / 2 - 1; i >= 0; i--) {
        HeapEntry item = h[i];
        Py_ssize_t pos = i;
        Py_ssize_t child;
        while ((child = 2 * pos + 1) < w) {
            if (child + 1 < w && entry_lt(&h[child + 1], &h[child]))
                child += 1;
            if (!entry_lt(&h[child], &item))
                break;
            h[pos] = h[child];
            pos = child;
        }
        h[pos] = item;
    }
    self->cancelled_in_heap = 0;
    self->compactions += 1;
}

/* mirror of EventLoop._note_cancelled's compaction policy */
#define COMPACT_MIN 512

static void
loop_note_cancelled(CLoop *self)
{
    self->cancelled_in_heap += 1;
    if (self->cancelled_in_heap >= COMPACT_MIN
        && self->cancelled_in_heap * 2 >= self->heap_len)
        loop_compact(self);
}

/* schedule an internal (no Python Event) entry; consumes one seq.
 * Steals no references: INCREFs a and b itself. */
static int
schedule_internal(CLoop *self, int64_t when, int kind, int64_t tag,
                  PyObject *a, PyObject *b)
{
    HeapEntry e;
    e.when = when;
    e.seq = ++self->seq;
    e.tag = tag;
    e.kind = kind;
    Py_INCREF(a);
    e.a = a;
    Py_XINCREF(b);
    e.b = b;
    return heap_push(self, &e);
}

/* --------------------------------------------------------------- Event */

static void
CEvent_dealloc(CEvent *self)
{
    PyObject_GC_UnTrack(self);
    Py_XDECREF(self->callback);
    Py_XDECREF(self->args);
    Py_XDECREF(self->loop);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CEvent_traverse(CEvent *self, visitproc visit, void *arg)
{
    Py_VISIT(self->callback);
    Py_VISIT(self->args);
    Py_VISIT(self->loop);
    return 0;
}

static int
CEvent_clear(CEvent *self)
{
    Py_CLEAR(self->callback);
    Py_CLEAR(self->args);
    Py_CLEAR(self->loop);
    return 0;
}

static PyObject *
CEvent_cancel(CEvent *self, PyObject *Py_UNUSED(ignored))
{
    if (!self->cancelled) {
        self->cancelled = 1;
        if (!self->fired && self->loop != NULL)
            loop_note_cancelled(self->loop);
    }
    Py_RETURN_NONE;
}

static PyObject *
CEvent_get_pending(CEvent *self, void *closure)
{
    return PyBool_FromLong(!self->cancelled && !self->fired);
}

static PyObject *
CEvent_repr(CEvent *self)
{
    const char *state = self->cancelled ? "cancelled"
                        : (self->fired ? "fired" : "pending");
    return PyUnicode_FromFormat("<Event t=%lld %R %s>",
                                (long long)self->when, self->callback, state);
}

static PyMethodDef CEvent_methods[] = {
    {"cancel", (PyCFunction)CEvent_cancel, METH_NOARGS,
     "Cancel the event; a no-op if it already fired."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef CEvent_getset[] = {
    {"pending", (getter)CEvent_get_pending, NULL,
     "True while the event is scheduled and not cancelled/fired.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef CEvent_members[] = {
    {"when", T_LONGLONG, offsetof(CEvent, when), READONLY,
     "Absolute fire time in ns."},
    {"callback", T_OBJECT_EX, offsetof(CEvent, callback), READONLY, NULL},
    {"cancelled", T_BOOL, offsetof(CEvent, cancelled), READONLY, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CEvent_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.Event",
    .tp_basicsize = sizeof(CEvent),
    .tp_dealloc = (destructor)CEvent_dealloc,
    .tp_repr = (reprfunc)CEvent_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A scheduled callback (compiled kernel).",
    .tp_traverse = (traverseproc)CEvent_traverse,
    .tp_clear = (inquiry)CEvent_clear,
    .tp_methods = CEvent_methods,
    .tp_getset = CEvent_getset,
    .tp_members = CEvent_members,
    .tp_free = PyObject_GC_Del,
};

/* ------------------------------------------------------------ EventLoop */

static PyObject *
CLoop_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "", kwlist))
        return NULL;
    CLoop *self = (CLoop *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->context = PyDict_New();
    if (self->context == NULL) {
        Py_DECREF(self);
        return NULL;
    }
    Py_INCREF(Py_None);
    self->profiler = Py_None;
    return (PyObject *)self;
}

static void
CLoop_dealloc(CLoop *self)
{
    PyObject_GC_UnTrack(self);
    for (Py_ssize_t i = 0; i < self->heap_len; i++)
        entry_release(&self->heap[i]);
    self->heap_len = 0;
    PyMem_Free(self->heap);
    self->heap = NULL;
    Py_XDECREF(self->context);
    Py_XDECREF(self->profiler);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CLoop_traverse(CLoop *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->heap_len; i++) {
        Py_VISIT(self->heap[i].a);
        Py_VISIT(self->heap[i].b);
    }
    Py_VISIT(self->context);
    Py_VISIT(self->profiler);
    return 0;
}

static int
CLoop_clear(CLoop *self)
{
    for (Py_ssize_t i = 0; i < self->heap_len; i++)
        entry_release(&self->heap[i]);
    self->heap_len = 0;
    Py_CLEAR(self->context);
    Py_CLEAR(self->profiler);
    return 0;
}

/* shared scheduling core for call_at/call_after */
static PyObject *
loop_schedule_event(CLoop *self, int64_t when, PyObject *callback,
                    PyObject *const *extra, Py_ssize_t nextra)
{
    CEvent *ev = PyObject_GC_New(CEvent, &CEvent_Type);
    if (ev == NULL)
        return NULL;
    ev->when = when;
    Py_INCREF(callback);
    ev->callback = callback;
    ev->args = PyTuple_New(nextra);
    if (ev->args == NULL) {
        ev->loop = NULL;
        Py_DECREF(ev);
        return NULL;
    }
    for (Py_ssize_t i = 0; i < nextra; i++) {
        Py_INCREF(extra[i]);
        PyTuple_SET_ITEM(ev->args, i, extra[i]);
    }
    Py_INCREF(self);
    ev->loop = self;
    ev->cancelled = 0;
    ev->fired = 0;
    ev->seq = ++self->seq;
    PyObject_GC_Track(ev);

    HeapEntry e;
    e.when = when;
    e.seq = ev->seq;
    e.tag = 0;
    e.kind = KIND_PY;
    Py_INCREF(ev);
    e.a = (PyObject *)ev;
    e.b = NULL;
    if (heap_push(self, &e) < 0) {
        Py_DECREF(ev);
        return NULL;
    }
    return (PyObject *)ev;
}

static PyObject *
CLoop_call_at(CLoop *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "call_at(when, callback, *args) takes at least 2 arguments");
        return NULL;
    }
    int64_t when;
    if (as_i64(args[0], &when) < 0)
        return NULL;
    if (when < self->now) {
        PyErr_Format(sim_error(),
                     "cannot schedule at t=%lld before now=%lld",
                     (long long)when, (long long)self->now);
        return NULL;
    }
    return loop_schedule_event(self, when, args[1], args + 2, nargs - 2);
}

static PyObject *
CLoop_call_after(CLoop *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "call_after(delay, callback, *args) takes at least 2 arguments");
        return NULL;
    }
    int64_t delay;
    if (as_i64(args[0], &delay) < 0)
        return NULL;
    if (delay < 0) {
        PyErr_Format(sim_error(), "negative delay %lld", (long long)delay);
        return NULL;
    }
    return loop_schedule_event(self, self->now + delay, args[1],
                               args + 2, nargs - 2);
}

static PyObject *
CLoop_call_soon(CLoop *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 1) {
        PyErr_SetString(PyExc_TypeError,
                        "call_soon(callback, *args) takes at least 1 argument");
        return NULL;
    }
    return loop_schedule_event(self, self->now, args[0], args + 1, nargs - 1);
}

static PyObject *
CLoop_stop(CLoop *self, PyObject *Py_UNUSED(ignored))
{
    self->stopped = 1;
    Py_RETURN_NONE;
}

static PyObject *
CLoop_set_profiler(CLoop *self, PyObject *profiler)
{
    if (profiler != Py_None) {
        PyErr_SetString(sim_error(),
                        "the compiled kernel does not support the "
                        "SimProfiler; rerun with --kernel pure "
                        "(REPRO_KERNEL=pure)");
        return NULL;
    }
    Py_RETURN_NONE;
}

/* forward declarations of the internal dispatchers (defined with their
 * component types below) */
static int core_complete(CCore *core, CWorkItem *item);
static int link_tx_done(CLink *link, PyObject *packet);
static int queue_tx_done(CQueue *q);

static PyObject *
CLoop_run(CLoop *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"until", "max_events", NULL};
    PyObject *until = Py_None, *max_events = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|OO", kwlist,
                                     &until, &max_events))
        return NULL;
    int64_t horizon = 0, limit = 0;
    int has_h = 0, has_l = 0;
    if (until != Py_None) {
        if (as_i64(until, &horizon) < 0)
            return NULL;
        has_h = 1;
    }
    if (max_events != Py_None) {
        if (as_i64(max_events, &limit) < 0)
            return NULL;
        has_l = 1;
    }
    if (self->running) {
        PyErr_SetString(sim_error(), "loop is already running");
        return NULL;
    }
    self->running = 1;
    self->stopped = 0;
    int64_t processed = 0;
    int failed = 0;

    while (!self->stopped) {
        if (self->heap_len == 0)
            break;
        HeapEntry *head = &self->heap[0];
        if (has_h && head->when > horizon)
            break;
        if (!entry_live(head)) {
            heap_pop_dead(self);
            continue;
        }
        HeapEntry e;
        heap_pop(self, &e);
        self->now = e.when;
        int rc = 0;
        switch (e.kind) {
        case KIND_PY: {
            CEvent *ev = (CEvent *)e.a;
            ev->fired = 1;
            PyObject *res = PyObject_Call(ev->callback, ev->args, NULL);
            if (res == NULL)
                rc = -1;
            else
                Py_DECREF(res);
            break;
        }
        case KIND_CPU:
            rc = core_complete((CCore *)e.a, (CWorkItem *)e.b);
            break;
        case KIND_LINK:
            rc = link_tx_done((CLink *)e.a, e.b);
            break;
        case KIND_QTX:
            rc = queue_tx_done((CQueue *)e.a);
            break;
        case KIND_TIMER: {
            CTimer *t = (CTimer *)e.a;
            t->armed = 0;
            t->fire_count += 1;
            PyObject *res = PyObject_CallNoArgs(t->callback);
            if (res == NULL)
                rc = -1;
            else
                Py_DECREF(res);
            break;
        }
        case KIND_CALL1: {
            PyObject *res = PyObject_CallOneArg(e.a, e.b);
            if (res == NULL)
                rc = -1;
            else
                Py_DECREF(res);
            break;
        }
        }
        entry_release(&e);
        if (rc < 0) {
            failed = 1;
            break;
        }
        processed += 1;
        if (has_l && processed >= limit) {
            PyErr_Format(sim_error(),
                         "exceeded max_events=%lld (runaway simulation?)",
                         (long long)limit);
            failed = 1;
            break;
        }
    }
    if (!failed && has_h && self->now < horizon)
        self->now = horizon;
    self->events_processed += processed;
    self->running = 0;
    if (failed)
        return NULL;
    return PyLong_FromLongLong(self->now);
}

static PyObject *
CLoop_run_until_idle(CLoop *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *args = PyTuple_New(0);
    if (args == NULL)
        return NULL;
    PyObject *res = CLoop_run(self, args, NULL);
    Py_DECREF(args);
    return res;
}

static PyObject *
CLoop_peek_next_time(CLoop *self, PyObject *Py_UNUSED(ignored))
{
    while (self->heap_len && !entry_live(&self->heap[0]))
        heap_pop_dead(self);
    if (self->heap_len == 0)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(self->heap[0].when);
}

static PyObject *
CLoop_pending_count(CLoop *self, PyObject *Py_UNUSED(ignored))
{
    return PyLong_FromLongLong(
        (long long)self->heap_len - self->cancelled_in_heap);
}

static PyObject *
CLoop_compact_py(CLoop *self, PyObject *Py_UNUSED(ignored))
{
    loop_compact(self);
    Py_RETURN_NONE;
}

static PyObject *
CLoop_get_now(CLoop *self, void *closure)
{
    return PyLong_FromLongLong(self->now);
}

static PyObject *
CLoop_get_events_processed(CLoop *self, void *closure)
{
    return PyLong_FromLongLong(self->events_processed);
}

static PyMethodDef CLoop_methods[] = {
    {"call_at", (PyCFunction)(void (*)(void))CLoop_call_at, METH_FASTCALL,
     "Schedule callback(*args) at absolute time `when` (ns)."},
    {"call_after", (PyCFunction)(void (*)(void))CLoop_call_after, METH_FASTCALL,
     "Schedule callback(*args) after `delay` ns (must be >= 0)."},
    {"call_soon", (PyCFunction)(void (*)(void))CLoop_call_soon, METH_FASTCALL,
     "Schedule callback(*args) at the current instant."},
    {"run", (PyCFunction)(void (*)(void))CLoop_run,
     METH_VARARGS | METH_KEYWORDS, "Run the simulation."},
    {"run_until_idle", (PyCFunction)CLoop_run_until_idle, METH_NOARGS,
     "Run until no events remain; returns the final time."},
    {"stop", (PyCFunction)CLoop_stop, METH_NOARGS,
     "Request the running loop to stop after the current callback."},
    {"set_profiler", (PyCFunction)CLoop_set_profiler, METH_O,
     "Unsupported on the compiled kernel (raises; use --kernel pure)."},
    {"peek_next_time", (PyCFunction)CLoop_peek_next_time, METH_NOARGS,
     "Time of the next pending event, or None."},
    {"pending_count", (PyCFunction)CLoop_pending_count, METH_NOARGS,
     "Number of scheduled, non-cancelled events (O(1))."},
    {"compact", (PyCFunction)CLoop_compact_py, METH_NOARGS,
     "Drop cancelled entries from the heap and re-heapify."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef CLoop_getset[] = {
    {"now", (getter)CLoop_get_now, NULL,
     "Current simulated time in integer nanoseconds.", NULL},
    {"_now", (getter)CLoop_get_now, NULL,
     "Alias of `now` for callers that read the pure loop's clock slot "
     "directly (a per-event hot-path optimization).", NULL},
    {"events_processed", (getter)CLoop_get_events_processed, NULL,
     "Count of callbacks that have fired.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef CLoop_members[] = {
    {"context", T_OBJECT_EX, offsetof(CLoop, context), READONLY,
     "Arbitrary per-simulation scratch space."},
    {"compactions", T_LONGLONG, offsetof(CLoop, compactions), READONLY,
     "Heap rebuilds triggered by cancellation debt."},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CLoop_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.EventLoop",
    .tp_basicsize = sizeof(CLoop),
    .tp_dealloc = (destructor)CLoop_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "The simulation clock and scheduler (compiled kernel).",
    .tp_traverse = (traverseproc)CLoop_traverse,
    .tp_clear = (inquiry)CLoop_clear,
    .tp_methods = CLoop_methods,
    .tp_getset = CLoop_getset,
    .tp_members = CLoop_members,
    .tp_new = CLoop_new,
    .tp_free = PyObject_GC_Del,
};
/* ------------------------------------------------------- ring buffers */

/* A tiny grow-only circular buffer of owned PyObject* — the C stand-in
 * for collections.deque in CpuCore/Link/DropTailQueue. */

static int
ring_push(PyObject ***bufp, Py_ssize_t *headp, Py_ssize_t *lenp,
          Py_ssize_t *capp, PyObject *item, int front)
{
    PyObject **buf = *bufp;
    Py_ssize_t cap = *capp, len = *lenp;
    if (len == cap) {
        Py_ssize_t ncap = cap ? cap * 2 : 8;
        PyObject **nbuf = PyMem_Malloc(ncap * sizeof(PyObject *));
        if (nbuf == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        for (Py_ssize_t i = 0; i < len; i++)
            nbuf[i] = buf[(*headp + i) % (cap ? cap : 1)];
        PyMem_Free(buf);
        *bufp = buf = nbuf;
        *capp = cap = ncap;
        *headp = 0;
    }
    if (front) {
        *headp = (*headp - 1 + cap) % cap;
        buf[*headp] = item;
    } else {
        buf[(*headp + len) % cap] = item;
    }
    *lenp = len + 1;
    Py_INCREF(item);
    return 0;
}

/* pop-left; transfers ownership to the caller (never called empty) */
static PyObject *
ring_pop(PyObject **buf, Py_ssize_t *headp, Py_ssize_t *lenp, Py_ssize_t cap)
{
    PyObject *item = buf[*headp];
    *headp = (*headp + 1) % cap;
    *lenp -= 1;
    return item;
}

static void
ring_dealloc(PyObject **buf, Py_ssize_t head, Py_ssize_t len, Py_ssize_t cap)
{
    for (Py_ssize_t i = 0; i < len; i++)
        Py_DECREF(buf[(head + i) % cap]);
    PyMem_Free(buf);
}

#define RING_TRAVERSE(buf, head, len, cap)                                \
    do {                                                                  \
        for (Py_ssize_t _i = 0; _i < (len); _i++)                         \
            Py_VISIT((buf)[((head) + _i) % (cap)]);                       \
    } while (0)

/* tolerant int coercion used by Timer: mirrors pure int(x) for floats */
static int
as_i64_trunc(PyObject *obj, int64_t *out)
{
    if (PyFloat_Check(obj)) {
        *out = (int64_t)PyFloat_AS_DOUBLE(obj);
        return 0;
    }
    return as_i64(obj, out);
}

/* ------------------------------------------------------------ WorkItem */

static int
workitem_setup(CWorkItem *self, int64_t cycles, PyObject *callback,
               PyObject *name, int priority)
{
    if (cycles < 0) {
        PyErr_SetString(PyExc_ValueError, "work cycles must be >= 0");
        return -1;
    }
    if (priority != 0 && priority != 1) {
        PyErr_SetString(PyExc_ValueError,
                        "priority must be 0 (high) or 1 (normal)");
        return -1;
    }
    self->cycles = cycles;
    Py_INCREF(callback);
    self->callback = callback;
    Py_INCREF(name);
    self->name = name;
    self->priority = priority;
    self->has_submitted = 0;
    self->has_started = 0;
    return 0;
}

static PyObject *
CWorkItem_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"cycles", "callback", "name", "priority", NULL};
    PyObject *cycles_obj, *callback, *name = NULL;
    int priority = 1;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO|Oi:WorkItem", kwlist,
                                     &cycles_obj, &callback, &name, &priority))
        return NULL;
    int64_t cycles;
    if (as_i64_trunc(cycles_obj, &cycles) < 0)
        return NULL;
    CWorkItem *self = (CWorkItem *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    PyObject *nm = name ? name : PyUnicode_FromString("work");
    if (nm == NULL) {
        Py_DECREF(self);
        return NULL;
    }
    if (workitem_setup(self, cycles, callback, nm, priority) < 0) {
        if (!name)
            Py_DECREF(nm);
        Py_DECREF(self);
        return NULL;
    }
    if (!name)
        Py_DECREF(nm);  /* workitem_setup took its own reference */
    return (PyObject *)self;
}

static void
CWorkItem_dealloc(CWorkItem *self)
{
    PyObject_GC_UnTrack(self);
    Py_XDECREF(self->callback);
    Py_XDECREF(self->name);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CWorkItem_traverse(CWorkItem *self, visitproc visit, void *arg)
{
    Py_VISIT(self->callback);
    Py_VISIT(self->name);
    return 0;
}

static int
CWorkItem_clear(CWorkItem *self)
{
    Py_CLEAR(self->callback);
    Py_CLEAR(self->name);
    return 0;
}

static PyObject *
CWorkItem_get_submitted_at(CWorkItem *self, void *closure)
{
    if (!self->has_submitted)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(self->submitted_at);
}

static PyObject *
CWorkItem_get_started_at(CWorkItem *self, void *closure)
{
    if (!self->has_started)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(self->started_at);
}

static PyGetSetDef CWorkItem_getset[] = {
    {"submitted_at", (getter)CWorkItem_get_submitted_at, NULL,
     "Time the item was queued, or None.", NULL},
    {"started_at", (getter)CWorkItem_get_started_at, NULL,
     "Time the item started executing, or None.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef CWorkItem_members[] = {
    {"cycles", T_LONGLONG, offsetof(CWorkItem, cycles), READONLY,
     "Cycle cost of the item."},
    {"callback", T_OBJECT_EX, offsetof(CWorkItem, callback), READONLY, NULL},
    {"name", T_OBJECT, offsetof(CWorkItem, name), 0, NULL},
    {"priority", T_INT, offsetof(CWorkItem, priority), READONLY, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CWorkItem_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.WorkItem",
    .tp_basicsize = sizeof(CWorkItem),
    .tp_dealloc = (destructor)CWorkItem_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A unit of stack work to execute on a core (compiled kernel).",
    .tp_traverse = (traverseproc)CWorkItem_traverse,
    .tp_clear = (inquiry)CWorkItem_clear,
    .tp_getset = CWorkItem_getset,
    .tp_members = CWorkItem_members,
    .tp_new = CWorkItem_new,
    .tp_free = PyObject_GC_Del,
};

/* ------------------------------------------------------------- CpuCore */

static int
core_start_next(CCore *self)
{
    PyObject *item_obj;
    if (self->hq_len)
        item_obj = ring_pop(self->hq, &self->hq_head, &self->hq_len,
                            self->hq_cap);
    else if (self->q_len)
        item_obj = ring_pop(self->q, &self->q_head, &self->q_len,
                            self->q_cap);
    else
        return 0;
    CWorkItem *item = (CWorkItem *)item_obj;
    CLoop *loop = self->loop;
    int64_t now = loop->now;
    self->current = item_obj;  /* takes the popped reference */
    item->started_at = now;
    item->has_started = 1;
    self->busy_since = now;
    self->has_busy_since = 1;
    /* pure: duration = int(round(item.cycles * SEC / self._freq_hz)) */
    int64_t duration = (int64_t)nearbyint(
        (double)item->cycles * (double)NS_PER_SEC / self->freq_hz);
    return schedule_internal(loop, now + duration, KIND_CPU, 0,
                             (PyObject *)self, item_obj);
}

/* KIND_CPU dispatch: the heap entry owns `item` while this runs */
static int
core_complete(CCore *self, CWorkItem *item)
{
    if (self->has_busy_since) {
        self->busy_ns_total += self->loop->now - self->busy_since;
        self->has_busy_since = 0;
    }
    Py_CLEAR(self->current);
    self->items_executed += 1;
    self->cycles_executed += item->cycles;
    /* Run the callback *before* starting the next item (pure semantics:
     * newly submitted work lands behind already-queued items). */
    PyObject *res = PyObject_CallNoArgs(item->callback);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    if (self->current == NULL)
        return core_start_next(self);
    return 0;
}

static int
core_submit(CCore *self, CWorkItem *item, int continuation)
{
    item->submitted_at = self->loop->now;
    item->has_submitted = 1;
    int rc;
    if (item->priority == 0)
        rc = ring_push(&self->hq, &self->hq_head, &self->hq_len,
                       &self->hq_cap, (PyObject *)item, continuation);
    else
        rc = ring_push(&self->q, &self->q_head, &self->q_len,
                       &self->q_cap, (PyObject *)item, continuation);
    if (rc < 0)
        return -1;
    Py_ssize_t depth = self->q_len + self->hq_len;
    if (depth > self->max_queue_depth)
        self->max_queue_depth = depth;
    if (self->current == NULL)
        return core_start_next(self);
    return 0;
}

static PyObject *
CCore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"loop", "freq_hz", "name", "tracer", NULL};
    CLoop *loop;
    double freq_hz;
    PyObject *name = NULL, *tracer = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!d|OO:CpuCore", kwlist,
                                     &CLoop_Type, &loop, &freq_hz,
                                     &name, &tracer))
        return NULL;
    if (freq_hz <= 0) {
        PyErr_SetString(PyExc_ValueError, "core frequency must be positive");
        return NULL;
    }
    if (reject_enabled_tracer(tracer, "CpuCore") < 0)
        return NULL;
    CCore *self = (CCore *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    Py_INCREF(loop);
    self->loop = loop;
    self->freq_hz = freq_hz;
    if (name != NULL) {
        Py_INCREF(name);
        self->name = name;
    } else {
        self->name = PyUnicode_FromString("cpu0");
        if (self->name == NULL) {
            Py_DECREF(self);
            return NULL;
        }
    }
    return (PyObject *)self;
}

static void
CCore_dealloc(CCore *self)
{
    PyObject_GC_UnTrack(self);
    ring_dealloc(self->q, self->q_head, self->q_len, self->q_cap);
    ring_dealloc(self->hq, self->hq_head, self->hq_len, self->hq_cap);
    self->q = self->hq = NULL;
    self->q_len = self->hq_len = 0;
    Py_XDECREF(self->current);
    Py_XDECREF(self->loop);
    Py_XDECREF(self->name);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CCore_traverse(CCore *self, visitproc visit, void *arg)
{
    RING_TRAVERSE(self->q, self->q_head, self->q_len, self->q_cap);
    RING_TRAVERSE(self->hq, self->hq_head, self->hq_len, self->hq_cap);
    Py_VISIT(self->current);
    Py_VISIT(self->loop);
    Py_VISIT(self->name);
    return 0;
}

static int
CCore_clear(CCore *self)
{
    ring_dealloc(self->q, self->q_head, self->q_len, self->q_cap);
    ring_dealloc(self->hq, self->hq_head, self->hq_len, self->hq_cap);
    self->q = self->hq = NULL;
    self->q_head = self->hq_head = self->q_len = self->hq_len = 0;
    self->q_cap = self->hq_cap = 0;
    Py_CLEAR(self->current);
    Py_CLEAR(self->loop);
    Py_CLEAR(self->name);
    return 0;
}

static PyObject *
CCore_submit(CCore *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"item", "continuation", NULL};
    PyObject *item;
    int continuation = 0;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!|p:submit", kwlist,
                                     &CWorkItem_Type, &item, &continuation))
        return NULL;
    if (core_submit(self, (CWorkItem *)item, continuation) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
CCore_submit_work(CCore *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"cycles", "callback", "name", "priority",
                             "continuation", NULL};
    PyObject *cycles_obj, *callback, *name = NULL;
    int priority = 1, continuation = 0;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO|Oip:submit_work",
                                     kwlist, &cycles_obj, &callback, &name,
                                     &priority, &continuation))
        return NULL;
    int64_t cycles;
    if (as_i64_trunc(cycles_obj, &cycles) < 0)
        return NULL;
    CWorkItem *item = PyObject_GC_New(CWorkItem, &CWorkItem_Type);
    if (item == NULL)
        return NULL;
    item->callback = NULL;
    item->name = NULL;
    PyObject *nm = name ? name : PyUnicode_FromString("work");
    if (nm == NULL) {
        Py_DECREF(item);
        return NULL;
    }
    int rc = workitem_setup(item, cycles, callback, nm, priority);
    if (!name)
        Py_DECREF(nm);
    if (rc < 0) {
        Py_DECREF(item);
        return NULL;
    }
    PyObject_GC_Track(item);
    if (core_submit(self, item, continuation) < 0) {
        Py_DECREF(item);
        return NULL;
    }
    return (PyObject *)item;
}

static PyObject *
CCore_set_frequency(CCore *self, PyObject *arg)
{
    double freq_hz = PyFloat_AsDouble(arg);
    if (freq_hz == -1.0 && PyErr_Occurred())
        return NULL;
    if (freq_hz <= 0) {
        PyErr_SetString(PyExc_ValueError, "core frequency must be positive");
        return NULL;
    }
    self->freq_hz = freq_hz;
    Py_RETURN_NONE;
}

static PyObject *
CCore_busy_ns_up_to_now(CCore *self, PyObject *Py_UNUSED(ignored))
{
    int64_t total = self->busy_ns_total;
    if (self->has_busy_since)
        total += self->loop->now - self->busy_since;
    return PyLong_FromLongLong(total);
}

static PyObject *
CCore_get_freq_hz(CCore *self, void *closure)
{
    return PyFloat_FromDouble(self->freq_hz);
}

static PyObject *
CCore_get_busy(CCore *self, void *closure)
{
    return PyBool_FromLong(self->current != NULL);
}

static PyObject *
CCore_get_queue_depth(CCore *self, void *closure)
{
    return PyLong_FromSsize_t(self->q_len + self->hq_len);
}

static PyMethodDef CCore_methods[] = {
    {"submit", (PyCFunction)(void (*)(void))CCore_submit,
     METH_VARARGS | METH_KEYWORDS,
     "Enqueue a WorkItem; it runs when the core reaches it."},
    {"submit_work", (PyCFunction)(void (*)(void))CCore_submit_work,
     METH_VARARGS | METH_KEYWORDS,
     "Build and submit a WorkItem without a Python-side allocation."},
    {"set_frequency", (PyCFunction)CCore_set_frequency, METH_O,
     "Change the clock; affects items started after this call."},
    {"busy_ns_up_to_now", (PyCFunction)CCore_busy_ns_up_to_now, METH_NOARGS,
     "Total busy nanoseconds including the in-flight item so far."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef CCore_getset[] = {
    {"freq_hz", (getter)CCore_get_freq_hz, NULL,
     "Current clock frequency in Hz.", NULL},
    {"busy", (getter)CCore_get_busy, NULL,
     "True while an item is executing.", NULL},
    {"queue_depth", (getter)CCore_get_queue_depth, NULL,
     "Items waiting (not counting the one executing).", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef CCore_members[] = {
    {"name", T_OBJECT, offsetof(CCore, name), 0, NULL},
    {"busy_ns_total", T_LONGLONG, offsetof(CCore, busy_ns_total), READONLY,
     NULL},
    {"items_executed", T_LONGLONG, offsetof(CCore, items_executed), READONLY,
     NULL},
    {"cycles_executed", T_LONGLONG, offsetof(CCore, cycles_executed),
     READONLY, NULL},
    {"max_queue_depth", T_LONGLONG, offsetof(CCore, max_queue_depth),
     READONLY, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.CpuCore",
    .tp_basicsize = sizeof(CCore),
    .tp_dealloc = (destructor)CCore_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "One core: frequency, FIFO run queues, busy accounting "
              "(compiled kernel).",
    .tp_traverse = (traverseproc)CCore_traverse,
    .tp_clear = (inquiry)CCore_clear,
    .tp_methods = CCore_methods,
    .tp_getset = CCore_getset,
    .tp_members = CCore_members,
    .tp_new = CCore_new,
    .tp_free = PyObject_GC_Del,
};

/* --------------------------------------------------------------- Timer */

static PyObject *
CTimer_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"loop", "callback", "slack_ns", "name", NULL};
    CLoop *loop;
    PyObject *callback, *name = NULL;
    long long slack_ns = 0;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!O|LO:Timer", kwlist,
                                     &CLoop_Type, &loop, &callback,
                                     &slack_ns, &name))
        return NULL;
    CTimer *self = (CTimer *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    Py_INCREF(loop);
    self->loop = loop;
    Py_INCREF(callback);
    self->callback = callback;
    self->slack = slack_ns > 0 ? (int64_t)slack_ns : 0;
    if (name != NULL) {
        Py_INCREF(name);
        self->name = name;
    } else {
        self->name = PyUnicode_FromString("");
        if (self->name == NULL) {
            Py_DECREF(self);
            return NULL;
        }
    }
    return (PyObject *)self;
}

static void
CTimer_dealloc(CTimer *self)
{
    PyObject_GC_UnTrack(self);
    Py_XDECREF(self->loop);
    Py_XDECREF(self->callback);
    Py_XDECREF(self->name);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CTimer_traverse(CTimer *self, visitproc visit, void *arg)
{
    Py_VISIT(self->loop);
    Py_VISIT(self->callback);
    Py_VISIT(self->name);
    return 0;
}

static int
CTimer_clear(CTimer *self)
{
    Py_CLEAR(self->loop);
    Py_CLEAR(self->callback);
    Py_CLEAR(self->name);
    return 0;
}

static void
timer_cancel_internal(CTimer *self)
{
    if (self->armed) {
        self->armed = 0;
        loop_note_cancelled(self->loop);
    }
}

static int
timer_start_at(CTimer *self, int64_t when_ns)
{
    timer_cancel_internal(self);
    int64_t now = self->loop->now;
    int64_t when = when_ns > now ? when_ns : now;
    if (self->slack) {
        int64_t remainder = when % self->slack;
        if (remainder)
            when += self->slack - remainder;
    }
    self->gen += 1;
    self->armed = 1;
    self->when = when;
    return schedule_internal(self->loop, when, KIND_TIMER, self->gen,
                             (PyObject *)self, NULL);
}

static PyObject *
CTimer_start(CTimer *self, PyObject *arg)
{
    int64_t delay;
    if (as_i64_trunc(arg, &delay) < 0)
        return NULL;
    if (delay < 0)
        delay = 0;
    if (timer_start_at(self, self->loop->now + delay) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
CTimer_start_at(CTimer *self, PyObject *arg)
{
    int64_t when;
    if (as_i64_trunc(arg, &when) < 0)
        return NULL;
    if (timer_start_at(self, when) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
CTimer_cancel(CTimer *self, PyObject *Py_UNUSED(ignored))
{
    timer_cancel_internal(self);
    Py_RETURN_NONE;
}

static PyObject *
CTimer_get_pending(CTimer *self, void *closure)
{
    return PyBool_FromLong(self->armed);
}

static PyObject *
CTimer_get_expires_at(CTimer *self, void *closure)
{
    if (!self->armed)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(self->when);
}

static PyMethodDef CTimer_methods[] = {
    {"start", (PyCFunction)CTimer_start, METH_O,
     "(Re-)arm the timer delay_ns from now (>= 0)."},
    {"start_at", (PyCFunction)CTimer_start_at, METH_O,
     "(Re-)arm the timer for an absolute time."},
    {"cancel", (PyCFunction)CTimer_cancel, METH_NOARGS,
     "Disarm the timer if pending."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef CTimer_getset[] = {
    {"pending", (getter)CTimer_get_pending, NULL,
     "True if the timer is armed and has not fired.", NULL},
    {"expires_at", (getter)CTimer_get_expires_at, NULL,
     "Absolute expiry time in ns, or None when not armed.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef CTimer_members[] = {
    {"name", T_OBJECT, offsetof(CTimer, name), 0, NULL},
    {"fire_count", T_LONGLONG, offsetof(CTimer, fire_count), READONLY,
     "Number of times the timer has fired."},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CTimer_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.Timer",
    .tp_basicsize = sizeof(CTimer),
    .tp_dealloc = (destructor)CTimer_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A one-shot, re-armable timer (compiled kernel).",
    .tp_traverse = (traverseproc)CTimer_traverse,
    .tp_clear = (inquiry)CTimer_clear,
    .tp_methods = CTimer_methods,
    .tp_getset = CTimer_getset,
    .tp_members = CTimer_members,
    .tp_new = CTimer_new,
    .tp_free = PyObject_GC_Del,
};

/* ---------------------------------------------------------------- Link */

static int
packet_wire_bytes(PyObject *packet, int64_t *out)
{
    PyObject *v = PyObject_GetAttr(packet, s_wire_bytes);
    if (v == NULL)
        return -1;
    int rc = as_i64(v, out);
    Py_DECREF(v);
    return rc;
}

static int
packet_segments(PyObject *packet, int64_t *out)
{
    PyObject *v = PyObject_GetAttr(packet, s_segments);
    if (v == NULL)
        return -1;
    int rc = as_i64(v, out);
    Py_DECREF(v);
    return rc;
}

/* pure: transmit_time(nbytes, rate) — 0 for rate <= 0 */
static int64_t
transmit_time_c(int64_t nbytes, double rate_bps)
{
    if (rate_bps <= 0)
        return 0;
    return (int64_t)nearbyint(
        (double)nbytes * 8.0 * (double)NS_PER_SEC / rate_bps);
}

/* begin serializing the head packet; *tx_out = -1 when nothing started */
static int
clink_start_next(CLink *self, int64_t *tx_out)
{
    *tx_out = -1;
    if (self->f_len == 0)
        return 0;
    PyObject *packet = ring_pop(self->fifo, &self->f_head, &self->f_len,
                                self->f_cap);
    self->transmitting = 1;
    int64_t wb;
    if (packet_wire_bytes(packet, &wb) < 0) {
        Py_DECREF(packet);
        return -1;
    }
    /* pure: tx_ns = int(round(packet.wire_bytes * 8 * SEC / self.rate_bps)) */
    int64_t tx_ns = (int64_t)nearbyint(
        (double)wb * 8.0 * (double)NS_PER_SEC / self->rate_bps);
    self->busy_ns += tx_ns;
    int rc = schedule_internal(self->loop, self->loop->now + tx_ns,
                               KIND_LINK, 0, (PyObject *)self, packet);
    Py_DECREF(packet);
    if (rc < 0)
        return -1;
    *tx_out = tx_ns;
    return 0;
}

static int
clink_send(CLink *self, PyObject *packet, int64_t *tx_out)
{
    if (ring_push(&self->fifo, &self->f_head, &self->f_len, &self->f_cap,
                  packet, 0) < 0)
        return -1;
    if (!self->transmitting)
        return clink_start_next(self, tx_out);
    *tx_out = -1;
    return 0;
}

/* KIND_LINK dispatch: the heap entry owns `packet` while this runs */
static int
link_tx_done(CLink *self, PyObject *packet)
{
    self->transmitting = 0;
    self->packets_sent += 1;
    int64_t wb;
    if (packet_wire_bytes(packet, &wb) < 0)
        return -1;
    self->bytes_sent += wb;
    PyObject *sink = self->sink;
    if (sink == NULL || sink == Py_None) {
        PyErr_Format(PyExc_RuntimeError, "link %S has no sink connected",
                     self->name);
        return -1;
    }
    int64_t delay = self->prop_delay_ns > 0 ? self->prop_delay_ns : 0;
    if (schedule_internal(self->loop, self->loop->now + delay, KIND_CALL1,
                          0, sink, packet) < 0)
        return -1;
    if (self->f_len) {
        int64_t dummy;
        return clink_start_next(self, &dummy);
    }
    return 0;
}

static PyObject *
CLink_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"loop", "rate_bps", "prop_delay_ns", "name",
                             "tracer", NULL};
    CLoop *loop;
    double rate_bps;
    long long prop_delay_ns = 0;
    PyObject *name = NULL, *tracer = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!d|LOO:Link", kwlist,
                                     &CLoop_Type, &loop, &rate_bps,
                                     &prop_delay_ns, &name, &tracer))
        return NULL;
    if (rate_bps <= 0) {
        PyErr_SetString(PyExc_ValueError, "link rate must be positive");
        return NULL;
    }
    if (reject_enabled_tracer(tracer, "Link") < 0)
        return NULL;
    CLink *self = (CLink *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    Py_INCREF(loop);
    self->loop = loop;
    self->rate_bps = rate_bps;
    self->prop_delay_ns = (int64_t)prop_delay_ns;
    if (name != NULL) {
        Py_INCREF(name);
        self->name = name;
    } else {
        self->name = PyUnicode_FromString("link");
        if (self->name == NULL) {
            Py_DECREF(self);
            return NULL;
        }
    }
    return (PyObject *)self;
}

static void
CLink_dealloc(CLink *self)
{
    PyObject_GC_UnTrack(self);
    ring_dealloc(self->fifo, self->f_head, self->f_len, self->f_cap);
    self->fifo = NULL;
    self->f_len = 0;
    Py_XDECREF(self->loop);
    Py_XDECREF(self->name);
    Py_XDECREF(self->sink);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CLink_traverse(CLink *self, visitproc visit, void *arg)
{
    RING_TRAVERSE(self->fifo, self->f_head, self->f_len, self->f_cap);
    Py_VISIT(self->loop);
    Py_VISIT(self->name);
    Py_VISIT(self->sink);
    return 0;
}

static int
CLink_clear(CLink *self)
{
    ring_dealloc(self->fifo, self->f_head, self->f_len, self->f_cap);
    self->fifo = NULL;
    self->f_head = self->f_len = self->f_cap = 0;
    Py_CLEAR(self->loop);
    Py_CLEAR(self->name);
    Py_CLEAR(self->sink);
    return 0;
}

static PyObject *
CLink_connect(CLink *self, PyObject *sink)
{
    Py_INCREF(sink);
    Py_XSETREF(self->sink, sink);
    Py_RETURN_NONE;
}

static PyObject *
CLink_send(CLink *self, PyObject *packet)
{
    int64_t tx;
    if (clink_send(self, packet, &tx) < 0)
        return NULL;
    if (tx < 0)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(tx);
}

static PyObject *
CLink_serialization_ns(CLink *self, PyObject *packet)
{
    int64_t wb;
    if (packet_wire_bytes(packet, &wb) < 0)
        return NULL;
    return PyLong_FromLongLong(transmit_time_c(wb, self->rate_bps));
}

static PyObject *
CLink_get_backlogged(CLink *self, void *closure)
{
    return PyBool_FromLong(self->transmitting || self->f_len > 0);
}

static PyObject *
CLink_get_queue_len(CLink *self, void *closure)
{
    return PyLong_FromSsize_t(self->f_len);
}

static PyObject *
CLink_get_sink(CLink *self, void *closure)
{
    PyObject *sink = self->sink ? self->sink : Py_None;
    Py_INCREF(sink);
    return sink;
}

static int
CLink_set_sink(CLink *self, PyObject *value, void *closure)
{
    if (value == NULL)
        value = Py_None;
    Py_INCREF(value);
    Py_XSETREF(self->sink, value);
    return 0;
}

static PyMethodDef CLink_methods[] = {
    {"connect", (PyCFunction)CLink_connect, METH_O,
     "Set the receiver callback for delivered packets."},
    {"send", (PyCFunction)CLink_send, METH_O,
     "Begin (or queue for) serialization; returns tx ns or None."},
    {"serialization_ns", (PyCFunction)CLink_serialization_ns, METH_O,
     "Time to clock the packet onto the wire at the current rate."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef CLink_getset[] = {
    {"backlogged", (getter)CLink_get_backlogged, NULL,
     "True while the wire is busy or the FIFO is non-empty.", NULL},
    {"queue_len", (getter)CLink_get_queue_len, NULL,
     "Packets waiting for the wire (excludes the one being sent).", NULL},
    {"sink", (getter)CLink_get_sink, (setter)CLink_set_sink,
     "Receiver callback for delivered packets.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef CLink_members[] = {
    {"rate_bps", T_DOUBLE, offsetof(CLink, rate_bps), 0,
     "Line rate in bits/s (mutable, e.g. by rate processes)."},
    {"prop_delay_ns", T_LONGLONG, offsetof(CLink, prop_delay_ns), 0, NULL},
    {"name", T_OBJECT, offsetof(CLink, name), 0, NULL},
    {"packets_sent", T_LONGLONG, offsetof(CLink, packets_sent), READONLY,
     NULL},
    {"bytes_sent", T_LONGLONG, offsetof(CLink, bytes_sent), READONLY, NULL},
    {"busy_ns", T_LONGLONG, offsetof(CLink, busy_ns), READONLY, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CLink_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.Link",
    .tp_basicsize = sizeof(CLink),
    .tp_dealloc = (destructor)CLink_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A unidirectional link with rate, propagation delay, and a "
              "FIFO (compiled kernel).",
    .tp_traverse = (traverseproc)CLink_traverse,
    .tp_clear = (inquiry)CLink_clear,
    .tp_methods = CLink_methods,
    .tp_getset = CLink_getset,
    .tp_members = CLink_members,
    .tp_new = CLink_new,
    .tp_free = PyObject_GC_Del,
};

/* ------------------------------------------------------- DropTailQueue */

static int
link_rate(PyObject *link, double *out)
{
    if (PyObject_TypeCheck(link, &CLink_Type)) {
        *out = ((CLink *)link)->rate_bps;
        return 0;
    }
    PyObject *v = PyObject_GetAttr(link, s_rate_bps);
    if (v == NULL)
        return -1;
    double d = PyFloat_AsDouble(v);
    Py_DECREF(v);
    if (d == -1.0 && PyErr_Occurred())
        return -1;
    *out = d;
    return 0;
}

static int
cqueue_pump(CQueue *self)
{
    if (self->link_busy || self->f_len == 0)
        return 0;
    PyObject *packet = ring_pop(self->fifo, &self->f_head, &self->f_len,
                                self->f_cap);
    int64_t segs;
    if (packet_segments(packet, &segs) < 0) {
        Py_DECREF(packet);
        return -1;
    }
    self->backlog_segments -= segs;
    self->link_busy = 1;
    int64_t tx_ns = -1;
    if (PyObject_TypeCheck(self->link, &CLink_Type)) {
        if (clink_send((CLink *)self->link, packet, &tx_ns) < 0) {
            Py_DECREF(packet);
            return -1;
        }
        if (tx_ns < 0) {
            int64_t wb;
            if (packet_wire_bytes(packet, &wb) < 0) {
                Py_DECREF(packet);
                return -1;
            }
            tx_ns = transmit_time_c(wb, ((CLink *)self->link)->rate_bps);
        }
    } else {
        PyObject *res = PyObject_CallMethodOneArg(self->link, s_send, packet);
        if (res == NULL) {
            Py_DECREF(packet);
            return -1;
        }
        if (res == Py_None) {
            Py_DECREF(res);
            res = PyObject_CallMethodOneArg(self->link, s_serialization_ns,
                                            packet);
            if (res == NULL) {
                Py_DECREF(packet);
                return -1;
            }
        }
        int rc = as_i64(res, &tx_ns);
        Py_DECREF(res);
        if (rc < 0) {
            Py_DECREF(packet);
            return -1;
        }
    }
    Py_DECREF(packet);
    return schedule_internal(self->loop, self->loop->now + tx_ns, KIND_QTX,
                             0, (PyObject *)self, NULL);
}

/* KIND_QTX dispatch */
static int
queue_tx_done(CQueue *self)
{
    self->link_busy = 0;
    return cqueue_pump(self);
}

static int
cqueue_admit(CQueue *self, PyObject *packet)
{
    int64_t segs;
    if (packet_segments(packet, &segs) < 0)
        return -1;
    if (ring_push(&self->fifo, &self->f_head, &self->f_len, &self->f_cap,
                  packet, 0) < 0)
        return -1;
    self->backlog_segments += segs;
    self->enqueued_segments += segs;
    if (self->backlog_segments > self->max_backlog_segments)
        self->max_backlog_segments = self->backlog_segments;
    return cqueue_pump(self);
}

static PyObject *
CQueue_enqueue(CQueue *self, PyObject *packet)
{
    int64_t free_segs = self->capacity_segments - self->backlog_segments;
    int is_ack = 0;
    PyObject *v = PyObject_GetAttr(packet, s_is_ack);
    if (v == NULL)
        return NULL;
    is_ack = PyObject_IsTrue(v);
    Py_DECREF(v);
    if (is_ack < 0)
        return NULL;
    int64_t segs;
    if (packet_segments(packet, &segs) < 0)
        return NULL;
    if (self->input_link != NULL && self->input_link != Py_None && !is_ack) {
        double lr, ir;
        if (link_rate(self->link, &lr) < 0
            || link_rate(self->input_link, &ir) < 0)
            return NULL;
        double ratio = lr / ir;
        if (ratio > 1.0)
            ratio = 1.0;
        /* pure: free += int(packet.segments * ratio) — truncation */
        free_segs += (int64_t)((double)segs * ratio);
    }
    if (segs <= free_segs) {
        if (cqueue_admit(self, packet) < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    if (free_segs > 0 && !is_ack) {
        PyObject *free_obj = PyLong_FromLongLong(free_segs);
        if (free_obj == NULL)
            return NULL;
        PyObject *head = PyObject_CallMethodOneArg(packet, s_split_head,
                                                   free_obj);
        Py_DECREF(free_obj);
        if (head == NULL)
            return NULL;
        if (head != Py_None) {
            if (cqueue_admit(self, head) < 0) {
                Py_DECREF(head);
                return NULL;
            }
        }
        Py_DECREF(head);
    }
    /* remainder of `packet` (possibly all of it) is dropped; pure rereads
     * packet.segments after split_head shrank the packet */
    self->dropped_packets += 1;
    int64_t rem_segs;
    if (packet_segments(packet, &rem_segs) < 0)
        return NULL;
    self->dropped_segments += rem_segs;
    if (self->on_drop != NULL && self->on_drop != Py_None) {
        PyObject *segs_obj = PyLong_FromLongLong(rem_segs);
        if (segs_obj == NULL)
            return NULL;
        PyObject *res = PyObject_CallFunctionObjArgs(self->on_drop, packet,
                                                     segs_obj, NULL);
        Py_DECREF(segs_obj);
        if (res == NULL)
            return NULL;
        Py_DECREF(res);
    }
    Py_RETURN_NONE;
}

static PyObject *
CQueue_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"loop", "link", "capacity_segments", "name",
                             "input_link", "tracer", NULL};
    CLoop *loop;
    PyObject *link, *name = NULL, *input_link = NULL, *tracer = NULL;
    long long capacity = 1000;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!O|LOOO:DropTailQueue",
                                     kwlist, &CLoop_Type, &loop, &link,
                                     &capacity, &name, &input_link, &tracer))
        return NULL;
    if (capacity < 1) {
        PyErr_SetString(PyExc_ValueError,
                        "queue capacity must be at least one segment");
        return NULL;
    }
    if (reject_enabled_tracer(tracer, "DropTailQueue") < 0)
        return NULL;
    CQueue *self = (CQueue *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    Py_INCREF(loop);
    self->loop = loop;
    Py_INCREF(link);
    self->link = link;
    if (input_link != NULL && input_link != Py_None) {
        Py_INCREF(input_link);
        self->input_link = input_link;
    }
    self->capacity_segments = (int64_t)capacity;
    if (name != NULL) {
        Py_INCREF(name);
        self->name = name;
    } else {
        self->name = PyUnicode_FromString("queue");
        if (self->name == NULL) {
            Py_DECREF(self);
            return NULL;
        }
    }
    return (PyObject *)self;
}

static void
CQueue_dealloc(CQueue *self)
{
    PyObject_GC_UnTrack(self);
    ring_dealloc(self->fifo, self->f_head, self->f_len, self->f_cap);
    self->fifo = NULL;
    self->f_len = 0;
    Py_XDECREF(self->loop);
    Py_XDECREF(self->link);
    Py_XDECREF(self->input_link);
    Py_XDECREF(self->name);
    Py_XDECREF(self->on_drop);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CQueue_traverse(CQueue *self, visitproc visit, void *arg)
{
    RING_TRAVERSE(self->fifo, self->f_head, self->f_len, self->f_cap);
    Py_VISIT(self->loop);
    Py_VISIT(self->link);
    Py_VISIT(self->input_link);
    Py_VISIT(self->name);
    Py_VISIT(self->on_drop);
    return 0;
}

static int
CQueue_clear(CQueue *self)
{
    ring_dealloc(self->fifo, self->f_head, self->f_len, self->f_cap);
    self->fifo = NULL;
    self->f_head = self->f_len = self->f_cap = 0;
    Py_CLEAR(self->loop);
    Py_CLEAR(self->link);
    Py_CLEAR(self->input_link);
    Py_CLEAR(self->name);
    Py_CLEAR(self->on_drop);
    return 0;
}

static PyObject *
CQueue_sample_backlog(CQueue *self, PyObject *Py_UNUSED(ignored))
{
    self->backlog_sum_segments += (double)self->backlog_segments;
    self->backlog_samples += 1;
    Py_RETURN_NONE;
}

static PyObject *
CQueue_get_backlog_segments(CQueue *self, void *closure)
{
    return PyLong_FromLongLong(self->backlog_segments);
}

static PyObject *
CQueue_get_backlog_packets(CQueue *self, void *closure)
{
    return PyLong_FromSsize_t(self->f_len);
}

static PyObject *
CQueue_get_mean_backlog(CQueue *self, void *closure)
{
    if (self->backlog_samples == 0)
        return PyFloat_FromDouble(0.0);
    return PyFloat_FromDouble(self->backlog_sum_segments
                              / (double)self->backlog_samples);
}

static PyObject *
CQueue_get_input_link(CQueue *self, void *closure)
{
    PyObject *v = self->input_link ? self->input_link : Py_None;
    Py_INCREF(v);
    return v;
}

static PyMethodDef CQueue_methods[] = {
    {"enqueue", (PyCFunction)CQueue_enqueue, METH_O,
     "Admit as much of the packet as fits; drop the rest (tail drop)."},
    {"sample_backlog", (PyCFunction)CQueue_sample_backlog, METH_NOARGS,
     "Record the instantaneous backlog for averaging (metrics hook)."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef CQueue_getset[] = {
    {"backlog_segments", (getter)CQueue_get_backlog_segments, NULL,
     "Segments currently buffered (excluding the one on the wire).", NULL},
    {"backlog_packets", (getter)CQueue_get_backlog_packets, NULL,
     "Super-packets currently buffered.", NULL},
    {"mean_backlog_segments", (getter)CQueue_get_mean_backlog, NULL,
     "Mean of sampled backlogs (0 if never sampled).", NULL},
    {"input_link", (getter)CQueue_get_input_link, NULL,
     "Upstream link feeding this queue, if any.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef CQueue_members[] = {
    {"link", T_OBJECT_EX, offsetof(CQueue, link), READONLY, NULL},
    {"capacity_segments", T_LONGLONG, offsetof(CQueue, capacity_segments),
     READONLY, NULL},
    {"name", T_OBJECT, offsetof(CQueue, name), 0, NULL},
    {"on_drop", T_OBJECT, offsetof(CQueue, on_drop), 0,
     "Optional callback invoked when segments are dropped."},
    {"enqueued_segments", T_LONGLONG, offsetof(CQueue, enqueued_segments),
     READONLY, NULL},
    {"dropped_segments", T_LONGLONG, offsetof(CQueue, dropped_segments),
     READONLY, NULL},
    {"dropped_packets", T_LONGLONG, offsetof(CQueue, dropped_packets),
     READONLY, NULL},
    {"max_backlog_segments", T_LONGLONG,
     offsetof(CQueue, max_backlog_segments), READONLY, NULL},
    {"backlog_sum_segments", T_DOUBLE,
     offsetof(CQueue, backlog_sum_segments), READONLY, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CQueue_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.DropTailQueue",
    .tp_basicsize = sizeof(CQueue),
    .tp_dealloc = (destructor)CQueue_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A bounded FIFO feeding a Link (compiled kernel).",
    .tp_traverse = (traverseproc)CQueue_traverse,
    .tp_clear = (inquiry)CQueue_clear,
    .tp_methods = CQueue_methods,
    .tp_getset = CQueue_getset,
    .tp_members = CQueue_members,
    .tp_new = CQueue_new,
    .tp_free = PyObject_GC_Del,
};

/* ----------------------------------------------------- ACK hot path ---
 *
 * C implementations of the per-ACK TCP bookkeeping: the SACK scoreboard
 * (repro.tcp.scoreboard.Scoreboard) and the delivery-rate estimator
 * (repro.tcp.rate_sample.{TxRecord,RateSample,DeliveryRateEstimator}).
 * Arithmetic is transcribed verbatim from the pure modules — integer
 * nanoseconds throughout, C `/` on non-negative operands for Python
 * floor division, `(overlap + mss - 1) / mss` for `-(-overlap // mss)`
 * — so the equivalence suite's bit-identity contract holds.
 *
 * Beyond the one-to-one method ports there are two *seams* that exist
 * on the pure classes too (added alongside this code):
 *
 *   Scoreboard.process_ack(delivery, ack_seq, sack_blocks, now_ns,
 *                          prior_inflight, min_rtt_expired)
 *       -> (RateSample, newly_acked_bytes)
 *   DeliveryRateEstimator.send_record(now_ns, seq, end_seq, segments,
 *                                     has_inflight, app_limited)
 *       -> TxRecord
 *
 * They fuse the cumulative/SACK walk, the delivered-counter credit, and
 * the rate-sample construction into a single C call, so a compiled run
 * pays one interpreter dispatch per ACK (and per transmit) instead of
 * five plus a snapshot dict and a dataclass construction.
 */

typedef struct {
    PyObject_HEAD
    int64_t seq;
    int64_t end_seq;
    int64_t segments;
    int64_t sent_ns;
    int64_t delivered_at_send;
    int64_t delivered_time_at_send;
    int64_t first_sent_at_send;
    int64_t sacked_segments;
    int64_t last_sent_ns;
    char is_app_limited;
    char retransmitted;
    char sacked;
    char lost;
} CTxRec;

typedef struct {
    PyObject_HEAD
    int64_t delivered_bytes;
    int64_t interval_ns;
    int64_t rtt_ns;
    int64_t delivered_total;
    int64_t prior_delivered;
    int64_t prior_inflight_segments;
    int64_t newly_acked_segments;
    int64_t newly_sacked_segments;
    int64_t newly_lost_segments;
    int64_t ack_time_ns;
    char is_app_limited;
    char min_rtt_expired;
} CRateSample;

typedef struct {
    PyObject_HEAD
    int64_t newly_acked_bytes;
    int64_t newly_acked_segments;
    int64_t newly_sacked_bytes;
    int64_t newly_sacked_segments;
    int64_t newly_lost_segments;
    PyObject *newest;  /* owned CTxRec or NULL (exposed as None) */
} CAckOutcome;

typedef struct {
    PyObject_HEAD
    int64_t mss;
    int64_t reorder_degree;
    int64_t snd_una;
    int64_t highest_sacked;
    int64_t total_retransmitted_segments;
    /* tx-record ring: owned CTxRec refs, oldest first */
    PyObject **rec;
    Py_ssize_t r_head, r_len, r_cap;
    /* derived-counter cache (packets/sacked/lost/retrans), dirty flag */
    int64_t c_packets, c_sacked, c_lost, c_retrans;
    char counters_dirty;
    char have_lost;
} CScoreboard;

typedef struct {
    PyObject_HEAD
    int64_t delivered_bytes;
    int64_t delivered_time_ns;
    int64_t first_sent_ns;
    int64_t app_limited_until;
} CDelivery;

static PyTypeObject CTxRec_Type;
static PyTypeObject CRateSample_Type;
static PyTypeObject CAckOutcome_Type;
static PyTypeObject CScoreboard_Type;
static PyTypeObject CDelivery_Type;

/* TxRecord / RateSample free lists: one record lives per in-flight
 * super-packet and one sample per ACK, so both churn at event rate.
 * Recycling sidesteps the allocator on the two hottest object types. */

#define TXREC_POOL_MAX 512
static CTxRec *txrec_pool[TXREC_POOL_MAX];
static int txrec_pool_len = 0;

#define RS_POOL_MAX 64
static CRateSample *rs_pool[RS_POOL_MAX];
static int rs_pool_len = 0;

static CTxRec *
txrec_alloc(void)
{
    CTxRec *self;
    if (txrec_pool_len > 0) {
        self = txrec_pool[--txrec_pool_len];
        _Py_NewReference((PyObject *)self);
    } else {
        self = PyObject_New(CTxRec, &CTxRec_Type);
        if (self == NULL)
            return NULL;
    }
    return self;
}

static void
CTxRec_dealloc(CTxRec *self)
{
    if (Py_TYPE(self) == &CTxRec_Type && txrec_pool_len < TXREC_POOL_MAX)
        txrec_pool[txrec_pool_len++] = self;
    else
        Py_TYPE(self)->tp_free((PyObject *)self);
}

static CRateSample *
ratesample_alloc(void)
{
    CRateSample *self;
    if (rs_pool_len > 0) {
        self = rs_pool[--rs_pool_len];
        _Py_NewReference((PyObject *)self);
    } else {
        self = PyObject_New(CRateSample, &CRateSample_Type);
        if (self == NULL)
            return NULL;
    }
    /* pure RateSample() defaults: everything 0/False except rtt_ns=-1 */
    self->delivered_bytes = 0;
    self->interval_ns = 0;
    self->rtt_ns = -1;
    self->delivered_total = 0;
    self->prior_delivered = 0;
    self->prior_inflight_segments = 0;
    self->newly_acked_segments = 0;
    self->newly_sacked_segments = 0;
    self->newly_lost_segments = 0;
    self->ack_time_ns = 0;
    self->is_app_limited = 0;
    self->min_rtt_expired = 0;
    return self;
}

static void
CRateSample_dealloc(CRateSample *self)
{
    if (Py_TYPE(self) == &CRateSample_Type && rs_pool_len < RS_POOL_MAX)
        rs_pool[rs_pool_len++] = self;
    else
        Py_TYPE(self)->tp_free((PyObject *)self);
}

/* ------------------------------------------------------------ TxRecord */

static PyObject *
CTxRec_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {
        "seq", "end_seq", "segments", "sent_ns", "delivered_at_send",
        "delivered_time_at_send", "first_sent_at_send", "is_app_limited",
        "retransmitted", "sacked", "lost", "sacked_segments",
        "last_sent_ns", NULL,
    };
    long long seq, end_seq, segments, sent_ns, delivered_at_send,
        delivered_time_at_send, first_sent_at_send;
    long long sacked_segments = 0, last_sent_ns = -1;
    int is_app_limited = 0, retransmitted = 0, sacked = 0, lost = 0;
    if (!PyArg_ParseTupleAndKeywords(
            args, kwds, "LLLLLLL|ppppLL:TxRecord", kwlist,
            &seq, &end_seq, &segments, &sent_ns, &delivered_at_send,
            &delivered_time_at_send, &first_sent_at_send, &is_app_limited,
            &retransmitted, &sacked, &lost, &sacked_segments, &last_sent_ns))
        return NULL;
    CTxRec *self = txrec_alloc();
    if (self == NULL)
        return NULL;
    self->seq = seq;
    self->end_seq = end_seq;
    self->segments = segments;
    self->sent_ns = sent_ns;
    self->delivered_at_send = delivered_at_send;
    self->delivered_time_at_send = delivered_time_at_send;
    self->first_sent_at_send = first_sent_at_send;
    self->is_app_limited = (char)is_app_limited;
    self->retransmitted = (char)retransmitted;
    self->sacked = (char)sacked;
    self->lost = (char)lost;
    self->sacked_segments = sacked_segments;
    /* pure __post_init__: last_sent_ns < 0 means "same as sent_ns" */
    self->last_sent_ns = last_sent_ns < 0 ? sent_ns : last_sent_ns;
    return (PyObject *)self;
}

static PyObject *
CTxRec_get_length(CTxRec *self, void *closure)
{
    return PyLong_FromLongLong(self->end_seq - self->seq);
}

static PyObject *
CTxRec_repr(CTxRec *self)
{
    return PyUnicode_FromFormat(
        "<TxRecord seq=%lld end=%lld segs=%lld%s%s%s>",
        (long long)self->seq, (long long)self->end_seq,
        (long long)self->segments, self->sacked ? " sacked" : "",
        self->lost ? " lost" : "", self->retransmitted ? " retx" : "");
}

static PyGetSetDef CTxRec_getset[] = {
    {"length", (getter)CTxRec_get_length, NULL, "Payload bytes covered.",
     NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef CTxRec_members[] = {
    {"seq", T_LONGLONG, offsetof(CTxRec, seq), 0, NULL},
    {"end_seq", T_LONGLONG, offsetof(CTxRec, end_seq), 0, NULL},
    {"segments", T_LONGLONG, offsetof(CTxRec, segments), 0, NULL},
    {"sent_ns", T_LONGLONG, offsetof(CTxRec, sent_ns), 0, NULL},
    {"delivered_at_send", T_LONGLONG, offsetof(CTxRec, delivered_at_send),
     0, NULL},
    {"delivered_time_at_send", T_LONGLONG,
     offsetof(CTxRec, delivered_time_at_send), 0, NULL},
    {"first_sent_at_send", T_LONGLONG,
     offsetof(CTxRec, first_sent_at_send), 0, NULL},
    {"is_app_limited", T_BOOL, offsetof(CTxRec, is_app_limited), 0, NULL},
    {"retransmitted", T_BOOL, offsetof(CTxRec, retransmitted), 0, NULL},
    {"sacked", T_BOOL, offsetof(CTxRec, sacked), 0, NULL},
    {"lost", T_BOOL, offsetof(CTxRec, lost), 0, NULL},
    {"sacked_segments", T_LONGLONG, offsetof(CTxRec, sacked_segments), 0,
     NULL},
    {"last_sent_ns", T_LONGLONG, offsetof(CTxRec, last_sent_ns), 0, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CTxRec_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.TxRecord",
    .tp_basicsize = sizeof(CTxRec),
    .tp_dealloc = (destructor)CTxRec_dealloc,
    .tp_repr = (reprfunc)CTxRec_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Per-transmitted-packet bookkeeping (compiled kernel).",
    .tp_getset = CTxRec_getset,
    .tp_members = CTxRec_members,
    .tp_new = CTxRec_new,
};

/* ---------------------------------------------------------- RateSample */

static PyObject *
CRateSample_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {
        "delivered_bytes", "interval_ns", "rtt_ns", "delivered_total",
        "prior_delivered", "prior_inflight_segments",
        "newly_acked_segments", "newly_sacked_segments",
        "newly_lost_segments", "is_app_limited", "ack_time_ns",
        "min_rtt_expired", NULL,
    };
    long long delivered_bytes = 0, interval_ns = 0, rtt_ns = -1,
        delivered_total = 0, prior_delivered = 0,
        prior_inflight_segments = 0, newly_acked_segments = 0,
        newly_sacked_segments = 0, newly_lost_segments = 0, ack_time_ns = 0;
    int is_app_limited = 0, min_rtt_expired = 0;
    if (!PyArg_ParseTupleAndKeywords(
            args, kwds, "|LLLLLLLLLpLp:RateSample", kwlist,
            &delivered_bytes, &interval_ns, &rtt_ns, &delivered_total,
            &prior_delivered, &prior_inflight_segments,
            &newly_acked_segments, &newly_sacked_segments,
            &newly_lost_segments, &is_app_limited, &ack_time_ns,
            &min_rtt_expired))
        return NULL;
    CRateSample *self = ratesample_alloc();
    if (self == NULL)
        return NULL;
    self->delivered_bytes = delivered_bytes;
    self->interval_ns = interval_ns;
    self->rtt_ns = rtt_ns;
    self->delivered_total = delivered_total;
    self->prior_delivered = prior_delivered;
    self->prior_inflight_segments = prior_inflight_segments;
    self->newly_acked_segments = newly_acked_segments;
    self->newly_sacked_segments = newly_sacked_segments;
    self->newly_lost_segments = newly_lost_segments;
    self->ack_time_ns = ack_time_ns;
    self->is_app_limited = (char)is_app_limited;
    self->min_rtt_expired = (char)min_rtt_expired;
    return (PyObject *)self;
}

static PyObject *
CRateSample_get_valid(CRateSample *self, void *closure)
{
    return PyBool_FromLong(self->interval_ns > 0
                           && self->delivered_bytes > 0);
}

static PyObject *
CRateSample_get_delivery_rate_bps(CRateSample *self, void *closure)
{
    if (!(self->interval_ns > 0 && self->delivered_bytes > 0))
        return PyFloat_FromDouble(0.0);
    /* pure: self.delivered_bytes * 8 * 1e9 / self.interval_ns */
    return PyFloat_FromDouble((double)(self->delivered_bytes * 8) * 1e9
                              / (double)self->interval_ns);
}

static PyGetSetDef CRateSample_getset[] = {
    {"valid", (getter)CRateSample_get_valid, NULL,
     "True when the sample can produce a bandwidth estimate.", NULL},
    {"delivery_rate_bps", (getter)CRateSample_get_delivery_rate_bps, NULL,
     "Delivery rate of this sample in bits/s (0 when invalid).", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef CRateSample_members[] = {
    {"delivered_bytes", T_LONGLONG, offsetof(CRateSample, delivered_bytes),
     0, NULL},
    {"interval_ns", T_LONGLONG, offsetof(CRateSample, interval_ns), 0, NULL},
    {"rtt_ns", T_LONGLONG, offsetof(CRateSample, rtt_ns), 0, NULL},
    {"delivered_total", T_LONGLONG, offsetof(CRateSample, delivered_total),
     0, NULL},
    {"prior_delivered", T_LONGLONG, offsetof(CRateSample, prior_delivered),
     0, NULL},
    {"prior_inflight_segments", T_LONGLONG,
     offsetof(CRateSample, prior_inflight_segments), 0, NULL},
    {"newly_acked_segments", T_LONGLONG,
     offsetof(CRateSample, newly_acked_segments), 0, NULL},
    {"newly_sacked_segments", T_LONGLONG,
     offsetof(CRateSample, newly_sacked_segments), 0, NULL},
    {"newly_lost_segments", T_LONGLONG,
     offsetof(CRateSample, newly_lost_segments), 0, NULL},
    {"is_app_limited", T_BOOL, offsetof(CRateSample, is_app_limited), 0,
     NULL},
    {"ack_time_ns", T_LONGLONG, offsetof(CRateSample, ack_time_ns), 0, NULL},
    {"min_rtt_expired", T_BOOL, offsetof(CRateSample, min_rtt_expired), 0,
     NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CRateSample_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.RateSample",
    .tp_basicsize = sizeof(CRateSample),
    .tp_dealloc = (destructor)CRateSample_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "One per-ACK rate sample handed to the congestion control "
              "(compiled kernel).",
    .tp_getset = CRateSample_getset,
    .tp_members = CRateSample_members,
    .tp_new = CRateSample_new,
};

/* ---------------------------------------------------------- AckOutcome */

static PyObject *
CAckOutcome_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "", kwlist))
        return NULL;
    CAckOutcome *self = (CAckOutcome *)type->tp_alloc(type, 0);
    return (PyObject *)self;
}

static void
CAckOutcome_dealloc(CAckOutcome *self)
{
    PyObject_GC_UnTrack(self);
    Py_XDECREF(self->newest);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CAckOutcome_traverse(CAckOutcome *self, visitproc visit, void *arg)
{
    Py_VISIT(self->newest);
    return 0;
}

static int
CAckOutcome_clear(CAckOutcome *self)
{
    Py_CLEAR(self->newest);
    return 0;
}

static PyObject *
CAckOutcome_get_delivered_bytes(CAckOutcome *self, void *closure)
{
    return PyLong_FromLongLong(self->newly_acked_bytes
                               + self->newly_sacked_bytes);
}

static PyGetSetDef CAckOutcome_getset[] = {
    {"delivered_bytes", (getter)CAckOutcome_get_delivered_bytes, NULL,
     "Total bytes newly delivered (cumulative + selective).", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef CAckOutcome_members[] = {
    {"newly_acked_bytes", T_LONGLONG,
     offsetof(CAckOutcome, newly_acked_bytes), 0, NULL},
    {"newly_acked_segments", T_LONGLONG,
     offsetof(CAckOutcome, newly_acked_segments), 0, NULL},
    {"newly_sacked_bytes", T_LONGLONG,
     offsetof(CAckOutcome, newly_sacked_bytes), 0, NULL},
    {"newly_sacked_segments", T_LONGLONG,
     offsetof(CAckOutcome, newly_sacked_segments), 0, NULL},
    {"newly_lost_segments", T_LONGLONG,
     offsetof(CAckOutcome, newly_lost_segments), 0, NULL},
    {"newest_delivered_record", T_OBJECT, offsetof(CAckOutcome, newest), 0,
     "The most recently *sent* record that this ACK delivered."},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CAckOutcome_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.AckOutcome",
    .tp_basicsize = sizeof(CAckOutcome),
    .tp_dealloc = (destructor)CAckOutcome_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "What one ACK did to the scoreboard (compiled kernel).",
    .tp_traverse = (traverseproc)CAckOutcome_traverse,
    .tp_clear = (inquiry)CAckOutcome_clear,
    .tp_getset = CAckOutcome_getset,
    .tp_members = CAckOutcome_members,
    .tp_new = CAckOutcome_new,
    .tp_free = PyObject_GC_Del,
};

/* ----------------------------------------------- DeliveryRateEstimator */

static PyObject *
CDelivery_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"loop", "tracer", NULL};
    PyObject *loop = NULL, *tracer = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds,
                                     "|OO:DeliveryRateEstimator", kwlist,
                                     &loop, &tracer))
        return NULL;
    (void)loop;  /* routing key only; the estimator never schedules */
    if (reject_enabled_tracer(tracer, "DeliveryRateEstimator") < 0)
        return NULL;
    CDelivery *self = (CDelivery *)type->tp_alloc(type, 0);
    return (PyObject *)self;
}

/* shared with CScoreboard_process_ack */
static void
delivery_credit(CDelivery *self, int64_t nbytes, int64_t now_ns)
{
    self->delivered_bytes += nbytes;
    self->delivered_time_ns = now_ns;
    if (self->app_limited_until
        && self->delivered_bytes > self->app_limited_until)
        self->app_limited_until = 0;
}

static PyObject *
CDelivery_on_send(CDelivery *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"now_ns", "has_inflight", "app_limited", NULL};
    long long now_ns;
    int has_inflight, app_limited;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "Lpp:on_send", kwlist,
                                     &now_ns, &has_inflight, &app_limited))
        return NULL;
    if (!has_inflight) {
        self->first_sent_ns = now_ns;
        self->delivered_time_ns = now_ns;
    }
    if (app_limited)
        self->app_limited_until = self->delivered_bytes + 1;
    return Py_BuildValue(
        "{s:L, s:L, s:L, s:O}",
        "delivered_at_send", (long long)self->delivered_bytes,
        "delivered_time_at_send", (long long)self->delivered_time_ns,
        "first_sent_at_send", (long long)self->first_sent_ns,
        "is_app_limited", self->app_limited_until > 0 ? Py_True : Py_False);
}

static PyObject *
CDelivery_on_delivered(CDelivery *self, PyObject *const *args,
                       Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "on_delivered(nbytes, now_ns) takes 2 arguments");
        return NULL;
    }
    int64_t nbytes, now_ns;
    if (as_i64(args[0], &nbytes) < 0 || as_i64(args[1], &now_ns) < 0)
        return NULL;
    delivery_credit(self, nbytes, now_ns);
    Py_RETURN_NONE;
}

/* pure make_sample transcribed; fills a fresh default CRateSample */
static CRateSample *
delivery_make_sample(CDelivery *self, CTxRec *record, int64_t now_ns)
{
    CRateSample *rs = ratesample_alloc();
    if (rs == NULL)
        return NULL;
    rs->delivered_total = self->delivered_bytes;
    rs->prior_delivered = record->delivered_at_send;
    rs->ack_time_ns = now_ns;
    if (record->retransmitted)
        return rs;  /* invalid: interval_ns stays 0 (Karn's rule) */
    int64_t send_interval = record->sent_ns - record->first_sent_at_send;
    int64_t ack_interval = now_ns - record->delivered_time_at_send;
    rs->interval_ns = ack_interval > send_interval ? ack_interval
                                                   : send_interval;
    rs->delivered_bytes = self->delivered_bytes - record->delivered_at_send;
    rs->rtt_ns = now_ns - record->sent_ns;
    rs->is_app_limited = record->is_app_limited;
    /* mark the flight restart for subsequent sends */
    self->first_sent_ns = record->sent_ns;
    return rs;
}

static PyObject *
CDelivery_make_sample(CDelivery *self, PyObject *const *args,
                      Py_ssize_t nargs)
{
    if (nargs != 2 || !PyObject_TypeCheck(args[0], &CTxRec_Type)) {
        PyErr_SetString(PyExc_TypeError,
                        "make_sample(record, now_ns) takes a compiled "
                        "TxRecord and a time");
        return NULL;
    }
    int64_t now_ns;
    if (as_i64(args[1], &now_ns) < 0)
        return NULL;
    return (PyObject *)delivery_make_sample(self, (CTxRec *)args[0], now_ns);
}

static PyObject *
CDelivery_send_record(CDelivery *self, PyObject *const *args,
                      Py_ssize_t nargs)
{
    if (nargs != 6) {
        PyErr_SetString(PyExc_TypeError,
                        "send_record(now_ns, seq, end_seq, segments, "
                        "has_inflight, app_limited) takes 6 arguments");
        return NULL;
    }
    int64_t now_ns, seq, end_seq, segments;
    if (as_i64(args[0], &now_ns) < 0 || as_i64(args[1], &seq) < 0
        || as_i64(args[2], &end_seq) < 0 || as_i64(args[3], &segments) < 0)
        return NULL;
    int has_inflight = PyObject_IsTrue(args[4]);
    if (has_inflight < 0)
        return NULL;
    int app_limited = PyObject_IsTrue(args[5]);
    if (app_limited < 0)
        return NULL;
    /* pure on_send: a send with nothing in flight restarts the flight */
    if (!has_inflight) {
        self->first_sent_ns = now_ns;
        self->delivered_time_ns = now_ns;
    }
    if (app_limited)
        self->app_limited_until = self->delivered_bytes + 1;
    CTxRec *rec = txrec_alloc();
    if (rec == NULL)
        return NULL;
    rec->seq = seq;
    rec->end_seq = end_seq;
    rec->segments = segments;
    rec->sent_ns = now_ns;
    rec->delivered_at_send = self->delivered_bytes;
    rec->delivered_time_at_send = self->delivered_time_ns;
    rec->first_sent_at_send = self->first_sent_ns;
    rec->is_app_limited = self->app_limited_until > 0;
    rec->retransmitted = 0;
    rec->sacked = 0;
    rec->lost = 0;
    rec->sacked_segments = 0;
    rec->last_sent_ns = now_ns;
    return (PyObject *)rec;
}

static PyMethodDef CDelivery_methods[] = {
    {"on_send", (PyCFunction)(void (*)(void))CDelivery_on_send,
     METH_VARARGS | METH_KEYWORDS,
     "Update flight timing on transmit; returns snapshot kwargs."},
    {"on_delivered", (PyCFunction)(void (*)(void))CDelivery_on_delivered,
     METH_FASTCALL, "Credit newly (s)acked bytes."},
    {"make_sample", (PyCFunction)(void (*)(void))CDelivery_make_sample,
     METH_FASTCALL,
     "Build the rate sample for the newest (s)acked record."},
    {"send_record", (PyCFunction)(void (*)(void))CDelivery_send_record,
     METH_FASTCALL,
     "on_send + TxRecord construction fused into one call."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef CDelivery_members[] = {
    {"delivered_bytes", T_LONGLONG, offsetof(CDelivery, delivered_bytes),
     0, "Total bytes delivered (cumulatively acked or sacked)."},
    {"delivered_time_ns", T_LONGLONG,
     offsetof(CDelivery, delivered_time_ns), 0,
     "Time of the most recent delivery event."},
    {"first_sent_ns", T_LONGLONG, offsetof(CDelivery, first_sent_ns), 0,
     "Send time of the packet that started the current flight."},
    {"app_limited_until", T_LONGLONG,
     offsetof(CDelivery, app_limited_until), 0,
     "Samples are app-limited until `delivered` passes this (0 = off)."},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CDelivery_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.DeliveryRateEstimator",
    .tp_basicsize = sizeof(CDelivery),
    .tp_dealloc = (destructor)PyObject_Free,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Connection-wide delivered counters + sample generation "
              "(compiled kernel).",
    .tp_methods = CDelivery_methods,
    .tp_members = CDelivery_members,
    .tp_new = CDelivery_new,
};

/* ----------------------------------------------------------- Scoreboard */

/* record at logical index i (oldest first); only valid for i < r_len */
#define SB_REC(self, i) \
    ((CTxRec *)(self)->rec[((self)->r_head + (i)) % (self)->r_cap])

static PyObject *
CScoreboard_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"mss", "reorder_degree", "loop", "tracer",
                             NULL};
    PyObject *mss_obj, *rd_obj = NULL, *loop = NULL, *tracer = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|OOO:Scoreboard", kwlist,
                                     &mss_obj, &rd_obj, &loop, &tracer))
        return NULL;
    (void)loop;  /* routing key only; the scoreboard never schedules */
    int64_t mss, reorder_degree = 3;
    if (as_i64_trunc(mss_obj, &mss) < 0)
        return NULL;
    if (rd_obj != NULL && rd_obj != Py_None
        && as_i64_trunc(rd_obj, &reorder_degree) < 0)
        return NULL;
    if (mss < 1) {
        PyErr_SetString(PyExc_ValueError, "mss must be >= 1");
        return NULL;
    }
    if (reject_enabled_tracer(tracer, "Scoreboard") < 0)
        return NULL;
    CScoreboard *self = (CScoreboard *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->mss = mss;
    self->reorder_degree = reorder_degree;
    self->counters_dirty = 1;
    return (PyObject *)self;
}

static void
CScoreboard_dealloc(CScoreboard *self)
{
    PyObject_GC_UnTrack(self);
    ring_dealloc(self->rec, self->r_head, self->r_len, self->r_cap);
    self->rec = NULL;
    self->r_len = 0;
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CScoreboard_traverse(CScoreboard *self, visitproc visit, void *arg)
{
    RING_TRAVERSE(self->rec, self->r_head, self->r_len, self->r_cap);
    return 0;
}

static int
CScoreboard_clear(CScoreboard *self)
{
    ring_dealloc(self->rec, self->r_head, self->r_len, self->r_cap);
    self->rec = NULL;
    self->r_head = self->r_len = self->r_cap = 0;
    return 0;
}

static void
sb_refresh_counters(CScoreboard *self)
{
    if (!self->counters_dirty)
        return;
    int64_t packets = 0, sacked = 0, lost = 0, retrans = 0;
    for (Py_ssize_t i = 0; i < self->r_len; i++) {
        CTxRec *r = SB_REC(self, i);
        packets += r->segments;
        sacked += r->sacked_segments;
        if (!r->sacked) {
            int64_t remaining = r->segments - r->sacked_segments;
            if (r->lost)
                lost += remaining;
            if (r->retransmitted)
                retrans += remaining;
        }
    }
    self->c_packets = packets;
    self->c_sacked = sacked;
    self->c_lost = lost;
    self->c_retrans = retrans;
    self->counters_dirty = 0;
}

static PyObject *
CScoreboard_get_packets_out(CScoreboard *self, void *closure)
{
    sb_refresh_counters(self);
    return PyLong_FromLongLong(self->c_packets);
}

static PyObject *
CScoreboard_get_sacked_out(CScoreboard *self, void *closure)
{
    sb_refresh_counters(self);
    return PyLong_FromLongLong(self->c_sacked);
}

static PyObject *
CScoreboard_get_lost_out(CScoreboard *self, void *closure)
{
    sb_refresh_counters(self);
    return PyLong_FromLongLong(self->c_lost);
}

static PyObject *
CScoreboard_get_retrans_out(CScoreboard *self, void *closure)
{
    sb_refresh_counters(self);
    return PyLong_FromLongLong(self->c_retrans);
}

static PyObject *
CScoreboard_get_inflight_segments(CScoreboard *self, void *closure)
{
    sb_refresh_counters(self);
    int64_t inflight = self->c_packets - self->c_sacked - self->c_lost
                       + self->c_retrans;
    return PyLong_FromLongLong(inflight > 0 ? inflight : 0);
}

static PyObject *
CScoreboard_get_has_inflight(CScoreboard *self, void *closure)
{
    return PyBool_FromLong(self->r_len > 0);
}

static PyObject *
CScoreboard_get_records(CScoreboard *self, void *closure)
{
    PyObject *list = PyList_New(self->r_len);
    if (list == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < self->r_len; i++) {
        PyObject *r = (PyObject *)SB_REC(self, i);
        Py_INCREF(r);
        PyList_SET_ITEM(list, i, r);
    }
    PyObject *it = PyObject_GetIter(list);
    Py_DECREF(list);
    return it;
}

static PyObject *
CScoreboard_oldest_unacked_record(CScoreboard *self,
                                  PyObject *Py_UNUSED(ignored))
{
    if (self->r_len == 0)
        Py_RETURN_NONE;
    PyObject *r = (PyObject *)SB_REC(self, 0);
    Py_INCREF(r);
    return r;
}

static PyObject *
CScoreboard_on_transmit(CScoreboard *self, PyObject *record_obj)
{
    if (!PyObject_TypeCheck(record_obj, &CTxRec_Type)) {
        PyErr_SetString(PyExc_TypeError,
                        "compiled Scoreboard.on_transmit expects a "
                        "compiled TxRecord (mixed kernels?)");
        return NULL;
    }
    CTxRec *record = (CTxRec *)record_obj;
    self->counters_dirty = 1;
    if (self->r_len
        && record->seq < SB_REC(self, self->r_len - 1)->end_seq) {
        PyErr_SetString(PyExc_ValueError,
                        "out-of-order original transmission");
        return NULL;
    }
    if (ring_push(&self->rec, &self->r_head, &self->r_len, &self->r_cap,
                  record_obj, 0) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
CScoreboard_on_retransmit(CScoreboard *self, PyObject *record_obj)
{
    if (!PyObject_TypeCheck(record_obj, &CTxRec_Type)) {
        PyErr_SetString(PyExc_TypeError,
                        "compiled Scoreboard.on_retransmit expects a "
                        "compiled TxRecord");
        return NULL;
    }
    CTxRec *record = (CTxRec *)record_obj;
    self->counters_dirty = 1;
    record->retransmitted = 1;
    self->total_retransmitted_segments
        += record->segments - record->sacked_segments;
    Py_RETURN_NONE;
}

static PyObject *
CScoreboard_mark_all_lost(CScoreboard *self, PyObject *Py_UNUSED(ignored))
{
    self->counters_dirty = 1;
    int64_t newly_lost = 0;
    for (Py_ssize_t i = 0; i < self->r_len; i++) {
        CTxRec *record = SB_REC(self, i);
        if (record->sacked)
            continue;
        if (!record->lost) {
            record->lost = 1;
            newly_lost += record->segments - record->sacked_segments;
        }
        record->retransmitted = 0;
        self->have_lost = 1;
    }
    return PyLong_FromLongLong(newly_lost);
}

static PyObject *
CScoreboard_next_lost_record(CScoreboard *self, PyObject *Py_UNUSED(ignored))
{
    if (!self->have_lost)
        Py_RETURN_NONE;
    for (Py_ssize_t i = 0; i < self->r_len; i++) {
        CTxRec *record = SB_REC(self, i);
        if (record->lost && !record->retransmitted && !record->sacked) {
            Py_INCREF(record);
            return (PyObject *)record;
        }
    }
    /* fruitless scan: eligibility can only reappear via a new lost mark */
    self->have_lost = 0;
    Py_RETURN_NONE;
}

static PyObject *
CScoreboard_clear_loss_marks(CScoreboard *self, PyObject *Py_UNUSED(ignored))
{
    self->counters_dirty = 1;
    self->have_lost = 0;
    for (Py_ssize_t i = 0; i < self->r_len; i++) {
        CTxRec *record = SB_REC(self, i);
        record->lost = 0;
        record->retransmitted = 0;
    }
    Py_RETURN_NONE;
}

/* one ACK's aggregate effect, accumulated without a Python object */
typedef struct {
    int64_t acked_bytes;
    int64_t acked_segs;
    int64_t sacked_bytes;
    int64_t sacked_segs;
    int64_t lost_segs;
    CTxRec *newest;  /* owned or NULL */
} AckAccum;

static inline void
acc_note_delivered(AckAccum *acc, CTxRec *record)
{
    if (acc->newest == NULL || record->sent_ns >= acc->newest->sent_ns) {
        Py_INCREF(record);
        Py_XSETREF(acc->newest, record);
    }
}

/* _apply_cumulative + _apply_sacks + _detect_losses, transcribed */
static int
sb_apply_ack(CScoreboard *self, int64_t ack_seq, PyObject *blocks,
             AckAccum *acc)
{
    self->counters_dirty = 1;

    /* -- cumulative advance -- */
    if (ack_seq > self->snd_una) {
        while (self->r_len) {
            CTxRec *record = SB_REC(self, 0);
            if (record->seq >= ack_seq)
                break;
            if (record->end_seq <= ack_seq) {
                PyObject *popped = ring_pop(self->rec, &self->r_head,
                                            &self->r_len, self->r_cap);
                int64_t unsacked = record->segments
                                   - record->sacked_segments;
                acc->acked_segs += unsacked;
                int64_t acked = (record->end_seq - record->seq)
                                - record->sacked_segments * self->mss;
                if (acked > 0)
                    acc->acked_bytes += acked;
                acc_note_delivered(acc, record);
                Py_DECREF(popped);
            } else {
                /* partial ACK inside a super-packet: shrink the head */
                int64_t acked_bytes = ack_seq - record->seq;
                int64_t acked_segs = acked_bytes / self->mss;
                if (acked_segs <= 0)
                    break;
                int64_t chopped = acked_segs * self->mss;
                record->seq += chopped;
                record->segments -= acked_segs;
                if (record->sacked_segments > record->segments)
                    record->sacked_segments = record->segments;
                acc->acked_segs += acked_segs;
                acc->acked_bytes += chopped;
                acc_note_delivered(acc, record);
                break;
            }
        }
        if (ack_seq > self->snd_una)
            self->snd_una = ack_seq;
    }

    /* -- SACK blocks -- */
    if (blocks != Py_None) {
        PyObject *fast = PySequence_Fast(
            blocks, "sack_blocks must be a sequence of (start, end)");
        if (fast == NULL)
            return -1;
        Py_ssize_t nblocks = PySequence_Fast_GET_SIZE(fast);
        PyObject **items = PySequence_Fast_ITEMS(fast);
        for (Py_ssize_t bi = 0; bi < nblocks; bi++) {
            PyObject *block = items[bi];
            int64_t start, end;
            if (!PyTuple_Check(block) || PyTuple_GET_SIZE(block) != 2) {
                PyErr_SetString(PyExc_TypeError,
                                "each SACK block must be a (start, end) "
                                "tuple");
                Py_DECREF(fast);
                return -1;
            }
            if (as_i64(PyTuple_GET_ITEM(block, 0), &start) < 0
                || as_i64(PyTuple_GET_ITEM(block, 1), &end) < 0) {
                Py_DECREF(fast);
                return -1;
            }
            if (end <= self->snd_una)
                continue;
            if (end > self->highest_sacked)
                self->highest_sacked = end;
            for (Py_ssize_t i = 0; i < self->r_len; i++) {
                CTxRec *record = SB_REC(self, i);
                if (record->seq >= end)
                    break;
                int64_t lo = record->seq > start ? record->seq : start;
                int64_t hi = record->end_seq < end ? record->end_seq : end;
                int64_t overlap = hi - lo;
                if (overlap <= 0)
                    continue;
                /* pure: min(segments, -(-overlap // mss)) */
                int64_t covered = (overlap + self->mss - 1) / self->mss;
                if (covered > record->segments)
                    covered = record->segments;
                int64_t newly = covered - record->sacked_segments;
                if (newly <= 0)
                    continue;
                record->sacked_segments = covered;
                acc->sacked_segs += newly;
                acc->sacked_bytes += newly * self->mss;
                if (record->sacked_segments >= record->segments) {
                    record->sacked = 1;
                    record->lost = 0;
                }
                acc_note_delivered(acc, record);
            }
        }
        Py_DECREF(fast);
    }

    /* -- FACK-style loss detection -- */
    if (self->highest_sacked > self->snd_una) {
        int64_t threshold = self->highest_sacked
                            - self->reorder_degree * self->mss;
        for (Py_ssize_t i = 0; i < self->r_len; i++) {
            CTxRec *record = SB_REC(self, i);
            if (record->seq >= threshold)
                break;
            if (record->sacked || record->lost || record->retransmitted)
                continue;
            if (record->end_seq > threshold)
                continue;
            record->lost = 1;
            self->have_lost = 1;
            acc->lost_segs += record->segments - record->sacked_segments;
        }
    }
    return 0;
}

static PyObject *
CScoreboard_on_ack(CScoreboard *self, PyObject *const *args,
                   Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "on_ack(ack_seq, sack_blocks) takes 2 arguments");
        return NULL;
    }
    int64_t ack_seq;
    if (as_i64(args[0], &ack_seq) < 0)
        return NULL;
    AckAccum acc = {0, 0, 0, 0, 0, NULL};
    if (sb_apply_ack(self, ack_seq, args[1], &acc) < 0) {
        Py_XDECREF(acc.newest);
        return NULL;
    }
    CAckOutcome *out = PyObject_GC_New(CAckOutcome, &CAckOutcome_Type);
    if (out == NULL) {
        Py_XDECREF(acc.newest);
        return NULL;
    }
    out->newly_acked_bytes = acc.acked_bytes;
    out->newly_acked_segments = acc.acked_segs;
    out->newly_sacked_bytes = acc.sacked_bytes;
    out->newly_sacked_segments = acc.sacked_segs;
    out->newly_lost_segments = acc.lost_segs;
    out->newest = (PyObject *)acc.newest;  /* transfer */
    PyObject_GC_Track(out);
    return (PyObject *)out;
}

/* The per-ACK seam: on_ack + delivered-credit + rate-sample construction
 * in one call. Mirrors Scoreboard.process_ack on the pure class. */
static PyObject *
CScoreboard_process_ack(CScoreboard *self, PyObject *const *args,
                        Py_ssize_t nargs)
{
    if (nargs != 6) {
        PyErr_SetString(PyExc_TypeError,
                        "process_ack(delivery, ack_seq, sack_blocks, "
                        "now_ns, prior_inflight, min_rtt_expired) takes "
                        "6 arguments");
        return NULL;
    }
    if (!PyObject_TypeCheck(args[0], &CDelivery_Type)) {
        PyErr_SetString(PyExc_TypeError,
                        "compiled Scoreboard.process_ack expects a "
                        "compiled DeliveryRateEstimator (mixed kernels?)");
        return NULL;
    }
    CDelivery *d = (CDelivery *)args[0];
    int64_t ack_seq, now_ns, prior_inflight;
    if (as_i64(args[1], &ack_seq) < 0 || as_i64(args[3], &now_ns) < 0
        || as_i64(args[4], &prior_inflight) < 0)
        return NULL;
    int min_rtt_expired = PyObject_IsTrue(args[5]);
    if (min_rtt_expired < 0)
        return NULL;

    AckAccum acc = {0, 0, 0, 0, 0, NULL};
    if (sb_apply_ack(self, ack_seq, args[2], &acc) < 0) {
        Py_XDECREF(acc.newest);
        return NULL;
    }
    int64_t delivered = acc.acked_bytes + acc.sacked_bytes;
    if (delivered > 0)
        delivery_credit(d, delivered, now_ns);

    CRateSample *rs;
    if (acc.newest != NULL && delivered > 0) {
        rs = delivery_make_sample(d, acc.newest, now_ns);
    } else {
        rs = ratesample_alloc();
        if (rs != NULL) {
            rs->delivered_total = d->delivered_bytes;
            rs->ack_time_ns = now_ns;
        }
    }
    Py_XDECREF(acc.newest);
    if (rs == NULL)
        return NULL;
    rs->prior_inflight_segments = prior_inflight;
    rs->newly_acked_segments = acc.acked_segs;
    rs->newly_sacked_segments = acc.sacked_segs;
    rs->newly_lost_segments = acc.lost_segs;
    rs->min_rtt_expired = (char)min_rtt_expired;

    PyObject *nb = PyLong_FromLongLong(acc.acked_bytes);
    if (nb == NULL) {
        Py_DECREF(rs);
        return NULL;
    }
    PyObject *tup = PyTuple_New(2);
    if (tup == NULL) {
        Py_DECREF(rs);
        Py_DECREF(nb);
        return NULL;
    }
    PyTuple_SET_ITEM(tup, 0, (PyObject *)rs);
    PyTuple_SET_ITEM(tup, 1, nb);
    return tup;
}

static PyMethodDef CScoreboard_methods[] = {
    {"on_transmit", (PyCFunction)CScoreboard_on_transmit, METH_O,
     "Register a freshly sent record (sequences must be in order)."},
    {"on_retransmit", (PyCFunction)CScoreboard_on_retransmit, METH_O,
     "Account a retransmission of a previously lost record."},
    {"on_ack", (PyCFunction)(void (*)(void))CScoreboard_on_ack,
     METH_FASTCALL, "Apply one ACK; returns the AckOutcome delta."},
    {"process_ack", (PyCFunction)(void (*)(void))CScoreboard_process_ack,
     METH_FASTCALL,
     "on_ack + delivered credit + RateSample in one call; returns "
     "(rate_sample, newly_acked_bytes)."},
    {"mark_all_lost", (PyCFunction)CScoreboard_mark_all_lost, METH_NOARGS,
     "RTO: mark every outstanding, un-SACKed segment lost."},
    {"next_lost_record", (PyCFunction)CScoreboard_next_lost_record,
     METH_NOARGS, "First record marked lost and not yet retransmitted."},
    {"clear_loss_marks", (PyCFunction)CScoreboard_clear_loss_marks,
     METH_NOARGS, "Forget loss/retransmission marks (recovery ended)."},
    {"oldest_unacked_record", (PyCFunction)CScoreboard_oldest_unacked_record,
     METH_NOARGS, "The record at snd_una (None when everything is acked)."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef CScoreboard_getset[] = {
    {"packets_out", (getter)CScoreboard_get_packets_out, NULL,
     "Segments sent and not yet cumulatively acked.", NULL},
    {"sacked_out", (getter)CScoreboard_get_sacked_out, NULL,
     "Segments selectively acked.", NULL},
    {"lost_out", (getter)CScoreboard_get_lost_out, NULL,
     "Segments marked lost and not (re)delivered.", NULL},
    {"retrans_out", (getter)CScoreboard_get_retrans_out, NULL,
     "Retransmitted segments still outstanding.", NULL},
    {"inflight_segments", (getter)CScoreboard_get_inflight_segments, NULL,
     "Segments considered in the network (tcp_packets_in_flight).", NULL},
    {"has_inflight", (getter)CScoreboard_get_has_inflight, NULL,
     "True while any record is outstanding.", NULL},
    {"records", (getter)CScoreboard_get_records, NULL,
     "Outstanding records, lowest sequence first (read-only view).", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef CScoreboard_members[] = {
    {"mss", T_LONGLONG, offsetof(CScoreboard, mss), READONLY, NULL},
    {"reorder_degree", T_LONGLONG, offsetof(CScoreboard, reorder_degree),
     READONLY, NULL},
    {"snd_una", T_LONGLONG, offsetof(CScoreboard, snd_una), 0, NULL},
    {"highest_sacked", T_LONGLONG, offsetof(CScoreboard, highest_sacked),
     0, NULL},
    {"total_retransmitted_segments", T_LONGLONG,
     offsetof(CScoreboard, total_retransmitted_segments), 0, NULL},
    {"_have_lost", T_BOOL, offsetof(CScoreboard, have_lost), 0,
     "next_lost_record() fast-path flag (diagnostic)."},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CScoreboard_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.Scoreboard",
    .tp_basicsize = sizeof(CScoreboard),
    .tp_dealloc = (destructor)CScoreboard_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Sender-side SACK scoreboard and loss detection "
              "(compiled kernel).",
    .tp_traverse = (traverseproc)CScoreboard_traverse,
    .tp_clear = (inquiry)CScoreboard_clear,
    .tp_methods = CScoreboard_methods,
    .tp_getset = CScoreboard_getset,
    .tp_members = CScoreboard_members,
    .tp_new = CScoreboard_new,
    .tp_free = PyObject_GC_Del,
};

/* inflight for C callers (the BBR model reads it several times per ACK) */
static int64_t
sb_inflight(CScoreboard *sb)
{
    sb_refresh_counters(sb);
    int64_t v = sb->c_packets - sb->c_sacked - sb->c_lost + sb->c_retrans;
    return v > 0 ? v : 0;
}

/* ------------------------------------------------- RTT filters --------
 *
 * repro.tcp.rtt transcriptions. RFC 6298 smoothing uses Python
 * `int(...)` on the float EWMA terms — C double→int64 casts truncate
 * identically. All other state is integer nanoseconds.
 */

#define NS_MSEC 1000000LL
#define NS_SEC 1000000000LL

typedef struct {
    PyObject_HEAD
    int64_t min_rto_ns;
    int64_t max_rto_ns;
    int64_t srtt_ns;
    int64_t rttvar_ns;
    int64_t latest_rtt_ns;
    int64_t samples;
    char has_srtt;
    char has_latest;
} CRtt;

typedef struct {
    PyObject_HEAD
    int64_t window_ns;
    int64_t min_ns;
    int64_t stamp_ns;
    char has_min;
} CMinRtt;

static PyTypeObject CRtt_Type;
static PyTypeObject CMinRtt_Type;

static void
rtt_update_c(CRtt *self, int64_t rtt_ns)
{
    if (rtt_ns <= 0)
        return;
    self->latest_rtt_ns = rtt_ns;
    self->has_latest = 1;
    self->samples += 1;
    if (!self->has_srtt) {
        self->srtt_ns = rtt_ns;
        self->rttvar_ns = rtt_ns / 2;
        self->has_srtt = 1;
        return;
    }
    int64_t delta = self->srtt_ns - rtt_ns;
    if (delta < 0)
        delta = -delta;
    /* pure: int((1 - BETA) * rttvar + BETA * delta), BETA = 1/4 */
    self->rttvar_ns = (int64_t)((1.0 - 0.25) * (double)self->rttvar_ns
                                + 0.25 * (double)delta);
    /* pure: int((1 - ALPHA) * srtt + ALPHA * rtt), ALPHA = 1/8 */
    self->srtt_ns = (int64_t)((1.0 - 0.125) * (double)self->srtt_ns
                              + 0.125 * (double)rtt_ns);
}

static int64_t
rtt_rto_c(CRtt *self)
{
    if (!self->has_srtt)
        return NS_SEC; /* RFC 6298 initial RTO of 1 s */
    int64_t var = 4 * self->rttvar_ns;
    if (var < NS_MSEC)
        var = NS_MSEC;
    int64_t rto = self->srtt_ns + var;
    if (rto > self->max_rto_ns)
        rto = self->max_rto_ns;
    if (rto < self->min_rto_ns)
        rto = self->min_rto_ns;
    return rto;
}

static PyObject *
CRtt_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"min_rto_ns", "max_rto_ns", "loop", "tracer",
                             NULL};
    PyObject *min_obj = NULL, *max_obj = NULL, *loop = NULL, *tracer = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|OOOO:RttEstimator",
                                     kwlist, &min_obj, &max_obj, &loop,
                                     &tracer))
        return NULL;
    (void)loop;
    int64_t min_rto = 200 * NS_MSEC, max_rto = 120 * NS_SEC;
    if (min_obj != NULL && as_i64_trunc(min_obj, &min_rto) < 0)
        return NULL;
    if (max_obj != NULL && as_i64_trunc(max_obj, &max_rto) < 0)
        return NULL;
    if (reject_enabled_tracer(tracer, "RttEstimator") < 0)
        return NULL;
    CRtt *self = (CRtt *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->min_rto_ns = min_rto;
    self->max_rto_ns = max_rto;
    return (PyObject *)self;
}

static PyObject *
CRtt_update(CRtt *self, PyObject *arg)
{
    int64_t rtt_ns;
    if (as_i64(arg, &rtt_ns) < 0)
        return NULL;
    rtt_update_c(self, rtt_ns);
    Py_RETURN_NONE;
}

static PyObject *
CRtt_get_srtt(CRtt *self, void *closure)
{
    if (!self->has_srtt)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(self->srtt_ns);
}

static PyObject *
CRtt_get_latest(CRtt *self, void *closure)
{
    if (!self->has_latest)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(self->latest_rtt_ns);
}

static PyObject *
CRtt_get_rto(CRtt *self, void *closure)
{
    return PyLong_FromLongLong(rtt_rto_c(self));
}

static PyMethodDef CRtt_methods[] = {
    {"update", (PyCFunction)CRtt_update, METH_O,
     "Fold one RTT measurement into the estimator."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef CRtt_getset[] = {
    {"srtt_ns", (getter)CRtt_get_srtt, NULL,
     "Smoothed RTT (None before the first sample).", NULL},
    {"latest_rtt_ns", (getter)CRtt_get_latest, NULL,
     "Most recent RTT sample (None before the first).", NULL},
    {"rto_ns", (getter)CRtt_get_rto, NULL,
     "Current retransmission timeout.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef CRtt_members[] = {
    {"min_rto_ns", T_LONGLONG, offsetof(CRtt, min_rto_ns), 0, NULL},
    {"max_rto_ns", T_LONGLONG, offsetof(CRtt, max_rto_ns), 0, NULL},
    {"rttvar_ns", T_LONGLONG, offsetof(CRtt, rttvar_ns), 0, NULL},
    {"samples", T_LONGLONG, offsetof(CRtt, samples), 0, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CRtt_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.RttEstimator",
    .tp_basicsize = sizeof(CRtt),
    .tp_dealloc = (destructor)PyObject_Free,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "SRTT / RTTVAR / RTO per RFC 6298 (compiled kernel).",
    .tp_methods = CRtt_methods,
    .tp_getset = CRtt_getset,
    .tp_members = CRtt_members,
    .tp_new = CRtt_new,
};

static int
minrtt_expired_c(CMinRtt *self, int64_t now_ns)
{
    return self->has_min && now_ns - self->stamp_ns > self->window_ns;
}

static int
minrtt_update_c(CMinRtt *self, int64_t rtt_ns, int64_t now_ns)
{
    if (rtt_ns <= 0)
        return 0;
    int expired = self->has_min
                  && now_ns - self->stamp_ns > self->window_ns;
    if (!self->has_min || expired || rtt_ns <= self->min_ns) {
        self->min_ns = rtt_ns;
        self->stamp_ns = now_ns;
        self->has_min = 1;
        return 1;
    }
    return 0;
}

static PyObject *
CMinRtt_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"window_ns", "loop", "tracer", NULL};
    PyObject *win_obj = NULL, *loop = NULL, *tracer = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|OOO:MinRttFilter",
                                     kwlist, &win_obj, &loop, &tracer))
        return NULL;
    (void)loop;
    int64_t window_ns = 10 * NS_SEC;
    if (win_obj != NULL && as_i64_trunc(win_obj, &window_ns) < 0)
        return NULL;
    if (reject_enabled_tracer(tracer, "MinRttFilter") < 0)
        return NULL;
    CMinRtt *self = (CMinRtt *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->window_ns = window_ns;
    return (PyObject *)self;
}

static PyObject *
CMinRtt_update(CMinRtt *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "update(rtt_ns, now_ns) takes 2 arguments");
        return NULL;
    }
    int64_t rtt_ns, now_ns;
    if (as_i64(args[0], &rtt_ns) < 0 || as_i64(args[1], &now_ns) < 0)
        return NULL;
    return PyBool_FromLong(minrtt_update_c(self, rtt_ns, now_ns));
}

static PyObject *
CMinRtt_expired(CMinRtt *self, PyObject *arg)
{
    int64_t now_ns;
    if (as_i64(arg, &now_ns) < 0)
        return NULL;
    return PyBool_FromLong(minrtt_expired_c(self, now_ns));
}

static PyObject *
CMinRtt_get_min(CMinRtt *self, void *closure)
{
    if (!self->has_min)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(self->min_ns);
}

static PyObject *
CMinRtt_get_stamp(CMinRtt *self, void *closure)
{
    return PyLong_FromLongLong(self->stamp_ns);
}

static PyMethodDef CMinRtt_methods[] = {
    {"update", (PyCFunction)(void (*)(void))CMinRtt_update, METH_FASTCALL,
     "Offer a sample; returns True if it became the new minimum."},
    {"expired", (PyCFunction)CMinRtt_expired, METH_O,
     "True when the minimum is older than the window."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef CMinRtt_getset[] = {
    {"min_rtt_ns", (getter)CMinRtt_get_min, NULL,
     "Current filtered minimum (None before any sample).", NULL},
    {"stamp_ns", (getter)CMinRtt_get_stamp, NULL,
     "Time the current minimum was recorded.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef CMinRtt_members[] = {
    {"window_ns", T_LONGLONG, offsetof(CMinRtt, window_ns), 0, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CMinRtt_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.MinRttFilter",
    .tp_basicsize = sizeof(CMinRtt),
    .tp_dealloc = (destructor)PyObject_Free,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Windowed minimum-RTT filter (compiled kernel).",
    .tp_methods = CMinRtt_methods,
    .tp_getset = CMinRtt_getset,
    .tp_members = CMinRtt_members,
    .tp_new = CMinRtt_new,
};

/* ------------------------------------------------- BBR model ---------
 *
 * repro.cc.bbr.Bbr's per-ACK model update, transcribed. The model holds
 * direct references to the connection's compiled scoreboard, delivery
 * estimator, min-RTT filter, and loop, so one cong_control() call runs
 * the whole state machine without touching the interpreter except for
 * the two attributes that live on Python objects (conn.cwnd and
 * pacer.rate_bps). Float expressions keep the pure module's evaluation
 * order; the two divisions whose integer numerators can exceed 2^53
 * (long-term bandwidth sampling, initial pacing rate) go through
 * PyNumber_TrueDivide so the correctly-rounded CPython result is
 * reproduced bit-for-bit.
 */

#define BBR_HIGH_GAIN (2885.0 / 1000.0)
#define BBR_DRAIN_GAIN (1000.0 / 2885.0)
#define BBR_CWND_GAIN 2.0
#define BBR_CYCLE_LEN 8
#define BBR_BW_WINDOW_RTTS (BBR_CYCLE_LEN + 2)
#define BBR_MIN_TARGET_CWND 4
#define BBR_PROBE_RTT_DURATION_NS (200 * NS_MSEC)
#define BBR_FULL_BW_THRESHOLD 1.25
#define BBR_FULL_BW_COUNT 3
#define BBR_PACING_MARGIN 0.99
#define BBR_LT_INTERVAL_MIN_RTTS 4
#define BBR_LT_LOSS_THRESH 0.20
#define BBR_LT_BW_RATIO 0.125
#define BBR_LT_BW_DIFF_BPS (4000 * 8)
#define BBR_LT_BW_MAX_RTTS 48

static const double BBR_GAIN_CYCLE[BBR_CYCLE_LEN] = {
    1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0,
};

enum {
    BBR_STARTUP = 0,
    BBR_DRAIN = 1,
    BBR_PROBE_BW = 2,
    BBR_PROBE_RTT = 3,
};

static PyObject *bbr_mode_strs[4]; /* interned mode names, set in init */

/* kernel minmax.c windowed max (repro.cc.minmax.WindowedMaxFilter) */
typedef struct {
    int64_t t;
    double v;
} MMSample;

typedef struct {
    PyObject_HEAD
    PyObject *conn;        /* owned; cwnd attribute get/set */
    PyObject *pacer;       /* owned; rate_bps attribute reads */
    CScoreboard *sb;       /* owned */
    CDelivery *delivery;   /* owned */
    CMinRtt *minrtt;       /* owned */
    CLoop *loop;           /* owned */
    int64_t mss;
    int64_t initial_cwnd;
    int64_t init_cwnd_bytes;
    int64_t gso_max_bytes;
    int64_t flow_id;
    char enable_lt_bw;
    int mode;
    MMSample mm[3];
    char mm_have;
    int64_t mm_window;
    int64_t rtt_cnt;
    int64_t next_rtt_delivered;
    char round_start;
    double pacing_gain;
    double cwnd_gain;
    double full_bw;
    int64_t full_bw_cnt;
    char full_bw_reached;
    int64_t cycle_idx;
    int64_t cycle_stamp_ns;
    int64_t probe_rtt_done_stamp;
    char has_probe_rtt_done;
    char probe_rtt_round_done;
    int64_t prior_cwnd;
    char packet_conservation;
    double rate_bps;
    char lt_is_sampling;
    int64_t lt_rtt_cnt;
    char lt_use_bw;
    double lt_bw;
    int64_t lt_last_delivered;
    int64_t lt_last_lost;
    int64_t lt_last_stamp_ns;
    int64_t lost_total;
} CBbr;

static PyTypeObject CBbr_Type;

static double
mm_value(CBbr *b)
{
    return b->mm_have ? b->mm[0].v : 0.0;
}

static void
mm_reset(CBbr *b, int64_t t, double v)
{
    b->mm[0].t = b->mm[1].t = b->mm[2].t = t;
    b->mm[0].v = b->mm[1].v = b->mm[2].v = v;
    b->mm_have = 1;
}

static void
mm_update(CBbr *b, int64_t t, double v)
{
    if (!b->mm_have || v >= b->mm[0].v || t - b->mm[2].t > b->mm_window) {
        mm_reset(b, t, v);
        return;
    }
    if (v >= b->mm[1].v) {
        b->mm[2].t = b->mm[1].t = t;
        b->mm[2].v = b->mm[1].v = v;
    } else if (v >= b->mm[2].v) {
        b->mm[2].t = t;
        b->mm[2].v = v;
    }
    /* _subwin_update */
    int64_t dt = t - b->mm[0].t;
    if (dt > b->mm_window) {
        /* best expired: promote and back-fill the tail */
        b->mm[0] = b->mm[1];
        b->mm[1] = b->mm[2];
        b->mm[2].t = t;
        b->mm[2].v = v;
        if (t - b->mm[0].t > b->mm_window) {
            b->mm[0] = b->mm[1];
            b->mm[1] = b->mm[2];
            b->mm[2].t = t;
            b->mm[2].v = v;
        }
    } else if (b->mm[1].t == b->mm[0].t && dt > b->mm_window / 4) {
        b->mm[2].t = b->mm[1].t = t;
        b->mm[2].v = b->mm[1].v = v;
    } else if (b->mm[2].t == b->mm[1].t && dt > b->mm_window / 2) {
        b->mm[2].t = t;
        b->mm[2].v = v;
    }
}

static double
bbr_bw_bps(CBbr *b)
{
    return b->lt_use_bw ? b->lt_bw : mm_value(b);
}

/* conn.cwnd round-trips (the only hot Python attribute) */
static int64_t
bbr_get_cwnd(CBbr *b, int *err)
{
    PyObject *v = PyObject_GetAttr(b->conn, s_cwnd);
    if (v == NULL) {
        *err = 1;
        return 0;
    }
    int64_t cwnd;
    if (as_i64(v, &cwnd) < 0) {
        Py_DECREF(v);
        *err = 1;
        return 0;
    }
    Py_DECREF(v);
    return cwnd;
}

static int
bbr_set_cwnd(CBbr *b, int64_t cwnd)
{
    PyObject *v = PyLong_FromLongLong(cwnd);
    if (v == NULL)
        return -1;
    int r = PyObject_SetAttr(b->conn, s_cwnd, v);
    Py_DECREF(v);
    return r;
}

static int64_t
bbr_min_rtt_or_msec(CBbr *b)
{
    /* pure: conn.min_rtt_ns or MSEC (filter minima are always > 0) */
    return b->minrtt->has_min ? b->minrtt->min_ns : NS_MSEC;
}

static int64_t
bbr_bdp_segments(CBbr *b, double gain)
{
    if (!b->minrtt->has_min)
        return b->initial_cwnd;
    double bw = bbr_bw_bps(b);
    double bdp_bytes = bw / 8.0 * ((double)b->minrtt->min_ns / 1e9);
    int64_t segs = (int64_t)(gain * bdp_bytes / (double)b->mss);
    return segs > BBR_MIN_TARGET_CWND ? segs : BBR_MIN_TARGET_CWND;
}

/* conn.send_quantum_bytes // mss, transcribed (tcp.segmentation) */
static int64_t
bbr_target_cwnd(CBbr *b, double gain, int *err)
{
    int64_t cwnd = bbr_bdp_segments(b, gain);
    PyObject *rate_obj = PyObject_GetAttr(b->pacer, s_rate_bps);
    if (rate_obj == NULL) {
        *err = 1;
        return 0;
    }
    double prate = PyFloat_AsDouble(rate_obj);
    Py_DECREF(rate_obj);
    if (prate == -1.0 && PyErr_Occurred()) {
        *err = 1;
        return 0;
    }
    int64_t quantum;
    if (prate <= 0.0) {
        quantum = b->gso_max_bytes;
    } else {
        /* tso_autosize_bytes(prate, mss, cc.min_tso_segs, gso_max) —
         * min_tso_segs reads the model's *fresh* rate (updated by
         * _set_pacing_rate earlier in this ACK), while the autosize
         * rate is the pacer's value from the *previous* ACK, exactly
         * as the pure property evaluates them. */
        double rate_bytes_per_sec = prate / 8.0;
        int64_t goal = rate_bytes_per_sec < 9.0e18
                           ? (int64_t)rate_bytes_per_sec
                           : INT64_MAX;
        goal >>= 10; /* PACING_SHIFT */
        int64_t floor_segs = b->rate_bps < 1.2e9 ? 2 : 4;
        int64_t segs = goal / b->mss;
        if (segs < floor_segs)
            segs = floor_segs;
        int64_t nbytes = segs * b->mss;
        int64_t max_segs = b->gso_max_bytes / b->mss;
        if (max_segs < 1)
            max_segs = 1;
        int64_t cap = max_segs * b->mss;
        quantum = nbytes < cap ? nbytes : cap;
    }
    int64_t tso_segs = quantum / b->mss;
    if (tso_segs < 1)
        tso_segs = 1;
    cwnd += 3 * tso_segs;
    if (b->mode == BBR_PROBE_BW && b->cycle_idx == 0)
        cwnd += 2;
    return cwnd;
}

static void
bbr_enter_probe_bw(CBbr *b, int64_t now)
{
    b->mode = BBR_PROBE_BW;
    b->cwnd_gain = BBR_CWND_GAIN;
    /* deterministic phase pick, skipping the 0.75 drain phase */
    int64_t idx = (b->flow_id * 5) % (BBR_CYCLE_LEN - 1);
    if (idx >= 1)
        idx += 1;
    b->cycle_idx = idx;
    b->cycle_stamp_ns = now;
    b->pacing_gain = BBR_GAIN_CYCLE[idx];
}

static int
bbr_is_next_cycle_phase(CBbr *b, CRateSample *rs, int64_t now)
{
    int64_t min_rtt = bbr_min_rtt_or_msec(b);
    int is_full_length = now - b->cycle_stamp_ns > min_rtt;
    double gain = b->pacing_gain;
    if (gain == 1.0)
        return is_full_length;
    int64_t inflight = rs->prior_inflight_segments;
    if (gain > 1.0)
        return is_full_length
               && (rs->newly_lost_segments > 0
                   || inflight >= bbr_bdp_segments(b, gain));
    return is_full_length || inflight <= bbr_bdp_segments(b, 1.0);
}

static void
bbr_lt_reset(CBbr *b)
{
    b->lt_is_sampling = 0;
    b->lt_use_bw = 0;
    b->lt_bw = 0.0;
    b->lt_rtt_cnt = 0;
}

static void
bbr_lt_reset_interval(CBbr *b, int64_t now)
{
    b->lt_last_stamp_ns = now;
    b->lt_last_delivered = b->delivery->delivered_bytes;
    b->lt_last_lost = b->lost_total;
    b->lt_rtt_cnt = 0;
}

/* exact int/int -> double division matching CPython int.__truediv__
 * for numerators that may not fit a double exactly */
static int
py_true_divide(int64_t num_a, int64_t num_b, int64_t den, double *out)
{
    PyObject *a = PyLong_FromLongLong(num_a);
    PyObject *bl = PyLong_FromLongLong(num_b);
    PyObject *d = PyLong_FromLongLong(den);
    PyObject *num = NULL, *q = NULL;
    int rc = -1;
    if (a != NULL && bl != NULL && d != NULL
        && (num = PyNumber_Multiply(a, bl)) != NULL
        && (q = PyNumber_TrueDivide(num, d)) != NULL) {
        *out = PyFloat_AsDouble(q);
        rc = PyErr_Occurred() ? -1 : 0;
    }
    Py_XDECREF(a);
    Py_XDECREF(bl);
    Py_XDECREF(d);
    Py_XDECREF(num);
    Py_XDECREF(q);
    return rc;
}

static int
bbr_lt_sampling(CBbr *b, CRateSample *rs, int64_t now)
{
    if (!b->enable_lt_bw)
        return 0;
    if (b->lt_use_bw) {
        if (b->mode == BBR_PROBE_BW && b->round_start) {
            b->lt_rtt_cnt += 1;
            if (b->lt_rtt_cnt > BBR_LT_BW_MAX_RTTS) {
                bbr_lt_reset(b);
                b->full_bw_reached = 0; /* re-probe */
            }
        }
        return 0;
    }
    if (!b->lt_is_sampling) {
        if (rs->newly_lost_segments == 0)
            return 0;
        bbr_lt_reset_interval(b, now);
        b->lt_is_sampling = 1;
    }
    if (rs->is_app_limited) {
        bbr_lt_reset(b);
        return 0;
    }
    if (b->round_start)
        b->lt_rtt_cnt += 1;
    if (b->lt_rtt_cnt < BBR_LT_INTERVAL_MIN_RTTS)
        return 0;
    if (b->lt_rtt_cnt > 4 * BBR_LT_INTERVAL_MIN_RTTS) {
        bbr_lt_reset(b);
        return 0;
    }
    if (rs->newly_lost_segments == 0)
        return 0;

    int64_t lost = b->lost_total - b->lt_last_lost;
    int64_t delivered_segs =
        (b->delivery->delivered_bytes - b->lt_last_delivered) / b->mss;
    if (delivered_segs < 1)
        delivered_segs = 1;
    if ((double)lost / (double)delivered_segs < BBR_LT_LOSS_THRESH)
        return 0;
    int64_t interval_ns = now - b->lt_last_stamp_ns;
    if (interval_ns < bbr_min_rtt_or_msec(b))
        return 0;
    double bw;
    if (py_true_divide(b->delivery->delivered_bytes - b->lt_last_delivered,
                       8 * NS_SEC, interval_ns, &bw) < 0)
        return -1;
    if (b->lt_bw > 0.0) {
        double diff = fabs(bw - b->lt_bw);
        if (diff <= BBR_LT_BW_RATIO * b->lt_bw
            || diff <= (double)BBR_LT_BW_DIFF_BPS) {
            /* two consistent intervals: believe we are being policed */
            b->lt_bw = (bw + b->lt_bw) / 2.0;
            b->lt_use_bw = 1;
            b->pacing_gain = 1.0;
            b->lt_rtt_cnt = 0;
            return 0;
        }
    }
    b->lt_bw = bw;
    bbr_lt_reset_interval(b, now);
    return 0;
}

static int
bbr_update_min_rtt_state(CBbr *b, CRateSample *rs, int64_t now)
{
    int err = 0;
    int filter_expired =
        rs->min_rtt_expired || minrtt_expired_c(b->minrtt, now);
    if (filter_expired && b->mode != BBR_PROBE_RTT
        && b->mode != BBR_STARTUP) {
        b->mode = BBR_PROBE_RTT;
        b->pacing_gain = 1.0;
        b->cwnd_gain = 1.0;
        int64_t cwnd = bbr_get_cwnd(b, &err);
        if (err)
            return -1;
        if (cwnd > b->prior_cwnd)
            b->prior_cwnd = cwnd;
        b->has_probe_rtt_done = 0;
    }
    if (b->mode != BBR_PROBE_RTT)
        return 0;

    int64_t cwnd = bbr_get_cwnd(b, &err);
    if (err)
        return -1;
    if (cwnd > BBR_MIN_TARGET_CWND) {
        if (bbr_set_cwnd(b, BBR_MIN_TARGET_CWND) < 0)
            return -1;
    }
    if (!b->has_probe_rtt_done
        && sb_inflight(b->sb) <= BBR_MIN_TARGET_CWND) {
        b->probe_rtt_done_stamp = now + BBR_PROBE_RTT_DURATION_NS;
        b->has_probe_rtt_done = 1;
        b->probe_rtt_round_done = 0;
        b->next_rtt_delivered = b->delivery->delivered_bytes;
    } else if (b->has_probe_rtt_done) {
        if (b->round_start)
            b->probe_rtt_round_done = 1;
        if (b->probe_rtt_round_done && now >= b->probe_rtt_done_stamp) {
            minrtt_update_c(b->minrtt, bbr_min_rtt_or_msec(b), now);
            /* _exit_probe_rtt */
            cwnd = bbr_get_cwnd(b, &err);
            if (err)
                return -1;
            if (b->prior_cwnd > cwnd) {
                if (bbr_set_cwnd(b, b->prior_cwnd) < 0)
                    return -1;
            }
            b->prior_cwnd = 0;
            if (b->full_bw_reached) {
                bbr_enter_probe_bw(b, now);
            } else {
                b->mode = BBR_STARTUP;
                b->pacing_gain = BBR_HIGH_GAIN;
                b->cwnd_gain = BBR_HIGH_GAIN;
            }
        }
    }
    return 0;
}

static PyObject *
CBbr_cong_control(CBbr *b, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2 || !PyObject_TypeCheck(args[1], &CRateSample_Type)) {
        PyErr_SetString(PyExc_TypeError,
                        "cong_control(conn, rate_sample) expects a "
                        "compiled RateSample (mixed kernels?)");
        return NULL;
    }
    CRateSample *rs = (CRateSample *)args[1];
    int64_t now = b->loop->now;
    int err = 0;

    b->lost_total += rs->newly_lost_segments;

    /* _update_round */
    if (rs->prior_delivered >= b->next_rtt_delivered) {
        b->next_rtt_delivered = b->delivery->delivered_bytes;
        b->rtt_cnt += 1;
        b->round_start = 1;
        b->packet_conservation = 0;
    } else {
        b->round_start = 0;
    }

    if (bbr_lt_sampling(b, rs, now) < 0)
        return NULL;

    /* _update_bw */
    if (rs->interval_ns > 0 && rs->delivered_bytes > 0) {
        double sample_bps = (double)(rs->delivered_bytes * 8) * 1e9
                            / (double)rs->interval_ns;
        if (!rs->is_app_limited || sample_bps >= mm_value(b))
            mm_update(b, b->rtt_cnt, sample_bps);
    }

    /* _check_full_bw_reached */
    if (!b->full_bw_reached && b->round_start && !rs->is_app_limited) {
        double bw = mm_value(b);
        if (bw >= b->full_bw * BBR_FULL_BW_THRESHOLD) {
            b->full_bw = bw;
            b->full_bw_cnt = 0;
        } else {
            b->full_bw_cnt += 1;
            if (b->full_bw_cnt >= BBR_FULL_BW_COUNT) {
                b->full_bw_reached = 1;
                if (b->mode == BBR_STARTUP) {
                    b->mode = BBR_DRAIN;
                    b->pacing_gain = BBR_DRAIN_GAIN;
                    b->cwnd_gain = BBR_HIGH_GAIN;
                }
            }
        }
    }

    /* _check_drain */
    if (b->mode == BBR_DRAIN
        && sb_inflight(b->sb) <= bbr_bdp_segments(b, 1.0))
        bbr_enter_probe_bw(b, now);

    /* _update_cycle_phase */
    if (b->mode == BBR_PROBE_BW && bbr_is_next_cycle_phase(b, rs, now)) {
        b->cycle_idx = (b->cycle_idx + 1) % BBR_CYCLE_LEN;
        b->cycle_stamp_ns = now;
        b->pacing_gain =
            b->lt_use_bw ? 1.0 : BBR_GAIN_CYCLE[b->cycle_idx];
    }

    if (bbr_update_min_rtt_state(b, rs, now) < 0)
        return NULL;

    /* _set_pacing_rate */
    double bw = bbr_bw_bps(b);
    if (bw > 0.0) {
        double rate = b->pacing_gain * bw * BBR_PACING_MARGIN;
        if (b->full_bw_reached || rate > b->rate_bps)
            b->rate_bps = rate;
    }

    /* _set_cwnd (PROBE_RTT handled above) */
    if (b->mode != BBR_PROBE_RTT) {
        int64_t acked = rs->newly_acked_segments;
        int64_t target = bbr_target_cwnd(b, b->cwnd_gain, &err);
        if (err)
            return NULL;
        int64_t cwnd = bbr_get_cwnd(b, &err);
        if (err)
            return NULL;
        if (b->packet_conservation) {
            int64_t floor = sb_inflight(b->sb) + acked;
            if (floor > cwnd)
                cwnd = floor;
        } else if (b->full_bw_reached) {
            cwnd += acked;
            if (cwnd > target)
                cwnd = target;
        } else if (cwnd < target
                   || b->delivery->delivered_bytes < b->init_cwnd_bytes) {
            cwnd = cwnd + acked;
        }
        if (bbr_set_cwnd(
                b, cwnd > BBR_MIN_TARGET_CWND ? cwnd : BBR_MIN_TARGET_CWND)
            < 0)
            return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
CBbr_pacing_rate_bps(CBbr *b, PyObject *const *args, Py_ssize_t nargs)
{
    return PyFloat_FromDouble(b->rate_bps);
}

static PyObject *
CBbr_min_tso_segs(CBbr *b, PyObject *const *args, Py_ssize_t nargs)
{
    return PyLong_FromLong(b->rate_bps < 1.2e9 ? 2 : 4);
}

static PyObject *
CBbr_bw_bps_m(CBbr *b, PyObject *Py_UNUSED(ignored))
{
    return PyFloat_FromDouble(bbr_bw_bps(b));
}

static PyObject *
CBbr_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"conn", "enable_lt_bw", NULL};
    PyObject *conn;
    int enable_lt_bw = 1;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|p:BbrModel", kwlist,
                                     &conn, &enable_lt_bw))
        return NULL;

    PyObject *sb = PyObject_GetAttrString(conn, "scoreboard");
    PyObject *delivery = NULL, *minrtt = NULL, *loop = NULL, *pacer = NULL;
    PyObject *config = NULL;
    CBbr *self = NULL;
    if (sb == NULL)
        return NULL;
    delivery = PyObject_GetAttrString(conn, "delivery");
    minrtt = PyObject_GetAttrString(conn, "min_rtt");
    loop = PyObject_GetAttrString(conn, "_loop");
    pacer = PyObject_GetAttrString(conn, "pacer");
    config = PyObject_GetAttrString(conn, "config");
    if (delivery == NULL || minrtt == NULL || loop == NULL || pacer == NULL
        || config == NULL)
        goto fail;
    if (!PyObject_TypeCheck(sb, &CScoreboard_Type)
        || !PyObject_TypeCheck(delivery, &CDelivery_Type)
        || !PyObject_TypeCheck(minrtt, &CMinRtt_Type)
        || !PyObject_TypeCheck(loop, &CLoop_Type)) {
        PyErr_SetString(PyExc_TypeError,
                        "BbrModel requires a connection built on the "
                        "compiled kernel (scoreboard/delivery/min_rtt/"
                        "loop must be repro._ckernel types)");
        goto fail;
    }

    int64_t mss, flow_id, initial_cwnd, gso_max_bytes;
    {
        PyObject *v;
        if ((v = PyObject_GetAttrString(conn, "mss")) == NULL)
            goto fail;
        int rc = as_i64(v, &mss);
        Py_DECREF(v);
        if (rc < 0)
            goto fail;
        if ((v = PyObject_GetAttrString(conn, "flow_id")) == NULL)
            goto fail;
        rc = as_i64(v, &flow_id);
        Py_DECREF(v);
        if (rc < 0)
            goto fail;
        if ((v = PyObject_GetAttrString(config, "initial_cwnd")) == NULL)
            goto fail;
        rc = as_i64(v, &initial_cwnd);
        Py_DECREF(v);
        if (rc < 0)
            goto fail;
        if ((v = PyObject_GetAttrString(config, "gso_max_bytes")) == NULL)
            goto fail;
        rc = as_i64(v, &gso_max_bytes);
        Py_DECREF(v);
        if (rc < 0)
            goto fail;
    }

    self = (CBbr *)type->tp_alloc(type, 0);
    if (self == NULL)
        goto fail;
    Py_INCREF(conn);
    self->conn = conn;
    self->pacer = pacer;
    self->sb = (CScoreboard *)sb;
    self->delivery = (CDelivery *)delivery;
    self->minrtt = (CMinRtt *)minrtt;
    self->loop = (CLoop *)loop;
    Py_DECREF(config);
    config = NULL;

    self->mss = mss;
    self->flow_id = flow_id;
    self->initial_cwnd = initial_cwnd;
    self->init_cwnd_bytes = initial_cwnd * mss;
    self->gso_max_bytes = gso_max_bytes;
    self->enable_lt_bw = (char)enable_lt_bw;
    self->mode = BBR_STARTUP;
    self->mm_window = BBR_BW_WINDOW_RTTS;
    self->pacing_gain = BBR_HIGH_GAIN;
    self->cwnd_gain = BBR_HIGH_GAIN;

    /* Bbr.init(conn): stamp the cycle, seed the pacing rate from the
     * pre-clamp cwnd, then apply the cwnd floor. */
    self->cycle_stamp_ns = self->loop->now;
    int err = 0;
    int64_t cwnd = bbr_get_cwnd(self, &err);
    if (err)
        goto fail_self;
    int64_t rtt_ns = NS_MSEC; /* conn.srtt_ns or MSEC (None at init) */
    {
        PyObject *srtt = PyObject_GetAttrString(conn, "srtt_ns");
        if (srtt == NULL)
            goto fail_self;
        if (srtt != Py_None) {
            int64_t v;
            int rc = as_i64(srtt, &v);
            Py_DECREF(srtt);
            if (rc < 0)
                goto fail_self;
            if (v)
                rtt_ns = v;
        } else {
            Py_DECREF(srtt);
        }
    }
    double bw;
    if (py_true_divide(cwnd * mss, 8 * NS_SEC, rtt_ns, &bw) < 0)
        goto fail_self;
    self->rate_bps = BBR_HIGH_GAIN * bw * BBR_PACING_MARGIN;
    if (cwnd < BBR_MIN_TARGET_CWND
        && bbr_set_cwnd(self, BBR_MIN_TARGET_CWND) < 0)
        goto fail_self;
    return (PyObject *)self;

fail_self:
    Py_DECREF(self);
    return NULL;
fail:
    Py_XDECREF(sb);
    Py_XDECREF(delivery);
    Py_XDECREF(minrtt);
    Py_XDECREF(loop);
    Py_XDECREF(pacer);
    Py_XDECREF(config);
    Py_XDECREF(self);
    return NULL;
}

static void
CBbr_dealloc(CBbr *self)
{
    PyObject_GC_UnTrack(self);
    Py_XDECREF(self->conn);
    Py_XDECREF(self->pacer);
    Py_XDECREF(self->sb);
    Py_XDECREF(self->delivery);
    Py_XDECREF(self->minrtt);
    Py_XDECREF(self->loop);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CBbr_traverse(CBbr *self, visitproc visit, void *arg)
{
    Py_VISIT(self->conn);
    Py_VISIT(self->pacer);
    Py_VISIT(self->sb);
    Py_VISIT(self->delivery);
    Py_VISIT(self->minrtt);
    Py_VISIT(self->loop);
    return 0;
}

static int
CBbr_clear(CBbr *self)
{
    Py_CLEAR(self->conn);
    Py_CLEAR(self->pacer);
    Py_CLEAR(self->sb);
    Py_CLEAR(self->delivery);
    Py_CLEAR(self->minrtt);
    Py_CLEAR(self->loop);
    return 0;
}

static PyObject *
CBbr_get_mode(CBbr *self, void *closure)
{
    PyObject *s = bbr_mode_strs[self->mode];
    Py_INCREF(s);
    return s;
}

static PyObject *
CBbr_get_probe_rtt_done_stamp(CBbr *self, void *closure)
{
    if (!self->has_probe_rtt_done)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(self->probe_rtt_done_stamp);
}

static PyMethodDef CBbr_methods[] = {
    {"cong_control", (PyCFunction)(void (*)(void))CBbr_cong_control,
     METH_FASTCALL, "Per-ACK BBR model update (conn, rate_sample)."},
    {"pacing_rate_bps",
     (PyCFunction)(void (*)(void))CBbr_pacing_rate_bps, METH_FASTCALL,
     "Current pacing rate in bits/s."},
    {"min_tso_segs", (PyCFunction)(void (*)(void))CBbr_min_tso_segs,
     METH_FASTCALL, "Lower bound on autosized super-packet segments."},
    {"bw_bps", (PyCFunction)CBbr_bw_bps_m, METH_NOARGS,
     "Current bandwidth estimate in bits/s."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef CBbr_getset[] = {
    {"mode", (getter)CBbr_get_mode, NULL,
     "BBR state machine mode name.", NULL},
    {"probe_rtt_done_stamp", (getter)CBbr_get_probe_rtt_done_stamp, NULL,
     "PROBE_RTT dwell deadline (None while unarmed).", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef CBbr_members[] = {
    {"enable_lt_bw", T_BOOL, offsetof(CBbr, enable_lt_bw), READONLY, NULL},
    {"pacing_gain", T_DOUBLE, offsetof(CBbr, pacing_gain), 0, NULL},
    {"cwnd_gain", T_DOUBLE, offsetof(CBbr, cwnd_gain), 0, NULL},
    {"full_bw", T_DOUBLE, offsetof(CBbr, full_bw), 0, NULL},
    {"full_bw_cnt", T_LONGLONG, offsetof(CBbr, full_bw_cnt), 0, NULL},
    {"full_bw_reached", T_BOOL, offsetof(CBbr, full_bw_reached), 0, NULL},
    {"rtt_cnt", T_LONGLONG, offsetof(CBbr, rtt_cnt), 0, NULL},
    {"next_rtt_delivered", T_LONGLONG,
     offsetof(CBbr, next_rtt_delivered), 0, NULL},
    {"round_start", T_BOOL, offsetof(CBbr, round_start), 0, NULL},
    {"cycle_idx", T_LONGLONG, offsetof(CBbr, cycle_idx), 0, NULL},
    {"cycle_stamp_ns", T_LONGLONG, offsetof(CBbr, cycle_stamp_ns), 0, NULL},
    {"probe_rtt_round_done", T_BOOL,
     offsetof(CBbr, probe_rtt_round_done), 0, NULL},
    {"prior_cwnd", T_LONGLONG, offsetof(CBbr, prior_cwnd), 0, NULL},
    {"packet_conservation", T_BOOL,
     offsetof(CBbr, packet_conservation), 0, NULL},
    {"_rate_bps", T_DOUBLE, offsetof(CBbr, rate_bps), 0, NULL},
    {"lt_is_sampling", T_BOOL, offsetof(CBbr, lt_is_sampling), 0, NULL},
    {"lt_rtt_cnt", T_LONGLONG, offsetof(CBbr, lt_rtt_cnt), 0, NULL},
    {"lt_use_bw", T_BOOL, offsetof(CBbr, lt_use_bw), 0, NULL},
    {"lt_bw", T_DOUBLE, offsetof(CBbr, lt_bw), 0, NULL},
    {"_lost_total", T_LONGLONG, offsetof(CBbr, lost_total), 0, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CBbr_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.BbrModel",
    .tp_basicsize = sizeof(CBbr),
    .tp_dealloc = (destructor)CBbr_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "BBR v1 per-ACK model (compiled kernel).",
    .tp_traverse = (traverseproc)CBbr_traverse,
    .tp_clear = (inquiry)CBbr_clear,
    .tp_methods = CBbr_methods,
    .tp_getset = CBbr_getset,
    .tp_members = CBbr_members,
    .tp_new = CBbr_new,
    .tp_free = PyObject_GC_Del,
};

/* -------------------------------------------------------------- module */

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._ckernel",
    .m_doc = "Compiled simulation-kernel backend: C implementations of the "
             "event loop and the mechanical hot-path components, "
             "bit-identical to the pure-python reference.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    if ((s_wire_bytes = PyUnicode_InternFromString("wire_bytes")) == NULL
        || (s_segments = PyUnicode_InternFromString("segments")) == NULL
        || (s_is_ack = PyUnicode_InternFromString("is_ack")) == NULL
        || (s_split_head = PyUnicode_InternFromString("split_head")) == NULL
        || (s_rate_bps = PyUnicode_InternFromString("rate_bps")) == NULL
        || (s_enabled = PyUnicode_InternFromString("enabled")) == NULL
        || (s_send = PyUnicode_InternFromString("send")) == NULL
        || (s_serialization_ns
            = PyUnicode_InternFromString("serialization_ns")) == NULL
        || (s_cwnd = PyUnicode_InternFromString("cwnd")) == NULL)
        return NULL;

    if ((bbr_mode_strs[BBR_STARTUP]
         = PyUnicode_InternFromString("startup")) == NULL
        || (bbr_mode_strs[BBR_DRAIN]
            = PyUnicode_InternFromString("drain")) == NULL
        || (bbr_mode_strs[BBR_PROBE_BW]
            = PyUnicode_InternFromString("probe_bw")) == NULL
        || (bbr_mode_strs[BBR_PROBE_RTT]
            = PyUnicode_InternFromString("probe_rtt")) == NULL)
        return NULL;

    if (PyType_Ready(&CEvent_Type) < 0 || PyType_Ready(&CLoop_Type) < 0
        || PyType_Ready(&CWorkItem_Type) < 0 || PyType_Ready(&CCore_Type) < 0
        || PyType_Ready(&CTimer_Type) < 0 || PyType_Ready(&CLink_Type) < 0
        || PyType_Ready(&CQueue_Type) < 0 || PyType_Ready(&CTxRec_Type) < 0
        || PyType_Ready(&CRateSample_Type) < 0
        || PyType_Ready(&CAckOutcome_Type) < 0
        || PyType_Ready(&CScoreboard_Type) < 0
        || PyType_Ready(&CDelivery_Type) < 0
        || PyType_Ready(&CRtt_Type) < 0 || PyType_Ready(&CMinRtt_Type) < 0
        || PyType_Ready(&CBbr_Type) < 0)
        return NULL;

    /* WorkItem.HIGH / WorkItem.NORMAL class attributes */
    PyObject *zero = PyLong_FromLong(0), *one = PyLong_FromLong(1);
    if (zero == NULL || one == NULL)
        return NULL;
    if (PyDict_SetItemString(CWorkItem_Type.tp_dict, "HIGH", zero) < 0
        || PyDict_SetItemString(CWorkItem_Type.tp_dict, "NORMAL", one) < 0) {
        Py_DECREF(zero);
        Py_DECREF(one);
        return NULL;
    }
    Py_DECREF(zero);
    Py_DECREF(one);

    PyObject *m = PyModule_Create(&ckernel_module);
    if (m == NULL)
        return NULL;

    if (PyModule_AddObjectRef(m, "Event", (PyObject *)&CEvent_Type) < 0
        || PyModule_AddObjectRef(m, "EventLoop", (PyObject *)&CLoop_Type) < 0
        || PyModule_AddObjectRef(m, "WorkItem",
                                 (PyObject *)&CWorkItem_Type) < 0
        || PyModule_AddObjectRef(m, "CpuCore", (PyObject *)&CCore_Type) < 0
        || PyModule_AddObjectRef(m, "Timer", (PyObject *)&CTimer_Type) < 0
        || PyModule_AddObjectRef(m, "Link", (PyObject *)&CLink_Type) < 0
        || PyModule_AddObjectRef(m, "DropTailQueue",
                                 (PyObject *)&CQueue_Type) < 0
        || PyModule_AddObjectRef(m, "TxRecord", (PyObject *)&CTxRec_Type) < 0
        || PyModule_AddObjectRef(m, "RateSample",
                                 (PyObject *)&CRateSample_Type) < 0
        || PyModule_AddObjectRef(m, "AckOutcome",
                                 (PyObject *)&CAckOutcome_Type) < 0
        || PyModule_AddObjectRef(m, "Scoreboard",
                                 (PyObject *)&CScoreboard_Type) < 0
        || PyModule_AddObjectRef(m, "DeliveryRateEstimator",
                                 (PyObject *)&CDelivery_Type) < 0
        || PyModule_AddObjectRef(m, "RttEstimator",
                                 (PyObject *)&CRtt_Type) < 0
        || PyModule_AddObjectRef(m, "MinRttFilter",
                                 (PyObject *)&CMinRtt_Type) < 0
        || PyModule_AddObjectRef(m, "BbrModel", (PyObject *)&CBbr_Type) < 0
        || PyModule_AddStringConstant(m, "BACKEND", "compiled") < 0
#if defined(__clang__)
        || PyModule_AddStringConstant(m, "COMPILER",
                                      "clang " __clang_version__) < 0
#elif defined(__GNUC__)
        || PyModule_AddStringConstant(m, "COMPILER", "gcc " __VERSION__) < 0
#else
        || PyModule_AddStringConstant(m, "COMPILER", "cc") < 0
#endif
    ) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
