"""Simulation-kernel backend selection (``pure`` | ``compiled``).

The simulator's mechanical hot core — event loop, CPU cores, timers,
links, droptail queues — exists twice: the pure-python reference
implementations (:mod:`repro.sim`, :mod:`repro.cpu`, :mod:`repro.netsim`)
and an optional C extension (:mod:`repro._ckernel`) that is bit-identical
but several times faster. This module is the one place that decides which
backend a run uses, through the same registry pattern as congestion
control or executors:

* ``KERNELS.get("pure")`` / ``KERNELS.get("compiled")`` — the backends,
* :func:`resolve_kernel` — arg > ``REPRO_KERNEL`` env > ``"pure"``, with
  a graceful, loudly-noticed fall back to pure when the extension is not
  built or the run is instrumented (tracer/profiler), and
* :func:`kernel_info` — what actually ran, for benchmark metadata.

The pure path stays the determinism reference: the compiled kernel must
produce byte-identical results (same event order, same seq tie-breaks,
same float expressions), which the equivalence suite and the archived-
results byte-identity CI check enforce. Selection happens only where an
experiment builds its loop (:func:`repro.core.experiment.run_experiment`);
components constructed on a compiled loop route themselves to their C
counterparts via ``__new__`` hooks, so unit tests that build a pure
``EventLoop`` directly are always exercising the reference code.
"""

from __future__ import annotations

import os
import sys
from typing import Callable, Optional

from .registry import Registry

__all__ = [
    "Kernel",
    "KERNELS",
    "KERNEL_ENV_VAR",
    "resolve_kernel",
    "compiled_for",
    "compiled_components",
    "kernel_info",
]

#: environment variable consulted by :func:`resolve_kernel` (the CLI's
#: ``--kernel`` writes it so grid worker processes inherit the choice)
KERNEL_ENV_VAR = "REPRO_KERNEL"

# -- compiled-extension loading (lazy, memoized) ----------------------------

_ckernel = None
_ckernel_error: Optional[str] = None
_ckernel_loaded = False


def _load_ckernel():
    """Import :mod:`repro._ckernel` once; remember why it failed if it did.

    Kept as a module-level memo (rather than importing at the top) so the
    pure fallback costs nothing on machines without the built extension,
    and so tests can simulate an absent extension by resetting the memo.
    """
    global _ckernel, _ckernel_error, _ckernel_loaded
    if not _ckernel_loaded:
        _ckernel_loaded = True
        try:
            from . import _ckernel as mod

            _ckernel = mod
        except ImportError as exc:
            _ckernel = None
            _ckernel_error = str(exc)
    return _ckernel


def compiled_for(loop):
    """The ``_ckernel`` module when *loop* is a compiled-kernel loop, else None.

    This is the routing predicate used by the ``__new__`` hooks on the
    pure component classes (CpuCore, Timer, Link, DropTailQueue): a
    component constructed on a compiled loop becomes its C counterpart,
    anything constructed on a pure loop stays pure python.
    """
    mod = _load_ckernel()
    if mod is not None and type(loop) is mod.EventLoop:
        return mod
    return None


# -- one-time notices -------------------------------------------------------

_noticed: set = set()


def _notice_once(key: str, message: str) -> None:
    """Print *message* to stderr once per process (never silently fall back)."""
    if key not in _noticed:
        _noticed.add(key)
        print(f"repro: {message}", file=sys.stderr)


# -- backends ---------------------------------------------------------------


class Kernel:
    """One simulation-kernel backend: a name plus a loop factory."""

    def __init__(self, name: str, make_loop: Callable):
        self.name = name
        self._make_loop = make_loop

    @property
    def available(self) -> bool:
        """Whether this backend can actually run on this machine."""
        return True

    @property
    def why_unavailable(self) -> Optional[str]:
        """Human-readable reason when :attr:`available` is False."""
        return None

    @property
    def compiler(self) -> Optional[str]:
        """Compiler identification for compiled backends, else None."""
        return None

    def make_loop(self):
        """Build a fresh event loop of this backend."""
        return self._make_loop()

    def describe(self) -> str:
        """Short human-readable tag, e.g. ``compiled (gcc 12.2.0)``."""
        if self.compiler is not None:
            return f"{self.name} ({self.compiler})"
        return self.name

    def __repr__(self) -> str:
        return f"Kernel({self.name!r}, available={self.available})"


class _CompiledKernel(Kernel):
    """The C-extension backend; availability depends on the built module."""

    def __init__(self):
        super().__init__("compiled", self._make_compiled_loop)

    @staticmethod
    def _make_compiled_loop():
        return _load_ckernel().EventLoop()

    @property
    def available(self) -> bool:
        return _load_ckernel() is not None

    @property
    def why_unavailable(self) -> Optional[str]:
        if self.available:
            return None
        return _ckernel_error or "repro._ckernel is not built"

    @property
    def compiler(self) -> Optional[str]:
        mod = _load_ckernel()
        return getattr(mod, "COMPILER", None) if mod is not None else None


def _make_pure_loop():
    # Imported here: repro.sim.engine is a heavy import and this module is
    # imported by the component modules themselves (cycle avoidance).
    from .sim.engine import EventLoop

    return EventLoop()


#: name -> :class:`Kernel`; the selection axis for ``--kernel`` and
#: ``REPRO_KERNEL`` (same pattern as ``CC_ALGORITHMS`` / ``EXECUTORS``)
KERNELS: Registry = Registry("kernel")
KERNELS.register("pure", Kernel("pure", _make_pure_loop))
KERNELS.register("compiled", _CompiledKernel())


def resolve_kernel(
    name: Optional[str] = None,
    instrumented: bool = False,
) -> Kernel:
    """Pick the kernel for a run: *name* > ``REPRO_KERNEL`` > ``"pure"``.

    Two situations force the pure backend, each announced once on stderr
    (never a silent downgrade — satellite requirement: no silently empty
    profiles, no unbuilt extension pretending to be compiled):

    * *instrumented* runs (an enabled tracer or a profiler): the compiled
      kernel does not carry instrumentation hooks, so the reference
      implementation runs instead;
    * the compiled extension is requested but not importable on this
      machine (not built, or no compiler at install time).

    Unknown names raise :class:`repro.registry.UnknownNameError`; a junk
    ``REPRO_KERNEL`` value fails fast with a :class:`ValueError` that
    names the variable and enumerates the registered backends (same
    hardening as ``resolve_jobs`` for ``REPRO_JOBS``) — an inherited
    environment must never silently select the wrong backend. An empty
    or whitespace-only ``REPRO_KERNEL`` means "unset".
    """
    if name:
        requested = name
    else:
        env = os.environ.get(KERNEL_ENV_VAR, "")
        requested = env.strip()
        if requested and requested not in KERNELS:
            choices = ", ".join(sorted(KERNELS.names()))
            raise ValueError(
                f"{KERNEL_ENV_VAR} must name a registered kernel "
                f"(one of: {choices}), got {env!r}"
            )
        if not requested:
            requested = "pure"
    kernel = KERNELS.get(requested)
    if kernel.name == "pure":
        return kernel
    if instrumented:
        _notice_once(
            f"instrumented:{kernel.name}",
            f"instrumented run (tracer/profiler active): using the pure "
            f"kernel instead of {kernel.name!r}",
        )
        return KERNELS.get("pure")
    if not kernel.available:
        _notice_once(
            f"unavailable:{kernel.name}",
            f"kernel {kernel.name!r} is unavailable "
            f"({kernel.why_unavailable}); falling back to the pure kernel",
        )
        return KERNELS.get("pure")
    return kernel


#: component families with a compiled implementation, in display order:
#: (family label, the ``repro._ckernel`` attribute that implements it)
_COMPONENT_FAMILIES = (
    ("loop", "EventLoop"),
    ("timers", "Timer"),
    ("links", "Link"),
    ("queues", "DropTailQueue"),
    ("cores", "CpuCore"),
    ("scoreboard", "Scoreboard"),
    ("rate-sampler", "DeliveryRateEstimator"),
    ("rtt-filters", "MinRttFilter"),
    ("cc-bbr", "BbrModel"),
)


def compiled_components(kernel: Optional[Kernel] = None) -> tuple:
    """Component families the given backend runs in C (empty for pure).

    Derived from the built extension's exports, so a stale or partial
    build reports exactly what it covers rather than what this source
    tree expects.
    """
    if kernel is None:
        kernel = resolve_kernel()
    if kernel.name == "pure":
        return ()
    mod = _load_ckernel()
    if mod is None:
        return ()
    return tuple(
        family for family, attr in _COMPONENT_FAMILIES if hasattr(mod, attr)
    )


def kernel_info(kernel: Optional[Kernel] = None) -> dict:
    """Metadata describing the *active* backend, for benchmark payloads.

    With no argument, describes what :func:`resolve_kernel` would pick
    right now (env included). Returned keys: ``name``, ``compiler``
    (None for pure), and ``compiled_components`` (the component families
    the backend runs in C; empty for pure).
    """
    if kernel is None:
        kernel = resolve_kernel()
    return {
        "name": kernel.name,
        "compiler": kernel.compiler,
        "compiled_components": list(compiled_components(kernel)),
    }
