"""Simulated mobile CPU: cores, clusters, governors, and cycle costs.

This package provides the compute substrate that makes the paper's effect
reproducible in simulation: TCP stack operations are billed CPU cycles
(:class:`~repro.cpu.costs.CostModel`), executed serially on a core
(:class:`~repro.cpu.core.CpuCore`) whose clock is managed by a governor
(:mod:`repro.cpu.governor`) over a big.LITTLE topology
(:class:`~repro.cpu.cluster.BigLittleCpu`).
"""

from .cluster import BigLittleCpu, CpuCluster
from .core import CpuCore, WorkItem
from .costs import DEFAULT_COSTS, ZERO_COSTS, CostModel
from .governor import (
    DynamicCpuPolicy,
    PerformanceGovernor,
    SchedutilGovernor,
    ThermalModel,
    UserspaceGovernor,
)
from .softirq import (
    EXECUTORS,
    FreeExecutor,
    NetStackExecutor,
    RpsExecutor,
    StackExecutor,
)

__all__ = [
    "EXECUTORS",
    "BigLittleCpu",
    "CpuCluster",
    "CpuCore",
    "WorkItem",
    "CostModel",
    "DEFAULT_COSTS",
    "ZERO_COSTS",
    "UserspaceGovernor",
    "PerformanceGovernor",
    "SchedutilGovernor",
    "ThermalModel",
    "DynamicCpuPolicy",
    "StackExecutor",
    "NetStackExecutor",
    "RpsExecutor",
    "FreeExecutor",
]
