"""Binding of network-stack work to device CPU cores.

On the phones the paper measures, iperf3 is a single process and the
transmit softirq work for its sockets runs (almost entirely) on one core
at a time. :class:`NetStackExecutor` models that: every piece of stack
work — pacing-timer fires, skb transmits, ACK processing — is submitted
through one executor, which forwards it to the CPU topology's *active*
core. Static configurations keep the binding fixed; the Default policy
migrates it.

Work carries a priority: interrupt/RX-class work (ACKs, timer
expirations) is queued ahead of bulk transmit items, matching how real
kernels interleave RX softirq and hrtimer handling with the transmit
path.

An :class:`RpsExecutor` variant spreads connections across cores
(Receive/Transmit Packet Steering), used only by the ablation benchmarks
to show how much of the paper's effect depends on serialization.
"""

from __future__ import annotations

from typing import Callable, List

from ..registry import Registry
from .cluster import BigLittleCpu
from .core import CpuCore, WorkItem

__all__ = [
    "StackExecutor",
    "NetStackExecutor",
    "RpsExecutor",
    "FreeExecutor",
    "EXECUTORS",
]


class StackExecutor:
    """Interface: anything that can run stack work and report busy time."""

    def submit(
        self,
        cycles: int,
        callback: Callable[[], None],
        name: str = "work",
        priority: int = WorkItem.NORMAL,
        continuation: bool = False,
    ) -> None:
        """Run *callback* after charging *cycles* of CPU time."""
        raise NotImplementedError

    def submit_for(
        self,
        flow_id: int,
        cycles: int,
        callback: Callable[[], None],
        name: str = "work",
        priority: int = WorkItem.NORMAL,
        continuation: bool = False,
    ) -> None:
        """Like :meth:`submit`, with a flow hint for multi-core steering."""
        self.submit(cycles, callback, name, priority, continuation)

    def busy_ns(self) -> int:
        """Total CPU busy time consumed via this executor's cores."""
        raise NotImplementedError


class NetStackExecutor(StackExecutor):
    """Serialize all stack work on the topology's active core (default)."""

    def __init__(self, cpu: BigLittleCpu):
        self.cpu = cpu

    def submit(
        self,
        cycles: int,
        callback: Callable[[], None],
        name: str = "work",
        priority: int = WorkItem.NORMAL,
        continuation: bool = False,
    ) -> None:
        self.cpu.active_core.submit_work(cycles, callback, name, priority,
                                         continuation)

    def submit_for(
        self,
        flow_id: int,
        cycles: int,
        callback: Callable[[], None],
        name: str = "work",
        priority: int = WorkItem.NORMAL,
        continuation: bool = False,
    ) -> None:
        # Serialized executor ignores the flow hint; go straight to the
        # active core rather than through the base-class indirection. The
        # submit_work form lets a compiled-kernel core build its WorkItem
        # internally instead of allocating one here per submission.
        self.cpu.active_core.submit_work(cycles, callback, name, priority,
                                         continuation)

    def busy_ns(self) -> int:
        return sum(core.busy_ns_up_to_now() for core in self.cpu.all_cores())


class RpsExecutor(StackExecutor):
    """Hash flows across the enabled cores (ablation only).

    Work without a flow hint goes to core 0. Real phones do not steer the
    single-process iperf transmit path this way, which is why this is not
    the default — see DESIGN.md §4.
    """

    def __init__(self, cpu: BigLittleCpu):
        self.cpu = cpu

    def _cores(self) -> List[CpuCore]:
        cores = self.cpu.all_cores()
        if not cores:
            raise RuntimeError("no enabled cores")
        return cores

    def submit(
        self,
        cycles: int,
        callback: Callable[[], None],
        name: str = "work",
        priority: int = WorkItem.NORMAL,
        continuation: bool = False,
    ) -> None:
        self._cores()[0].submit_work(cycles, callback, name, priority,
                                     continuation)

    def submit_for(
        self,
        flow_id: int,
        cycles: int,
        callback: Callable[[], None],
        name: str = "work",
        priority: int = WorkItem.NORMAL,
        continuation: bool = False,
    ) -> None:
        cores = self._cores()
        cores[flow_id % len(cores)].submit_work(cycles, callback, name,
                                                priority, continuation)

    def busy_ns(self) -> int:
        return sum(core.busy_ns_up_to_now() for core in self.cpu.all_cores())


class FreeExecutor(StackExecutor):
    """An infinitely fast CPU: callbacks run immediately.

    Used by protocol unit tests that want network behaviour without
    compute effects, and by the desktop iperf *server* side (the paper's
    server is never the bottleneck).
    """

    def submit(
        self,
        cycles: int,
        callback: Callable[[], None],
        name: str = "work",
        priority: int = WorkItem.NORMAL,
        continuation: bool = False,
    ) -> None:
        callback()

    def busy_ns(self) -> int:
        return 0


#: name -> factory ``(BigLittleCpu) -> StackExecutor`` (spec ``executor=``
#: values); FreeExecutor ignores the topology by design.
EXECUTORS: Registry = Registry("executor")
EXECUTORS.register("serial", lambda cpu: NetStackExecutor(cpu))
EXECUTORS.register("rps", lambda cpu: RpsExecutor(cpu))
EXECUTORS.register("free", lambda cpu: FreeExecutor())
