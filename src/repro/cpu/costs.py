"""Cycle-cost model for the mobile TCP transmit/receive path.

The paper's central finding is that *per-send pacing overhead* — an hrtimer
fire, a softirq reschedule, and a trip through ``tcp_write_xmit`` for every
paced socket buffer — saturates low-frequency mobile CPUs. To reproduce
that, every stack operation in this simulator is billed a number of CPU
cycles on the device's (simulated) core; at a given clock frequency those
cycles become wall time, and the core serializes the work.

The default constants below are *calibrated*, not measured: they are chosen
so that a 576 MHz "Low-End Pixel 4" (Table 1) lands in the same goodput
regime the paper reports (Cubic ≈ 360 Mbps, BBR ≈ 140–330 Mbps depending on
connection count), and a 2.8 GHz "High-End" reaches Ethernet line rate.
Their relative magnitudes follow the qualitative structure of the Linux
transmit path: a pacing-timer fire (softirq wakeup + socket reprocessing)
costs roughly twice a plain skb transmit's fixed cost, and per-byte costs
(copy + checksum) dominate for large GSO buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CostModel", "DEFAULT_COSTS", "ZERO_COSTS"]


@dataclass(frozen=True)
class CostModel:
    """Cycle costs charged to the device CPU by the TCP stack.

    All values are CPU cycles. See the module docstring for calibration
    rationale. Instances are immutable; use :meth:`scaled` or
    :func:`dataclasses.replace` to derive variants for ablations.
    """

    #: Per-byte transmit cost (copy out of user space + checksum + DMA prep).
    cycles_per_byte_xmit: float = 12.0
    #: Fixed cost per transmitted skb (tcp_write_xmit, qdisc, driver xmit).
    skb_xmit_fixed: int = 14_000
    #: Cost of one pacing-timer expiration: hrtimer softirq, tasklet
    #: rescheduling the socket, re-entering the write path. This is the
    #: overhead the paper's pacing-stride fix amortizes.
    pacing_timer_fire: int = 40_000
    #: Cost of (re)programming the pacing hrtimer after a send.
    timer_program: int = 4_000
    #: Fixed cost to process one incoming ACK (IRQ/NAPI amortized share,
    #: socket lookup, state update).
    ack_process_fixed: int = 4_000
    #: Extra cost per SACK block carried on an ACK.
    cycles_per_sack_block: int = 600
    #: Fixed cost to queue a retransmission.
    retransmit_fixed: int = 9_000
    #: Cost charged when an RTO fires.
    rto_fire: int = 12_000
    #: Cost of the connection-level "other" timer work (delayed ack etc.).
    misc_timer_fire: int = 5_000

    def xmit_cycles(self, nbytes: int) -> int:
        """Total cycles to transmit one skb of *nbytes* payload.

        Used for retransmissions (which re-checksum in place). Original
        transmissions split this cost: :meth:`copy_cycles` is paid in
        process context (``sendmsg``) ahead of time, and the transmit
        softirq pays only :attr:`skb_xmit_fixed` — so bursts of already-
        buffered data leave the stack back-to-back, as on real systems.
        """
        return int(self.skb_xmit_fixed + self.cycles_per_byte_xmit * nbytes)

    def copy_cycles(self, nbytes: int) -> int:
        """Cycles for ``sendmsg`` to copy *nbytes* into the socket."""
        return int(self.cycles_per_byte_xmit * nbytes)

    def ack_cycles(self, sack_blocks: int = 0, cc_cycles: int = 0) -> int:
        """Total cycles to process one ACK.

        *cc_cycles* is the congestion-control module's per-ACK cost
        (Cubic's AIMD arithmetic is cheap; BBR recomputes its model on
        every ACK — §5's "Congestion Model" difference).
        """
        return int(
            self.ack_process_fixed
            + self.cycles_per_sack_block * sack_blocks
            + cc_cycles
        )

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every cost multiplied by *factor*.

        Used by ablation benchmarks (e.g. "what if the stack were 2x more
        efficient?").
        """
        return CostModel(
            cycles_per_byte_xmit=self.cycles_per_byte_xmit * factor,
            skb_xmit_fixed=int(self.skb_xmit_fixed * factor),
            pacing_timer_fire=int(self.pacing_timer_fire * factor),
            timer_program=int(self.timer_program * factor),
            ack_process_fixed=int(self.ack_process_fixed * factor),
            cycles_per_sack_block=int(self.cycles_per_sack_block * factor),
            retransmit_fixed=int(self.retransmit_fixed * factor),
            rto_fire=int(self.rto_fire * factor),
            misc_timer_fire=int(self.misc_timer_fire * factor),
        )

    def without_pacing_overhead(self) -> "CostModel":
        """Return a copy with free pacing timers (mechanism ablation).

        If the paper's explanation is right, BBR with a zero-cost pacing
        timer should match unpaced BBR's goodput; the ablation bench
        checks exactly that.
        """
        return replace(self, pacing_timer_fire=0, timer_program=0)


#: Calibrated default cost model (see module docstring).
DEFAULT_COSTS = CostModel()

#: A free CPU — useful in unit tests that want pure protocol behaviour.
ZERO_COSTS = CostModel(
    cycles_per_byte_xmit=0.0,
    skb_xmit_fixed=0,
    pacing_timer_fire=0,
    timer_program=0,
    ack_process_fixed=0,
    cycles_per_sack_block=0,
    retransmit_fixed=0,
    rto_fire=0,
    misc_timer_fire=0,
)
