"""A simulated CPU core with a serial work queue.

The transmit-path bottleneck the paper measures is *serialization*: every
pacing-timer callback, skb transmit, and ACK runs on the phone's CPU, one
after another. :class:`CpuCore` models that — work items carry cycle
costs, the core converts cycles to wall time at its current frequency and
executes items FIFO. When the offered work exceeds the core's capacity the
queue grows and everything (including ACK processing, hence measured RTT)
is delayed; that queueing *is* the overhead under study.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..kernel import compiled_for
from ..sim import EventLoop, Tracer, NULL_TRACER
from ..units import SEC

__all__ = ["WorkItem", "CpuCore"]


class WorkItem:
    """A unit of stack work to execute on a core.

    ``callback`` runs when the core *finishes* the item (i.e. after its
    cycle cost has been paid). ``name`` is for tracing only.

    ``priority`` 0 models interrupt/RX-softirq work (ACK processing,
    timer expirations) which real kernels interleave ahead of bulk
    transmit work; priority 1 is the transmit path. A running item is
    never preempted — priorities order the *queue* only.
    """

    HIGH = 0
    NORMAL = 1

    __slots__ = ("cycles", "callback", "name", "priority", "submitted_at", "started_at")

    def __init__(
        self,
        cycles: int,
        callback: Callable[[], None],
        name: str = "work",
        priority: int = 1,
    ):
        if cycles < 0:
            raise ValueError("work cycles must be >= 0")
        if priority not in (0, 1):
            raise ValueError("priority must be 0 (high) or 1 (normal)")
        self.cycles = int(cycles)
        self.callback = callback
        self.name = name
        self.priority = priority
        self.submitted_at: Optional[int] = None
        self.started_at: Optional[int] = None


class CpuCore:
    """One core: a frequency, a FIFO run queue, and busy-time accounting.

    The frequency is mutable (governors call :meth:`set_frequency`); a new
    frequency applies to items that *start* after the change, which is a
    fine approximation at governor sampling periods (~10 ms) vs. item
    lengths (~10-100 µs).
    """

    __slots__ = (
        "_loop",
        "_freq_hz",
        "name",
        "_tracer",
        "_queue",
        "_high_queue",
        "_current",
        "_completion_event",
        "busy_ns_total",
        "items_executed",
        "cycles_executed",
        "_busy_since",
        "max_queue_depth",
    )

    def __new__(cls, *args, **kwargs):
        # Kernel routing: a core built on a compiled-kernel loop *is* the
        # C implementation (construction is the only selection point; see
        # repro.kernel). Instrumented cores stay pure — the C kernel has
        # no tracer hooks. Subclasses always stay pure.
        if cls is CpuCore and args:
            tracer = kwargs.get(
                "tracer", args[3] if len(args) > 3 else NULL_TRACER
            )
            ck = compiled_for(args[0])
            if ck is not None and not tracer.enabled:
                return ck.CpuCore(*args, **kwargs)
        return super().__new__(cls)

    def __init__(
        self,
        loop: EventLoop,
        freq_hz: float,
        name: str = "cpu0",
        tracer: Tracer = NULL_TRACER,
    ):
        if freq_hz <= 0:
            raise ValueError("core frequency must be positive")
        self._loop = loop
        self._freq_hz = float(freq_hz)
        self.name = name
        self._tracer = tracer
        self._queue: Deque[WorkItem] = deque()
        self._high_queue: Deque[WorkItem] = deque()
        self._current: Optional[WorkItem] = None
        self._completion_event = None
        # accounting
        self.busy_ns_total: int = 0
        self.items_executed: int = 0
        self.cycles_executed: int = 0
        self._busy_since: Optional[int] = None
        self.max_queue_depth: int = 0

    # -- frequency ----------------------------------------------------------

    @property
    def freq_hz(self) -> float:
        """Current clock frequency in Hz."""
        return self._freq_hz

    def set_frequency(self, freq_hz: float) -> None:
        """Change the clock; affects items started after this call."""
        if freq_hz <= 0:
            raise ValueError("core frequency must be positive")
        if freq_hz != self._freq_hz and self._tracer.enabled:
            self._tracer.emit(self._loop.now, self.name, "freq_change",
                              old_hz=self._freq_hz, new_hz=freq_hz)
        self._freq_hz = float(freq_hz)

    # -- queueing ----------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while an item is executing."""
        return self._current is not None

    @property
    def queue_depth(self) -> int:
        """Items waiting (not counting the one executing)."""
        return len(self._queue) + len(self._high_queue)

    def submit(self, item: WorkItem, continuation: bool = False) -> None:
        """Enqueue *item*; it runs when the core reaches it.

        *continuation* queues the item at the *head* of its class: the
        way ``tcp_write_xmit`` keeps draining one socket within a single
        softirq run before other queued work resumes.
        """
        item.submitted_at = self._loop.now
        queue = self._high_queue if item.priority == WorkItem.HIGH else self._queue
        if continuation:
            queue.appendleft(item)
        else:
            queue.append(item)
        depth = len(self._queue) + len(self._high_queue)
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        if self._current is None:
            self._start_next()

    def submit_work(
        self,
        cycles: int,
        callback: Callable[[], None],
        name: str = "work",
        priority: int = WorkItem.NORMAL,
        continuation: bool = False,
    ) -> WorkItem:
        """Build and submit a :class:`WorkItem` in one call.

        This is the executor-facing entry point: going through it (rather
        than constructing the item at the call site) lets the compiled
        kernel build its own WorkItem without a Python-side allocation.
        """
        item = WorkItem(cycles, callback, name, priority)
        self.submit(item, continuation)
        return item

    # -- utilization --------------------------------------------------------

    def busy_ns_up_to_now(self) -> int:
        """Total busy nanoseconds including the in-flight item so far."""
        total = self.busy_ns_total
        if self._busy_since is not None:
            total += self._loop.now - self._busy_since
        return total

    # -- internals ----------------------------------------------------------

    def _start_next(self) -> None:
        if self._high_queue:
            item = self._high_queue.popleft()
        elif self._queue:
            item = self._queue.popleft()
        else:
            return
        loop = self._loop
        now = loop.now
        self._current = item
        item.started_at = now
        self._busy_since = now
        # Inlined cycles_to_ns (same expression, so timings stay
        # bit-identical); the freq > 0 invariant is enforced at set time.
        duration = int(round(item.cycles * SEC / self._freq_hz))
        self._completion_event = loop.call_after(duration, self._complete, item)

    def _complete(self, item: WorkItem) -> None:
        busy_since = self._busy_since
        if busy_since is not None:
            self.busy_ns_total += self._loop.now - busy_since
            self._busy_since = None
        self._current = None
        self._completion_event = None
        self.items_executed += 1
        self.cycles_executed += item.cycles
        if self._tracer.enabled:
            # start_ns makes this a duration slice in the Chrome trace
            # (see repro.obs.trace_export.chrome_trace_events).
            self._tracer.emit(self._loop.now, self.name, "exec",
                              item=item.name, start_ns=item.started_at,
                              cycles=item.cycles)
        # Run the callback *before* starting the next item so that any
        # work it submits lands behind already-queued items (FIFO), the
        # same way a softirq handler re-raises itself.
        item.callback()
        if self._current is None:
            self._start_next()
