"""CPU clusters and big.LITTLE topologies (Table 1 of the paper).

A phone SoC exposes one or two *clusters* (LITTLE = efficiency cores,
BIG = performance cores), each with its own OPP table (the discrete
frequencies the governor may select). The paper's four device
configurations are expressed against this structure:

* Low-End  — BIG cluster disabled, LITTLE pinned at its minimum OPP,
* Mid-End  — BIG cluster disabled, LITTLE pinned at its median OPP,
* High-End — LITTLE cluster disabled, BIG pinned at its maximum OPP,
* Default  — both clusters enabled, dynamic governor decides.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..sim import EventLoop, Tracer, NULL_TRACER
from .core import CpuCore

__all__ = ["CpuCluster", "BigLittleCpu"]


class CpuCluster:
    """A group of identical cores sharing an OPP (frequency) table."""

    def __init__(
        self,
        loop: EventLoop,
        name: str,
        opp_table_hz: Sequence[float],
        num_cores: int = 4,
        tracer: Tracer = NULL_TRACER,
    ):
        if not opp_table_hz:
            raise ValueError("OPP table must not be empty")
        if num_cores < 1:
            raise ValueError("a cluster needs at least one core")
        self.name = name
        #: Sorted ascending list of selectable frequencies (Hz).
        self.opp_table_hz: List[float] = sorted(float(f) for f in opp_table_hz)
        self.cores: List[CpuCore] = [
            CpuCore(loop, self.opp_table_hz[0], name=f"{name}{i}", tracer=tracer)
            for i in range(num_cores)
        ]
        self.enabled = True

    @property
    def min_freq_hz(self) -> float:
        """Lowest OPP."""
        return self.opp_table_hz[0]

    @property
    def max_freq_hz(self) -> float:
        """Highest OPP."""
        return self.opp_table_hz[-1]

    @property
    def median_freq_hz(self) -> float:
        """Median OPP (the paper's Mid-End pin point)."""
        return self.opp_table_hz[len(self.opp_table_hz) // 2]

    def nearest_opp(self, target_hz: float) -> float:
        """Lowest OPP at or above *target_hz* (or the max OPP)."""
        for opp in self.opp_table_hz:
            if opp >= target_hz:
                return opp
        return self.opp_table_hz[-1]

    def set_all_frequencies(self, freq_hz: float) -> None:
        """Pin every core in the cluster to *freq_hz*."""
        for core in self.cores:
            core.set_frequency(freq_hz)


class BigLittleCpu:
    """A big.LITTLE SoC: a LITTLE cluster and (optionally) a BIG cluster.

    ``active_core`` is the core the network stack is currently bound to;
    static configurations never change it, the dynamic (Default) policy
    migrates it between clusters.
    """

    def __init__(self, little: CpuCluster, big: Optional[CpuCluster] = None):
        self.little = little
        self.big = big
        self._active_core: CpuCore = little.cores[0]

    @property
    def active_core(self) -> CpuCore:
        """Core currently hosting network-stack work."""
        return self._active_core

    def bind_to(self, core: CpuCore) -> None:
        """Re-bind network-stack work to *core* (new work only)."""
        self._active_core = core

    def clusters(self) -> List[CpuCluster]:
        """Enabled clusters, LITTLE first."""
        out = []
        if self.little.enabled:
            out.append(self.little)
        if self.big is not None and self.big.enabled:
            out.append(self.big)
        return out

    def disable_big(self) -> None:
        """Hot-unplug the BIG cluster (Low-End / Mid-End configs)."""
        if self.big is not None:
            self.big.enabled = False
        self._active_core = self.little.cores[0]

    def disable_little(self) -> None:
        """Hot-unplug the LITTLE cluster (High-End config)."""
        if self.big is None:
            raise ValueError("cannot disable LITTLE without a BIG cluster")
        self.little.enabled = False
        self._active_core = self.big.cores[0]

    def all_cores(self) -> List[CpuCore]:
        """Every core on enabled clusters."""
        cores: List[CpuCore] = []
        for cluster in self.clusters():
            cores.extend(cluster.cores)
        return cores
