"""CPU frequency governors and the dynamic (Default) placement policy.

Three governors cover the paper's Table 1:

* :class:`UserspaceGovernor` — pin a fixed frequency (Low-End, Mid-End,
  High-End configurations),
* :class:`PerformanceGovernor` — pin the maximum OPP,
* :class:`SchedutilGovernor` — the kernel's utilization-driven governor,
  used by the Default configuration together with
  :class:`DynamicCpuPolicy`, which also migrates the network-stack work
  between LITTLE and BIG clusters and applies a sustained-power (thermal)
  cap, the way production phones do.

The schedutil formula follows the kernel: ``next_freq = 1.25 * util_hz``
where ``util_hz`` is the frequency-invariant utilization (busy fraction at
the current clock times that clock).
"""

from __future__ import annotations

from typing import Optional

from ..sim import EventLoop, PeriodicTimer, Tracer, NULL_TRACER
from ..units import MSEC
from .cluster import BigLittleCpu, CpuCluster
from .core import CpuCore

__all__ = [
    "UserspaceGovernor",
    "PerformanceGovernor",
    "SchedutilGovernor",
    "ThermalModel",
    "DynamicCpuPolicy",
]


class UserspaceGovernor:
    """Pin a cluster at a caller-chosen frequency (``userspace`` governor)."""

    def __init__(self, cluster: CpuCluster, freq_hz: float):
        self.cluster = cluster
        self.freq_hz = cluster.nearest_opp(freq_hz)

    def start(self) -> None:
        """Apply the pinned frequency."""
        self.cluster.set_all_frequencies(self.freq_hz)

    def stop(self) -> None:
        """No periodic work to stop."""


class PerformanceGovernor(UserspaceGovernor):
    """Pin a cluster at its maximum OPP."""

    def __init__(self, cluster: CpuCluster):
        super().__init__(cluster, cluster.max_freq_hz)


class ThermalModel:
    """Leaky-bucket sustained-power model.

    Running above ``sustained_hz`` accumulates heat proportional to the
    excess; heat decays when running at or below it. Once the budget is
    exhausted the policy must cap the clock at ``sustained_hz`` until the
    bucket drains below a low-water mark. This reproduces the familiar
    phone behaviour of short boosts followed by a lower steady clock.
    """

    def __init__(
        self,
        sustained_hz: float,
        budget: float = 1.0,
        low_water: float = 0.5,
        heat_rate: float = 2.0,
        cool_rate: float = 0.02,
    ):
        self.sustained_hz = float(sustained_hz)
        self.budget = float(budget)
        self.low_water = float(low_water)
        self.heat_rate = float(heat_rate)
        self.cool_rate = float(cool_rate)
        self.heat = 0.0
        self.throttled = False

    def update(self, freq_hz: float, max_hz: float, dt_seconds: float) -> None:
        """Advance the model by *dt_seconds* at clock *freq_hz*."""
        if freq_hz > self.sustained_hz and max_hz > self.sustained_hz:
            excess = (freq_hz - self.sustained_hz) / (max_hz - self.sustained_hz)
            self.heat += excess * self.heat_rate * dt_seconds
        else:
            self.heat -= self.cool_rate * dt_seconds
        self.heat = max(0.0, self.heat)
        if self.heat >= self.budget:
            self.throttled = True
        elif self.heat <= self.low_water:
            self.throttled = False

    def cap(self, requested_hz: float) -> float:
        """Clamp a requested clock to the thermal envelope."""
        if self.throttled:
            return min(requested_hz, self.sustained_hz)
        return requested_hz


class SchedutilGovernor:
    """Kernel-style utilization-driven frequency selection for one cluster."""

    #: kernel's C constant: next_freq = 1.25 * util
    MARGIN = 1.25

    def __init__(
        self,
        loop: EventLoop,
        cluster: CpuCluster,
        sample_period_ns: int = 10 * MSEC,
        thermal: Optional[ThermalModel] = None,
        tracer: Tracer = NULL_TRACER,
    ):
        self._loop = loop
        self.cluster = cluster
        self.thermal = thermal
        self._tracer = tracer
        self._timer = PeriodicTimer(loop, sample_period_ns, self._sample, name="schedutil")
        self._last_busy = {id(c): 0 for c in cluster.cores}
        self._last_time = 0
        self.sample_period_ns = sample_period_ns

    def start(self) -> None:
        """Begin periodic sampling; cores start at the minimum OPP."""
        self.cluster.set_all_frequencies(self.cluster.min_freq_hz)
        self._last_time = self._loop.now
        for core in self.cluster.cores:
            self._last_busy[id(core)] = core.busy_ns_up_to_now()
        self._timer.start()

    def stop(self) -> None:
        """Stop periodic sampling."""
        self._timer.stop()

    def _sample(self) -> None:
        now = self._loop.now
        dt = max(1, now - self._last_time)
        busiest_util_hz = 0.0
        for core in self.cluster.cores:
            busy = core.busy_ns_up_to_now()
            frac = (busy - self._last_busy[id(core)]) / dt
            self._last_busy[id(core)] = busy
            busiest_util_hz = max(busiest_util_hz, frac * core.freq_hz)
        self._last_time = now
        target = self.MARGIN * busiest_util_hz
        freq = self.cluster.nearest_opp(target)
        if self.thermal is not None:
            self.thermal.update(
                self.cluster.cores[0].freq_hz,
                self.cluster.max_freq_hz,
                dt / 1e9,
            )
            freq = self.thermal.cap(freq)
        self.cluster.set_all_frequencies(freq)


class DynamicCpuPolicy:
    """The paper's *Default* configuration: dynamic scaling + migration.

    Runs schedutil-style sampling over both clusters of a
    :class:`~repro.cpu.cluster.BigLittleCpu`, migrates the network-stack
    binding from LITTLE to BIG when the LITTLE cluster cannot satisfy the
    utilization target (with hysteresis on the way down), and applies a
    :class:`ThermalModel` to the BIG cluster so sustained load settles at
    the phone's sustainable clock rather than its burst maximum.
    """

    MARGIN = 1.25
    #: fraction of LITTLE max below which we migrate back down
    DOWN_THRESHOLD = 0.6

    def __init__(
        self,
        loop: EventLoop,
        cpu: BigLittleCpu,
        sample_period_ns: int = 10 * MSEC,
        thermal: Optional[ThermalModel] = None,
        tracer: Tracer = NULL_TRACER,
    ):
        self._loop = loop
        self.cpu = cpu
        self.thermal = thermal
        self._tracer = tracer
        self._timer = PeriodicTimer(loop, sample_period_ns, self._sample, name="dynamic-policy")
        self._last_busy = 0
        self._last_time = 0
        self.migrations = 0

    def start(self) -> None:
        """Start on the LITTLE cluster at its minimum OPP."""
        self.cpu.little.set_all_frequencies(self.cpu.little.min_freq_hz)
        if self.cpu.big is not None:
            self.cpu.big.set_all_frequencies(self.cpu.big.min_freq_hz)
        self.cpu.bind_to(self.cpu.little.cores[0])
        self._last_time = self._loop.now
        self._last_busy = self.cpu.active_core.busy_ns_up_to_now()
        self._timer.start()

    def stop(self) -> None:
        """Stop periodic sampling."""
        self._timer.stop()

    # -- internals ----------------------------------------------------------

    def _sample(self) -> None:
        now = self._loop.now
        dt = max(1, now - self._last_time)
        core = self.cpu.active_core
        busy = core.busy_ns_up_to_now()
        util_frac = (busy - self._last_busy) / dt
        util_hz = util_frac * core.freq_hz
        self._last_time = now
        target = self.MARGIN * util_hz

        big = self.cpu.big
        on_big = big is not None and core in big.cores

        if self.thermal is not None and big is not None:
            self.thermal.update(core.freq_hz if on_big else 0.0, big.max_freq_hz, dt / 1e9)

        if not on_big:
            if big is not None and big.enabled and target > self.cpu.little.max_freq_hz:
                self._migrate(big)
                return
            self.cpu.little.set_all_frequencies(self.cpu.little.nearest_opp(target))
        else:
            assert big is not None
            if target < self.DOWN_THRESHOLD * self.cpu.little.max_freq_hz:
                self._migrate(self.cpu.little)
                return
            freq = big.nearest_opp(target)
            if self.thermal is not None:
                freq = self.thermal.cap(freq)
            big.set_all_frequencies(freq)

    def _migrate(self, cluster: CpuCluster) -> None:
        new_core = cluster.cores[0]
        # Start the destination near the utilization point so the workload
        # does not stall while the governor re-converges.
        cluster.set_all_frequencies(cluster.nearest_opp(cluster.max_freq_hz * 0.6))
        self.cpu.bind_to(new_core)
        self.migrations += 1
        self._last_busy = new_core.busy_ns_up_to_now()
        if self._tracer.enabled:
            self._tracer.emit(self._loop.now, "cpu-policy", "migrate",
                              to=new_core.name)
