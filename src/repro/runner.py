"""Parallel experiment runner: fan grids and replications across cores.

Every figure/table of the paper is a grid of independent
(cc x connections x cpu_config x ...) points, and each point is a fully
deterministic simulation — perfect fan-out material. This module runs
grids through a :class:`concurrent.futures.ProcessPoolExecutor` while
keeping the three properties the benchmarks rely on:

1. **Determinism** — results come back keyed by grid index, never by
   completion order, so ``run_grid(specs, jobs=N)`` is element-wise
   identical to ``jobs=1`` (simulations are seeded; specs cross the
   process boundary in the exact-round-trip wire format of
   :mod:`repro.core.scenario`, which transports ints and floats
   exactly).
2. **Error isolation** — one failing point becomes a
   :class:`GridPointError` carrying its spec and traceback instead of
   killing the sweep; by default the errors are raised together once
   every other point has finished.
3. **Graceful degradation** — ``jobs=1`` (or a platform without working
   multiprocessing) runs the same grid serially in-process.

Two layers sit in front of the pool:

* **Result cache** — by default every point is looked up in the
  content-addressed on-disk cache (:mod:`repro.cache`) before dispatch;
  hits short-circuit the simulation entirely and misses are written
  back, so re-running a figure grid after an unrelated change costs
  milliseconds instead of minutes. ``cache=False`` (or
  ``REPRO_CACHE=off``) bypasses it.
* **Chunked dispatch** — pool tasks carry batches of spec dicts rather
  than one point each, amortizing the per-task IPC round trip on grids
  of many short simulations. The chunk size auto-sizes from the grid
  and worker counts (about :data:`TASKS_PER_WORKER` tasks per worker)
  and can be pinned via ``REPRO_CHUNK`` or the ``chunk`` argument;
  ordering and per-point error capture are unaffected.

The worker count comes from, in order: the ``jobs`` argument, the
``REPRO_JOBS`` environment variable, then ``os.cpu_count()``.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import FrozenSet, List, Optional, Sequence, Tuple, Union

from .cache import ResultCache, resolve_cache
from .core.experiment import (
    ExperimentResult,
    ExperimentSpec,
    ReplicatedResult,
    run_experiment,
)
from .core.scenario import spec_from_dict, spec_to_dict
from .kernel import KERNEL_ENV_VAR, compiled_components, resolve_kernel
from .metrics.summary import RunSet
from .obs.ledger import RunLedger, resolve_ledger
from .obs.live import (
    GridMonitor,
    progress_done,
    progress_error,
    progress_hit,
    progress_start,
)

__all__ = [
    "GridPointError",
    "GridReport",
    "ExperimentGridError",
    "resolve_jobs",
    "resolve_chunk",
    "resolve_worker_jobs",
    "run_grid",
    "run_grid_report",
    "run_replicated_grid",
    "run_replicated_grid_report",
    "run_replicated_parallel",
]

#: environment variable consulted when ``jobs`` is not given explicitly
JOBS_ENV_VAR = "REPRO_JOBS"

#: environment variable consulted when ``chunk`` is not given explicitly
CHUNK_ENV_VAR = "REPRO_CHUNK"

#: auto chunk sizing target: enough tasks for this many rounds of
#: dynamic load balancing per worker
TASKS_PER_WORKER = 4

#: auto chunk sizing never batches more points than this per task
#: (bounds the load-balance penalty when one chunk lands slow points)
MAX_AUTO_CHUNK = 32


@dataclass
class GridPointError:
    """One grid point that raised instead of producing a result."""

    index: int
    spec: ExperimentSpec
    error: str
    traceback: str

    def __str__(self) -> str:
        return f"grid point {self.index} ({self.spec.label()}): {self.error}"


class ExperimentGridError(RuntimeError):
    """Raised by :func:`run_grid` when points failed (after all finished)."""

    def __init__(self, errors: Sequence[GridPointError]):
        self.errors = list(errors)
        first = self.errors[0]
        summary = "; ".join(str(e) for e in self.errors[:3])
        if len(self.errors) > 3:
            summary += f"; ... ({len(self.errors)} total)"
        super().__init__(
            f"{len(self.errors)} grid point(s) failed: {summary}\n"
            f"first traceback:\n{first.traceback}"
        )


@dataclass
class GridReport:
    """A grid's results plus the timing data the CLI/benchmarks print."""

    results: List[Union[ExperimentResult, GridPointError]]
    #: worker processes actually used (1 = serial path)
    jobs: int
    wall_s: float
    #: simulation events dispatched across all *computed* points (cache
    #: hits contribute nothing: no simulation ran for them)
    total_events: int
    errors: List[GridPointError] = field(default_factory=list)
    #: points served from the result cache without running a simulation
    cache_hits: int = 0
    #: points computed and written back to the cache
    cache_misses: int = 0
    #: points computed but not cacheable (failed points are never cached)
    cache_skipped: int = 0
    #: whether a result cache was consulted at all for this grid
    cache_used: bool = False
    #: spec batch size per pool task (1 = unchunked / serial path)
    chunk: int = 1
    #: simulation-kernel backend the grid ran under ("pure"/"compiled")
    kernel: str = "pure"
    #: component families the backend ran in C (empty for pure); see
    #: :func:`repro.kernel.compiled_components`
    kernel_components: Tuple[str, ...] = ()
    #: grid indices that were served from the result cache
    cache_hit_indices: FrozenSet[int] = frozenset()
    #: run-ledger record id for this invocation (None: ledger off/failed)
    run_id: Optional[str] = None
    #: degradations worth surfacing (kernel fallbacks, truncated traces);
    #: rendered by :meth:`summary_line` so they cannot pass silently
    notices: List[str] = field(default_factory=list)

    @property
    def points(self) -> int:
        """Number of grid points."""
        return len(self.results)

    @property
    def events_per_sec(self) -> float:
        """Aggregate simulation event throughput over the wall clock."""
        return self.total_events / self.wall_s if self.wall_s > 0 else 0.0

    def summary_line(self) -> str:
        """One-line human-readable timing summary."""
        line = (
            f"points={self.points} workers={self.jobs} "
            f"wall={self.wall_s:.2f}s events/sec={self.events_per_sec:,.0f}"
        )
        if self.chunk > 1:
            line += f" chunk={self.chunk}"
        if self.kernel != "pure":
            line += f" kernel={self.kernel}"
            if self.kernel_components:
                line += f"[{'+'.join(self.kernel_components)}]"
        if self.cache_used:
            line += f" cache hits={self.cache_hits} misses={self.cache_misses}"
            if self.cache_skipped:
                line += f" skipped={self.cache_skipped}"
        if self.errors:
            line += f" errors={len(self.errors)}"
        for notice in self.notices:
            line += f" [note: {notice}]"
        return line


def _positive_int_env(env_var: str, what: str) -> Optional[int]:
    """Parse *env_var* as a positive integer (``None`` when unset).

    Raises ``ValueError`` naming the variable on junk values — a bad
    ``REPRO_JOBS``/``REPRO_CHUNK`` export must fail here, loudly, not as
    an opaque crash deep inside the process-pool machinery.
    """
    env = os.environ.get(env_var, "").strip()
    if not env:
        return None
    try:
        value = int(env)
    except ValueError:
        raise ValueError(
            f"{env_var} must be a positive integer "
            f"({what}), got {env!r}"
        ) from None
    if value < 1:
        raise ValueError(
            f"{env_var} must be a positive integer ({what}), got {env!r}"
        )
    return value


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve the worker count: argument > ``REPRO_JOBS`` > cpu_count.

    Both the argument and the environment variable must be positive
    integers; anything else raises ``ValueError`` immediately (naming
    ``REPRO_JOBS`` when the value came from the environment).
    """
    if jobs is None:
        env_jobs = _positive_int_env(JOBS_ENV_VAR, "worker process count")
        return env_jobs if env_jobs is not None else (os.cpu_count() or 1)
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ValueError(
            f"jobs must be an integer, got {type(jobs).__name__} {jobs!r}"
        )
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def resolve_worker_jobs(jobs: Optional[int] = None) -> int:
    """Resolve *jobs* for a pull-worker: never above the machine's cores.

    A distributed sweep multiplies across worker *processes*, so an
    individual worker gains nothing from oversubscribing its own box —
    on a 1-core host a per-chunk process pool is pure overhead (the
    measured ``parallel.speedup = 0.95`` pathology). Capping at
    ``os.cpu_count()`` sends 1-core workers down the serial fast path of
    :func:`run_grid_report` while multi-core workers still fan out.
    An explicit ``jobs``/``REPRO_JOBS`` above the core count is clamped,
    not rejected: the same command line must work across heterogeneous
    hosts.
    """
    return min(resolve_jobs(jobs), os.cpu_count() or 1)


def resolve_chunk(
    chunk: Optional[int] = None, points: int = 0, jobs: int = 1
) -> int:
    """Resolve the per-task batch size: argument > ``REPRO_CHUNK`` > auto.

    Auto-sizing splits *points* into about :data:`TASKS_PER_WORKER`
    tasks per worker (so the pool still load-balances) and never batches
    more than :data:`MAX_AUTO_CHUNK` points per task. Explicit values
    must be positive integers.
    """
    if chunk is None:
        env_chunk = _positive_int_env(CHUNK_ENV_VAR, "specs per pool task")
        if env_chunk is not None:
            return env_chunk
        if points <= 0:
            return 1
        auto = -(-points // (max(1, jobs) * TASKS_PER_WORKER))  # ceil div
        return max(1, min(MAX_AUTO_CHUNK, auto))
    if isinstance(chunk, bool) or not isinstance(chunk, int):
        raise ValueError(
            f"chunk must be an integer, got {type(chunk).__name__} {chunk!r}"
        )
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    return chunk


#: worker-process progress queue (set by :func:`_init_worker_progress`;
#: ``None`` keeps the un-monitored hot path at zero extra cost)
_PROGRESS_QUEUE = None


def _init_worker_progress(progress_queue=None) -> None:
    """Pool initializer: remember the coordinator's progress queue."""
    global _PROGRESS_QUEUE
    _PROGRESS_QUEUE = progress_queue


def _emit_progress(event: Tuple) -> None:
    """Best-effort progress emission (a full/dead queue never fails a run)."""
    q = _PROGRESS_QUEUE
    if q is not None:
        try:
            q.put_nowait(event)
        except Exception:  # noqa: BLE001 - telemetry must never kill work
            pass


def _run_point(
    indexed: Tuple[int, ExperimentSpec],
) -> Tuple[int, Optional[ExperimentResult], Optional[GridPointError]]:
    """Worker body: never raises, so one bad point can't kill the sweep."""
    index, spec = indexed
    try:
        return index, run_experiment(spec), None
    except Exception as exc:  # noqa: BLE001 - captured per point by design
        return index, None, GridPointError(
            index=index,
            spec=spec,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
        )


def _run_wire_point(
    indexed: Tuple[int, dict],
) -> Tuple[int, Optional[ExperimentResult], Optional[GridPointError]]:
    """Worker body for pool workers: specs arrive as wire dicts.

    Specs cross the process boundary in the declarative wire format
    (:mod:`repro.core.scenario`) rather than as pickled dataclasses, so
    a worker — potentially a different interpreter build, or in the
    ROADMAP's production setting a remote backend — only has to agree on
    names and numbers. The round trip is exact, so results are
    bit-identical to the serial path.

    When the coordinator attached a :class:`~repro.obs.live.GridMonitor`,
    the point's lifecycle (started / finished / failed, with events and
    per-point wall time) is emitted over the progress queue.
    """
    index, payload = indexed
    spec = spec_from_dict(payload)
    if _PROGRESS_QUEUE is None:
        return _run_point((index, spec))
    _emit_progress(progress_start(index, spec.label()))
    t0 = time.perf_counter()
    outcome = _run_point((index, spec))
    _, result, error = outcome
    if error is None:
        _emit_progress(progress_done(
            index, result.events_processed, time.perf_counter() - t0))
    else:
        _emit_progress(progress_error(index, error.error))
    return outcome


def _run_wire_chunk(
    batch: List[Tuple[int, dict]],
) -> List[Tuple[int, Optional[ExperimentResult], Optional[GridPointError]]]:
    """Worker body for chunked dispatch: one task, many wire points.

    Each point keeps its own try/except (via :func:`_run_wire_point`),
    so a failing point inside a batch still becomes a per-point
    :class:`GridPointError` and its batchmates still run.
    """
    return [_run_wire_point(item) for item in batch]


Outcome = Tuple[int, Optional[ExperimentResult], Optional[GridPointError]]


def _run_pending_serial(
    pending: List[Tuple[int, ExperimentSpec]],
    monitor: Optional[GridMonitor],
) -> List[Outcome]:
    """The serial path, with in-process progress events when monitored."""
    if monitor is None:
        return [_run_point(item) for item in pending]
    outcomes: List[Outcome] = []
    for index, spec in pending:
        monitor.record(progress_start(index, spec.label()))
        t0 = time.perf_counter()
        outcome = _run_point((index, spec))
        _, result, error = outcome
        if error is None:
            monitor.record(progress_done(
                index, result.events_processed, time.perf_counter() - t0))
        else:
            monitor.record(progress_error(index, error.error))
        outcomes.append(outcome)
    return outcomes


def run_grid_report(
    specs: Sequence[ExperimentSpec],
    jobs: Optional[int] = None,
    raise_on_error: bool = True,
    cache: Union[None, bool, ResultCache] = None,
    chunk: Optional[int] = None,
    monitor: Optional[GridMonitor] = None,
    ledger: Union[None, bool, RunLedger] = None,
) -> GridReport:
    """Run every spec and return results (grid order) plus timing data.

    ``jobs`` > 1 fans points across a process pool; results are ordered
    by grid index regardless of completion order. Failed points appear
    as :class:`GridPointError` entries in ``results`` (and in
    ``errors``); with *raise_on_error* they are raised as one
    :class:`ExperimentGridError` after the whole grid has run, so a
    sweep always produces every result it can.

    *cache* selects the result cache (see
    :func:`repro.cache.resolve_cache`): by default every point is looked
    up before dispatch — hits are returned without running anything and
    misses are written back after computing. *chunk* sets how many spec
    dicts ride in each pool task (``None`` = ``REPRO_CHUNK``, then
    auto-sizing); neither knob changes results, ordering, or error
    capture.

    *monitor* (a :class:`~repro.obs.live.GridMonitor`) receives live
    progress events — cache hits from the coordinator, point lifecycles
    from the workers over a multiprocessing queue — and is finished
    before this returns. *ledger* selects the run ledger
    (:func:`repro.obs.ledger.resolve_ledger`): unless disabled, one grid
    manifest record is appended after the run (its id lands in
    :attr:`GridReport.run_id`). Neither changes results, metrics,
    ordering, or error capture.
    """
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    start = time.perf_counter()

    store = resolve_cache(cache)
    slots: List[Optional[Outcome]] = [None] * len(specs)
    cache_hits = 0
    hit_indices: List[int] = []
    pending: List[Tuple[int, ExperimentSpec]]
    if store is not None:
        pending = []
        for i, spec in enumerate(specs):
            hit = store.get(spec)
            if hit is not None:
                slots[i] = (i, hit, None)
                cache_hits += 1
                hit_indices.append(i)
                if monitor is not None:
                    monitor.record(progress_hit(i))
            else:
                pending.append((i, spec))
    else:
        pending = list(enumerate(specs))

    jobs = min(jobs, len(pending)) if pending else 1
    chunk_size = 1
    outcomes: List[Outcome]
    if jobs == 1 or len(pending) <= 1:
        jobs = 1
        outcomes = _run_pending_serial(pending, monitor)
    else:
        chunk_size = resolve_chunk(chunk, points=len(pending), jobs=jobs)
        if monitor is not None:
            monitor.chunk = chunk_size
        progress_queue = None
        drain_stop = drainer = None
        try:
            # Workers receive serialized spec dicts, not pickled specs,
            # batched chunk_size to a task to amortize the IPC round trip.
            wire = [(i, spec_to_dict(spec)) for i, spec in pending]
            batches = [
                wire[k : k + chunk_size] for k in range(0, len(wire), chunk_size)
            ]
            pool_kwargs = {}
            if monitor is not None:
                # The queue rides the pool's initializer (it crosses the
                # process boundary through the Process constructor, the
                # only channel multiprocessing queues may travel); a
                # coordinator-side thread drains it into the monitor
                # while map() blocks on results.
                progress_queue = multiprocessing.get_context().Queue()
                drain_stop = threading.Event()

                def _drain() -> None:
                    while True:
                        try:
                            event = progress_queue.get(timeout=0.1)
                        except queue_module.Empty:
                            if drain_stop.is_set():
                                return
                            continue
                        except (OSError, EOFError, ValueError):
                            return
                        monitor.record(event)

                drainer = threading.Thread(
                    target=_drain, name="repro-grid-progress", daemon=True
                )
                drainer.start()
                pool_kwargs = {
                    "initializer": _init_worker_progress,
                    "initargs": (progress_queue,),
                }
            with ProcessPoolExecutor(max_workers=jobs, **pool_kwargs) as pool:
                # map() yields in submission order == grid order.
                outcomes = [
                    outcome
                    for batch in pool.map(_run_wire_chunk, batches)
                    for outcome in batch
                ]
        except (OSError, NotImplementedError, PermissionError):
            # Platforms without working process pools (restricted
            # sandboxes, missing /dev/shm) fall back to the serial path.
            jobs = 1
            chunk_size = 1
            outcomes = _run_pending_serial(pending, monitor)
        finally:
            if drainer is not None:
                drain_stop.set()
                drainer.join(timeout=5.0)
            if progress_queue is not None:
                progress_queue.close()

    cache_misses = cache_skipped = 0
    total_events = 0
    for index, result, error in outcomes:
        slots[index] = (index, result, error)
        if error is None:
            total_events += result.events_processed
            if store is not None:
                store.put(specs[index], result)
                cache_misses += 1
        elif store is not None:
            cache_skipped += 1
    wall = time.perf_counter() - start

    results: List[Union[ExperimentResult, GridPointError]] = []
    errors: List[GridPointError] = []
    for i, slot in enumerate(slots):
        assert slot is not None and slot[0] == i, "grid ordering violated"
        _, result, error = slot
        if error is not None:
            errors.append(error)
            results.append(error)
        else:
            results.append(result)
    if monitor is not None:
        monitor.finish()
    active_kernel = resolve_kernel()
    kernel_name = active_kernel.name
    notices: List[str] = []
    requested_kernel = (
        os.environ.get(KERNEL_ENV_VAR) or ""
    ).strip() or "pure"
    if requested_kernel != kernel_name:
        notices.append(
            f"kernel {requested_kernel!r} unavailable; grid ran "
            f"{kernel_name!r}"
        )
    report = GridReport(
        results=results,
        jobs=jobs,
        wall_s=wall,
        total_events=total_events,
        errors=errors,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        cache_skipped=cache_skipped,
        cache_used=store is not None,
        chunk=chunk_size,
        kernel=kernel_name,
        kernel_components=compiled_components(active_kernel),
        cache_hit_indices=frozenset(hit_indices),
        notices=notices,
    )
    # The manifest is appended even when the grid is about to raise:
    # the ledger records what ran, including its failures.
    ledger_store = resolve_ledger(ledger)
    if ledger_store is not None:
        report.run_id = ledger_store.record_grid(specs, report)
    if errors and raise_on_error:
        raise ExperimentGridError(errors)
    return report


def run_grid(
    specs: Sequence[ExperimentSpec],
    jobs: Optional[int] = None,
    raise_on_error: bool = True,
    cache: Union[None, bool, ResultCache] = None,
    chunk: Optional[int] = None,
    monitor: Optional[GridMonitor] = None,
    ledger: Union[None, bool, RunLedger] = None,
) -> List[Union[ExperimentResult, GridPointError]]:
    """Run every spec (possibly in parallel); results in grid order."""
    return run_grid_report(
        specs, jobs=jobs, raise_on_error=raise_on_error, cache=cache,
        chunk=chunk, monitor=monitor, ledger=ledger,
    ).results


def _replication_specs(spec: ExperimentSpec, runs: int) -> List[ExperimentSpec]:
    """The seeded replication points of *spec*, in replication order.

    Matches :func:`repro.core.experiment.run_replicated`: seeds are
    ``spec.seed + 1000*i``, so parallel and serial replication use
    identical simulations.
    """
    if runs < 1:
        raise ValueError("need at least one run")
    return [replace(spec, seed=spec.seed + 1000 * i) for i in range(runs)]


def run_replicated_grid_report(
    specs: Sequence[ExperimentSpec],
    runs: int = 3,
    jobs: Optional[int] = None,
    cache: Union[None, bool, ResultCache] = None,
    chunk: Optional[int] = None,
    monitor: Optional[GridMonitor] = None,
    ledger: Union[None, bool, RunLedger] = None,
) -> Tuple[List[ReplicatedResult], GridReport]:
    """Replicated aggregates plus the underlying flat grid's report.

    The report covers the ``len(specs) * runs`` flat replication points
    — its cache hit/miss counters and timing are what the CLI surfaces
    after a sweep. *monitor* and *ledger* observe the flat grid (see
    :func:`run_grid_report`).
    """
    specs = list(specs)
    flat: List[ExperimentSpec] = []
    for spec in specs:
        flat.extend(_replication_specs(spec, runs))
    report = run_grid_report(flat, jobs=jobs, cache=cache, chunk=chunk,
                             monitor=monitor, ledger=ledger)
    aggregates: List[ReplicatedResult] = []
    for i, spec in enumerate(specs):
        group = report.results[i * runs : (i + 1) * runs]
        stats = RunSet()
        for result in group:
            stats.add_run(result.scalar_metrics())
        aggregates.append(ReplicatedResult(spec=spec, runs=list(group), stats=stats))
    return aggregates, report


def run_replicated_grid(
    specs: Sequence[ExperimentSpec],
    runs: int = 3,
    jobs: Optional[int] = None,
    cache: Union[None, bool, ResultCache] = None,
    chunk: Optional[int] = None,
    monitor: Optional[GridMonitor] = None,
    ledger: Union[None, bool, RunLedger] = None,
) -> List[ReplicatedResult]:
    """Replicated aggregates for every spec, fanned out at run granularity.

    The pool sees ``len(specs) * runs`` independent points (the finest
    parallel grain), and each spec's :class:`ReplicatedResult` is then
    assembled in replication order — exactly what serial
    :func:`run_replicated` produces.
    """
    return run_replicated_grid_report(
        specs, runs=runs, jobs=jobs, cache=cache, chunk=chunk,
        monitor=monitor, ledger=ledger,
    )[0]


def run_replicated_parallel(
    spec: ExperimentSpec,
    runs: int = 3,
    jobs: Optional[int] = None,
    cache: Union[None, bool, ResultCache] = None,
) -> ReplicatedResult:
    """Parallel drop-in for :func:`repro.core.experiment.run_replicated`."""
    return run_replicated_grid([spec], runs=runs, jobs=jobs, cache=cache)[0]
