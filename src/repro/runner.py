"""Parallel experiment runner: fan grids and replications across cores.

Every figure/table of the paper is a grid of independent
(cc x connections x cpu_config x ...) points, and each point is a fully
deterministic simulation — perfect fan-out material. This module runs
grids through a :class:`concurrent.futures.ProcessPoolExecutor` while
keeping the three properties the benchmarks rely on:

1. **Determinism** — results come back keyed by grid index, never by
   completion order, so ``run_grid(specs, jobs=N)`` is element-wise
   identical to ``jobs=1`` (simulations are seeded; specs cross the
   process boundary in the exact-round-trip wire format of
   :mod:`repro.core.scenario`, which transports ints and floats
   exactly).
2. **Error isolation** — one failing point becomes a
   :class:`GridPointError` carrying its spec and traceback instead of
   killing the sweep; by default the errors are raised together once
   every other point has finished.
3. **Graceful degradation** — ``jobs=1`` (or a platform without working
   multiprocessing) runs the same grid serially in-process.

The worker count comes from, in order: the ``jobs`` argument, the
``REPRO_JOBS`` environment variable, then ``os.cpu_count()``.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple, Union

from .core.experiment import (
    ExperimentResult,
    ExperimentSpec,
    ReplicatedResult,
    run_experiment,
)
from .core.scenario import spec_from_dict, spec_to_dict
from .metrics.summary import RunSet

__all__ = [
    "GridPointError",
    "GridReport",
    "ExperimentGridError",
    "resolve_jobs",
    "run_grid",
    "run_grid_report",
    "run_replicated_grid",
    "run_replicated_parallel",
]

#: environment variable consulted when ``jobs`` is not given explicitly
JOBS_ENV_VAR = "REPRO_JOBS"


@dataclass
class GridPointError:
    """One grid point that raised instead of producing a result."""

    index: int
    spec: ExperimentSpec
    error: str
    traceback: str

    def __str__(self) -> str:
        return f"grid point {self.index} ({self.spec.label()}): {self.error}"


class ExperimentGridError(RuntimeError):
    """Raised by :func:`run_grid` when points failed (after all finished)."""

    def __init__(self, errors: Sequence[GridPointError]):
        self.errors = list(errors)
        first = self.errors[0]
        summary = "; ".join(str(e) for e in self.errors[:3])
        if len(self.errors) > 3:
            summary += f"; ... ({len(self.errors)} total)"
        super().__init__(
            f"{len(self.errors)} grid point(s) failed: {summary}\n"
            f"first traceback:\n{first.traceback}"
        )


@dataclass
class GridReport:
    """A grid's results plus the timing data the CLI/benchmarks print."""

    results: List[Union[ExperimentResult, GridPointError]]
    #: worker processes actually used (1 = serial path)
    jobs: int
    wall_s: float
    #: total simulation events dispatched across all points
    total_events: int
    errors: List[GridPointError] = field(default_factory=list)

    @property
    def points(self) -> int:
        """Number of grid points."""
        return len(self.results)

    @property
    def events_per_sec(self) -> float:
        """Aggregate simulation event throughput over the wall clock."""
        return self.total_events / self.wall_s if self.wall_s > 0 else 0.0

    def summary_line(self) -> str:
        """One-line human-readable timing summary."""
        return (
            f"points={self.points} workers={self.jobs} "
            f"wall={self.wall_s:.2f}s events/sec={self.events_per_sec:,.0f}"
            + (f" errors={len(self.errors)}" if self.errors else "")
        )


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve the worker count: argument > ``REPRO_JOBS`` > cpu_count."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV_VAR, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV_VAR} must be an integer, got {env!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _run_point(
    indexed: Tuple[int, ExperimentSpec],
) -> Tuple[int, Optional[ExperimentResult], Optional[GridPointError]]:
    """Worker body: never raises, so one bad point can't kill the sweep."""
    index, spec = indexed
    try:
        return index, run_experiment(spec), None
    except Exception as exc:  # noqa: BLE001 - captured per point by design
        return index, None, GridPointError(
            index=index,
            spec=spec,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
        )


def _run_wire_point(
    indexed: Tuple[int, dict],
) -> Tuple[int, Optional[ExperimentResult], Optional[GridPointError]]:
    """Worker body for pool workers: specs arrive as wire dicts.

    Specs cross the process boundary in the declarative wire format
    (:mod:`repro.core.scenario`) rather than as pickled dataclasses, so
    a worker — potentially a different interpreter build, or in the
    ROADMAP's production setting a remote backend — only has to agree on
    names and numbers. The round trip is exact, so results are
    bit-identical to the serial path.
    """
    index, payload = indexed
    return _run_point((index, spec_from_dict(payload)))


def run_grid_report(
    specs: Sequence[ExperimentSpec],
    jobs: Optional[int] = None,
    raise_on_error: bool = True,
) -> GridReport:
    """Run every spec and return results (grid order) plus timing data.

    ``jobs`` > 1 fans points across a process pool; results are ordered
    by grid index regardless of completion order. Failed points appear
    as :class:`GridPointError` entries in ``results`` (and in
    ``errors``); with *raise_on_error* they are raised as one
    :class:`ExperimentGridError` after the whole grid has run, so a
    sweep always produces every result it can.
    """
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    if specs:
        jobs = min(jobs, len(specs))
    start = time.perf_counter()
    outcomes: List[Tuple[int, Optional[ExperimentResult], Optional[GridPointError]]]
    if jobs == 1 or len(specs) <= 1:
        jobs = 1
        outcomes = [_run_point(item) for item in enumerate(specs)]
    else:
        try:
            # Workers receive serialized spec dicts, not pickled specs.
            wire = [(i, spec_to_dict(spec)) for i, spec in enumerate(specs)]
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                # map() yields in submission order == grid order.
                outcomes = list(pool.map(_run_wire_point, wire))
        except (OSError, NotImplementedError, PermissionError):
            # Platforms without working process pools (restricted
            # sandboxes, missing /dev/shm) fall back to the serial path.
            jobs = 1
            outcomes = [_run_point(item) for item in enumerate(specs)]
    wall = time.perf_counter() - start

    results: List[Union[ExperimentResult, GridPointError]] = []
    errors: List[GridPointError] = []
    total_events = 0
    for index, result, error in outcomes:
        assert index == len(results), "grid ordering violated"
        if error is not None:
            errors.append(error)
            results.append(error)
        else:
            total_events += result.events_processed
            results.append(result)
    if errors and raise_on_error:
        raise ExperimentGridError(errors)
    return GridReport(
        results=results,
        jobs=jobs,
        wall_s=wall,
        total_events=total_events,
        errors=errors,
    )


def run_grid(
    specs: Sequence[ExperimentSpec],
    jobs: Optional[int] = None,
    raise_on_error: bool = True,
) -> List[Union[ExperimentResult, GridPointError]]:
    """Run every spec (possibly in parallel); results in grid order."""
    return run_grid_report(specs, jobs=jobs, raise_on_error=raise_on_error).results


def _replication_specs(spec: ExperimentSpec, runs: int) -> List[ExperimentSpec]:
    """The seeded replication points of *spec*, in replication order.

    Matches :func:`repro.core.experiment.run_replicated`: seeds are
    ``spec.seed + 1000*i``, so parallel and serial replication use
    identical simulations.
    """
    if runs < 1:
        raise ValueError("need at least one run")
    return [replace(spec, seed=spec.seed + 1000 * i) for i in range(runs)]


def run_replicated_grid(
    specs: Sequence[ExperimentSpec],
    runs: int = 3,
    jobs: Optional[int] = None,
) -> List[ReplicatedResult]:
    """Replicated aggregates for every spec, fanned out at run granularity.

    The pool sees ``len(specs) * runs`` independent points (the finest
    parallel grain), and each spec's :class:`ReplicatedResult` is then
    assembled in replication order — exactly what serial
    :func:`run_replicated` produces.
    """
    specs = list(specs)
    flat: List[ExperimentSpec] = []
    for spec in specs:
        flat.extend(_replication_specs(spec, runs))
    flat_results = run_grid(flat, jobs=jobs)
    aggregates: List[ReplicatedResult] = []
    for i, spec in enumerate(specs):
        chunk = flat_results[i * runs : (i + 1) * runs]
        stats = RunSet()
        for result in chunk:
            stats.add_run(result.scalar_metrics())
        aggregates.append(ReplicatedResult(spec=spec, runs=list(chunk), stats=stats))
    return aggregates


def run_replicated_parallel(
    spec: ExperimentSpec,
    runs: int = 3,
    jobs: Optional[int] = None,
) -> ReplicatedResult:
    """Parallel drop-in for :func:`repro.core.experiment.run_replicated`."""
    return run_replicated_grid([spec], runs=runs, jobs=jobs)[0]
