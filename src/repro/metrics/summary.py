"""Aggregation of repeated experiment runs.

The paper averages every iperf3 result over at least 10 runs; the
equivalent here is :class:`RunSet`, which accumulates scalar metrics
across seeded replications and reports mean and standard deviation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .collector import StatAccumulator

__all__ = ["MetricSummary", "RunSet"]


@dataclass
class MetricSummary:
    """Mean/stdev/min/max of one metric across runs."""

    name: str
    mean: float
    stdev: float
    minimum: float
    maximum: float
    runs: int

    def __str__(self) -> str:
        return f"{self.name}: {self.mean:.2f} ± {self.stdev:.2f} (n={self.runs})"


class RunSet:
    """Collects named scalar metrics from replicated runs."""

    def __init__(self) -> None:
        self._metrics: Dict[str, StatAccumulator] = {}
        self.runs = 0

    def add_run(self, metrics: Dict[str, float]) -> None:
        """Record one run's scalar metrics."""
        self.runs += 1
        for name, value in metrics.items():
            self._metrics.setdefault(name, StatAccumulator()).add(float(value))

    def mean(self, name: str) -> float:
        """Mean of metric *name* across runs (0.0 if absent)."""
        acc = self._metrics.get(name)
        return acc.mean if acc else 0.0

    def stdev(self, name: str) -> float:
        """Standard deviation of metric *name* across runs."""
        acc = self._metrics.get(name)
        return acc.stdev if acc else 0.0

    def summary(self, name: str) -> MetricSummary:
        """Full summary of metric *name*."""
        acc = self._metrics.get(name)
        if acc is None or acc.count == 0:
            return MetricSummary(name, 0.0, 0.0, 0.0, 0.0, 0)
        return MetricSummary(
            name=name,
            mean=acc.mean,
            stdev=acc.stdev,
            minimum=acc.min_value or 0.0,
            maximum=acc.max_value or 0.0,
            runs=acc.count,
        )

    def names(self) -> List[str]:
        """Metric names seen so far."""
        return sorted(self._metrics)
