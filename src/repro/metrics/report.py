"""Plain-text rendering of tables and figure series.

The benchmark harness regenerates every table and figure of the paper as
text: tables as aligned columns, figures as labelled series (and a small
unicode bar chart for goodput comparisons). Keeping rendering here means
benches contain no formatting logic.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["render_table", "render_series", "render_bars"]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render an aligned text table."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: Sequence[tuple],
    title: str = "",
) -> str:
    """Render figure data: one labelled row of y-values per series.

    *series* is a sequence of ``(label, [y0, y1, ...])`` pairs aligned
    with *x_values*.
    """
    headers = [x_label] + [str(x) for x in x_values]
    rows = [[label] + list(values) for label, values in series]
    return render_table(headers, rows, title=title)


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    unit: str = "",
    width: int = 40,
    title: str = "",
) -> str:
    """Render a horizontal unicode bar chart (for goodput comparisons)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    peak = max(values) if values else 0.0
    label_width = max((len(l) for l in labels), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar_len = int(round(width * value / peak)) if peak > 0 else 0
        bar = "█" * bar_len
        lines.append(f"{label.ljust(label_width)} | {bar} {_fmt(value)}{unit}")
    return "\n".join(lines)
