"""Measurement and reporting: interval counters, accumulators, run
aggregation, and text rendering of tables/figures."""

from .collector import IntervalCounter, StatAccumulator
from .fairness import goodput_shares, jain_fairness_index
from .report import render_bars, render_series, render_table
from .summary import MetricSummary, RunSet

__all__ = [
    "IntervalCounter",
    "StatAccumulator",
    "jain_fairness_index",
    "goodput_shares",
    "MetricSummary",
    "RunSet",
    "render_table",
    "render_series",
    "render_bars",
]
