"""Measurement and reporting: interval counters, accumulators, run
aggregation, and text rendering of tables/figures."""

from .collector import IntervalCounter, StatAccumulator
from .report import render_bars, render_series, render_table
from .summary import MetricSummary, RunSet

__all__ = [
    "IntervalCounter",
    "StatAccumulator",
    "MetricSummary",
    "RunSet",
    "render_table",
    "render_series",
    "render_bars",
]
