"""Fairness metrics for multi-flow experiments.

Jain's fairness index over per-flow goodputs is the standard scalar for
"how evenly did the flows share the bottleneck": 1.0 when all flows get
equal throughput, approaching ``1/n`` when one of *n* flows takes
everything. The share vector itself is reported alongside so asymmetric
outcomes (BBR-vs-Cubic, RTT unfairness) stay inspectable.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["jain_fairness_index", "goodput_shares"]


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's index ``(Σx)² / (n·Σx²)`` over the positive entries.

    Flows with zero goodput in the measurement window (not yet started,
    already finished, or pure churn outside the window) are excluded —
    they describe lifetime, not contention. With zero or one active flow
    there is nothing to share unevenly, so the index is 1.0.
    """
    active = [float(v) for v in values if v > 0.0]
    if len(active) <= 1:
        return 1.0
    total = sum(active)
    squares = sum(v * v for v in active)
    return (total * total) / (len(active) * squares)


def goodput_shares(values: Sequence[float]) -> List[float]:
    """Each flow's fraction of the aggregate goodput (zeros stay zero).

    Returns an empty list when nothing was delivered at all, so callers
    can distinguish "no traffic" from "equal shares".
    """
    total = sum(float(v) for v in values)
    if total <= 0.0:
        return []
    return [float(v) / total for v in values]
