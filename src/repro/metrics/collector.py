"""Measurement primitives: interval counters and statistic accumulators."""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..sim import EventLoop
from ..units import SEC

__all__ = ["IntervalCounter", "StatAccumulator"]


class IntervalCounter:
    """Bins a byte/event stream into fixed time intervals.

    Used for iperf-style interval goodput reports: every ``add`` call is
    attributed to the bin of the current simulated time.
    """

    def __init__(self, loop: EventLoop, interval_ns: int):
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        self._loop = loop
        self.interval_ns = int(interval_ns)
        self._bins: Dict[int, int] = {}
        self.total = 0

    def add(self, amount: int) -> None:
        """Credit *amount* to the current interval."""
        index = self._loop.now // self.interval_ns
        self._bins[index] = self._bins.get(index, 0) + amount
        self.total += amount

    def series(self) -> List[Tuple[int, int]]:
        """(interval_start_ns, amount) pairs, time-ordered, gaps filled."""
        if not self._bins:
            return []
        lo = min(self._bins)
        hi = max(self._bins)
        return [
            (index * self.interval_ns, self._bins.get(index, 0))
            for index in range(lo, hi + 1)
        ]

    def total_between(self, start_ns: int, end_ns: int) -> int:
        """Sum of amounts in bins fully inside [start_ns, end_ns)."""
        total = 0
        for index, amount in self._bins.items():
            bin_start = index * self.interval_ns
            if bin_start >= start_ns and bin_start + self.interval_ns <= end_ns:
                total += amount
        return total

    def rate_bps_between(self, start_ns: int, end_ns: int) -> float:
        """Average rate (bits/s) over complete bins inside the window."""
        span = (end_ns - start_ns) // self.interval_ns * self.interval_ns
        if span <= 0:
            return 0.0
        return self.total_between(start_ns, end_ns) * 8 * SEC / span


class StatAccumulator:
    """Streaming mean/variance/min/max, with optional sample retention.

    Welford's algorithm keeps the variance numerically stable; retained
    samples (``keep=True``) allow percentile queries.
    """

    def __init__(self, keep: bool = False):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None
        self._samples: Optional[List[float]] = [] if keep else None
        #: sorted view of _samples, rebuilt lazily (percentile queries
        #: from grid reports come in batches between adds)
        self._sorted_samples: Optional[List[float]] = None

    def add(self, value: float) -> None:
        """Fold one sample in."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        if self._samples is not None:
            self._samples.append(value)
            self._sorted_samples = None

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def percentile(self, p: float) -> float:
        """p-th percentile (requires ``keep=True``); linear interpolation."""
        if self._samples is None:
            raise RuntimeError("percentiles need keep=True")
        if not self._samples:
            return 0.0
        data = self._sorted_samples
        if data is None:
            data = self._sorted_samples = sorted(self._samples)
        if len(data) == 1:
            return data[0]
        rank = (len(data) - 1) * p / 100.0
        low = int(rank)
        high = min(low + 1, len(data) - 1)
        frac = rank - low
        return data[low] * (1 - frac) + data[high] * frac
