"""Host stacks: the phone's TCP stack (CPU-charged) and the server's.

:class:`MobileTcpStack` is the phone: it owns the sender connections,
charges every stack operation to the device CPU through a
:class:`~repro.cpu.softirq.StackExecutor`, and exchanges packets with the
:class:`~repro.netsim.testbed.Testbed`.

:class:`ServerHost` is the desktop iperf server: compute-free receiver
endpoints that ACK immediately.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..cc.base import CongestionOps
from ..cpu.costs import CostModel
from ..cpu.softirq import StackExecutor
from ..netsim.packet import PACKET_POOL, Packet
from ..netsim.testbed import SenderPort, Testbed
from ..sim import EventLoop, Tracer, NULL_TRACER
from .connection import SocketConfig, TcpSender
from .receiver import TcpReceiverEndpoint

__all__ = ["FlowIdAllocator", "MobileTcpStack", "ServerHost"]


class FlowIdAllocator:
    """Monotonic flow-id source shared by every stack in an experiment.

    Flow ids are globally unique across sender hosts: the server keys its
    receiver endpoints by flow id, and the testbed routes return-path
    packets by it. Ids follow creation order, so per-flow metrics stay
    index-stable regardless of how flows are spread over hosts.
    """

    def __init__(self, first: int = 1):
        self._next = int(first)

    def allocate(self) -> int:
        """Hand out the next flow id."""
        flow_id = self._next
        self._next += 1
        return flow_id


class MobileTcpStack:
    """The phone's transport stack, bound to the device CPU model.

    Implements the ``StackServices`` contract senders rely on:
    :meth:`submit_work` (CPU charging) and :meth:`send_packet` (qdisc
    hand-off), plus :attr:`loop` and :attr:`costs`.
    """

    def __init__(
        self,
        loop: EventLoop,
        executor: StackExecutor,
        costs: CostModel,
        testbed: Testbed,
        tracer: Tracer = NULL_TRACER,
        port: Optional[SenderPort] = None,
        flow_ids: Optional[FlowIdAllocator] = None,
    ):
        self.loop = loop
        self.executor = executor
        self.costs = costs
        self.testbed = testbed
        self.tracer = tracer
        #: the testbed attachment point this host transmits/receives on
        #: (port 0 — the legacy phone — unless told otherwise)
        self.port = port if port is not None else testbed.ports[0]
        #: flow-id source; shared across stacks in multi-host experiments
        self.flow_ids = flow_ids if flow_ids is not None else FlowIdAllocator()
        self.connections: Dict[int, TcpSender] = {}
        self.port.receiver = self._on_receive
        # stats
        self.acks_received = 0
        self.packets_sent = 0

    # -- connection management -------------------------------------------------

    def create_connection(
        self,
        cc: CongestionOps,
        config: Optional[SocketConfig] = None,
        source: Optional[object] = None,
    ) -> TcpSender:
        """Open a new uplink connection using congestion control *cc*."""
        flow_id = self.flow_ids.allocate()
        sender = TcpSender(flow_id, self, cc, config=config, source=source)
        self.connections[flow_id] = sender
        self.testbed.register_flow(flow_id, self.port)
        return sender

    def close_all(self) -> None:
        """Tear down every connection (end of an experiment run)."""
        for sender in self.connections.values():
            sender.close()

    # -- StackServices contract ----------------------------------------------------

    def submit_work(
        self,
        flow_id: int,
        cycles: int,
        callback: Callable[[], None],
        name: str,
        priority: int = 1,
        continuation: bool = False,
    ) -> None:
        """Charge *cycles* on the device CPU, then run *callback*."""
        self.executor.submit_for(
            flow_id, cycles, callback, name, priority, continuation
        )

    def send_packet(self, packet: Packet) -> None:
        """Hand a fully built packet to the phone's qdisc."""
        self.packets_sent += 1
        if self.tracer.enabled:
            self.tracer.emit(self.loop.now, f"flow-{packet.flow_id}", "send",
                             segs=packet.segments, bytes=packet.wire_bytes)
        self.port.send(packet)

    # -- receive path -----------------------------------------------------------------

    def _on_receive(self, packet: Packet) -> None:
        if not packet.is_ack:
            return  # uplink experiments: the phone only receives ACKs
        sender = self.connections.get(packet.flow_id)
        if sender is None:
            return
        self.acks_received += 1
        if self.tracer.enabled:
            self.tracer.emit(self.loop.now, f"flow-{packet.flow_id}", "ack",
                             sacks=len(packet.sack_blocks))
        cycles = self.costs.ack_cycles(
            sack_blocks=len(packet.sack_blocks),
            cc_cycles=sender.cc.ack_cost_cycles,
        )
        # ACK processing is ordinary softirq work: it queues with (not
        # ahead of) transmit work. The resulting queueing delay is part
        # of the RTT the phone measures — Table 2's stride-1x RTT is
        # exactly this effect — and it is what keeps delivery-rate
        # samples honest on a saturated CPU.
        def process_ack() -> None:
            sender.on_ack_packet(packet)
            # Nothing retains the ACK past processing (the scoreboard
            # consumes the SACK list by value), so recycle it.
            PACKET_POOL.release(packet)

        self.executor.submit_for(
            packet.flow_id, cycles, process_ack, "ack", priority=1,
        )


class ServerHost:
    """The desktop iperf server: per-flow receiver endpoints, free CPU."""

    def __init__(self, testbed: Testbed):
        self.testbed = testbed
        self.endpoints: Dict[int, TcpReceiverEndpoint] = {}
        #: called with each newly created endpoint (metrics attach here)
        self.on_new_endpoint: Optional[Callable[[TcpReceiverEndpoint], None]] = None
        testbed.on_server_receive = self._on_receive

    def endpoint_for(self, flow_id: int) -> TcpReceiverEndpoint:
        """Get or create the receiver endpoint for *flow_id*."""
        endpoint = self.endpoints.get(flow_id)
        if endpoint is None:
            endpoint = TcpReceiverEndpoint(flow_id, self.testbed.server_send)
            self.endpoints[flow_id] = endpoint
            if self.on_new_endpoint is not None:
                self.on_new_endpoint(endpoint)
        return endpoint

    @property
    def total_goodput_bytes(self) -> int:
        """In-order bytes received across all flows."""
        return sum(e.bytes_in_order for e in self.endpoints.values())

    def _on_receive(self, packet: Packet) -> None:
        if packet.is_ack:
            return
        self.endpoint_for(packet.flow_id).on_data(packet)
        # Delivery is the end of a data packet's life: the receiver keeps
        # reassembly intervals, not packets, so recycle the object.
        PACKET_POOL.release(packet)
