"""Delivery-rate estimation (draft-cheng-iccrg-delivery-rate-estimation).

BBR's bandwidth model is fed by per-ACK *rate samples*: when a packet is
(s)acked, the sample measures how much data was delivered between that
packet's transmission and its acknowledgment, over the longer of the send
interval and the ACK interval (which filters both sender-side and
receiver-side compression).

The sender stores a :class:`TxRecord` per transmitted super-packet; the
:class:`DeliveryRateEstimator` owns the connection-wide ``delivered``
counters and produces :class:`RateSample` objects consumed by the
congestion-control modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..kernel import compiled_for

__all__ = ["TxRecord", "RateSample", "DeliveryRateEstimator"]


@dataclass(slots=True)
class TxRecord:
    """Per-transmitted-packet bookkeeping (subset of ``tcp_skb_cb``)."""

    seq: int
    end_seq: int
    segments: int
    sent_ns: int
    #: connection ``delivered`` counter when this packet was sent
    delivered_at_send: int
    #: time of the most recent delivery event when this packet was sent
    delivered_time_at_send: int
    #: send time of the first packet of the current flight (send-rate leg)
    first_sent_at_send: int
    is_app_limited: bool = False
    retransmitted: bool = False
    sacked: bool = False
    lost: bool = False
    #: segments of this record already sacked (partial SACK coverage)
    sacked_segments: int = 0
    #: time of the most recent (re)transmission — drives RTO arming
    last_sent_ns: int = -1

    def __post_init__(self) -> None:
        if self.last_sent_ns < 0:
            self.last_sent_ns = self.sent_ns

    @property
    def length(self) -> int:
        """Payload bytes covered."""
        return self.end_seq - self.seq


@dataclass(slots=True)
class RateSample:
    """One per-ACK rate sample handed to the congestion control."""

    #: bytes delivered over the sample interval
    delivered_bytes: int = 0
    #: sample interval in ns (max of send and ack interval); <=0 = invalid
    interval_ns: int = 0
    #: RTT of the most recently sent packet that was (s)acked, ns
    rtt_ns: int = -1
    #: connection-wide delivered counter (bytes) after this ACK
    delivered_total: int = 0
    #: ``delivered`` counter when the sampled packet was sent
    prior_delivered: int = 0
    #: inflight segments before this ACK was processed
    prior_inflight_segments: int = 0
    #: segments newly cumulatively acked by this ACK
    newly_acked_segments: int = 0
    #: segments newly selectively acked by this ACK
    newly_sacked_segments: int = 0
    #: segments newly marked lost while processing this ACK
    newly_lost_segments: int = 0
    is_app_limited: bool = False
    ack_time_ns: int = 0
    #: the min-RTT filter window had expired *before* this ACK's sample
    #: was folded in (the kernel evaluates PROBE_RTT eligibility on the
    #: pre-sample state, so a refreshing sample still triggers it)
    min_rtt_expired: bool = False

    @property
    def valid(self) -> bool:
        """True when the sample can produce a bandwidth estimate."""
        return self.interval_ns > 0 and self.delivered_bytes > 0

    @property
    def delivery_rate_bps(self) -> float:
        """Delivery rate of this sample in bits/s (0 when invalid)."""
        if not self.valid:
            return 0.0
        return self.delivered_bytes * 8 * 1e9 / self.interval_ns


class DeliveryRateEstimator:
    """Connection-wide delivered counters + sample generation."""

    def __new__(cls, *args, **kwargs):
        # Kernel routing, same pattern as Scoreboard: a compiled-kernel
        # loop with no enabled tracer gets the C estimator; subclasses
        # and instrumented runs stay pure.
        if cls is DeliveryRateEstimator:
            loop = kwargs.get("loop", args[0] if len(args) > 0 else None)
            if loop is not None:
                tracer = kwargs.get(
                    "tracer", args[1] if len(args) > 1 else None
                )
                ck = compiled_for(loop)
                if ck is not None and (tracer is None or not tracer.enabled):
                    return ck.DeliveryRateEstimator(*args, **kwargs)
        return super().__new__(cls)

    def __init__(self, loop=None, tracer=None) -> None:
        # loop/tracer are kernel-routing keys consumed by __new__; the
        # pure estimator never schedules or traces.
        #: total bytes delivered (cumulatively acked or sacked)
        self.delivered_bytes = 0
        #: time of the most recent delivery event
        self.delivered_time_ns = 0
        #: send time of the packet that started the current flight
        self.first_sent_ns = 0
        #: when non-zero, samples are app-limited until ``delivered`` passes it
        self.app_limited_until = 0

    def on_send(self, now_ns: int, has_inflight: bool, app_limited: bool) -> "TxRecord.__class__":
        """Update flight timing on transmit; returns snapshot kwargs.

        When nothing is in flight the send starts a new flight, so both
        the delivered clock and the first-sent clock restart at *now*.
        """
        if not has_inflight:
            self.first_sent_ns = now_ns
            self.delivered_time_ns = now_ns
        if app_limited:
            self.app_limited_until = self.delivered_bytes + 1
        return {
            "delivered_at_send": self.delivered_bytes,
            "delivered_time_at_send": self.delivered_time_ns,
            "first_sent_at_send": self.first_sent_ns,
            "is_app_limited": self.app_limited_until > 0,
        }

    def send_record(
        self,
        now_ns: int,
        seq: int,
        end_seq: int,
        segments: int,
        has_inflight: bool,
        app_limited: bool,
    ) -> TxRecord:
        """:meth:`on_send` + :class:`TxRecord` construction in one call.

        This is the per-transmit seam the compiled kernel implements in
        C (no snapshot dict, no dataclass dispatch on the hot path).
        """
        if not has_inflight:
            self.first_sent_ns = now_ns
            self.delivered_time_ns = now_ns
        if app_limited:
            self.app_limited_until = self.delivered_bytes + 1
        return TxRecord(
            seq=seq,
            end_seq=end_seq,
            segments=segments,
            sent_ns=now_ns,
            delivered_at_send=self.delivered_bytes,
            delivered_time_at_send=self.delivered_time_ns,
            first_sent_at_send=self.first_sent_ns,
            is_app_limited=self.app_limited_until > 0,
        )

    def on_delivered(self, nbytes: int, now_ns: int) -> None:
        """Credit *nbytes* of newly (s)acked data."""
        self.delivered_bytes += nbytes
        self.delivered_time_ns = now_ns
        if self.app_limited_until and self.delivered_bytes > self.app_limited_until:
            self.app_limited_until = 0

    def make_sample(self, record: TxRecord, now_ns: int) -> RateSample:
        """Build the rate sample for the newest (s)acked *record*.

        Following the draft: the interval is ``max(send interval, ack
        interval)``; samples from retransmitted packets are invalid (Karn's
        rule applies to rate as well as RTT here).
        """
        sample = RateSample(
            delivered_total=self.delivered_bytes,
            prior_delivered=record.delivered_at_send,
            ack_time_ns=now_ns,
        )
        if record.retransmitted:
            return sample  # invalid: interval_ns stays 0
        send_interval = record.sent_ns - record.first_sent_at_send
        ack_interval = now_ns - record.delivered_time_at_send
        sample.interval_ns = ack_interval if ack_interval > send_interval else send_interval
        sample.delivered_bytes = self.delivered_bytes - record.delivered_at_send
        sample.rtt_ns = now_ns - record.sent_ns
        sample.is_app_limited = record.is_app_limited
        # Mark the flight restart for subsequent sends.
        self.first_sent_ns = record.sent_ns
        return sample
