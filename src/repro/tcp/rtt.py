"""RTT estimation and retransmission timeout (RFC 6298), plus a
windowed minimum-RTT filter used by BBR.
"""

from __future__ import annotations

from typing import Optional

from ..kernel import compiled_for
from ..units import MSEC, SEC

__all__ = ["RttEstimator", "MinRttFilter"]


class RttEstimator:
    """SRTT / RTTVAR / RTO state machine per RFC 6298.

    Times are integer nanoseconds. The RTO is clamped to
    ``[min_rto, max_rto]``; Linux uses a 200 ms floor and 120 s ceiling.
    """

    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0
    K = 4

    def __new__(cls, *args, **kwargs):
        # Kernel routing, same pattern as Scoreboard: a compiled-kernel
        # loop with no enabled tracer gets the C estimator.
        if cls is RttEstimator:
            loop = kwargs.get("loop", args[2] if len(args) > 2 else None)
            if loop is not None:
                tracer = kwargs.get(
                    "tracer", args[3] if len(args) > 3 else None
                )
                ck = compiled_for(loop)
                if ck is not None and (tracer is None or not tracer.enabled):
                    return ck.RttEstimator(*args, **kwargs)
        return super().__new__(cls)

    def __init__(
        self,
        min_rto_ns: int = 200 * MSEC,
        max_rto_ns: int = 120 * SEC,
        loop=None,
        tracer=None,
    ):
        # loop/tracer are kernel-routing keys consumed by __new__
        self.min_rto_ns = int(min_rto_ns)
        self.max_rto_ns = int(max_rto_ns)
        self.srtt_ns: Optional[int] = None
        self.rttvar_ns: int = 0
        self.latest_rtt_ns: Optional[int] = None
        self.samples = 0

    def update(self, rtt_ns: int) -> None:
        """Fold one RTT measurement into the estimator."""
        if rtt_ns <= 0:
            return
        self.latest_rtt_ns = rtt_ns
        self.samples += 1
        if self.srtt_ns is None:
            self.srtt_ns = rtt_ns
            self.rttvar_ns = rtt_ns // 2
            return
        delta = abs(self.srtt_ns - rtt_ns)
        self.rttvar_ns = int((1 - self.BETA) * self.rttvar_ns + self.BETA * delta)
        self.srtt_ns = int((1 - self.ALPHA) * self.srtt_ns + self.ALPHA * rtt_ns)

    @property
    def rto_ns(self) -> int:
        """Current retransmission timeout."""
        if self.srtt_ns is None:
            return SEC  # RFC 6298 initial RTO of 1 s
        var = self.K * self.rttvar_ns
        if var < MSEC:
            var = MSEC
        rto = self.srtt_ns + var
        if rto > self.max_rto_ns:
            rto = self.max_rto_ns
        if rto < self.min_rto_ns:
            rto = self.min_rto_ns
        return rto


class MinRttFilter:
    """Windowed minimum filter: the smallest RTT seen in the last *window*.

    BBR uses a 10 s window; the minimum expires when no equal-or-lower
    sample arrives within it, which is what triggers PROBE_RTT.
    """

    def __new__(cls, *args, **kwargs):
        # Kernel routing, same pattern as Scoreboard.
        if cls is MinRttFilter:
            loop = kwargs.get("loop", args[1] if len(args) > 1 else None)
            if loop is not None:
                tracer = kwargs.get(
                    "tracer", args[2] if len(args) > 2 else None
                )
                ck = compiled_for(loop)
                if ck is not None and (tracer is None or not tracer.enabled):
                    return ck.MinRttFilter(*args, **kwargs)
        return super().__new__(cls)

    def __init__(self, window_ns: int = 10 * SEC, loop=None, tracer=None):
        # loop/tracer are kernel-routing keys consumed by __new__
        self.window_ns = int(window_ns)
        self._min_ns: Optional[int] = None
        self._stamp_ns: int = 0

    @property
    def min_rtt_ns(self) -> Optional[int]:
        """Current filtered minimum (None before any sample)."""
        return self._min_ns

    @property
    def stamp_ns(self) -> int:
        """Time the current minimum was recorded."""
        return self._stamp_ns

    def update(self, rtt_ns: int, now_ns: int) -> bool:
        """Offer a sample; returns True if it became the new minimum."""
        if rtt_ns <= 0:
            return False
        expired = self._min_ns is not None and now_ns - self._stamp_ns > self.window_ns
        if self._min_ns is None or expired or rtt_ns <= self._min_ns:
            self._min_ns = rtt_ns
            self._stamp_ns = now_ns
            return True
        return False

    def expired(self, now_ns: int) -> bool:
        """True when the minimum is older than the window."""
        return self._min_ns is not None and now_ns - self._stamp_ns > self.window_ns
