"""Server-side TCP receiver: cumulative ACKs, SACK generation, goodput.

The desktop iperf server in the paper's testbed is never the bottleneck,
so the receiver here is protocol-faithful but compute-free. Each arriving
GSO super-packet elicits one ACK — which is also what a GRO-enabled
desktop NIC produces for the arrival patterns in these experiments (paced
sub-millisecond-spaced buffers cannot be coalesced across the GRO flush
timeout; unpaced bursts arrive pre-aggregated).

Goodput is measured here, receiver-side, as the advance of ``rcv_nxt``
(in-order bytes), so retransmissions never inflate it — matching iperf3's
application-level accounting.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..netsim.packet import PACKET_POOL, Packet

__all__ = ["TcpReceiverEndpoint"]

#: Maximum SACK blocks carried on one ACK (TCP option-space limit).
MAX_SACK_BLOCKS = 3


#: default receive buffer (Linux tcp_rmem[2] is 6 MB on desktops)
DEFAULT_RCV_BUFFER = 6 * 1024 * 1024


class TcpReceiverEndpoint:
    """Reassembly state and ACK generation for one flow."""

    def __init__(
        self,
        flow_id: int,
        send_ack: Callable[[Packet], None],
        rcv_buffer_bytes: int = DEFAULT_RCV_BUFFER,
    ):
        self.flow_id = flow_id
        self._send_ack = send_ack
        self.rcv_buffer_bytes = int(rcv_buffer_bytes)
        self.rcv_nxt = 0
        #: sorted, disjoint out-of-order intervals [(start, end), ...]
        self._ooo: List[Tuple[int, int]] = []
        #: most recently SACKed block goes first on the wire (RFC 2018)
        self._recent_block: Optional[Tuple[int, int]] = None
        # stats
        self.bytes_in_order = 0
        self.duplicate_bytes = 0
        self.acks_sent = 0
        #: hook invoked with (nbytes, now-implied) on each in-order advance
        self.on_goodput: Optional[Callable[[int], None]] = None

    # -- data path ----------------------------------------------------------

    def on_data(self, packet: Packet) -> None:
        """Accept a data packet, update reassembly, emit an ACK."""
        if packet.is_ack:
            raise ValueError("receiver endpoint got an ACK packet")
        start, end = packet.seq, packet.end_seq
        if end <= self.rcv_nxt:
            self.duplicate_bytes += packet.length
        elif start <= self.rcv_nxt:
            advanced = end - self.rcv_nxt
            if start < self.rcv_nxt:
                self.duplicate_bytes += self.rcv_nxt - start
            self.rcv_nxt = end
            self._drain_ooo()
            advanced = self.rcv_nxt - (end - advanced)
            self.bytes_in_order += advanced
            if self.on_goodput is not None:
                self.on_goodput(advanced)
        else:
            self._insert_ooo(start, end)
            self._recent_block = self._containing_block(start)
        self._emit_ack(packet)

    # -- internals ------------------------------------------------------------

    def _drain_ooo(self) -> None:
        """Fold now-contiguous out-of-order data into rcv_nxt."""
        while self._ooo and self._ooo[0][0] <= self.rcv_nxt:
            start, end = self._ooo.pop(0)
            if end > self.rcv_nxt:
                self.rcv_nxt = end

    def _insert_ooo(self, start: int, end: int) -> None:
        """Insert [start, end) into the sorted disjoint interval list."""
        merged: List[Tuple[int, int]] = []
        placed = False
        for s, e in self._ooo:
            if e < start or s > end:
                if not placed and s > end:
                    merged.append((start, end))
                    placed = True
                merged.append((s, e))
            else:
                start = min(start, s)
                end = max(end, e)
        if not placed:
            merged.append((start, end))
            merged.sort()
        self._ooo = merged

    def _containing_block(self, seq: int) -> Optional[Tuple[int, int]]:
        for s, e in self._ooo:
            if s <= seq < e:
                return (s, e)
        return None

    def _sack_blocks(self) -> List[Tuple[int, int]]:
        blocks: List[Tuple[int, int]] = []
        self._fill_sack_blocks(blocks)
        return blocks

    def _fill_sack_blocks(self, blocks: List[Tuple[int, int]]) -> None:
        """Append up to MAX_SACK_BLOCKS into *blocks* (assumed empty).

        Filling a caller-owned list lets the ACK path reuse the pooled
        packet's ``sack_blocks`` list instead of allocating per ACK.
        """
        if not self._ooo:
            return  # in-order steady state: no SACKs, nothing to scan
        if self._recent_block is not None and self._recent_block in self._ooo:
            blocks.append(self._recent_block)
        for block in self._ooo:
            if block not in blocks:
                blocks.append(block)
            if len(blocks) >= MAX_SACK_BLOCKS:
                break

    def advertised_window(self) -> int:
        """Receive window: the buffer minus out-of-order data held.

        The iperf server application consumes in-order data immediately,
        so only reassembly-queue bytes occupy the buffer. This is what
        stops a sender from streaming arbitrarily far past a stuck hole.
        """
        if not self._ooo:
            return self.rcv_buffer_bytes
        held = sum(e - s for s, e in self._ooo)
        return max(0, self.rcv_buffer_bytes - held)

    def _emit_ack(self, data_packet: Packet) -> None:
        ack = PACKET_POOL.acquire_ack(
            self.flow_id,
            self.rcv_nxt,
            self.advertised_window(),
            data_packet.sent_ts,
        )
        self._fill_sack_blocks(ack.sack_blocks)
        self.acks_sent += 1
        self._send_ack(ack)
